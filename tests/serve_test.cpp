// Serving engine tests (DESIGN.md §11): bit-identity of served logits
// against the training forward, snapshot pin stability under concurrent
// publishes (run under TSan in CI), micro-batch coalescing equivalence,
// and serving while a trainer thread publishes new versions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "nn/language_model.hpp"
#include "nn/resnet.hpp"
#include "optim/momentum_sgd.hpp"
#include "serve/engine.hpp"
#include "serve/lm_forward.hpp"
#include "serve/resnet_forward.hpp"
#include "serve/snapshot.hpp"
#include "tensor/random.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;
namespace serve = yf::serve;

namespace {

nn::LanguageModelConfig small_lm_config(bool tied) {
  nn::LanguageModelConfig cfg;
  cfg.vocab = 12;
  cfg.embed_dim = 6;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.tie_weights = tied;
  if (tied) cfg.embed_dim = cfg.hidden;  // tying needs E == H
  return cfg;
}

std::vector<std::int64_t> sample_tokens(std::int64_t n, std::int64_t vocab, t::Rng& rng) {
  std::vector<std::int64_t> toks(static_cast<std::size_t>(n));
  for (auto& tok : toks) tok = rng.index(vocab);
  return toks;
}

}  // namespace

TEST(SnapshotStore, RejectsDegenerateConfigs) {
  EXPECT_THROW(serve::SnapshotStore(0), std::invalid_argument);
  EXPECT_THROW(serve::SnapshotStore(8, 2), std::invalid_argument);
}

TEST(SnapshotStore, PublishAcquireRoundTrip) {
  serve::SnapshotStore store(4);
  EXPECT_FALSE(store.has_snapshot());
  EXPECT_FALSE(store.acquire().valid());

  const std::vector<double> v1 = {1, 2, 3, 4};
  EXPECT_EQ(store.publish(v1), 1u);
  auto pin = store.acquire();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.version(), 1u);
  ASSERT_EQ(pin.values().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(pin.values()[i], v1[i]);

  // A held pin does not block later publishes; it keeps its own version.
  const std::vector<double> v2 = {5, 6, 7, 8};
  EXPECT_EQ(store.publish(v2), 2u);
  EXPECT_EQ(store.latest_version(), 2u);
  EXPECT_EQ(pin.version(), 1u);
  EXPECT_EQ(pin.values()[0], 1.0);
  pin.release();
  EXPECT_EQ(store.acquire().version(), 2u);
}

TEST(SnapshotStore, PinnedSnapshotsAreTornFreeUnderConcurrentPublishes) {
  // Publisher writes version-constant buffers (every element == k) as
  // fast as it can; readers pin and verify they never observe a torn or
  // mid-copy buffer. This is the TSan-facing protocol test.
  const std::int64_t n = 512;
  serve::SnapshotStore store(n, 3);
  std::vector<double> buf(static_cast<std::size_t>(n), 0.0);
  store.publish(buf);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int k = 1; k <= 400; ++k) {
      std::fill(buf.begin(), buf.end(), static_cast<double>(k));
      store.publish(buf);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<int> torn{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!stop.load()) {
        auto pin = store.acquire();
        ASSERT_TRUE(pin.valid());
        const auto vals = pin.values();
        const double first = vals[0];
        for (const double v : vals) {
          if (v != first) {
            torn.fetch_add(1);
            break;
          }
        }
        // Versions move forward only.
        EXPECT_GE(pin.version(), last_version);
        last_version = pin.version();
      }
    });
  }
  publisher.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(torn.load(), 0) << "a pinned snapshot must never be observed mid-copy";
}

TEST(Serve, LMForwardIsBitIdenticalToTrainingForward) {
  for (const bool tied : {false, true}) {
    const auto cfg = small_lm_config(tied);
    t::Rng rng(5);
    nn::LSTMLanguageModel model(cfg, rng);
    yf::core::ParamArena arena(model.parameters());
    serve::SnapshotStore store(arena.size());
    store.publish(arena.values());

    const std::int64_t batch = 3, seq = 5;
    t::Rng data_rng(7);
    const auto tokens = sample_tokens(batch * seq, cfg.vocab, data_rng);

    serve::LMForward fwd(model, arena, store, seq, batch);
    const auto pin = store.acquire();
    const auto& served = fwd.forward(tokens, batch, pin.slot());
    const auto expected = model.logits(tokens, batch, seq).value();

    ASSERT_EQ(served.size(), expected.size());
    for (std::int64_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i], expected[i]) << "tied=" << tied << " logit " << i;
    }
  }
}

TEST(Serve, LMForwardValidatesRequests) {
  const auto cfg = small_lm_config(false);
  t::Rng rng(5);
  nn::LSTMLanguageModel model(cfg, rng);
  yf::core::ParamArena arena(model.parameters());
  serve::SnapshotStore store(arena.size());
  store.publish(arena.values());
  serve::LMForward fwd(model, arena, store, 4, 2);

  std::vector<std::int64_t> toks(4, 0);
  EXPECT_THROW(fwd.forward(toks, 2, 0), std::invalid_argument);  // count mismatch
  toks[1] = cfg.vocab;  // out of range
  EXPECT_THROW(fwd.forward(toks, 1, 0), std::out_of_range);
  EXPECT_THROW(fwd.forward(toks, 3, 0), std::invalid_argument);  // batch > max
}

TEST(Serve, ResNetForwardIsBitIdenticalToTrainingForward) {
  for (const bool with_bn : {true, false}) {
    nn::MiniResNetConfig cfg;
    cfg.base_channels = 4;
    cfg.blocks_per_stage = 1;
    cfg.num_classes = 5;
    cfg.with_batchnorm = with_bn;
    t::Rng rng(9);
    nn::MiniResNet model(cfg, rng);
    yf::core::ParamArena arena(model.parameters());
    serve::SnapshotStore store(arena.size());
    store.publish(arena.values());

    const std::int64_t batch = 2, h = 8, w = 8;
    t::Rng data_rng(11);
    const auto images = data_rng.normal_tensor({batch, cfg.in_channels, h, w});

    serve::ResNetForward fwd(model, arena, store, batch, h, w);
    const auto pin = store.acquire();
    const auto& served = fwd.forward(images, pin.slot());
    const auto expected = model.forward(ag::Variable(images)).value();

    ASSERT_EQ(served.size(), expected.size());
    for (std::int64_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i], expected[i]) << "with_bn=" << with_bn << " logit " << i;
    }
  }
}

TEST(Serve, ServerSingleRequestMatchesModelLogits) {
  const auto cfg = small_lm_config(false);
  t::Rng rng(5);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = 6;
  opts.max_batch = 4;
  opts.max_wait_us = 0;
  serve::LMServer server(model, opts);

  t::Rng data_rng(3);
  const auto tokens = sample_tokens(opts.seq_len, cfg.vocab, data_rng);
  std::vector<double> logits(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
  const auto version = server.infer(tokens, logits);
  EXPECT_EQ(version, 1u);

  const auto expected = model.logits(tokens, 1, opts.seq_len).value();
  ASSERT_EQ(static_cast<std::int64_t>(logits.size()), expected.size());
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(logits[static_cast<std::size_t>(i)], expected[i]);
  }
}

TEST(Serve, ServerValidatesRequestsBeforeEnqueue) {
  const auto cfg = small_lm_config(false);
  t::Rng rng(5);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = 4;
  serve::LMServer server(model, opts);

  std::vector<double> logits(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
  std::vector<std::int64_t> short_req(2, 0);
  EXPECT_THROW(server.infer(short_req, logits), std::invalid_argument);
  std::vector<std::int64_t> bad_tok(static_cast<std::size_t>(opts.seq_len), cfg.vocab);
  EXPECT_THROW(server.infer(bad_tok, logits), std::out_of_range);
  std::vector<double> short_out(3, 0.0);
  std::vector<std::int64_t> ok(static_cast<std::size_t>(opts.seq_len), 0);
  EXPECT_THROW(server.infer(ok, short_out), std::invalid_argument);

  // A rejected request must not wedge the queue.
  EXPECT_EQ(server.infer(ok, logits), 1u);
}

TEST(Serve, CoalescedBatchesMatchOneByOneRequests) {
  const auto cfg = small_lm_config(false);
  t::Rng rng(5);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = 5;
  opts.max_batch = 4;
  opts.max_wait_us = 500000;  // generous straggler budget: let all 4 coalesce
  serve::LMServer server(model, opts);

  const std::int64_t n_clients = 4;
  t::Rng data_rng(21);
  std::vector<std::vector<std::int64_t>> requests;
  std::vector<std::vector<double>> outputs;
  for (std::int64_t i = 0; i < n_clients; ++i) {
    requests.push_back(sample_tokens(opts.seq_len, cfg.vocab, data_rng));
    outputs.emplace_back(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
  }

  std::vector<std::thread> clients;
  for (std::int64_t i = 0; i < n_clients; ++i) {
    clients.emplace_back([&, i] {
      server.infer(requests[static_cast<std::size_t>(i)], outputs[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& th : clients) th.join();

  // Row b of a batched forward depends only on request b's tokens (the
  // GEMM reduction order per output element is batch-size independent),
  // so coalesced results must be bit-identical to solo requests.
  for (std::int64_t i = 0; i < n_clients; ++i) {
    const auto expected =
        model.logits(requests[static_cast<std::size_t>(i)], 1, opts.seq_len).value();
    for (std::int64_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(outputs[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], expected[j])
          << "client " << i << " logit " << j;
    }
  }
  const auto st = server.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(n_clients));
  EXPECT_LT(st.batches, st.requests) << "concurrent requests should coalesce";
}

// The drain-on-shutdown idiom (DESIGN.md §12, shared with the distributed
// MasterServer): shutdown() is idempotent, already-served work stays
// valid, and post-shutdown entry points are loud contract violations
// instead of races against teardown.
TEST(Serve, ShutdownIsIdempotentAndPinsPostShutdownCalls) {
  const auto cfg = small_lm_config(false);
  t::Rng rng(5);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = 6;
  opts.max_wait_us = 0;
  serve::LMServer server(model, opts);

  t::Rng data_rng(3);
  const auto tokens = sample_tokens(opts.seq_len, cfg.vocab, data_rng);
  std::vector<double> logits(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
  EXPECT_EQ(server.publish(), 2u);  // live: the trainer-side path works...
  EXPECT_EQ(server.infer(tokens, logits), 2u);
  EXPECT_FALSE(server.stopped());

  server.shutdown();
  server.shutdown();  // idempotent
  EXPECT_TRUE(server.stopped());
  // ...and after shutdown both entry points refuse instead of racing a
  // store/queue whose workers are gone.
  EXPECT_THROW(server.publish(), std::logic_error);
  EXPECT_THROW(server.infer(tokens, logits), std::logic_error);
  // The destructor's shutdown() is a no-op on the already-drained server.
}

TEST(Serve, ServesWhileTrainerPublishes) {
  const auto cfg = small_lm_config(false);
  t::Rng rng(5);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = 5;
  opts.max_batch = 2;
  opts.max_wait_us = 100;
  opts.workers = 2;
  serve::LMServer server(model, opts);

  const std::int64_t batch = 2, seq_plus1 = opts.seq_len + 1, steps = 30;
  t::Rng data_rng(33);
  const auto train_tokens = sample_tokens(batch * seq_plus1, cfg.vocab, data_rng);

  // Trainer thread: step the live parameters, publish at step boundaries.
  std::thread trainer([&] {
    yf::optim::MomentumSGD opt(model.parameters(), 0.05, 0.9);
    for (std::int64_t i = 0; i < steps; ++i) {
      opt.zero_grad();
      auto loss = model.loss(train_tokens, batch, seq_plus1);
      loss.backward();
      opt.step();
      server.publish();
    }
  });

  std::vector<std::thread> clients;
  std::atomic<bool> monotonic{true};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      t::Rng client_rng(100 + c);
      const auto toks = sample_tokens(opts.seq_len, cfg.vocab, client_rng);
      std::vector<double> out(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
      std::uint64_t last = 0;
      for (int i = 0; i < 50; ++i) {
        const auto version = server.infer(toks, out);
        if (version < last) monotonic.store(false);
        last = version;
      }
    });
  }
  trainer.join();
  for (auto& th : clients) th.join();

  EXPECT_TRUE(monotonic.load()) << "served versions must never move backwards per client";
  EXPECT_EQ(server.store().latest_version(), static_cast<std::uint64_t>(steps + 1));

  // After training settles, serving reflects the final published weights.
  t::Rng check_rng(55);
  const auto toks = sample_tokens(opts.seq_len, cfg.vocab, check_rng);
  std::vector<double> out(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
  EXPECT_EQ(server.infer(toks, out), static_cast<std::uint64_t>(steps + 1));
  const auto expected = model.logits(toks, 1, opts.seq_len).value();
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expected[i]);
  }
}
