#include "tensor/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace t = yf::tensor;

TEST(Rng, DeterministicPerSeed) {
  t::Rng a(42), b(42), c(43);
  const double va = a.normal(), vb = b.normal(), vc = c.normal();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Rng, UniformRange) {
  t::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, IndexRange) {
  t::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto idx = rng.index(7);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 7);
  }
}

TEST(Rng, NormalMoments) {
  t::Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, NormalTensorShape) {
  t::Rng rng(4);
  auto x = rng.normal_tensor({3, 4});
  EXPECT_EQ(x.size(), 12);
}

TEST(Rng, BernoulliFrequency) {
  t::Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  t::Rng rng(6);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.categorical(w))];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  t::Rng rng(7);
  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(neg), std::invalid_argument);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
}
