#include "tuner/yellowfin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/noisy_quadratic.hpp"
#include "sim/robust_region.hpp"

namespace tuner = yf::tuner;
namespace ag = yf::autograd;
namespace t = yf::tensor;

namespace {

struct QuadraticTask {
  // Multidimensional diagonal quadratic f(x) = sum_i h_i/2 x_i^2 with
  // per-component gradient noise.
  std::vector<double> h;
  double noise;
  ag::Variable x;
  t::Rng rng{12345};

  explicit QuadraticTask(std::vector<double> curvatures, double noise_std, double x0 = 5.0)
      : h(std::move(curvatures)), noise(noise_std),
        x(t::Tensor({static_cast<std::int64_t>(h.size())}), true) {
    x.value().fill(x0);
  }

  double compute_grad() {
    x.zero_grad();
    auto& g = x.node()->ensure_grad();
    double loss = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) {
      loss += 0.5 * h[i] * x.value()[static_cast<std::int64_t>(i)] *
              x.value()[static_cast<std::int64_t>(i)];
      g[static_cast<std::int64_t>(i)] =
          h[i] * x.value()[static_cast<std::int64_t>(i)] + noise * rng.normal();
    }
    return loss;
  }
};

}  // namespace

TEST(YellowFin, NameAndDefaults) {
  QuadraticTask task({1.0}, 0.0);
  tuner::YellowFin yf({task.x});
  EXPECT_EQ(yf.name(), "yellowfin");
  EXPECT_EQ(yf.options().window, 20);
  EXPECT_NEAR(yf.options().beta, 0.999, 1e-12);
}

TEST(YellowFin, ConvergesOnNoiselessQuadratic) {
  QuadraticTask task({1.0, 4.0, 0.25}, 0.0);
  tuner::YellowFin yf({task.x});
  double loss = 0.0;
  for (int i = 0; i < 2000; ++i) {
    loss = task.compute_grad();
    yf.step();
  }
  // The measurement EWMAs (beta = 0.999) see the decaying gradient as
  // apparent variance, so convergence is steady rather than instantaneous:
  // from 65.6 down by 4+ orders of magnitude in 2000 steps.
  EXPECT_LT(loss, 1e-2);
}

TEST(YellowFin, ConvergesOnNoisyQuadratic) {
  QuadraticTask task({1.0, 10.0}, 0.5);
  tuner::YellowFin yf({task.x});
  for (int i = 0; i < 3000; ++i) {
    task.compute_grad();
    yf.step();
  }
  // Near the noise floor, far below the initial loss (~137).
  EXPECT_LT(task.compute_grad(), 1.0);
}

TEST(YellowFin, HyperparametersStayInRanges) {
  QuadraticTask task({0.5, 2.0, 8.0}, 0.3);
  tuner::YellowFin yf({task.x});
  for (int i = 0; i < 500; ++i) {
    task.compute_grad();
    yf.step();
    EXPECT_GE(yf.momentum(), 0.0);
    EXPECT_LT(yf.momentum(), 1.0);
    EXPECT_GT(yf.lr(), 0.0);
    EXPECT_TRUE(std::isfinite(yf.lr()));
  }
}

TEST(YellowFin, TunedValuesSatisfyRobustRegionOnMeasuredCurvatures) {
  QuadraticTask task({1.0, 5.0}, 0.2);
  tuner::YellowFin yf({task.x});
  for (int i = 0; i < 300; ++i) {
    task.compute_grad();
    yf.step();
  }
  // The *target* (unsmoothed) values satisfy the constraint exactly against
  // the current measured curvature range.
  EXPECT_TRUE(yf::sim::in_robust_region(yf.target_lr(), yf.target_momentum(), yf.h_min()));
  EXPECT_TRUE(yf::sim::in_robust_region(yf.target_lr(), yf.target_momentum(), yf.h_max()));
}

TEST(YellowFin, SlowStartDiscountsEarlyLr) {
  QuadraticTask a({1.0}, 0.0), b({1.0}, 0.0);
  tuner::YellowFinOptions with, without;
  with.slow_start = true;
  without.slow_start = false;
  tuner::YellowFin yf_with({a.x}, with);
  tuner::YellowFin yf_without({b.x}, without);
  a.compute_grad();
  b.compute_grad();
  yf_with.step();
  yf_without.step();
  // After one step the slow-started iterate moved strictly less.
  EXPECT_LT(std::abs(a.x.value()[0] - 5.0), std::abs(b.x.value()[0] - 5.0));
}

TEST(YellowFin, LrFactorScalesStepSize) {
  QuadraticTask a({1.0}, 0.0), b({1.0}, 0.0);
  tuner::YellowFinOptions base, doubled;
  base.slow_start = false;
  doubled.slow_start = false;
  doubled.lr_factor = 2.0;
  tuner::YellowFin yf1({a.x}, base);
  tuner::YellowFin yf2({b.x}, doubled);
  a.compute_grad();
  b.compute_grad();
  yf1.step();
  yf2.step();
  const double step1 = std::abs(a.x.value()[0] - 5.0);
  const double step2 = std::abs(b.x.value()[0] - 5.0);
  EXPECT_NEAR(step2 / step1, 2.0, 1e-9);
}

TEST(YellowFin, ForceMomentumOverridesTunedValue) {
  QuadraticTask task({1.0, 100.0}, 0.1);
  tuner::YellowFinOptions opts;
  opts.force_momentum = 0.0;
  tuner::YellowFin yf({task.x}, opts);
  for (int i = 0; i < 100; ++i) {
    task.compute_grad();
    yf.step();
  }
  // Tuner still measures (target momentum > 0 given GCN 100) but velocity
  // behaves like mu = 0: applied value is the forced one.
  EXPECT_GT(yf.target_momentum(), 0.0);
}

TEST(YellowFin, AppliedMomentumOverrideHook) {
  QuadraticTask task({1.0}, 0.0);
  tuner::YellowFin yf({task.x});
  yf.set_applied_momentum(-0.5);  // closed-loop can push negative momentum
  task.compute_grad();
  yf.step();  // must not throw; velocity update uses -0.5
  yf.clear_applied_momentum();
  task.compute_grad();
  yf.step();
  SUCCEED();
}

TEST(YellowFin, AdaptiveClippingTriggersOnSpike) {
  QuadraticTask task({1.0}, 0.0);
  tuner::YellowFinOptions opts;
  opts.adaptive_clipping = true;
  tuner::YellowFin yf({task.x}, opts);
  // Warm up with small gradients.
  for (int i = 0; i < 50; ++i) {
    task.x.zero_grad();
    task.x.node()->ensure_grad()[0] = 0.01;
    yf.step();
  }
  // Inject a huge spike: it must be clipped to ~sqrt(h_max).
  task.x.zero_grad();
  task.x.node()->ensure_grad()[0] = 1e6;
  const double thresh_before = std::sqrt(yf.h_max());
  yf.step();
  EXPECT_TRUE(yf.last_step_clipped());
  EXPECT_NEAR(yf.last_clip_threshold(), thresh_before, 1e-9);
}

TEST(YellowFin, NoClippingWhenDisabled) {
  QuadraticTask task({1.0}, 0.0);
  tuner::YellowFinOptions opts;
  opts.adaptive_clipping = false;
  tuner::YellowFin yf({task.x}, opts);
  for (int i = 0; i < 30; ++i) {
    task.x.zero_grad();
    task.x.node()->ensure_grad()[0] = 0.01;
    yf.step();
  }
  task.x.zero_grad();
  task.x.node()->ensure_grad()[0] = 1e6;
  yf.step();
  EXPECT_FALSE(yf.last_step_clipped());
}

TEST(YellowFin, MomentumRisesWithMeasuredCurvatureRange) {
  // Controlled version of "ill-conditioning raises momentum": feed two
  // synthetic gradient streams directly. One has constant norm (curvature
  // range ~1); the other alternates between norms 1 and 10 (range ~100),
  // so the GCN constraint of Eq. 15 must force momentum up.
  ag::Variable flat_x(t::Tensor({4}), true);
  ag::Variable rough_x(t::Tensor({4}), true);
  tuner::YellowFinOptions opts;
  opts.slow_start = false;
  tuner::YellowFin yf_flat({flat_x}, opts), yf_rough({rough_x}, opts);
  t::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    flat_x.zero_grad();
    rough_x.zero_grad();
    auto& gf = flat_x.node()->ensure_grad();
    auto& gr = rough_x.node()->ensure_grad();
    const double dir = rng.bernoulli(0.5) ? 1.0 : -1.0;  // zero-mean noise
    for (std::int64_t j = 0; j < 4; ++j) {
      gf[j] = dir * 0.5;
      gr[j] = dir * (i % 2 == 0 ? 0.05 : 5.0);
    }
    yf_flat.step();
    yf_rough.step();
  }
  EXPECT_GT(yf_rough.h_max() / yf_rough.h_min(), yf_flat.h_max() / yf_flat.h_min());
  EXPECT_GT(yf_rough.momentum(), yf_flat.momentum());
}

TEST(YellowFin, MeasurementAccessorsAreFinite) {
  QuadraticTask task({2.0}, 0.1);
  tuner::YellowFin yf({task.x});
  for (int i = 0; i < 50; ++i) {
    task.compute_grad();
    yf.step();
  }
  EXPECT_GT(yf.h_max(), 0.0);
  EXPECT_GT(yf.h_min(), 0.0);
  EXPECT_GE(yf.h_max(), yf.h_min());
  EXPECT_GE(yf.grad_variance(), 0.0);
  EXPECT_GT(yf.distance_to_opt(), 0.0);
}
