#include "tuner/curvature_range.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

#include <cmath>

namespace tuner = yf::tuner;

namespace {
tuner::CurvatureRangeOptions fast_opts(double beta = 0.0, std::int64_t window = 3,
                                       bool log_smooth = false, double cap = 0.0) {
  tuner::CurvatureRangeOptions o;
  o.beta = beta;  // beta=0 -> EWMA equals the latest observation
  o.window = window;
  o.log_smoothing = log_smooth;
  o.growth_cap = cap;
  return o;
}
}  // namespace

TEST(CurvatureRange, ThrowsBeforeFirstUpdate) {
  tuner::CurvatureRange cr;
  EXPECT_THROW(cr.h_max(), std::logic_error);
  EXPECT_THROW(cr.h_min(), std::logic_error);
}

TEST(CurvatureRange, RejectsNegativeCurvature) {
  tuner::CurvatureRange cr;
  EXPECT_THROW(cr.update(-1.0), std::invalid_argument);
}

TEST(CurvatureRange, RejectsBadWindow) {
  tuner::CurvatureRangeOptions o;
  o.window = 0;
  EXPECT_THROW(tuner::CurvatureRange{o}, std::invalid_argument);
}

TEST(CurvatureRange, WindowMinMaxExact) {
  tuner::CurvatureRange cr(fast_opts());
  cr.update(5.0);
  cr.update(2.0);
  cr.update(9.0);
  EXPECT_NEAR(cr.h_max(), 9.0, 1e-12);
  EXPECT_NEAR(cr.h_min(), 2.0, 1e-12);
}

TEST(CurvatureRange, OldValuesLeaveTheWindow) {
  tuner::CurvatureRange cr(fast_opts(0.0, 2));
  cr.update(100.0);
  cr.update(1.0);
  cr.update(2.0);  // window is now {1, 2}; the 100 has scrolled out
  EXPECT_NEAR(cr.h_max(), 2.0, 1e-12);
  EXPECT_NEAR(cr.h_min(), 1.0, 1e-12);
}

TEST(CurvatureRange, SingleObservationHasEqualExtremes) {
  tuner::CurvatureRange cr(fast_opts());
  cr.update(4.0);
  EXPECT_NEAR(cr.h_max(), cr.h_min(), 1e-12);
}

TEST(CurvatureRange, LogSmoothingTracksFastDecay) {
  // Appendix E: with curvature decaying geometrically, log-space EWMA
  // tracks much faster than linear-space EWMA.
  tuner::CurvatureRangeOptions lin = fast_opts(0.99, 1, false);
  tuner::CurvatureRangeOptions logspace = fast_opts(0.99, 1, true);
  tuner::CurvatureRange cr_lin(lin), cr_log(logspace);
  double h = 1e6;
  for (int i = 0; i < 400; ++i) {
    cr_lin.update(h);
    cr_log.update(h);
    h *= 0.97;
  }
  // True current curvature:
  EXPECT_LT(cr_log.h_max() / h, cr_lin.h_max() / h);
}

TEST(CurvatureRange, GrowthCapLimitsSpikes) {
  // Eq. 35: a 1e6x gradient spike must enter the envelope as at most 100x.
  tuner::CurvatureRange cr(fast_opts(0.0, 1, false, 100.0));
  cr.update(1.0);
  cr.update(1e6);
  EXPECT_LE(cr.h_max(), 100.0 + 1e-9);
}

TEST(CurvatureRange, NoCapWhenDisabled) {
  tuner::CurvatureRange cr(fast_opts(0.0, 1, false, 0.0));
  cr.update(1.0);
  cr.update(1e6);
  EXPECT_NEAR(cr.h_max(), 1e6, 1.0);
}

TEST(CurvatureRange, ZeroCurvatureSurvivesLogSmoothing) {
  tuner::CurvatureRange cr(fast_opts(0.0, 2, true));
  cr.update(0.0);  // log(0) would be -inf without the floor
  EXPECT_TRUE(std::isfinite(cr.h_min()));
  EXPECT_GE(cr.h_min(), 0.0);
}

TEST(CurvatureRange, DefaultMatchesPaperParameters) {
  tuner::CurvatureRange cr;
  EXPECT_EQ(cr.options().window, 20);
  EXPECT_NEAR(cr.options().beta, 0.999, 1e-12);
}

// Parameterized sweep: for stationary inputs in [lo, hi], the smoothed
// extremes must converge inside [lo, hi].
class CurvatureStationary : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CurvatureStationary, ExtremesWithinObservedRange) {
  const auto [lo, hi] = GetParam();
  tuner::CurvatureRangeOptions o;
  o.beta = 0.9;
  o.window = 20;
  tuner::CurvatureRange cr(o);
  yf::tensor::Rng rng(99);
  for (int i = 0; i < 500; ++i) cr.update(rng.uniform(lo, hi));
  EXPECT_GE(cr.h_max(), cr.h_min());
  EXPECT_GE(cr.h_min(), lo * 0.9);
  EXPECT_LE(cr.h_max(), hi * 1.1);
}

INSTANTIATE_TEST_SUITE_P(Ranges, CurvatureStationary,
                         ::testing::Values(std::make_pair(0.5, 2.0),
                                           std::make_pair(1e-4, 1e-3),
                                           std::make_pair(10.0, 1000.0)));
