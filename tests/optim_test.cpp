#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "autograd/ops.hpp"
#include "optim/adagrad.hpp"
#include "optim/adam.hpp"
#include "optim/clipping.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/momentum_sgd.hpp"
#include "optim/rmsprop.hpp"
#include "optim/sgd.hpp"
#include "tensor/random.hpp"

namespace ag = yf::autograd;
namespace optim = yf::optim;
namespace t = yf::tensor;

namespace {

/// One scalar parameter with a manually-set gradient.
struct ScalarParam {
  ag::Variable p;
  ScalarParam(double x0) : p(t::Tensor({1}, {x0}), true) {}
  void set_grad(double g) {
    p.zero_grad();
    p.node()->ensure_grad()[0] = g;
  }
  double x() const { return p.value()[0]; }
};

}  // namespace

TEST(Optimizer, RejectsEmptyParams) {
  EXPECT_THROW(optim::SGD({}, 0.1), std::invalid_argument);
}

TEST(Optimizer, RejectsNoGradParams) {
  ag::Variable frozen(t::Tensor({1}), false);
  EXPECT_THROW(optim::SGD({frozen}, 0.1), std::invalid_argument);
}

TEST(SGD, HandComputedStep) {
  ScalarParam sp(1.0);
  optim::SGD opt({sp.p}, 0.1);
  sp.set_grad(2.0);
  opt.step();
  EXPECT_NEAR(sp.x(), 1.0 - 0.1 * 2.0, 1e-15);
  EXPECT_EQ(opt.iteration(), 1);
}

TEST(SGD, LrSetter) {
  ScalarParam sp(0.0);
  optim::SGD opt({sp.p}, 0.1);
  opt.set_lr(0.5);
  EXPECT_EQ(opt.lr(), 0.5);
  sp.set_grad(1.0);
  opt.step();
  EXPECT_NEAR(sp.x(), -0.5, 1e-15);
}

TEST(MomentumSGD, MatchesPolyakRecurrence) {
  // x_{t+1} = x_t - lr g + mu (x_t - x_{t-1}) with constant gradient.
  const double lr = 0.1, mu = 0.9, g = 1.0;
  ScalarParam sp(0.0);
  optim::MomentumSGD opt({sp.p}, lr, mu);
  double x_prev = 0.0, x = 0.0;
  for (int i = 0; i < 10; ++i) {
    sp.set_grad(g);
    opt.step();
    const double x_next = x - lr * g + mu * (x - x_prev);
    x_prev = x;
    x = x_next;
    EXPECT_NEAR(sp.x(), x, 1e-12) << "step " << i;
  }
}

TEST(MomentumSGD, ZeroMomentumEqualsSgd) {
  ScalarParam a(1.0), b(1.0);
  optim::MomentumSGD m({a.p}, 0.05, 0.0);
  optim::SGD s({b.p}, 0.05);
  for (int i = 0; i < 5; ++i) {
    a.set_grad(0.7);
    b.set_grad(0.7);
    m.step();
    s.step();
    EXPECT_NEAR(a.x(), b.x(), 1e-15);
  }
}

TEST(MomentumSGD, SetMomentumTakesEffect) {
  ScalarParam sp(0.0);
  optim::MomentumSGD opt({sp.p}, 0.1, 0.9);
  opt.set_momentum(0.0);
  EXPECT_EQ(opt.momentum(), 0.0);
  sp.set_grad(1.0);
  opt.step();
  sp.set_grad(0.0);
  opt.step();  // with mu = 0 velocity dies instantly
  EXPECT_NEAR(sp.x(), -0.1, 1e-15);
}

TEST(MomentumSGD, NesterovDiffersFromPolyak) {
  ScalarParam a(0.0), b(0.0);
  optim::MomentumSGD polyak({a.p}, 0.1, 0.9, false);
  optim::MomentumSGD nesterov({b.p}, 0.1, 0.9, true);
  for (int i = 0; i < 3; ++i) {
    a.set_grad(1.0);
    b.set_grad(1.0);
    polyak.step();
    nesterov.step();
  }
  EXPECT_NE(a.x(), b.x());
  EXPECT_LT(b.x(), a.x());  // Nesterov moves further on constant gradients
}

TEST(MomentumSGD, VelocityAccessor) {
  ScalarParam sp(0.0);
  optim::MomentumSGD opt({sp.p}, 1.0, 0.5);
  sp.set_grad(1.0);
  opt.step();
  EXPECT_NEAR(opt.velocity(0)[0], -1.0, 1e-15);
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction the first Adam step is ~ lr * sign(g).
  ScalarParam sp(0.0);
  optim::Adam opt({sp.p}, 0.001);
  sp.set_grad(123.0);
  opt.step();
  EXPECT_NEAR(sp.x(), -0.001, 1e-6);
}

TEST(Adam, HandComputedTwoSteps) {
  const double lr = 0.1, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  ScalarParam sp(0.0);
  optim::Adam opt({sp.p}, lr, b1, b2, eps);
  double m = 0.0, v = 0.0, x = 0.0;
  const double grads[2] = {0.5, -0.3};
  for (int tstep = 1; tstep <= 2; ++tstep) {
    const double g = grads[tstep - 1];
    sp.set_grad(g);
    opt.step();
    m = b1 * m + (1 - b1) * g;
    v = b2 * v + (1 - b2) * g * g;
    const double mhat = m / (1 - std::pow(b1, tstep));
    const double vhat = v / (1 - std::pow(b2, tstep));
    x -= lr * mhat / (std::sqrt(vhat) + eps);
    EXPECT_NEAR(sp.x(), x, 1e-12);
  }
}

TEST(Adam, NegativeBeta1Accepted) {
  ScalarParam sp(0.0);
  optim::Adam opt({sp.p}, 0.01, -0.2);
  sp.set_grad(1.0);
  opt.step();
  EXPECT_TRUE(std::isfinite(sp.x()));
}

TEST(Adam, RejectsBadBetas) {
  ScalarParam sp(0.0);
  EXPECT_THROW(optim::Adam({sp.p}, 0.01, 1.0), std::invalid_argument);
  EXPECT_THROW(optim::Adam({sp.p}, 0.01, 0.9, 1.0), std::invalid_argument);
}

TEST(AdaGrad, AccumulatorShrinksSteps) {
  ScalarParam sp(0.0);
  optim::AdaGrad opt({sp.p}, 1.0);
  sp.set_grad(1.0);
  opt.step();
  const double first = -sp.x();
  sp.set_grad(1.0);
  opt.step();
  const double second = -sp.x() - first;
  EXPECT_NEAR(first, 1.0, 1e-6);
  EXPECT_LT(second, first);
  EXPECT_NEAR(second, 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(RMSProp, FixedPointStepSize)  {
  // With constant gradient g, s -> g^2 and step -> lr * g / |g| = lr.
  ScalarParam sp(0.0);
  optim::RMSProp opt({sp.p}, 0.01, 0.5);
  double prev = 0.0;
  for (int i = 0; i < 60; ++i) {
    sp.set_grad(3.0);
    prev = sp.x();
    opt.step();
  }
  EXPECT_NEAR(prev - sp.x(), 0.01, 1e-4);
}

TEST(Clipping, NormComputedOverAllParams) {
  ScalarParam a(0.0), b(0.0);
  a.set_grad(3.0);
  b.set_grad(4.0);
  std::vector<ag::Variable> params = {a.p, b.p};
  EXPECT_NEAR(optim::global_grad_norm(params), 5.0, 1e-12);
}

TEST(Clipping, ScalesDownOnlyWhenAbove) {
  ScalarParam a(0.0), b(0.0);
  a.set_grad(3.0);
  b.set_grad(4.0);
  std::vector<ag::Variable> params = {a.p, b.p};
  const double pre = optim::clip_grad_norm(params, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-12);
  EXPECT_NEAR(optim::global_grad_norm(params), 1.0, 1e-12);
  // Below threshold: untouched.
  const double pre2 = optim::clip_grad_norm(params, 10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-12);
  EXPECT_NEAR(optim::global_grad_norm(params), 1.0, 1e-12);
}

TEST(Clipping, RejectsNonPositiveThreshold) {
  ScalarParam a(0.0);
  std::vector<ag::Variable> params = {a.p};
  EXPECT_THROW(optim::clip_grad_norm(params, 0.0), std::invalid_argument);
}

TEST(Clipping, SquaredNormOverflowClipsInsteadOfZeroing) {
  // Finite elements whose squares overflow: the naive norm is inf and the
  // old code computed scale = max_norm/inf = 0, silently zeroing the
  // gradient. The fix clips to max_norm via a rescaled norm instead.
  ScalarParam a(0.0), b(0.0);
  a.set_grad(1e200);
  b.set_grad(2e200);
  std::vector<ag::Variable> params = {a.p, b.p};
  EXPECT_TRUE(std::isinf(optim::global_grad_norm(params)));
  const double pre = optim::clip_grad_norm(params, 1.0);
  EXPECT_TRUE(std::isfinite(pre));
  EXPECT_NEAR(pre, std::sqrt(5.0) * 1e200, 1e188);
  EXPECT_NEAR(optim::global_grad_norm(params), 1.0, 1e-12);
  // Direction is preserved, only the magnitude is clipped.
  EXPECT_NEAR(a.p.grad()[0] * 2.0, b.p.grad()[0], 1e-12);
}

TEST(Clipping, NanGradientSkipsStepDeterministically) {
  // A NaN norm fails `norm > max_norm`, so the old code passed NaNs
  // through unclipped into the optimizer state. The fix zeroes every
  // gradient (step becomes a no-op) and returns the non-finite norm so
  // callers can count skipped steps.
  ScalarParam a(0.5), b(0.5);
  a.set_grad(std::numeric_limits<double>::quiet_NaN());
  b.set_grad(3.0);
  std::vector<ag::Variable> params = {a.p, b.p};
  const double pre = optim::clip_grad_norm(params, 1.0);
  EXPECT_TRUE(std::isnan(pre));
  EXPECT_EQ(a.p.grad()[0], 0.0);
  EXPECT_EQ(b.p.grad()[0], 0.0);
  optim::MomentumSGD opt(params, 0.1, 0.9);
  opt.step();
  EXPECT_EQ(a.x(), 0.5);
  EXPECT_EQ(b.x(), 0.5);
}

TEST(Clipping, InfiniteGradientElementSkipsStep) {
  // An actually-infinite element cannot be rescued by rescaling -- the
  // gradient is garbage, so it is zeroed like the NaN case.
  ScalarParam a(0.0), b(0.0);
  a.set_grad(std::numeric_limits<double>::infinity());
  b.set_grad(1.0);
  std::vector<ag::Variable> params = {a.p, b.p};
  const double pre = optim::clip_grad_norm(params, 1.0);
  EXPECT_FALSE(std::isfinite(pre));
  EXPECT_EQ(a.p.grad()[0], 0.0);
  EXPECT_EQ(b.p.grad()[0], 0.0);
}

TEST(Clipping, ExplodingBackwardRecoversThroughBothPaths) {
  // End-to-end through autograd: a loss scaled by 1e160 produces huge but
  // finite gradients (squared-sum overflow -> rescale path); scaling by
  // 1e160 twice overflows the gradients themselves (-> skip path).
  t::Rng rng(17);
  ag::Variable w(rng.normal_tensor({4, 3}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({5, 4}));
  std::vector<ag::Variable> params = {w};

  auto backward_scaled = [&](double s1, double s2) {
    w.zero_grad();
    auto loss = ag::mul_scalar(ag::mul_scalar(ag::mean(ag::square(ag::matmul(x, w))), s1), s2);
    loss.backward();
  };

  backward_scaled(1e160, 1.0);  // grads ~1e160: finite, norm overflows
  EXPECT_TRUE(std::isinf(optim::global_grad_norm(params)));
  EXPECT_TRUE(std::isfinite(optim::clip_grad_norm(params, 1.0)));
  EXPECT_NEAR(optim::global_grad_norm(params), 1.0, 1e-9);

  backward_scaled(1e160, 1e160);  // grads overflow to inf: unrecoverable
  EXPECT_FALSE(std::isfinite(optim::clip_grad_norm(params, 1.0)));
  EXPECT_EQ(optim::global_grad_norm(params), 0.0);
}

TEST(LrSchedule, ConstantIsOne) {
  optim::ConstantSchedule s;
  EXPECT_EQ(s.factor(0), 1.0);
  EXPECT_EQ(s.factor(100), 1.0);
}

TEST(LrSchedule, ExponentialDecay) {
  optim::ExponentialDecaySchedule s(0.5);
  EXPECT_EQ(s.factor(0), 1.0);
  EXPECT_EQ(s.factor(1), 0.5);
  EXPECT_EQ(s.factor(3), 0.125);
}

TEST(LrSchedule, DelayedDecayMatchesWsjProtocol) {
  // WSJ: decay 0.9 per epoch after epoch 14.
  optim::ExponentialDecaySchedule s(0.9, 14);
  EXPECT_EQ(s.factor(14), 1.0);
  EXPECT_NEAR(s.factor(15), 0.9, 1e-12);
  EXPECT_NEAR(s.factor(17), 0.9 * 0.9 * 0.9, 1e-12);
}
