#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "tensor/random.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

TEST(BatchNorm, OutputShapeMatchesInput) {
  nn::BatchNorm2d bn(3);
  t::Rng rng(1);
  auto x = ag::Variable(rng.normal_tensor({2, 3, 4, 4}));
  EXPECT_EQ(bn.forward(x).value().shape(), (t::Shape{2, 3, 4, 4}));
}

TEST(BatchNorm, NormalizesPerChannel) {
  nn::BatchNorm2d bn(2);
  t::Rng rng(2);
  // Channels with very different scales and offsets.
  t::Tensor x({4, 2, 3, 3});
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t k = 0; k < 9; ++k) {
      x[(i * 2 + 0) * 9 + k] = 100.0 + 5.0 * rng.normal();
      x[(i * 2 + 1) * 9 + k] = -3.0 + 0.1 * rng.normal();  // var >> eps
    }
  auto y = bn.forward(ag::Variable(x));
  for (std::int64_t ch = 0; ch < 2; ++ch) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t i = 0; i < 4; ++i)
      for (std::int64_t k = 0; k < 9; ++k) mean += y.value()[(i * 2 + ch) * 9 + k];
    mean /= 36.0;
    for (std::int64_t i = 0; i < 4; ++i)
      for (std::int64_t k = 0; k < 9; ++k) {
        const double d = y.value()[(i * 2 + ch) * 9 + k] - mean;
        var += d * d;
      }
    var /= 36.0;
    EXPECT_NEAR(mean, 0.0, 1e-9) << "channel " << ch;
    EXPECT_NEAR(var, 1.0, 1e-3) << "channel " << ch;
  }
}

TEST(BatchNorm, GammaBetaApplied) {
  nn::BatchNorm2d bn(1);
  bn.gamma.value()[0] = 3.0;
  bn.beta.value()[0] = -2.0;
  t::Rng rng(3);
  auto x = ag::Variable(rng.normal_tensor({2, 1, 2, 2}));
  auto y = bn.forward(x);
  double mean = 0.0;
  for (double v : y.value().data()) mean += v;
  mean /= static_cast<double>(y.value().size());
  EXPECT_NEAR(mean, -2.0, 1e-9);  // beta shifts the (zero) mean
}

TEST(BatchNorm, RejectsWrongShapes) {
  nn::BatchNorm2d bn(3);
  t::Rng rng(4);
  auto bad_rank = ag::Variable(rng.normal_tensor({2, 3, 4}));
  EXPECT_THROW(bn.forward(bad_rank), std::invalid_argument);
  auto bad_channels = ag::Variable(rng.normal_tensor({2, 5, 4, 4}));
  EXPECT_THROW(bn.forward(bad_channels), std::invalid_argument);
}

TEST(BatchNorm, GradcheckAllInputs) {
  t::Rng rng(5);
  auto x = ag::Variable(rng.normal_tensor({3, 2, 2, 2}), true);
  auto gamma = ag::Variable(rng.uniform_tensor({2}, 0.5, 1.5), true);
  auto beta = ag::Variable(rng.normal_tensor({2}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::batch_norm2d(in[0], in[1], in[2])));
  };
  const auto result = ag::gradcheck(fn, {x, gamma, beta}, 1e-5, 1e-5, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(BatchNorm, GradientInvariantToInputShift) {
  // BN output is invariant to a constant shift of a channel, so the input
  // gradient must sum to ~0 per channel.
  t::Rng rng(6);
  auto x = ag::Variable(rng.normal_tensor({2, 2, 3, 3}), true);
  nn::BatchNorm2d bn(2);
  auto y = bn.forward(x);
  ag::sum(ag::square(y)).backward();
  for (std::int64_t ch = 0; ch < 2; ++ch) {
    double s = 0.0;
    for (std::int64_t i = 0; i < 2; ++i)
      for (std::int64_t k = 0; k < 9; ++k) s += x.grad()[(i * 2 + ch) * 9 + k];
    EXPECT_NEAR(s, 0.0, 1e-9) << "channel " << ch;
  }
}
