// Sharded parameter-server tests (async/param_server, DESIGN.md §5):
// shard layout, pull/push mechanics, the 1e-12 trajectory-parity pinning
// discipline extended to the async layer (one worker / one shard must
// reproduce the synchronous fused sweep exactly), shard-count invariance,
// real nn::Module worker replicas, and the closed-loop controller keeping
// measured total momentum on target under emergent staleness.
#include "async/param_server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"
#include "core/arena.hpp"
#include "core/kernels/backend.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace async = yf::async;
namespace core = yf::core;
namespace t = yf::tensor;

namespace {

std::vector<ag::Variable> make_params(const std::vector<t::Shape>& shapes, std::uint64_t seed) {
  t::Rng rng(seed);
  std::vector<ag::Variable> params;
  for (const auto& s : shapes) params.emplace_back(rng.normal_tensor(s), true);
  return params;
}

/// Noisy-quadratic gradient g = h*x + noise on every parameter,
/// deterministic per Rng state (same helper as tests/arena_test.cpp).
void quad_grads(std::vector<ag::Variable>& params, double h, t::Rng& rng) {
  for (auto& p : params) {
    const auto x = p.value().data();
    auto g = p.node()->ensure_grad().data();
    for (std::size_t j = 0; j < g.size(); ++j) g[j] = h * x[j] + 0.01 * rng.normal();
  }
}

std::vector<double> flat_values(const std::vector<ag::Variable>& params) {
  std::vector<double> out;
  for (const auto& p : params) {
    const auto v = p.value().data();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

const std::vector<t::Shape> kShapes = {{5, 3}, {8}, {2, 6}, {1}};  // 36 scalars

using OptFactory =
    std::function<std::shared_ptr<yf::optim::Optimizer>(std::vector<ag::Variable>)>;

std::shared_ptr<yf::optim::Optimizer> make_momentum(std::vector<ag::Variable> p) {
  return std::make_shared<yf::optim::MomentumSGD>(std::move(p), 0.02, 0.9);
}

std::shared_ptr<yf::optim::Optimizer> make_yellowfin(std::vector<ag::Variable> p) {
  yf::tuner::YellowFinOptions opts;
  opts.beta = 0.99;
  return std::make_shared<yf::tuner::YellowFin>(std::move(p), opts);
}

std::shared_ptr<yf::optim::Optimizer> make_adam(std::vector<ag::Variable> p) {
  return std::make_shared<yf::optim::Adam>(std::move(p), 0.01);
}

/// Drive the server inline (no threads) with one worker for `steps`
/// noisy-quadratic rounds; returns the final master values.
std::vector<double> run_server_trajectory(const OptFactory& make_opt, std::int64_t shards,
                                          int steps) {
  auto master = make_params(kShapes, 77);
  auto opt = make_opt(master);
  async::ParamServerOptions sopts;
  sopts.shards = shards;
  async::ShardedParamServer server(opt, sopts);

  auto worker_params = make_params(kShapes, 77);  // replica: same init values
  core::ParamArena replica(worker_params);
  t::Rng noise(123);
  for (int s = 0; s < steps; ++s) {
    const auto ticket = server.pull(replica.values());
    replica.zero_grads();
    quad_grads(worker_params, 1.3, noise);
    server.push(replica.grads(), ticket);
  }
  return flat_values(master);
}

/// The synchronous reference: the plain fused optimizer sweep.
std::vector<double> run_sync_trajectory(const OptFactory& make_opt, int steps) {
  auto params = make_params(kShapes, 77);
  auto opt = make_opt(params);
  t::Rng noise(123);
  for (int s = 0; s < steps; ++s) {
    opt->zero_grad();
    quad_grads(params, 1.3, noise);
    opt->step();
  }
  return flat_values(params);
}

}  // namespace

TEST(ShardedParamServer, ShardLayoutCoversArenaContiguously) {
  auto params = make_params(kShapes, 1);
  async::ParamServerOptions opts;
  opts.shards = 5;
  async::ShardedParamServer server(make_momentum(params), opts);
  ASSERT_EQ(server.size(), 36);
  ASSERT_EQ(server.shard_count(), 5);
  std::int64_t expect_lo = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    const auto [lo, hi] = server.shard_range(k);
    EXPECT_EQ(lo, expect_lo) << k;
    EXPECT_GT(hi, lo) << k;
    // Balanced split: every shard within one scalar of 36/5.
    EXPECT_GE(hi - lo, 7) << k;
    EXPECT_LE(hi - lo, 8) << k;
    EXPECT_EQ(server.shard_version(k), 0);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 36);
  // Shard windows alias the master storage.
  auto view = server.shard_values(2);
  view[0] = 1234.5;
  const auto [lo2, hi2] = server.shard_range(2);
  EXPECT_EQ(server.optimizer().arena().values()[static_cast<std::size_t>(lo2)], 1234.5);
}

TEST(ShardedParamServer, ClampsShardCountToArenaSize) {
  auto params = make_params({{3}}, 2);
  async::ParamServerOptions opts;
  opts.shards = 64;
  async::ShardedParamServer server(make_momentum(params), opts);
  EXPECT_EQ(server.shard_count(), 3);
}

TEST(ShardedParamServer, RejectsBadConfigurations) {
  EXPECT_THROW(async::ShardedParamServer(nullptr, {}), std::invalid_argument);

  auto params = make_params({{4}}, 3);
  async::ParamServerOptions bad_history;
  bad_history.history = 2;
  EXPECT_THROW(async::ShardedParamServer(make_momentum(params), bad_history),
               std::invalid_argument);

  // Closed loop needs a momentum target: plain MomentumSGD without
  // mu_target is rejected, with mu_target accepted.
  async::ParamServerOptions loop;
  loop.closed_loop = true;
  EXPECT_THROW(async::ShardedParamServer(make_momentum(params), loop), std::invalid_argument);
  loop.mu_target = 0.5;
  EXPECT_NO_THROW(async::ShardedParamServer(make_momentum(params), loop));

  async::ShardedParamServer server(make_momentum(params), {});
  std::vector<double> wrong(3);
  EXPECT_THROW(server.pull(wrong), std::invalid_argument);
  std::vector<double> values(4);
  const auto ticket = server.pull(values);
  EXPECT_THROW(server.push(wrong, ticket), std::invalid_argument);
  std::vector<double> grad(4, 0.1);
  EXPECT_THROW(server.push(grad, async::PullTicket{}), std::invalid_argument);
}

TEST(ShardedParamServer, PushAdvancesEveryShardVersion) {
  auto params = make_params(kShapes, 4);
  async::ParamServerOptions opts;
  opts.shards = 3;
  async::ShardedParamServer server(make_momentum(params), opts);
  std::vector<double> snapshot(static_cast<std::size_t>(server.size()));
  const auto ticket = server.pull(snapshot);
  for (std::int64_t v : ticket.versions) EXPECT_EQ(v, 0);
  std::vector<double> grad(static_cast<std::size_t>(server.size()), 0.01);
  const auto stats = server.push(grad, ticket);
  EXPECT_EQ(stats.update_index, 1);
  EXPECT_EQ(server.updates(), 1);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(server.shard_version(k), 1);
}

// ---------------------------------------------------------------------------
// Parity: the arena pinning discipline extended to the async layer. One
// worker and one shard must reproduce the synchronous fused sweep to
// 1e-12, for momentum SGD and for the full YellowFin tuner.
// ---------------------------------------------------------------------------

TEST(ShardedParamServer, OneWorkerOneShardMatchesSynchronousMomentumSGD) {
  const auto server_traj = run_server_trajectory(make_momentum, 1, 200);
  const auto sync_traj = run_sync_trajectory(make_momentum, 200);
  ASSERT_EQ(server_traj.size(), sync_traj.size());
  for (std::size_t i = 0; i < sync_traj.size(); ++i) {
    EXPECT_NEAR(server_traj[i], sync_traj[i], 1e-12) << i;
  }
}

TEST(ShardedParamServer, OneWorkerOneShardMatchesSynchronousYellowFin) {
  const auto server_traj = run_server_trajectory(make_yellowfin, 1, 150);
  const auto sync_traj = run_sync_trajectory(make_yellowfin, 150);
  ASSERT_EQ(server_traj.size(), sync_traj.size());
  for (std::size_t i = 0; i < sync_traj.size(); ++i) {
    EXPECT_NEAR(server_traj[i], sync_traj[i], 1e-12) << i;
  }
}

TEST(ShardedParamServer, OneWorkerOneShardMatchesSynchronousAdam) {
  // Adam exercises the iteration-indexed part of the ApplyPlan protocol
  // (bias correction from plan.t rather than a mutating counter).
  const auto server_traj = run_server_trajectory(make_adam, 1, 200);
  const auto sync_traj = run_sync_trajectory(make_adam, 200);
  ASSERT_EQ(server_traj.size(), sync_traj.size());
  for (std::size_t i = 0; i < sync_traj.size(); ++i) {
    EXPECT_NEAR(server_traj[i], sync_traj[i], 1e-12) << i;
  }
}

TEST(ShardedParamServer, TrajectoryInvariantToKernelBackend) {
  // Server trajectories are pinned bit-for-bit across kernel backends:
  // the per-shard fused sweeps are elementwise (per-element arithmetic
  // identical by construction) and YellowFin's measured reductions
  // follow the canonical lane-blocked order on both backends.
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const auto previous = core::active_kernel_backend();
  for (const auto& factory :
       {OptFactory(make_momentum), OptFactory(make_yellowfin), OptFactory(make_adam)}) {
    core::set_kernel_backend(core::KernelBackend::kScalar);
    const auto scalar_traj = run_server_trajectory(factory, 3, 120);
    core::set_kernel_backend(core::KernelBackend::kSimd);
    const auto simd_traj = run_server_trajectory(factory, 3, 120);
    ASSERT_EQ(scalar_traj.size(), simd_traj.size());
    for (std::size_t i = 0; i < scalar_traj.size(); ++i) {
      EXPECT_EQ(scalar_traj[i], simd_traj[i]) << i;
    }
  }
  core::set_kernel_backend(previous);
}

TEST(ShardedParamServer, TrajectoryInvariantToShardCount) {
  // Sharding partitions the same fused sweep into windows; per-element
  // arithmetic is unchanged, so the trajectory must not move at all.
  for (const auto& factory :
       {OptFactory(make_momentum), OptFactory(make_yellowfin), OptFactory(make_adam)}) {
    const auto one = run_server_trajectory(factory, 1, 120);
    const auto five = run_server_trajectory(factory, 5, 120);
    ASSERT_EQ(one.size(), five.size());
    for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], five[i]) << i;
  }
}

TEST(ShardedParamServer, SingleWorkerMeasuresAlgorithmicMomentumExactly) {
  // With one worker there is no asynchrony: every per-coordinate Eq. 37
  // ratio collapses to the algorithmic momentum identically.
  auto master = make_params({{24}}, 9);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(master, 0.05, 0.6);
  async::ParamServerOptions sopts;
  sopts.shards = 4;
  async::ShardedParamServer server(opt, sopts);
  auto worker_params = make_params({{24}}, 9);
  core::ParamArena replica(worker_params);
  t::Rng noise(5);
  for (int s = 0; s < 40; ++s) {
    const auto ticket = server.pull(replica.values());
    replica.zero_grads();
    quad_grads(worker_params, 1.0, noise);
    const auto stats = server.push(replica.grads(), ticket);
    if (s >= 2) {
      ASSERT_TRUE(stats.mu_hat_total.has_value()) << s;
      EXPECT_NEAR(*stats.mu_hat_total, 0.6, 1e-9) << s;
    }
  }
}

// ---------------------------------------------------------------------------
// Real model replicas on real threads.
// ---------------------------------------------------------------------------

namespace {

/// A real nn::Module worker task: softmax regression on a fixed synthetic
/// cluster dataset. Each call builds its own Linear replica plus a
/// minibatch stream seeded per worker.
async::ServerWorker make_linear_worker(std::uint64_t seed) {
  t::Rng model_rng(1000 + seed);
  auto model = std::make_shared<yf::nn::Linear>(4, 3, model_rng);
  auto rng = std::make_shared<t::Rng>(seed);
  async::ServerWorker worker;
  worker.params = model->parameters();
  worker.grad_fn = [model, rng] {
    const std::int64_t batch = 16;
    t::Tensor x({batch, 4});
    std::vector<std::int64_t> y(static_cast<std::size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i) {
      const std::int64_t cls = static_cast<std::int64_t>(rng->uniform(0.0, 3.0)) % 3;
      y[static_cast<std::size_t>(i)] = cls;
      for (std::int64_t j = 0; j < 4; ++j) {
        x[i * 4 + j] = (j == cls ? 2.0 : 0.0) + 0.3 * rng->normal();
      }
    }
    auto loss = ag::softmax_cross_entropy(model->forward(ag::Variable(x)), y);
    loss.backward();
    return loss.value().item();
  };
  return worker;
}

}  // namespace

TEST(ShardedParamServer, RealModuleWorkersTrainConcurrently) {
  auto master = make_linear_worker(0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(master.params, 0.1, 0.9);
  async::ParamServerOptions sopts;
  sopts.shards = 3;
  async::ShardedParamServer server(opt, sopts);

  std::vector<async::ServerWorker> workers;
  for (std::uint64_t w = 1; w <= 4; ++w) workers.push_back(make_linear_worker(w));
  async::ServerRunOptions ropts;
  ropts.steps_per_worker = 60;
  const auto run = async::run_workers(server, workers, ropts);

  ASSERT_EQ(run.total_updates, 240);
  ASSERT_EQ(run.stats.size(), 240u);
  ASSERT_EQ(run.losses.size(), 240u);
  // Every application got a unique, dense update index.
  for (std::size_t i = 0; i < run.stats.size(); ++i) {
    EXPECT_EQ(run.stats[i].update_index, static_cast<std::int64_t>(i) + 1);
  }
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(server.shard_version(k), 240);
  // Training made progress: the tail of the loss curve is below the head.
  const auto mean = [](auto first, auto last) {
    return std::accumulate(first, last, 0.0) / static_cast<double>(last - first);
  };
  const double head = mean(run.losses.begin(), run.losses.begin() + 40);
  const double tail = mean(run.losses.end() - 40, run.losses.end());
  EXPECT_LT(tail, head);
  for (double v : server.optimizer().arena().values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(ShardedParamServer, SplitPushMatchesMonolithicPushInAnyShardOrder) {
  auto run = [](bool split) {
    auto master = make_params(kShapes, 77);
    auto opt = make_momentum(master);
    async::ParamServerOptions sopts;
    sopts.shards = 4;
    async::ShardedParamServer server(opt, sopts);
    auto worker_params = make_params(kShapes, 77);
    core::ParamArena replica(worker_params);
    t::Rng noise(123);
    async::PushStage stage;
    std::vector<double> mus;
    for (int s = 0; s < 12; ++s) {
      const auto ticket = server.pull(replica.values());
      replica.zero_grads();
      quad_grads(worker_params, 1.3, noise);
      async::ApplyStats stats;
      if (split) {
        // Reverse shard order: the median and every per-shard stage are
        // shard-order-invariant, so this must match push() bit for bit.
        server.begin_push(stage);
        for (std::int64_t k = server.shard_count() - 1; k >= 0; --k) {
          server.push_shard(stage, static_cast<std::size_t>(k), replica.grads(), ticket);
        }
        stats = server.end_push(stage);
      } else {
        stats = server.push(replica.grads(), ticket);
      }
      mus.push_back(stats.mu_hat_total.value_or(-42.0));
    }
    return std::pair{flat_values(master), mus};
  };

  const auto mono = run(false);
  const auto split = run(true);
  ASSERT_EQ(mono.first.size(), split.first.size());
  for (std::size_t i = 0; i < mono.first.size(); ++i) {
    EXPECT_EQ(mono.first[i], split.first[i]) << "master value " << i;
  }
  ASSERT_EQ(mono.second.size(), split.second.size());
  for (std::size_t s = 0; s < mono.second.size(); ++s) {
    EXPECT_EQ(mono.second[s], split.second[s]) << "mu_hat at step " << s;
  }
}

TEST(ShardedParamServer, SplitPushRejectsProtocolMisuse) {
  auto master = make_params(kShapes, 77);
  async::ShardedParamServer server(make_momentum(master), {});
  auto worker_params = make_params(kShapes, 77);
  core::ParamArena replica(worker_params);
  const auto ticket = server.pull(replica.values());

  async::PushStage stage;
  EXPECT_THROW(server.push_shard(stage, 0, replica.grads(), ticket), std::logic_error);
  EXPECT_THROW(server.end_push(stage), std::logic_error);
  server.begin_push(stage);
  EXPECT_THROW(server.begin_push(stage), std::logic_error);  // already active
  server.push_shard(stage, 0, replica.grads(), ticket);
  EXPECT_THROW(server.push_shard(stage, 0, replica.grads(), ticket), std::logic_error);
  EXPECT_THROW(server.end_push(stage), std::logic_error);  // shards missing
  // end_push's throw deactivated nothing: finish the push properly.
  for (std::size_t k = 1; k < static_cast<std::size_t>(server.shard_count()); ++k) {
    server.push_shard(stage, k, replica.grads(), ticket);
  }
  EXPECT_EQ(server.end_push(stage).update_index, 1);

  // A grad-reading opening stage cannot start without the full gradient.
  async::ShardedParamServer yf_server(make_yellowfin(make_params(kShapes, 78)), {});
  async::PushStage yf_stage;
  EXPECT_THROW(yf_server.begin_push(yf_stage), std::logic_error);
}

TEST(ShardedParamServer, OverlappedApplyMatchesSequentialPushForSingleWorker) {
  auto run = [](bool overlap) {
    auto master = make_linear_worker(0);
    auto opt = std::make_shared<yf::optim::MomentumSGD>(master.params, 0.1, 0.9);
    async::ParamServerOptions sopts;
    sopts.shards = 3;
    async::ShardedParamServer server(opt, sopts);
    ag::GraphTape tape;
    auto worker = make_linear_worker(7);
    worker.tape = &tape;
    async::ServerRunOptions ropts;
    ropts.steps_per_worker = 40;
    ropts.overlap_apply = overlap;
    const auto result = async::run_workers(server, {worker}, ropts);
    const auto values = server.optimizer().arena().values();
    return std::pair{result.losses, std::vector<double>(values.begin(), values.end())};
  };

  // One worker pushes strictly in sequence, so the overlapped protocol
  // must reproduce the sequential trajectory bit for bit.
  const auto sequential = run(false);
  const auto overlapped = run(true);
  ASSERT_EQ(sequential.first.size(), overlapped.first.size());
  for (std::size_t s = 0; s < sequential.first.size(); ++s) {
    EXPECT_EQ(sequential.first[s], overlapped.first[s]) << "loss at step " << s;
  }
  ASSERT_EQ(sequential.second.size(), overlapped.second.size());
  for (std::size_t i = 0; i < sequential.second.size(); ++i) {
    EXPECT_EQ(sequential.second[i], overlapped.second[i]) << "master value " << i;
  }
}

TEST(ShardedParamServer, OverlapApplyFallsBackToSequentialForYellowFin) {
  // YellowFin's begin_apply clips the full gradient (grad_free_begin
  // false): overlap_apply must silently use the sequential push and
  // change nothing.
  auto run = [](bool overlap) {
    auto master = make_linear_worker(0);
    auto opt = make_yellowfin(master.params);
    async::ShardedParamServer server(opt, {});
    ag::GraphTape tape;
    auto worker = make_linear_worker(9);
    worker.tape = &tape;
    async::ServerRunOptions ropts;
    ropts.steps_per_worker = 20;
    ropts.overlap_apply = overlap;
    const auto result = async::run_workers(server, {worker}, ropts);
    const auto values = server.optimizer().arena().values();
    return std::vector<double>(values.begin(), values.end());
  };
  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) EXPECT_EQ(off[i], on[i]);
}

TEST(ShardedParamServer, RejectsWorkerAliasedToMaster) {
  auto master = make_linear_worker(0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(master.params, 0.1, 0.9);
  async::ShardedParamServer server(opt, {});
  // Handing the master's own (already arena-flattened) parameters to a
  // worker would bypass every shard lock; run_workers must refuse.
  std::vector<async::ServerWorker> workers = {
      {master.params, [] { return 0.0; }},
  };
  async::ServerRunOptions ropts;
  ropts.steps_per_worker = 1;
  EXPECT_THROW(async::run_workers(server, workers, ropts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Closed loop under emergent staleness (the Fig. 4 right pane on real
// threads): measured total momentum must stay near the target while the
// open loop overshoots it.
// ---------------------------------------------------------------------------

namespace {

/// Quadratic-bowl worker over a flat parameter vector with gradient noise.
async::ServerWorker make_bowl_worker(std::int64_t dim, double h, double noise,
                                     std::uint64_t seed) {
  ag::Variable x(t::Tensor::full({dim}, 1.5), true);
  auto rng = std::make_shared<t::Rng>(seed);
  async::ServerWorker worker;
  worker.params = {x};
  worker.grad_fn = [x, rng, h, noise] {
    auto g = x.node()->ensure_grad().data();
    const auto v = x.value().data();
    double loss = 0.0;
    for (std::size_t j = 0; j < g.size(); ++j) {
      loss += 0.5 * h * v[j] * v[j];
      g[j] = h * v[j] + noise * rng->normal();
    }
    return loss;
  };
  return worker;
}

struct LoopRun {
  double tail_gap = 0.0;      ///< mean (mu_hat - target) over the tail
  double applied_tail = 0.0;  ///< mean applied algorithmic momentum, tail
};

LoopRun run_loop(bool closed) {
  const std::int64_t dim = 48;
  const double mu_target = 0.5;
  ag::Variable master_x(t::Tensor::full({dim}, 1.5), true);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{master_x},
                                                      0.05, mu_target);
  async::ParamServerOptions sopts;
  sopts.shards = 4;
  sopts.closed_loop = closed;
  sopts.mu_target = mu_target;
  sopts.gamma = 0.05;
  async::ShardedParamServer server(opt, sopts);

  std::vector<async::ServerWorker> workers;
  for (std::uint64_t w = 0; w < 8; ++w) workers.push_back(make_bowl_worker(dim, 1.0, 0.05, 40 + w));
  async::ServerRunOptions ropts;
  ropts.steps_per_worker = 150;
  ropts.compute_delay_us = 500;  // force read-compute-write overlap
  const auto run = async::run_workers(server, workers, ropts);

  LoopRun out;
  double gap_sum = 0.0, applied_sum = 0.0;
  std::int64_t n = 0;
  const std::size_t start = run.stats.size() / 2;
  for (std::size_t i = start; i < run.stats.size(); ++i) {
    if (!run.stats[i].mu_hat_total) continue;
    gap_sum += *run.stats[i].mu_hat_total - run.stats[i].target_momentum;
    applied_sum += run.stats[i].applied_momentum;
    ++n;
  }
  EXPECT_GT(n, 100);
  out.tail_gap = gap_sum / static_cast<double>(std::max<std::int64_t>(n, 1));
  out.applied_tail = applied_sum / static_cast<double>(std::max<std::int64_t>(n, 1));
  return out;
}

}  // namespace

TEST(ShardedParamServer, ClosedLoopKeepsTotalMomentumOnTarget) {
  const LoopRun open = run_loop(false);
  const LoopRun closed = run_loop(true);
  // Asynchrony-induced momentum is visible in the open loop...
  EXPECT_GT(open.tail_gap, 0.04);
  // ...and the feedback loop cancels most of it: measured total momentum
  // stays within tolerance of the target.
  EXPECT_LT(std::abs(closed.tail_gap), std::abs(open.tail_gap));
  EXPECT_LT(std::abs(closed.tail_gap), 0.05);
  // Cancelling requires pulling applied momentum below the target.
  EXPECT_LT(closed.applied_tail, open.applied_tail - 0.02);
}
