#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace t = yf::tensor;

TEST(TensorShape, NumelBasics) {
  EXPECT_EQ(t::numel({}), 1);
  EXPECT_EQ(t::numel({0}), 0);
  EXPECT_EQ(t::numel({3}), 3);
  EXPECT_EQ(t::numel({2, 3, 4}), 24);
}

TEST(TensorShape, NumelRejectsNegative) {
  EXPECT_THROW(t::numel({2, -1}), std::invalid_argument);
}

TEST(TensorShape, ToString) { EXPECT_EQ(t::to_string({2, 3}), "[2, 3]"); }

TEST(Tensor, DefaultIsEmpty) {
  t::Tensor x;
  EXPECT_EQ(x.size(), 0);
  EXPECT_EQ(x.ndim(), 1);
}

TEST(Tensor, ZeroInitialized) {
  t::Tensor x({2, 3});
  EXPECT_EQ(x.size(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(x[i], 0.0);
}

TEST(Tensor, ConstructFromData) {
  t::Tensor x({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(x.at({0, 0}), 1.0);
  EXPECT_EQ(x.at({0, 1}), 2.0);
  EXPECT_EQ(x.at({1, 0}), 3.0);
  EXPECT_EQ(x.at({1, 1}), 4.0);
}

TEST(Tensor, ConstructSizeMismatchThrows) {
  EXPECT_THROW(t::Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ScalarFactory) {
  auto s = t::Tensor::scalar(3.5);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.item(), 3.5);
}

TEST(Tensor, ItemThrowsOnNonScalar) {
  t::Tensor x({2});
  EXPECT_THROW(x.item(), std::invalid_argument);
}

TEST(Tensor, FullAndOnes) {
  auto f = t::Tensor::full({3}, 2.5);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(f[i], 2.5);
  auto o = t::Tensor::ones({2, 2});
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(o[i], 1.0);
}

TEST(Tensor, Arange) {
  auto a = t::Tensor::arange(4);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(a[i], static_cast<double>(i));
}

TEST(Tensor, CloneIsDeep) {
  t::Tensor x({2}, {1, 2});
  auto y = x.clone();
  y[0] = 99;
  EXPECT_EQ(x[0], 1.0);
  EXPECT_FALSE(x.shares_storage_with(y));
}

TEST(Tensor, ReshapeSharesStorage) {
  t::Tensor x({2, 3});
  auto y = x.reshape({3, 2});
  EXPECT_TRUE(x.shares_storage_with(y));
  y[0] = 7.0;
  EXPECT_EQ(x[0], 7.0);
}

TEST(Tensor, ReshapeWrongCountThrows) {
  t::Tensor x({2, 3});
  EXPECT_THROW(x.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, DimNegativeAxis) {
  t::Tensor x({2, 3, 4});
  EXPECT_EQ(x.dim(-1), 4);
  EXPECT_EQ(x.dim(-3), 2);
  EXPECT_THROW(x.dim(3), std::out_of_range);
}

TEST(Tensor, AtBoundsChecked) {
  t::Tensor x({2, 2});
  EXPECT_THROW(x.at({2, 0}), std::out_of_range);
  EXPECT_THROW(x.at({0}), std::invalid_argument);
}

TEST(Tensor, AddInPlaceWithScale) {
  t::Tensor x({2}, {1, 2});
  t::Tensor y({2}, {10, 20});
  x.add_(y, 0.5);
  EXPECT_EQ(x[0], 6.0);
  EXPECT_EQ(x[1], 12.0);
}

TEST(Tensor, AddInPlaceShapeMismatchThrows) {
  t::Tensor x({2});
  t::Tensor y({3});
  EXPECT_THROW(x.add_(y), std::invalid_argument);
}

TEST(Tensor, MulAndZeroInPlace) {
  t::Tensor x({2}, {3, 4});
  x.mul_(2.0);
  EXPECT_EQ(x[0], 6.0);
  x.zero_();
  EXPECT_EQ(x[1], 0.0);
}

TEST(Tensor, FillSetsAll) {
  t::Tensor x({3});
  x.fill(1.25);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(x[i], 1.25);
}
