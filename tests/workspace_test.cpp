#include "core/workspace.hpp"

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace core = yf::core;
namespace t = yf::tensor;

TEST(Workspace, AcquireShapesAndZeroFills) {
  core::Workspace ws;
  auto a = ws.acquire({2, 3});
  EXPECT_EQ(a.shape(), (t::Shape{2, 3}));
  for (std::int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 0.0);
  auto b = ws.acquire({5});
  EXPECT_EQ(b.dim(0), 5);
  // Distinct acquisitions never alias.
  a.fill(7.0);
  for (std::int64_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0.0);
}

TEST(Workspace, RollbackRecyclesTheSameStorage) {
  core::Workspace ws;
  (void)ws.acquire({4});
  const auto mark = ws.mark();
  auto b = ws.acquire({8});
  b.fill(3.0);
  const double* b_addr = b.data().data();
  ws.rollback(mark);
  auto c = ws.acquire({8});
  // Same window handed out again, and freshly zero-filled.
  EXPECT_EQ(c.data().data(), b_addr);
  for (std::int64_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 0.0);
}

TEST(Workspace, HighWaterMarkReuseStopsGrowth) {
  core::Workspace ws;
  std::int64_t cap_after_warmup = 0;
  for (int step = 0; step < 5; ++step) {
    const auto mark = ws.mark();
    for (int i = 0; i < 10; ++i) (void)ws.acquire({64, 3});
    if (step == 0) cap_after_warmup = ws.capacity();
    ws.rollback(mark);
  }
  // Identical demand after warm-up is served from existing blocks.
  EXPECT_EQ(ws.capacity(), cap_after_warmup);
  EXPECT_EQ(ws.held(), 0);
  EXPECT_GE(ws.high_water(), 10 * 64 * 3);
}

TEST(Workspace, GrowsAcrossBlocksWhenDemandRises) {
  core::Workspace ws(16);
  const auto blocks0 = ws.block_count();
  (void)ws.acquire({100000});  // far beyond the initial block
  EXPECT_GT(ws.block_count(), blocks0);
  EXPECT_GE(ws.capacity(), 100000);
}

TEST(Workspace, TensorsOutliveTheWorkspace) {
  t::Tensor survivor;
  {
    core::Workspace ws;
    survivor = ws.acquire({3});
    survivor.fill(2.5);
  }
  EXPECT_EQ(survivor[2], 2.5);  // storage is shared, not owned by ws
}

TEST(Workspace, RollbackValidation) {
  core::Workspace ws;
  const auto mark = ws.mark();
  (void)ws.acquire({4});
  core::Workspace::Marker bogus = mark;
  bogus.held = 1000;
  EXPECT_THROW(ws.rollback(bogus), std::invalid_argument);
}
