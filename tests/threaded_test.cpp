#include "async/threaded_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "async/total_momentum.hpp"

namespace async = yf::async;
namespace t = yf::tensor;

namespace {

/// Quadratic bowl gradient oracle with optional noise.
async::GradOracle bowl_oracle(double h, double noise) {
  return [h, noise](const t::Tensor& x, t::Rng& rng) {
    t::Tensor g(x.shape());
    for (std::int64_t j = 0; j < x.size(); ++j) g[j] = h * x[j] + noise * rng.normal();
    return g;
  };
}

}  // namespace

TEST(ThreadedTrainer, SingleWorkerConverges) {
  t::Tensor x0({8});
  x0.fill(2.0);
  async::ThreadedTrainerOptions opts;
  opts.workers = 1;
  opts.steps_per_worker = 300;
  opts.lr = 0.1;
  opts.momentum = 0.5;
  const auto result = async::run_threaded_training(x0, bowl_oracle(1.0, 0.0), opts);
  EXPECT_EQ(result.total_updates, 300);
  double norm = 0.0;
  for (double v : result.final_x.data()) norm += v * v;
  EXPECT_LT(norm, 1e-6);
}

TEST(ThreadedTrainer, SingleWorkerMeasuresAlgorithmicMomentum) {
  t::Tensor x0({16});
  x0.fill(1.0);
  async::ThreadedTrainerOptions opts;
  opts.workers = 1;
  opts.steps_per_worker = 80;
  opts.lr = 0.02;
  opts.momentum = 0.6;
  const auto result = async::run_threaded_training(x0, bowl_oracle(1.0, 0.0), opts);
  ASSERT_GT(result.total_momentum_estimates.size(), 10u);
  // With one worker there is no asynchrony: estimates match mu.
  const double est = async::median(
      std::vector<double>(result.total_momentum_estimates.end() - 10,
                          result.total_momentum_estimates.end()));
  EXPECT_NEAR(est, 0.6, 0.05);
}

TEST(ThreadedTrainer, AsynchronyRaisesTotalMomentum) {
  // The Mitliagkas et al. effect on a real concurrent system: with several
  // workers and zero algorithmic momentum, measured total momentum > 0.
  t::Tensor x0({128});
  x0.fill(1.0);
  async::ThreadedTrainerOptions opts;
  opts.workers = 16;
  opts.steps_per_worker = 100;
  opts.lr = 0.01;
  opts.momentum = 0.0;
  opts.seed = 42;
  opts.compute_delay_us = 300;  // force read-compute-write overlap
  // Noiseless oracle isolates the asynchrony signal from gradient noise.
  const auto result = async::run_threaded_training(x0, bowl_oracle(1.0, 0.0), opts);
  ASSERT_GT(result.total_momentum_estimates.size(), 100u);
  // Estimates on a racing system are noisy; use the mean, as the running
  // average in the paper's Fig. 4 does.
  double sum = 0.0;
  for (double e : result.total_momentum_estimates) sum += e;
  const double est = sum / static_cast<double>(result.total_momentum_estimates.size());
  EXPECT_GT(est, 0.03) << "asynchrony should induce positive total momentum";
  EXPECT_EQ(result.total_updates, 16 * 100);
}

TEST(ThreadedTrainer, DeterministicWithOneWorker) {
  t::Tensor x0({4});
  x0.fill(1.5);
  async::ThreadedTrainerOptions opts;
  opts.workers = 1;
  opts.steps_per_worker = 50;
  opts.lr = 0.05;
  opts.momentum = 0.3;
  opts.seed = 7;
  const auto a = async::run_threaded_training(x0, bowl_oracle(1.0, 0.1), opts);
  const auto b = async::run_threaded_training(x0, bowl_oracle(1.0, 0.1), opts);
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(a.final_x[j], b.final_x[j]);
}
