// Framing-layer tests in isolation (dist/wire, DESIGN.md §12): the codec
// runs over in-memory byte streams here -- no sockets -- so every failure
// mode is driven deterministically: short reads of any granularity, torn
// frames, checksum mismatches, oversized payloads rejected from the
// header, reserved-field violations, and a malformed-frame fuzz loop
// pinning that arbitrary bytes either decode, hit clean EOF, or throw
// WireError -- never anything else.
#include "dist/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace dist = yf::dist;

namespace {

/// In-memory ByteSource that serves at most `chunk` bytes per read_some
/// call -- chunk=1 is the maximally-short-read adversary.
class MemSource final : public dist::ByteSource {
 public:
  MemSource(std::vector<std::byte> data, std::size_t chunk = SIZE_MAX)
      : data_(std::move(data)), chunk_(chunk) {}

  std::size_t read_some(std::span<std::byte> dst) override {
    const std::size_t left = data_.size() - pos_;
    const std::size_t n = std::min({dst.size(), left, chunk_});
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), n, dst.begin());
    pos_ += n;
    return n;
  }

 private:
  std::vector<std::byte> data_;
  std::size_t pos_ = 0;
  std::size_t chunk_;
};

class MemSink final : public dist::ByteSink {
 public:
  void write_all(std::span<const std::byte> data) override {
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  std::vector<std::byte> bytes;
};

std::vector<std::byte> bytes_of(std::initializer_list<unsigned> v) {
  std::vector<std::byte> out;
  for (unsigned b : v) out.push_back(static_cast<std::byte>(b));
  return out;
}

/// One encoded frame with the given op and payload bytes.
std::vector<std::byte> encoded(dist::Op op, const std::vector<std::byte>& payload) {
  std::vector<std::byte> out;
  dist::encode_frame(out, op, payload);
  return out;
}

}  // namespace

TEST(DistWire, HeaderLayoutIsExactlyAsSpecified) {
  const auto payload = bytes_of({0xAA, 0xBB, 0xCC});
  const auto frame = encoded(dist::Op::kPush, payload);
  ASSERT_EQ(frame.size(), dist::kHeaderBytes + 3);
  // magic "YFWP"
  EXPECT_EQ(frame[0], std::byte{0x59});
  EXPECT_EQ(frame[1], std::byte{0x46});
  EXPECT_EQ(frame[2], std::byte{0x57});
  EXPECT_EQ(frame[3], std::byte{0x50});
  // version 1, little-endian u16
  EXPECT_EQ(frame[4], std::byte{1});
  EXPECT_EQ(frame[5], std::byte{0});
  // op kPush = 5
  EXPECT_EQ(frame[6], std::byte{5});
  EXPECT_EQ(frame[7], std::byte{0});
  // shard (u32) + shard_version (u64): reserved, zero in v1
  for (std::size_t i = 8; i < 20; ++i) EXPECT_EQ(frame[i], std::byte{0}) << "offset " << i;
  // payload_len = 3 (u64 LE)
  EXPECT_EQ(frame[20], std::byte{3});
  for (std::size_t i = 21; i < 28; ++i) EXPECT_EQ(frame[i], std::byte{0});
  // reserved u32 at 36
  for (std::size_t i = 36; i < 40; ++i) EXPECT_EQ(frame[i], std::byte{0});
}

TEST(DistWire, RoundTripsThroughArbitrarilyShortReads) {
  const auto payload = bytes_of({1, 2, 3, 4, 5, 6, 7});
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{5}, SIZE_MAX}) {
    MemSource src(encoded(dist::Op::kPullReply, payload), chunk);
    dist::FrameHeader header;
    std::vector<std::byte> got;
    ASSERT_TRUE(dist::read_frame(src, header, got)) << "chunk " << chunk;
    EXPECT_EQ(header.op, dist::Op::kPullReply);
    EXPECT_EQ(header.version, dist::kWireVersion);
    EXPECT_EQ(got, payload);
    // ...and the stream ends cleanly at the frame boundary.
    EXPECT_FALSE(dist::read_frame(src, header, got));
  }
}

TEST(DistWire, BackToBackFramesDecodeInOrder) {
  std::vector<std::byte> stream;
  dist::encode_frame(stream, dist::Op::kHello, {});
  dist::encode_frame(stream, dist::Op::kPull, {});
  const auto payload = bytes_of({9, 9});
  dist::encode_frame(stream, dist::Op::kError, payload);
  MemSource src(std::move(stream), 3);
  dist::FrameHeader header;
  std::vector<std::byte> got;
  ASSERT_TRUE(dist::read_frame(src, header, got));
  EXPECT_EQ(header.op, dist::Op::kHello);
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(dist::read_frame(src, header, got));
  EXPECT_EQ(header.op, dist::Op::kPull);
  ASSERT_TRUE(dist::read_frame(src, header, got));
  EXPECT_EQ(header.op, dist::Op::kError);
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(dist::read_frame(src, header, got));
}

TEST(DistWire, TornHeaderThrowsCleanEofReturnsFalse) {
  const auto frame = encoded(dist::Op::kHello, {});
  dist::FrameHeader header;
  std::vector<std::byte> got;
  {
    MemSource empty({});
    EXPECT_FALSE(dist::read_frame(empty, header, got));  // clean EOF
  }
  // Every strictly-partial header is a torn frame, not an EOF.
  for (std::size_t cut : {std::size_t{1}, std::size_t{4}, dist::kHeaderBytes - 1}) {
    MemSource src({frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut)});
    EXPECT_THROW(dist::read_frame(src, header, got), dist::WireError) << "cut " << cut;
  }
}

TEST(DistWire, TornPayloadThrows) {
  const auto frame = encoded(dist::Op::kPush, bytes_of({1, 2, 3, 4}));
  dist::FrameHeader header;
  std::vector<std::byte> got;
  for (std::size_t cut = dist::kHeaderBytes; cut < frame.size(); ++cut) {
    MemSource src({frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut)}, 1);
    EXPECT_THROW(dist::read_frame(src, header, got), dist::WireError) << "cut " << cut;
  }
}

TEST(DistWire, ChecksumMismatchThrows) {
  auto frame = encoded(dist::Op::kPush, bytes_of({10, 20, 30}));
  frame[dist::kHeaderBytes + 1] ^= std::byte{0x40};  // corrupt one payload byte
  MemSource src(std::move(frame));
  dist::FrameHeader header;
  std::vector<std::byte> got;
  EXPECT_THROW(dist::read_frame(src, header, got), dist::WireError);
}

TEST(DistWire, MalformedHeadersThrow) {
  dist::FrameHeader header;
  std::vector<std::byte> got;
  const auto base = encoded(dist::Op::kHello, {});
  struct Case {
    const char* name;
    std::size_t offset;
    unsigned value;
  };
  const Case cases[] = {
      {"bad magic", 0, 0x5A},       {"unknown version", 4, 2},
      {"unknown op", 6, 0x7F},      {"op zero", 6, 0},
      {"nonzero shard", 8, 1},      {"nonzero shard_version", 12, 1},
      {"nonzero reserved", 36, 1},
  };
  for (const Case& c : cases) {
    auto frame = base;
    frame[c.offset] = static_cast<std::byte>(c.value);
    MemSource src(std::move(frame));
    EXPECT_THROW(dist::read_frame(src, header, got), dist::WireError) << c.name;
  }
}

TEST(DistWire, OversizedPayloadRejectedFromHeaderAlone) {
  // Header declares 1 MiB; only the header is present. With max_payload
  // 64 KiB the frame must be rejected before any payload read/allocation
  // -- a truncated-stream WireError instead would mean it tried to read.
  std::vector<std::byte> frame = encoded(dist::Op::kPush, {});
  frame[20] = std::byte{0};
  frame[22] = std::byte{0x10};  // payload_len = 0x100000
  MemSource src(std::move(frame));
  dist::FrameHeader header;
  std::vector<std::byte> got;
  try {
    dist::read_frame(src, header, got, 64u << 10);
    FAIL() << "oversized payload accepted";
  } catch (const dist::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("payload"), std::string::npos) << e.what();
  }
}

TEST(DistWire, FuzzedStreamsNeverEscapeWireError) {
  std::mt19937 rng(20260808);
  dist::FrameHeader header;
  std::vector<std::byte> got;
  const auto valid = encoded(dist::Op::kPush, bytes_of({1, 2, 3, 4, 5, 6, 7, 8}));
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> stream;
    if (iter % 2 == 0) {
      // Pure noise of random length.
      const std::size_t len = rng() % 96;
      for (std::size_t i = 0; i < len; ++i) stream.push_back(static_cast<std::byte>(rng() & 0xFF));
    } else {
      // A valid frame with 1-3 mutated bytes -- the adversary that almost
      // speaks the protocol.
      stream = valid;
      const int flips = 1 + static_cast<int>(rng() % 3);
      for (int f = 0; f < flips; ++f) {
        stream[rng() % stream.size()] ^= static_cast<std::byte>(1u << (rng() % 8));
      }
    }
    MemSource src(std::move(stream), 1 + rng() % 7);
    try {
      while (dist::read_frame(src, header, got)) {
      }
    } catch (const dist::WireError&) {
      // The only permitted escape.
    }
  }
}

// ---------------------------------------------------------------------------
// Payload primitives: bit-exact doubles are what the one-worker socket
// trajectory's EXPECT_EQ identity rests on.
// ---------------------------------------------------------------------------

TEST(DistWire, DoublesRoundTripBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.3e-300,
                           5e-324,  // smallest denormal
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           0.1 + 0.2};
  std::vector<std::byte> buf;
  dist::PayloadWriter out(buf);
  for (double v : values) out.f64(v);
  out.f64_span(values);
  dist::PayloadReader in(buf);
  for (double v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(in.f64()), std::bit_cast<std::uint64_t>(v));
  }
  double span_back[std::size(values)];
  in.f64_span(span_back);
  for (std::size_t i = 0; i < std::size(values); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(span_back[i]), std::bit_cast<std::uint64_t>(values[i]));
  }
  in.expect_end();
}

TEST(DistWire, IntegerAndStringPrimitivesRoundTrip) {
  std::vector<std::byte> buf;
  dist::PayloadWriter out(buf);
  out.u8(0xFE);
  out.u16(0xBEEF);
  out.u32(0xDEADBEEF);
  out.u64(0x0123456789ABCDEFull);
  out.i64(-42);
  out.i64(std::numeric_limits<std::int64_t>::min());
  const std::int64_t versions[] = {0, 1, -1, 1LL << 40};
  out.i64_span(versions);
  out.str("pull before hello");
  dist::PayloadReader in(buf);
  EXPECT_EQ(in.u8(), 0xFE);
  EXPECT_EQ(in.u16(), 0xBEEF);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_EQ(in.i64(), std::numeric_limits<std::int64_t>::min());
  std::int64_t back[std::size(versions)];
  in.i64_span(back);
  for (std::size_t i = 0; i < std::size(versions); ++i) EXPECT_EQ(back[i], versions[i]);
  EXPECT_EQ(in.str(), "pull before hello");
  EXPECT_EQ(in.remaining(), 0u);
  in.expect_end();
}

TEST(DistWire, ReaderUnderrunAndTrailingGarbageThrow) {
  std::vector<std::byte> buf;
  dist::PayloadWriter out(buf);
  out.u32(7);
  dist::PayloadReader short_read(buf);
  EXPECT_THROW(short_read.u64(), dist::WireError);  // 4 bytes can't make a u64
  dist::PayloadReader trailing(buf);
  trailing.u16();
  EXPECT_THROW(trailing.expect_end(), dist::WireError);
  // A string whose declared length exceeds the payload is an underrun too.
  std::vector<std::byte> lie;
  dist::PayloadWriter out2(lie);
  out2.u32(1000);  // str header claiming 1000 bytes, none present
  dist::PayloadReader in2(lie);
  EXPECT_THROW(in2.str(), dist::WireError);
}

TEST(DistWire, WriteFrameMatchesEncodeFrame) {
  const auto payload = bytes_of({5, 4, 3});
  MemSink sink;
  std::vector<std::byte> scratch;
  dist::write_frame(sink, dist::Op::kPushReply, payload, scratch);
  EXPECT_EQ(sink.bytes, encoded(dist::Op::kPushReply, payload));
}
