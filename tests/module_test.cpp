#include "nn/module.hpp"

#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/lstm.hpp"

namespace nn = yf::nn;
namespace t = yf::tensor;

namespace {

class TinyNet : public nn::Module {
 public:
  explicit TinyNet(t::Rng& rng) {
    w = register_parameter("w", t::Tensor({2, 2}, {1, 2, 3, 4}));
    inner_ = std::make_shared<nn::Linear>(2, 3, rng);
    register_module("inner", inner_);
  }
  yf::autograd::Variable w;

 private:
  std::shared_ptr<nn::Linear> inner_;
};

}  // namespace

TEST(Module, ParameterCountsAndNames) {
  t::Rng rng(1);
  TinyNet net(rng);
  const auto named = net.named_parameters();
  ASSERT_EQ(named.size(), 3u);  // w, inner.weight, inner.bias
  EXPECT_EQ(named[0].first, "w");
  EXPECT_EQ(named[1].first, "inner.weight");
  EXPECT_EQ(named[2].first, "inner.bias");
  EXPECT_EQ(net.parameter_count(), 4 + 6 + 3);
}

TEST(Module, ParametersShareStorageWithModule) {
  t::Rng rng(1);
  TinyNet net(rng);
  auto params = net.parameters();
  params[0].value()[0] = 42.0;
  EXPECT_EQ(net.w.value()[0], 42.0);
}

TEST(Module, ZeroGradClearsAll) {
  t::Rng rng(1);
  TinyNet net(rng);
  for (auto& p : net.parameters()) p.node()->ensure_grad().fill(5.0);
  net.zero_grad();
  for (const auto& p : net.parameters()) {
    for (double g : p.grad().data()) EXPECT_EQ(g, 0.0);
  }
}

TEST(Module, RegisterNullChildThrows) {
  class Bad : public nn::Module {
   public:
    Bad() { register_module("x", nullptr); }
  };
  EXPECT_THROW(Bad{}, std::invalid_argument);
}

TEST(Module, FlattenGradsOrderAndValues) {
  t::Rng rng(1);
  TinyNet net(rng);
  auto params = net.parameters();
  params[0].node()->ensure_grad().fill(1.0);
  params[1].node()->ensure_grad().fill(2.0);
  params[2].node()->ensure_grad().fill(3.0);
  auto flat = nn::flatten_grads(params);
  EXPECT_EQ(flat.size(), net.parameter_count());
  EXPECT_EQ(flat[0], 1.0);
  EXPECT_EQ(flat[4], 2.0);
  EXPECT_EQ(flat[4 + 6], 3.0);
}

TEST(Module, FlattenValuesMatchesParameters) {
  t::Rng rng(1);
  TinyNet net(rng);
  auto flat = nn::flatten_values(net.parameters());
  EXPECT_EQ(flat[0], 1.0);
  EXPECT_EQ(flat[3], 4.0);
}

TEST(Module, GradSqNorm) {
  t::Rng rng(1);
  TinyNet net(rng);
  auto params = net.parameters();
  for (auto& p : params) p.node()->ensure_grad().fill(2.0);
  EXPECT_NEAR(nn::grad_sq_norm(params), 4.0 * static_cast<double>(net.parameter_count()),
              1e-12);
}

TEST(Module, LstmParameterNamesAreNested) {
  t::Rng rng(2);
  nn::LSTM lstm(4, 8, 2, rng);
  const auto named = lstm.named_parameters();
  ASSERT_EQ(named.size(), 6u);  // 2 layers x (w_x, w_h, b)
  EXPECT_EQ(named[0].first, "cell0.w_x");
  EXPECT_EQ(named[5].first, "cell1.b");
}
