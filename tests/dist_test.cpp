// Distributed engine tests (dist/*, DESIGN.md §12): the socket transport
// end to end on localhost. The headline pin is the acceptance criterion
// for the whole subsystem -- a one-worker closed-loop YellowFin run over
// YF_ENGINE=socket is EXPECT_EQ-bit-identical to the in-process engine,
// which holds because the wire carries doubles as IEEE-754 bit patterns
// and the master applies them through the same ShardedParamServer
// arithmetic. Also covered: the hello handshake, multi-client convergence
// with live ApplyStats, protocol-violation error frames, and both sides'
// shutdown handshake / post-shutdown contracts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <memory>
#include <vector>

#include "async/param_server.hpp"
#include "dist/channel.hpp"
#include "dist/client.hpp"
#include "dist/fault.hpp"
#include "dist/master.hpp"
#include "dist/socket.hpp"
#include "dist/wire.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace async = yf::async;
namespace dist = yf::dist;
namespace t = yf::tensor;

namespace {

constexpr const char* kHost = "127.0.0.1";

/// True when the chaos CI variant armed YF_FAULT_PLAN: retries then make
/// exact connection/frame counts nondeterministic, so those assertions
/// relax while every exactly-once and trajectory pin stays unconditional.
bool chaos_active() { return dist::FaultPlan::from_env().active(); }

std::vector<ag::Variable> make_params(const std::vector<t::Shape>& shapes, std::uint64_t seed) {
  t::Rng rng(seed);
  std::vector<ag::Variable> params;
  for (const auto& s : shapes) params.emplace_back(rng.normal_tensor(s), true);
  return params;
}

std::vector<double> flat_values(const std::vector<ag::Variable>& params) {
  std::vector<double> out;
  for (const auto& p : params) {
    const auto v = p.value().data();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

const std::vector<t::Shape> kShapes = {{5, 3}, {8}, {2, 6}, {1}};  // 36 scalars

/// Noisy-quadratic worker over its own replica Variables, deterministic
/// per seed (the tests/param_server_test.cpp gradient).
dist::ChannelWorker make_quad_worker(std::uint64_t seed) {
  dist::ChannelWorker worker;
  worker.params = make_params(kShapes, 77);
  auto params = worker.params;  // grad_fn keeps the Variables alive
  auto rng = std::make_shared<t::Rng>(seed);
  worker.grad_fn = [params, rng]() mutable {
    double loss = 0.0;
    for (auto& p : params) {
      const auto x = p.value().data();
      auto g = p.node()->ensure_grad().data();
      for (std::size_t j = 0; j < g.size(); ++j) {
        loss += 0.5 * 1.3 * x[j] * x[j];
        g[j] = 1.3 * x[j] + 0.01 * rng->normal();
      }
    }
    return loss;
  };
  return worker;
}

struct EngineRun {
  std::vector<double> final_values;
  async::ServerRunResult result;
};

/// One closed-loop YellowFin run, one worker, `steps` rounds, over either
/// the in-process channel or a real socket round trip to a MasterServer
/// in this same process. Everything else is identical by construction.
EngineRun run_engine(dist::Engine engine, int steps) {
  auto master = make_params(kShapes, 77);
  yf::tuner::YellowFinOptions yopts;
  yopts.beta = 0.99;
  auto opt = std::make_shared<yf::tuner::YellowFin>(master, yopts);
  async::ParamServerOptions sopts;
  sopts.shards = 4;
  sopts.closed_loop = true;
  async::ShardedParamServer server(opt, sopts);

  std::vector<dist::ChannelWorker> workers;
  workers.push_back(make_quad_worker(123));
  dist::ChannelRunOptions ropts;
  ropts.steps_per_worker = steps;

  EngineRun out;
  if (engine == dist::Engine::kSocket) {
    dist::MasterServer net(server);
    dist::RemoteParamClient client(kHost, net.port());
    workers[0].channel = &client;
    out.result = dist::run_channel_workers(workers, ropts);
    client.shutdown();
    EXPECT_TRUE(net.wait_for_clients(1, std::chrono::seconds(10)));
    net.shutdown();
  } else {
    dist::InprocChannel channel(server);
    workers[0].channel = &channel;
    out.result = dist::run_channel_workers(workers, ropts);
  }
  out.final_values = flat_values(master);
  return out;
}

}  // namespace

// The tentpole pin: one worker, socket vs in-process, closed-loop
// YellowFin -- the trajectories must be IDENTICAL, not merely close.
// EXPECT_EQ on doubles, per the repo's trajectory-pinning discipline.
TEST(DistEngine, OneWorkerSocketTrajectoryBitIdenticalToInproc) {
  const int steps = 40;
  const EngineRun inproc = run_engine(dist::Engine::kInproc, steps);
  const EngineRun socket = run_engine(dist::Engine::kSocket, steps);
  ASSERT_EQ(inproc.final_values.size(), socket.final_values.size());
  for (std::size_t i = 0; i < inproc.final_values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(inproc.final_values[i]),
              std::bit_cast<std::uint64_t>(socket.final_values[i]))
        << "values diverge at flat index " << i;
  }
  // The ApplyStats stream (update order, measured/applied momentum) must
  // match too -- the worker saw the same replies either way.
  ASSERT_EQ(inproc.result.stats.size(), socket.result.stats.size());
  for (std::size_t i = 0; i < inproc.result.stats.size(); ++i) {
    EXPECT_EQ(inproc.result.stats[i].update_index, socket.result.stats[i].update_index);
    EXPECT_EQ(inproc.result.stats[i].applied_momentum, socket.result.stats[i].applied_momentum);
    EXPECT_EQ(inproc.result.stats[i].mu_hat_total.has_value(),
              socket.result.stats[i].mu_hat_total.has_value());
    if (inproc.result.stats[i].mu_hat_total) {
      EXPECT_EQ(*inproc.result.stats[i].mu_hat_total, *socket.result.stats[i].mu_hat_total);
    }
    EXPECT_EQ(inproc.result.losses[i], socket.result.losses[i]);
  }
}

TEST(DistEngine, HelloHandshakeReportsMasterGeometry) {
  auto master = make_params(kShapes, 7);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(master, 0.05, 0.5);
  async::ParamServerOptions sopts;
  sopts.shards = 3;
  async::ShardedParamServer server(opt, sopts);
  dist::MasterServer net(server);
  dist::RemoteParamClient client(kHost, net.port());
  EXPECT_EQ(client.size(), server.size());
  EXPECT_EQ(client.shard_count(), server.shard_count());
  client.shutdown();
  net.shutdown();
}

// Two real clients, real sockets, closed-loop momentum: the bowl loss
// must collapse and every pushed gradient must be applied exactly once.
TEST(DistEngine, TwoClientsConvergeAndShutDownCleanly) {
  const std::int64_t dim = 64;
  const double mu_target = 0.5;
  ag::Variable master_x(t::Tensor::full({dim}, 1.5), true);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{master_x}, 0.05,
                                                      mu_target);
  async::ParamServerOptions sopts;
  sopts.shards = 4;
  sopts.closed_loop = true;
  sopts.mu_target = mu_target;
  async::ShardedParamServer server(opt, sopts);
  dist::MasterServer net(server);

  const int steps = 30;
  std::vector<std::unique_ptr<dist::RemoteParamClient>> clients;
  std::vector<dist::ChannelWorker> workers;
  for (std::uint64_t w = 0; w < 2; ++w) {
    clients.push_back(std::make_unique<dist::RemoteParamClient>(kHost, net.port()));
    ag::Variable x(t::Tensor::full({dim}, 1.5), true);
    auto rng = std::make_shared<t::Rng>(40 + w);
    dist::ChannelWorker worker;
    worker.channel = clients.back().get();
    worker.params = {x};
    worker.grad_fn = [x, rng] {
      auto g = x.node()->ensure_grad().data();
      const auto v = x.value().data();
      double loss = 0.0;
      for (std::size_t j = 0; j < g.size(); ++j) {
        loss += 0.5 * v[j] * v[j];
        g[j] = v[j] + 0.05 * rng->normal();
      }
      return loss;
    };
    workers.push_back(std::move(worker));
  }
  dist::ChannelRunOptions ropts;
  ropts.steps_per_worker = steps;
  const auto run = dist::run_channel_workers(workers, ropts);

  EXPECT_EQ(run.total_updates, 2 * steps);
  EXPECT_EQ(server.updates(), 2 * steps);
  ASSERT_FALSE(run.losses.empty());
  // 60 momentum updates on a unit bowl from 1.5: the loss collapses.
  EXPECT_LT(run.losses.back(), run.losses.front() / 10.0);
  EXPECT_NE(clients[0]->worker_id(), clients[1]->worker_id());

  for (auto& c : clients) c->shutdown();
  EXPECT_TRUE(net.wait_for_clients(2, std::chrono::seconds(10)));
  const auto stats = net.stats();
  // Applied pushes never inflate, chaos or not: that IS exactly-once.
  EXPECT_EQ(stats.pushes, 2 * steps);
  EXPECT_GE(stats.connections, 2);
  if (!chaos_active()) {
    EXPECT_EQ(stats.connections, 2);
    EXPECT_EQ(stats.clean_shutdowns, 2);
    EXPECT_EQ(stats.pulls, 2 * steps);
    EXPECT_EQ(stats.errors, 0);
    EXPECT_EQ(stats.disconnects, 0);
    EXPECT_EQ(stats.retried_pushes, 0);
    EXPECT_EQ(stats.deduped_pushes, 0);
  }
  net.shutdown();
  EXPECT_TRUE(net.stopped());
}

// ---------------------------------------------------------------------------
// Protocol violations: the master answers with a kError frame carrying a
// message, then drops the connection.
// ---------------------------------------------------------------------------

namespace {

/// v1 kHello payload: the worker id this endpoint claims (0: assign me).
std::vector<std::byte> hello_payload(std::uint64_t worker_id = 0) {
  std::vector<std::byte> p;
  dist::PayloadWriter out(p);
  out.u64(worker_id);
  return p;
}

/// Raw-socket helper: send one frame, read one frame back.
dist::FrameHeader raw_round_trip(dist::TcpStream& stream, dist::Op op,
                                 std::span<const std::byte> payload, std::vector<std::byte>& reply) {
  std::vector<std::byte> scratch;
  dist::write_frame(stream, op, payload, scratch);
  dist::FrameHeader header;
  if (!dist::read_frame(stream, header, reply)) {
    throw dist::WireError("master closed without replying");
  }
  return header;
}

struct ErrorFixture {
  ErrorFixture() {
    auto params = make_params(kShapes, 5);
    opt = std::make_shared<yf::optim::MomentumSGD>(params, 0.05, 0.5);
    server = std::make_unique<async::ShardedParamServer>(opt);
    net = std::make_unique<dist::MasterServer>(*server);
  }
  std::shared_ptr<yf::optim::Optimizer> opt;
  std::unique_ptr<async::ShardedParamServer> server;
  std::unique_ptr<dist::MasterServer> net;
};

}  // namespace

TEST(DistEngine, PullBeforeHelloGetsErrorFrame) {
  ErrorFixture fx;
  auto stream = dist::TcpStream::connect(kHost, fx.net->port(), std::chrono::seconds(5));
  std::vector<std::byte> reply;
  const auto header = raw_round_trip(stream, dist::Op::kPull, {}, reply);
  ASSERT_EQ(header.op, dist::Op::kError);
  dist::PayloadReader in(reply);
  EXPECT_NE(in.str().find("before hello"), std::string::npos);
  // The violation is connection-fatal: the stream reads EOF next.
  dist::FrameHeader next;
  EXPECT_FALSE(dist::read_frame(stream, next, reply));
  fx.net->shutdown();
  EXPECT_EQ(fx.net->stats().errors, 1);
}

TEST(DistEngine, PushWithWrongShardCountGetsErrorFrame) {
  ErrorFixture fx;
  auto stream = dist::TcpStream::connect(kHost, fx.net->port(), std::chrono::seconds(5));
  std::vector<std::byte> reply;
  const auto hello = hello_payload();
  ASSERT_EQ(raw_round_trip(stream, dist::Op::kHello, hello, reply).op, dist::Op::kHelloAck);
  std::vector<std::byte> bad;
  dist::PayloadWriter out(bad);
  out.u64(0);   // push seq 0: unsequenced
  out.u64(99);  // claims 99 shard versions; the master has 4 shards
  const auto header = raw_round_trip(stream, dist::Op::kPush, bad, reply);
  ASSERT_EQ(header.op, dist::Op::kError);
  dist::PayloadReader in(reply);
  EXPECT_NE(in.str().find("shard"), std::string::npos);
  fx.net->shutdown();
  EXPECT_EQ(fx.net->stats().errors, 1);
}

TEST(DistEngine, TruncatedPushPayloadGetsErrorFrame) {
  ErrorFixture fx;
  auto stream = dist::TcpStream::connect(kHost, fx.net->port(), std::chrono::seconds(5));
  std::vector<std::byte> reply;
  const auto hello = hello_payload();
  ASSERT_EQ(raw_round_trip(stream, dist::Op::kHello, hello, reply).op, dist::Op::kHelloAck);
  std::vector<std::byte> bad;
  dist::PayloadWriter out(bad);
  out.u64(0);  // push seq 0: unsequenced
  out.u64(static_cast<std::uint64_t>(fx.server->shard_count()));
  // ...but no versions and no gradient: a payload underrun on dispatch.
  EXPECT_EQ(raw_round_trip(stream, dist::Op::kPush, bad, reply).op, dist::Op::kError);
  fx.net->shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown contracts (the drain-on-shutdown idiom, both sides).
// ---------------------------------------------------------------------------

TEST(DistEngine, ClientShutdownIsIdempotentAndPinsPostShutdownCalls) {
  ErrorFixture fx;
  auto client = std::make_unique<dist::RemoteParamClient>(kHost, fx.net->port());
  client->shutdown();
  client->shutdown();  // idempotent
  EXPECT_TRUE(client->stopped());
  std::vector<double> buf(static_cast<std::size_t>(client->size()));
  async::PullTicket ticket;
  EXPECT_THROW(client->pull(buf, ticket), std::logic_error);
  EXPECT_THROW(client->push(buf, ticket), std::logic_error);
  EXPECT_TRUE(fx.net->wait_for_clients(1, std::chrono::seconds(10)));
}

TEST(DistEngine, MasterShutdownDrainsAndPinsPostShutdownCalls) {
  ErrorFixture fx;
  // Bounded patience: once the master is gone for good, the reconnect
  // loop must give up in well under a second, not the production default.
  dist::ClientOptions copts;
  copts.host = kHost;
  copts.port = fx.net->port();
  copts.connect_retry_for = std::chrono::milliseconds(200);
  copts.max_attempts = 2;
  dist::RemoteParamClient client(copts);
  // Shut the master down while a client conversation is idle-open: the
  // drain closes the connection, and the client's next round trip fails
  // loudly instead of hanging.
  fx.net->shutdown();
  EXPECT_TRUE(fx.net->stopped());
  std::vector<double> buf(static_cast<std::size_t>(client.size()));
  async::PullTicket ticket;
  EXPECT_THROW(client.pull(buf, ticket), std::exception);
  EXPECT_THROW(fx.net->wait_for_clients(1, std::chrono::seconds(1)), std::logic_error);
  fx.net->shutdown();  // idempotent
}

TEST(DistEngine, EngineSelectionReadsYfEngine) {
  ::setenv("YF_ENGINE", "socket", 1);
  EXPECT_EQ(dist::channel_engine_from_env(), dist::Engine::kSocket);
  ::setenv("YF_ENGINE", "inproc", 1);
  EXPECT_EQ(dist::channel_engine_from_env(), dist::Engine::kInproc);
  ::setenv("YF_ENGINE", "server", 1);  // bench name for an in-process engine
  EXPECT_EQ(dist::channel_engine_from_env(), dist::Engine::kInproc);
  ::setenv("YF_ENGINE", "warp-drive", 1);  // unknown: warn, fall back
  EXPECT_EQ(dist::channel_engine_from_env(), dist::Engine::kInproc);
  ::unsetenv("YF_ENGINE");
  EXPECT_EQ(dist::channel_engine_from_env(), dist::Engine::kInproc);
  EXPECT_STREQ(dist::engine_name(dist::Engine::kSocket), "socket");
  EXPECT_STREQ(dist::engine_name(dist::Engine::kInproc), "inproc");
}
