#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <vector>

#include "core/parallel.hpp"

namespace core = yf::core;

namespace {

std::vector<double> random_vec(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

}  // namespace

TEST(ParallelFor, CoversRangeExactlyOnce) {
  core::ThreadPool::instance().set_fanout(4);
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  // grain 1 forces the maximum chunk count: every worker gets a slice.
  core::parallel_for(n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ParallelFor, InlineBelowGrain) {
  std::vector<int> order;
  core::parallel_for(10, 100, [&](std::int64_t lo, std::int64_t hi) {
    // Single inline chunk: safe to touch unsynchronized state.
    for (std::int64_t i = lo; i < hi; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, PropagatesExceptions) {
  core::ThreadPool::instance().set_fanout(4);
  EXPECT_THROW(core::parallel_for(100000, 1,
                                  [&](std::int64_t lo, std::int64_t) {
                                    if (lo > 0) throw std::runtime_error("worker boom");
                                  }),
               std::runtime_error);
}

TEST(Kernels, MapMatchesSerialAboveGrain) {
  // Big enough that core::map dispatches chunks to the pool.
  const auto n = static_cast<std::size_t>(core::kDefaultGrain * 4 + 37);
  core::ThreadPool::instance().set_fanout(4);
  const auto src = random_vec(n, 1);
  std::vector<double> dst(n, 0.0);
  core::map(dst, src, [](double x) { return std::tanh(x) + 0.5 * x; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dst[i], std::tanh(src[i]) + 0.5 * src[i]) << i;
  }
}

TEST(Kernels, AxpyMatchesNaive) {
  const std::size_t n = 1000;
  auto y = random_vec(n, 2);
  const auto x = random_vec(n, 3);
  auto expect = y;
  for (std::size_t i = 0; i < n; ++i) expect[i] += -0.37 * x[i];
  core::axpy(y, x, -0.37);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y[i], expect[i]);
}

TEST(Kernels, ReductionsMatchNaive) {
  const std::size_t n = 4097;
  const auto a = random_vec(n, 4);
  const auto b = random_vec(n, 5);
  double s = 0.0, sq = 0.0, d = 0.0, ma = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += a[i];
    sq += a[i] * a[i];
    d += a[i] * b[i];
    ma = std::max(ma, std::abs(a[i]));
  }
  EXPECT_EQ(core::sum(a), s);
  EXPECT_EQ(core::squared_norm(a), sq);
  EXPECT_EQ(core::dot(a, b), d);
  EXPECT_EQ(core::max_abs(a), ma);
}

TEST(Kernels, ReductionDeterministicAcrossWorkerCounts) {
  // Reductions are sequential by contract: growing the pool must not
  // change a single bit of the result.
  const auto n = static_cast<std::size_t>(core::kDefaultGrain * 8);
  const auto a = random_vec(n, 6);
  const double before = core::squared_norm(a);
  core::ThreadPool::instance().set_fanout(8);
  EXPECT_EQ(core::squared_norm(a), before);
}

TEST(Kernels, EwmaUpdateMatchesTwoStepForm) {
  const std::size_t n = 512;
  const double beta = 0.97;
  auto avg = random_vec(n, 7);
  const auto x = random_vec(n, 8);
  auto expect = avg;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = expect[i] * beta;
    expect[i] += (1.0 - beta) * x[i];
  }
  core::ewma_update(avg, x, beta);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(avg[i], expect[i]);
}

TEST(Kernels, FusedMomentsMatchSeparateSweeps) {
  const std::size_t n = 2048;
  const double beta = 0.995;
  auto m1 = random_vec(n, 9);
  auto m2 = random_vec(n, 10);
  const auto g = random_vec(n, 11);
  auto e1 = m1, e2 = m2;
  // Reference: the historical square() temporary plus two EWMA sweeps.
  std::vector<double> g2(n);
  for (std::size_t i = 0; i < n; ++i) g2[i] = g[i] * g[i];
  core::ewma_update(e1, g, beta);
  core::ewma_update(e2, g2, beta);
  core::ewma_update_moments(m1, m2, g, beta);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(m1[i], e1[i]);
    EXPECT_EQ(m2[i], e2[i]);
  }
}

TEST(Kernels, ClipScaleOnlyAboveThreshold) {
  std::vector<double> v = {3.0, 4.0};
  EXPECT_NEAR(core::clip_scale(v, 10.0), 5.0, 1e-12);
  EXPECT_EQ(v[0], 3.0);  // untouched below threshold
  EXPECT_NEAR(core::clip_scale(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(std::sqrt(core::squared_norm(v)), 1.0, 1e-12);
  EXPECT_THROW(core::clip_scale(v, 0.0), std::invalid_argument);
}

TEST(Kernels, MomentumStepMatchesThreePassReference) {
  const std::size_t n = 777;
  const double lr = 0.03, mu = 0.9;
  for (bool nesterov : {false, true}) {
    auto x = random_vec(n, 12);
    auto v = random_vec(n, 13);
    const auto g = random_vec(n, 14);
    auto ex = x, ev = v;
    // Reference: the historical per-tensor sequence (mul_, add_, add_).
    for (std::size_t i = 0; i < n; ++i) ev[i] *= mu;
    for (std::size_t i = 0; i < n; ++i) ev[i] += -lr * g[i];
    if (nesterov) {
      for (std::size_t i = 0; i < n; ++i) ex[i] += mu * ev[i];
      for (std::size_t i = 0; i < n; ++i) ex[i] += -lr * g[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) ex[i] += ev[i];
    }
    core::momentum_step(x, v, g, lr, mu, nesterov);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x[i], ex[i]) << (nesterov ? "nesterov" : "polyak") << " x@" << i;
      EXPECT_EQ(v[i], ev[i]) << (nesterov ? "nesterov" : "polyak") << " v@" << i;
    }
  }
}

TEST(Kernels, AdamStepMatchesScalarReference) {
  const std::size_t n = 333;
  const double lr = 0.001, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  auto x = random_vec(n, 15);
  auto m = random_vec(n, 16);
  auto v = random_vec(n, 17);
  for (auto& vi : v) vi = std::abs(vi);
  const auto g = random_vec(n, 18);
  const double bc1 = 1.0 - std::pow(b1, 3.0), bc2 = 1.0 - std::pow(b2, 3.0);
  auto ex = x, em = m, ev = v;
  for (std::size_t i = 0; i < n; ++i) {
    em[i] = b1 * em[i] + (1.0 - b1) * g[i];
    ev[i] = b2 * ev[i] + (1.0 - b2) * g[i] * g[i];
    ex[i] -= lr * (em[i] / bc1) / (std::sqrt(ev[i] / bc2) + eps);
  }
  core::adam_step(x, m, v, g, lr, b1, b2, bc1, bc2, eps);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(x[i], ex[i]);
    EXPECT_EQ(m[i], em[i]);
    EXPECT_EQ(v[i], ev[i]);
  }
}

TEST(Kernels, ParallelSweepMatchesInlineSweep) {
  // The fused optimizer sweeps must give identical results whether they
  // run inline or partitioned over the pool.
  const auto n = static_cast<std::size_t>(core::kDefaultGrain * 3 + 11);
  core::ThreadPool::instance().set_fanout(4);
  auto x_par = random_vec(n, 19);
  auto v_par = random_vec(n, 20);
  const auto g = random_vec(n, 21);
  auto x_seq = x_par, v_seq = v_par;
  core::momentum_step(x_par, v_par, g, 0.01, 0.95, false);  // above grain: parallel
  for (std::size_t i = 0; i < n; ++i) {  // inline scalar reference
    v_seq[i] = v_seq[i] * 0.95;
    v_seq[i] += -0.01 * g[i];
    x_seq[i] += v_seq[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(x_par[i], x_seq[i]);
    EXPECT_EQ(v_par[i], v_seq[i]);
  }
}

TEST(Kernels, SizeMismatchThrows) {
  std::vector<double> a(4), b(5);
  EXPECT_THROW(core::axpy(a, b, 1.0), std::invalid_argument);
  EXPECT_THROW(core::dot(a, b), std::invalid_argument);
  EXPECT_THROW(core::ewma_update(a, b, 0.9), std::invalid_argument);
}
