#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "core/kernels/backend.hpp"
#include "core/parallel.hpp"

namespace core = yf::core;

namespace {

std::vector<double> random_vec(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Run `fn` under a forced kernel backend, restoring the previous one.
template <typename F>
auto with_backend(core::KernelBackend backend, F&& fn) {
  const auto previous = core::active_kernel_backend();
  core::set_kernel_backend(backend);
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    core::set_kernel_backend(previous);
  } else {
    auto result = fn();
    core::set_kernel_backend(previous);
    return result;
  }
}

/// Independent reimplementation of the canonical reduction order
/// (kernel_table.hpp): 8 lanes filled round-robin, tail into lanes
/// 0..tail-1, pairwise lane combine. Reduction results must match this
/// bit-for-bit on every backend.
template <typename Term>
double ref_lane_reduce(std::size_t n, Term term) {
  constexpr std::size_t kLanes = 8;
  double acc[kLanes] = {};
  const std::size_t nb = n - n % kLanes;
  for (std::size_t i = 0; i < nb; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) acc[l] += term(i + l);
  }
  for (std::size_t l = 0; l + nb < n; ++l) acc[l] += term(nb + l);
  const double l0 = acc[0] + acc[4], l1 = acc[1] + acc[5];
  const double l2 = acc[2] + acc[6], l3 = acc[3] + acc[7];
  return (l0 + l2) + (l1 + l3);
}

}  // namespace

TEST(ParallelFor, CoversRangeExactlyOnce) {
  core::ThreadPool::instance().set_fanout(4);
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  // grain 1 forces the maximum chunk count: every worker gets a slice.
  core::parallel_for(n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ParallelFor, InlineBelowGrain) {
  std::vector<int> order;
  core::parallel_for(10, 100, [&](std::int64_t lo, std::int64_t hi) {
    // Single inline chunk: safe to touch unsynchronized state.
    for (std::int64_t i = lo; i < hi; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, PropagatesExceptions) {
  core::ThreadPool::instance().set_fanout(4);
  EXPECT_THROW(core::parallel_for(100000, 1,
                                  [&](std::int64_t lo, std::int64_t) {
                                    if (lo > 0) throw std::runtime_error("worker boom");
                                  }),
               std::runtime_error);
}

TEST(Kernels, MapMatchesSerialAboveGrain) {
  // Big enough that core::map dispatches chunks to the pool.
  const auto n = static_cast<std::size_t>(core::kDefaultGrain * 4 + 37);
  core::ThreadPool::instance().set_fanout(4);
  const auto src = random_vec(n, 1);
  std::vector<double> dst(n, 0.0);
  core::map(dst, src, [](double x) { return std::tanh(x) + 0.5 * x; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dst[i], std::tanh(src[i]) + 0.5 * src[i]) << i;
  }
}

TEST(Kernels, AxpyMatchesNaive) {
  const std::size_t n = 1000;
  auto y = random_vec(n, 2);
  const auto x = random_vec(n, 3);
  auto expect = y;
  for (std::size_t i = 0; i < n; ++i) expect[i] += -0.37 * x[i];
  core::axpy(y, x, -0.37);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y[i], expect[i]);
}

TEST(Kernels, ReductionsFollowCanonicalLaneOrder) {
  // Re-pinned for the SIMD backend refactor: reductions follow the fixed
  // 8-lane blocked order on every backend (previously strict
  // left-to-right). Bitwise against an independent reimplementation of
  // the canonical order, and close to the naive sequential sum.
  const std::size_t n = 4097;
  const auto a = random_vec(n, 4);
  const auto b = random_vec(n, 5);
  EXPECT_EQ(core::sum(a), ref_lane_reduce(n, [&](std::size_t i) { return a[i]; }));
  EXPECT_EQ(core::squared_norm(a), ref_lane_reduce(n, [&](std::size_t i) { return a[i] * a[i]; }));
  EXPECT_EQ(core::dot(a, b), ref_lane_reduce(n, [&](std::size_t i) { return a[i] * b[i]; }));
  double s = 0.0, sq = 0.0, d = 0.0, ma = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += a[i];
    sq += a[i] * a[i];
    d += a[i] * b[i];
    ma = std::max(ma, std::abs(a[i]));
  }
  EXPECT_NEAR(core::sum(a), s, 1e-9 * n);
  EXPECT_NEAR(core::squared_norm(a), sq, 1e-9 * sq);
  EXPECT_NEAR(core::dot(a, b), d, 1e-9 * n);
  EXPECT_EQ(core::max_abs(a), ma);  // max is order-independent: still exact
}

TEST(Kernels, ReductionTailHandling) {
  // Tail elements (n mod 8) fold into lanes 0..tail-1 before the
  // combine; cover n below, at, and straddling the lane width.
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 4096u, 4103u}) {
    const auto a = random_vec(n, static_cast<std::uint32_t>(40 + n));
    const auto b = random_vec(n, static_cast<std::uint32_t>(80 + n));
    EXPECT_EQ(core::sum(a), ref_lane_reduce(n, [&](std::size_t i) { return a[i]; })) << n;
    EXPECT_EQ(core::squared_norm(a), ref_lane_reduce(n, [&](std::size_t i) { return a[i] * a[i]; }))
        << n;
    EXPECT_EQ(core::dot(a, b), ref_lane_reduce(n, [&](std::size_t i) { return a[i] * b[i]; }))
        << n;
    const double inv1 = 1.7, inv2 = 0.9;
    auto m2 = random_vec(n, static_cast<std::uint32_t>(120 + n));
    for (auto& x : m2) x = std::abs(x) + 1.0;
    const double expected = ref_lane_reduce(n, [&](std::size_t i) {
      const double m = a[i] * inv1;
      return m2[i] * inv2 - m * m;
    });
    EXPECT_EQ(core::debiased_variance_sum(a, m2, inv1, inv2), expected) << n;
  }
}

TEST(Kernels, ReductionDeterministicAcrossWorkerCounts) {
  // Reductions are sequential by contract: growing the pool must not
  // change a single bit of the result, on either backend.
  const auto n = static_cast<std::size_t>(core::kDefaultGrain * 8);
  const auto a = random_vec(n, 6);
  const double before = core::squared_norm(a);
  core::ThreadPool::instance().set_fanout(8);
  EXPECT_EQ(core::squared_norm(a), before);
  if (core::simd_supported()) {
    for (auto backend : {core::KernelBackend::kScalar, core::KernelBackend::kSimd}) {
      EXPECT_EQ(with_backend(backend, [&] { return core::squared_norm(a); }), before)
          << core::kernel_backend_name(backend);
    }
  }
}

TEST(Kernels, EwmaUpdateMatchesTwoStepForm) {
  const std::size_t n = 512;
  const double beta = 0.97;
  auto avg = random_vec(n, 7);
  const auto x = random_vec(n, 8);
  auto expect = avg;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = expect[i] * beta;
    expect[i] += (1.0 - beta) * x[i];
  }
  core::ewma_update(avg, x, beta);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(avg[i], expect[i]);
}

TEST(Kernels, FusedMomentsMatchSeparateSweeps) {
  const std::size_t n = 2048;
  const double beta = 0.995;
  auto m1 = random_vec(n, 9);
  auto m2 = random_vec(n, 10);
  const auto g = random_vec(n, 11);
  auto e1 = m1, e2 = m2;
  // Reference: the historical square() temporary plus two EWMA sweeps.
  std::vector<double> g2(n);
  for (std::size_t i = 0; i < n; ++i) g2[i] = g[i] * g[i];
  core::ewma_update(e1, g, beta);
  core::ewma_update(e2, g2, beta);
  core::ewma_update_moments(m1, m2, g, beta);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(m1[i], e1[i]);
    EXPECT_EQ(m2[i], e2[i]);
  }
}

TEST(Kernels, ClipScaleOnlyAboveThreshold) {
  std::vector<double> v = {3.0, 4.0};
  EXPECT_NEAR(core::clip_scale(v, 10.0), 5.0, 1e-12);
  EXPECT_EQ(v[0], 3.0);  // untouched below threshold
  EXPECT_NEAR(core::clip_scale(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(std::sqrt(core::squared_norm(v)), 1.0, 1e-12);
  EXPECT_THROW(core::clip_scale(v, 0.0), std::invalid_argument);
}

TEST(Kernels, MomentumStepMatchesThreePassReference) {
  const std::size_t n = 777;
  const double lr = 0.03, mu = 0.9;
  for (bool nesterov : {false, true}) {
    auto x = random_vec(n, 12);
    auto v = random_vec(n, 13);
    const auto g = random_vec(n, 14);
    auto ex = x, ev = v;
    // Reference: the historical per-tensor sequence (mul_, add_, add_).
    for (std::size_t i = 0; i < n; ++i) ev[i] *= mu;
    for (std::size_t i = 0; i < n; ++i) ev[i] += -lr * g[i];
    if (nesterov) {
      for (std::size_t i = 0; i < n; ++i) ex[i] += mu * ev[i];
      for (std::size_t i = 0; i < n; ++i) ex[i] += -lr * g[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) ex[i] += ev[i];
    }
    core::momentum_step(x, v, g, lr, mu, nesterov);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x[i], ex[i]) << (nesterov ? "nesterov" : "polyak") << " x@" << i;
      EXPECT_EQ(v[i], ev[i]) << (nesterov ? "nesterov" : "polyak") << " v@" << i;
    }
  }
}

TEST(Kernels, AdamStepMatchesScalarReference) {
  const std::size_t n = 333;
  const double lr = 0.001, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  auto x = random_vec(n, 15);
  auto m = random_vec(n, 16);
  auto v = random_vec(n, 17);
  for (auto& vi : v) vi = std::abs(vi);
  const auto g = random_vec(n, 18);
  const double bc1 = 1.0 - std::pow(b1, 3.0), bc2 = 1.0 - std::pow(b2, 3.0);
  auto ex = x, em = m, ev = v;
  for (std::size_t i = 0; i < n; ++i) {
    em[i] = b1 * em[i] + (1.0 - b1) * g[i];
    ev[i] = b2 * ev[i] + (1.0 - b2) * g[i] * g[i];
    ex[i] -= lr * (em[i] / bc1) / (std::sqrt(ev[i] / bc2) + eps);
  }
  core::adam_step(x, m, v, g, lr, b1, b2, bc1, bc2, eps);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(x[i], ex[i]);
    EXPECT_EQ(m[i], em[i]);
    EXPECT_EQ(v[i], ev[i]);
  }
}

TEST(Kernels, ParallelSweepMatchesInlineSweep) {
  // The fused optimizer sweeps must give identical results whether they
  // run inline or partitioned over the pool.
  const auto n = static_cast<std::size_t>(core::kDefaultGrain * 3 + 11);
  core::ThreadPool::instance().set_fanout(4);
  auto x_par = random_vec(n, 19);
  auto v_par = random_vec(n, 20);
  const auto g = random_vec(n, 21);
  auto x_seq = x_par, v_seq = v_par;
  core::momentum_step(x_par, v_par, g, 0.01, 0.95, false);  // above grain: parallel
  for (std::size_t i = 0; i < n; ++i) {  // inline scalar reference
    v_seq[i] = v_seq[i] * 0.95;
    v_seq[i] += -0.01 * g[i];
    x_seq[i] += v_seq[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(x_par[i], x_seq[i]);
    EXPECT_EQ(v_par[i], v_seq[i]);
  }
}

TEST(Kernels, SizeMismatchThrows) {
  std::vector<double> a(4), b(5);
  EXPECT_THROW(core::axpy(a, b, 1.0), std::invalid_argument);
  EXPECT_THROW(core::dot(a, b), std::invalid_argument);
  EXPECT_THROW(core::ewma_update(a, b, 0.9), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Backend dispatch: scalar and SIMD must agree bit-for-bit on every
// kernel (elementwise by per-element arithmetic identity, reductions by
// the shared lane-blocked order), across vector-width tails.
// ---------------------------------------------------------------------------

TEST(KernelBackend, StringParsingAndNames) {
  core::KernelBackend b = core::KernelBackend::kSimd;
  EXPECT_TRUE(core::kernel_backend_from_string("scalar", b));
  EXPECT_EQ(b, core::KernelBackend::kScalar);
  EXPECT_TRUE(core::kernel_backend_from_string("simd", b));
  EXPECT_EQ(b, core::KernelBackend::kSimd);
  EXPECT_FALSE(core::kernel_backend_from_string("avx512", b));
  EXPECT_FALSE(core::kernel_backend_from_string("", b));
  EXPECT_STREQ(core::kernel_backend_name(core::KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(core::kernel_backend_name(core::KernelBackend::kSimd), "simd");
}

TEST(KernelBackend, ForcingScalarAlwaysWorks) {
  const auto previous = core::active_kernel_backend();
  core::set_kernel_backend(core::KernelBackend::kScalar);
  EXPECT_EQ(core::active_kernel_backend(), core::KernelBackend::kScalar);
  EXPECT_STREQ(core::active_kernel_backend_name(), "scalar");
  core::set_kernel_backend(previous);
}

TEST(KernelBackend, SimdRequestThrowsWhenUnsupported) {
  if (core::simd_supported()) {
    core::set_kernel_backend(core::KernelBackend::kSimd);  // must not throw
    EXPECT_EQ(core::active_kernel_backend(), core::KernelBackend::kSimd);
    core::set_kernel_backend(core::KernelBackend::kScalar);
  } else {
    EXPECT_THROW(core::set_kernel_backend(core::KernelBackend::kSimd), std::invalid_argument);
  }
}

namespace {

/// Sizes straddling the 4-wide vector step and the 8-wide lane block:
/// empty, sub-lane, exact multiples, and off-by-one tails.
const std::size_t kParitySizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 12, 31, 32, 33, 1037};

/// Run `op` (which writes its result into fresh buffers) under both
/// backends and expect bitwise-identical output buffers.
template <typename Op>
void expect_backend_parity(const char* what, Op op) {
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  for (std::size_t n : kParitySizes) {
    const auto scalar_out = with_backend(core::KernelBackend::kScalar, [&] { return op(n); });
    const auto simd_out = with_backend(core::KernelBackend::kSimd, [&] { return op(n); });
    ASSERT_EQ(scalar_out.size(), simd_out.size()) << what << " n=" << n;
    for (std::size_t i = 0; i < scalar_out.size(); ++i) {
      EXPECT_EQ(scalar_out[i], simd_out[i]) << what << " n=" << n << " @" << i;
    }
  }
}

}  // namespace

TEST(KernelBackend, ElementwiseParityBitIdentical) {
  expect_backend_parity("fill", [](std::size_t n) {
    std::vector<double> x(n, -1.0);
    core::fill(x, 3.25);
    return x;
  });
  expect_backend_parity("copy", [](std::size_t n) {
    const auto src = random_vec(n, 101);
    std::vector<double> dst(n, 0.0);
    core::copy(dst, src);
    return dst;
  });
  expect_backend_parity("scale", [](std::size_t n) {
    auto x = random_vec(n, 102);
    core::scale(x, -0.731);
    return x;
  });
  expect_backend_parity("axpy", [](std::size_t n) {
    auto y = random_vec(n, 103);
    const auto x = random_vec(n, 104);
    core::axpy(y, x, 0.417);
    return y;
  });
  expect_backend_parity("ewma", [](std::size_t n) {
    auto avg = random_vec(n, 105);
    const auto x = random_vec(n, 106);
    core::ewma_update(avg, x, 0.997);
    return avg;
  });
  expect_backend_parity("ewma_moments", [](std::size_t n) {
    auto m1 = random_vec(n, 107);
    auto m2 = random_vec(n, 108);
    const auto x = random_vec(n, 109);
    core::ewma_update_moments(m1, m2, x, 0.995);
    m1.insert(m1.end(), m2.begin(), m2.end());
    return m1;
  });
}

TEST(KernelBackend, FusedSweepParityBitIdentical) {
  for (bool nesterov : {false, true}) {
    expect_backend_parity(nesterov ? "momentum_nesterov" : "momentum", [&](std::size_t n) {
      auto x = random_vec(n, 110);
      auto v = random_vec(n, 111);
      const auto g = random_vec(n, 112);
      core::momentum_step(x, v, g, 0.03, 0.9, nesterov);
      x.insert(x.end(), v.begin(), v.end());
      return x;
    });
  }
  expect_backend_parity("adam", [](std::size_t n) {
    auto x = random_vec(n, 113);
    auto m = random_vec(n, 114);
    auto v = random_vec(n, 115);
    for (auto& vi : v) vi = std::abs(vi);
    const auto g = random_vec(n, 116);
    core::adam_step(x, m, v, g, 0.001, 0.9, 0.999, 0.271, 0.002996, 1e-8);
    x.insert(x.end(), m.begin(), m.end());
    x.insert(x.end(), v.begin(), v.end());
    return x;
  });
  expect_backend_parity("adagrad", [](std::size_t n) {
    auto x = random_vec(n, 117);
    auto accum = random_vec(n, 118);
    for (auto& a : accum) a = std::abs(a);
    const auto g = random_vec(n, 119);
    core::adagrad_step(x, accum, g, 0.05, 1e-10);
    x.insert(x.end(), accum.begin(), accum.end());
    return x;
  });
  expect_backend_parity("rmsprop", [](std::size_t n) {
    auto x = random_vec(n, 120);
    auto sq = random_vec(n, 121);
    for (auto& s : sq) s = std::abs(s);
    const auto g = random_vec(n, 122);
    core::rmsprop_step(x, sq, g, 0.01, 0.95, 1e-8);
    x.insert(x.end(), sq.begin(), sq.end());
    return x;
  });
}

TEST(KernelBackend, ReductionParityBitIdentical) {
  expect_backend_parity("reductions", [](std::size_t n) {
    const auto a = random_vec(n, 123);
    const auto b = random_vec(n, 124);
    auto m2 = random_vec(n, 125);
    for (auto& x : m2) x = std::abs(x) + 0.5;
    return std::vector<double>{core::sum(a), core::squared_norm(a), core::dot(a, b),
                               core::max_abs(a), core::debiased_variance_sum(a, m2, 1.31, 0.77)};
  });
}

// Matmul backend parity moved to tests/gemm_test.cpp: the row kernel
// became the packed GEMM subsystem (core/gemm.hpp), whose scalar-vs-simd
// bit-identity is pinned there across all three layout variants.

TEST(KernelBackend, MaxAbsNanParity) {
  // std::max(m, NaN) keeps m, so the scalar backend drops NaN terms; the
  // AVX2 backend must do the same (maxpd forwards its second operand on
  // NaN, so the running maximum sits in the second slot).
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::vector<double>> cases = {
      {1.0, 2.0, 3.0, nan},
      {nan, nan, nan, nan},
      {nan, -7.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, nan},
      {0.5, nan},
  };
  for (const auto& x : cases) {
    const double scalar_m = with_backend(core::KernelBackend::kScalar,
                                         [&] { return core::max_abs(x); });
    const double simd_m = with_backend(core::KernelBackend::kSimd,
                                       [&] { return core::max_abs(x); });
    EXPECT_EQ(scalar_m, simd_m) << "n=" << x.size();
    EXPECT_FALSE(std::isnan(simd_m)) << "n=" << x.size();
  }
}

TEST(KernelBackend, ReductionParityAcrossPoolSizes) {
  // The full determinism matrix: backend x fanout must give one value.
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const auto n = static_cast<std::size_t>(core::kSimdGrain * 4 + 5);
  const auto a = random_vec(n, 128);
  const double pinned = with_backend(core::KernelBackend::kScalar,
                                     [&] { return core::squared_norm(a); });
  for (std::size_t fanout : {1u, 4u, 8u}) {
    core::ThreadPool::instance().set_fanout(fanout);
    for (auto backend : {core::KernelBackend::kScalar, core::KernelBackend::kSimd}) {
      EXPECT_EQ(with_backend(backend, [&] { return core::squared_norm(a); }), pinned)
          << core::kernel_backend_name(backend) << " fanout=" << fanout;
    }
  }
}
