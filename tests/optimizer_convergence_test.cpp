// Parameterized convergence properties: every optimizer in the library
// must drive a strongly-convex quadratic bowl to (near) its optimum, at
// any conditioning in the sweep, and the iterates must stay finite.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "optim/adagrad.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "optim/rmsprop.hpp"
#include "optim/sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace optim = yf::optim;
namespace t = yf::tensor;

namespace {

struct ConvergenceCase {
  std::string optimizer;
  double lr;          ///< ignored by yellowfin
  double kappa;       ///< condition number of the diagonal quadratic
  double noise;       ///< gradient noise stddev
  std::int64_t steps;
  double tol;         ///< final loss bound
};

std::string case_name(const ::testing::TestParamInfo<ConvergenceCase>& info) {
  std::string n = info.param.optimizer + "_k" + std::to_string(static_cast<int>(info.param.kappa));
  if (info.param.noise > 0) n += "_noisy";
  return n;
}

class OptimizerConvergence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(OptimizerConvergence, ReachesQuadraticOptimum) {
  const auto& p = GetParam();
  const std::int64_t dim = 8;
  ag::Variable x(t::Tensor({dim}), true);
  x.value().fill(2.0);
  // Diagonal curvatures log-spaced in [1, kappa].
  std::vector<double> h(static_cast<std::size_t>(dim));
  for (std::int64_t j = 0; j < dim; ++j) {
    h[static_cast<std::size_t>(j)] =
        std::pow(p.kappa, static_cast<double>(j) / static_cast<double>(dim - 1));
  }

  std::unique_ptr<optim::Optimizer> opt;
  if (p.optimizer == "sgd") {
    opt = std::make_unique<optim::SGD>(std::vector<ag::Variable>{x}, p.lr);
  } else if (p.optimizer == "momentum") {
    opt = std::make_unique<optim::MomentumSGD>(std::vector<ag::Variable>{x}, p.lr, 0.9);
  } else if (p.optimizer == "nesterov") {
    opt = std::make_unique<optim::MomentumSGD>(std::vector<ag::Variable>{x}, p.lr, 0.9, true);
  } else if (p.optimizer == "adam") {
    opt = std::make_unique<optim::Adam>(std::vector<ag::Variable>{x}, p.lr);
  } else if (p.optimizer == "adagrad") {
    opt = std::make_unique<optim::AdaGrad>(std::vector<ag::Variable>{x}, p.lr);
  } else if (p.optimizer == "rmsprop") {
    opt = std::make_unique<optim::RMSProp>(std::vector<ag::Variable>{x}, p.lr);
  } else {
    opt = std::make_unique<yf::tuner::YellowFin>(std::vector<ag::Variable>{x});
  }

  t::Rng rng(7);
  double loss = 0.0;
  for (std::int64_t it = 0; it < p.steps; ++it) {
    x.zero_grad();
    auto& g = x.node()->ensure_grad();
    loss = 0.0;
    for (std::int64_t j = 0; j < dim; ++j) {
      const double hv = h[static_cast<std::size_t>(j)];
      loss += 0.5 * hv * x.value()[j] * x.value()[j];
      g[j] = hv * x.value()[j] + p.noise * rng.normal();
    }
    opt->step();
    ASSERT_TRUE(std::isfinite(x.value()[0])) << "diverged at step " << it;
  }
  EXPECT_LT(loss, p.tol) << p.optimizer;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerConvergence,
    ::testing::Values(
        // Well-conditioned, noiseless.
        ConvergenceCase{"sgd", 0.3, 2.0, 0.0, 400, 1e-8},
        ConvergenceCase{"momentum", 0.1, 2.0, 0.0, 400, 1e-8},
        ConvergenceCase{"nesterov", 0.1, 2.0, 0.0, 400, 1e-8},
        ConvergenceCase{"adam", 0.05, 2.0, 0.0, 800, 1e-6},
        ConvergenceCase{"adagrad", 0.5, 2.0, 0.0, 800, 1e-4},
        ConvergenceCase{"rmsprop", 0.02, 2.0, 0.0, 1500, 1e-4},
        ConvergenceCase{"yellowfin", 0.0, 2.0, 0.0, 1500, 1e-4},
        // Ill-conditioned (kappa = 100).
        ConvergenceCase{"sgd", 0.015, 100.0, 0.0, 4000, 1e-4},
        ConvergenceCase{"momentum", 0.012, 100.0, 0.0, 2000, 1e-6},
        ConvergenceCase{"adam", 0.05, 100.0, 0.0, 2000, 1e-6},
        // YellowFin warms up slowly on deterministic ill-conditioned bowls
        // (curvature proxy ||g||^2 starts huge, forcing a tiny lr), then
        // accelerates as mu -> 1: needs ~7k steps to clear the bowl.
        ConvergenceCase{"yellowfin", 0.0, 100.0, 0.0, 7000, 1e-2},
        // Noisy gradients: reach the noise floor, not the exact optimum.
        ConvergenceCase{"momentum", 0.01, 10.0, 0.1, 2000, 0.05},
        ConvergenceCase{"adam", 0.01, 10.0, 0.1, 2000, 0.05},
        ConvergenceCase{"yellowfin", 0.0, 10.0, 0.1, 2500, 0.05}),
    case_name);

// Acceleration property: on an ill-conditioned quadratic, tuned momentum
// converges strictly faster than tuned gradient descent -- the classical
// result (Sec. 2.1) underlying the whole paper.
TEST(MomentumAcceleration, BeatsGradientDescentOnIllConditioned) {
  const double kappa = 400.0;
  const double h_lo = 1.0, h_hi = kappa;
  auto run = [&](double lr, double mu, int steps) {
    double x1 = 1.0, x1p = 1.0, x2 = 1.0, x2p = 1.0;  // two extreme directions
    for (int i = 0; i < steps; ++i) {
      const double n1 = x1 - lr * h_lo * x1 + mu * (x1 - x1p);
      const double n2 = x2 - lr * h_hi * x2 + mu * (x2 - x2p);
      x1p = x1;
      x1 = n1;
      x2p = x2;
      x2 = n2;
    }
    return std::max(std::abs(x1), std::abs(x2));
  };
  // Optimal GD: lr = 2/(h_lo + h_hi); optimal momentum: Eq. 2 + Eq. 9 lr.
  const double gd = run(2.0 / (h_lo + h_hi), 0.0, 300);
  const double smu = (std::sqrt(kappa) - 1.0) / (std::sqrt(kappa) + 1.0);
  const double mu = smu * smu;
  const double momentum = run((1.0 - std::sqrt(mu)) * (1.0 - std::sqrt(mu)) / h_lo, mu, 300);
  EXPECT_LT(momentum, gd * 1e-3);
}

}  // namespace
