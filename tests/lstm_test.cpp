#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

namespace {

/// Hand-rolled scalar LSTM cell reference (batch 1, hidden 1, input 1).
struct ScalarLstmRef {
  // Weight layout mirrors LSTMCell: [i, f, g, o] gates.
  double wxi, wxf, wxg, wxo;
  double whi, whf, whg, who;
  double bi, bf, bg, bo;
  std::pair<double, double> step(double x, double h, double c) const {
    auto sig = [](double z) { return 1.0 / (1.0 + std::exp(-z)); };
    const double i = sig(wxi * x + whi * h + bi);
    const double f = sig(wxf * x + whf * h + bf);
    const double g = std::tanh(wxg * x + whg * h + bg);
    const double o = sig(wxo * x + who * h + bo);
    const double c_next = f * c + i * g;
    const double h_next = o * std::tanh(c_next);
    return {h_next, c_next};
  }
};

}  // namespace

TEST(LstmCell, ForgetBiasInitializedToOne) {
  t::Rng rng(1);
  nn::LSTMCell cell(3, 4, rng);
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(cell.b.value()[j], 0.0);        // input gate
  for (std::int64_t j = 4; j < 8; ++j) EXPECT_EQ(cell.b.value()[j], 1.0);        // forget gate
  for (std::int64_t j = 8; j < 16; ++j) EXPECT_EQ(cell.b.value()[j], 0.0);       // cell, output
}

TEST(LstmCell, MatchesScalarReference) {
  t::Rng rng(2);
  nn::LSTMCell cell(1, 1, rng);
  // Copy the random weights into the reference implementation.
  ScalarLstmRef ref;
  ref.wxi = cell.w_x.value()[0];
  ref.wxf = cell.w_x.value()[1];
  ref.wxg = cell.w_x.value()[2];
  ref.wxo = cell.w_x.value()[3];
  ref.whi = cell.w_h.value()[0];
  ref.whf = cell.w_h.value()[1];
  ref.whg = cell.w_h.value()[2];
  ref.who = cell.w_h.value()[3];
  ref.bi = cell.b.value()[0];
  ref.bf = cell.b.value()[1];
  ref.bg = cell.b.value()[2];
  ref.bo = cell.b.value()[3];

  double h = 0.0, c = 0.0;
  auto state = cell.zero_state(1);
  for (double x : {0.3, -0.7, 1.2}) {
    auto xt = ag::Variable(t::Tensor({1, 1}, {x}));
    state = cell.forward(xt, state);
    std::tie(h, c) = ref.step(x, h, c);
    EXPECT_NEAR(state.h.value().item(), h, 1e-12);
    EXPECT_NEAR(state.c.value().item(), c, 1e-12);
  }
}

TEST(LstmCell, StateShapes) {
  t::Rng rng(3);
  nn::LSTMCell cell(5, 7, rng);
  auto st = cell.zero_state(4);
  EXPECT_EQ(st.h.value().shape(), (t::Shape{4, 7}));
  auto x = ag::Variable(rng.normal_tensor({4, 5}));
  auto next = cell.forward(x, st);
  EXPECT_EQ(next.h.value().shape(), (t::Shape{4, 7}));
  EXPECT_EQ(next.c.value().shape(), (t::Shape{4, 7}));
}

TEST(Lstm, StackOutputsOnePerStep) {
  t::Rng rng(4);
  nn::LSTM lstm(3, 6, 2, rng);
  std::vector<ag::Variable> steps;
  for (int i = 0; i < 5; ++i) steps.push_back(ag::Variable(rng.normal_tensor({2, 3})));
  auto outs = lstm.forward(steps, nullptr);
  ASSERT_EQ(outs.size(), 5u);
  for (const auto& o : outs) EXPECT_EQ(o.value().shape(), (t::Shape{2, 6}));
}

TEST(Lstm, StatesCarryAcrossCalls) {
  t::Rng rng(5);
  nn::LSTM lstm(2, 4, 1, rng);
  auto x0 = ag::Variable(rng.normal_tensor({1, 2}));
  auto x1 = ag::Variable(rng.normal_tensor({1, 2}));

  // One two-step call must equal two one-step calls with threaded state.
  auto joint = lstm.forward({x0, x1}, nullptr);
  auto states = lstm.zero_states(1);
  lstm.forward({x0}, &states);
  auto split = lstm.forward({x1}, &states);
  EXPECT_TRUE(t::allclose(joint[1].value(), split[0].value(), 1e-12, 1e-12));
}

TEST(Lstm, GradcheckThroughTwoSteps) {
  t::Rng rng(6);
  nn::LSTMCell cell(2, 2, rng);
  auto x0 = ag::Variable(rng.normal_tensor({1, 2}), true);
  auto x1 = ag::Variable(rng.normal_tensor({1, 2}), true);
  std::vector<ag::Variable> inputs = {x0, x1, cell.w_x, cell.w_h, cell.b};
  auto fn = [&cell](const std::vector<ag::Variable>& in) {
    auto st = cell.zero_state(1);
    st = cell.forward(in[0], st);
    st = cell.forward(in[1], st);
    return ag::mean(ag::square(st.h));
  };
  const auto result = ag::gradcheck(fn, inputs, 1e-5, 1e-6, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Lstm, BpttGradientsReachEarlySteps) {
  t::Rng rng(7);
  nn::LSTM lstm(2, 4, 1, rng);
  auto x0 = ag::Variable(rng.normal_tensor({1, 2}), true);
  std::vector<ag::Variable> steps = {x0};
  for (int i = 0; i < 7; ++i) steps.push_back(ag::Variable(rng.normal_tensor({1, 2})));
  auto outs = lstm.forward(steps, nullptr);
  ag::mean(ag::square(outs.back())).backward();
  double gnorm = 0.0;
  for (double g : x0.grad().data()) gnorm += g * g;
  EXPECT_GT(gnorm, 0.0) << "gradient should flow back through 8 unrolled steps";
}

TEST(Lstm, InitScaleScalesWeights) {
  t::Rng rng_a(8);
  t::Rng rng_b(8);
  nn::LSTMCell small(3, 3, rng_a, 1.0);
  nn::LSTMCell big(3, 3, rng_b, 3.0);
  double n_small = 0.0, n_big = 0.0;
  for (double v : small.w_h.value().data()) n_small += v * v;
  for (double v : big.w_h.value().data()) n_big += v * v;
  EXPECT_NEAR(n_big / n_small, 9.0, 1e-9);
}
