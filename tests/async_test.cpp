#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "async/async_simulator.hpp"
#include "async/staleness_queue.hpp"
#include "async/total_momentum.hpp"
#include "optim/momentum_sgd.hpp"
#include "sim/noisy_quadratic.hpp"

namespace async = yf::async;
namespace ag = yf::autograd;
namespace t = yf::tensor;

TEST(StalenessQueue, ZeroStalenessIsPassThrough) {
  async::StalenessQueue<int> q(0);
  EXPECT_EQ(q.push(7).value(), 7);
  EXPECT_EQ(q.push(8).value(), 8);
}

TEST(StalenessQueue, DelaysByExactlyTau) {
  async::StalenessQueue<int> q(3);
  EXPECT_FALSE(q.push(0).has_value());
  EXPECT_FALSE(q.push(1).has_value());
  EXPECT_FALSE(q.push(2).has_value());
  EXPECT_EQ(q.push(3).value(), 0);  // value pushed 3 steps ago
  EXPECT_EQ(q.push(4).value(), 1);
  EXPECT_EQ(q.pending(), 3u);
}

TEST(StalenessQueue, RejectsNegativeStaleness) {
  EXPECT_THROW(async::StalenessQueue<int>(-1), std::invalid_argument);
}

TEST(BlockingStalenessQueue, RejectsCapacityNotAboveStaleness) {
  EXPECT_THROW(async::BlockingStalenessQueue<int>(3, 3), std::invalid_argument);
  EXPECT_THROW(async::BlockingStalenessQueue<int>(-1, 4), std::invalid_argument);
}

TEST(BlockingStalenessQueue, PopDelaysByStaleness) {
  async::BlockingStalenessQueue<int> q(2, 8);
  EXPECT_TRUE(q.push(0));
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));  // now 3 > staleness: entry 0 is old enough
  EXPECT_EQ(q.pop().value(), 0);
  EXPECT_EQ(q.pending(), 2);
}

TEST(BlockingStalenessQueue, PopBlocksUntilEntryOldEnough) {
  async::BlockingStalenessQueue<int> q(1, 4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto v = q.pop();  // blocks: queue empty
    popped = true;
    EXPECT_EQ(v.value(), 10);
  });
  q.push(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped) << "one entry is not older than staleness 1";
  q.push(11);  // second entry ages the first past the bound
  consumer.join();
  EXPECT_TRUE(popped);
}

TEST(BlockingStalenessQueue, PushBlocksAtCapacity) {
  async::BlockingStalenessQueue<int> q(0, 2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // blocks: pipeline full
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed) << "capacity 2 must hold the producer";
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed);
}

TEST(BlockingStalenessQueue, CloseDrainsThenSignalsEnd) {
  async::BlockingStalenessQueue<int> q(2, 8);
  q.push(1);
  q.push(2);  // both younger than staleness 2: only reachable by draining
  q.close();
  EXPECT_FALSE(q.push(99)) << "push after close is rejected";
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value()) << "closed and drained";
}

TEST(BlockingStalenessQueue, CloseUnblocksWaitingConsumer) {
  async::BlockingStalenessQueue<int> q(4, 8);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BlockingStalenessQueue, TwoConsumersBothReturnOnClosedDrain) {
  // Closed queue, one entry, two consumers: one gets the entry, the
  // other must observe the drained close and return -- commit_pop has to
  // wake consumers waiting on reserved_ == 0, not only producers.
  async::BlockingStalenessQueue<int> q(2, 8);
  q.push(42);
  q.close();
  std::atomic<int> got{0}, empty{0};
  std::thread c1([&] { q.pop().has_value() ? got++ : empty++; });
  std::thread c2([&] { q.pop().has_value() ? got++ : empty++; });
  c1.join();
  c2.join();
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(empty.load(), 1);
}

TEST(BlockingStalenessQueue, CloseRacingPushNeverLosesAcceptedItems) {
  // A push() that returns true must reach a consumer even when close()
  // lands between the producer's slot reservation and its commit.
  for (int round = 0; round < 20; ++round) {
    async::BlockingStalenessQueue<int> q(1, 4);
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&q, &accepted, p] {
        for (int i = 0; i < 25; ++i) {
          if (q.push(p * 25 + i)) accepted++;
        }
      });
    }
    std::atomic<int> received{0};
    std::thread consumer([&] {
      while (q.pop()) received++;
    });
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    q.close();
    for (auto& p : producers) p.join();
    consumer.join();
    EXPECT_EQ(received.load(), accepted.load()) << "round " << round;
  }
}

TEST(BlockingStalenessQueue, ManyProducersOneConsumerDeliversEverything) {
  async::BlockingStalenessQueue<int> q(3, 5);
  constexpr int kProducers = 4, kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  int received = 0;
  std::thread consumer([&] {
    while (auto v = q.pop()) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(*v)]);
      seen[static_cast<std::size_t>(*v)] = true;
      ++received;
    }
  });
  for (auto& p : producers) p.join();
  q.close();
  consumer.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(BlockingStalenessQueue, CloseWhileConsumerBlockedOnStalenessDrainsCleanly) {
  // Entries younger than the staleness bound are only reachable by a
  // drain; a consumer already blocked on the age condition must wake on
  // close(), receive them all, then observe the end of the stream.
  async::BlockingStalenessQueue<int> q(5, 8);
  q.push(1);
  q.push(2);  // both younger than staleness 5
  std::vector<int> got;
  std::thread consumer([&] {
    while (auto v = q.pop()) got.push_back(*v);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // consumer blocks
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
}

TEST(BlockingStalenessQueue, CloseWhileProducersBlockedAtCapacityReleasesThem) {
  async::BlockingStalenessQueue<int> q(0, 2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));  // pipeline full
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&q, &rejected] {
      if (!q.push(99)) rejected++;  // blocks at capacity until close
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(rejected.load(), 0) << "producers must still be blocked";
  q.close();
  for (auto& p : producers) p.join();
  EXPECT_EQ(rejected.load(), 2) << "close must release blocked producers with push=false";
  // The two accepted entries drain in order.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingStalenessQueue, RandomizedStressLosesAndDuplicatesNothing) {
  // Multi-producer / multi-consumer with randomized think times and a
  // close() landing at a different phase each round: every accepted item
  // is delivered exactly once, no item is invented, and per-producer FIFO
  // order survives the staleness delay.
  for (int round = 0; round < 6; ++round) {
    constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 80;
    async::BlockingStalenessQueue<int> q(2, 5);
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, &accepted, p, round] {
        std::mt19937 rng(static_cast<unsigned>(1000 * round + p));
        for (int i = 0; i < kPerProducer; ++i) {
          if (rng() % 4 == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(rng() % 120));
          }
          if (q.push(p * kPerProducer + i)) accepted++;
        }
      });
    }
    std::vector<std::vector<int>> received(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&q, &received, c, round] {
        std::mt19937 rng(static_cast<unsigned>(2000 * round + c));
        while (auto v = q.pop()) {
          received[static_cast<std::size_t>(c)].push_back(*v);
          if (rng() % 4 == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(rng() % 120));
          }
        }
      });
    }
    // Close mid-flight on odd rounds (producers race the close), after the
    // producers are done on even rounds (pure drain).
    if (round % 2 == 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(300 * round));
    } else {
      for (auto& p : producers) p.join();
    }
    q.close();
    for (auto& p : producers) {
      if (p.joinable()) p.join();
    }
    for (auto& c : consumers) c.join();

    std::vector<int> all;
    for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
    ASSERT_EQ(static_cast<int>(all.size()), accepted.load()) << "round " << round;
    std::vector<bool> seen(kProducers * kPerProducer, false);
    for (int v : all) {
      ASSERT_GE(v, 0) << "round " << round;
      ASSERT_LT(v, kProducers * kPerProducer) << "round " << round;
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "duplicate " << v << " round " << round;
      seen[static_cast<std::size_t>(v)] = true;
    }
    // FIFO per producer within one consumer's stream: a consumer can never
    // see producer p's item i after its item j > i popped by the same
    // consumer... items are claimed in queue order, so each consumer's
    // subsequence per producer must be increasing.
    for (const auto& r : received) {
      std::vector<int> last(kProducers, -1);
      for (int v : r) {
        const int p = v / kPerProducer;
        EXPECT_LT(last[static_cast<std::size_t>(p)], v) << "round " << round;
        last[static_cast<std::size_t>(p)] = v;
      }
    }
  }
}

TEST(Median, OddAndEven) {
  EXPECT_EQ(async::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(async::median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_EQ(async::median({5.0}), 5.0);
  EXPECT_THROW(async::median({}), std::invalid_argument);
}

TEST(TotalMomentum, NoEstimateUntilHistoryFills) {
  async::TotalMomentumEstimator est(2);
  const t::Tensor x({2}, {1.0, 2.0});
  const t::Tensor g({2}, {0.1, 0.1});
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(est.estimate().has_value());
    est.record(x, g, 0.1);
  }
  // tau + 3 = 5 records needed.
  est.record(x, g, 0.1);
  // All-identical iterates: denominators are 0 -> still no estimate.
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(TotalMomentum, RecoversAlgorithmicMomentumSynchronously) {
  // Run exact momentum GD on a quadratic; with tau = 0 the estimator must
  // read back exactly the algorithmic momentum.
  const double mu = 0.6, alpha = 0.05, h = 1.3;
  async::TotalMomentumEstimator est(0);
  t::Tensor x({3}, {1.0, -2.0, 0.7});
  t::Tensor x_prev = x.clone();
  for (int step = 0; step < 10; ++step) {
    t::Tensor g({3});
    for (int j = 0; j < 3; ++j) g[j] = h * x[j];
    est.record(x, g, alpha);
    t::Tensor x_next = x.clone();
    for (int j = 0; j < 3; ++j) x_next[j] = x[j] - alpha * g[j] + mu * (x[j] - x_prev[j]);
    x_prev = x;
    x = x_next;
    if (auto e = est.estimate()) {
      EXPECT_NEAR(*e, mu, 1e-9) << "step " << step;
    }
  }
  EXPECT_TRUE(est.estimate().has_value());
}

TEST(TotalMomentum, SmoothedTracksEstimates) {
  async::TotalMomentumEstimator est(0);
  t::Tensor x({2}, {1.0, 1.0});
  t::Tensor x_prev = x.clone();
  const double mu = 0.4, alpha = 0.1;
  for (int step = 0; step < 30; ++step) {
    t::Tensor g({2});
    for (int j = 0; j < 2; ++j) g[j] = x[j];
    est.record(x, g, alpha);
    t::Tensor x_next = x.clone();
    for (int j = 0; j < 2; ++j) x_next[j] = x[j] - alpha * g[j] + mu * (x[j] - x_prev[j]);
    x_prev = x;
    x = x_next;
    est.smoothed(0.5);
  }
  EXPECT_NEAR(est.smoothed(0.5), mu, 1e-6);
}

namespace {

/// Quadratic bowl task on a Variable parameter, for AsyncTrainer tests.
struct BowlTask {
  ag::Variable x;
  double h;
  double noise;
  t::Rng rng{31};
  BowlTask(std::int64_t dim, double curvature, double noise_std)
      : x(t::Tensor({dim}), true), h(curvature), noise(noise_std) {
    x.value().fill(3.0);
  }
  double grad() {
    auto& g = x.node()->ensure_grad();
    double loss = 0.0;
    for (std::int64_t j = 0; j < g.size(); ++j) {
      loss += 0.5 * h * x.value()[j] * x.value()[j];
      g[j] = h * x.value()[j] + noise * rng.normal();
    }
    return loss;
  }
};

}  // namespace

TEST(AsyncTrainer, RequiresOptimizer) {
  EXPECT_THROW(async::AsyncTrainer(nullptr, [] { return 0.0; }, {}), std::invalid_argument);
}

TEST(AsyncTrainer, ClosedLoopRequiresYellowFin) {
  BowlTask task(2, 1.0, 0.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.01, 0.9);
  async::AsyncTrainerOptions opts;
  opts.closed_loop = true;
  EXPECT_THROW(async::AsyncTrainer(opt, [&] { return task.grad(); }, opts),
               std::invalid_argument);
}

TEST(AsyncTrainer, PipelineFillsBeforeUpdating) {
  BowlTask task(2, 1.0, 0.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.01, 0.0);
  async::AsyncTrainerOptions opts;
  opts.staleness = 4;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(trainer.step().applied_update);
    EXPECT_EQ(task.x.value()[0], 3.0);  // untouched while filling
  }
  EXPECT_TRUE(trainer.step().applied_update);
  EXPECT_NE(task.x.value()[0], 3.0);
}

TEST(AsyncTrainer, StaleGradientIsApplied) {
  // With staleness 1 and a deterministic gradient, the first applied
  // update must use the gradient from the *initial* iterate.
  BowlTask task(1, 2.0, 0.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.1, 0.0);
  async::AsyncTrainerOptions opts;
  opts.staleness = 1;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  trainer.step();  // queue fill: grad at x = 3 -> g = 6
  trainer.step();  // applies g = 6: x = 3 - 0.1*6 = 2.4
  EXPECT_NEAR(task.x.value()[0], 2.4, 1e-12);
  trainer.step();  // applies grad computed at x = 3 again? no: at 3 (2nd fill step) -> 2.4 - 0.6
  EXPECT_NEAR(task.x.value()[0], 1.8, 1e-12);
}

TEST(AsyncTrainer, MeasuresAsynchronyInducedMomentum) {
  // Momentum SGD with mu = 0 under staleness: measured total momentum must
  // be significantly above 0 (asynchrony begets momentum).
  BowlTask task(30, 1.0, 0.01);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.05, 0.0);
  async::AsyncTrainerOptions opts;
  opts.staleness = 8;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  // Individual mu_hat_T estimates are noisy (the red dots of Fig. 4); the
  // paper reads the running average, so test the mean over many steps.
  double sum = 0.0;
  int estimates = 0;
  for (int i = 0; i < 500; ++i) {
    const auto stats = trainer.step();
    if (stats.mu_hat_total && i > 100) {
      sum += *stats.mu_hat_total;
      ++estimates;
    }
  }
  ASSERT_GT(estimates, 100);
  EXPECT_GT(sum / estimates, 0.05);
}
