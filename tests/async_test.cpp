#include <gtest/gtest.h>

#include <cmath>

#include "async/async_simulator.hpp"
#include "async/staleness_queue.hpp"
#include "async/total_momentum.hpp"
#include "optim/momentum_sgd.hpp"
#include "sim/noisy_quadratic.hpp"

namespace async = yf::async;
namespace ag = yf::autograd;
namespace t = yf::tensor;

TEST(StalenessQueue, ZeroStalenessIsPassThrough) {
  async::StalenessQueue<int> q(0);
  EXPECT_EQ(q.push(7).value(), 7);
  EXPECT_EQ(q.push(8).value(), 8);
}

TEST(StalenessQueue, DelaysByExactlyTau) {
  async::StalenessQueue<int> q(3);
  EXPECT_FALSE(q.push(0).has_value());
  EXPECT_FALSE(q.push(1).has_value());
  EXPECT_FALSE(q.push(2).has_value());
  EXPECT_EQ(q.push(3).value(), 0);  // value pushed 3 steps ago
  EXPECT_EQ(q.push(4).value(), 1);
  EXPECT_EQ(q.pending(), 3u);
}

TEST(StalenessQueue, RejectsNegativeStaleness) {
  EXPECT_THROW(async::StalenessQueue<int>(-1), std::invalid_argument);
}

TEST(Median, OddAndEven) {
  EXPECT_EQ(async::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(async::median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_EQ(async::median({5.0}), 5.0);
  EXPECT_THROW(async::median({}), std::invalid_argument);
}

TEST(TotalMomentum, NoEstimateUntilHistoryFills) {
  async::TotalMomentumEstimator est(2);
  const t::Tensor x({2}, {1.0, 2.0});
  const t::Tensor g({2}, {0.1, 0.1});
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(est.estimate().has_value());
    est.record(x, g, 0.1);
  }
  // tau + 3 = 5 records needed.
  est.record(x, g, 0.1);
  // All-identical iterates: denominators are 0 -> still no estimate.
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(TotalMomentum, RecoversAlgorithmicMomentumSynchronously) {
  // Run exact momentum GD on a quadratic; with tau = 0 the estimator must
  // read back exactly the algorithmic momentum.
  const double mu = 0.6, alpha = 0.05, h = 1.3;
  async::TotalMomentumEstimator est(0);
  t::Tensor x({3}, {1.0, -2.0, 0.7});
  t::Tensor x_prev = x.clone();
  for (int step = 0; step < 10; ++step) {
    t::Tensor g({3});
    for (int j = 0; j < 3; ++j) g[j] = h * x[j];
    est.record(x, g, alpha);
    t::Tensor x_next = x.clone();
    for (int j = 0; j < 3; ++j) x_next[j] = x[j] - alpha * g[j] + mu * (x[j] - x_prev[j]);
    x_prev = x;
    x = x_next;
    if (auto e = est.estimate()) {
      EXPECT_NEAR(*e, mu, 1e-9) << "step " << step;
    }
  }
  EXPECT_TRUE(est.estimate().has_value());
}

TEST(TotalMomentum, SmoothedTracksEstimates) {
  async::TotalMomentumEstimator est(0);
  t::Tensor x({2}, {1.0, 1.0});
  t::Tensor x_prev = x.clone();
  const double mu = 0.4, alpha = 0.1;
  for (int step = 0; step < 30; ++step) {
    t::Tensor g({2});
    for (int j = 0; j < 2; ++j) g[j] = x[j];
    est.record(x, g, alpha);
    t::Tensor x_next = x.clone();
    for (int j = 0; j < 2; ++j) x_next[j] = x[j] - alpha * g[j] + mu * (x[j] - x_prev[j]);
    x_prev = x;
    x = x_next;
    est.smoothed(0.5);
  }
  EXPECT_NEAR(est.smoothed(0.5), mu, 1e-6);
}

namespace {

/// Quadratic bowl task on a Variable parameter, for AsyncTrainer tests.
struct BowlTask {
  ag::Variable x;
  double h;
  double noise;
  t::Rng rng{31};
  BowlTask(std::int64_t dim, double curvature, double noise_std)
      : x(t::Tensor({dim}), true), h(curvature), noise(noise_std) {
    x.value().fill(3.0);
  }
  double grad() {
    auto& g = x.node()->ensure_grad();
    double loss = 0.0;
    for (std::int64_t j = 0; j < g.size(); ++j) {
      loss += 0.5 * h * x.value()[j] * x.value()[j];
      g[j] = h * x.value()[j] + noise * rng.normal();
    }
    return loss;
  }
};

}  // namespace

TEST(AsyncTrainer, RequiresOptimizer) {
  EXPECT_THROW(async::AsyncTrainer(nullptr, [] { return 0.0; }, {}), std::invalid_argument);
}

TEST(AsyncTrainer, ClosedLoopRequiresYellowFin) {
  BowlTask task(2, 1.0, 0.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.01, 0.9);
  async::AsyncTrainerOptions opts;
  opts.closed_loop = true;
  EXPECT_THROW(async::AsyncTrainer(opt, [&] { return task.grad(); }, opts),
               std::invalid_argument);
}

TEST(AsyncTrainer, PipelineFillsBeforeUpdating) {
  BowlTask task(2, 1.0, 0.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.01, 0.0);
  async::AsyncTrainerOptions opts;
  opts.staleness = 4;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(trainer.step().applied_update);
    EXPECT_EQ(task.x.value()[0], 3.0);  // untouched while filling
  }
  EXPECT_TRUE(trainer.step().applied_update);
  EXPECT_NE(task.x.value()[0], 3.0);
}

TEST(AsyncTrainer, StaleGradientIsApplied) {
  // With staleness 1 and a deterministic gradient, the first applied
  // update must use the gradient from the *initial* iterate.
  BowlTask task(1, 2.0, 0.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.1, 0.0);
  async::AsyncTrainerOptions opts;
  opts.staleness = 1;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  trainer.step();  // queue fill: grad at x = 3 -> g = 6
  trainer.step();  // applies g = 6: x = 3 - 0.1*6 = 2.4
  EXPECT_NEAR(task.x.value()[0], 2.4, 1e-12);
  trainer.step();  // applies grad computed at x = 3 again? no: at 3 (2nd fill step) -> 2.4 - 0.6
  EXPECT_NEAR(task.x.value()[0], 1.8, 1e-12);
}

TEST(AsyncTrainer, MeasuresAsynchronyInducedMomentum) {
  // Momentum SGD with mu = 0 under staleness: measured total momentum must
  // be significantly above 0 (asynchrony begets momentum).
  BowlTask task(30, 1.0, 0.01);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(
      std::vector<ag::Variable>{task.x}, 0.05, 0.0);
  async::AsyncTrainerOptions opts;
  opts.staleness = 8;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  // Individual mu_hat_T estimates are noisy (the red dots of Fig. 4); the
  // paper reads the running average, so test the mean over many steps.
  double sum = 0.0;
  int estimates = 0;
  for (int i = 0; i < 500; ++i) {
    const auto stats = trainer.step();
    if (stats.mu_hat_total && i > 100) {
      sum += *stats.mu_hat_total;
      ++estimates;
    }
  }
  ASSERT_GT(estimates, 100);
  EXPECT_GT(sum / estimates, 0.05);
}
