#include <gtest/gtest.h>

#include "tensor/ops.hpp"

#include "autograd/ops.hpp"
#include "nn/language_model.hpp"
#include "nn/resnet.hpp"
#include "nn/seq2seq.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

TEST(MiniResNet, LogitShape) {
  t::Rng rng(1);
  nn::MiniResNetConfig cfg;
  cfg.base_channels = 4;
  cfg.blocks_per_stage = 1;
  cfg.num_classes = 7;
  nn::MiniResNet net(cfg, rng);
  auto x = ag::Variable(rng.normal_tensor({2, 3, 16, 16}));
  EXPECT_EQ(net.forward(x).value().shape(), (t::Shape{2, 7}));
}

TEST(MiniResNet, DepthAndChannelGrowth) {
  t::Rng rng(2);
  nn::MiniResNetConfig cfg;
  cfg.base_channels = 4;
  cfg.blocks_per_stage = 2;
  nn::MiniResNet net(cfg, rng);
  // 3 stages x 2 blocks, channel doubling twice => head input 16 channels.
  // Parameter count sanity: stem + 6 blocks + head.
  EXPECT_GT(net.parameter_count(), 1000);
}

TEST(MiniResNet, BackwardProducesFiniteGrads) {
  t::Rng rng(3);
  nn::MiniResNetConfig cfg;
  cfg.base_channels = 4;
  cfg.blocks_per_stage = 1;
  nn::MiniResNet net(cfg, rng);
  auto x = ag::Variable(rng.normal_tensor({2, 3, 8, 8}));
  auto loss = ag::softmax_cross_entropy(net.forward(x), {0, 1});
  loss.backward();
  for (const auto& p : net.parameters()) {
    for (double g : p.grad().data()) EXPECT_TRUE(std::isfinite(g));
  }
}

TEST(ResidualBlock, IdentityPathPreservedAtZeroBranch) {
  t::Rng rng(4);
  nn::ResidualBlock block(4, 4, /*downsample=*/false, rng, /*residual_scale=*/0.0,
                          /*with_batchnorm=*/false);
  auto x = ag::Variable(t::map(rng.normal_tensor({1, 4, 4, 4}),
                               [](double v) { return std::abs(v); }));  // positive => ReLU no-op
  auto y = block.forward(x);
  EXPECT_TRUE(t::allclose(y.value(), x.value(), 1e-12, 1e-12));
}

TEST(ResidualBlock, DownsampleHalvesSpatial) {
  t::Rng rng(5);
  nn::ResidualBlock block(4, 8, /*downsample=*/true, rng);
  auto x = ag::Variable(rng.normal_tensor({2, 4, 8, 8}));
  EXPECT_EQ(block.forward(x).value().shape(), (t::Shape{2, 8, 4, 4}));
}

TEST(LanguageModel, LogitShape) {
  t::Rng rng(6);
  nn::LanguageModelConfig cfg;
  cfg.vocab = 11;
  cfg.embed_dim = 4;
  cfg.hidden = 5;
  cfg.layers = 2;
  nn::LSTMLanguageModel lm(cfg, rng);
  std::vector<std::int64_t> tokens(2 * 3, 1);
  EXPECT_EQ(lm.logits(tokens, 2, 3).value().shape(), (t::Shape{6, 11}));
}

TEST(LanguageModel, LossIsLogVocabAtInit) {
  t::Rng rng(7);
  nn::LanguageModelConfig cfg;
  cfg.vocab = 17;
  cfg.embed_dim = 4;
  cfg.hidden = 4;
  cfg.layers = 1;
  nn::LSTMLanguageModel lm(cfg, rng);
  std::vector<std::int64_t> tokens(4 * 6);
  t::Rng data_rng(8);
  for (auto& tok : tokens) tok = data_rng.index(17);
  const double loss = lm.loss(tokens, 4, 6).value().item();
  // Untrained LM should be near the uniform baseline log(17) ~ 2.83.
  EXPECT_NEAR(loss, std::log(17.0), 0.4);
}

TEST(LanguageModel, RowOrderingMatchesBTIndexing) {
  // logits row r = b*T + t must correspond to token (b, t): check by making
  // the embedding for one token huge and seeing which rows move.
  t::Rng rng(9);
  nn::LanguageModelConfig cfg;
  cfg.vocab = 5;
  cfg.embed_dim = 3;
  cfg.hidden = 3;
  cfg.layers = 1;
  nn::LSTMLanguageModel lm(cfg, rng);
  const std::int64_t batch = 2, seq = 3;
  std::vector<std::int64_t> a = {0, 0, 0, 0, 0, 0};
  std::vector<std::int64_t> b = {0, 0, 0, 0, 4, 0};  // token (1, 1) differs
  auto la = lm.logits(a, batch, seq).value();
  auto lb = lm.logits(b, batch, seq).value();
  // Rows for batch 0 must be identical; batch-1 rows from t=1 on must differ.
  for (std::int64_t t_i = 0; t_i < seq; ++t_i) {
    for (std::int64_t v = 0; v < 5; ++v) {
      EXPECT_EQ(la.at({t_i, v}), lb.at({t_i, v}));
    }
  }
  double diff = 0.0;
  for (std::int64_t v = 0; v < 5; ++v) {
    diff += std::abs(la.at({seq + 1, v}) - lb.at({seq + 1, v}));
  }
  EXPECT_GT(diff, 0.0);
}

TEST(LanguageModel, TiedWeightsShareTable) {
  t::Rng rng(10);
  nn::LanguageModelConfig cfg;
  cfg.vocab = 9;
  cfg.embed_dim = 6;
  cfg.hidden = 6;
  cfg.layers = 1;
  cfg.tie_weights = true;
  nn::LSTMLanguageModel lm(cfg, rng);
  // Tied model has no separate output projection: embed + lstm params only.
  std::size_t linear_params = 0;
  for (const auto& [name, var] : lm.named_parameters()) {
    if (name.rfind("out.", 0) == 0) ++linear_params;
  }
  EXPECT_EQ(linear_params, 0u);
  std::vector<std::int64_t> tokens(2 * 4, 3);
  EXPECT_TRUE(std::isfinite(lm.loss(tokens, 2, 4).value().item()));
}

TEST(LanguageModel, TieRequiresMatchingDims) {
  t::Rng rng(11);
  nn::LanguageModelConfig cfg;
  cfg.embed_dim = 4;
  cfg.hidden = 8;
  cfg.tie_weights = true;
  EXPECT_THROW(nn::LSTMLanguageModel(cfg, rng), std::invalid_argument);
}

TEST(Seq2Seq, LossFiniteAndAccuracyBounded) {
  t::Rng rng(12);
  nn::Seq2SeqConfig cfg;
  cfg.src_vocab = 6;
  cfg.tgt_vocab = 8;
  cfg.embed_dim = 4;
  cfg.hidden = 5;
  nn::Seq2Seq model(cfg, rng);
  const std::int64_t batch = 3, src_len = 4, tgt_len_plus1 = 5;
  std::vector<std::int64_t> src(batch * src_len), tgt(batch * tgt_len_plus1);
  t::Rng data_rng(13);
  for (auto& s : src) s = data_rng.index(6);
  for (auto& s : tgt) s = data_rng.index(8);
  const double loss = model.loss(src, src_len, tgt, tgt_len_plus1, batch).value().item();
  EXPECT_TRUE(std::isfinite(loss));
  const double acc = model.token_accuracy(src, src_len, tgt, tgt_len_plus1, batch);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(Seq2Seq, BufferSizeMismatchThrows) {
  t::Rng rng(14);
  nn::Seq2Seq model(nn::Seq2SeqConfig{}, rng);
  std::vector<std::int64_t> src(3), tgt(10);
  EXPECT_THROW(model.loss(src, 4, tgt, 5, 2), std::invalid_argument);
}
