#include "tuner/single_step.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/robust_region.hpp"

namespace tuner = yf::tuner;

namespace {

/// Brute-force minimizer of p(x) = x^2 D^2 + (1-x)^4 C / hmin^2 on [0, 1).
double brute_force_sqrt_mu(double d, double c, double hmin) {
  double best_x = 0.0, best_v = 1e300;
  for (int i = 0; i < 200000; ++i) {
    const double x = static_cast<double>(i) / 200000.0;
    const double q = (1.0 - x) * (1.0 - x);
    const double v = x * x * d * d + q * q * c / (hmin * hmin);
    if (v < best_v) {
      best_v = v;
      best_x = x;
    }
  }
  return best_x;
}

}  // namespace

TEST(CubicSolver, RejectsNonPositiveP) {
  EXPECT_THROW(tuner::solve_cubic_sqrt_mu(0.0), std::invalid_argument);
  EXPECT_THROW(tuner::solve_cubic_sqrt_mu(-1.0), std::invalid_argument);
}

TEST(CubicSolver, RootSatisfiesCubic) {
  for (double p : {1e-6, 1e-3, 0.1, 1.0, 10.0, 1e3, 1e6}) {
    const double x = tuner::solve_cubic_sqrt_mu(p);
    const double y = x - 1.0;
    // y^3 + p y + p = 0, normalized by the dominant magnitude.
    const double resid = std::abs(y * y * y + p * y + p) / std::max(1.0, p);
    EXPECT_LT(resid, 1e-9) << "p = " << p;
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(CubicSolver, MonotoneDecreasingInP) {
  // p = D^2 h_min^2 / (2C). Larger p (bias-dominated regime: large distance
  // or little noise) => the one-step objective favors *smaller* momentum
  // with a larger step; smaller p (noise-dominated) pushes momentum to 1.
  // This is also why YellowFin anneals: as D shrinks late in training,
  // p falls and momentum rises while the lr drops.
  double prev = 2.0;
  for (double p : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    const double x = tuner::solve_cubic_sqrt_mu(p);
    EXPECT_LT(x, prev);
    prev = x;
  }
}

TEST(SingleStep, RejectsBadInputs) {
  EXPECT_THROW(tuner::single_step(1.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(tuner::single_step(0.5, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(tuner::single_step(1.0, 1.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(tuner::single_step(1.0, 1.0, 1.0, -1.0), std::invalid_argument);
}

TEST(SingleStep, NoiselessLimitUsesGcnBound) {
  const auto r = tuner::single_step(100.0, 1.0, 0.0, 1.0);
  const double expected = yf::sim::optimal_momentum(100.0);
  EXPECT_NEAR(r.mu, expected, 1e-12);
  EXPECT_EQ(r.mu_unconstrained, 0.0);
}

TEST(SingleStep, FlatCurvatureNoiselessGivesZeroMomentum) {
  const auto r = tuner::single_step(2.0, 2.0, 0.0, 1.0);
  EXPECT_NEAR(r.mu, 0.0, 1e-12);
  EXPECT_NEAR(r.alpha, 1.0 / 2.0, 1e-12);  // (1-0)^2 / hmin
}

TEST(SingleStep, AlphaAlwaysOnConstraint) {
  for (double c : {0.0, 0.1, 10.0}) {
    for (double d : {0.1, 1.0, 10.0}) {
      const auto r = tuner::single_step(50.0, 0.5, c, d);
      const double s = 1.0 - std::sqrt(r.mu);
      EXPECT_NEAR(r.alpha, s * s / 0.5, 1e-12);
    }
  }
}

TEST(SingleStep, ResultAlwaysInRobustRegionForBothExtremes) {
  // The constraints of Eq. 15 must place both h_min and h_max inside the
  // robust region of Lemma 3.
  for (double ratio : {1.0, 2.0, 10.0, 1000.0}) {
    for (double c : {0.01, 1.0, 100.0}) {
      const double hmin = 0.7, hmax = hmin * ratio;
      const auto r = tuner::single_step(hmax, hmin, c, 2.0);
      EXPECT_TRUE(yf::sim::in_robust_region(r.alpha, r.mu, hmin))
          << "hmin, ratio=" << ratio << " c=" << c;
      EXPECT_TRUE(yf::sim::in_robust_region(r.alpha, r.mu, hmax))
          << "hmax, ratio=" << ratio << " c=" << c;
    }
  }
}

// Parameterized property: the closed form matches brute-force minimization
// of the substituted objective across (D, C, hmin).
struct SingleStepCase {
  double d, c, hmin;
};

class SingleStepBruteForce : public ::testing::TestWithParam<SingleStepCase> {};

TEST_P(SingleStepBruteForce, ClosedFormMatchesGrid) {
  const auto& [d, c, hmin] = GetParam();
  const auto r = tuner::single_step(hmin, hmin, c, d);  // ratio 1: bound is 0
  const double brute = brute_force_sqrt_mu(d, c, hmin);
  EXPECT_NEAR(std::sqrt(r.mu), brute, 2e-5)
      << "d=" << d << " c=" << c << " hmin=" << hmin;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SingleStepBruteForce,
    ::testing::Values(SingleStepCase{1.0, 1.0, 1.0}, SingleStepCase{10.0, 1.0, 1.0},
                      SingleStepCase{0.1, 1.0, 1.0}, SingleStepCase{1.0, 100.0, 1.0},
                      SingleStepCase{1.0, 0.01, 1.0}, SingleStepCase{5.0, 2.0, 0.1},
                      SingleStepCase{5.0, 2.0, 10.0}, SingleStepCase{0.5, 50.0, 3.0}));

TEST(SingleStep, MoreNoiseRaisesMomentumAndLowersLr) {
  // Noise-dominated regime: the alpha^2 C term dominates, so the optimizer
  // shrinks alpha by pushing momentum toward 1 (alpha is tied to mu by the
  // robust-region constraint).
  const auto low_noise = tuner::single_step(10.0, 1.0, 0.01, 1.0);
  const auto high_noise = tuner::single_step(10.0, 1.0, 100.0, 1.0);
  EXPECT_LE(low_noise.mu, high_noise.mu);
  EXPECT_GE(low_noise.alpha, high_noise.alpha);
}

TEST(SingleStep, LargerDistanceLowersMomentumRaisesLr) {
  // Bias-dominated regime: far from the optimum the mu D^2 term dominates,
  // so the optimizer takes bigger steps (small mu, large alpha). As D
  // decays during training this is what anneals YellowFin's lr.
  const auto near = tuner::single_step(10.0, 1.0, 1.0, 0.1);
  const auto far = tuner::single_step(10.0, 1.0, 1.0, 10.0);
  EXPECT_LE(far.mu, near.mu);
  EXPECT_GE(far.alpha, near.alpha);
}
