// GEMM subsystem tests (core/gemm.hpp, DESIGN.md §9).
//
// The determinism contract under test: every path -- packed or small,
// scalar or AVX2 backend, any pool fan-out -- accumulates each output
// element in the canonical KC-panel order (kernel_table.hpp), so all of
// them are EXPECT_EQ-bit-identical to the independent reference
// reimplemented here, and the NT/TN layout variants are bit-identical
// to materializing the transpose and running NN (packing reorders
// *reads*, never arithmetic). That compositionally pins the autograd
// rewrite: the matmul/conv pullbacks that used to transpose-then-multiply
// now call the NT/TN kernels, and the op-level equalities below prove
// gradients could not have moved.
#include "core/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <tuple>
#include <vector>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "core/kernels/backend.hpp"
#include "core/parallel.hpp"
#include "data/markov_text.hpp"
#include "nn/language_model.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ag = yf::autograd;
namespace core = yf::core;
namespace t = yf::tensor;

namespace {

std::vector<double> random_vec(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Run `fn` under a forced kernel backend, restoring the previous one.
template <typename F>
auto with_backend(core::KernelBackend backend, F&& fn) {
  const auto previous = core::active_kernel_backend();
  core::set_kernel_backend(backend);
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    core::set_kernel_backend(previous);
  } else {
    auto result = fn();
    core::set_kernel_backend(previous);
    return result;
  }
}

/// Independent reimplementation of the canonical accumulation order
/// (kernel_table.hpp): per element, one partial sum per 256-deep k
/// panel (kk ascending, single accumulator from 0.0), panels combined
/// in ascending order with the first overwriting C. Deliberately not
/// written via the library's helpers.
void ref_gemm(core::GemmVariant v, double* c, const double* a, const double* b, std::int64_t m,
              std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kPanel = 256;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double out = 0.0;
      for (std::int64_t p0 = 0; p0 < k || p0 == 0; p0 += kPanel) {
        double acc = 0.0;
        const std::int64_t pe = std::min(k, p0 + kPanel);
        for (std::int64_t kk = p0; kk < pe; ++kk) {
          const double av = v == core::GemmVariant::kTN ? a[kk * m + i] : a[i * k + kk];
          const double bv = v == core::GemmVariant::kNT ? b[j * k + kk] : b[kk * n + j];
          acc += av * bv;
        }
        out = p0 == 0 ? acc : out + acc;
        if (k == 0) break;
      }
      c[i * n + j] = out;
    }
  }
}

struct Shape {
  std::int64_t m, n, k;
};

/// Shapes straddling every tail case: n mod NR (8), k mod KC (256),
/// 1 x N row products, M x 1 column products, k == 0, plus shapes on
/// both sides of the small-path thresholds (flops and row count).
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {1, 300, 40}, {40, 1, 33},   {8, 64, 512},
    {5, 9, 300},  {17, 96, 256}, {33, 70, 71}, {96, 100, 257}, {97, 103, 300},
    {64, 64, 64}, {2, 8, 0},
};

std::int64_t a_len(core::GemmVariant v, const Shape& s) {
  return std::max<std::int64_t>(1, v == core::GemmVariant::kTN ? s.k * s.m : s.m * s.k);
}
std::int64_t b_len(core::GemmVariant v, const Shape& s) {
  return std::max<std::int64_t>(1, v == core::GemmVariant::kNT ? s.n * s.k : s.k * s.n);
}

const core::GemmVariant kVariants[] = {core::GemmVariant::kNN, core::GemmVariant::kNT,
                                       core::GemmVariant::kTN};

const char* variant_name(core::GemmVariant v) {
  switch (v) {
    case core::GemmVariant::kNN: return "nn";
    case core::GemmVariant::kNT: return "nt";
    case core::GemmVariant::kTN: return "tn";
  }
  return "?";
}

}  // namespace

TEST(Gemm, MatchesCanonicalReferenceBitwise) {
  for (const auto& s : kShapes) {
    for (const auto v : kVariants) {
      const auto a = random_vec(static_cast<std::size_t>(a_len(v, s)), 11);
      const auto b = random_vec(static_cast<std::size_t>(b_len(v, s)), 12);
      std::vector<double> c(static_cast<std::size_t>(s.m * s.n), 0.5);
      std::vector<double> expect(c.size(), -0.25);
      core::gemm(v, c.data(), a.data(), b.data(), s.m, s.n, s.k);
      ref_gemm(v, expect.data(), a.data(), b.data(), s.m, s.n, s.k);
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], expect[i]) << variant_name(v) << " " << s.m << "x" << s.n << "x" << s.k
                                   << " @" << i;
      }
    }
  }
}

TEST(Gemm, PackedAndSmallPathsBitIdentical) {
  // The size-bucket dispatch must be invisible in results: force both
  // engines on shapes that would naturally pick either one.
  for (const auto& s : kShapes) {
    if (s.m * s.n * s.k == 0) continue;
    for (const auto v : kVariants) {
      const auto a = random_vec(static_cast<std::size_t>(a_len(v, s)), 21);
      const auto b = random_vec(static_cast<std::size_t>(b_len(v, s)), 22);
      std::vector<double> packed(static_cast<std::size_t>(s.m * s.n), 1.0);
      std::vector<double> small(packed.size(), 2.0);
      core::detail::gemm_packed(v, packed.data(), a.data(), b.data(), s.m, s.n, s.k);
      core::detail::gemm_small(v, small.data(), a.data(), b.data(), s.m, s.n, s.k);
      for (std::size_t i = 0; i < packed.size(); ++i) {
        ASSERT_EQ(packed[i], small[i]) << variant_name(v) << " " << s.m << "x" << s.n << "x"
                                       << s.k << " @" << i;
      }
    }
  }
}

TEST(Gemm, ScalarSimdParityBitIdentical) {
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  for (const auto& s : kShapes) {
    for (const auto v : kVariants) {
      const auto a = random_vec(static_cast<std::size_t>(a_len(v, s)), 31);
      const auto b = random_vec(static_cast<std::size_t>(b_len(v, s)), 32);
      // Both forced paths, both backends: 2x2 bitwise agreement.
      for (const bool packed : {false, true}) {
        if (packed && s.k == 0) continue;
        auto run = [&](core::KernelBackend backend) {
          return with_backend(backend, [&] {
            std::vector<double> c(static_cast<std::size_t>(s.m * s.n), 3.0);
            if (packed) {
              core::detail::gemm_packed(v, c.data(), a.data(), b.data(), s.m, s.n, s.k);
            } else {
              core::detail::gemm_small(v, c.data(), a.data(), b.data(), s.m, s.n, s.k);
            }
            return c;
          });
        };
        const auto scalar_out = run(core::KernelBackend::kScalar);
        const auto simd_out = run(core::KernelBackend::kSimd);
        for (std::size_t i = 0; i < scalar_out.size(); ++i) {
          ASSERT_EQ(scalar_out[i], simd_out[i])
              << variant_name(v) << (packed ? " packed " : " small ") << s.m << "x" << s.n << "x"
              << s.k << " @" << i;
        }
      }
    }
  }
}

TEST(Gemm, ThreadCountAndPartitionInvariant) {
  // Row-block parallelism partitions disjoint output rows; any fan-out
  // (including several chunks per worker) must be bitwise invisible.
  const Shape s{200, 96, 300};  // 3 row blocks in the packed path
  const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), 41);
  const auto b = random_vec(static_cast<std::size_t>(s.k * s.n), 42);
  auto& pool = core::ThreadPool::instance();
  const auto old_fanout = pool.fanout();
  auto run = [&](std::size_t fanout) {
    pool.set_fanout(fanout);
    std::vector<double> c(static_cast<std::size_t>(s.m * s.n));
    core::detail::gemm_packed(core::GemmVariant::kNN, c.data(), a.data(), b.data(), s.m, s.n,
                              s.k);
    return c;
  };
  const auto one = run(1);
  for (const std::size_t fanout : {2u, 3u, 8u}) {
    const auto many = run(fanout);
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_EQ(one[i], many[i]) << "fanout " << fanout << " @" << i;
    }
  }
  pool.set_fanout(old_fanout);
}

TEST(Gemm, DirtyReusedOutputIsOverwritten) {
  // matmul_into used to zero the output before an accumulating kernel;
  // the GEMM's beta=0 first panel makes that pass unnecessary. A reused
  // output full of garbage (including NaN, which any read-modify-write
  // would propagate) must produce exactly the fresh-output result.
  t::Rng rng(7);
  for (const auto& s : {Shape{6, 10, 12}, Shape{40, 70, 300}}) {
    const auto a = rng.normal_tensor({s.m, s.k});
    const auto b = rng.normal_tensor({s.k, s.n});
    const auto fresh = t::matmul(a, b);
    t::Tensor dirty(t::Shape{s.m, s.n});
    dirty.fill(std::numeric_limits<double>::quiet_NaN());
    t::matmul_into(dirty, a, b);
    for (std::int64_t i = 0; i < dirty.size(); ++i) ASSERT_EQ(dirty[i], fresh[i]) << i;
  }
  // k == 0 must zero the output, not leave it dirty.
  t::Tensor empty_a(t::Shape{3, 0}), empty_b(t::Shape{0, 4});
  t::Tensor dirty(t::Shape{3, 4});
  dirty.fill(123.0);
  t::matmul_into(dirty, empty_a, empty_b);
  for (std::int64_t i = 0; i < dirty.size(); ++i) ASSERT_EQ(dirty[i], 0.0) << i;
}

TEST(Gemm, NtTnMatchMaterializedTransposeBitwise) {
  // The packing step absorbs op(B)/op(A); element arithmetic is
  // untouched, so NT/TN must equal transpose-then-NN exactly.
  t::Rng rng(9);
  for (const auto& s : {Shape{5, 9, 11}, Shape{33, 70, 280}}) {
    const auto a = rng.normal_tensor({s.m, s.k});
    const auto bt = rng.normal_tensor({s.n, s.k});  // NT operand
    const auto at = rng.normal_tensor({s.k, s.m});  // TN operand
    const auto b = rng.normal_tensor({s.k, s.n});
    const auto nt = t::matmul_nt(a, bt);
    const auto nt_ref = t::matmul(a, t::transpose(bt));
    const auto tn = t::matmul_tn(at, b);
    const auto tn_ref = t::matmul(t::transpose(at), b);
    for (std::int64_t i = 0; i < nt.size(); ++i) ASSERT_EQ(nt[i], nt_ref[i]) << "nt @" << i;
    for (std::int64_t i = 0; i < tn.size(); ++i) ASSERT_EQ(tn[i], tn_ref[i]) << "tn @" << i;
  }
}

TEST(Gemm, MatmulPullbackMatchesMaterializedTransposeBitwise) {
  // The autograd matmul pullback moved from transpose_into + matmul_into
  // onto the NT/TN variants. Gradients must be bit-identical to the
  // historical materialize-then-multiply formulation.
  t::Rng rng(13);
  const auto av = rng.normal_tensor({7, 12});
  const auto bv = rng.normal_tensor({12, 9});
  ag::Variable a(av.clone(), /*requires_grad=*/true);
  ag::Variable b(bv.clone(), /*requires_grad=*/true);
  auto loss = ag::sum(ag::square(ag::matmul(a, b)));
  loss.backward();

  // Reference: dC = 2 * C elementwise (from sum-of-squares), then the
  // pre-rewrite gradient products with explicit transposes.
  const auto c = t::matmul(av, bv);
  t::Tensor dC(t::Shape{7, 9});
  for (std::int64_t i = 0; i < dC.size(); ++i) dC[i] = 2.0 * c[i];
  const auto dA = t::matmul(dC, t::transpose(bv));
  const auto dB = t::matmul(t::transpose(av), dC);
  for (std::int64_t i = 0; i < dA.size(); ++i) ASSERT_EQ(a.grad()[i], dA[i]) << "dA @" << i;
  for (std::int64_t i = 0; i < dB.size(); ++i) ASSERT_EQ(b.grad()[i], dB[i]) << "dB @" << i;
}

TEST(Gemm, MatmulNtOpMatchesTransposeCompositionBitwise) {
  // ag::matmul_nt (the tied-embedding decode) against the op composition
  // it replaced: value AND both gradients, EXPECT_EQ.
  t::Rng rng(17);
  const auto hv = rng.normal_tensor({6, 16});
  const auto ev = rng.normal_tensor({40, 16});
  auto run = [&](bool use_nt) {
    ag::Variable h(hv.clone(), /*requires_grad=*/true);
    ag::Variable e(ev.clone(), /*requires_grad=*/true);
    auto logits = use_nt ? ag::matmul_nt(h, e) : ag::matmul(h, ag::transpose(e));
    auto loss = ag::sum(ag::square(logits));
    loss.backward();
    return std::tuple{logits.value().clone(), h.grad().clone(), e.grad().clone()};
  };
  const auto [val_nt, dh_nt, de_nt] = run(true);
  const auto [val_tr, dh_tr, de_tr] = run(false);
  for (std::int64_t i = 0; i < val_nt.size(); ++i) ASSERT_EQ(val_nt[i], val_tr[i]) << "C @" << i;
  for (std::int64_t i = 0; i < dh_nt.size(); ++i) ASSERT_EQ(dh_nt[i], dh_tr[i]) << "dH @" << i;
  for (std::int64_t i = 0; i < de_nt.size(); ++i) ASSERT_EQ(de_nt[i], de_tr[i]) << "dE @" << i;
}

TEST(Gemm, MatmulNtGradcheck) {
  t::Rng rng(19);
  auto result = ag::gradcheck(
      [](const std::vector<ag::Variable>& in) {
        return ag::sum(ag::square(ag::matmul_nt(in[0], in[1])));
      },
      {ag::Variable(rng.normal_tensor({3, 5}), true),
       ag::Variable(rng.normal_tensor({4, 5}), true)});
  EXPECT_TRUE(result.ok) << result.detail;
}

namespace {

/// Train a tiny tied-weights LM (decode runs through ag::matmul_nt; the
/// LSTM gates and pullbacks run through all three GEMM layouts) and
/// return every parameter after `steps` steps.
std::vector<t::Tensor> lm_trajectory(std::int64_t steps) {
  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 20;
  dcfg.branching = 2;
  yf::data::MarkovText dataset(dcfg);
  t::Rng data_rng(3);
  const std::int64_t batch = 4, seq_plus1 = 7;

  yf::nn::LanguageModelConfig cfg;
  cfg.vocab = 20;
  cfg.embed_dim = 12;
  cfg.hidden = 12;
  cfg.layers = 1;
  cfg.tie_weights = true;
  t::Rng model_rng(1);
  yf::nn::LSTMLanguageModel model(cfg, model_rng);
  yf::optim::MomentumSGD opt(model.parameters(), 0.1, 0.9);
  for (std::int64_t i = 0; i < steps; ++i) {
    opt.zero_grad();
    auto loss = model.loss(dataset.sample_batch(batch, seq_plus1, data_rng), batch, seq_plus1);
    loss.backward();
    opt.step();
  }
  std::vector<t::Tensor> out;
  for (const auto& p : model.parameters()) out.push_back(p.value().clone());
  return out;
}

/// Train a lone conv2d + bias layer (im2col forward NT, dW through TN)
/// and return weight and bias.
std::vector<t::Tensor> conv_trajectory(std::int64_t steps) {
  t::Rng rng(5);
  ag::Variable w(rng.normal_tensor({4, 3, 3, 3}, 0.0, 0.2), /*requires_grad=*/true);
  ag::Variable bias(t::Tensor::zeros({4}), /*requires_grad=*/true);
  const auto x = rng.normal_tensor({2, 3, 8, 8});
  const auto target = rng.normal_tensor({2, 4, 8, 8});
  yf::optim::MomentumSGD opt({w, bias}, 0.05, 0.9);
  for (std::int64_t i = 0; i < steps; ++i) {
    opt.zero_grad();
    auto out = ag::conv2d(ag::Variable(x), w, bias, /*stride=*/1, /*pad=*/1);
    auto loss = ag::mean(ag::square(ag::sub(out, ag::Variable(target))));
    loss.backward();
    opt.step();
  }
  return {w.value().clone(), bias.value().clone()};
}

void expect_tensors_eq(const std::vector<t::Tensor>& x, const std::vector<t::Tensor>& y,
                       const char* what) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t p = 0; p < x.size(); ++p) {
    ASSERT_EQ(x[p].size(), y[p].size());
    for (std::int64_t i = 0; i < x[p].size(); ++i) {
      ASSERT_EQ(x[p][i], y[p][i]) << what << " param " << p << " @" << i;
    }
  }
}

}  // namespace

TEST(Gemm, LmTrainingTrajectoryBackendBitIdentical) {
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const auto scalar = with_backend(core::KernelBackend::kScalar, [] { return lm_trajectory(4); });
  const auto simd = with_backend(core::KernelBackend::kSimd, [] { return lm_trajectory(4); });
  expect_tensors_eq(scalar, simd, "lm");
}

TEST(Gemm, ConvTrainingTrajectoryBackendBitIdentical) {
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  const auto scalar = with_backend(core::KernelBackend::kScalar, [] { return conv_trajectory(4); });
  const auto simd = with_backend(core::KernelBackend::kSimd, [] { return conv_trajectory(4); });
  expect_tensors_eq(scalar, simd, "conv");
}
