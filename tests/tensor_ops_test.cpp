#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace t = yf::tensor;

namespace {
t::Tensor vec(std::vector<double> v) {
  const auto n = static_cast<std::int64_t>(v.size());
  return t::Tensor({n}, std::move(v));
}
}  // namespace

TEST(TensorOps, ElementwiseBinary) {
  auto a = vec({1, 2, 3});
  auto b = vec({4, 5, 6});
  EXPECT_TRUE(t::allclose(t::add(a, b), vec({5, 7, 9})));
  EXPECT_TRUE(t::allclose(t::sub(a, b), vec({-3, -3, -3})));
  EXPECT_TRUE(t::allclose(t::mul(a, b), vec({4, 10, 18})));
  EXPECT_TRUE(t::allclose(t::div(b, a), vec({4, 2.5, 2})));
}

TEST(TensorOps, BinaryShapeMismatchThrows) {
  EXPECT_THROW(t::add(vec({1}), vec({1, 2})), std::invalid_argument);
}

TEST(TensorOps, ScalarBroadcast) {
  auto a = vec({1, 2});
  EXPECT_TRUE(t::allclose(t::add_scalar(a, 1.0), vec({2, 3})));
  EXPECT_TRUE(t::allclose(t::mul_scalar(a, -2.0), vec({-2, -4})));
}

TEST(TensorOps, UnaryMath) {
  auto a = vec({-1, 0, 2});
  EXPECT_TRUE(t::allclose(t::neg(a), vec({1, 0, -2})));
  EXPECT_TRUE(t::allclose(t::abs(a), vec({1, 0, 2})));
  EXPECT_TRUE(t::allclose(t::square(a), vec({1, 0, 4})));
  EXPECT_TRUE(t::allclose(t::relu(a), vec({0, 0, 2})));
  EXPECT_NEAR(t::exp(vec({1}))[0], std::exp(1.0), 1e-12);
  EXPECT_NEAR(t::log(vec({std::exp(2.0)}))[0], 2.0, 1e-12);
  EXPECT_NEAR(t::sqrt(vec({9}))[0], 3.0, 1e-12);
  EXPECT_NEAR(t::tanh(vec({0.5}))[0], std::tanh(0.5), 1e-12);
  EXPECT_NEAR(t::sigmoid(vec({0}))[0], 0.5, 1e-12);
}

TEST(TensorOps, MapApplies) {
  auto out = t::map(vec({1, 2, 3}), [](double x) { return 10 * x; });
  EXPECT_TRUE(t::allclose(out, vec({10, 20, 30})));
}

TEST(TensorOps, Reductions) {
  auto a = vec({1, -2, 3});
  EXPECT_EQ(t::sum(a), 2.0);
  EXPECT_NEAR(t::mean(a), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(t::max(a), 3.0);
  EXPECT_EQ(t::min(a), -2.0);
  EXPECT_NEAR(t::norm(a), std::sqrt(14.0), 1e-12);
  EXPECT_EQ(t::dot(a, vec({1, 1, 1})), 2.0);
}

TEST(TensorOps, ReductionsRejectEmpty) {
  t::Tensor empty({0});
  EXPECT_THROW(t::mean(empty), std::invalid_argument);
  EXPECT_THROW(t::max(empty), std::invalid_argument);
  EXPECT_THROW(t::min(empty), std::invalid_argument);
}

TEST(TensorOps, MatmulKnownValues) {
  t::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  t::Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = t::matmul(a, b);
  EXPECT_EQ(c.shape(), (t::Shape{2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0);
  EXPECT_EQ(c.at({0, 1}), 64.0);
  EXPECT_EQ(c.at({1, 0}), 139.0);
  EXPECT_EQ(c.at({1, 1}), 154.0);
}

TEST(TensorOps, MatmulInnerMismatchThrows) {
  EXPECT_THROW(t::matmul(t::Tensor({2, 3}), t::Tensor({2, 2})), std::invalid_argument);
}

TEST(TensorOps, MatmulRequires2D) {
  EXPECT_THROW(t::matmul(t::Tensor({3}), t::Tensor({3, 2})), std::invalid_argument);
}

TEST(TensorOps, TransposeRoundTrip) {
  t::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  auto at = t::transpose(a);
  EXPECT_EQ(at.shape(), (t::Shape{3, 2}));
  EXPECT_EQ(at.at({0, 1}), 4.0);
  EXPECT_TRUE(t::allclose(t::transpose(at), a));
}

TEST(TensorOps, AddRowBroadcast) {
  t::Tensor a({2, 2}, {1, 2, 3, 4});
  auto out = t::add_row_broadcast(a, vec({10, 20}));
  EXPECT_EQ(out.at({0, 0}), 11.0);
  EXPECT_EQ(out.at({1, 1}), 24.0);
}

TEST(TensorOps, SumRows) {
  t::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(t::allclose(t::sum_rows(a), vec({5, 7, 9})));
}

TEST(TensorOps, MaxAbsDiffAndAllclose) {
  auto a = vec({1.0, 2.0});
  auto b = vec({1.0, 2.0 + 1e-10});
  EXPECT_NEAR(t::max_abs_diff(a, b), 1e-10, 1e-14);
  EXPECT_TRUE(t::allclose(a, b));
  EXPECT_FALSE(t::allclose(a, vec({1.0, 3.0})));
  EXPECT_FALSE(t::allclose(a, vec({1.0})));  // shape mismatch is just false
}
