// Checkpoint durability suite (dist/checkpoint.*, DESIGN.md §14).
//
// Pins three properties of master checkpoint/restore:
//   1. A disk round trip is BITWISE lossless: a fresh server restored
//      from a checkpoint continues the closed-loop YellowFin trajectory
//      EXPECT_EQ-identically to the server that wrote it -- values,
//      shard versions/histories, tuner EWMAs, and optimizer state all
//      survive.
//   2. Reject-and-fall-back: truncated or bit-flipped checkpoint files
//      are detected (checksum/length validation BEFORE any state is
//      touched) and restore falls back to the next older valid file.
//   3. The steady-state write path is allocation-bounded: this binary
//      replaces global operator new/delete with counting versions (the
//      alloc_count_test idiom), and a warm Checkpointer::write performs
//      zero heap allocations.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "async/param_server.hpp"
#include "core/alloc_count.hpp"
#include "dist/checkpoint.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

// ---------------------------------------------------------------------------
// Counting allocator (test-binary-only; see tests/alloc_count_test.cpp).
// ---------------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t size) {
  yf::core::detail::note_alloc();
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  yf::core::detail::note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size ? size : 1) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) {
  if (p == nullptr) return;
  yf::core::detail::note_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

// ---------------------------------------------------------------------------

namespace ag = yf::autograd;
namespace async = yf::async;
namespace dist = yf::dist;
namespace t = yf::tensor;

namespace {

const std::vector<t::Shape> kShapes = {{5, 3}, {8}, {2, 6}, {1}};  // 36 scalars

std::vector<ag::Variable> make_params(std::uint64_t seed) {
  t::Rng rng(seed);
  std::vector<ag::Variable> params;
  for (const auto& s : kShapes) params.emplace_back(rng.normal_tensor(s), true);
  return params;
}

std::vector<double> flat_values(const std::vector<ag::Variable>& params) {
  std::vector<double> out;
  for (const auto& p : params) {
    const auto v = p.value().data();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

struct Rig {
  explicit Rig(std::uint64_t seed = 77) : params(make_params(seed)) {
    yf::tuner::YellowFinOptions yopts;
    yopts.beta = 0.99;
    opt = std::make_shared<yf::tuner::YellowFin>(params, yopts);
    async::ParamServerOptions sopts;
    sopts.shards = 4;
    sopts.closed_loop = true;
    server = std::make_unique<async::ShardedParamServer>(opt, sopts);
  }
  std::vector<ag::Variable> params;
  std::shared_ptr<yf::tuner::YellowFin> opt;
  std::unique_ptr<async::ShardedParamServer> server;
};

/// One deterministic closed-loop round: pull, noisy-quadratic gradient
/// from `rng`, push. The same rng state on two servers with the same
/// internal state must produce bitwise-identical ApplyStats forever.
async::ApplyStats one_step(async::ShardedParamServer& server, t::Rng& rng,
                           std::vector<double>& buf, async::PullTicket& ticket) {
  server.pull(buf, ticket);
  for (auto& v : buf) v = 1.3 * v + 0.01 * rng.normal();
  return server.push(buf, ticket);
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/yf-ckpt-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

std::string checkpoint_name(const std::string& dir, long long index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%020lld.yfck", index);
  return dir + "/" + buf;
}

template <typename F>
std::uint64_t allocations_during(F&& f) {
  const auto before = yf::core::heap_alloc_count();
  f();
  return yf::core::heap_alloc_count() - before;
}

}  // namespace

TEST(PushLedger, StateRoundTripIsLossless) {
  dist::PushLedger a;
  a.next_worker_id = 7;
  a.entries[1] = {12, {.update_index = 40, .applied_momentum = 0.5, .target_momentum = 0.6}};
  a.entries[3] = {99, {.update_index = 44, .applied_momentum = 0.25, .target_momentum = 0.3}};
  a.entries[3].reply.mu_hat_total = 0.125;

  std::vector<std::byte> bytes;
  yf::core::StateWriter w(bytes);
  a.save_state(w);

  dist::PushLedger b;
  yf::core::StateReader r(bytes);
  b.load_state(r);
  r.expect_end();

  EXPECT_EQ(b.next_worker_id, 7u);
  ASSERT_EQ(b.entries.size(), 2u);
  EXPECT_EQ(b.entries[1].last_seq, 12u);
  EXPECT_EQ(b.entries[1].reply.update_index, 40);
  EXPECT_EQ(b.entries[3].last_seq, 99u);
  ASSERT_TRUE(b.entries[3].reply.mu_hat_total.has_value());
  EXPECT_EQ(*b.entries[3].reply.mu_hat_total, 0.125);
  EXPECT_EQ(b.entries[3].reply.applied_momentum, 0.25);
}

// The durability headline: train, checkpoint, restore into a FRESH
// server, keep training both -- every subsequent step is bit-identical.
TEST(Checkpoint, DiskRoundTripContinuesBitIdentically) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());

  Rig a;
  dist::PushLedger ledger_a;
  ledger_a.next_worker_id = 3;
  ledger_a.entries[2] = {17, {.update_index = 9, .applied_momentum = 0.4, .target_momentum = 0.5}};

  t::Rng rng_a(5);
  std::vector<double> buf(static_cast<std::size_t>(a.server->size()));
  async::PullTicket ticket;
  for (int i = 0; i < 10; ++i) one_step(*a.server, rng_a, buf, ticket);

  dist::Checkpointer ckpt(dir);
  ckpt.write(*a.server, ledger_a, a.server->updates());

  Rig b;  // same geometry, freshly initialized -- all state must come off disk
  dist::PushLedger ledger_b;
  const auto restored = dist::restore_latest(dir, *b.server, ledger_b);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, 10);
  EXPECT_EQ(ledger_b.next_worker_id, 3u);
  EXPECT_EQ(ledger_b.entries[2].last_seq, 17u);

  // Immediately identical...
  const auto va = flat_values(a.params);
  const auto vb = flat_values(b.params);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(va[i]), std::bit_cast<std::uint64_t>(vb[i]))
        << "restored values diverge at flat index " << i;
  }

  // ...and identical under continued closed-loop training (the tuner
  // EWMAs, curvature window, and optimizer velocity all restored).
  t::Rng rng_b = rng_a;  // same future gradient noise for both
  std::vector<double> buf_b(buf.size());
  async::PullTicket ticket_b;
  for (int i = 0; i < 10; ++i) {
    const auto sa = one_step(*a.server, rng_a, buf, ticket);
    const auto sb = one_step(*b.server, rng_b, buf_b, ticket_b);
    EXPECT_EQ(sa.update_index, sb.update_index);
    EXPECT_EQ(sa.applied_momentum, sb.applied_momentum);
    EXPECT_EQ(sa.target_momentum, sb.target_momentum);
    EXPECT_EQ(sa.mu_hat_total.has_value(), sb.mu_hat_total.has_value());
    if (sa.mu_hat_total && sb.mu_hat_total) EXPECT_EQ(*sa.mu_hat_total, *sb.mu_hat_total);
  }
  const auto fa = flat_values(a.params);
  const auto fb = flat_values(b.params);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fa[i]), std::bit_cast<std::uint64_t>(fb[i]))
        << "continued values diverge at flat index " << i;
  }

  remove_tree(dir);
}

TEST(Checkpoint, TruncatedOrCorruptedFilesFallBackToOlderValid) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());

  Rig a;
  dist::PushLedger ledger;
  t::Rng rng(5);
  std::vector<double> buf(static_cast<std::size_t>(a.server->size()));
  async::PullTicket ticket;
  dist::Checkpointer ckpt(dir, /*keep=*/4);

  for (int i = 0; i < 5; ++i) one_step(*a.server, rng, buf, ticket);
  ckpt.write(*a.server, ledger, 5);
  for (int i = 0; i < 5; ++i) one_step(*a.server, rng, buf, ticket);
  ckpt.write(*a.server, ledger, 10);
  for (int i = 0; i < 5; ++i) one_step(*a.server, rng, buf, ticket);
  ckpt.write(*a.server, ledger, 15);

  // Newest (15): bit-flip one payload byte -> checksum mismatch.
  {
    const std::string path = checkpoint_name(dir, 15);
    const int fd = ::open(path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    char byte = 0;
    ASSERT_EQ(::pread(fd, &byte, 1, 64), 1);
    byte = static_cast<char>(byte ^ 0x20);
    ASSERT_EQ(::pwrite(fd, &byte, 1, 64), 1);
    ::close(fd);
  }
  // Next (10): truncate mid-payload -> payload length mismatch.
  ASSERT_EQ(::truncate(checkpoint_name(dir, 10).c_str(), 40), 0);

  EXPECT_THROW(dist::load_checkpoint(checkpoint_name(dir, 15), *a.server, ledger),
               dist::CheckpointError);
  EXPECT_THROW(dist::load_checkpoint(checkpoint_name(dir, 10), *a.server, ledger),
               dist::CheckpointError);

  // restore_latest skips both invalid candidates and lands on 5.
  Rig b;
  dist::PushLedger ledger_b;
  const auto restored = dist::restore_latest(dir, *b.server, ledger_b);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, 5);

  remove_tree(dir);
}

TEST(Checkpoint, RestoreLatestIgnoresTmpLeftoversAndGarbageNames) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());

  Rig a;
  dist::PushLedger ledger;
  dist::Checkpointer ckpt(dir);
  ckpt.write(*a.server, ledger, 3);

  // A crash mid-write leaves a stale .tmp; unrelated files share the dir.
  for (const char* name : {"ckpt-00000000000000000009.yfck.tmp", "ckpt-junk.yfck", "notes.txt"}) {
    const std::string path = dir + "/" + name;
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, "junk", 4), 4);
    ::close(fd);
  }

  Rig b;
  dist::PushLedger ledger_b;
  const auto restored = dist::restore_latest(dir, *b.server, ledger_b);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, 3);

  // An empty dir (or one with only garbage) restores nothing.
  const std::string empty = make_temp_dir();
  EXPECT_FALSE(dist::restore_latest(empty, *b.server, ledger_b).has_value());
  remove_tree(empty);
  remove_tree(dir);
}

TEST(Checkpoint, PruneKeepsOnlyTheNewestN) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());

  Rig a;
  dist::PushLedger ledger;
  dist::Checkpointer ckpt(dir, /*keep=*/2);
  for (long long idx : {2, 4, 6, 8}) ckpt.write(*a.server, ledger, idx);
  EXPECT_EQ(ckpt.written(), 4);

  EXPECT_NE(::access(checkpoint_name(dir, 8).c_str(), F_OK), -1);
  EXPECT_NE(::access(checkpoint_name(dir, 6).c_str(), F_OK), -1);
  EXPECT_EQ(::access(checkpoint_name(dir, 4).c_str(), F_OK), -1);
  EXPECT_EQ(::access(checkpoint_name(dir, 2).c_str(), F_OK), -1);

  remove_tree(dir);
}

TEST(Checkpoint, RejectsMissingDirAndBadKeep) {
  EXPECT_THROW(dist::Checkpointer("/nonexistent/yf-ckpt-dir"), dist::CheckpointError);
  const std::string dir = make_temp_dir();
  EXPECT_THROW(dist::Checkpointer(dir, 0), dist::CheckpointError);
  remove_tree(dir);
}

// The steady-state write path allocates NOTHING: serialization reuses
// warm buffers, paths live on the stack, and the I/O is raw POSIX. (The
// readdir-based prune may malloc inside libc -- malloc is deliberately
// not counted; the pin is on operator new, the lever C++ code actually
// pulls.)
TEST(Checkpoint, SteadyStateWriteIsAllocationFree) {
  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());

  Rig a;
  dist::PushLedger ledger;
  ledger.entries[1] = {4, {.update_index = 2, .applied_momentum = 0.5, .target_momentum = 0.5}};
  t::Rng rng(5);
  std::vector<double> buf(static_cast<std::size_t>(a.server->size()));
  async::PullTicket ticket;
  for (int i = 0; i < 4; ++i) one_step(*a.server, rng, buf, ticket);

  dist::Checkpointer ckpt(dir);
  long long index = 100;
  // Warm-up: the first writes size the payload/file buffers, and the
  // third sees the steady-state directory population (keep + 1 files)
  // that sizes the prune scratch.
  ckpt.write(*a.server, ledger, index++);
  ckpt.write(*a.server, ledger, index++);
  ckpt.write(*a.server, ledger, index++);

  const auto allocs = allocations_during([&] {
    for (int i = 0; i < 3; ++i) ckpt.write(*a.server, ledger, index++);
  });
  EXPECT_EQ(allocs, 0u);

  remove_tree(dir);
}
