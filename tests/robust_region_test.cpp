#include "sim/robust_region.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sim = yf::sim;

TEST(RobustRegion, BoundaryInclusive) {
  const double mu = 0.25;  // sqrt(mu) = 0.5
  EXPECT_TRUE(sim::in_robust_region(0.25, mu, 1.0));   // (1-0.5)^2 = 0.25
  EXPECT_TRUE(sim::in_robust_region(2.25, mu, 1.0));   // (1+0.5)^2 = 2.25
  EXPECT_FALSE(sim::in_robust_region(0.2499, mu, 1.0));
  EXPECT_FALSE(sim::in_robust_region(2.2501, mu, 1.0));
}

TEST(RobustRegion, NegativeMomentumRejected) {
  EXPECT_FALSE(sim::in_robust_region(1.0, -0.1, 1.0));
}

TEST(RobustRegion, IntervalMatchesPredicate) {
  for (double mu : {0.0, 0.1, 0.5, 0.9}) {
    for (double h : {0.5, 1.0, 4.0}) {
      const auto [lo, hi] = sim::robust_lr_interval(mu, h);
      EXPECT_TRUE(sim::in_robust_region(lo, mu, h));
      EXPECT_TRUE(sim::in_robust_region(hi, mu, h));
      const double mid = 0.5 * (lo + hi);
      EXPECT_TRUE(sim::in_robust_region(mid, mu, h));
    }
  }
}

TEST(RobustRegion, IntervalWidensWithMomentum) {
  // Fig. 2's key message: higher momentum tolerates a wider lr range.
  double prev_width = -1.0;
  for (double mu : {0.0, 0.1, 0.3, 0.5, 0.9}) {
    const auto [lo, hi] = sim::robust_lr_interval(mu, 1.0);
    const double width = hi - lo;
    EXPECT_GT(width, prev_width);
    prev_width = width;
  }
}

TEST(RobustRegion, IntervalRejectsNonPositiveCurvature) {
  EXPECT_THROW(sim::robust_lr_interval(0.5, 0.0), std::invalid_argument);
}

TEST(OptimalMomentum, MatchesEq2) {
  // kappa = 1 -> 0; closed form for a few values.
  EXPECT_NEAR(sim::optimal_momentum(1.0), 0.0, 1e-12);
  const double k = 9.0;  // sqrt = 3 -> ((3-1)/(3+1))^2 = 0.25
  EXPECT_NEAR(sim::optimal_momentum(k), 0.25, 1e-12);
  EXPECT_THROW(sim::optimal_momentum(0.5), std::invalid_argument);
}

TEST(OptimalMomentum, IncreasesWithConditioning) {
  double prev = -1.0;
  for (double k : {1.0, 2.0, 10.0, 100.0, 1000.0}) {
    const double mu = sim::optimal_momentum(k);
    EXPECT_GT(mu, prev);
    prev = mu;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(TuneNoiseless, CoversWholeCurvatureRange) {
  // Eq. 9: the tuned (mu, alpha) must place every h in [hmin, hmax] inside
  // the robust region -- the heart of the tuning rule.
  for (double ratio : {1.0, 10.0, 1000.0}) {
    const double hmin = 0.3, hmax = hmin * ratio;
    const auto t = sim::tune_noiseless(hmin, hmax);
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const double h = hmin + f * (hmax - hmin);
      EXPECT_TRUE(sim::in_robust_region(t.alpha, t.mu, h))
          << "ratio=" << ratio << " h=" << h;
    }
  }
}

TEST(TuneNoiseless, MuIsMinimalForCoverage) {
  // Slightly smaller momentum must break coverage at one of the extremes.
  const double hmin = 1.0, hmax = 100.0;
  const auto t = sim::tune_noiseless(hmin, hmax);
  const double mu_small = t.mu * 0.95;
  const double s = 1.0 - std::sqrt(mu_small);
  const double alpha_small = s * s / hmin;  // keep lower constraint tight
  EXPECT_FALSE(sim::in_robust_region(alpha_small, mu_small, hmax));
}

TEST(TuneNoiseless, RejectsBadRange) {
  EXPECT_THROW(sim::tune_noiseless(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sim::tune_noiseless(2.0, 1.0), std::invalid_argument);
}
