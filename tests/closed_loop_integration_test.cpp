// End-to-end closed-loop tests: Algorithm 5 running inside the async
// simulator on a quadratic bowl, validating the full chain
// measure -> estimate -> feedback -> applied momentum.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "async/async_simulator.hpp"
#include "optim/momentum_sgd.hpp"
#include "tuner/yellowfin.hpp"
#include "tensor/random.hpp"

namespace async = yf::async;
namespace ag = yf::autograd;
namespace t = yf::tensor;

namespace {

struct BowlTask {
  ag::Variable x;
  double h;
  double noise;
  t::Rng rng{71};
  BowlTask(std::int64_t dim, double curvature, double noise_std, double x0)
      : x(t::Tensor({dim}), true), h(curvature), noise(noise_std) {
    x.value().fill(x0);
  }
  double grad() {
    auto& g = x.node()->ensure_grad();
    double loss = 0.0;
    for (std::int64_t j = 0; j < g.size(); ++j) {
      loss += 0.5 * h * x.value()[j] * x.value()[j];
      g[j] = h * x.value()[j] + noise * rng.normal();
    }
    return loss;
  }
};

}  // namespace

TEST(ClosedLoopIntegration, AppliedMomentumDropsBelowTargetUnderStaleness) {
  BowlTask task(40, 1.0, 0.05, 3.0);
  auto opt = std::make_shared<yf::tuner::YellowFin>(std::vector<ag::Variable>{task.x});
  async::AsyncTrainerOptions opts;
  opts.staleness = 10;
  opts.closed_loop = true;
  opts.gamma = 0.02;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  double applied = 0.0, target = 0.0;
  for (int i = 0; i < 600; ++i) {
    const auto s = trainer.step();
    applied = s.applied_momentum;
    target = s.target_momentum;
  }
  // The controller must have pulled applied momentum below the tuner's
  // target to cancel asynchrony-induced momentum.
  EXPECT_LT(applied, target);
}

TEST(ClosedLoopIntegration, ClosedLoopTracksTargetBetterThanOpenLoop) {
  auto run = [](bool closed) {
    BowlTask task(40, 1.0, 0.05, 3.0);
    auto opt = std::make_shared<yf::tuner::YellowFin>(std::vector<ag::Variable>{task.x});
    async::AsyncTrainerOptions opts;
    opts.staleness = 10;
    opts.closed_loop = closed;
    async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
    double gap_sum = 0.0;
    int n = 0;
    for (int i = 0; i < 600; ++i) {
      const auto s = trainer.step();
      if (s.mu_hat_total && i > 300) {
        gap_sum += *s.mu_hat_total - s.target_momentum;
        ++n;
      }
    }
    return gap_sum / std::max(n, 1);
  };
  const double open_gap = run(false);
  const double closed_gap = run(true);
  EXPECT_GT(open_gap, 0.02);  // asynchrony-induced excess is visible
  EXPECT_LT(std::abs(closed_gap), std::abs(open_gap));
}

TEST(ClosedLoopIntegration, StillConvergesWithFeedback) {
  BowlTask task(20, 1.0, 0.02, 3.0);
  auto opt = std::make_shared<yf::tuner::YellowFin>(std::vector<ag::Variable>{task.x});
  async::AsyncTrainerOptions opts;
  opts.staleness = 7;
  opts.closed_loop = true;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  double last_loss = 0.0;
  for (int i = 0; i < 1500; ++i) last_loss = trainer.step().loss;
  EXPECT_LT(last_loss, 1.0);  // from 90 at x0 = 3
}

TEST(ClosedLoopIntegration, TracksTargetAndAppliedGoesNegativeAtHighWorkerCount) {
  // Fig. 4 right pane as a regression test: 16 round-robin workers
  // (staleness 15) and a small total-momentum target. The asynchrony-
  // induced momentum alone exceeds the target, so the controller must
  // push the applied algorithmic momentum below zero while the measured
  // total momentum tracks mu_target within tolerance.
  const double mu_target = 0.05;
  BowlTask task(40, 1.0, 0.05, 3.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{task.x},
                                                      0.05, mu_target);
  async::AsyncTrainerOptions opts;
  opts.staleness = 15;
  opts.closed_loop = true;
  opts.mu_target = mu_target;
  opts.gamma = 0.02;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);

  double smoothed = 0.0;
  bool init = false;
  double gap_sum = 0.0, applied_sum = 0.0;
  int n = 0;
  const int iters = 1200;
  for (int i = 0; i < iters; ++i) {
    const auto s = trainer.step();
    if (s.mu_hat_total) {
      smoothed = init ? 0.95 * smoothed + 0.05 * (*s.mu_hat_total) : *s.mu_hat_total;
      init = true;
    }
    if (i >= 2 * iters / 3 && init) {
      gap_sum += smoothed - mu_target;
      applied_sum += s.applied_momentum;
      ++n;
    }
  }
  ASSERT_GT(n, 300);
  // Measured total momentum tracks the target...
  EXPECT_LT(std::abs(gap_sum / n), 0.04);
  // ...which required negative algorithmic momentum (Fig. 4, right pane).
  EXPECT_LT(applied_sum / n, 0.0);
}

TEST(ClosedLoopIntegration, ClosedLoopSupportsMomentumSGDWithExplicitTarget) {
  // The MomentumSGD + mu_target contract matches the parameter server's;
  // MomentumSGD without a target still throws.
  BowlTask task(4, 1.0, 0.0, 1.0);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{task.x},
                                                      0.01, 0.2);
  async::AsyncTrainerOptions opts;
  opts.closed_loop = true;
  EXPECT_THROW(async::AsyncTrainer(opt, [&] { return task.grad(); }, opts),
               std::invalid_argument);
  opts.mu_target = 0.2;
  EXPECT_NO_THROW(async::AsyncTrainer(opt, [&] { return task.grad(); }, opts));
}

TEST(ClosedLoopIntegration, ExplicitTargetOverridesTunerTarget) {
  // mu_target, when set, is THE target even for a YellowFin — on both
  // engines, via the shared tuner::MomentumControl contract.
  BowlTask task(8, 1.0, 0.01, 2.0);
  auto opt = std::make_shared<yf::tuner::YellowFin>(std::vector<ag::Variable>{task.x});
  async::AsyncTrainerOptions opts;
  opts.staleness = 3;
  opts.closed_loop = true;
  opts.mu_target = 0.12;
  async::AsyncTrainer trainer(opt, [&] { return task.grad(); }, opts);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(trainer.step().target_momentum, 0.12);
}

TEST(YellowFinOptions, SlowStartItersOverridesWindowRule) {
  // With a 4-step warm-up, the discount is gone after ~4 steps, unlike the
  // default 10*window = 200 steps.
  ag::Variable x(t::Tensor({1}), true);
  x.value()[0] = 5.0;
  yf::tuner::YellowFinOptions fast, slow;
  fast.slow_start_iters = 4;
  slow.slow_start_iters = 400;
  ag::Variable y(t::Tensor({1}), true);
  y.value()[0] = 5.0;
  yf::tuner::YellowFin opt_fast({x}, fast), opt_slow({y}, slow);
  for (int i = 0; i < 10; ++i) {
    x.zero_grad();
    x.node()->ensure_grad()[0] = x.value()[0];
    opt_fast.step();
    y.zero_grad();
    y.node()->ensure_grad()[0] = y.value()[0];
    opt_slow.step();
  }
  EXPECT_GT(std::abs(x.value()[0] - 5.0), std::abs(y.value()[0] - 5.0));
}
