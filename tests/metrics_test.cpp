#include "train/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "train/grid_search.hpp"

namespace train = yf::train;

TEST(Smoothing, TrailingWindowMean) {
  const std::vector<double> c = {1, 2, 3, 4};
  const auto s = train::smooth_uniform(c, 2);
  EXPECT_NEAR(s[0], 1.0, 1e-12);
  EXPECT_NEAR(s[1], 1.5, 1e-12);
  EXPECT_NEAR(s[2], 2.5, 1e-12);
  EXPECT_NEAR(s[3], 3.5, 1e-12);
}

TEST(Smoothing, WindowOneIsIdentity) {
  const std::vector<double> c = {3, 1, 4};
  EXPECT_EQ(train::smooth_uniform(c, 1), c);
}

TEST(Smoothing, RejectsBadWindow) {
  EXPECT_THROW(train::smooth_uniform({1.0}, 0), std::invalid_argument);
}

TEST(RunningExtremes, MinAndMax) {
  const std::vector<double> c = {3, 1, 2, 0.5, 4};
  const auto mn = train::running_min(c);
  const auto mx = train::running_max(c);
  EXPECT_EQ(mn.back(), 0.5);
  EXPECT_EQ(mn[2], 1.0);
  EXPECT_EQ(mx.back(), 4.0);
  EXPECT_EQ(mx[1], 3.0);
}

TEST(IterationsToReach, FirstCrossing) {
  const std::vector<double> c = {5, 4, 3, 2, 3};
  EXPECT_EQ(train::iterations_to_reach(c, 3.0).value(), 2);
  EXPECT_EQ(train::iterations_to_reach(c, 5.0).value(), 0);
  EXPECT_FALSE(train::iterations_to_reach(c, 1.0).has_value());
}

TEST(Speedup, PaperProtocolExample) {
  // Baseline reaches 1.0 at iter 8; other at iter 4 -> 2x speedup.
  std::vector<double> baseline, other;
  for (int i = 0; i < 10; ++i) {
    baseline.push_back(9.0 - i);
    other.push_back(9.0 - 2 * i);
  }
  const auto s = train::speedup_over(baseline, other);
  EXPECT_NEAR(s.common_loss, 0.0, 1e-12);  // min(baseline) = 0 > min(other) = -9
  EXPECT_EQ(s.baseline_iters, 9);
  EXPECT_EQ(s.other_iters, 5);
  EXPECT_NEAR(s.ratio, 9.0 / 5.0, 1e-12);
}

TEST(Speedup, SlowerMethodHasRatioBelowOne) {
  std::vector<double> fast, slow;
  for (int i = 0; i < 20; ++i) {
    fast.push_back(10.0 / (i + 1));
    slow.push_back(20.0 / (i + 1));
  }
  const auto s = train::speedup_over(fast, slow);
  EXPECT_LT(s.ratio, 1.0);
}

TEST(Speedup, CommonLossIsMaxOfMins) {
  const std::vector<double> a = {5, 3, 2};     // min 2
  const std::vector<double> b = {6, 4, 3.5};   // min 3.5
  const auto s = train::speedup_over(a, b);
  EXPECT_EQ(s.common_loss, 3.5);
}

TEST(AverageCurves, ElementwiseMean) {
  const auto avg = train::average_curves({{1, 2}, {3, 4}});
  EXPECT_EQ(avg[0], 2.0);
  EXPECT_EQ(avg[1], 3.0);
  EXPECT_THROW(train::average_curves({{1}, {1, 2}}), std::invalid_argument);
  EXPECT_THROW(train::average_curves({}), std::invalid_argument);
}

TEST(NormalizedStd, KnownValues) {
  // {9, 11}: mean 10, sample std sqrt(2) -> ~0.1414.
  EXPECT_NEAR(train::normalized_std({9.0, 11.0}), std::sqrt(2.0) / 10.0, 1e-12);
  EXPECT_THROW(train::normalized_std({1.0}), std::invalid_argument);
}

TEST(GridSearch, PicksLowestLossHyper) {
  // Quadratic response: best hyper at 0.3.
  auto run = [](double hyper, std::uint64_t) {
    std::vector<double> curve;
    for (int i = 0; i < 50; ++i) {
      curve.push_back(1.0 + (hyper - 0.3) * (hyper - 0.3) + 1.0 / (i + 1));
    }
    return curve;
  };
  train::GridSearchOptions opts;
  opts.grid = {0.1, 0.2, 0.3, 0.4};
  opts.smooth_window = 5;
  const auto r = train::grid_search(run, opts);
  EXPECT_EQ(r.best_hyper, 0.3);
  EXPECT_EQ(r.scores.size(), 4u);
}

TEST(GridSearch, AveragesAcrossSeeds) {
  // Seed parity flips which hyper looks better; averaging must balance it.
  auto run = [](double hyper, std::uint64_t seed) {
    const double bias = (seed % 2 == 0) ? 0.5 : -0.5;
    return std::vector<double>(10, hyper + bias);
  };
  train::GridSearchOptions opts;
  opts.grid = {1.0, 2.0};
  opts.seeds = {0, 1};
  opts.smooth_window = 2;
  const auto r = train::grid_search(run, opts);
  EXPECT_EQ(r.best_hyper, 1.0);
  EXPECT_NEAR(r.best_loss, 1.0, 1e-12);
}

TEST(GridSearch, RejectsEmptyInputs) {
  train::GridSearchOptions opts;
  EXPECT_THROW(train::grid_search([](double, std::uint64_t) { return std::vector<double>{1.0}; },
                                  opts),
               std::invalid_argument);
}
