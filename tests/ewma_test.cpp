#include "tuner/ewma.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tuner = yf::tuner;
namespace t = yf::tensor;

TEST(Ewma, FirstUpdateIsUnbiased) {
  // Without debias the first value would be (1-beta)*x; with debias it is x.
  tuner::Ewma e(0.999);
  EXPECT_NEAR(e.update(5.0), 5.0, 1e-12);
}

TEST(Ewma, ValueBeforeAnyUpdateIsZero) {
  tuner::Ewma e(0.9);
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_EQ(e.count(), 0);
}

TEST(Ewma, ConstantInputIsFixedPoint) {
  tuner::Ewma e(0.9);
  for (int i = 0; i < 50; ++i) e.update(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-12);
}

TEST(Ewma, MatchesManualDebiasedRecurrence) {
  const double beta = 0.8;
  tuner::Ewma e(beta);
  double raw = 0.0;
  const double xs[4] = {1.0, -2.0, 0.5, 4.0};
  for (int i = 0; i < 4; ++i) {
    e.update(xs[i]);
    raw = beta * raw + (1 - beta) * xs[i];
    EXPECT_NEAR(e.value(), raw / (1 - std::pow(beta, i + 1)), 1e-12);
  }
}

TEST(Ewma, ResetClearsState) {
  tuner::Ewma e(0.9);
  e.update(10.0);
  e.reset();
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_NEAR(e.update(2.0), 2.0, 1e-12);
}

TEST(Ewma, TracksSlowDrift) {
  tuner::Ewma e(0.9);
  for (int i = 0; i < 300; ++i) e.update(static_cast<double>(i));
  // EWMA with beta=0.9 lags the ramp by beta/(1-beta) = 9.
  EXPECT_NEAR(e.value(), 299.0 - 9.0, 0.5);
}

TEST(TensorEwma, ThrowsBeforeFirstUpdate) {
  tuner::TensorEwma e(0.9);
  EXPECT_FALSE(e.initialized());
  EXPECT_THROW(e.value(), std::logic_error);
}

TEST(TensorEwma, FirstUpdateIsUnbiasedElementwise) {
  tuner::TensorEwma e(0.999);
  e.update(t::Tensor({2}, {1.0, -4.0}));
  auto v = e.value();
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], -4.0, 1e-12);
}

TEST(TensorEwma, ShapeMismatchThrows) {
  tuner::TensorEwma e(0.9);
  e.update(t::Tensor({2}));
  EXPECT_THROW(e.update(t::Tensor({3})), std::invalid_argument);
}

TEST(TensorEwma, ConstantFixedPoint) {
  tuner::TensorEwma e(0.7);
  for (int i = 0; i < 60; ++i) e.update(t::Tensor({2}, {2.0, -1.0}));
  auto v = e.value();
  EXPECT_NEAR(v[0], 2.0, 1e-9);
  EXPECT_NEAR(v[1], -1.0, 1e-9);
}
