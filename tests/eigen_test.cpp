#include "sim/eigen_small.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sim = yf::sim;

TEST(SmallMatrix, IdentityAndZero) {
  auto I = sim::SmallMatrix::identity(3);
  EXPECT_EQ(I(0, 0), 1.0);
  EXPECT_EQ(I(0, 1), 0.0);
  auto Z = sim::SmallMatrix::zero(2);
  EXPECT_EQ(Z(1, 1), 0.0);
}

TEST(SmallMatrix, MatmulKnown) {
  auto a = sim::SmallMatrix::zero(2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  auto b = sim::SmallMatrix::identity(2);
  auto c = sim::matmul(a, b);
  EXPECT_EQ(c(0, 1), 2.0);
  EXPECT_EQ(c(1, 0), 3.0);
}

TEST(SmallMatrix, MatpowAgreesWithRepeatedMultiply) {
  auto a = sim::SmallMatrix::zero(2);
  a(0, 0) = 0.9;
  a(0, 1) = -0.5;
  a(1, 0) = 1.0;
  auto direct = sim::SmallMatrix::identity(2);
  for (int i = 0; i < 7; ++i) direct = sim::matmul(direct, a);
  auto fast = sim::matpow(a, 7);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(fast.a[i], direct.a[i], 1e-12);
}

TEST(SmallMatrix, MatpowZeroIsIdentity) {
  auto a = sim::SmallMatrix::zero(3);
  auto p = sim::matpow(a, 0);
  EXPECT_EQ(p(1, 1), 1.0);
  EXPECT_EQ(p(0, 1), 0.0);
}

TEST(SmallMatrix, SolveKnownSystem) {
  auto a = sim::SmallMatrix::zero(2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto z = sim::solve(a, {5, 10});
  EXPECT_NEAR(2 * z[0] + z[1], 5.0, 1e-12);
  EXPECT_NEAR(z[0] + 3 * z[1], 10.0, 1e-12);
}

TEST(SmallMatrix, SolveSingularThrows) {
  auto a = sim::SmallMatrix::zero(2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(sim::solve(a, {1, 1}), std::runtime_error);
}

TEST(Roots, QuadraticRealRoots) {
  // x^2 - 3x + 2 = 0 -> {1, 2}.
  const auto r = sim::quadratic_roots(-3.0, 2.0);
  const double lo = std::min(r[0].real(), r[1].real());
  const double hi = std::max(r[0].real(), r[1].real());
  EXPECT_NEAR(lo, 1.0, 1e-12);
  EXPECT_NEAR(hi, 2.0, 1e-12);
}

TEST(Roots, QuadraticComplexRoots) {
  // x^2 + 1 = 0 -> +-i.
  const auto r = sim::quadratic_roots(0.0, 1.0);
  EXPECT_NEAR(std::abs(r[0]), 1.0, 1e-12);
  EXPECT_NEAR(r[0].real(), 0.0, 1e-12);
}

TEST(Roots, CubicKnownRealRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  const auto roots = sim::cubic_roots(-6.0, 11.0, -6.0);
  double sum = 0.0, prod = 1.0;
  for (const auto& z : roots) {
    EXPECT_NEAR(z.imag(), 0.0, 1e-8);
    sum += z.real();
    prod *= z.real();
  }
  EXPECT_NEAR(sum, 6.0, 1e-8);
  EXPECT_NEAR(prod, 6.0, 1e-7);
}

TEST(Roots, CubicResidualsSmallAcrossSweep) {
  for (double a2 : {-2.0, 0.0, 3.0}) {
    for (double a1 : {-5.0, 0.5, 4.0}) {
      for (double a0 : {-1.0, 0.0, 2.0}) {
        const auto roots = sim::cubic_roots(a2, a1, a0);
        for (const auto& z : roots) {
          const auto resid = z * z * z + a2 * z * z + a1 * z + a0;
          EXPECT_LT(std::abs(resid), 1e-7)
              << "a2=" << a2 << " a1=" << a1 << " a0=" << a0;
        }
      }
    }
  }
}

TEST(SpectralRadius, DiagonalMatrix) {
  auto m = sim::SmallMatrix::zero(3);
  m(0, 0) = -0.5;
  m(1, 1) = 0.25;
  m(2, 2) = 0.1;
  EXPECT_NEAR(sim::spectral_radius(m), 0.5, 1e-12);
}

TEST(SpectralRadius, RotationHasUnitRadius) {
  auto m = sim::SmallMatrix::zero(2);
  m(0, 0) = std::cos(0.7);
  m(0, 1) = -std::sin(0.7);
  m(1, 0) = std::sin(0.7);
  m(1, 1) = std::cos(0.7);
  EXPECT_NEAR(sim::spectral_radius(m), 1.0, 1e-12);
}

TEST(SpectralRadius, PowerIterationAgreesWithClosedForm2x2) {
  auto m = sim::SmallMatrix::zero(2);
  m(0, 0) = 0.8;
  m(0, 1) = -0.3;
  m(1, 0) = 1.0;
  const double exact = sim::spectral_radius(m);
  const double power = sim::spectral_radius_power_iteration(m, 4000);
  EXPECT_NEAR(power, exact, 1e-3);
}

TEST(SpectralRadius, PowerIterationAgreesWithClosedForm3x3) {
  auto m = sim::SmallMatrix::zero(3);
  m(0, 0) = 0.5;
  m(0, 1) = 0.2;
  m(0, 2) = -0.1;
  m(1, 0) = 1.0;
  m(2, 0) = 0.3;
  m(2, 2) = -0.4;
  const double exact = sim::spectral_radius(m);
  const double power = sim::spectral_radius_power_iteration(m, 4000);
  EXPECT_NEAR(power, exact, 1e-3);
}
