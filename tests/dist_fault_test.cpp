// Fault-injection suite (dist/fault.*, DESIGN.md §14): the plan grammar,
// the deterministic injector, FaultyStream's four fault kinds over
// in-memory streams, socket deadlines, and the headline robustness pins
// -- a one-worker closed-loop YellowFin run over a faulty socket (drops,
// truncations, corruption, delays, plus a master kill + checkpoint
// restore mid-run) is EXPECT_EQ-bit-identical to the fault-free
// in-process trajectory, because retries are transparent and the push
// ledger collapses every replay.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "async/param_server.hpp"
#include "dist/channel.hpp"
#include "dist/client.hpp"
#include "dist/fault.hpp"
#include "dist/master.hpp"
#include "dist/socket.hpp"
#include "dist/wire.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace async = yf::async;
namespace dist = yf::dist;
namespace t = yf::tensor;

namespace {

constexpr const char* kHost = "127.0.0.1";

// ---------------------------------------------------------------------------
// Plan grammar.
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan =
      dist::FaultPlan::parse("seed=42, drop=0.1, trunc=0.05, corrupt=0.02, delay=0.2:7, "
                             "drop@3, delay@9:11, trunc@12, corrupt@15");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.drop, 0.1);
  EXPECT_EQ(plan.truncate, 0.05);
  EXPECT_EQ(plan.corrupt, 0.02);
  EXPECT_EQ(plan.delay, 0.2);
  EXPECT_EQ(plan.delay_ms, 7);
  ASSERT_EQ(plan.directives.size(), 4u);
  EXPECT_EQ(plan.directives[0].frame, 3u);
  EXPECT_EQ(plan.directives[0].kind, dist::FaultKind::kDrop);
  EXPECT_EQ(plan.directives[1].frame, 9u);
  EXPECT_EQ(plan.directives[1].kind, dist::FaultKind::kDelay);
  EXPECT_EQ(plan.directives[1].delay_ms, 11);
  EXPECT_EQ(plan.directives[2].kind, dist::FaultKind::kTruncate);
  EXPECT_EQ(plan.directives[3].kind, dist::FaultKind::kCorrupt);
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(dist::FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("drop=0.6,delay=0.6"), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("warp=0.1"), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("explode@3"), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("drop@x"), std::invalid_argument);
  EXPECT_THROW(dist::FaultPlan::parse("seed"), std::invalid_argument);
}

TEST(FaultPlan, FromEnvFollowsTheKnobContract) {
  const char* saved = ::getenv("YF_FAULT_PLAN");
  const std::string saved_copy = saved ? saved : "";

  ::unsetenv("YF_FAULT_PLAN");
  EXPECT_FALSE(dist::FaultPlan::from_env().active());
  ::setenv("YF_FAULT_PLAN", "seed=7,drop=0.25", 1);
  const auto plan = dist::FaultPlan::from_env();
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(plan.seed, 7u);
  // Malformed: one stderr warning, then inactive -- never a throw.
  ::setenv("YF_FAULT_PLAN", "drop=banana", 1);
  EXPECT_FALSE(dist::FaultPlan::from_env().active());

  if (saved) {
    ::setenv("YF_FAULT_PLAN", saved_copy.c_str(), 1);
  } else {
    ::unsetenv("YF_FAULT_PLAN");
  }
}

// ---------------------------------------------------------------------------
// Injector determinism.
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameSchedule) {
  const auto plan = dist::FaultPlan::parse("seed=99,drop=0.3,corrupt=0.2,delay=0.1:4");
  dist::FaultInjector a(plan);
  dist::FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    EXPECT_EQ(da.kind, db.kind) << "frame " << i;
    EXPECT_EQ(da.rand, db.rand) << "frame " << i;
  }
  EXPECT_EQ(a.faults_fired(), b.faults_fired());
  EXPECT_GT(a.faults_fired(), 0u);
  EXPECT_EQ(a.frames_seen(), 200u);
}

TEST(FaultInjector, DirectivesFireExactlyAndDoNotShiftLaterDraws) {
  const auto base = dist::FaultPlan::parse("seed=5,drop=0.5");
  const auto with_dir = dist::FaultPlan::parse("seed=5,drop=0.5,trunc@3");
  dist::FaultInjector a(base);
  dist::FaultInjector b(with_dir);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto da = a.next();
    const auto db = b.next();
    if (i == 3) {
      EXPECT_EQ(db.kind, dist::FaultKind::kTruncate);
    } else {
      // A directive consumes the same one-per-frame draw, so every other
      // frame's decision is unchanged -- plans compose.
      EXPECT_EQ(da.kind, db.kind) << "frame " << i;
    }
  }
}

TEST(FaultInjector, InactivePlanIsInert) {
  dist::FaultInjector inert(dist::FaultPlan{});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(inert.next().kind, dist::FaultKind::kNone);
  EXPECT_EQ(inert.faults_fired(), 0u);
}

// ---------------------------------------------------------------------------
// FaultyStream semantics over in-memory streams.
// ---------------------------------------------------------------------------

class MemSource final : public dist::ByteSource {
 public:
  explicit MemSource(std::vector<std::byte> data) : data_(std::move(data)) {}
  std::size_t read_some(std::span<std::byte> dst) override {
    const std::size_t n = std::min(dst.size(), data_.size() - pos_);
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), n, dst.begin());
    pos_ += n;
    return n;
  }

 private:
  std::vector<std::byte> data_;
  std::size_t pos_ = 0;
};

class MemSink final : public dist::ByteSink {
 public:
  void write_all(std::span<const std::byte> data) override {
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  std::vector<std::byte> bytes;
};

std::vector<std::byte> some_frame() {
  std::vector<std::byte> payload;
  dist::PayloadWriter out(payload);
  out.u64(0xdeadbeef);
  out.f64(3.25);
  std::vector<std::byte> frame;
  dist::encode_frame(frame, dist::Op::kPush, payload);
  return frame;
}

struct FaultyFixture {
  explicit FaultyFixture(const std::string& plan)
      : injector(dist::FaultPlan::parse(plan)), src(std::vector<std::byte>{}),
        stream(src, sink, injector) {}
  dist::FaultInjector injector;
  MemSource src;
  MemSink sink;
  dist::FaultyStream stream;
};

TEST(FaultyStream, DropSwallowsTheFrame) {
  FaultyFixture fx("drop@0");
  fx.stream.write_all(some_frame());
  EXPECT_TRUE(fx.sink.bytes.empty());
  // Frame 1 has no directive: passes through untouched.
  const auto frame = some_frame();
  fx.stream.write_all(frame);
  EXPECT_EQ(fx.sink.bytes, frame);
}

TEST(FaultyStream, TruncateWritesStrictPrefixAndPoisons) {
  FaultyFixture fx("trunc@0");
  const auto frame = some_frame();
  EXPECT_THROW(fx.stream.write_all(frame), dist::FaultInjected);
  ASSERT_LT(fx.sink.bytes.size(), frame.size());
  for (std::size_t i = 0; i < fx.sink.bytes.size(); ++i) EXPECT_EQ(fx.sink.bytes[i], frame[i]);
  // Poisoned: the stream stays dead until the connection is rebuilt.
  EXPECT_THROW(fx.stream.write_all(frame), dist::FaultInjected);
  // FaultInjected is a SocketError: the reconnect loop retries it.
  EXPECT_THROW(
      {
        try {
          fx.stream.write_all(frame);
        } catch (const dist::SocketError&) {
          throw;
        }
      },
      dist::SocketError);
}

TEST(FaultyStream, CorruptFlipsExactlyOneBytePastTheMagic) {
  FaultyFixture fx("corrupt@0");
  const auto frame = some_frame();
  fx.stream.write_all(frame);
  ASSERT_EQ(fx.sink.bytes.size(), frame.size());
  std::size_t diffs = 0;
  std::size_t at = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (fx.sink.bytes[i] != frame[i]) {
      ++diffs;
      at = i;
    }
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_GE(at, 4u);  // the magic survives; the damage is validated away
  // A corrupted frame must not decode: checksum or header validation trips.
  MemSource replay(fx.sink.bytes);
  dist::FrameHeader header;
  std::vector<std::byte> payload;
  EXPECT_THROW(dist::read_frame(replay, header, payload), dist::WireError);
}

TEST(FaultyStream, DelayDeliversIntact) {
  FaultyFixture fx("delay@0:1");
  const auto frame = some_frame();
  fx.stream.write_all(frame);
  EXPECT_EQ(fx.sink.bytes, frame);
}

// ---------------------------------------------------------------------------
// Socket deadlines (the no-dist-test-can-hang satellite).
// ---------------------------------------------------------------------------

TEST(SocketDeadline, SilentPeerReadThrowsSocketTimeout) {
  dist::TcpListener listener(kHost, 0);
  auto stream = dist::TcpStream::connect(kHost, listener.port(), std::chrono::seconds(5));
  stream.set_timeouts(100);
  std::array<std::byte, 8> buf;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(stream.read_some(buf), dist::SocketTimeout);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(SocketDeadline, EnvKnobFeedsDefault) {
  const char* saved = ::getenv("YF_DIST_TIMEOUT_MS");
  const std::string saved_copy = saved ? saved : "";
  ::setenv("YF_DIST_TIMEOUT_MS", "1234", 1);
  EXPECT_EQ(dist::default_dist_timeout_ms(), 1234);
  ::setenv("YF_DIST_TIMEOUT_MS", "0", 1);  // 0 disables deadlines
  EXPECT_EQ(dist::default_dist_timeout_ms(), 0);
  ::setenv("YF_DIST_TIMEOUT_MS", "soon", 1);  // malformed: warn + default
  EXPECT_EQ(dist::default_dist_timeout_ms(), 30000);
  ::unsetenv("YF_DIST_TIMEOUT_MS");
  EXPECT_EQ(dist::default_dist_timeout_ms(), 30000);
  if (saved) ::setenv("YF_DIST_TIMEOUT_MS", saved_copy.c_str(), 1);
}

// ---------------------------------------------------------------------------
// Closed-loop YellowFin through faults: the bit-identity pins.
// ---------------------------------------------------------------------------

const std::vector<t::Shape> kShapes = {{5, 3}, {8}, {2, 6}, {1}};  // 36 scalars

std::vector<ag::Variable> make_params(std::uint64_t seed) {
  t::Rng rng(seed);
  std::vector<ag::Variable> params;
  for (const auto& s : kShapes) params.emplace_back(rng.normal_tensor(s), true);
  return params;
}

std::vector<double> flat_values(const std::vector<ag::Variable>& params) {
  std::vector<double> out;
  for (const auto& p : params) {
    const auto v = p.value().data();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

dist::ChannelWorker make_quad_worker(std::uint64_t seed) {
  dist::ChannelWorker worker;
  worker.params = make_params(77);
  auto params = worker.params;
  auto rng = std::make_shared<t::Rng>(seed);
  worker.grad_fn = [params, rng]() mutable {
    double loss = 0.0;
    for (auto& p : params) {
      const auto x = p.value().data();
      auto g = p.node()->ensure_grad().data();
      for (std::size_t j = 0; j < g.size(); ++j) {
        loss += 0.5 * 1.3 * x[j] * x[j];
        g[j] = 1.3 * x[j] + 0.01 * rng->normal();
      }
    }
    return loss;
  };
  return worker;
}

std::shared_ptr<yf::tuner::YellowFin> make_tuner(std::vector<ag::Variable>& params) {
  yf::tuner::YellowFinOptions yopts;
  yopts.beta = 0.99;
  return std::make_shared<yf::tuner::YellowFin>(params, yopts);
}

async::ParamServerOptions server_options() {
  async::ParamServerOptions sopts;
  sopts.shards = 4;
  sopts.closed_loop = true;
  return sopts;
}

struct RunOutput {
  std::vector<double> final_values;
  async::ServerRunResult result;
};

RunOutput run_inproc(int steps) {
  auto params = make_params(77);
  auto opt = make_tuner(params);
  async::ShardedParamServer server(opt, server_options());
  std::vector<dist::ChannelWorker> workers{make_quad_worker(123)};
  dist::InprocChannel channel(server);
  workers[0].channel = &channel;
  dist::ChannelRunOptions ropts;
  ropts.steps_per_worker = steps;
  RunOutput out;
  out.result = dist::run_channel_workers(workers, ropts);
  out.final_values = flat_values(params);
  return out;
}

dist::ClientOptions fast_retry_client(std::uint16_t port, dist::FaultInjector* injector) {
  // Always hand the client an explicit injector -- an inert one when the
  // test wants no client-side faults -- so a chaos env plan (the *_chaos
  // ctest variants, the CI chaos job) never stacks onto the exact
  // reconnect/retry/dedup counts these tests pin.
  static dist::FaultInjector inert{dist::FaultPlan{}};
  dist::ClientOptions copts;
  copts.host = kHost;
  copts.port = port;
  copts.timeout_ms = 250;
  copts.injector = injector != nullptr ? injector : &inert;
  copts.max_attempts = 100;
  copts.backoff_base = std::chrono::milliseconds(1);
  copts.backoff_cap = std::chrono::milliseconds(20);
  return copts;
}

/// One-worker socket run with explicit client/master injectors.
RunOutput run_faulty_socket(int steps, dist::FaultInjector* client_inj,
                            dist::FaultInjector* master_inj,
                            dist::MasterServer::Stats* stats_out = nullptr,
                            std::int64_t* reconnects_out = nullptr) {
  auto params = make_params(77);
  auto opt = make_tuner(params);
  async::ShardedParamServer server(opt, server_options());
  dist::MasterOptions mopts;
  // Longer than the client's deadline: when the client abandons a silent
  // round trip it closes first, so the master sees a clean EOF
  // (disconnects) rather than racing its own timeout (errors).
  mopts.timeout_ms = 1000;
  mopts.injector = master_inj;
  dist::MasterServer net(server, mopts);
  RunOutput out;
  {
    dist::RemoteParamClient client(fast_retry_client(net.port(), client_inj));
    std::vector<dist::ChannelWorker> workers{make_quad_worker(123)};
    workers[0].channel = &client;
    dist::ChannelRunOptions ropts;
    ropts.steps_per_worker = steps;
    out.result = dist::run_channel_workers(workers, ropts);
    client.shutdown();
    if (reconnects_out != nullptr) *reconnects_out = client.reconnects();
  }
  net.shutdown();
  if (stats_out != nullptr) *stats_out = net.stats();
  out.final_values = flat_values(params);
  return out;
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  ASSERT_EQ(a.final_values.size(), b.final_values.size());
  for (std::size_t i = 0; i < a.final_values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.final_values[i]),
              std::bit_cast<std::uint64_t>(b.final_values[i]))
        << "values diverge at flat index " << i;
  }
  ASSERT_EQ(a.result.stats.size(), b.result.stats.size());
  for (std::size_t i = 0; i < a.result.stats.size(); ++i) {
    EXPECT_EQ(a.result.stats[i].update_index, b.result.stats[i].update_index);
    EXPECT_EQ(a.result.stats[i].applied_momentum, b.result.stats[i].applied_momentum);
    EXPECT_EQ(a.result.stats[i].mu_hat_total.has_value(),
              b.result.stats[i].mu_hat_total.has_value());
    if (a.result.stats[i].mu_hat_total && b.result.stats[i].mu_hat_total) {
      EXPECT_EQ(*a.result.stats[i].mu_hat_total, *b.result.stats[i].mu_hat_total);
    }
    EXPECT_EQ(a.result.losses[i], b.result.losses[i]);
  }
}

// A dropped client request frame: the worker times out, reconnects,
// replays. The master never saw the first copy, so nothing dedups --
// but the trajectory must not notice.
// Client frame indices: 0 hello, 1 pull#1, 2 push#1, ...
TEST(FaultRecovery, DroppedPushRequestIsReplayedOnce) {
  const int steps = 3;
  dist::FaultInjector client_inj(dist::FaultPlan::parse("drop@2"));
  dist::MasterServer::Stats stats;
  std::int64_t reconnects = 0;
  const RunOutput faulty = run_faulty_socket(steps, &client_inj, nullptr, &stats, &reconnects);
  expect_identical(run_inproc(steps), faulty);
  EXPECT_EQ(reconnects, 1);
  EXPECT_EQ(stats.pushes, steps);  // applied exactly once
  EXPECT_EQ(stats.retried_pushes, 0);
  EXPECT_EQ(stats.disconnects, 1);  // the abandoned first connection
}

// A dropped master REPLY to an applied push: the worker cannot tell a
// lost reply from a lost request, so it replays -- and the ledger must
// answer from cache instead of double-applying. Master frame indices:
// 0 hello_ack, 1 pull_reply#1, 2 push_reply#1, ...
TEST(FaultRecovery, DroppedPushReplyIsDedupedFromTheLedger) {
  const int steps = 3;
  dist::FaultInjector master_inj(dist::FaultPlan::parse("drop@2"));
  dist::MasterServer::Stats stats;
  std::int64_t reconnects = 0;
  const RunOutput faulty = run_faulty_socket(steps, nullptr, &master_inj, &stats, &reconnects);
  expect_identical(run_inproc(steps), faulty);
  EXPECT_EQ(reconnects, 1);
  EXPECT_EQ(stats.pushes, steps);  // the replay did NOT re-apply
  EXPECT_EQ(stats.retried_pushes, 1);
  EXPECT_EQ(stats.deduped_pushes, 1);
}

// A torn push frame (truncation mid-write): the master reads a broken
// frame and errors the connection; the client replays on a fresh one.
TEST(FaultRecovery, TruncatedPushIsRetriedCleanly) {
  const int steps = 3;
  dist::FaultInjector client_inj(dist::FaultPlan::parse("trunc@2"));
  dist::MasterServer::Stats stats;
  const RunOutput faulty = run_faulty_socket(steps, &client_inj, nullptr, &stats, nullptr);
  expect_identical(run_inproc(steps), faulty);
  EXPECT_EQ(stats.pushes, steps);
  EXPECT_GE(stats.errors, 1);  // the torn frame was diagnosed, not hung on
}

// The seeded-chaos pin: a mixed probabilistic plan on BOTH sides of the
// connection, dozens of frames, still bit-identical to fault-free inproc.
TEST(FaultRecovery, SeededChaosBothSidesStaysBitIdentical) {
  const int steps = 20;
  dist::FaultInjector client_inj(
      dist::FaultPlan::parse("seed=3,drop=0.06,trunc=0.04,corrupt=0.04,delay=0.08:2"));
  dist::FaultInjector master_inj(dist::FaultPlan::parse("seed=11,drop=0.06,corrupt=0.04"));
  dist::MasterServer::Stats stats;
  const RunOutput faulty = run_faulty_socket(steps, &client_inj, &master_inj, &stats, nullptr);
  expect_identical(run_inproc(steps), faulty);
  EXPECT_EQ(stats.pushes, steps);
  // The seeds above DO fire (pinned so the test cannot rot into a no-op).
  EXPECT_GT(client_inj.faults_fired() + master_inj.faults_fired(), 0u);
}

// ---------------------------------------------------------------------------
// The acceptance headline: seeded chaos AND a master kill + checkpoint
// restore mid-run, one worker, closed-loop YellowFin -- bit-identical to
// the fault-free in-process trajectory end to end.
// ---------------------------------------------------------------------------

std::string make_temp_dir() {
  char tmpl[] = "/tmp/yf-ckpt-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

TEST(FaultRecovery, MasterKillAndCheckpointRestoreStaysBitIdentical) {
  const int steps = 24;
  const RunOutput ref = run_inproc(steps);

  const std::string dir = make_temp_dir();
  ASSERT_FALSE(dir.empty());

  dist::FaultInjector client_inj(
      dist::FaultPlan::parse("seed=3,drop=0.05,corrupt=0.04,delay=0.06:2,trunc@4"));
  dist::FaultInjector master_inj(dist::FaultPlan::parse("seed=11,drop=0.05"));

  dist::MasterOptions mopts;
  mopts.checkpoint_dir = dir;
  mopts.checkpoint_every = 1;  // every applied push is durable before its reply
  mopts.timeout_ms = 250;
  mopts.injector = &master_inj;

  auto params1 = make_params(77);
  auto opt1 = make_tuner(params1);
  async::ShardedParamServer server1(opt1, server_options());
  auto net1 = std::make_unique<dist::MasterServer>(server1, mopts);
  const std::uint16_t port = net1->port();

  auto copts = fast_retry_client(port, &client_inj);
  copts.connect_retry_for = std::chrono::seconds(20);  // bridge the restart gap
  dist::RemoteParamClient client(copts);

  std::vector<dist::ChannelWorker> workers{make_quad_worker(123)};
  workers[0].channel = &client;
  dist::ChannelRunOptions ropts;
  ropts.steps_per_worker = steps;
  ropts.compute_delay_us = 3000;  // slow the worker so the kill lands mid-run

  async::ServerRunResult run;
  std::thread trainer([&] { run = dist::run_channel_workers(workers, ropts); });

  // Kill the master once roughly half the trajectory is applied. The
  // shutdown drains in-flight frames, so the last applied push has been
  // checkpointed; the reply may still be lost, which is the replay case
  // the restored ledger must collapse.
  while (server1.updates() < steps / 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net1->shutdown();
  const std::int64_t updates_before_kill = server1.updates();
  net1.reset();

  // A fresh process-worth of state: new params, new tuner, new server --
  // everything the continued trajectory needs must come off disk.
  auto params2 = make_params(77);
  auto opt2 = make_tuner(params2);
  async::ShardedParamServer server2(opt2, server_options());
  mopts.port = port;
  mopts.restore = true;
  dist::MasterServer net2(server2, mopts);
  ASSERT_TRUE(net2.restored().has_value());
  EXPECT_EQ(*net2.restored(), updates_before_kill);

  trainer.join();
  client.shutdown();
  net2.shutdown();

  EXPECT_EQ(server2.updates(), steps);  // exactly-once across the kill
  RunOutput chaotic;
  chaotic.result = run;
  chaotic.final_values = flat_values(params2);
  expect_identical(ref, chaotic);

  remove_tree(dir);
}

}  // namespace
