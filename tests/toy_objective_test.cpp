#include "sim/toy_objectives.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/robust_region.hpp"

namespace sim = yf::sim;

TEST(TwoCurvature, GeneralizedCurvatureIsExactlyPiecewise) {
  const auto obj = sim::two_curvature_objective(1.0, 1000.0, 1.0);
  for (double x : {-15.0, -3.0, -1.5, 2.0, 20.0}) {
    EXPECT_EQ(obj.gcurv(x), 1.0) << "x=" << x;
  }
  for (double x : {-0.9, -0.2, 0.3, 0.99}) {
    EXPECT_EQ(obj.gcurv(x), 1000.0) << "x=" << x;
  }
  // Definition 2: f'(x) = h(x) (x - x*), x* = 0.
  for (double x : {-5.0, -0.5, 0.7, 12.0}) {
    EXPECT_NEAR(obj.grad(x), obj.gcurv(x) * x, 1e-12);
  }
}

TEST(TwoCurvature, ObjectiveContinuousAtKnee) {
  const auto obj = sim::two_curvature_objective(2.0, 50.0, 0.5);
  const double eps = 1e-7;
  EXPECT_NEAR(obj.f(0.5 - eps), obj.f(0.5 + eps), 1e-4);
  EXPECT_NEAR(obj.f(-0.5 - eps), obj.f(-0.5 + eps), 1e-4);
  EXPECT_GE(obj.f(3.0), obj.f(0.0));
}

TEST(TwoCurvature, GcnEqualsCurvatureRatio) {
  const auto obj = sim::two_curvature_objective(1.0, 1000.0, 1.0);
  EXPECT_NEAR(sim::generalized_condition_number(obj, -20.0, 20.0), 1000.0, 1e-9);
}

TEST(TwoCurvature, RejectsBadParameters) {
  EXPECT_THROW(sim::two_curvature_objective(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sim::two_curvature_objective(1.0, 1.0, -1.0), std::invalid_argument);
}

TEST(DoubleWell, IsNonConvexWithTwoMinima) {
  const auto obj = sim::double_well_objective(1.0, 1.0, 2.0);
  EXPECT_NEAR(obj.f(2.0), 0.0, 1e-12);
  EXPECT_NEAR(obj.f(-2.0), 0.0, 1e-12);
  EXPECT_GT(obj.f(0.0), 0.0);  // bump between the wells
  EXPECT_NEAR(obj.distance(1.9), 0.1, 1e-12);
  EXPECT_NEAR(obj.distance(-2.5), 0.5, 1e-12);
}

TEST(DoubleWell, RejectsBadParameters) {
  EXPECT_THROW(sim::double_well_objective(1.0, 0.0, 1.0), std::invalid_argument);
}

TEST(Fig3b, TuningRuleGivesSqrtMuRate) {
  // The centerpiece of Section 2.2: on the double well with curvatures
  // {1, 1000} (GCN 1000), tuning by Eq. 9 empirically yields linear
  // convergence at rate ~ sqrt(mu*).
  const auto obj = sim::double_well_objective(1.0, 1000.0, 1.0);
  const auto tuning = sim::tune_noiseless(1.0, 1000.0);
  const auto dist = sim::run_momentum_gd(obj, -15.0, tuning.alpha, tuning.mu, 500);
  EXPECT_LT(dist.back(), 1e-8);  // converged
  EXPECT_NEAR(sim::empirical_rate(dist), std::sqrt(tuning.mu), 0.01);
}

TEST(Fig3b, RateRobustToStartingWell) {
  // Starting near the steep well or in the flat well: both trajectories
  // converge linearly (robustness to which minimum is approached).
  const auto obj = sim::double_well_objective(1.0, 1000.0, 1.0);
  const auto tuning = sim::tune_noiseless(1.0, 1000.0);
  for (double x0 : {-15.0, 15.0, 1.05, 0.9}) {
    const auto dist = sim::run_momentum_gd(obj, x0, tuning.alpha, tuning.mu, 500);
    EXPECT_LT(dist.back(), 1e-8) << "x0=" << x0;
    EXPECT_NEAR(sim::empirical_rate(dist), std::sqrt(tuning.mu), 0.015) << "x0=" << x0;
  }
}

TEST(Fig3b, RateRobustToLearningRateInsideRegion) {
  // Robustness to lr misspecification: any alpha inside the robust region
  // (for both curvatures) gives approximately the same sqrt(mu) rate.
  const auto obj = sim::double_well_objective(1.0, 1000.0, 1.0);
  const double mu = 0.95;  // above mu* ~ 0.881
  const double lo = (1.0 - std::sqrt(mu)) * (1.0 - std::sqrt(mu)) / 1.0;     // h = 1
  const double hi = (1.0 + std::sqrt(mu)) * (1.0 + std::sqrt(mu)) / 1000.0;  // h = 1000
  ASSERT_LT(lo, hi);  // region non-empty since mu >= mu*
  for (double f : {0.05, 0.5, 0.95}) {
    const double alpha = lo + f * (hi - lo);
    const auto dist = sim::run_momentum_gd(obj, -15.0, alpha, mu, 700);
    EXPECT_NEAR(sim::empirical_rate(dist), std::sqrt(mu), 0.02) << "alpha=" << alpha;
  }
}

TEST(Fig3b, UndertunedMomentumIsSlower) {
  // Below mu* the robust region cannot cover both curvatures: a safe lr
  // for the steep well leaves the flat well crawling.
  const auto obj = sim::double_well_objective(1.0, 1000.0, 1.0);
  const auto good = sim::tune_noiseless(1.0, 1000.0);
  const double mu_bad = 0.2;
  const double alpha_bad = (1.0 - std::sqrt(mu_bad)) * (1.0 - std::sqrt(mu_bad)) / 1000.0;
  const auto dist_good = sim::run_momentum_gd(obj, -15.0, good.alpha, good.mu, 300);
  const auto dist_bad = sim::run_momentum_gd(obj, -15.0, alpha_bad, mu_bad, 300);
  EXPECT_LT(dist_good.back(), dist_bad.back() * 1e-3);
}

TEST(EmpiricalRate, ExactGeometricCurve) {
  std::vector<double> curve;
  double d = 1.0;
  for (int i = 0; i < 64; ++i) {
    curve.push_back(d);
    d *= 0.8;
  }
  EXPECT_NEAR(sim::empirical_rate(curve), 0.8, 1e-9);
}

TEST(EmpiricalRate, HandlesUnderflowTail) {
  std::vector<double> curve(32, 0.0);
  for (int i = 0; i < 16; ++i) curve[static_cast<std::size_t>(i)] = std::pow(0.5, i);
  // Second half is all zeros; rate must not divide by zero.
  EXPECT_GE(sim::empirical_rate(curve), 0.0);
}

TEST(EmpiricalRate, RejectsShortCurves) {
  EXPECT_THROW(sim::empirical_rate({1.0, 0.5}), std::invalid_argument);
}

TEST(Gcn, RejectsBadGrid) {
  const auto obj = sim::two_curvature_objective(1.0, 10.0, 1.0);
  EXPECT_THROW(sim::generalized_condition_number(obj, 2.0, 1.0), std::invalid_argument);
}
