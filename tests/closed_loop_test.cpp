#include "tuner/closed_loop.hpp"

#include <gtest/gtest.h>

namespace tuner = yf::tuner;

TEST(ClosedLoopController, MovesTowardTarget) {
  tuner::ClosedLoopController ctl(0.1, 0.0);
  // Measured total momentum above target: applied momentum must decrease.
  const double mu1 = ctl.update(/*target=*/0.5, /*measured=*/0.9);
  EXPECT_LT(mu1, 0.0 + 1e-12);
  EXPECT_NEAR(mu1, 0.1 * (0.5 - 0.9), 1e-12);
}

TEST(ClosedLoopController, IncreasesWhenBelowTarget) {
  tuner::ClosedLoopController ctl(0.1, 0.0);
  const double mu1 = ctl.update(0.8, 0.2);
  EXPECT_GT(mu1, 0.0);
}

TEST(ClosedLoopController, ConvergesOnStationarySystem) {
  // Simple plant: total momentum = applied momentum + 0.3 (asynchrony adds
  // a constant 0.3). The loop must settle near target - 0.3.
  tuner::ClosedLoopController ctl(0.05, 0.0);
  const double target = 0.7, async_boost = 0.3;
  double applied = 0.0;
  for (int i = 0; i < 2000; ++i) {
    applied = ctl.update(target, applied + async_boost);
  }
  EXPECT_NEAR(applied, target - async_boost, 1e-3);
}

TEST(ClosedLoopController, AllowsNegativeMomentum) {
  // When asynchrony-induced momentum exceeds the target, the algorithmic
  // momentum must go negative (Fig. 4 right pane).
  tuner::ClosedLoopController ctl(0.05, 0.0);
  const double target = 0.2, async_boost = 0.5;
  double applied = 0.0;
  for (int i = 0; i < 2000; ++i) {
    applied = ctl.update(target, applied + async_boost);
  }
  EXPECT_NEAR(applied, -0.3, 1e-3);
  EXPECT_LT(applied, 0.0);
}

TEST(ClosedLoopController, ClampsToStableRange) {
  tuner::ClosedLoopController ctl(10.0, 0.0);  // absurd gain
  double applied = 0.0;
  for (int i = 0; i < 100; ++i) applied = ctl.update(0.9, -5.0);
  EXPECT_LE(applied, 0.999);
  for (int i = 0; i < 100; ++i) applied = ctl.update(-0.9, 5.0);
  EXPECT_GE(applied, -0.999);
}

TEST(ClosedLoopController, GammaMatchesAlgorithmFiveDefault) {
  tuner::ClosedLoopController ctl;
  EXPECT_NEAR(ctl.gamma(), 0.01, 1e-12);
  EXPECT_EQ(ctl.applied_momentum(), 0.0);
}
