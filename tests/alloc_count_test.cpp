// Allocation-regression suite: proves the zero-allocation contract of
// the tape/workspace refactor (DESIGN.md §8) by *counting* heap traffic.
//
// This binary replaces the global operator new/delete with counting
// versions that report into core/alloc_count.hpp. After a warm-up step,
// a fixed-shape training step -- forward, backward, optimizer apply --
// must allocate exactly zero times on the sync trainer; for the sharded
// parameter server (whose harness has fixed per-run setup costs) the
// proof is count equality between a short and a long run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <new>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"
#include "core/alloc_count.hpp"
#include "core/parallel.hpp"
#include "data/markov_text.hpp"
#include "nn/language_model.hpp"
#include "optim/momentum_sgd.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "train/trainer.hpp"
#include "tuner/yellowfin.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every variant funnels through malloc/free so the
// counters see all of them. Test-binary-only; the library never replaces
// the global allocator itself.
// ---------------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t size) {
  yf::core::detail::note_alloc();
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  yf::core::detail::note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size ? size : 1) != 0) {
    return nullptr;
  }
  return p;
}

void counted_free(void* p) {
  if (p == nullptr) return;
  yf::core::detail::note_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

// ---------------------------------------------------------------------------

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

namespace {

template <typename F>
std::uint64_t allocations_during(F&& f) {
  const auto before = yf::core::heap_alloc_count();
  f();
  return yf::core::heap_alloc_count() - before;
}

/// Keep every elementwise sweep and matmul inline on the calling thread:
/// pool dispatch enqueues tasks (which allocates) and is pointless for
/// the tiny shapes used here.
void force_inline_parallelism() { yf::core::ThreadPool::instance().set_fanout(1); }

}  // namespace

TEST(AllocCount, CountingAllocatorIsInstalled) {
  // Call the allocation function directly: the compiler may legally elide
  // a paired new-expression/delete ([expr.new]/10), but a direct call to
  // the replaceable ::operator new must happen.
  const auto n = allocations_during([] {
    void* p = ::operator new(16);
    ::operator delete(p);
  });
  EXPECT_GE(n, 1u);
}

TEST(AllocCount, SyncLmTrainStepIsAllocationFreeAfterWarmup) {
  force_inline_parallelism();
  const std::int64_t batch = 4, seq_plus1 = 9, rounds = 8;
  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 16;
  dcfg.branching = 2;
  yf::data::MarkovText dataset(dcfg);
  t::Rng data_rng(3);
  // Pre-generated batches: the allocation contract covers the training
  // step, not the (caller-owned) data pipeline.
  std::vector<std::vector<std::int64_t>> batches;
  for (int i = 0; i < 4; ++i) batches.push_back(dataset.sample_batch(batch, seq_plus1, data_rng));

  nn::LanguageModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 12;
  cfg.layers = 2;
  t::Rng model_rng(1);
  nn::LSTMLanguageModel model(cfg, model_rng);
  yf::optim::MomentumSGD opt(model.parameters(), 0.1, 0.9);

  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  double sink = 0.0;
  auto step = [&](int i) {
    tape.begin_step();
    opt.zero_grad();
    const auto& toks = batches[static_cast<std::size_t>(i) % batches.size()];
    auto loss = model.loss(toks, batch, seq_plus1);
    loss.backward();
    opt.step();
    sink += loss.value().item();
  };
  for (int i = 0; i < 3; ++i) step(i);  // warm-up: record + fill caches

  const auto n = allocations_during([&] {
    for (int i = 3; i < 3 + rounds; ++i) step(i);
  });
  EXPECT_EQ(n, 0u) << "steady-state LM train steps must not touch the heap";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocCount, GemmPackingIsAllocationFreeInSteadyState) {
  force_inline_parallelism();
  // Shapes large enough to take the packed GEMM path (packing buffers
  // come from the per-thread workspace): after the first call of the
  // peak shape has sized the high-water mark, every later call -- all
  // three layout variants, plus a tape-driven training step whose
  // pullbacks run NT/TN -- must be heap-free.
  t::Rng rng(23);
  const auto a = rng.normal_tensor({48, 96});
  const auto b = rng.normal_tensor({96, 64});
  const auto bt = rng.normal_tensor({64, 96});
  const auto at = rng.normal_tensor({96, 48});
  t::Tensor out(t::Shape{48, 64});
  auto sweep = [&] {
    t::matmul_into(out, a, b);
    t::matmul_nt_into(out, a, bt);
    t::matmul_tn_into(out, at, b);
  };
  sweep();  // warm-up: pack workspace blocks for the peak shapes
  const auto n = allocations_during([&] {
    for (int i = 0; i < 16; ++i) sweep();
  });
  EXPECT_EQ(n, 0u) << "steady-state GEMM packing must reuse workspace high-water storage";

  // And through the full training step: an autograd quadratic whose
  // matmuls sit above the packed threshold, on a tape.
  ag::Variable w(rng.normal_tensor({96, 48}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({32, 96}));
  ag::Variable y(rng.normal_tensor({32, 48}));
  yf::optim::MomentumSGD opt({w}, 1e-3, 0.9);
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  double sink = 0.0;
  auto step = [&] {
    tape.begin_step();
    opt.zero_grad();
    auto loss = ag::mean(ag::square(ag::sub(ag::matmul(x, w), y)));
    loss.backward();
    opt.step();
    sink += loss.value().item();
  };
  for (int i = 0; i < 3; ++i) step();
  // Under the parallel backward engine the matmul pullbacks can land on
  // pool helper threads whose per-thread GEMM packing workspaces
  // (core/gemm.cpp) are still cold, and which helper executes a node is
  // scheduling-dependent -- so that one-time warm-up (a handful of
  // allocations per pack shape, per thread) may fall inside the measured
  // region. The contract under threads is therefore step-count
  // independence: allocations over 64 steps must stay within the
  // O(threads) warm-up budget. Serial keeps the strict zero.
  const int participants = tape.backward_threads();
  const auto steps_allocs = allocations_during([&] {
    for (int i = 0; i < 64; ++i) step();
  });
  if (participants <= 1) {
    EXPECT_EQ(steps_allocs, 0u)
        << "packed-GEMM training steps must not touch the heap after warm-up";
  } else {
    // Two pack shapes (the NT/TN pullbacks) x at most 16 allocations of
    // workspace growth per cold helper thread; any per-step allocation
    // would overshoot this budget by the loop length.
    const auto warmup_budget = static_cast<std::uint64_t>(participants - 1) * 16u;
    EXPECT_LE(steps_allocs, warmup_budget)
        << "packed-GEMM training allocations must be one-time per-thread "
           "warm-up, not per-step";
  }
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocCount, QuadraticYellowFinStepIsAllocationFreeAfterWarmup) {
  force_inline_parallelism();
  // Tiny least-squares model driven through autograd, optimized by the
  // full YellowFin tuner (curvature window, variance, clipping).
  t::Rng rng(5);
  ag::Variable w(rng.normal_tensor({6, 3}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({8, 6}));
  ag::Variable y(rng.normal_tensor({8, 3}));
  yf::tuner::YellowFin opt({w});

  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  double sink = 0.0;
  auto step = [&] {
    tape.begin_step();
    opt.zero_grad();
    auto loss = ag::mean(ag::square(ag::sub(ag::matmul(x, w), y)));
    loss.backward();
    opt.step();
    sink += loss.value().item();
  };
  for (int i = 0; i < 3; ++i) step();

  const auto n = allocations_during([&] {
    for (int i = 0; i < 20; ++i) step();
  });
  EXPECT_EQ(n, 0u) << "steady-state YellowFin steps must not touch the heap";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocCount, TrainLoopWithTapeIsAllocationFreePerStep) {
  force_inline_parallelism();
  // train::train allocates its result vectors once per run; per-step
  // freedom shows up as run cost independent of the iteration count.
  t::Rng rng(7);
  ag::Variable w(rng.normal_tensor({4, 2}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({5, 4}));
  ag::Variable y(rng.normal_tensor({5, 2}));
  yf::optim::MomentumSGD opt({w}, 0.05, 0.9);
  ag::GraphTape tape;
  auto grad_fn = [&] {
    auto loss = ag::mean(ag::square(ag::sub(ag::matmul(x, w), y)));
    loss.backward();
    return loss.value().item();
  };
  auto run = [&](std::int64_t iters) {
    yf::train::TrainOptions o;
    o.iterations = iters;
    o.tape = &tape;
    return allocations_during([&] { (void)yf::train::train(opt, grad_fn, o); });
  };
  (void)run(8);  // warm-up
  const auto short_run = run(16);
  const auto long_run = run(64);
  EXPECT_EQ(short_run, long_run) << "per-run allocations must not scale with iterations";
}

TEST(AllocCount, ParallelBackwardStepIsAllocationFreeAfterWarmup) {
  force_inline_parallelism();
  // The multithreaded backward engine (DESIGN.md §10) on 3 threads: the
  // dependency-count plan, pending counters, ready ring, and helper task
  // batch are all preallocated by the first pass, so steady-state steps
  // must stay heap-free even while engine helpers drain the graph.
  yf::core::ThreadPool::instance().ensure_workers(3);
  t::Rng rng(29);
  ag::Variable w(rng.normal_tensor({6, 4}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({8, 6}));
  ag::Variable y(rng.normal_tensor({8, 4}));
  yf::optim::MomentumSGD opt({w}, 0.05, 0.9);

  ag::GraphTape tape;
  tape.set_backward_threads(3);
  ag::TapeScope scope(&tape);
  double sink = 0.0;
  auto step = [&] {
    tape.begin_step();
    opt.zero_grad();
    auto loss = ag::mean(ag::square(ag::sub(ag::matmul(x, w), y)));
    loss.backward();
    opt.step();
    sink += loss.value().item();
  };
  for (int i = 0; i < 3; ++i) step();  // warm-up: plan + ring + helpers

  const auto n = allocations_during([&] {
    for (int i = 0; i < 16; ++i) step();
  });
  EXPECT_EQ(n, 0u) << "steady-state parallel backward must not touch the heap";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocCount, OverlappedApplyStepIsAllocationFreeAfterWarmup) {
  force_inline_parallelism();
  // Backward/optimizer overlap: completion hooks fire fused shard updates
  // from inside the parallel backward drain. The shard table, applied
  // flags, and hook group counters live in the driver/tape, so overlapped
  // steps inherit the zero-allocation contract of sequential ones.
  yf::core::ThreadPool::instance().ensure_workers(3);
  t::Rng rng(31);
  ag::Variable w1(rng.normal_tensor({6, 4}), /*requires_grad=*/true);
  ag::Variable w2(rng.normal_tensor({4, 3}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({8, 6}));
  ag::Variable y(rng.normal_tensor({8, 3}));
  yf::optim::MomentumSGD opt({w1, w2}, 0.05, 0.9);

  ag::GraphTape tape;
  tape.set_backward_threads(3);
  ag::TapeScope scope(&tape);
  yf::optim::OverlappedApply overlap(opt, tape, /*max_shards=*/4);
  double sink = 0.0;
  auto step = [&] {
    tape.begin_step();
    opt.zero_grad();
    overlap.begin_step();
    auto loss = ag::mean(ag::square(ag::sub(ag::matmul(ag::matmul(x, w1), w2), y)));
    loss.backward();
    overlap.finish();
    sink += loss.value().item();
  };
  for (int i = 0; i < 3; ++i) step();  // warm-up: hook groups + plan

  const auto n = allocations_during([&] {
    for (int i = 0; i < 16; ++i) step();
  });
  EXPECT_EQ(n, 0u) << "steady-state overlapped apply must not touch the heap";
  EXPECT_TRUE(std::isfinite(sink));
  EXPECT_GT(overlap.overlapped(), 0);
}

TEST(AllocCount, ServingSteadyStateIsAllocationFree) {
  force_inline_parallelism();
  // Forward-only serving engine (DESIGN.md §11): after the worker has
  // warmed its per-batch-size plans, a served request -- enqueue,
  // coalesce, pinned snapshot forward, scatter, wake -- plus a trainer
  // publish must not touch the heap. Requests use caller-owned stack/
  // preallocated buffers; the worker's logits come from its Workspace.
  yf::nn::LanguageModelConfig cfg;
  cfg.vocab = 12;
  cfg.embed_dim = 6;
  cfg.hidden = 8;
  cfg.layers = 1;
  t::Rng rng(41);
  nn::LSTMLanguageModel model(cfg, rng);
  yf::serve::ServeOptions opts;
  opts.seq_len = 5;
  opts.max_batch = 2;
  opts.max_wait_us = 0;  // single client: no straggler wait
  yf::serve::LMServer server(model, opts);

  std::vector<std::int64_t> tokens(static_cast<std::size_t>(opts.seq_len));
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<std::int64_t>(i) % cfg.vocab;
  }
  std::vector<double> logits(static_cast<std::size_t>(opts.seq_len * cfg.vocab), 0.0);
  double sink = 0.0;
  auto round = [&] {
    (void)server.infer(tokens, logits);
    (void)server.publish();
    sink += logits[0];
  };
  for (int i = 0; i < 4; ++i) round();  // warm-up: plans + packing workspace

  const auto n = allocations_during([&] {
    for (int i = 0; i < 32; ++i) round();
  });
  EXPECT_EQ(n, 0u) << "steady-state serving must not touch the heap";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(AllocCount, ShardedServerWithTwoWorkersIsAllocationFreePerStep) {
  force_inline_parallelism();
  const std::int64_t dim = 48;
  t::Rng rng(11);
  const t::Tensor target = rng.normal_tensor({dim});

  ag::Variable master(rng.normal_tensor({dim}), /*requires_grad=*/true);
  std::vector<ag::Variable> master_params = {master};
  auto opt = std::make_shared<yf::optim::MomentumSGD>(master_params, 0.05, 0.9);
  yf::async::ParamServerOptions server_opts;
  server_opts.shards = 3;
  server_opts.measure = true;
  server_opts.history = 8;
  yf::async::ShardedParamServer server(opt, server_opts);

  // Two workers computing a deterministic quadratic gradient on their own
  // replicas (gradient buffers are pre-materialized by the replica arena).
  std::vector<yf::async::ServerWorker> workers(2);
  std::vector<ag::Variable> replicas;
  for (auto& worker : workers) {
    ag::Variable replica(t::Tensor::zeros({dim}), /*requires_grad=*/true);
    replicas.push_back(replica);
    worker.params = {replica};
    worker.grad_fn = [replica, &target] {
      auto v = replica.value().data();
      auto g = replica.node()->ensure_grad().data();
      double loss = 0.0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        const double d = v[i] - target[static_cast<std::int64_t>(i)];
        g[i] += d;
        loss += 0.5 * d * d;
      }
      return loss;
    };
  }

  auto run = [&](std::int64_t steps) {
    yf::async::ServerRunOptions ro;
    ro.steps_per_worker = steps;
    return allocations_during([&] { (void)yf::async::run_workers(server, workers, ro); });
  };
  (void)run(16);  // warm-up: shard history ring, per-thread scratch, pool
  const auto short_run = run(16);
  const auto long_run = run(64);
  // 2 workers x 48 extra steps: even one allocation per step would add
  // ~96 counts. The tiny slack absorbs scheduling-dependent O(1) churn
  // in the pool's task queue (deque chunk recycling).
  EXPECT_LE(long_run, short_run + 4)
      << "server pull/push/apply must not allocate per step with 2 workers";
}

TEST(AllocCount, ServerWorkersWithModelReplicasAndTapes) {
  force_inline_parallelism();
  const std::int64_t batch = 4, seq_plus1 = 7;
  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 12;
  dcfg.branching = 2;
  yf::data::MarkovText dataset(dcfg);
  t::Rng data_rng(13);
  auto tokens = dataset.sample_batch(batch, seq_plus1, data_rng);

  nn::LanguageModelConfig cfg;
  cfg.vocab = 12;
  cfg.embed_dim = 6;
  cfg.hidden = 8;
  cfg.layers = 1;
  t::Rng master_rng(1);
  nn::LSTMLanguageModel master(cfg, master_rng);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(master.parameters(), 0.1, 0.9);
  yf::async::ParamServerOptions server_opts;
  server_opts.shards = 2;
  server_opts.history = 8;
  yf::async::ShardedParamServer server(opt, server_opts);

  // Each worker: its own model replica, its own tape, shared fixed batch.
  std::vector<std::shared_ptr<nn::LSTMLanguageModel>> models;
  std::vector<std::unique_ptr<ag::GraphTape>> tapes;
  std::vector<yf::async::ServerWorker> workers(2);
  for (std::size_t w = 0; w < workers.size(); ++w) {
    t::Rng replica_rng(100 + w);
    models.push_back(std::make_shared<nn::LSTMLanguageModel>(cfg, replica_rng));
    tapes.push_back(std::make_unique<ag::GraphTape>());
    auto model = models.back();
    workers[w].params = model->parameters();
    workers[w].tape = tapes.back().get();
    workers[w].grad_fn = [model, tokens, batch, seq_plus1] {
      auto loss = model->loss(tokens, batch, seq_plus1);
      loss.backward();
      return loss.value().item();
    };
  }

  auto run = [&](std::int64_t steps) {
    yf::async::ServerRunOptions ro;
    ro.steps_per_worker = steps;
    return allocations_during([&] { (void)yf::async::run_workers(server, workers, ro); });
  };
  (void)run(12);  // warm-up: tape recording on each worker thread
  const auto short_run = run(12);
  const auto long_run = run(48);
  // Same slack rationale as above, plus headroom for one-time per-thread
  // warm-up: run_workers places worker bodies on arbitrary pool threads,
  // and the first body a given thread ever runs pays for its
  // thread_local push staging (ShardedParamServer::begin_push) -- an
  // O(pool threads) cost that lands nondeterministically in either run.
  // A real per-step leak would add at least 72 counts (2 workers x 36
  // extra steps), far above this slack.
  EXPECT_LE(long_run, short_run + 24)
      << "model forward/backward on worker replicas must replay allocation-free";
}

TEST(AllocCount, FusedTapeReplayIsAllocationFreeAndFusesOnlyAtWarmup) {
  force_inline_parallelism();
  // Tape fusion (DESIGN.md §13) forced on: the scan, the chain programs,
  // and the workspace rebuild are warm-up work; fused steady-state replay
  // (single-sweep forward + backward through the chain) must stay on the
  // zero-allocation contract, and the pass must not re-fire per step.
  const bool prev_fusion = ag::tape_fusion_enabled();
  ag::set_tape_fusion(true);
  t::Rng rng(37);
  ag::Variable w(rng.normal_tensor({64}), /*requires_grad=*/true);
  ag::Variable x(rng.normal_tensor({64}));
  yf::optim::MomentumSGD opt({w}, 0.01, 0.9);

  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  double sink = 0.0;
  auto step = [&] {
    tape.begin_step();
    opt.zero_grad();
    // A deep elementwise chain: mul -> tanh -> mul_scalar -> sigmoid ->
    // square fuses into one sweep with its interiors dropped.
    auto loss = ag::sum(ag::square(ag::sigmoid(ag::mul_scalar(ag::tanh(ag::mul(x, w)), 0.5))));
    loss.backward();
    opt.step();
    sink += loss.value().item();
  };
  // Warm-up: record (1), full replay -> stable (2), fusion rebuild (3),
  // first fused replay + cached traversal (4).
  for (int i = 0; i < 4; ++i) step();
  ASSERT_GT(tape.fused_nodes(), 0) << "fusion must engage for this test to mean anything";
  const auto rebuilds = tape.fusion_rebuilds();

  const auto short_run = allocations_during([&] {
    for (int i = 0; i < 8; ++i) step();
  });
  const auto long_run = allocations_during([&] {
    for (int i = 0; i < 32; ++i) step();
  });
  EXPECT_EQ(short_run, 0u) << "steady-state fused replay must not touch the heap";
  EXPECT_EQ(long_run, 0u) << "fused-replay allocations must be step-count independent";
  EXPECT_EQ(tape.fusion_rebuilds(), rebuilds) << "the fusion pass must not re-fire per step";
  EXPECT_TRUE(std::isfinite(sink));
  ag::set_tape_fusion(prev_fusion);
}
