#include "sim/momentum_operator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/robust_region.hpp"

namespace sim = yf::sim;

TEST(MomentumOperator, MatrixLayoutMatchesEq5) {
  const auto a = sim::momentum_operator(0.1, 0.9, 2.0);
  EXPECT_NEAR(a(0, 0), 1.0 - 0.1 * 2.0 + 0.9, 1e-12);
  EXPECT_NEAR(a(0, 1), -0.9, 1e-12);
  EXPECT_EQ(a(1, 0), 1.0);
  EXPECT_EQ(a(1, 1), 0.0);
}

TEST(MomentumOperator, ClosedFormMatchesGenericEigen) {
  for (double alpha : {0.01, 0.5, 1.5}) {
    for (double mu : {0.0, 0.3, 0.9}) {
      for (double h : {0.5, 1.0, 10.0}) {
        const double closed = sim::momentum_spectral_radius(alpha, mu, h);
        const double generic = sim::spectral_radius(sim::momentum_operator(alpha, mu, h));
        EXPECT_NEAR(closed, generic, 1e-10)
            << "alpha=" << alpha << " mu=" << mu << " h=" << h;
      }
    }
  }
}

// Lemma 3: inside the robust region rho(A) = sqrt(mu), parameterized sweep.
struct RobustCase {
  double mu, h;
};
class RobustRadius : public ::testing::TestWithParam<RobustCase> {};

TEST_P(RobustRadius, SqrtMuInsideRegion) {
  const auto& [mu, h] = GetParam();
  const auto [lo, hi] = sim::robust_lr_interval(mu, h);
  // Sample several learning rates across the region, including both
  // boundaries (where the discriminant is 0 and rounding costs ~sqrt(eps)).
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double alpha = lo + f * (hi - lo);
    EXPECT_NEAR(sim::momentum_spectral_radius(alpha, mu, h), std::sqrt(mu), 1e-6)
        << "alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RobustRadius,
                         ::testing::Values(RobustCase{0.1, 1.0}, RobustCase{0.3, 1.0},
                                           RobustCase{0.5, 1.0}, RobustCase{0.9, 1.0},
                                           RobustCase{0.5, 0.01}, RobustCase{0.5, 100.0},
                                           RobustCase{0.99, 7.0}));

TEST(MomentumOperator, RadiusExceedsSqrtMuOutsideRegion) {
  const double mu = 0.25, h = 1.0;
  const auto [lo, hi] = sim::robust_lr_interval(mu, h);
  EXPECT_GT(sim::momentum_spectral_radius(lo * 0.5, mu, h), std::sqrt(mu) + 1e-6);
  EXPECT_GT(sim::momentum_spectral_radius(hi * 1.5, mu, h), std::sqrt(mu) + 1e-6);
}

TEST(MomentumOperator, ZeroMomentumReducesToGradientDescent) {
  // mu = 0: rho = |1 - alpha h|.
  for (double alpha : {0.1, 0.5, 1.0, 1.9}) {
    EXPECT_NEAR(sim::momentum_spectral_radius(alpha, 0.0, 1.0), std::abs(1.0 - alpha), 1e-12);
  }
}

TEST(VarianceOperator, MatrixLayoutMatchesEq12) {
  const double alpha = 0.2, mu = 0.5, h = 3.0;
  const double m = 1.0 - alpha * h + mu;
  const auto b = sim::variance_operator(alpha, mu, h);
  EXPECT_NEAR(b(0, 0), m * m, 1e-12);
  EXPECT_NEAR(b(0, 1), mu * mu, 1e-12);
  EXPECT_NEAR(b(0, 2), -2.0 * mu * m, 1e-12);
  EXPECT_EQ(b(1, 0), 1.0);
  EXPECT_EQ(b(1, 1), 0.0);
  EXPECT_NEAR(b(2, 0), m, 1e-12);
  EXPECT_NEAR(b(2, 2), -mu, 1e-12);
}

// Lemma 6: rho(B) = mu in the robust region.
class VarianceRadius : public ::testing::TestWithParam<RobustCase> {};

TEST_P(VarianceRadius, EqualsMuInsideRegion) {
  const auto& [mu, h] = GetParam();
  if (mu == 0.0) GTEST_SKIP() << "mu = 0 collapses B";
  const auto [lo, hi] = sim::robust_lr_interval(mu, h);
  for (double f : {0.1, 0.5, 0.9}) {
    const double alpha = lo + f * (hi - lo);
    EXPECT_NEAR(sim::variance_spectral_radius(alpha, mu, h), mu, 1e-8)
        << "alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VarianceRadius,
                         ::testing::Values(RobustCase{0.1, 1.0}, RobustCase{0.5, 1.0},
                                           RobustCase{0.9, 1.0}, RobustCase{0.5, 20.0},
                                           RobustCase{0.8, 0.05}));

TEST(VarianceOperator, RadiusAboveMuOutsideRegion) {
  const double mu = 0.25, h = 1.0;
  const auto [lo, hi] = sim::robust_lr_interval(mu, h);
  EXPECT_GT(sim::variance_spectral_radius(hi * 2.0, mu, h), mu + 1e-6);
}
