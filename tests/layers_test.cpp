#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "nn/conv.hpp"
#include "nn/embedding.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

TEST(Linear, ForwardShape) {
  t::Rng rng(1);
  nn::Linear lin(4, 3, rng);
  auto x = ag::Variable(rng.normal_tensor({5, 4}));
  EXPECT_EQ(lin.forward(x).value().shape(), (t::Shape{5, 3}));
}

TEST(Linear, NoBiasVariant) {
  t::Rng rng(1);
  nn::Linear lin(2, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  auto x = ag::Variable(t::Tensor({1, 2}, {0.0, 0.0}));
  // Without bias, zero input maps to zero output. (Keep the Variable alive:
  // value().data() is a span into the op's node.)
  const auto out = lin.forward(x);
  for (double v : out.value().data()) EXPECT_EQ(v, 0.0);
}

TEST(Linear, KnownComputation) {
  t::Rng rng(1);
  nn::Linear lin(2, 1, rng);
  lin.weight.value().at({0, 0}) = 2.0;
  lin.weight.value().at({1, 0}) = 3.0;
  lin.bias.value()[0] = -1.0;
  auto x = ag::Variable(t::Tensor({1, 2}, {10.0, 100.0}));
  EXPECT_NEAR(lin.forward(x).value().item(), 2.0 * 10 + 3.0 * 100 - 1.0, 1e-12);
}

TEST(Linear, GradcheckThroughLayer) {
  t::Rng rng(2);
  nn::Linear lin(3, 2, rng);
  auto x = ag::Variable(rng.normal_tensor({2, 3}), true);
  std::vector<ag::Variable> inputs = {x, lin.weight, lin.bias};
  auto fn = [&lin](const std::vector<ag::Variable>& in) {
    return ag::mean(ag::square(lin.forward(in[0])));
  };
  const auto result = ag::gradcheck(fn, inputs);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Conv2dLayer, ForwardShapeAndDownsample) {
  t::Rng rng(3);
  nn::Conv2d conv(3, 8, 3, 2, 1, rng);
  auto x = ag::Variable(rng.normal_tensor({2, 3, 8, 8}));
  EXPECT_EQ(conv.forward(x).value().shape(), (t::Shape{2, 8, 4, 4}));
}

TEST(Conv2dLayer, GradcheckSmall) {
  t::Rng rng(4);
  nn::Conv2d conv(2, 2, 3, 1, 1, rng);
  auto x = ag::Variable(rng.normal_tensor({1, 2, 4, 4}), true);
  std::vector<ag::Variable> inputs = {x, conv.weight, conv.bias};
  auto fn = [&conv](const std::vector<ag::Variable>& in) {
    return ag::mean(ag::square(conv.forward(in[0])));
  };
  const auto result = ag::gradcheck(fn, inputs, 1e-5, 1e-5, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(EmbeddingLayer, LookupShape) {
  t::Rng rng(5);
  nn::Embedding emb(10, 4, rng);
  auto out = emb.forward({1, 2, 3});
  EXPECT_EQ(out.value().shape(), (t::Shape{3, 4}));
}

TEST(EmbeddingLayer, RowsMatchTable) {
  t::Rng rng(5);
  nn::Embedding emb(10, 4, rng);
  auto out = emb.forward({7});
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out.value().at({0, j}), emb.weight.value().at({7, j}));
  }
}

TEST(Init, XavierUniformBounds) {
  t::Rng rng(6);
  auto w = nn::init::xavier_uniform({100, 100}, 100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (double v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(Init, HeNormalVariance) {
  t::Rng rng(7);
  auto w = nn::init::he_normal({200, 200}, 200, rng);
  double sq = 0.0;
  for (double v : w.data()) sq += v * v;
  const double var = sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(Init, NormalStddev) {
  t::Rng rng(8);
  auto w = nn::init::normal({300, 100}, 0.5, rng);
  double sq = 0.0;
  for (double v : w.data()) sq += v * v;
  EXPECT_NEAR(std::sqrt(sq / static_cast<double>(w.size())), 0.5, 0.02);
}
