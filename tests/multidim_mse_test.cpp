#include "sim/multidim_mse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/robust_region.hpp"
#include "tensor/random.hpp"
#include "tuner/single_step.hpp"

namespace sim = yf::sim;

namespace {

sim::MultidimMseParams three_direction_params() {
  sim::MultidimMseParams p;
  p.mu = 0.49;
  p.alpha = (1.0 - std::sqrt(p.mu)) * (1.0 - std::sqrt(p.mu)) / 1.0 * 1.2;  // inside region
  p.h = {1.0, 2.0, 4.0};
  p.c = {0.1, 0.2, 0.05};
  p.x0 = {1.0, -2.0, 0.5};
  return p;
}

}  // namespace

TEST(MultidimMse, RejectsRaggedInputs) {
  sim::MultidimMseParams p;
  p.h = {1.0};
  p.c = {1.0, 2.0};
  p.x0 = {1.0};
  EXPECT_THROW(sim::multidim_exact_mse_curve(p, 10), std::invalid_argument);
}

TEST(MultidimMse, SingleDirectionMatchesScalarLemma5) {
  sim::MultidimMseParams p;
  p.alpha = 0.2;
  p.mu = 0.5;
  p.h = {1.5};
  p.c = {0.25};
  p.x0 = {2.0};
  const auto multi = sim::multidim_exact_mse_curve(p, 30);
  const auto scalar = sim::exact_mse_curve({0.2, 0.5, 1.5, 0.25, 2.0}, 30);
  for (std::size_t t = 0; t < 30; ++t) EXPECT_NEAR(multi[t], scalar[t], 1e-12);
}

TEST(MultidimMse, DecompositionIsAdditive) {
  const auto p = three_direction_params();
  const auto total = sim::multidim_exact_mse_curve(p, 40);
  double per_direction_sum = 0.0;
  for (std::size_t d = 0; d < p.h.size(); ++d) {
    const auto curve = sim::exact_mse_curve({p.alpha, p.mu, p.h[d], p.c[d], p.x0[d]}, 40);
    per_direction_sum += curve.back();
  }
  EXPECT_NEAR(total.back(), per_direction_sum, 1e-12);
}

TEST(MultidimMse, MonteCarloValidation) {
  // Simulate momentum SGD on the 3-D diagonal quadratic directly and
  // compare the sample MSE against the closed form.
  const auto p = three_direction_params();
  const std::int64_t steps = 30, trials = 20000;
  std::vector<double> acc(static_cast<std::size_t>(steps), 0.0);
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    yf::tensor::Rng rng(1000 + static_cast<std::uint64_t>(trial));
    std::vector<double> x = p.x0, xp = p.x0;
    for (std::int64_t t = 0; t < steps; ++t) {
      double sq = 0.0;
      for (std::size_t d = 0; d < x.size(); ++d) {
        // Two-point gradient noise with variance c[d].
        const double noise = (rng.bernoulli(0.5) ? 1.0 : -1.0) * std::sqrt(p.c[d]);
        const double g = p.h[d] * x[d] + noise;
        const double xn = x[d] - p.alpha * g + p.mu * (x[d] - xp[d]);
        xp[d] = x[d];
        x[d] = xn;
        sq += x[d] * x[d];
      }
      acc[static_cast<std::size_t>(t)] += sq;
    }
  }
  for (auto& v : acc) v /= static_cast<double>(trials);
  const auto exact = sim::multidim_exact_mse_curve(p, steps);
  for (std::size_t t = 0; t < exact.size(); t += 6) {
    EXPECT_NEAR(acc[t], exact[t], 0.05 * std::max(exact[t], 0.05)) << "t=" << t;
  }
}

TEST(MultidimMse, SurrogateMatchesExactDecayInRobustRegion) {
  const auto p = three_direction_params();
  ASSERT_TRUE(sim::all_directions_robust(p));
  const auto exact = sim::multidim_exact_mse_curve(p, 600);
  const auto surr = sim::multidim_surrogate_mse_curve(p, 600);
  // Same steady state order and same asymptotic bias decay scale.
  EXPECT_GT(surr.back(), 0.2 * exact.back());
  EXPECT_LT(surr.back(), 5.0 * exact.back());
}

TEST(MultidimMse, RobustnessPredicate) {
  auto p = three_direction_params();
  EXPECT_TRUE(sim::all_directions_robust(p));
  p.h.push_back(1e6);  // direction far outside the region
  p.c.push_back(0.0);
  p.x0.push_back(1.0);
  EXPECT_FALSE(sim::all_directions_robust(p));
}

TEST(MultidimMse, SingleStepMinimizesMultidimSurrogateAtTEquals1) {
  // Section 3.1: SingleStep's (mu, alpha) minimizes the t = 1 surrogate
  // mu * ||x0||^2 + alpha^2 * C_total subject to the robust constraints.
  const double hmin = 1.0, hmax = 1.0;
  const double d_sq = 1.0 + 4.0 + 0.25, c_total = 0.35;
  const auto tuned = yf::tuner::single_step(hmax, hmin, c_total, std::sqrt(d_sq));
  const double tuned_obj = tuned.mu * d_sq + tuned.alpha * tuned.alpha * c_total;
  for (int i = 0; i <= 500; ++i) {
    const double x = static_cast<double>(i) / 501.0;
    const double mu = x * x;
    const double alpha = (1.0 - x) * (1.0 - x) / hmin;
    EXPECT_GE(mu * d_sq + alpha * alpha * c_total, tuned_obj - 1e-9);
  }
}
