#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.hpp"
#include "tuner/distance_to_opt.hpp"
#include "tuner/gradient_variance.hpp"

namespace tuner = yf::tuner;
namespace t = yf::tensor;

TEST(GradientVariance, ZeroBeforeAnyUpdate) {
  tuner::GradientVariance gv;
  EXPECT_EQ(gv.variance(), 0.0);
  EXPECT_FALSE(gv.initialized());
}

TEST(GradientVariance, DeterministicGradientHasZeroVariance) {
  tuner::GradientVariance gv(0.9);
  for (int i = 0; i < 100; ++i) gv.update(t::Tensor({3}, {1.0, -2.0, 0.5}));
  EXPECT_NEAR(gv.variance(), 0.0, 1e-12);
}

TEST(GradientVariance, RecoversKnownVariance) {
  // g_i ~ N(mu_i, sigma^2) iid: total variance = dim * sigma^2.
  tuner::GradientVariance gv(0.999);
  t::Rng rng(5);
  const double sigma = 0.5;
  const std::int64_t dim = 10;
  for (int i = 0; i < 20000; ++i) {
    gv.update(rng.normal_tensor({dim}, 1.0, sigma));
  }
  EXPECT_NEAR(gv.variance(), static_cast<double>(dim) * sigma * sigma, 0.4);
}

TEST(GradientVariance, ClampsEarlyNegativeEstimates) {
  tuner::GradientVariance gv(0.5);
  gv.update(t::Tensor({1}, {1.0}));
  EXPECT_GE(gv.variance(), 0.0);
}

TEST(GradientVariance, TwoPointDistributionExact) {
  // Alternating +1/-1 gradient: mean -> 0, second moment -> 1, variance -> 1.
  tuner::GradientVariance gv(0.99);
  for (int i = 0; i < 4000; ++i) {
    gv.update(t::Tensor({1}, {i % 2 == 0 ? 1.0 : -1.0}));
  }
  EXPECT_NEAR(gv.variance(), 1.0, 0.05);
}

TEST(DistanceToOpt, RejectsNegativeNorm) {
  tuner::DistanceToOpt d;
  EXPECT_THROW(d.update(-1.0), std::invalid_argument);
}

TEST(DistanceToOpt, MatchesCurvatureProxyFormula) {
  // f(x) = (h/2) x^2 at fixed x: ||g|| = h|x| and the Algorithm 4 curvature
  // proxy is h_est = ||g||^2, so the stationary estimate is
  // D = ||g|| / ||g||^2 = 1/(h|x|).
  const double h = 4.0;
  const double x = 0.25;
  tuner::DistanceToOpt d(0.9);
  for (int i = 0; i < 200; ++i) d.update(h * std::abs(x));
  EXPECT_NEAR(d.distance(), 1.0 / (h * std::abs(x)), 1e-9);
}

TEST(DistanceToOpt, ScalesInverselyWithGradientNorm) {
  tuner::DistanceToOpt small(0.9), large(0.9);
  for (int i = 0; i < 200; ++i) {
    small.update(0.1);
    large.update(10.0);
  }
  // D = ||g||/||g||^2 = 1/||g||.
  EXPECT_NEAR(small.distance(), 10.0, 1e-6);
  EXPECT_NEAR(large.distance(), 0.1, 1e-6);
}

TEST(DistanceToOpt, SmoothedAcrossVaryingNorms) {
  tuner::DistanceToOpt d(0.99);
  t::Rng rng(6);
  for (int i = 0; i < 5000; ++i) d.update(std::abs(rng.normal(1.0, 0.1)));
  // E||g|| ~ 1, E||g||^2 ~ 1.01 -> D ~ 0.99.
  EXPECT_NEAR(d.distance(), 0.99, 0.05);
}
