// GraphTape: replay reuse, truncation, and -- the load-bearing claim --
// bit-identical numerics between the tape path and the per-step heap
// graph for full model training (LM with BPTT, conv/batchnorm ResNet).
#include "autograd/tape.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <tuple>
#include <utility>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "core/parallel.hpp"
#include "data/markov_text.hpp"
#include "data/synth_cifar.hpp"
#include "nn/language_model.hpp"
#include "nn/resnet.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/ops.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

namespace {

ag::Variable leaf(std::vector<double> v, bool rg = true) {
  const auto n = static_cast<std::int64_t>(v.size());
  return ag::Variable(t::Tensor({n}, std::move(v)), rg);
}

/// Forces the process-wide tape-fusion toggle for one scope and restores
/// it on exit, so tests stay order-independent and the YF_TAPE_FUSION
/// ctest variants (`*_fused_off`) keep their environment meaning.
struct FusionGuard {
  bool prev;
  explicit FusionGuard(bool on) : prev(ag::tape_fusion_enabled()) { ag::set_tape_fusion(on); }
  ~FusionGuard() { ag::set_tape_fusion(prev); }
};

}  // namespace

TEST(GraphTape, ReplaysCachedNodesWithStableBuffers) {
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto x = leaf({1, 2, 3});

  tape.begin_step();
  auto y1 = ag::sum(ag::mul(x, x));
  const double* value_addr = y1.value().data().data();
  const auto fresh_after_first = tape.fresh_nodes();
  EXPECT_EQ(fresh_after_first, 2);
  EXPECT_EQ(y1.value().item(), 14.0);

  x.value()[0] = 5.0;
  tape.begin_step();
  auto y2 = ag::sum(ag::mul(x, x));
  EXPECT_EQ(y2.value().item(), 25.0 + 4.0 + 9.0);
  // Same node, same buffer -- nothing was allocated fresh.
  EXPECT_EQ(y2.value().data().data(), value_addr);
  EXPECT_EQ(tape.fresh_nodes(), fresh_after_first);
  EXPECT_EQ(tape.replayed_nodes(), 2);
  EXPECT_EQ(y1.node().get(), y2.node().get());
}

TEST(GraphTape, BackwardMatchesHeapPathBitwise) {
  auto run = [](ag::GraphTape* tape) {
    ag::TapeScope scope(tape);
    auto x = leaf({0.5, -1.25, 2.0});
    auto w = leaf({1.5, 0.25, -0.75});
    for (int step = 0; step < 3; ++step) {
      if (tape) tape->begin_step();
      x.zero_grad();
      w.zero_grad();
      auto h = ag::tanh(ag::mul(x, w));
      auto loss = ag::mean(ag::square(ag::add(h, w)));
      loss.backward();
    }
    return std::pair{x.grad().clone(), w.grad().clone()};
  };
  const auto heap = run(nullptr);
  ag::GraphTape tape;
  const auto taped = run(&tape);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(heap.first[i], taped.first[i]);
    EXPECT_EQ(heap.second[i], taped.second[i]);
  }
}

TEST(GraphTape, LeafGradsAccumulateAcrossBackwardsLikeHeapPath) {
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto x = leaf({2.0});
  tape.begin_step();
  auto y = ag::sum(ag::square(x));
  y.backward();
  y.backward();
  EXPECT_EQ(x.grad()[0], 8.0);  // 2 * d(x^2)/dx at 2
}

TEST(GraphTape, StructureChangeTruncatesAndRecovers) {
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto x = leaf({3.0});

  tape.begin_step();
  auto a = ag::sum(ag::add(x, x));
  a.backward();
  EXPECT_EQ(x.grad()[0], 2.0);

  // Different op at cursor 0: the cached tail is dropped and re-recorded.
  x.zero_grad();
  tape.begin_step();
  auto b = ag::sum(ag::mul(x, x));
  b.backward();
  EXPECT_EQ(b.value().item(), 9.0);
  EXPECT_EQ(x.grad()[0], 6.0);

  // Alternating structures stay correct and the workspace stops growing
  // once both variants have been seen.
  const auto cap = tape.workspace().capacity();
  for (int i = 0; i < 6; ++i) {
    x.zero_grad();
    tape.begin_step();
    if (i % 2 == 0) {
      ag::sum(ag::add(x, x)).backward();
      EXPECT_EQ(x.grad()[0], 2.0);
    } else {
      ag::sum(ag::mul(x, x)).backward();
      EXPECT_EQ(x.grad()[0], 6.0);
    }
  }
  EXPECT_EQ(tape.workspace().capacity(), cap);
}

TEST(GraphTape, ZerosConstantStaysZeroAcrossSteps) {
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto x = leaf({1.0, 2.0});
  for (int step = 0; step < 3; ++step) {
    tape.begin_step();
    auto z = ag::zeros({2});
    EXPECT_FALSE(z.requires_grad());
    auto y = ag::sum(ag::add(x, z));
    y.backward();
    EXPECT_EQ(y.value().item(), 3.0);
    EXPECT_EQ(z.value()[0], 0.0);
    EXPECT_EQ(z.value()[1], 0.0);
    x.zero_grad();
  }
}

TEST(GraphTape, BackwardFromIntermediateNode) {
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto x = leaf({4.0});
  for (int step = 0; step < 2; ++step) {
    x.zero_grad();
    tape.begin_step();
    auto mid = ag::sum(ag::square(x));
    (void)ag::mul_scalar(mid, 10.0);  // recorded after mid, not backpropped
    mid.backward();
    EXPECT_EQ(x.grad()[0], 8.0);
  }
}

// -- Gradcheck on the tape path: every op battery re-verified while the
// -- graph is recorded (step 1) and replayed (every numeric probe).
namespace {

yf::autograd::GradcheckResult tape_gradcheck(
    const std::function<ag::Variable(const std::vector<ag::Variable>&)>& fn,
    std::vector<ag::Variable> inputs) {
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto stepped = [&tape, &fn](const std::vector<ag::Variable>& ins) {
    tape.begin_step();
    return fn(ins);
  };
  return ag::gradcheck(stepped, std::move(inputs));
}

}  // namespace

TEST(GraphTapeGradcheck, ElementwiseChain) {
  auto x = leaf({0.3, -0.7, 1.1, 0.0});
  auto y = leaf({0.9, 0.2, -0.4, 0.6});
  auto result = tape_gradcheck(
      [](const std::vector<ag::Variable>& in) {
        auto h = ag::sigmoid(ag::mul(in[0], in[1]));
        return ag::mean(ag::square(ag::sub(h, in[1])));
      },
      {x, y});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphTapeGradcheck, MatmulBiasSliceConcat) {
  t::Rng rng(3);
  auto a = ag::Variable(rng.normal_tensor({2, 3}), true);
  auto b = ag::Variable(rng.normal_tensor({3, 4}), true);
  auto bias = ag::Variable(rng.normal_tensor({4}), true);
  auto result = tape_gradcheck(
      [](const std::vector<ag::Variable>& in) {
        auto y = ag::add_row_broadcast(ag::matmul(in[0], in[1]), in[2]);
        auto left = ag::slice_cols(y, 0, 2);
        auto right = ag::slice_cols(y, 2, 4);
        auto joined = ag::concat_cols({right, left});
        return ag::mean(ag::mul(joined, joined));
      },
      {a, b, bias});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphTapeGradcheck, ReshapeTransposeSoftmaxXent) {
  t::Rng rng(4);
  auto logits = ag::Variable(rng.normal_tensor({3, 4}), true);
  const std::vector<std::int64_t> labels = {1, 3, 0};
  auto result = tape_gradcheck(
      [labels](const std::vector<ag::Variable>& in) {
        auto wide = ag::reshape(ag::transpose(in[0]), {3, 4});
        return ag::softmax_cross_entropy(wide, labels);
      },
      {logits});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphTapeGradcheck, EmbeddingLookup) {
  t::Rng rng(5);
  auto table = ag::Variable(rng.normal_tensor({5, 3}), true);
  const std::vector<std::int64_t> idx = {4, 0, 4, 2};
  auto result = tape_gradcheck(
      [idx](const std::vector<ag::Variable>& in) {
        return ag::mean(ag::square(ag::embedding(in[0], idx)));
      },
      {table});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GraphTapeGradcheck, ConvBatchNormPool) {
  t::Rng rng(6);
  auto x = ag::Variable(rng.normal_tensor({2, 2, 4, 4}), true);
  auto w = ag::Variable(rng.normal_tensor({3, 2, 3, 3}, 0.0, 0.5), true);
  auto b = ag::Variable(rng.normal_tensor({3}), true);
  auto gamma = ag::Variable(t::Tensor::ones({3}), true);
  auto beta = ag::Variable(t::Tensor::zeros({3}), true);
  auto result = tape_gradcheck(
      [](const std::vector<ag::Variable>& in) {
        auto y = ag::conv2d(in[0], in[1], in[2], 1, 1);
        y = ag::batch_norm2d(y, in[3], in[4]);
        y = ag::avg_pool2x2(ag::relu(y));
        return ag::mean(ag::square(ag::global_avg_pool(y)));
      },
      {x, w, b, gamma, beta});
  EXPECT_TRUE(result.ok) << result.detail;
}

// -- Whole-model identity: tape trajectory == heap trajectory, bitwise. ----

TEST(GraphTapeModels, LmTrainingTrajectoryIsBitIdenticalToHeapPath) {
  const std::int64_t batch = 4, seq_plus1 = 7, steps = 6;
  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 12;
  dcfg.branching = 2;
  yf::data::MarkovText dataset(dcfg);
  t::Rng data_rng(11);
  std::vector<std::vector<std::int64_t>> batches;
  for (std::int64_t s = 0; s < steps; ++s) {
    batches.push_back(dataset.sample_batch(batch, seq_plus1, data_rng));
  }

  auto run = [&](ag::GraphTape* tape) {
    nn::LanguageModelConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 6;
    cfg.hidden = 8;
    cfg.layers = 2;
    t::Rng model_rng(1);
    nn::LSTMLanguageModel model(cfg, model_rng);
    yf::tuner::YellowFin opt(model.parameters());
    ag::TapeScope scope(tape);
    std::vector<double> losses;
    for (std::int64_t s = 0; s < steps; ++s) {
      if (tape) tape->begin_step();
      opt.zero_grad();
      auto loss = model.loss(batches[static_cast<std::size_t>(s)], batch, seq_plus1);
      loss.backward();
      opt.step();
      losses.push_back(loss.value().item());
    }
    auto final_params = yf::nn::flatten_values(opt.params());
    return std::pair{losses, final_params};
  };

  const auto heap = run(nullptr);
  ag::GraphTape tape;
  const auto taped = run(&tape);
  for (std::int64_t s = 0; s < steps; ++s) {
    EXPECT_EQ(heap.first[static_cast<std::size_t>(s)], taped.first[static_cast<std::size_t>(s)])
        << "loss diverged at step " << s;
  }
  ASSERT_EQ(heap.second.size(), taped.second.size());
  for (std::int64_t i = 0; i < heap.second.size(); ++i) {
    EXPECT_EQ(heap.second[i], taped.second[i]) << "parameter " << i;
  }
  // The whole run replayed from the warm-up recording.
  EXPECT_EQ(tape.steps(), steps);
  EXPECT_GT(tape.replayed_nodes(), 0);
}

TEST(GraphTapeModels, ResNetTrainingTrajectoryIsBitIdenticalToHeapPath) {
  const std::int64_t steps = 3;
  yf::data::SynthCifarConfig dcfg;
  dcfg.classes = 3;
  dcfg.height = 8;
  dcfg.width = 8;
  yf::data::SynthCifar dataset(dcfg);
  t::Rng data_rng(21);
  std::vector<yf::data::ImageBatch> batches;
  for (std::int64_t s = 0; s < steps; ++s) batches.push_back(dataset.sample(4, data_rng));

  auto run = [&](ag::GraphTape* tape) {
    nn::MiniResNetConfig cfg;
    cfg.base_channels = 4;
    cfg.blocks_per_stage = 1;
    cfg.num_classes = 3;
    cfg.with_batchnorm = true;
    t::Rng model_rng(2);
    nn::MiniResNet model(cfg, model_rng);
    yf::optim::MomentumSGD opt(model.parameters(), 0.05, 0.9);
    ag::TapeScope scope(tape);
    // One persistent input leaf: its buffer is refilled per step, the way
    // a zero-allocation input pipeline feeds the tape.
    ag::Variable images(batches[0].images.clone());
    std::vector<double> losses;
    for (std::int64_t s = 0; s < steps; ++s) {
      if (tape) tape->begin_step();
      const auto& b = batches[static_cast<std::size_t>(s)];
      t::copy_into(images.value(), b.images);
      opt.zero_grad();
      auto loss = ag::softmax_cross_entropy(model.forward(images), b.labels);
      loss.backward();
      opt.step();
      losses.push_back(loss.value().item());
    }
    return std::pair{losses, yf::nn::flatten_values(opt.params())};
  };

  const auto heap = run(nullptr);
  ag::GraphTape tape;
  const auto taped = run(&tape);
  for (std::int64_t s = 0; s < steps; ++s) {
    EXPECT_EQ(heap.first[static_cast<std::size_t>(s)], taped.first[static_cast<std::size_t>(s)]);
  }
  for (std::int64_t i = 0; i < heap.second.size(); ++i) {
    EXPECT_EQ(heap.second[i], taped.second[i]) << "parameter " << i;
  }
}

// ---------------------------------------------------------------------------
// Parallel backward engine (DESIGN.md §10): the dependency-counting
// ready-queue executor must produce bit-identical trajectories at every
// participant count, because sequence gates replay every accumulation
// into a shared parent in the canonical serial order.
// ---------------------------------------------------------------------------

TEST(GraphTapeParallel, SharedParentAccumulationOrderIsCanonical) {
  yf::core::ThreadPool::instance().ensure_workers(8);
  // A wide fan-out onto one shared parent, with branch scales spread
  // across 16 orders of magnitude: if the engine ever accumulated
  // first-come-first-served instead of in canonical order, the float
  // rounding of x.grad would differ between runs.
  auto run = [](int threads) {
    ag::GraphTape tape;
    tape.set_backward_threads(threads);
    ag::TapeScope scope(&tape);
    auto x = leaf({0.1234567891234, -7.77e3, 3.3e-7});
    std::vector<double> grads;
    for (int step = 0; step < 3; ++step) {
      tape.begin_step();
      x.zero_grad();
      auto acc = ag::mul_scalar(x, 1.0e8);
      for (int b = 1; b < 12; ++b) {
        const double scale = (b % 2 == 0 ? 1.0 : -1.0) * std::pow(10.0, 8 - 1.5 * b);
        acc = ag::add(acc, ag::tanh(ag::mul_scalar(x, scale)));
      }
      auto y = ag::sum(acc);
      y.backward();
      const auto g = x.grad().data();
      grads.insert(grads.end(), g.begin(), g.end());
    }
    return grads;
  };

  const auto serial = run(1);
  for (const int threads : {2, 8}) {
    const auto parallel = run(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "grad " << i << " at threads=" << threads;
    }
  }
}

TEST(GraphTapeParallel, LmYellowFinTrajectoryIsThreadCountInvariant) {
  yf::core::ThreadPool::instance().ensure_workers(8);
  const std::int64_t batch = 4, seq_plus1 = 7, steps = 6;
  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 12;
  dcfg.branching = 2;
  yf::data::MarkovText dataset(dcfg);
  t::Rng data_rng(11);
  std::vector<std::vector<std::int64_t>> batches;
  for (std::int64_t s = 0; s < steps; ++s) {
    batches.push_back(dataset.sample_batch(batch, seq_plus1, data_rng));
  }

  auto run = [&](int threads) {
    nn::LanguageModelConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 6;
    cfg.hidden = 8;
    cfg.layers = 2;
    t::Rng model_rng(1);
    nn::LSTMLanguageModel model(cfg, model_rng);
    yf::tuner::YellowFin opt(model.parameters());
    ag::GraphTape tape;
    tape.set_backward_threads(threads);
    ag::TapeScope scope(&tape);
    std::vector<double> losses;
    for (std::int64_t s = 0; s < steps; ++s) {
      tape.begin_step();
      opt.zero_grad();
      auto loss = model.loss(batches[static_cast<std::size_t>(s)], batch, seq_plus1);
      loss.backward();
      opt.step();
      losses.push_back(loss.value().item());
    }
    return std::pair{losses, yf::nn::flatten_values(opt.params())};
  };

  const auto serial = run(1);
  for (const int threads : {2, 8}) {
    const auto parallel = run(threads);
    for (std::int64_t s = 0; s < steps; ++s) {
      EXPECT_EQ(serial.first[static_cast<std::size_t>(s)],
                parallel.first[static_cast<std::size_t>(s)])
          << "loss diverged at step " << s << " threads=" << threads;
    }
    ASSERT_EQ(serial.second.size(), parallel.second.size());
    for (std::int64_t i = 0; i < serial.second.size(); ++i) {
      EXPECT_EQ(serial.second[i], parallel.second[i])
          << "parameter " << i << " threads=" << threads;
    }
  }
}

TEST(GraphTapeParallel, ResNetOverlappedApplyTrajectoryIsBitIdentical) {
  yf::core::ThreadPool::instance().ensure_workers(8);
  const std::int64_t steps = 3;
  yf::data::SynthCifarConfig dcfg;
  dcfg.classes = 3;
  dcfg.height = 8;
  dcfg.width = 8;
  yf::data::SynthCifar dataset(dcfg);
  t::Rng data_rng(21);
  std::vector<yf::data::ImageBatch> batches;
  for (std::int64_t s = 0; s < steps; ++s) batches.push_back(dataset.sample(4, data_rng));

  // overlap < 0: sequential opt.step(); otherwise OverlappedApply with
  // that many shards, the fused sweeps racing backward shard by shard.
  auto run = [&](int threads, int overlap_shards) {
    nn::MiniResNetConfig cfg;
    cfg.base_channels = 4;
    cfg.blocks_per_stage = 1;
    cfg.num_classes = 3;
    cfg.with_batchnorm = true;
    t::Rng model_rng(2);
    nn::MiniResNet model(cfg, model_rng);
    yf::optim::MomentumSGD opt(model.parameters(), 0.05, 0.9);
    ag::GraphTape tape;
    tape.set_backward_threads(threads);
    std::optional<yf::optim::OverlappedApply> overlap;
    if (overlap_shards >= 0) {
      overlap.emplace(opt, tape, static_cast<std::size_t>(overlap_shards));
    }
    ag::TapeScope scope(&tape);
    ag::Variable images(batches[0].images.clone());
    std::vector<double> losses;
    for (std::int64_t s = 0; s < steps; ++s) {
      tape.begin_step();
      const auto& b = batches[static_cast<std::size_t>(s)];
      t::copy_into(images.value(), b.images);
      opt.zero_grad();
      auto loss = ag::softmax_cross_entropy(model.forward(images), b.labels);
      if (overlap) {
        overlap->begin_step();
        loss.backward();
        overlap->finish();
      } else {
        loss.backward();
        opt.step();
      }
      losses.push_back(loss.value().item());
    }
    const std::int64_t overlapped = overlap ? overlap->overlapped() : 0;
    return std::tuple{losses, yf::nn::flatten_values(opt.params()), overlapped};
  };

  const auto baseline = run(1, -1);
  for (const auto [threads, shards] : {std::pair{1, 4}, std::pair{4, 4}, std::pair{4, 8}}) {
    const auto overlapped_run = run(threads, shards);
    for (std::int64_t s = 0; s < steps; ++s) {
      EXPECT_EQ(std::get<0>(baseline)[static_cast<std::size_t>(s)],
                std::get<0>(overlapped_run)[static_cast<std::size_t>(s)])
          << "loss diverged at step " << s << " threads=" << threads;
    }
    ASSERT_EQ(std::get<1>(baseline).size(), std::get<1>(overlapped_run).size());
    for (std::int64_t i = 0; i < std::get<1>(baseline).size(); ++i) {
      EXPECT_EQ(std::get<1>(baseline)[i], std::get<1>(overlapped_run)[i])
          << "parameter " << i << " threads=" << threads << " shards=" << shards;
    }
    // Every ResNet parameter is on the traversal, so every shard's
    // update ran inside backward.
    EXPECT_GT(std::get<2>(overlapped_run), 0) << "no overlap at threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Tape fusion (DESIGN.md §13): elementwise chains collapse into single
// fused sweeps at the end of warm-up. The contract under test is
// threefold: trajectories are EXPECT_EQ-bit-identical fused vs unfused
// (both model families, any backward thread count -- the ctest backend
// matrix re-runs this file per kernel table), intermediates genuinely
// leave the workspace, and instability (structure/attr changes, interior
// reads) degrades to the unfused path instead of to wrong gradients.
// ---------------------------------------------------------------------------

TEST(GraphTapeFusion, ElementwiseChainCollapsesAndDropsIntermediates) {
  auto run = [](bool fused) {
    FusionGuard guard(fused);
    ag::GraphTape tape;
    ag::TapeScope scope(&tape);
    auto x = leaf({0.5, -1.25, 2.0, 0.75});
    std::vector<double> trace;
    for (int step = 0; step < 8; ++step) {
      tape.begin_step();
      x.zero_grad();
      auto y = ag::sum(ag::square(ag::tanh(ag::mul_scalar(x, 1.5))));
      y.backward();
      trace.push_back(y.value().item());
      const auto g = x.grad().data();
      trace.insert(trace.end(), g.begin(), g.end());
    }
    return std::tuple{trace, tape.fused_nodes(), tape.fusion_chains(),
                      tape.eliminated_intermediate_bytes(),
                      tape.workspace().high_water_bytes()};
  };

  const auto off = run(false);
  const auto on = run(true);
  ASSERT_EQ(std::get<0>(off).size(), std::get<0>(on).size());
  for (std::size_t i = 0; i < std::get<0>(off).size(); ++i) {
    EXPECT_EQ(std::get<0>(off)[i], std::get<0>(on)[i]) << "trace " << i;
  }
  // mul_scalar -> tanh is one 2-member chain (tanh is a transcendental,
  // so it may only ever be a chain *tail* -- square stays unfused after
  // it); the interior mul_scalar value+grad buffers leave the workspace.
  EXPECT_EQ(std::get<1>(off), 0);
  EXPECT_EQ(std::get<1>(on), 2);
  EXPECT_EQ(std::get<2>(on), 1);
  EXPECT_EQ(std::get<3>(on), 2 * 4 * static_cast<std::int64_t>(sizeof(double)));
  EXPECT_LT(std::get<4>(on), std::get<4>(off))
      << "fused workspace peak must shrink by the eliminated intermediates";
}

TEST(GraphTapeFusion, LmYellowFinTrajectoryMatchesUnfusedAtAnyThreadCount) {
  yf::core::ThreadPool::instance().ensure_workers(4);
  const std::int64_t batch = 4, seq_plus1 = 7, steps = 6;
  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 12;
  dcfg.branching = 2;
  yf::data::MarkovText dataset(dcfg);
  t::Rng data_rng(11);
  std::vector<std::vector<std::int64_t>> batches;
  for (std::int64_t s = 0; s < steps; ++s) {
    batches.push_back(dataset.sample_batch(batch, seq_plus1, data_rng));
  }

  auto run = [&](bool fused, int threads, std::int64_t* fused_nodes_out) {
    FusionGuard guard(fused);
    nn::LanguageModelConfig cfg;
    cfg.vocab = 12;
    cfg.embed_dim = 6;
    cfg.hidden = 8;
    cfg.layers = 2;
    t::Rng model_rng(1);
    nn::LSTMLanguageModel model(cfg, model_rng);
    yf::tuner::YellowFin opt(model.parameters());
    ag::GraphTape tape;
    tape.set_backward_threads(threads);
    ag::TapeScope scope(&tape);
    std::vector<double> losses;
    for (std::int64_t s = 0; s < steps; ++s) {
      tape.begin_step();
      opt.zero_grad();
      auto loss = model.loss(batches[static_cast<std::size_t>(s)], batch, seq_plus1);
      loss.backward();
      opt.step();
      losses.push_back(loss.value().item());
    }
    if (fused_nodes_out != nullptr) *fused_nodes_out = tape.fused_nodes();
    return std::pair{losses, yf::nn::flatten_values(opt.params())};
  };

  const auto unfused = run(false, 1, nullptr);
  for (const int threads : {1, 4}) {
    std::int64_t fused_nodes = 0;
    const auto fused = run(true, threads, &fused_nodes);
    // The LSTM cell is elementwise-dense (gate activations, cell update):
    // fusion must actually engage, or this test proves nothing.
    EXPECT_GT(fused_nodes, 0) << "fusion never fired at threads=" << threads;
    for (std::int64_t s = 0; s < steps; ++s) {
      EXPECT_EQ(unfused.first[static_cast<std::size_t>(s)],
                fused.first[static_cast<std::size_t>(s)])
          << "loss diverged at step " << s << " threads=" << threads;
    }
    ASSERT_EQ(unfused.second.size(), fused.second.size());
    for (std::int64_t i = 0; i < unfused.second.size(); ++i) {
      EXPECT_EQ(unfused.second[i], fused.second[i])
          << "parameter " << i << " threads=" << threads;
    }
  }
}

TEST(GraphTapeFusion, ResNetBatchNormTrajectoryMatchesUnfusedAtAnyThreadCount) {
  yf::core::ThreadPool::instance().ensure_workers(4);
  const std::int64_t steps = 3;
  yf::data::SynthCifarConfig dcfg;
  dcfg.classes = 3;
  dcfg.height = 8;
  dcfg.width = 8;
  yf::data::SynthCifar dataset(dcfg);
  t::Rng data_rng(21);
  std::vector<yf::data::ImageBatch> batches;
  for (std::int64_t s = 0; s < steps; ++s) batches.push_back(dataset.sample(4, data_rng));

  auto run = [&](bool fused, int threads) {
    FusionGuard guard(fused);
    nn::MiniResNetConfig cfg;
    cfg.base_channels = 4;
    cfg.blocks_per_stage = 1;
    cfg.num_classes = 3;
    cfg.with_batchnorm = true;
    t::Rng model_rng(2);
    nn::MiniResNet model(cfg, model_rng);
    yf::optim::MomentumSGD opt(model.parameters(), 0.05, 0.9);
    ag::GraphTape tape;
    tape.set_backward_threads(threads);
    ag::TapeScope scope(&tape);
    ag::Variable images(batches[0].images.clone());
    std::vector<double> losses;
    for (std::int64_t s = 0; s < steps; ++s) {
      tape.begin_step();
      const auto& b = batches[static_cast<std::size_t>(s)];
      t::copy_into(images.value(), b.images);
      opt.zero_grad();
      auto loss = ag::softmax_cross_entropy(model.forward(images), b.labels);
      loss.backward();
      opt.step();
      losses.push_back(loss.value().item());
    }
    return std::pair{losses, yf::nn::flatten_values(opt.params())};
  };

  const auto unfused = run(false, 1);
  for (const int threads : {1, 4}) {
    const auto fused = run(true, threads);
    for (std::int64_t s = 0; s < steps; ++s) {
      EXPECT_EQ(unfused.first[static_cast<std::size_t>(s)],
                fused.first[static_cast<std::size_t>(s)])
          << "loss diverged at step " << s << " threads=" << threads;
    }
    ASSERT_EQ(unfused.second.size(), fused.second.size());
    for (std::int64_t i = 0; i < unfused.second.size(); ++i) {
      EXPECT_EQ(unfused.second[i], fused.second[i])
          << "parameter " << i << " threads=" << threads;
    }
  }
}

TEST(GraphTapeFusion, StructureChangeTruncatesFusedPlanAndRefusesAfterWarmup) {
  FusionGuard guard(true);
  // Variant schedule: stable on A long enough to fuse, one B step that
  // diverges *inside* a fused chain (square -> relu at the head of the
  // second chain), then stable on B long enough to re-fuse. The whole
  // trace must match the per-step heap path bit for bit.
  const std::vector<int> schedule = {0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 1};

  auto run = [&](ag::GraphTape* tape) {
    ag::TapeScope scope(tape);
    auto x = leaf({2.0, -3.0, 0.25});
    std::vector<double> trace;
    for (const int variant : schedule) {
      if (tape) tape->begin_step();
      x.zero_grad();
      auto h = ag::tanh(ag::mul_scalar(x, 0.5));
      auto loss = variant == 0 ? ag::sum(ag::mul_scalar(ag::square(h), 2.0))
                               : ag::sum(ag::mul_scalar(ag::relu(h), 2.0));
      loss.backward();
      trace.push_back(loss.value().item());
      const auto g = x.grad().data();
      trace.insert(trace.end(), g.begin(), g.end());
    }
    return trace;
  };

  const auto heap = run(nullptr);
  ag::GraphTape tape;
  const auto taped = run(&tape);
  ASSERT_EQ(heap.size(), taped.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    EXPECT_EQ(heap[i], taped[i]) << "trace " << i;
  }
  // The pass fired at least twice: once on the initial A recording and
  // again after the final B run stabilized (counters stay consistent
  // through the truncations in between).
  EXPECT_GE(tape.fusion_rebuilds(), 2);
  EXPECT_GT(tape.fused_nodes(), 0);
  EXPECT_GT(tape.fusion_chains(), 0);
  EXPECT_GT(tape.eliminated_intermediate_bytes(), 0);
}

TEST(GraphTapeFusion, AttrChangeInsideChainRefusesWithNewScalar) {
  FusionGuard guard(true);
  // The chain *head* is a mul_scalar whose attr changes mid-run: the
  // replay mismatch truncates at the head (the whole chain), and the
  // re-fused program must bake in the *new* scalar, not the stale one.
  const std::vector<double> scales = {1.5, 1.5, 1.5, 1.5, -0.75, -0.75, -0.75, -0.75, -0.75};

  auto run = [&](ag::GraphTape* tape) {
    ag::TapeScope scope(tape);
    auto x = leaf({0.5, -1.25, 2.0});
    std::vector<double> trace;
    for (const double s : scales) {
      if (tape) tape->begin_step();
      x.zero_grad();
      auto loss = ag::sum(ag::square(ag::tanh(ag::mul_scalar(x, s))));
      loss.backward();
      trace.push_back(loss.value().item());
      const auto g = x.grad().data();
      trace.insert(trace.end(), g.begin(), g.end());
    }
    return trace;
  };

  const auto heap = run(nullptr);
  ag::GraphTape tape;
  const auto taped = run(&tape);
  ASSERT_EQ(heap.size(), taped.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    EXPECT_EQ(heap[i], taped[i]) << "trace " << i;
  }
  EXPECT_GE(tape.fusion_rebuilds(), 2);
  EXPECT_EQ(tape.fused_nodes(), 2);
}

TEST(GraphTapeFusion, InteriorValueReadMaterializesAndDissolvesChain) {
  FusionGuard guard(true);
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  auto x = leaf({0.5, -0.25, 1.5});
  ag::Variable m;
  auto step = [&] {
    tape.begin_step();
    x.zero_grad();
    m = ag::mul_scalar(x, 2.0);
    auto loss = ag::sum(ag::square(ag::tanh(m)));
    loss.backward();
    return std::pair{loss.value().item(), x.grad().clone()};
  };
  for (int i = 0; i < 4; ++i) step();
  ASSERT_EQ(tape.fused_nodes(), 2);  // mul_scalar -> tanh

  // Reading the chain-interior handle materializes its buffer with the
  // exact per-element value the unfused op would have produced, and
  // dissolves the chain (a foreign observer exists now).
  const auto& mv = m.value();
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(mv[i], 2.0 * x.value()[i]) << "element " << i;
  }
  EXPECT_EQ(tape.fused_nodes(), 0);

  // Later steps replay unfused and stay numerically on the same
  // trajectory as a fusion-off tape.
  const auto after = step();
  FusionGuard off(false);
  ag::GraphTape ref_tape;
  ag::TapeScope ref_scope(&ref_tape);
  auto xr = leaf({0.5, -0.25, 1.5});
  double ref_loss = 0.0;
  t::Tensor ref_grad;
  for (int i = 0; i < 5; ++i) {
    ref_tape.begin_step();
    xr.zero_grad();
    auto loss = ag::sum(ag::square(ag::tanh(ag::mul_scalar(xr, 2.0))));
    loss.backward();
    ref_loss = loss.value().item();
    ref_grad = xr.grad().clone();
  }
  EXPECT_EQ(after.first, ref_loss);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(after.second[i], ref_grad[i]);
}

TEST(GraphTapeGradcheck, ElementwiseChainWithFusionForcedOn) {
  // Same battery as ElementwiseChain, but pinned fused even under the
  // YF_TAPE_FUSION=off ctest variants: gradcheck's probe replays run
  // against the fused sweeps once the tape stabilizes mid-battery.
  FusionGuard guard(true);
  auto x = leaf({0.3, -0.7, 1.1, 0.0});
  auto y = leaf({0.9, 0.2, -0.4, 0.6});
  auto result = tape_gradcheck(
      [](const std::vector<ag::Variable>& in) {
        auto h = ag::sigmoid(ag::mul(in[0], in[1]));
        return ag::mean(ag::square(ag::sub(h, in[1])));
      },
      {x, y});
  EXPECT_TRUE(result.ok) << result.detail;
}
