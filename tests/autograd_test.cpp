#include "autograd/ops.hpp"
#include "autograd/variable.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace ag = yf::autograd;
namespace t = yf::tensor;

namespace {
ag::Variable leaf(std::vector<double> v, bool rg = true) {
  const auto n = static_cast<std::int64_t>(v.size());
  return ag::Variable(t::Tensor({n}, std::move(v)), rg);
}
}  // namespace

TEST(Autograd, LeafValueAndGrad) {
  auto x = leaf({1, 2});
  EXPECT_TRUE(x.requires_grad());
  // A fresh leaf has no materialized gradient: absent means zero, and
  // grad() must neither allocate nor mutate the node.
  EXPECT_FALSE(x.has_grad());
  EXPECT_EQ(x.grad().size(), 0);
  EXPECT_FALSE(x.has_grad());  // reading grad() did not materialize it
  ag::sum(x).backward();
  ASSERT_TRUE(x.has_grad());
  EXPECT_EQ(x.grad().size(), 2);
  EXPECT_EQ(x.grad()[0], 1.0);
}

TEST(Autograd, EmptyGradStoryIsExplicit) {
  auto x = leaf({1, 2, 3});
  auto y = leaf({4, 5, 6});
  // zero_grad on an absent gradient is a no-op (absent already means 0).
  x.zero_grad();
  EXPECT_FALSE(x.has_grad());
  // The empty sentinel is shared, not per-variable state.
  EXPECT_EQ(x.grad().data().data(), y.grad().data().data());
  // ensure_grad() is the explicit way to materialize dense zeros.
  x.node()->ensure_grad();
  ASSERT_TRUE(x.has_grad());
  EXPECT_EQ(x.grad().size(), 3);
  EXPECT_EQ(x.grad()[2], 0.0);
  EXPECT_FALSE(y.has_grad());
}

TEST(Autograd, UndefinedVariableThrows) {
  ag::Variable v;
  EXPECT_FALSE(v.defined());
  EXPECT_THROW(v.value(), std::logic_error);
  EXPECT_THROW(v.backward(), std::logic_error);
}

TEST(Autograd, BackwardRequiresScalar) {
  auto x = leaf({1, 2});
  EXPECT_THROW(x.backward(), std::invalid_argument);
}

TEST(Autograd, SumBackwardIsOnes) {
  auto x = leaf({1, 2, 3});
  ag::sum(x).backward();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(x.grad()[i], 1.0);
}

TEST(Autograd, MeanBackward) {
  auto x = leaf({1, 2, 3, 4});
  ag::mean(x).backward();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(x.grad()[i], 0.25);
}

TEST(Autograd, AddPropagatesToBoth) {
  auto x = leaf({1, 2});
  auto y = leaf({3, 4});
  ag::sum(ag::add(x, y)).backward();
  EXPECT_EQ(x.grad()[0], 1.0);
  EXPECT_EQ(y.grad()[1], 1.0);
}

TEST(Autograd, SubNegatesSecond) {
  auto x = leaf({1, 2});
  auto y = leaf({3, 4});
  ag::sum(ag::sub(x, y)).backward();
  EXPECT_EQ(x.grad()[0], 1.0);
  EXPECT_EQ(y.grad()[0], -1.0);
}

TEST(Autograd, MulUsesOtherValue) {
  auto x = leaf({2, 3});
  auto y = leaf({5, 7});
  ag::sum(ag::mul(x, y)).backward();
  EXPECT_EQ(x.grad()[0], 5.0);
  EXPECT_EQ(x.grad()[1], 7.0);
  EXPECT_EQ(y.grad()[0], 2.0);
}

TEST(Autograd, MulScalarScalesGrad) {
  auto x = leaf({1, 1});
  ag::sum(ag::mul_scalar(x, -3.0)).backward();
  EXPECT_EQ(x.grad()[0], -3.0);
}

TEST(Autograd, DiamondGraphAccumulates) {
  // y = sum(x + x): gradient wrt x should be 2.
  auto x = leaf({1});
  ag::sum(ag::add(x, x)).backward();
  EXPECT_EQ(x.grad()[0], 2.0);
}

TEST(Autograd, LeafGradAccumulatesAcrossBackwards) {
  auto x = leaf({1});
  ag::sum(x).backward();
  ag::sum(x).backward();
  EXPECT_EQ(x.grad()[0], 2.0);
  x.zero_grad();
  EXPECT_EQ(x.grad()[0], 0.0);
}

TEST(Autograd, NoGradLeafIsIgnored) {
  auto x = leaf({1, 2}, /*rg=*/false);
  auto y = leaf({3, 4});
  auto out = ag::sum(ag::mul(x, y));
  out.backward();
  EXPECT_EQ(y.grad()[0], 1.0);   // dx values flow
  EXPECT_FALSE(x.has_grad());    // but x gets nothing -- not even a buffer
}

TEST(Autograd, ConstantGraphBackwardIsNoop) {
  auto x = leaf({1}, false);
  auto out = ag::sum(x);
  EXPECT_FALSE(out.requires_grad());
  out.backward();  // should not throw
}

TEST(Autograd, MatmulGradShapes) {
  auto a = ag::Variable(t::Tensor({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  auto b = ag::Variable(t::Tensor({3, 2}, {1, 0, 0, 1, 1, 1}), true);
  ag::sum(ag::matmul(a, b)).backward();
  EXPECT_EQ(a.grad().shape(), (t::Shape{2, 3}));
  EXPECT_EQ(b.grad().shape(), (t::Shape{3, 2}));
}

TEST(Autograd, ReshapeGradMapsBack) {
  auto a = ag::Variable(t::Tensor({2, 2}, {1, 2, 3, 4}), true);
  auto r = ag::reshape(a, {4});
  ag::sum(ag::mul(r, r)).backward();
  EXPECT_EQ(a.grad().at({0, 1}), 4.0);  // d(x^2) = 2x
}

TEST(Autograd, SliceColsValuesAndGrad) {
  auto a = ag::Variable(t::Tensor({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  auto s = ag::slice_cols(a, 1, 3);
  EXPECT_EQ(s.value().at({0, 0}), 2.0);
  EXPECT_EQ(s.value().at({1, 1}), 6.0);
  ag::sum(s).backward();
  EXPECT_EQ(a.grad().at({0, 0}), 0.0);
  EXPECT_EQ(a.grad().at({0, 1}), 1.0);
  EXPECT_EQ(a.grad().at({1, 2}), 1.0);
}

TEST(Autograd, SliceColsBadRangeThrows) {
  auto a = ag::Variable(t::Tensor({2, 3}), true);
  EXPECT_THROW(ag::slice_cols(a, 2, 2), std::invalid_argument);
  EXPECT_THROW(ag::slice_cols(a, 0, 4), std::invalid_argument);
}

TEST(Autograd, ConcatColsRoundTrip) {
  auto a = ag::Variable(t::Tensor({2, 1}, {1, 3}), true);
  auto b = ag::Variable(t::Tensor({2, 2}, {4, 5, 6, 7}), true);
  auto c = ag::concat_cols({a, b});
  EXPECT_EQ(c.value().shape(), (t::Shape{2, 3}));
  EXPECT_EQ(c.value().at({0, 1}), 4.0);
  EXPECT_EQ(c.value().at({1, 0}), 3.0);
  ag::sum(c).backward();
  EXPECT_EQ(a.grad().at({1, 0}), 1.0);
  EXPECT_EQ(b.grad().at({0, 1}), 1.0);
}

TEST(Autograd, TransposeGrad) {
  auto a = ag::Variable(t::Tensor({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  auto at = ag::transpose(a);
  EXPECT_EQ(at.value().shape(), (t::Shape{3, 2}));
  ag::sum(ag::mul(at, at)).backward();
  EXPECT_EQ(a.grad().at({1, 2}), 12.0);  // 2x with x = 6
}

TEST(Autograd, SoftmaxRowsSumToOne) {
  auto a = ag::Variable(t::Tensor({2, 3}, {1, 2, 3, -1, 0, 1}), true);
  auto p = ag::softmax(a);
  for (int r = 0; r < 2; ++r) {
    double s = 0.0;
    for (int c = 0; c < 3; ++c) s += p.value().at({r, c});
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Autograd, SoftmaxCrossEntropyMatchesManual) {
  // Uniform logits: loss = log(C).
  auto a = ag::Variable(t::Tensor({1, 4}), true);
  auto loss = ag::softmax_cross_entropy(a, {2});
  EXPECT_NEAR(loss.value().item(), std::log(4.0), 1e-12);
  loss.backward();
  // grad = (p - onehot)/B: p = 1/4 everywhere.
  EXPECT_NEAR(a.grad().at({0, 0}), 0.25, 1e-12);
  EXPECT_NEAR(a.grad().at({0, 2}), -0.75, 1e-12);
}

TEST(Autograd, SoftmaxCrossEntropyLabelChecks) {
  auto a = ag::Variable(t::Tensor({2, 3}), true);
  EXPECT_THROW(ag::softmax_cross_entropy(a, {0}), std::invalid_argument);
  EXPECT_THROW(ag::softmax_cross_entropy(a, {0, 3}), std::out_of_range);
}

TEST(Autograd, SoftmaxCrossEntropyIsStableForHugeLogits) {
  auto a = ag::Variable(t::Tensor({1, 2}, {1000.0, 0.0}), true);
  auto loss = ag::softmax_cross_entropy(a, {0});
  EXPECT_NEAR(loss.value().item(), 0.0, 1e-9);
}

TEST(Autograd, EmbeddingLookupAndScatter) {
  auto w = ag::Variable(t::Tensor({3, 2}, {0, 1, 10, 11, 20, 21}), true);
  auto e = ag::embedding(w, {2, 0, 2});
  EXPECT_EQ(e.value().shape(), (t::Shape{3, 2}));
  EXPECT_EQ(e.value().at({0, 1}), 21.0);
  ag::sum(e).backward();
  EXPECT_EQ(w.grad().at({2, 0}), 2.0);  // index 2 used twice
  EXPECT_EQ(w.grad().at({1, 0}), 0.0);
  EXPECT_EQ(w.grad().at({0, 1}), 1.0);
}

TEST(Autograd, EmbeddingIndexOutOfRangeThrows) {
  auto w = ag::Variable(t::Tensor({3, 2}), true);
  EXPECT_THROW(ag::embedding(w, {3}), std::out_of_range);
}

TEST(Autograd, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  auto x = ag::Variable(t::Tensor({1, 1, 2, 2}, {1, 2, 3, 4}), true);
  auto w = ag::Variable(t::Tensor({1, 1, 1, 1}, {1}), true);
  auto b = ag::Variable(t::Tensor({1}), true);
  auto y = ag::conv2d(x, w, b, 1, 0);
  EXPECT_TRUE(t::allclose(y.value(), x.value()));
  ag::sum(y).backward();
  EXPECT_EQ(w.grad()[0], 10.0);  // sum of inputs
  EXPECT_EQ(b.grad()[0], 4.0);   // output count
}

TEST(Autograd, Conv2dOutputShape) {
  auto x = ag::Variable(t::Tensor({2, 3, 8, 8}), true);
  auto w = ag::Variable(t::Tensor({5, 3, 3, 3}), true);
  auto b = ag::Variable(t::Tensor({5}), true);
  EXPECT_EQ(ag::conv2d(x, w, b, 1, 1).value().shape(), (t::Shape{2, 5, 8, 8}));
  EXPECT_EQ(ag::conv2d(x, w, b, 2, 1).value().shape(), (t::Shape{2, 5, 4, 4}));
}

TEST(Autograd, Conv2dRejectsBadShapes) {
  auto x = ag::Variable(t::Tensor({1, 2, 4, 4}), true);
  auto w = ag::Variable(t::Tensor({1, 3, 3, 3}), true);  // channel mismatch
  auto b = ag::Variable(t::Tensor({1}), true);
  EXPECT_THROW(ag::conv2d(x, w, b, 1, 1), std::invalid_argument);
}

TEST(Autograd, GlobalAvgPool) {
  auto x = ag::Variable(t::Tensor({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40}), true);
  auto y = ag::global_avg_pool(x);
  EXPECT_EQ(y.value().shape(), (t::Shape{1, 2}));
  EXPECT_NEAR(y.value().at({0, 0}), 2.5, 1e-12);
  EXPECT_NEAR(y.value().at({0, 1}), 25.0, 1e-12);
  ag::sum(y).backward();
  EXPECT_NEAR(x.grad()[0], 0.25, 1e-12);
}

TEST(Autograd, AvgPool2x2) {
  auto x = ag::Variable(t::Tensor({1, 1, 2, 2}, {1, 2, 3, 4}), true);
  auto y = ag::avg_pool2x2(x);
  EXPECT_EQ(y.value().shape(), (t::Shape{1, 1, 1, 1}));
  EXPECT_NEAR(y.value()[0], 2.5, 1e-12);
}

TEST(Autograd, ActivationValues) {
  auto x = leaf({-1.0, 0.0, 2.0});
  EXPECT_TRUE(t::allclose(ag::relu(x).value(), t::Tensor({3}, {0, 0, 2})));
  EXPECT_NEAR(ag::sigmoid(leaf({0.0})).value()[0], 0.5, 1e-12);
  EXPECT_NEAR(ag::tanh(leaf({0.0})).value()[0], 0.0, 1e-12);
}
