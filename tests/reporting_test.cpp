#include "train/reporting.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace train = yf::train;

TEST(Reporting, FmtBasics) {
  EXPECT_EQ(train::fmt(1.5), "1.5");
  EXPECT_EQ(train::fmt(0.123456, 3), "0.123");
  EXPECT_EQ(train::fmt_speedup(1.931), "1.93x");
  EXPECT_EQ(train::fmt_speedup(0.5), "0.50x");
}

TEST(Reporting, WriteCsvRoundTrip) {
  const std::string path = "/tmp/yf_reporting_test.csv";
  train::write_csv(path, {"a", "b"}, {{1.0, 2.0, 3.0}, {10.0}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,10");
  std::getline(in, line);
  EXPECT_EQ(line, "2,");  // ragged columns leave trailing cells empty
  std::getline(in, line);
  EXPECT_EQ(line, "3,");
  std::remove(path.c_str());
}

TEST(Reporting, WriteCsvSizeMismatchThrows) {
  EXPECT_THROW(train::write_csv("/tmp/x.csv", {"a"}, {{1.0}, {2.0}}), std::invalid_argument);
}

TEST(Reporting, WriteCsvBadPathThrows) {
  EXPECT_THROW(train::write_csv("/nonexistent_dir_zz/x.csv", {"a"}, {{1.0}}),
               std::runtime_error);
}

TEST(Reporting, PrintHelpersDoNotThrow) {
  // Smoke tests: console printers must handle edge cases without crashing.
  train::print_table("t", {{"h1", "h2"}, {"a", "b"}, {"longer-cell"}});
  train::print_table("empty", {});
  train::print_series("s", {1.0, 2.0, 3.0}, 2);
  train::print_series("one", {42.0});
  train::print_series("empty", {});
  SUCCEED();
}
