#include <gtest/gtest.h>

#include "tensor/ops.hpp"

#include <cmath>
#include <set>

#include "data/batching.hpp"
#include "data/bracket_lang.hpp"
#include "data/copy_translate.hpp"
#include "data/markov_text.hpp"
#include "data/synth_cifar.hpp"
#include "data/zipf_text.hpp"

namespace data = yf::data;
namespace t = yf::tensor;

TEST(SynthCifar, BatchShapes) {
  data::SynthCifarConfig cfg;
  cfg.classes = 4;
  cfg.height = 8;
  cfg.width = 8;
  data::SynthCifar ds(cfg);
  t::Rng rng(1);
  const auto b = ds.sample(6, rng);
  EXPECT_EQ(b.images.shape(), (t::Shape{6, 3, 8, 8}));
  EXPECT_EQ(b.labels.size(), 6u);
  for (auto l : b.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

TEST(SynthCifar, PrototypesFixedBySeed) {
  data::SynthCifarConfig cfg;
  cfg.seed = 5;
  data::SynthCifar a(cfg), b(cfg);
  EXPECT_TRUE(t::allclose(a.prototype(0), b.prototype(0)));
  cfg.seed = 6;
  data::SynthCifar c(cfg);
  EXPECT_FALSE(t::allclose(a.prototype(0), c.prototype(0)));
}

TEST(SynthCifar, SamplesClusterAroundPrototype) {
  data::SynthCifarConfig cfg;
  cfg.classes = 2;
  cfg.noise = 0.1;
  cfg.jitter = 0.0;
  data::SynthCifar ds(cfg);
  t::Rng rng(2);
  // Average many same-class samples: should approach the prototype.
  t::Tensor acc(ds.prototype(0).shape());
  int count = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto b = ds.sample(1, rng);
    if (b.labels[0] != 0) continue;
    acc.add_(b.images.reshape(acc.shape()));
    ++count;
  }
  ASSERT_GT(count, 100);
  acc.mul_(1.0 / count);
  EXPECT_LT(t::max_abs_diff(acc, ds.prototype(0)), 0.15);
}

TEST(SynthCifar, ValidationBatchDeterministic) {
  data::SynthCifar ds(data::SynthCifarConfig{});
  const auto a = ds.validation_batch(4);
  const auto b = ds.validation_batch(4);
  EXPECT_TRUE(t::allclose(a.images, b.images));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(MarkovText, TransitionRowsAreDistributions) {
  data::MarkovText mt(data::MarkovTextConfig{});
  for (std::int64_t s = 0; s < mt.config().vocab; s += 13) {
    const auto& row = mt.transition_row(s);
    double total = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovText, BatchShapeAndRange) {
  data::MarkovTextConfig cfg;
  cfg.vocab = 12;
  data::MarkovText mt(cfg);
  t::Rng rng(3);
  const auto batch = mt.sample_batch(4, 9, rng);
  EXPECT_EQ(batch.size(), 36u);
  for (auto tok : batch) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, 12);
  }
}

TEST(MarkovText, EmpiricalTransitionsMatchTable) {
  data::MarkovTextConfig cfg;
  cfg.vocab = 5;
  cfg.seed = 11;
  data::MarkovText mt(cfg);
  t::Rng rng(4);
  // Long chains; count transitions from symbol 0.
  std::vector<double> counts(5, 0.0);
  double total = 0.0;
  const auto stream = mt.sample_batch(1, 200000, rng);
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    if (stream[i] == 0) {
      counts[static_cast<std::size_t>(stream[i + 1])] += 1.0;
      total += 1.0;
    }
  }
  ASSERT_GT(total, 1000.0);
  const auto& row = mt.transition_row(0);
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(j)] / total, row[static_cast<std::size_t>(j)],
                0.02);
  }
}

TEST(MarkovText, RejectsBadConfig) {
  data::MarkovTextConfig cfg;
  cfg.vocab = 1;
  EXPECT_THROW(data::MarkovText{cfg}, std::invalid_argument);
}

TEST(ZipfText, UnigramIsZipfian) {
  data::ZipfTextConfig cfg;
  cfg.vocab = 100;
  cfg.zipf_exponent = 1.0;
  data::ZipfText zt(cfg);
  const auto& u = zt.unigram();
  EXPECT_NEAR(u[0] / u[9], 10.0, 1e-9);  // p(rank1)/p(rank10) = 10 for s=1
  double total = 0.0;
  for (double p : u) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfText, BatchShapeAndRange) {
  data::ZipfTextConfig cfg;
  cfg.vocab = 50;
  data::ZipfText zt(cfg);
  t::Rng rng(5);
  const auto batch = zt.sample_batch(3, 21, rng);
  EXPECT_EQ(batch.size(), 63u);
  for (auto tok : batch) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, 50);
  }
}

TEST(ZipfText, HeadTokensDominate) {
  data::ZipfText zt(data::ZipfTextConfig{});
  t::Rng rng(6);
  const auto batch = zt.sample_batch(1, 20000, rng);
  std::size_t head = 0;
  for (auto tok : batch) {
    if (tok < 10) ++head;
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(batch.size()), 0.4);
}

TEST(BracketLang, TreesAreBalanced) {
  data::BracketLang bl(data::BracketLangConfig{});
  t::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto tree = bl.sample_tree(rng);
    std::int64_t depth = 0;
    for (auto tok : tree) {
      if (tok == data::BracketLang::kOpen) ++depth;
      if (tok == data::BracketLang::kClose) --depth;
      EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(tree.front(), data::BracketLang::kOpen);
    EXPECT_EQ(tree.back(), data::BracketLang::kClose);
  }
}

TEST(BracketLang, TokensInVocabRange) {
  data::BracketLangConfig cfg;
  cfg.labels = 3;
  cfg.terminals = 4;
  data::BracketLang bl(cfg);
  t::Rng rng(8);
  const auto batch = bl.sample_batch(2, 31, rng);
  EXPECT_EQ(batch.size(), 62u);
  for (auto tok : batch) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, bl.vocab());
  }
}

TEST(BracketLang, F1PerfectAndWorst) {
  using BL = data::BracketLang;
  const std::vector<std::int64_t> target = {BL::kOpen, 2, 5, BL::kClose};
  EXPECT_EQ(BL::bracket_f1(target, target), 1.0);
  const std::vector<std::int64_t> wrong = {5, 5, BL::kOpen, 2};
  EXPECT_EQ(BL::bracket_f1(wrong, target), 0.0);
}

TEST(BracketLang, F1PartialCredit) {
  using BL = data::BracketLang;
  const std::vector<std::int64_t> target = {BL::kOpen, BL::kClose, 4, 4};
  const std::vector<std::int64_t> pred = {BL::kOpen, 4, 4, 4};  // tp=1, fn=1
  EXPECT_NEAR(BL::bracket_f1(pred, target), 2.0 / 3.0, 1e-12);
}

TEST(CopyTranslate, TargetIsReversedPermutedSource) {
  data::CopyTranslateConfig cfg;
  cfg.vocab = 6;
  cfg.src_len = 4;
  data::CopyTranslate ct(cfg);
  t::Rng rng(9);
  const auto b = ct.sample(2, rng);
  EXPECT_EQ(b.src.size(), 8u);
  EXPECT_EQ(b.tgt.size(), 12u);
  for (std::int64_t i = 0; i < 2; ++i) {
    EXPECT_EQ(b.tgt[static_cast<std::size_t>(i * 6)], ct.bos());
    EXPECT_EQ(b.tgt[static_cast<std::size_t>(i * 6 + 5)], ct.eos());
    for (std::int64_t t_i = 0; t_i < 4; ++t_i) {
      const auto src_tok = b.src[static_cast<std::size_t>(i * 4 + (3 - t_i))];
      EXPECT_EQ(b.tgt[static_cast<std::size_t>(i * 6 + 1 + t_i)],
                ct.permutation()[static_cast<std::size_t>(src_tok)]);
    }
  }
}

TEST(CopyTranslate, PermutationIsBijective) {
  data::CopyTranslate ct(data::CopyTranslateConfig{});
  std::set<std::int64_t> seen(ct.permutation().begin(), ct.permutation().end());
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), ct.src_vocab());
}

TEST(Batching, ArgmaxRows) {
  const std::vector<double> scores = {0.1, 0.9, 0.0, 5.0, -2.0, 1.0};
  const auto am = data::argmax_rows(scores, 2, 3);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
  EXPECT_THROW(data::argmax_rows(scores, 2, 2), std::invalid_argument);
}

TEST(Batching, TokenAccuracy) {
  EXPECT_NEAR(data::token_accuracy({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75, 1e-12);
  EXPECT_THROW(data::token_accuracy({1}, {1, 2}), std::invalid_argument);
}
