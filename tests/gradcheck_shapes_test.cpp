// Shape-parameterized gradient checks: the same ops must stay correct
// across batch sizes, feature widths, and degenerate (size-1) extents.
#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "tensor/random.hpp"

namespace ag = yf::autograd;
namespace t = yf::tensor;

namespace {

struct ShapeCase {
  std::int64_t m, k, n;
};

std::string shape_name(const ::testing::TestParamInfo<ShapeCase>& info) {
  return std::to_string(info.param.m) + "x" + std::to_string(info.param.k) + "x" +
         std::to_string(info.param.n);
}

class MatmulShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MatmulShapes, Gradcheck) {
  const auto& [m, k, n] = GetParam();
  t::Rng rng(11);
  auto a = ag::Variable(rng.normal_tensor({m, k}), true);
  auto b = ag::Variable(rng.normal_tensor({k, n}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::matmul(in[0], in[1])));
  };
  const auto result = ag::gradcheck(fn, {a, b});
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulShapes,
                         ::testing::Values(ShapeCase{1, 1, 1}, ShapeCase{1, 5, 1},
                                           ShapeCase{4, 1, 3}, ShapeCase{2, 7, 3},
                                           ShapeCase{6, 2, 6}),
                         shape_name);

struct ConvCase {
  std::int64_t n, c, hw, f, k, stride, pad;
};

std::string conv_name(const ::testing::TestParamInfo<ConvCase>& info) {
  const auto& p = info.param;
  return "n" + std::to_string(p.n) + "c" + std::to_string(p.c) + "hw" + std::to_string(p.hw) +
         "f" + std::to_string(p.f) + "k" + std::to_string(p.k) + "s" + std::to_string(p.stride) +
         "p" + std::to_string(p.pad);
}

class ConvShapes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapes, Gradcheck) {
  const auto& p = GetParam();
  t::Rng rng(13);
  auto x = ag::Variable(rng.normal_tensor({p.n, p.c, p.hw, p.hw}), true);
  auto w = ag::Variable(rng.normal_tensor({p.f, p.c, p.k, p.k}, 0.0, 0.5), true);
  auto b = ag::Variable(rng.normal_tensor({p.f}), true);
  auto fn = [&p](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::conv2d(in[0], in[1], in[2], p.stride, p.pad)));
  };
  const auto result = ag::gradcheck(fn, {x, w, b}, 1e-5, 1e-5, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvShapes,
                         ::testing::Values(ConvCase{1, 1, 3, 1, 1, 1, 0},   // 1x1 conv
                                           ConvCase{1, 1, 4, 2, 3, 1, 1},   // same-pad 3x3
                                           ConvCase{2, 2, 4, 2, 3, 2, 1},   // stride 2
                                           ConvCase{1, 3, 5, 2, 3, 1, 0},   // valid conv
                                           ConvCase{1, 1, 5, 1, 5, 1, 2}),  // kernel = input
                         conv_name);

struct BnCase {
  std::int64_t n, c, hw;
};

class BnShapes : public ::testing::TestWithParam<BnCase> {};

TEST_P(BnShapes, Gradcheck) {
  const auto& p = GetParam();
  t::Rng rng(17);
  auto x = ag::Variable(rng.normal_tensor({p.n, p.c, p.hw, p.hw}), true);
  auto gamma = ag::Variable(rng.uniform_tensor({p.c}, 0.5, 1.5), true);
  auto beta = ag::Variable(rng.normal_tensor({p.c}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::batch_norm2d(in[0], in[1], in[2])));
  };
  const auto result = ag::gradcheck(fn, {x, gamma, beta}, 1e-5, 1e-5, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnShapes,
                         ::testing::Values(BnCase{2, 1, 2}, BnCase{2, 3, 2}, BnCase{4, 2, 3}),
                         [](const ::testing::TestParamInfo<BnCase>& info) {
                           return "n" + std::to_string(info.param.n) + "c" +
                                  std::to_string(info.param.c) + "hw" +
                                  std::to_string(info.param.hw);
                         });

struct EmbedCase {
  std::int64_t vocab, dim;
  std::vector<std::int64_t> indices;
};

class EmbeddingShapes : public ::testing::TestWithParam<EmbedCase> {};

TEST_P(EmbeddingShapes, Gradcheck) {
  const auto& p = GetParam();
  t::Rng rng(19);
  auto w = ag::Variable(rng.normal_tensor({p.vocab, p.dim}), true);
  auto fn = [&p](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::embedding(in[0], p.indices)));
  };
  const auto result = ag::gradcheck(fn, {w});
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmbeddingShapes,
    ::testing::Values(EmbedCase{2, 1, {0}}, EmbedCase{3, 2, {2, 2, 2}},  // repeated index
                      EmbedCase{5, 3, {0, 4, 1, 4}}),
    [](const ::testing::TestParamInfo<EmbedCase>& info) {
      return "v" + std::to_string(info.param.vocab) + "d" + std::to_string(info.param.dim) +
             "b" + std::to_string(info.param.indices.size());
    });

// Cross-entropy across batch/class extents, including 2-class edge case.
struct CeCase {
  std::int64_t batch, classes;
};

class CrossEntropyShapes : public ::testing::TestWithParam<CeCase> {};

TEST_P(CrossEntropyShapes, Gradcheck) {
  const auto& p = GetParam();
  t::Rng rng(23);
  auto logits = ag::Variable(rng.normal_tensor({p.batch, p.classes}), true);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(p.batch));
  for (std::int64_t i = 0; i < p.batch; ++i) {
    labels[static_cast<std::size_t>(i)] = i % p.classes;
  }
  auto fn = [&labels](const std::vector<ag::Variable>& in) {
    return ag::softmax_cross_entropy(in[0], labels);
  };
  const auto result = ag::gradcheck(fn, {logits});
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossEntropyShapes,
                         ::testing::Values(CeCase{1, 2}, CeCase{3, 2}, CeCase{2, 10},
                                           CeCase{8, 5}),
                         [](const ::testing::TestParamInfo<CeCase>& info) {
                           return "b" + std::to_string(info.param.batch) + "c" +
                                  std::to_string(info.param.classes);
                         });

}  // namespace
