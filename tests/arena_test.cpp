#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/kernels/backend.hpp"

#include "optim/adagrad.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "optim/rmsprop.hpp"
#include "optim/sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace core = yf::core;
namespace t = yf::tensor;

namespace {

std::vector<ag::Variable> make_params(const std::vector<t::Shape>& shapes, std::uint64_t seed) {
  t::Rng rng(seed);
  std::vector<ag::Variable> params;
  for (const auto& s : shapes) params.emplace_back(rng.normal_tensor(s), true);
  return params;
}

}  // namespace

TEST(ParamArena, ViewsAliasParameterStorage) {
  auto params = make_params({{2, 3}, {4}, {1, 5}}, 1);
  core::ParamArena arena(params);
  ASSERT_EQ(arena.size(), 6 + 4 + 5);
  ASSERT_EQ(arena.count(), 3u);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i].value().shares_storage_with(arena.values_tensor())) << i;
    EXPECT_TRUE(params[i].grad().shares_storage_with(arena.grads_tensor())) << i;
  }
  // Writes through the arena are visible through the parameter, and
  // vice versa.
  arena.values()[0] = 42.0;
  EXPECT_EQ(params[0].value()[0], 42.0);
  params[1].value()[2] = -7.0;
  EXPECT_EQ(arena.values()[static_cast<std::size_t>(arena.offset(1)) + 2], -7.0);
}

TEST(ParamArena, FlatteningPreservesShapesAndValues) {
  auto params = make_params({{3, 2}, {7}}, 2);
  std::vector<t::Tensor> before;
  for (const auto& p : params) before.push_back(p.value().clone());
  core::ParamArena arena(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i].value().shape(), before[i].shape());
    EXPECT_EQ(arena.shape(i), before[i].shape());
    const auto now = params[i].value().data();
    const auto then = before[i].data();
    for (std::size_t j = 0; j < now.size(); ++j) EXPECT_EQ(now[j], then[j]) << i << "," << j;
  }
  // Slots are laid out contiguously in registration order.
  EXPECT_EQ(arena.offset(0), 0);
  EXPECT_EQ(arena.offset(1), 6);
}

TEST(ParamArena, PreservesPreexistingGradients) {
  auto params = make_params({{4}}, 3);
  params[0].node()->ensure_grad()[1] = 3.25;
  core::ParamArena arena(params);
  EXPECT_EQ(params[0].grad()[1], 3.25);
  EXPECT_EQ(arena.grads()[1], 3.25);
}

TEST(ParamArena, DeduplicatesTiedParameters) {
  auto params = make_params({{3}, {2}}, 4);
  std::vector<ag::Variable> with_dup = {params[0], params[1], params[0]};  // tied
  core::ParamArena arena(with_dup);
  EXPECT_EQ(arena.count(), 2u);
  EXPECT_EQ(arena.size(), 5);
}

TEST(ParamArena, BuffersOutliveArena) {
  auto params = make_params({{3}}, 5);
  {
    core::ParamArena arena(params);
    arena.values()[0] = 1.5;
  }
  // Arena destroyed: the parameter still owns (a view of) the storage.
  EXPECT_EQ(params[0].value()[0], 1.5);
  params[0].value()[1] = 2.5;
  EXPECT_EQ(params[0].value()[1], 2.5);
}

TEST(ParamArena, MakeBufferAndViewAlign) {
  auto params = make_params({{2, 2}, {3}}, 6);
  core::ParamArena arena(params);
  auto buf = arena.make_buffer();
  ASSERT_EQ(buf.size(), 7);
  auto view1 = arena.view(buf, 1);
  EXPECT_EQ(view1.shape(), (t::Shape{3}));
  EXPECT_TRUE(view1.shares_storage_with(buf));
  view1[0] = 9.0;
  EXPECT_EQ(buf[4], 9.0);
}

TEST(ParamArena, SecondArenaAdoptsFirstArenasBuffers) {
  auto params = make_params({{3, 2}, {4}}, 7);
  core::ParamArena first(params);
  core::ParamArena second(params);
  // Adoption, not re-flattening: both arenas alias the same storage, so
  // an optimizer holding either stays live.
  EXPECT_TRUE(second.values_tensor().shares_storage_with(first.values_tensor()));
  EXPECT_TRUE(second.grads_tensor().shares_storage_with(first.grads_tensor()));
  second.values()[0] = 3.5;
  EXPECT_EQ(first.values()[0], 3.5);
}

TEST(ParamArena, TwoOptimizersOverSameParamsBothWork) {
  // Seed drop-in-replacement semantics: several optimizers over one
  // model must all update the visible parameters.
  auto params = make_params({{4}}, 8);
  yf::optim::SGD a(params, 0.5);
  yf::optim::SGD b(params, 0.5);
  const double x0 = params[0].value()[0];
  params[0].node()->ensure_grad().fill(1.0);
  a.step();
  EXPECT_NEAR(params[0].value()[0], x0 - 0.5, 1e-15) << "first optimizer must stay attached";
  b.step();
  EXPECT_NEAR(params[0].value()[0], x0 - 1.0, 1e-15);
}

TEST(ParamArena, DifferentOrderRearenasWithoutDataLoss) {
  auto params = make_params({{2}, {3}}, 9);
  core::ParamArena first(params);
  first.values()[0] = 11.0;
  std::vector<ag::Variable> reversed = {params[1], params[0]};
  core::ParamArena second(reversed);  // order differs: fresh flatten
  EXPECT_FALSE(second.values_tensor().shares_storage_with(first.values_tensor()));
  EXPECT_EQ(params[0].value()[0], 11.0) << "values migrate into the new arena";
}

TEST(ParamArena, RejectsEmptyAndUndefined) {
  EXPECT_THROW(core::ParamArena({}), std::invalid_argument);
  std::vector<ag::Variable> bad(1);  // default-constructed: undefined
  EXPECT_THROW(core::ParamArena arena(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trajectory identity: each fused-arena optimizer must follow the naive
// per-parameter reference within 1e-12 on a noisy quadratic, and must be
// invariant to how the parameter vector is partitioned into tensors.
// ---------------------------------------------------------------------------

namespace {

/// Noisy-quadratic gradient: g = h .* x + noise, deterministic per seed.
void quad_grads(std::vector<ag::Variable>& params, double h, t::Rng& rng) {
  for (auto& p : params) {
    const auto x = p.value().data();
    auto g = p.node()->ensure_grad().data();
    for (std::size_t j = 0; j < g.size(); ++j) g[j] = h * x[j] + 0.01 * rng.normal();
  }
}

/// Flatten current values of `params` for comparison.
std::vector<double> flat_values(const std::vector<ag::Variable>& params) {
  std::vector<double> out;
  for (const auto& p : params) {
    const auto v = p.value().data();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

/// Run `steps` noisy-quadratic iterations of `opt` over `params` and
/// return the final flat iterate. Gradient noise is deterministic.
template <typename MakeOpt>
std::vector<double> run_trajectory(const std::vector<t::Shape>& shapes, MakeOpt make_opt,
                                   int steps) {
  auto params = make_params(shapes, 77);
  auto opt = make_opt(params);
  t::Rng noise(123);
  for (int s = 0; s < steps; ++s) {
    opt->zero_grad();
    quad_grads(params, 1.3, noise);
    opt->step();
  }
  return flat_values(params);
}

void expect_close(const std::vector<double>& a, const std::vector<double>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], tol) << i;
}

const std::vector<t::Shape> kSplit = {{5, 3}, {8}, {2, 6}, {1}};   // 36 scalars
const std::vector<t::Shape> kWhole = {{36}};                       // same vector, one tensor

}  // namespace

TEST(ArenaTrajectory, SgdMatchesNaiveReference) {
  auto fused = run_trajectory(
      kSplit, [](auto& p) { return std::make_unique<yf::optim::SGD>(p, 0.05); }, 200);
  // Naive reference: plain per-element loop on a copy of the same problem.
  auto params = make_params(kSplit, 77);
  t::Rng noise(123);
  for (int s = 0; s < 200; ++s) {
    quad_grads(params, 1.3, noise);
    for (auto& p : params) {
      auto x = p.value().data();
      const auto g = p.grad().data();
      for (std::size_t j = 0; j < x.size(); ++j) x[j] += -0.05 * g[j];
    }
  }
  expect_close(fused, flat_values(params), 1e-12);
}

TEST(ArenaTrajectory, MomentumMatchesNaiveReference) {
  for (bool nesterov : {false, true}) {
    auto fused = run_trajectory(
        kSplit,
        [&](auto& p) { return std::make_unique<yf::optim::MomentumSGD>(p, 0.02, 0.9, nesterov); },
        200);
    auto params = make_params(kSplit, 77);
    std::vector<std::vector<double>> vel;
    for (auto& p : params) vel.emplace_back(static_cast<std::size_t>(p.value().size()), 0.0);
    t::Rng noise(123);
    for (int s = 0; s < 200; ++s) {
      quad_grads(params, 1.3, noise);
      for (std::size_t i = 0; i < params.size(); ++i) {
        auto x = params[i].value().data();
        const auto g = params[i].grad().data();
        auto& v = vel[i];
        for (std::size_t j = 0; j < x.size(); ++j) {
          v[j] = 0.9 * v[j] - 0.02 * g[j];
          if (nesterov) {
            x[j] += 0.9 * v[j] - 0.02 * g[j];
          } else {
            x[j] += v[j];
          }
        }
      }
    }
    expect_close(fused, flat_values(params), 1e-12);
  }
}

TEST(ArenaTrajectory, AdamMatchesNaiveReference) {
  auto fused = run_trajectory(
      kSplit, [](auto& p) { return std::make_unique<yf::optim::Adam>(p, 0.01); }, 200);
  auto params = make_params(kSplit, 77);
  std::vector<std::vector<double>> m, v;
  for (auto& p : params) {
    m.emplace_back(static_cast<std::size_t>(p.value().size()), 0.0);
    v.emplace_back(static_cast<std::size_t>(p.value().size()), 0.0);
  }
  t::Rng noise(123);
  const double lr = 0.01, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  for (int s = 0; s < 200; ++s) {
    quad_grads(params, 1.3, noise);
    const double bc1 = 1.0 - std::pow(b1, s + 1.0), bc2 = 1.0 - std::pow(b2, s + 1.0);
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto x = params[i].value().data();
      const auto g = params[i].grad().data();
      for (std::size_t j = 0; j < x.size(); ++j) {
        m[i][j] = b1 * m[i][j] + (1 - b1) * g[j];
        v[i][j] = b2 * v[i][j] + (1 - b2) * g[j] * g[j];
        x[j] -= lr * (m[i][j] / bc1) / (std::sqrt(v[i][j] / bc2) + eps);
      }
    }
  }
  expect_close(fused, flat_values(params), 1e-12);
}

TEST(ArenaTrajectory, ScalarVsSimdBackendBitIdentical) {
  // The SIMD backend must not move a single trajectory bit: elementwise
  // kernels keep per-element arithmetic, and reductions follow the same
  // canonical lane-blocked order on both backends (kernel_table.hpp), so
  // even the YellowFin tuner (whose lr/mu come from measured reductions)
  // is pinned with EXPECT_EQ, not a tolerance.
  if (!core::simd_supported()) GTEST_SKIP() << "no AVX2 on this machine";
  using OptFactory =
      std::function<std::unique_ptr<yf::optim::Optimizer>(std::vector<ag::Variable>&)>;
  const std::vector<std::pair<const char*, OptFactory>> factories = {
      {"sgd", [](auto& p) { return std::make_unique<yf::optim::SGD>(p, 0.05); }},
      {"momentum", [](auto& p) { return std::make_unique<yf::optim::MomentumSGD>(p, 0.02, 0.9); }},
      {"adam", [](auto& p) { return std::make_unique<yf::optim::Adam>(p, 0.01); }},
      {"adagrad", [](auto& p) { return std::make_unique<yf::optim::AdaGrad>(p, 0.05); }},
      {"rmsprop", [](auto& p) { return std::make_unique<yf::optim::RMSProp>(p, 0.01); }},
      {"yellowfin", [](auto& p) {
         yf::tuner::YellowFinOptions opts;
         opts.beta = 0.99;
         return std::make_unique<yf::tuner::YellowFin>(p, opts);
       }}};
  const auto previous = core::active_kernel_backend();
  for (const auto& [name, make_opt] : factories) {
    core::set_kernel_backend(core::KernelBackend::kScalar);
    const auto scalar_traj = run_trajectory(kSplit, make_opt, 150);
    core::set_kernel_backend(core::KernelBackend::kSimd);
    const auto simd_traj = run_trajectory(kSplit, make_opt, 150);
    ASSERT_EQ(scalar_traj.size(), simd_traj.size()) << name;
    for (std::size_t i = 0; i < scalar_traj.size(); ++i) {
      EXPECT_EQ(scalar_traj[i], simd_traj[i]) << name << " @" << i;
    }
  }
  core::set_kernel_backend(previous);
}

TEST(ArenaTrajectory, PartitionInvariance) {
  // Flattening erases tensor boundaries: splitting the same 36-vector
  // into 4 tensors or keeping it whole must give identical trajectories
  // for every optimizer, including the YellowFin tuner.
  using OptFactory =
      std::function<std::unique_ptr<yf::optim::Optimizer>(std::vector<ag::Variable>&)>;
  const std::vector<std::pair<const char*, OptFactory>> factories = {
      {"sgd", [](auto& p) { return std::make_unique<yf::optim::SGD>(p, 0.05); }},
      {"momentum", [](auto& p) { return std::make_unique<yf::optim::MomentumSGD>(p, 0.02, 0.9); }},
      {"adam", [](auto& p) { return std::make_unique<yf::optim::Adam>(p, 0.01); }},
      {"adagrad", [](auto& p) { return std::make_unique<yf::optim::AdaGrad>(p, 0.05); }},
      {"rmsprop", [](auto& p) { return std::make_unique<yf::optim::RMSProp>(p, 0.01); }},
      {"yellowfin", [](auto& p) {
         yf::tuner::YellowFinOptions opts;
         opts.beta = 0.99;
         return std::make_unique<yf::tuner::YellowFin>(p, opts);
       }}};
  for (const auto& [name, make_opt] : factories) {
    auto split = run_trajectory(kSplit, make_opt, 150);
    auto whole = run_trajectory(kWhole, make_opt, 150);
    ASSERT_EQ(split.size(), whole.size()) << name;
    for (std::size_t i = 0; i < split.size(); ++i) {
      EXPECT_NEAR(split[i], whole[i], 1e-12) << name << " @" << i;
    }
  }
}
