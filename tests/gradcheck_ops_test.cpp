// Finite-difference gradient checks for every differentiable op
// (parameterized over op kind), plus composite graphs.
#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "tensor/random.hpp"

#include <gtest/gtest.h>

namespace ag = yf::autograd;
namespace t = yf::tensor;

namespace {

using UnaryBuilder = ag::Variable (*)(const ag::Variable&);

struct UnaryCase {
  const char* name;
  UnaryBuilder build;
  double lo, hi;  // input sampling range (log needs positives etc.)
};

class UnaryGradcheck : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradcheck, MatchesFiniteDifferences) {
  const auto& param = GetParam();
  t::Rng rng(7);
  auto x = ag::Variable(rng.uniform_tensor({2, 3}, param.lo, param.hi), true);
  auto fn = [&](const std::vector<ag::Variable>& in) {
    return ag::sum(param.build(in[0]));
  };
  const auto result = ag::gradcheck(fn, {x});
  EXPECT_TRUE(result.ok) << param.name << ": " << result.detail;
}

ag::Variable build_square_via_mul(const ag::Variable& v) { return ag::mul(v, v); }
ag::Variable build_scaled(const ag::Variable& v) { return ag::mul_scalar(v, -2.5); }
ag::Variable build_shifted(const ag::Variable& v) { return ag::add_scalar(v, 3.0); }

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradcheck,
    ::testing::Values(UnaryCase{"tanh", &ag::tanh, -2.0, 2.0},
                      UnaryCase{"sigmoid", &ag::sigmoid, -2.0, 2.0},
                      UnaryCase{"exp", &ag::exp, -1.0, 1.0},
                      UnaryCase{"log", &ag::log, 0.5, 3.0},
                      UnaryCase{"square", &ag::square, -2.0, 2.0},
                      UnaryCase{"neg", &ag::neg, -2.0, 2.0},
                      UnaryCase{"mul_by_self", &build_square_via_mul, -2.0, 2.0},
                      UnaryCase{"mul_scalar", &build_scaled, -2.0, 2.0},
                      UnaryCase{"add_scalar", &build_shifted, -2.0, 2.0}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) { return info.param.name; });

}  // namespace

TEST(Gradcheck, ReluAwayFromKink) {
  // ReLU is non-differentiable at 0; sample away from it.
  t::Rng rng(11);
  auto x = ag::Variable(rng.uniform_tensor({2, 3}, 0.5, 2.0), true);
  auto y = ag::Variable(rng.uniform_tensor({2, 3}, -2.0, -0.5), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::relu(ag::mul(in[0], in[1])));
  };
  const auto result = ag::gradcheck(fn, {x, y});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, Matmul) {
  t::Rng rng(13);
  auto a = ag::Variable(rng.normal_tensor({3, 4}), true);
  auto b = ag::Variable(rng.normal_tensor({4, 2}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::matmul(in[0], in[1])));
  };
  const auto result = ag::gradcheck(fn, {a, b});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, AddRowBroadcast) {
  t::Rng rng(17);
  auto a = ag::Variable(rng.normal_tensor({3, 4}), true);
  auto bias = ag::Variable(rng.normal_tensor({4}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::add_row_broadcast(in[0], in[1])));
  };
  const auto result = ag::gradcheck(fn, {a, bias});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, SoftmaxCrossEntropy) {
  t::Rng rng(19);
  auto logits = ag::Variable(rng.normal_tensor({4, 5}), true);
  const std::vector<std::int64_t> labels = {0, 2, 4, 1};
  auto fn = [&](const std::vector<ag::Variable>& in) {
    return ag::softmax_cross_entropy(in[0], labels);
  };
  const auto result = ag::gradcheck(fn, {logits});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, SoftmaxComposite) {
  t::Rng rng(23);
  auto logits = ag::Variable(rng.normal_tensor({3, 4}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::softmax(in[0])));
  };
  const auto result = ag::gradcheck(fn, {logits});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, Embedding) {
  t::Rng rng(29);
  auto w = ag::Variable(rng.normal_tensor({5, 3}), true);
  const std::vector<std::int64_t> idx = {0, 4, 4, 2};
  auto fn = [&](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::embedding(in[0], idx)));
  };
  const auto result = ag::gradcheck(fn, {w});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, Conv2dAllInputs) {
  t::Rng rng(31);
  auto x = ag::Variable(rng.normal_tensor({2, 2, 4, 4}), true);
  auto w = ag::Variable(rng.normal_tensor({3, 2, 3, 3}, 0.0, 0.5), true);
  auto b = ag::Variable(rng.normal_tensor({3}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::conv2d(in[0], in[1], in[2], 1, 1)));
  };
  const auto result = ag::gradcheck(fn, {x, w, b}, 1e-5, 1e-5, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, Conv2dStride2) {
  t::Rng rng(37);
  auto x = ag::Variable(rng.normal_tensor({1, 2, 6, 6}), true);
  auto w = ag::Variable(rng.normal_tensor({2, 2, 3, 3}, 0.0, 0.5), true);
  auto b = ag::Variable(rng.normal_tensor({2}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::conv2d(in[0], in[1], in[2], 2, 1)));
  };
  const auto result = ag::gradcheck(fn, {x, w, b}, 1e-5, 1e-5, 1e-3);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, GlobalAvgPool) {
  t::Rng rng(41);
  auto x = ag::Variable(rng.normal_tensor({2, 3, 4, 4}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::global_avg_pool(in[0])));
  };
  const auto result = ag::gradcheck(fn, {x});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, AvgPool2x2) {
  t::Rng rng(43);
  auto x = ag::Variable(rng.normal_tensor({2, 2, 4, 4}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::avg_pool2x2(in[0])));
  };
  const auto result = ag::gradcheck(fn, {x});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, SliceConcatComposite) {
  t::Rng rng(47);
  auto x = ag::Variable(rng.normal_tensor({3, 6}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    auto left = ag::slice_cols(in[0], 0, 3);
    auto right = ag::slice_cols(in[0], 3, 6);
    return ag::sum(ag::square(ag::concat_cols({ag::tanh(left), ag::sigmoid(right)})));
  };
  const auto result = ag::gradcheck(fn, {x});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, TransposeComposite) {
  t::Rng rng(53);
  auto a = ag::Variable(rng.normal_tensor({3, 4}), true);
  auto b = ag::Variable(rng.normal_tensor({3, 2}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    return ag::sum(ag::square(ag::matmul(ag::transpose(in[0]), in[1])));
  };
  const auto result = ag::gradcheck(fn, {a, b});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, DeepCompositeChain) {
  t::Rng rng(59);
  auto x = ag::Variable(rng.normal_tensor({2, 3}), true);
  auto w1 = ag::Variable(rng.normal_tensor({3, 3}, 0.0, 0.5), true);
  auto w2 = ag::Variable(rng.normal_tensor({3, 2}, 0.0, 0.5), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    auto h = ag::tanh(ag::matmul(in[0], in[1]));
    auto o = ag::sigmoid(ag::matmul(h, in[2]));
    return ag::mean(ag::square(o));
  };
  const auto result = ag::gradcheck(fn, {x, w1, w2});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Gradcheck, ReportsFailureForWrongGradient) {
  // A deliberately broken function (value depends on input, but we cut the
  // graph) must be flagged.
  auto x = ag::Variable(t::Tensor({2}, {1.0, 2.0}), true);
  auto fn = [](const std::vector<ag::Variable>& in) {
    // Constant graph wrt x but numerically dependent on x's value.
    auto detached = ag::Variable(in[0].value().clone(), false);
    return ag::sum(ag::mul(detached, detached));
  };
  const auto result = ag::gradcheck(fn, {x});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.detail.empty());
}
