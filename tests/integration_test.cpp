// End-to-end training runs (tiny budgets): every optimizer family on every
// workload family must reduce the loss, and YellowFin must be competitive
// without any hand tuning.
#include <gtest/gtest.h>

#include "tensor/ops.hpp"

#include <cmath>
#include <memory>

#include "autograd/ops.hpp"
#include "data/markov_text.hpp"
#include "data/synth_cifar.hpp"
#include "nn/language_model.hpp"
#include "nn/resnet.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "optim/sgd.hpp"
#include "train/metrics.hpp"
#include "train/trainer.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;
namespace train = yf::train;

namespace {

struct CnnTask {
  yf::data::SynthCifar dataset;
  std::shared_ptr<nn::MiniResNet> model;
  t::Rng rng;

  CnnTask()
      : dataset([] {
          yf::data::SynthCifarConfig cfg;
          cfg.classes = 3;
          cfg.height = 8;
          cfg.width = 8;
          return cfg;
        }()),
        rng(100) {
    nn::MiniResNetConfig mc;
    mc.base_channels = 4;
    mc.blocks_per_stage = 1;
    mc.num_classes = 3;
    t::Rng model_rng(1);
    model = std::make_shared<nn::MiniResNet>(mc, model_rng);
  }

  train::GradFn grad_fn() {
    return [this] {
      const auto batch = dataset.sample(8, rng);
      auto loss =
          ag::softmax_cross_entropy(model->forward(ag::Variable(batch.images)), batch.labels);
      loss.backward();
      return loss.value().item();
    };
  }
};

struct LmTask {
  yf::data::MarkovText dataset;
  std::shared_ptr<nn::LSTMLanguageModel> model;
  t::Rng rng;

  LmTask()
      : dataset([] {
          yf::data::MarkovTextConfig cfg;
          cfg.vocab = 16;
          cfg.branching = 2;
          return cfg;
        }()),
        rng(200) {
    nn::LanguageModelConfig lc;
    lc.vocab = 16;
    lc.embed_dim = 8;
    lc.hidden = 12;
    lc.layers = 1;
    t::Rng model_rng(2);
    model = std::make_shared<nn::LSTMLanguageModel>(lc, model_rng);
  }

  train::GradFn grad_fn() {
    return [this] {
      const auto tokens = dataset.sample_batch(6, 11, rng);
      auto loss = model->loss(tokens, 6, 11);
      loss.backward();
      return loss.value().item();
    };
  }
};

double improvement(const std::vector<double>& losses) {
  const auto smoothed = train::smooth_uniform(losses, 20);
  return smoothed.front() - train::curve_min(smoothed);
}

}  // namespace

TEST(Integration, MomentumSgdTrainsCnn) {
  CnnTask task;
  yf::optim::MomentumSGD opt(task.model->parameters(), 0.05, 0.9);
  const auto result = train::train(opt, task.grad_fn(), [] { train::TrainOptions o; o.iterations = 150; return o; }());
  EXPECT_FALSE(result.diverged);
  EXPECT_GT(improvement(result.losses), 0.2);
}

TEST(Integration, AdamTrainsCnn) {
  CnnTask task;
  yf::optim::Adam opt(task.model->parameters(), 0.003);
  const auto result = train::train(opt, task.grad_fn(), [] { train::TrainOptions o; o.iterations = 150; return o; }());
  EXPECT_GT(improvement(result.losses), 0.2);
}

TEST(Integration, YellowFinTrainsCnnWithoutTuning) {
  CnnTask task;
  yf::tuner::YellowFin opt(task.model->parameters());
  const auto result = train::train(opt, task.grad_fn(), [] { train::TrainOptions o; o.iterations = 250; return o; }());
  EXPECT_FALSE(result.diverged);
  EXPECT_GT(improvement(result.losses), 0.2);
}

TEST(Integration, SgdTrainsLstm) {
  LmTask task;
  yf::optim::SGD opt(task.model->parameters(), 0.5);
  const auto result = train::train(opt, task.grad_fn(), [] { train::TrainOptions o; o.iterations = 120; return o; }());
  EXPECT_GT(improvement(result.losses), 0.1);
}

TEST(Integration, YellowFinTrainsLstm) {
  LmTask task;
  yf::tuner::YellowFin opt(task.model->parameters());
  const auto result = train::train(opt, task.grad_fn(), [] { train::TrainOptions o; o.iterations = 250; return o; }());
  EXPECT_FALSE(result.diverged);
  EXPECT_GT(improvement(result.losses), 0.1);
}

TEST(Integration, TrainerDivergenceGuardTrips) {
  CnnTask task;
  // Insane learning rate: must trip the guard, not crash, and pad losses.
  yf::optim::MomentumSGD opt(task.model->parameters(), 1e6, 0.9);
  train::TrainOptions opts;
  opts.iterations = 60;
  opts.divergence_bound = 1e6;
  const auto result = train::train(opt, task.grad_fn(), opts);
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.losses.size(), 60u);
  EXPECT_EQ(result.losses.back(), 1e6);
}

TEST(Integration, TrainerValidationProbe) {
  CnnTask task;
  yf::optim::Adam opt(task.model->parameters(), 0.003);
  train::TrainOptions opts;
  opts.iterations = 40;
  opts.val_every = 10;
  opts.val_fn = [] { return 42.0; };
  const auto result = train::train(opt, task.grad_fn(), opts);
  ASSERT_EQ(result.val_values.size(), 4u);
  EXPECT_EQ(result.val_iterations[0], 10);
  EXPECT_EQ(result.val_values[3], 42.0);
}

TEST(Integration, TrainerScheduleLowersLr) {
  CnnTask task;
  yf::optim::MomentumSGD opt(task.model->parameters(), 0.05, 0.9);
  yf::optim::ExponentialDecaySchedule schedule(0.5);
  train::TrainOptions opts;
  opts.iterations = 30;
  opts.schedule = &schedule;
  opts.epoch_length = 10;
  opts.base_lr = 0.04;
  train::train(opt, task.grad_fn(), opts);
  // After 30 iterations we are in epoch 2: lr = 0.04 * 0.25.
  EXPECT_NEAR(opt.lr(), 0.01, 1e-12);
}

TEST(Integration, ClipNormAppliedByTrainer) {
  CnnTask task;
  yf::optim::MomentumSGD opt(task.model->parameters(), 0.05, 0.9);
  train::TrainOptions opts;
  opts.iterations = 20;
  opts.clip_norm = 1e-9;  // absurdly tight: updates become negligible
  const auto before = nn::flatten_values(task.model->parameters());
  train::train(opt, task.grad_fn(), opts);
  const auto after = nn::flatten_values(task.model->parameters());
  EXPECT_LT(t::max_abs_diff(before, after), 1e-6);
}
