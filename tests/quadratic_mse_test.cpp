#include "sim/quadratic_mse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/momentum_operator.hpp"
#include "sim/noisy_quadratic.hpp"
#include "tuner/single_step.hpp"

namespace sim = yf::sim;

TEST(NoisyQuadratic, SymmetricConstruction) {
  const auto q = sim::NoisyQuadratic::symmetric(2.0, 0.5);
  EXPECT_EQ(q.curvature(), 2.0);
  EXPECT_NEAR(q.gradient_variance(), 4.0 * 0.25, 1e-12);
  EXPECT_NEAR(q.gradient(3.0), 6.0, 1e-12);
  EXPECT_NEAR(q.loss(3.0), 9.0, 1e-12);
}

TEST(NoisyQuadratic, OffsetsAreRecentered) {
  // Components {1, 3} -> recentered {-1, 1}; full-batch gradient unbiased.
  const sim::NoisyQuadratic q(1.0, {1.0, 3.0});
  yf::tensor::Rng rng(3);
  double mean = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) mean += q.stochastic_gradient(0.0, rng);
  mean /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
}

TEST(NoisyQuadratic, StochasticGradientIsUnbiased) {
  const auto q = sim::NoisyQuadratic::symmetric(3.0, 1.0);
  yf::tensor::Rng rng(4);
  const double x = 2.0;
  double mean = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) mean += q.stochastic_gradient(x, rng);
  mean /= n;
  EXPECT_NEAR(mean, q.gradient(x), 0.05);
}

TEST(NoisyQuadratic, RejectsBadInputs) {
  EXPECT_THROW(sim::NoisyQuadratic(0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(sim::NoisyQuadratic(1.0, {}), std::invalid_argument);
}

TEST(ExactMse, NoiselessMatchesDeterministicIterates) {
  // With C = 0 the exact MSE is just the squared deterministic trajectory.
  sim::MseParams p{0.3, 0.4, 1.0, 0.0, 2.0};
  const auto curve = sim::exact_mse_curve(p, 30);
  double x_prev = p.x0, x = p.x0;
  for (int t = 0; t < 30; ++t) {
    const double x_next = x - p.alpha * p.h * x + p.mu * (x - x_prev);
    x_prev = x;
    x = x_next;
    EXPECT_NEAR(curve[static_cast<std::size_t>(t)], x * x, 1e-12) << "t=" << t;
  }
}

TEST(ExactMse, MatchesMonteCarloOnNoisyQuadratic) {
  // Lemma 5 validation: the closed-form recurrence equals the sample
  // average over many momentum-SGD runs.
  sim::MseParams p{0.2, 0.5, 1.0, 0.25, 1.5};
  const auto exact = sim::exact_mse_curve(p, 40);
  const auto mc = sim::monte_carlo_mse_curve(p, 40, 40000, 777);
  for (std::size_t t = 0; t < exact.size(); t += 5) {
    const double tol = 0.05 * std::max(exact[t], 0.02);
    EXPECT_NEAR(mc[t], exact[t], tol) << "t=" << t;
  }
}

TEST(ExactMse, SteadyStateMatchesLinearSolve) {
  // The variance recurrence's fixed point is (I - B)^{-1} [alpha^2 C,0,0]:
  // the exact curve must converge to its first component.
  const double mu = 0.49, h = 1.0;
  const double alpha = (1.0 - std::sqrt(mu)) * (1.0 - std::sqrt(mu)) / h * 2.0;  // inside region
  sim::MseParams p{alpha, mu, h, 1.0, 0.0};  // zero bias: x0 = 0
  const auto curve = sim::exact_mse_curve(p, 4000);
  const auto b = sim::variance_operator(alpha, mu, h);
  const auto i_minus_b = sim::sub(sim::SmallMatrix::identity(3), b);
  const auto fixed = sim::solve(i_minus_b, {alpha * alpha * p.c, 0.0, 0.0});
  EXPECT_NEAR(curve.back(), fixed[0], 1e-9);
  // And Eq. 14's robust-region surrogate limit alpha^2 C/(1-mu) is an
  // upper bound of the same order.
  const double surrogate_limit = alpha * alpha * p.c / (1.0 - mu);
  EXPECT_GT(surrogate_limit, 0.2 * fixed[0]);
  EXPECT_LT(surrogate_limit, 5.0 * fixed[0]);
}

TEST(Surrogate, RobustFormMatchesGenericInRobustRegion) {
  const double mu = 0.36, h = 2.0;
  const double alpha = 1.0 / h;  // ah = 1 in [(1-.6)^2, (1+.6)^2] = [0.16, 2.56]
  sim::MseParams p{alpha, mu, h, 0.5, 3.0};
  const auto generic = sim::surrogate_mse_curve(p, 50);
  const auto robust = sim::robust_surrogate_mse_curve(p, 50);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_NEAR(generic[t], robust[t], 1e-9 * std::max(1.0, generic[t])) << "t=" << t;
  }
}

TEST(Surrogate, TracksExactDecayRate) {
  // The surrogate is asymptotic: its bias decay rate (mu per MSE step)
  // should match the exact bias decay in the robust region. Use the lower
  // boundary alpha = (1-sqrt(mu))^2/h (critically damped, real repeated
  // eigenvalue) so the exact curve decays without oscillation.
  const double mu = 0.25, h = 1.0;
  const double alpha = (1.0 - std::sqrt(mu)) * (1.0 - std::sqrt(mu)) / h;
  sim::MseParams p{alpha, mu, h, 0.0, 1.0};
  const auto exact = sim::exact_mse_curve(p, 60);
  const auto surr = sim::robust_surrogate_mse_curve(p, 60);
  const double exact_rate = std::pow(exact[50] / exact[40], 0.1);
  const double surr_rate = std::pow(surr[50] / surr[40], 0.1);
  // Exact decay carries a polynomial t^2 factor (repeated eigenvalue); over
  // ten steps at t ~ 45 that is a ~5% correction.
  EXPECT_NEAR(exact_rate, surr_rate, 0.06);
}

TEST(SingleStepObjective, Formula) {
  EXPECT_NEAR(sim::single_step_objective(0.5, 0.1, 2.0, 3.0), 0.5 * 4.0 + 0.01 * 3.0, 1e-12);
}

TEST(SingleStepObjective, TunedBeatsGridOnSurrogate) {
  // The SingleStep closed form must (weakly) dominate a dense grid over
  // feasible (mu, alpha) pairs on the Eq. 15 objective.
  const double hmin = 1.0, hmax = 1.0, c = 2.0, d = 1.5;
  const auto tuned = yf::tuner::single_step(hmax, hmin, c, d);
  const double tuned_obj = sim::single_step_objective(tuned.mu, tuned.alpha, d, c);
  for (int i = 0; i <= 1000; ++i) {
    const double x = static_cast<double>(i) / 1001.0;  // sqrt(mu)
    const double mu = x * x;
    const double alpha = (1.0 - x) * (1.0 - x) / hmin;
    const double obj = sim::single_step_objective(mu, alpha, d, c);
    EXPECT_GE(obj, tuned_obj - 1e-9);
  }
}
