// Figure 11: finer-grain learning-rate tuning on top of YellowFin.
// A manual multiplicative factor {1/3, 0.5, 1, 2, 3, 10} on YF's auto-tuned
// lr is grid-searched on a ResNext-sub CNN and a Tied-LSTM word model, and
// compared against default and searched Adam.
//
// Expected shape: some non-unit factor improves on YF default, and
// searched YF matches or beats searched Adam on the validation metric.
#include <cstdio>

#include "common.hpp"

namespace train = yf::train;

namespace {

struct Outcome {
  double best_hyper;
  double best_loss;
  double val;  ///< validation metric of the best configuration
};

Outcome search(const std::function<yfb::ModelTask(std::uint64_t)>& make,
               const std::string& opt_name, const std::vector<double>& grid,
               std::int64_t iterations, std::int64_t window, bool val_higher_better) {
  Outcome out{0.0, 1e300, 0.0};
  for (double hyper : grid) {
    // Train once per hyper (seed 1) and probe validation at the end.
    auto task = make(1);
    auto opt = yfb::make_optimizer(opt_name, task.params, hyper);
    train::TrainOptions topts;
    topts.iterations = iterations;
    const auto result = train::train(*opt, task.grad_fn, topts);
    const auto smoothed = train::smooth_uniform(result.losses, window);
    const double score = train::curve_min(smoothed);
    const double val = task.val_fn ? task.val_fn() : 0.0;
    std::printf("    %s hyper=%-8g min smoothed loss %.4f val %.4f\n", opt_name.c_str(), hyper,
                score, val);
    if (score < out.best_loss) out = {hyper, score, val};
  }
  (void)val_higher_better;
  return out;
}

void panel(const char* name, const std::function<yfb::ModelTask(std::uint64_t)>& make,
           const std::vector<double>& adam_grid, std::int64_t iterations, std::int64_t window,
           const char* val_name) {
  std::printf("\n-- %s --\n", name);
  std::printf("  YF factor search {1/3, 0.5, 1, 2, 3, 10}:\n");
  const auto yf = search(make, "yellowfin", {1.0 / 3.0, 0.5, 1.0, 2.0, 3.0, 10.0}, iterations,
                         window, true);
  std::printf("  Adam lr search:\n");
  const auto adam = search(make, "adam", adam_grid, iterations, window, true);
  std::printf("  => best YF factor %g (%s %.4f) | best Adam lr %g (%s %.4f)\n", yf.best_hyper,
              val_name, yf.val, adam.best_hyper, val_name, adam.val);
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(300, 4000);
  const std::int64_t window = yfb::iters(25, 200);
  std::printf("Figure 11: lr-factor search for YellowFin vs searched Adam\n");

  // "ResNext-sub": the deeper CNN config (blocks_per_stage = 2 via 10-class task).
  panel("ResNext-sub CNN (val accuracy)",
        [](std::uint64_t s) { return yfb::make_cifar_task(10, s); },
        {0.0001, 0.0005, 0.001, 0.005}, iterations, window, "val_acc");

  // "Tied LSTM": word LM with tied embedding/output weights (Press & Wolf).
  panel("Tied-LSTM word model (val perplexity, lower better)",
        [](std::uint64_t s) { return yfb::make_word_lm_task(s, /*tied=*/true); },
        {0.0001, 0.0005, 0.001, 0.005, 0.01}, iterations, window, "val_ppl");

  std::printf("\nShape check (paper): a non-unit factor can improve YF (paper: 2x on ResNext,\n"
              "3x on Tied LSTM), and searched YF >= searched Adam on validation metrics.\n");
  return 0;
}
