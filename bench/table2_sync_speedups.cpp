// Table 2 + Figures 5 and 8: the paper's main synchronous evaluation.
//
// Five workloads (CIFAR10-sub, CIFAR100-sub, PTB-sub, TS-sub, WSJ-sub),
// each trained with grid-tuned Adam, grid-tuned momentum SGD (momentum
// 0.9), and untuned YellowFin (plus vanilla SGD and AdaGrad on WSJ-sub, as
// in Fig. 5 right). Prints the Table 2 speedup matrix vs Adam and the
// Fig. 5/8 loss + validation series.
//
// Expected shape: momentum SGD and YellowFin >= 1x vs Adam on the CNN,
// char-LM and parsing tasks; YF ~ tuned momentum SGD everywhere; the
// word-LM ("PTB") may favor Adam (paper: 0.77x).
//
// Engine: the same workload/grid config drives either the synchronous
// trainer (default) or the sharded parameter server — set YF_ENGINE=server
// (plus YF_WORKERS / YF_SHARDS) to train every run through real-thread
// pushes. With YF_WORKERS=1 the server reproduces the synchronous
// trajectories, so the table is directly comparable across engines; with
// more workers it becomes the paper's async evaluation on this table.
#include <cstdio>
#include <map>

#include "common.hpp"

namespace train = yf::train;

namespace {

struct Workload {
  std::string name;
  std::function<yfb::ModelTask(std::uint64_t)> make;
  std::vector<double> adam_grid;
  std::vector<double> sgd_grid;
  std::string paper_sgd;  ///< paper's Table 2 entries, for side-by-side
  std::string paper_yf;
  double iter_scale = 1.0;  ///< paper gives CIFAR100 a 3x longer budget
};

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(600, 6000);
  const std::int64_t window = yfb::iters(50, 400);
  std::printf("Table 2 / Fig. 5 / Fig. 8: synchronous speedups (%lld iters/run, %s mode, %s)\n",
              static_cast<long long>(iterations), yfb::full_mode() ? "FULL" : "quick",
              yfb::engine_banner().c_str());

  std::vector<Workload> workloads = {
      {"CIFAR10-sub", [](std::uint64_t s) { return yfb::make_cifar_task(10, s); },
       {0.003, 0.01, 0.03, 0.1}, {0.03, 0.1, 0.3, 1.0}, "1.71x", "1.93x"},
      {"CIFAR100-sub", [](std::uint64_t s) { return yfb::make_cifar_task(20, s); },
       {0.003, 0.01, 0.03, 0.1}, {0.03, 0.1, 0.3, 1.0}, "1.87x", "1.38x", 2.0},
      {"PTB-sub", [](std::uint64_t s) { return yfb::make_word_lm_task(s); },
       {0.003, 0.01, 0.03, 0.1}, {0.03, 0.1, 0.3, 1.0}, "0.88x", "0.77x"},
      {"TS-sub", [](std::uint64_t s) { return yfb::make_char_lm_task(s); },
       {0.003, 0.01, 0.03, 0.1}, {0.1, 0.3, 1.0, 3.0}, "2.49x", "3.28x"},
      {"WSJ-sub", [](std::uint64_t s) { return yfb::make_parse_task(s); },
       {0.003, 0.01, 0.03, 0.1}, {0.03, 0.1, 0.3, 1.0}, "1.33x", "2.33x"},
  };

  std::vector<std::vector<std::string>> table = {
      {"Workload", "Adam", "mom.SGD", "YF", "paper SGD", "paper YF"}};
  std::vector<std::string> csv_names;
  std::vector<std::vector<double>> csv_cols;

  for (const auto& w : workloads) {
    const auto wl_iterations = static_cast<std::int64_t>(iterations * w.iter_scale);
    std::printf("\n-- %s (%lld iters) --\n", w.name.c_str(),
                static_cast<long long>(wl_iterations));
    const auto adam = yfb::tune(w.make, "adam", w.adam_grid, wl_iterations, window);
    std::printf("  Adam best lr: %g (min smoothed loss %.4f)\n", adam.best_hyper,
                adam.best_loss);
    const auto msgd = yfb::tune(w.make, "momentum_sgd", w.sgd_grid, wl_iterations, window);
    std::printf("  momentum SGD best lr: %g (min smoothed loss %.4f)\n", msgd.best_hyper,
                msgd.best_loss);
    // YellowFin: no grid, factor 1.
    std::vector<std::vector<double>> yf_curves;
    for (auto seed : yfb::seeds()) {
      yf_curves.push_back(yfb::run_one(w.make, "yellowfin", 1.0, wl_iterations, seed));
    }
    const auto yf_curve = train::smooth_uniform(train::average_curves(yf_curves), window);

    const auto s_sgd = train::speedup_over(adam.best_curve, msgd.best_curve);
    const auto s_yf = train::speedup_over(adam.best_curve, yf_curve);
    std::printf("  common loss vs Adam: SGD %.4f @ %lld vs %lld iters | YF %.4f @ %lld vs %lld\n",
                s_sgd.common_loss, static_cast<long long>(s_sgd.baseline_iters),
                static_cast<long long>(s_sgd.other_iters), s_yf.common_loss,
                static_cast<long long>(s_yf.baseline_iters),
                static_cast<long long>(s_yf.other_iters));
    table.push_back({w.name, "1x", train::fmt_speedup(s_sgd.ratio), train::fmt_speedup(s_yf.ratio),
                     w.paper_sgd, w.paper_yf});

    train::print_series("Fig5/8 " + w.name + " adam loss", adam.best_curve, 10);
    train::print_series("Fig5/8 " + w.name + " mom_sgd loss", msgd.best_curve, 10);
    train::print_series("Fig5/8 " + w.name + " yellowfin loss", yf_curve, 10);
    csv_names.push_back(w.name + "_adam");
    csv_cols.push_back(adam.best_curve);
    csv_names.push_back(w.name + "_momsgd");
    csv_cols.push_back(msgd.best_curve);
    csv_names.push_back(w.name + "_yf");
    csv_cols.push_back(yf_curve);

    // Fig. 5 right also compares vanilla SGD and AdaGrad on the parsing task.
    if (w.name == "WSJ-sub") {
      const auto vsgd = yfb::tune(w.make, "sgd", w.sgd_grid, iterations, window);
      const auto adagrad = yfb::tune(w.make, "adagrad", w.sgd_grid, iterations, window);
      const auto s_v = train::speedup_over(vsgd.best_curve, msgd.best_curve);
      std::printf("  WSJ extras: vanilla SGD best lr %g, AdaGrad best lr %g; "
                  "momentum SGD speedup over vanilla SGD: %s (paper: 2.73x)\n",
                  vsgd.best_hyper, adagrad.best_hyper, train::fmt_speedup(s_v.ratio).c_str());
    }
  }

  train::print_table("Table 2: speedup over tuned Adam (iterations-to-common-loss)", table);
  train::write_csv("fig5_fig8_losses.csv", csv_names, csv_cols);
  std::printf("\nWrote fig5_fig8_losses.csv\n");
  return 0;
}
