// Microbenchmark (google-benchmark): sharded parameter-server apply
// throughput as a function of shard count and concurrent workers.
//
// Each measured iteration launches `workers` pool tasks that all run a
// fixed number of pull -> push rounds against one server (momentum SGD
// over a flat dim-N arena). With one shard, every pull and push
// serializes on a single lock (the historical hogwild server); more
// shards let one worker's sweep over shard k overlap another worker's
// copy into shard k+1, so contention drops as K grows. The *Measured
// variant adds the per-shard iterate history + Eq. 37 ratio extraction,
// pricing the total-momentum measurement hook.
#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <vector>

#include "async/param_server.hpp"
#include "common.hpp"
#include "core/parallel.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"

namespace {

namespace ag = yf::autograd;
namespace async = yf::async;
namespace t = yf::tensor;

constexpr std::int64_t kDim = 1 << 15;        // 32k parameters
constexpr std::int64_t kPushesPerWorker = 8;  // rounds per measured iteration

void run_rounds(async::ShardedParamServer& server, std::int64_t workers) {
  auto& pool = yf::core::ThreadPool::instance();
  pool.ensure_workers(static_cast<std::size_t>(workers));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(workers));
  for (std::int64_t w = 0; w < workers; ++w) {
    futures.push_back(pool.submit([&server, w] {
      t::Rng rng(static_cast<std::uint64_t>(w) + 1);
      std::vector<double> values(static_cast<std::size_t>(server.size()));
      std::vector<double> grad(static_cast<std::size_t>(server.size()));
      for (auto& g : grad) g = 0.01 * rng.normal();
      for (std::int64_t p = 0; p < kPushesPerWorker; ++p) {
        const auto ticket = server.pull(values);
        server.push(grad, ticket);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

void bench_server(benchmark::State& state, bool measure) {
  const std::int64_t shards = state.range(0);
  const std::int64_t workers = state.range(1);
  t::Rng rng(7);
  ag::Variable master(rng.normal_tensor({kDim}), true);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{master},
                                                      1e-4, 0.9);
  async::ParamServerOptions opts;
  opts.shards = shards;
  opts.measure = measure;
  opts.history = 8;  // enough for Eq. 37 at bench staleness
  async::ShardedParamServer server(opt, opts);
  for (auto _ : state) {
    run_rounds(server, workers);
  }
  state.SetItemsProcessed(state.iterations() * workers * kPushesPerWorker);
  state.SetBytesProcessed(state.iterations() * workers * kPushesPerWorker * kDim *
                          static_cast<std::int64_t>(sizeof(double)));
  state.counters["shards"] = static_cast<double>(server.shard_count());
  state.counters["updates"] = static_cast<double>(server.updates());
}

void BM_ServerPush(benchmark::State& state) { bench_server(state, /*measure=*/false); }
void BM_ServerPushMeasured(benchmark::State& state) { bench_server(state, /*measure=*/true); }

BENCHMARK(BM_ServerPush)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 4}})
    ->ArgNames({"shards", "workers"})
    ->UseRealTime();
BENCHMARK(BM_ServerPushMeasured)
    ->ArgsProduct({{1, 4, 8}, {4}})
    ->ArgNames({"shards", "workers"})
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_param_server");
}
