// Ablation bench for the tuner design choices DESIGN.md calls out
// (Appendix E/F machinery):
//   1. log-space vs linear-space smoothing of the curvature extremes under
//      fast-decaying curvature (Appendix E);
//   2. slow start on/off (early-step stability);
//   3. hyperparameter smoothing on/off (step-to-step tuning variance);
//   4. adaptive-clipping envelope growth cap (Eq. 35) under spikes.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "tuner/curvature_range.hpp"

namespace train = yf::train;

namespace {

void ablate_log_smoothing() {
  std::printf("\n[1] curvature smoothing: log-space vs linear (App. E)\n");
  // Geometrically decaying curvature, as observed on LSTMs late in training.
  for (bool log_space : {false, true}) {
    yf::tuner::CurvatureRangeOptions opts;
    opts.beta = 0.999;
    opts.window = 20;
    opts.log_smoothing = log_space;
    yf::tuner::CurvatureRange cr(opts);
    double h = 1e6;
    for (int i = 0; i < 2000; ++i) {
      cr.update(h);
      h *= 0.995;
    }
    std::printf("  %-9s h_max estimate / true current h: %8.1fx\n",
                log_space ? "log" : "linear", cr.h_max() / h);
  }
  std::printf("  shape: log-space tracks the decay far more tightly (smaller factor).\n");
}

void ablate_slow_start(std::int64_t iterations) {
  std::printf("\n[2] slow start on/off (CNN task)\n");
  for (bool slow : {true, false}) {
    auto task = yfb::make_cifar_task(10, 1);
    yf::tuner::YellowFinOptions opts;
    opts.beta = 0.995;
    opts.slow_start = slow;
    opts.slow_start_iters = 50;
    yf::tuner::YellowFin opt(task.params, opts);
    train::TrainOptions topts;
    topts.iterations = iterations;
    const auto r = train::train(opt, task.grad_fn, topts);
    const auto smoothed = train::smooth_uniform(r.losses, 40);
    double early_max = 0.0;
    for (std::size_t i = 1; i < 60 && i < r.losses.size(); ++i) {
      early_max = std::max(early_max, r.losses[i]);
    }
    std::printf("  slow_start=%d: worst early loss %.3f, final smoothed %.4f%s\n", slow ? 1 : 0,
                early_max, smoothed.back(), r.diverged ? " (DIVERGED)" : "");
  }
  std::printf("  shape: warm-up caps early-loss excursions at equal final quality.\n");
}

void ablate_hyper_smoothing(std::int64_t iterations) {
  std::printf("\n[3] hyperparameter smoothing on/off (char-LM task)\n");
  for (bool smooth : {true, false}) {
    auto task = yfb::make_char_lm_task(1);
    yf::tuner::YellowFinOptions opts;
    opts.beta = 0.995;
    opts.slow_start_iters = 50;
    opts.smooth_hyperparams = smooth;
    yf::tuner::YellowFin opt(task.params, opts);
    // Track lr variation across consecutive steps.
    double prev_lr = 0.0, jitter = 0.0;
    std::int64_t n = 0;
    double final_loss = 0.0;
    for (std::int64_t it = 0; it < iterations; ++it) {
      opt.zero_grad();
      final_loss = task.grad_fn();
      opt.step();
      if (it > 50) {
        jitter += std::abs(opt.lr() - prev_lr) / std::max(opt.lr(), 1e-12);
        ++n;
      }
      prev_lr = opt.lr();
    }
    std::printf("  smooth=%d: mean per-step relative lr change %.4f%%, final loss %.4f\n",
                smooth ? 1 : 0, 100.0 * jitter / static_cast<double>(n), final_loss);
  }
  std::printf("  shape: smoothing cuts step-to-step tuning variance by orders of magnitude.\n");
}

void ablate_growth_cap() {
  std::printf("\n[4] clipping-envelope growth cap (Eq. 35) under a 1e6x spike\n");
  for (double cap : {0.0, 100.0}) {
    yf::tuner::CurvatureRangeOptions opts;
    opts.beta = 0.0;  // isolate the cap: estimate = latest observation
    opts.window = 1;
    opts.log_smoothing = false;
    opts.growth_cap = cap;
    yf::tuner::CurvatureRange cr(opts);
    cr.update(1.0);
    cr.update(1e6);
    std::printf("  cap=%-5g h_max after spike: %.3e -> clip threshold %.3e\n", cap, cr.h_max(),
                std::sqrt(cr.h_max()));
  }
  std::printf("  shape: the cap keeps one spike from poisoning the clip threshold.\n");
}

}  // namespace

int main() {
  std::printf("Tuner component ablations (DESIGN.md §7 design choices)\n");
  const std::int64_t iterations = yfb::iters(300, 3000);
  ablate_log_smoothing();
  ablate_slow_start(iterations);
  ablate_hyper_smoothing(iterations);
  ablate_growth_cap();
  return 0;
}
