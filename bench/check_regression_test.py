#!/usr/bin/env python3
"""Gate-side tests for bench/check_regression.py.

The regression gate must *report* a poisoned BENCH file (bare inf/nan from
an unsanitized reporter, truncated write, null-sanitized counters) with a
nonzero exit, never die with a json/float traceback — a traceback hides
every other bench's status and reads as CI infrastructure flake.

Registered with CTest (check_regression_gate_test) so the gate's failure
mode is itself under test.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_regression.py")


def run_gate(bench_dir, baselines):
    return subprocess.run(
        [sys.executable, SCRIPT, "--dir", bench_dir, "--baselines", baselines],
        capture_output=True, text=True)


class CheckRegressionGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name
        self.baselines = os.path.join(self.dir, "baselines.json")
        with open(self.baselines, "w") as f:
            json.dump({"threshold": 2.0,
                       "entries": {"demo::BM_Ok/1": 100.0}}, f)

    def tearDown(self):
        self.tmp.cleanup()

    def write_bench(self, name, text):
        with open(os.path.join(self.dir, f"BENCH_{name}.json"), "w") as f:
            f.write(text)

    def assert_reported_not_traceback(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stderr + proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertNotIn("Traceback", proc.stdout)
        self.assertIn("invalid bench JSON", proc.stderr)

    def test_clean_file_passes(self):
        self.write_bench("demo", json.dumps({
            "bench": "demo",
            "results": [{"name": "BM_Ok/1", "ns_per_op": 120.0}]}))
        proc = run_gate(self.dir, self.baselines)
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)

    def test_bare_inf_is_reported(self):
        # What the pre-fix JsonReporter wrote for a non-finite counter:
        # bare `inf` is not a JSON token, so json.load used to traceback.
        self.write_bench("demo", '{"bench": "demo", "results": '
                                 '[{"name": "BM_Ok/1", "ns_per_op": inf}]}')
        self.assert_reported_not_traceback(run_gate(self.dir, self.baselines))

    def test_null_ns_per_op_is_reported(self):
        # The sanitized reporter emits null for non-finite values; the gate
        # must flag the entry (float(None) used to traceback) and still
        # fail on the now-missing baseline.
        self.write_bench("demo", json.dumps({
            "bench": "demo",
            "results": [{"name": "BM_Ok/1", "ns_per_op": None}]}))
        self.assert_reported_not_traceback(run_gate(self.dir, self.baselines))

    def test_truncated_file_is_reported(self):
        self.write_bench("demo", '{"bench": "demo", "results": [')
        self.assert_reported_not_traceback(run_gate(self.dir, self.baselines))

    def test_poisoned_file_does_not_hide_other_results(self):
        self.write_bench("demo", json.dumps({
            "bench": "demo",
            "results": [{"name": "BM_Ok/1", "ns_per_op": 120.0}]}))
        self.write_bench("poison", '{"bench": "poison", "results": '
                                   '[{"name": "BM_Bad/1", "ns_per_op": nan}]}')
        proc = run_gate(self.dir, self.baselines)
        self.assert_reported_not_traceback(proc)
        self.assertIn("BM_Ok/1", proc.stdout)  # healthy bench still in the table


if __name__ == "__main__":
    unittest.main()
