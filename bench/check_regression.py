#!/usr/bin/env python3
"""Perf regression gate over the BENCH_*.json files the micro benches emit.

Compares each result's ns/op against bench/baselines.json with a generous
threshold (default 2x: CI runners are shared and noisy; the gate exists to
catch step-function regressions like a kernel silently falling back to
scalar, not single-digit drift). Prints a markdown delta table, appends it
to --summary (e.g. $GITHUB_STEP_SUMMARY) when given, and exits nonzero on
any regression -- wire it as a non-required CI step.

Refreshing baselines after an intentional perf change:

    YF_BENCH_JSON_DIR=bench-json ./build/micro_kernels
    ... (micro_tuner_overhead, micro_param_server) ...
    python3 bench/check_regression.py --dir bench-json --update

then commit the rewritten bench/baselines.json.
"""

import argparse
import glob
import json
import math
import os
import sys


def load_results(directory):
    """({'<bench>::<name>': {...}}, [error strings]) over BENCH_*.json.

    A poisoned file (truncated write, bare inf/nan from an old reporter,
    null-sanitized non-finite counters) must surface as a reported gate
    failure, never as a json/float traceback that obscures every other
    bench's result.
    """
    results = {}
    errors = []
    files = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    for path in files:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            errors.append(f"{name}: unreadable JSON ({exc})")
            continue
        if not isinstance(doc, dict):
            errors.append(f"{name}: expected a JSON object at top level")
            continue
        for entry in doc.get("results", []):
            if not isinstance(entry, dict) or "name" not in entry:
                errors.append(f"{name}: malformed result entry {entry!r}")
                continue
            key = f"{doc.get('bench', name)}::{entry['name']}"
            ns = entry.get("ns_per_op")
            if not isinstance(ns, (int, float)) or isinstance(ns, bool) \
                    or not math.isfinite(ns):
                errors.append(f"{name}: non-numeric ns_per_op for `{key}`: {ns!r}")
                continue
            if ns <= 0:  # skipped/errored run: never a result or a baseline
                continue
            results[key] = {
                "ns_per_op": float(ns),
                "backend": entry.get("backend", ""),
            }
    return files, results, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json (default: .)")
    parser.add_argument("--baselines", default=os.path.join(os.path.dirname(__file__),
                                                            "baselines.json"),
                        help="checked-in baseline file (default: bench/baselines.json)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="regression factor (default: the baseline file's, else 2.0)")
    parser.add_argument("--summary", default=os.environ.get("GITHUB_STEP_SUMMARY"),
                        help="file to append the markdown table to (default: "
                             "$GITHUB_STEP_SUMMARY when set)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline file from the current results and exit")
    args = parser.parse_args()

    files, current, invalid = load_results(args.dir)
    for err in invalid:
        print(f"check_regression: invalid bench JSON: {err}", file=sys.stderr)
    if not current and not invalid:
        print(f"check_regression: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 2

    if args.update:
        if invalid:
            print("check_regression: refusing to --update from invalid bench JSON",
                  file=sys.stderr)
            return 1
        doc = {
            "note": "ns/op baselines for bench/check_regression.py, refreshed with --update "
                    "on a 1-core CI-class runner. Generous threshold: the gate catches "
                    "step-function regressions, not noise.",
            "threshold": args.threshold or 2.0,
            "entries": {k: round(v["ns_per_op"], 1) for k, v in sorted(current.items())},
        }
        with open(args.baselines, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"check_regression: wrote {len(current)} baselines to {args.baselines}")
        return 0

    with open(args.baselines) as f:
        baseline_doc = json.load(f)
    baselines = baseline_doc.get("entries", {})
    threshold = args.threshold or float(baseline_doc.get("threshold", 2.0))

    rows = []     # (key, base, now, ratio, status)
    regressed = []
    missing = []
    for key, entry in sorted(current.items()):
        now = entry["ns_per_op"]
        base = baselines.get(key)
        if base is None:
            rows.append((key, None, now, None, "new"))
            continue
        ratio = now / base if base > 0 else float("inf")
        status = "REGRESSED" if ratio > threshold else "ok"
        if status == "REGRESSED":
            regressed.append(key)
        rows.append((key, base, now, ratio, status))
    # A baseline with no current result is itself a failure: the classic
    # step-function regression is a bench (e.g. every simd variant) that
    # silently stopped running/being recorded at all.
    for key in sorted(set(baselines) - set(current)):
        missing.append(key)
        rows.append((key, baselines[key], None, None, "missing"))

    lines = [
        f"### Perf regression gate ({len(files)} file(s), threshold {threshold:.1f}x)",
        "",
        "| benchmark | baseline ns/op | current ns/op | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for key, base, now, ratio, status in rows:
        fmt = lambda v: f"{v:,.0f}" if v is not None else "—"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "—"
        mark = {"ok": "ok", "REGRESSED": "REGRESSED", "new": "new", "missing": "missing"}[status]
        lines.append(f"| `{key}` | {fmt(base)} | {fmt(now)} | {ratio_s} | {mark} |")
    lines.append("")
    # Geomean speedup vs the checked-in baselines over matched entries:
    # > 1.0x means the tree is faster than the baselines on average. The
    # headline number for perf PRs (refresh with --update afterwards).
    matched = [(base, now) for _, base, now, ratio, _ in rows
               if base is not None and now is not None and base > 0 and now > 0]
    if matched:
        log_sum = sum(math.log(base / now) for base, now in matched)
        geomean = math.exp(log_sum / len(matched))
        direction = "faster" if geomean >= 1.0 else "slower"
        lines.append(f"**Geomean vs baselines: {geomean:.2f}x {direction}** "
                     f"({len(matched)} matched entries)")
        lines.append("")
    if regressed:
        lines.append(f"**{len(regressed)} regression(s) over {threshold:.1f}x:** " +
                     ", ".join(f"`{k}`" for k in regressed))
    if missing:
        lines.append(f"**{len(missing)} baseline(s) with no current result** (bench skipped, "
                     "renamed, or no longer emitting JSON — refresh with --update if "
                     "intentional): " + ", ".join(f"`{k}`" for k in missing))
    if invalid:
        lines.append(f"**{len(invalid)} invalid bench JSON problem(s)** (reporter emitted "
                     "non-finite/garbage output): " + "; ".join(invalid))
    if not regressed and not missing and not invalid:
        lines.append("No regressions.")
    table = "\n".join(lines)

    print(table)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(table + "\n")

    return 1 if regressed or missing or invalid else 0


if __name__ == "__main__":
    sys.exit(main())
