// Figure 7: adaptive clipping does no harm on stable objectives -- the
// training losses of YellowFin with and without adaptive clipping
// converge to each other quickly on both the word-LM ("PTB") and CNN
// ("CIFAR10") tasks.
#include <cmath>
#include <cstdio>

#include "common.hpp"

namespace train = yf::train;

namespace {

std::vector<double> run(const std::function<yfb::ModelTask(std::uint64_t)>& make,
                        bool clipping, std::int64_t iterations) {
  auto task = make(1);
  yf::tuner::YellowFinOptions opts;
  opts.adaptive_clipping = clipping;
  yf::tuner::YellowFin opt(task.params, opts);
  train::TrainOptions topts;
  topts.iterations = iterations;
  return train::train(opt, task.grad_fn, topts).losses;
}

void panel(const char* name, const std::function<yfb::ModelTask(std::uint64_t)>& make,
           std::int64_t iterations, std::int64_t window) {
  const auto with = train::smooth_uniform(run(make, true, iterations), window);
  const auto without = train::smooth_uniform(run(make, false, iterations), window);
  train::print_series(std::string(name) + " YF with clipping", with, 10);
  train::print_series(std::string(name) + " YF without clipping", without, 10);
  // Relative gap over the last quarter of training.
  double gap = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 3 * with.size() / 4; i < with.size(); ++i) {
    gap += std::abs(with[i] - without[i]) / std::max(1e-9, without[i]);
    ++n;
  }
  std::printf("  %s: mean relative gap over final quarter: %.2f%%\n", name,
              100.0 * gap / static_cast<double>(n));
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(400, 5000);
  const std::int64_t window = yfb::iters(30, 300);
  std::printf("Figure 7: YF with vs without adaptive clipping on stable models\n");
  panel("PTB-sub LSTM", [](std::uint64_t s) { return yfb::make_word_lm_task(s); }, iterations,
        window);
  panel("CIFAR10-sub CNN", [](std::uint64_t s) { return yfb::make_cifar_task(3, s); },
        iterations, window);
  std::printf("\nShape check (paper): the two curves coincide -- the gap should be small\n"
              "(a few percent), i.e. clipping does not hurt stable training.\n");
  return 0;
}
