// Table 1: stability on a seq2seq model with exploding gradients
// (substitute for ConvS2S on IWSLT'14 German-English; DESIGN.md §2).
//
//   row 1  default optimizer (lr .25, momentum .99) without clipping -> diverges
//   row 2  default optimizer with manually-tuned clipping             -> trains
//   row 3  YellowFin with adaptive clipping                           -> trains, better metric
//
// Expected shape: row 1 diverges; row 3's final loss <= row 2's, and its
// token accuracy (BLEU4 substitute) is at least comparable.
#include <cstdio>

#include "common.hpp"
#include "optim/clipping.hpp"

namespace train = yf::train;

namespace {

struct Row {
  std::string name;
  bool diverged = false;
  double final_loss = 0.0;
  double accuracy = 0.0;
};

Row run_default(bool with_clip, std::int64_t iterations) {
  auto task = yfb::make_seq2seq_task(1, /*init_scale=*/2.0, /*spike_prob=*/0.05, /*spike_scale=*/60.0);
  // The paper's default: lr 0.25, Nesterov momentum 0.99.
  yf::optim::MomentumSGD opt(task.params, 0.25, 0.99, /*nesterov=*/true);
  train::TrainOptions topts;
  topts.iterations = iterations;
  topts.divergence_bound = 1e4;
  if (with_clip) topts.clip_norm = 0.1;  // the manually-tuned threshold of Gehring et al.
  const auto result = train::train(opt, task.grad_fn, topts);
  Row row;
  row.name = with_clip ? "Default w/ clip." : "Default w/o clip.";
  row.diverged = result.diverged;
  const auto smoothed = train::smooth_uniform(result.losses, 25);
  row.final_loss = smoothed.back();
  row.accuracy = result.diverged ? 0.0 : task.val_fn();
  return row;
}

Row run_yellowfin(std::int64_t iterations) {
  auto task = yfb::make_seq2seq_task(1, /*init_scale=*/2.0, /*spike_prob=*/0.05, /*spike_scale=*/60.0);
  yf::tuner::YellowFinOptions opts;  // adaptive clipping on by default
  yf::tuner::YellowFin opt(task.params, opts);
  train::TrainOptions topts;
  topts.iterations = iterations;
  topts.divergence_bound = 1e4;
  const auto result = train::train(opt, task.grad_fn, topts);
  Row row;
  row.name = "YF (adaptive clip.)";
  row.diverged = result.diverged;
  row.final_loss = train::smooth_uniform(result.losses, 25).back();
  row.accuracy = result.diverged ? 0.0 : task.val_fn();
  return row;
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(600, 4000);
  std::printf("Table 1: seq2seq with exploding gradients (%lld iterations)\n",
              static_cast<long long>(iterations));
  const Row rows[3] = {run_default(false, iterations), run_default(true, iterations),
                       run_yellowfin(iterations)};

  std::vector<std::vector<std::string>> table = {
      {"Optimizer", "Loss", "TokenAcc (BLEU4 sub.)"}};
  for (const auto& r : rows) {
    table.push_back({r.name, r.diverged ? "diverge" : train::fmt(r.final_loss, 4),
                     r.diverged ? "-" : train::fmt(r.accuracy, 4)});
  }
  train::print_table("Table 1 (paper: w/o clip diverges; YF 2.75/31.59 beats 2.86/30.75)",
                     table);

  std::printf("\nShape check: row 1 diverges, YF loss <= manual-clip loss: %s / %s\n",
              rows[0].diverged ? "OK" : "MISMATCH",
              (!rows[2].diverged && rows[2].final_loss <= rows[1].final_loss * 1.1) ? "OK"
                                                                                    : "MISMATCH");
  return 0;
}
