// Internal-validation bench (Lemma 5 / Eqs. 11-14): the exact MSE
// recurrence vs the Monte-Carlo truth and the asymptotic surrogates, plus
// an ablation showing SingleStep's one-step optimality on the surrogate.
#include <cmath>
#include <cstdio>

#include "sim/quadratic_mse.hpp"
#include "train/reporting.hpp"
#include "tuner/single_step.hpp"

namespace sim = yf::sim;
namespace train = yf::train;

int main() {
  std::printf("Lemma 5 validation: exact MSE vs Monte Carlo vs surrogates\n");
  sim::MseParams p{0.2, 0.5, 1.0, 0.25, 1.5};
  const std::int64_t steps = 50;
  const auto exact = sim::exact_mse_curve(p, steps);
  const auto mc = sim::monte_carlo_mse_curve(p, steps, 20000, 99);
  const auto surr = sim::surrogate_mse_curve(p, steps);
  const auto robust = sim::robust_surrogate_mse_curve(p, steps);

  train::print_series("exact (Eq. 11)", exact, 10);
  train::print_series("monte-carlo", mc, 10);
  train::print_series("surrogate (Eq. 13)", surr, 10);
  train::print_series("robust surrogate (Eq. 14)", robust, 10);
  train::write_csv("lemma5_curves.csv", {"exact", "monte_carlo", "surrogate", "robust"},
                   {exact, mc, surr, robust});

  double max_rel = 0.0;
  for (std::size_t t = 0; t < exact.size(); ++t) {
    max_rel = std::max(max_rel, std::abs(mc[t] - exact[t]) / std::max(exact[t], 1e-9));
  }
  std::printf("\n  max |MC - exact| / exact over %lld steps: %.3f (should be ~ MC error)\n",
              static_cast<long long>(steps), max_rel);

  // Ablation: SingleStep's tuned (mu, alpha) vs grid points on the Eq. 15
  // surrogate objective mu D^2 + alpha^2 C.
  std::printf("\nSingleStep ablation (Eq. 15 objective, hmin = hmax = 1):\n");
  const double d = 1.5, c = 0.25;
  const auto tuned = yf::tuner::single_step(1.0, 1.0, c, d);
  std::printf("  tuned: mu = %.4f alpha = %.4f objective = %.5f\n", tuned.mu, tuned.alpha,
              sim::single_step_objective(tuned.mu, tuned.alpha, d, c));
  for (double x : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const double mu = x * x;
    const double alpha = (1.0 - x) * (1.0 - x);
    std::printf("  grid sqrt(mu) = %.1f: objective = %.5f\n", x,
                sim::single_step_objective(mu, alpha, d, c));
  }
  std::printf("Shape check: tuned objective must be the minimum of the column above.\n");
  return 0;
}
