// Figure 9: the importance of momentum adaptivity. YellowFin tunes the
// learning rate in all runs; the ablations force the applied momentum to
// a prescribed constant (0.0 or 0.9) instead of the tuned value.
//
// Expected shape: adaptively-tuned momentum converges at least as fast as
// both prescribed values on the char-LM ("TS") and CNN ("CIFAR100") tasks.
#include <cstdio>
#include <optional>

#include "common.hpp"

namespace train = yf::train;

namespace {

std::vector<double> run(const std::function<yfb::ModelTask(std::uint64_t)>& make,
                        std::optional<double> forced_mu, std::int64_t iterations) {
  auto task = make(1);
  yf::tuner::YellowFinOptions opts;
  opts.force_momentum = forced_mu;
  yf::tuner::YellowFin opt(task.params, opts);
  train::TrainOptions topts;
  topts.iterations = iterations;
  return train::train(opt, task.grad_fn, topts).losses;
}

void panel(const char* name, const std::function<yfb::ModelTask(std::uint64_t)>& make,
           std::int64_t iterations, std::int64_t window) {
  const auto adaptive = train::smooth_uniform(run(make, std::nullopt, iterations), window);
  const auto mu0 = train::smooth_uniform(run(make, 0.0, iterations), window);
  const auto mu9 = train::smooth_uniform(run(make, 0.9, iterations), window);
  train::print_series(std::string(name) + " YF adaptive momentum", adaptive, 10);
  train::print_series(std::string(name) + " YF momentum=0.0", mu0, 10);
  train::print_series(std::string(name) + " YF momentum=0.9", mu9, 10);
  std::printf("  %s final smoothed loss: adaptive %.4f | mu=0.0 %.4f | mu=0.9 %.4f\n", name,
              adaptive.back(), mu0.back(), mu9.back());
  const auto s0 = train::speedup_over(mu0, adaptive);
  const auto s9 = train::speedup_over(mu9, adaptive);
  std::printf("  %s adaptive speedup: vs mu=0.0 %s | vs mu=0.9 %s\n", name,
              train::fmt_speedup(s0.ratio).c_str(), train::fmt_speedup(s9.ratio).c_str());
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(400, 5000);
  const std::int64_t window = yfb::iters(30, 300);
  std::printf("Figure 9: YF adaptive momentum vs prescribed momentum 0.0 / 0.9\n");
  panel("TS-sub char-LSTM", [](std::uint64_t s) { return yfb::make_char_lm_task(s); },
        iterations, window);
  panel("CIFAR100-sub CNN", [](std::uint64_t s) { return yfb::make_cifar_task(10, s); },
        iterations, window);
  std::printf("\nShape check (paper): adaptive momentum converges observably faster than\n"
              "both fixed values on at least the char-LM task (speedups >= 1x).\n");
  return 0;
}
