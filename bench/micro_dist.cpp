// Microbenchmark (google-benchmark): socket-transport pull/push cost vs
// the in-process channel (DESIGN.md §12).
//
// Each measured iteration is one full worker round: pull the parameters,
// push a gradient, get the ApplyStats reply. The in-process channel
// prices the ShardedParamServer arithmetic alone; the socket channel adds
// two localhost frame round trips (serialize, FNV-1a checksum both ways,
// TCP_NODELAY loopback), so the delta IS the transport overhead the
// distributed engine pays per update. Bytes/s counts the payload doubles
// moved both directions, which is the number to watch when sizing a
// deployment's network budget.
//
// The socket bench sweeps a second `faultplan` axis (DESIGN.md §14):
// 0 runs the bare transport, 1 arms a seeded zero-probability
// FaultInjector on both endpoints. No fault ever fires, so the delta
// between the two prices the injection machinery itself -- the per-frame
// decision draw plus the FaultyStream indirection -- which is what chaos
// CI pays on every frame.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "async/param_server.hpp"
#include "common.hpp"
#include "dist/channel.hpp"
#include "dist/client.hpp"
#include "dist/fault.hpp"
#include "dist/master.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"

namespace {

namespace ag = yf::autograd;
namespace async = yf::async;
namespace dist = yf::dist;
namespace t = yf::tensor;

struct Fixture {
  explicit Fixture(std::int64_t dim) {
    t::Rng rng(7);
    ag::Variable master(rng.normal_tensor({dim}), true);
    opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{master}, 1e-4, 0.9);
    async::ParamServerOptions sopts;
    sopts.shards = 4;
    server = std::make_unique<async::ShardedParamServer>(opt, sopts);
    values.resize(static_cast<std::size_t>(dim));
    grad.resize(static_cast<std::size_t>(dim));
    for (auto& g : grad) g = 0.01 * rng.normal();
  }

  std::shared_ptr<yf::optim::Optimizer> opt;
  std::unique_ptr<async::ShardedParamServer> server;
  std::vector<double> values;
  std::vector<double> grad;
  async::PullTicket ticket;
};

void run_rounds(benchmark::State& state, Fixture& fx, dist::ParamChannel& channel,
                std::int64_t dim) {
  for (auto _ : state) {
    channel.pull(fx.values, fx.ticket);
    const auto stats = channel.push(fx.grad, fx.ticket);
    benchmark::DoNotOptimize(stats.update_index);
  }
  state.SetItemsProcessed(state.iterations());
  // One round moves the arena down (pull) and a gradient up (push).
  state.SetBytesProcessed(state.iterations() * dim * 2 *
                          static_cast<std::int64_t>(sizeof(double)));
  state.counters["dim"] = static_cast<double>(dim);
}

void BM_DistRoundTripInproc(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  Fixture fx(dim);
  dist::InprocChannel channel(*fx.server);
  run_rounds(state, fx, channel, dim);
}

void BM_DistRoundTripSocket(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  const bool armed = state.range(1) != 0;
  Fixture fx(dim);
  // Zero-probability plans: next() is drawn for every frame but always
  // decides kNone, so the bench measures pure machinery overhead.
  dist::FaultInjector master_inj{dist::FaultPlan::parse("seed=42")};
  dist::FaultInjector client_inj{dist::FaultPlan::parse("seed=43")};
  dist::MasterOptions mopts;
  if (armed) mopts.injector = &master_inj;
  dist::MasterServer net(*fx.server, mopts);
  dist::ClientOptions copts;
  copts.port = net.port();
  if (armed) copts.injector = &client_inj;
  dist::RemoteParamClient client(copts);
  run_rounds(state, fx, client, dim);
  client.shutdown();
  net.shutdown();
}

BENCHMARK(BM_DistRoundTripInproc)->Arg(1 << 10)->Arg(1 << 15)->ArgNames({"dim"})->UseRealTime();
BENCHMARK(BM_DistRoundTripSocket)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 1})
    ->Args({1 << 15, 0})
    ->ArgNames({"dim", "faultplan"})
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_dist");
}
