// Microbenchmarks (google-benchmark): per-step cost of the YellowFin
// measurement pipeline vs plain optimizers, across model sizes. The paper
// claims tuning overhead linear in model dimensionality -- the per-element
// time should be flat across sizes. Results land in
// BENCH_micro_tuner_overhead.json via yfb::JsonReporter.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/curvature_range.hpp"
#include "tuner/single_step.hpp"
#include "tuner/yellowfin.hpp"

namespace {

yf::autograd::Variable make_param(std::int64_t dim) {
  yf::tensor::Rng rng(1);
  return yf::autograd::Variable(rng.normal_tensor({dim}), true);
}

void fill_grad(yf::autograd::Variable& p, yf::tensor::Rng& rng) {
  auto& g = p.node()->ensure_grad();
  for (std::int64_t i = 0; i < g.size(); ++i) g[i] = rng.normal();
}

void BM_MomentumSgdStep(benchmark::State& state) {
  auto p = make_param(state.range(0));
  yf::optim::MomentumSGD opt({p}, 0.01, 0.9);
  yf::tensor::Rng rng(2);
  for (auto _ : state) {
    fill_grad(p, rng);
    opt.step();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MomentumSgdStep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AdamStep(benchmark::State& state) {
  auto p = make_param(state.range(0));
  yf::optim::Adam opt({p}, 0.001);
  yf::tensor::Rng rng(3);
  for (auto _ : state) {
    fill_grad(p, rng);
    opt.step();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AdamStep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_YellowFinStep(benchmark::State& state) {
  auto p = make_param(state.range(0));
  yf::tuner::YellowFin opt({p});
  yf::tensor::Rng rng(4);
  for (auto _ : state) {
    fill_grad(p, rng);
    opt.step();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_YellowFinStep)->Arg(1000)->Arg(10000)->Arg(100000);

// Step-only variants: the gradient is filled once, so the measured cost is
// the optimizer/tuner step itself rather than the rng fill that dominates
// the benchmarks above. The gap between BM_YellowFinStepOnly and
// BM_MomentumSgdStepOnly is the tuner's per-step overhead (the paper's
// "negligible" claim); both run as fused arena sweeps.
void BM_MomentumSgdStepOnly(benchmark::State& state) {
  auto p = make_param(state.range(0));
  yf::optim::MomentumSGD opt({p}, 1e-8, 0.9);
  yf::tensor::Rng rng(5);
  fill_grad(p, rng);
  for (auto _ : state) opt.step();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MomentumSgdStepOnly)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_YellowFinStepOnly(benchmark::State& state) {
  auto p = make_param(state.range(0));
  yf::tuner::YellowFinOptions opts;
  opts.lr0 = 1e-8;
  yf::tuner::YellowFin opt({p}, opts);
  yf::tensor::Rng rng(6);
  fill_grad(p, rng);
  for (auto _ : state) opt.step();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_YellowFinStepOnly)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SingleStepClosedForm(benchmark::State& state) {
  double d = 1.5, c = 0.3;
  for (auto _ : state) {
    auto r = yf::tuner::single_step(10.0, 1.0, c, d);
    benchmark::DoNotOptimize(r);
    d *= 1.0000001;  // defeat constant folding
  }
}
BENCHMARK(BM_SingleStepClosedForm);

void BM_CurvatureRangeUpdate(benchmark::State& state) {
  yf::tuner::CurvatureRange cr;
  double h = 1.0;
  for (auto _ : state) {
    cr.update(h);
    h = h * 1.001 + 1e-6;
    if (h > 1e6) h = 1.0;
  }
}
BENCHMARK(BM_CurvatureRangeUpdate);

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_tuner_overhead");
}
