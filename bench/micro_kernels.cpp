// Microbenchmarks (google-benchmark): fused arena kernels vs the
// historical per-tensor hot paths they replaced.
//
// The "Old*" benchmarks replicate the seed implementations faithfully:
// per-parameter tensor walks (three in-place passes for momentum, an
// operator[] element loop for Adam) and the tuner's flatten-copy +
// square() temporary + two-sweep EWMA measurement. The "Fused*"
// benchmarks run the production path: one core::kernels sweep over the
// ParamArena. Args are {num_params, param_size}: many small parameters
// stress per-tensor dispatch overhead, one big parameter isolates the
// pure sweep cost.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/arena.hpp"
#include "core/kernels.hpp"
#include "optim/adam.hpp"
#include "tensor/ops.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/distance_to_opt.hpp"
#include "tuner/ewma.hpp"
#include "tuner/gradient_variance.hpp"
#include "tuner/yellowfin.hpp"

namespace {

namespace ag = yf::autograd;
namespace t = yf::tensor;

std::vector<ag::Variable> make_params(std::int64_t count, std::int64_t size) {
  t::Rng rng(1);
  std::vector<ag::Variable> params;
  params.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    params.emplace_back(rng.normal_tensor({size}), true);
    auto g = params.back().node()->ensure_grad().data();
    for (auto& x : g) x = rng.normal();
  }
  return params;
}

void set_items(benchmark::State& state) {
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(1));
}

// -- Momentum step: old three-pass per-tensor walk vs one fused sweep. -------

void BM_OldPerTensorMomentum(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  std::vector<t::Tensor> velocity;
  for (const auto& p : params) velocity.push_back(t::Tensor::zeros(p.value().shape()));
  const double lr = 1e-6, mu = 0.9;
  for (auto _ : state) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto& v = velocity[i];
      const auto& g = params[i].grad();
      v.mul_(mu);
      v.add_(g, -lr);
      params[i].value().add_(v);
    }
  }
  set_items(state);
}
BENCHMARK(BM_OldPerTensorMomentum)->Args({256, 64})->Args({1, 100000});

void BM_FusedArenaMomentum(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  yf::optim::MomentumSGD opt(params, 1e-6, 0.9);
  for (auto _ : state) opt.step();
  set_items(state);
}
BENCHMARK(BM_FusedArenaMomentum)->Args({256, 64})->Args({1, 100000});

// -- Adam step: old operator[] element loop vs one fused sweep. --------------

void BM_OldPerTensorAdam(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  std::vector<t::Tensor> ms, vs;
  for (const auto& p : params) {
    ms.push_back(t::Tensor::zeros(p.value().shape()));
    vs.push_back(t::Tensor::zeros(p.value().shape()));
  }
  const double lr = 1e-6, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  std::int64_t iter = 0;
  for (auto _ : state) {
    const auto tstep = static_cast<double>(++iter);
    const double bc1 = 1.0 - std::pow(b1, tstep);
    const double bc2 = 1.0 - std::pow(b2, tstep);
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto& m = ms[i];
      auto& v = vs[i];
      const auto& g = params[i].grad();
      auto& x = params[i].value();
      for (std::int64_t j = 0; j < g.size(); ++j) {
        m[j] = b1 * m[j] + (1.0 - b1) * g[j];
        v[j] = b2 * v[j] + (1.0 - b2) * g[j] * g[j];
        x[j] -= lr * (m[j] / bc1) / (std::sqrt(v[j] / bc2) + eps);
      }
    }
  }
  set_items(state);
}
BENCHMARK(BM_OldPerTensorAdam)->Args({256, 64})->Args({1, 100000});

void BM_FusedArenaAdam(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  yf::optim::Adam opt(params, 1e-6);
  for (auto _ : state) opt.step();
  set_items(state);
}
BENCHMARK(BM_FusedArenaAdam)->Args({256, 64})->Args({1, 100000});

// -- Tuner measurement: old flatten + temporaries vs fused arena pass. -------

void BM_OldTunerMeasure(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  yf::tuner::TensorEwma g_avg(0.999), g2_avg(0.999);
  yf::tuner::DistanceToOpt distance(0.999);
  for (auto _ : state) {
    // Seed path: flatten-copy every gradient, then separate sweeps.
    std::int64_t total = 0;
    for (const auto& p : params) total += p.value().size();
    t::Tensor flat(t::Shape{total});
    std::int64_t off = 0;
    for (const auto& p : params) {
      const auto& g = p.grad();
      for (std::int64_t i = 0; i < g.size(); ++i) flat[off + i] = g[i];
      off += g.size();
    }
    double sq = 0.0;
    for (double g : flat.data()) sq += g * g;
    g_avg.update(flat);
    g2_avg.update(t::square(flat));  // square() temporary
    // Variance readout with debias clones, as the seed's value() did.
    const auto mean = g_avg.value();
    const auto mean_sq = g2_avg.value();
    double c = 0.0;
    auto m = mean.data();
    auto m2 = mean_sq.data();
    for (std::size_t i = 0; i < m.size(); ++i) c += m2[i] - m[i] * m[i];
    distance.update(std::sqrt(sq));
    benchmark::DoNotOptimize(c);
  }
  set_items(state);
}
BENCHMARK(BM_OldTunerMeasure)->Args({256, 64})->Args({1, 100000});

void BM_FusedTunerMeasure(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  yf::core::ParamArena arena(params);
  yf::tuner::GradientVariance variance(0.999);
  yf::tuner::DistanceToOpt distance(0.999);
  for (auto _ : state) {
    const auto grads = std::span<const double>(arena.grads());
    const double sq = yf::core::squared_norm(grads);
    variance.update(grads);  // one fused two-moment sweep, no copies
    const double c = variance.variance();
    distance.update(std::sqrt(sq));
    benchmark::DoNotOptimize(c);
  }
  set_items(state);
}
BENCHMARK(BM_FusedTunerMeasure)->Args({256, 64})->Args({1, 100000});

// -- Full YellowFin step on the arena (compare against the seed numbers
//    recorded by micro_tuner_overhead). ---------------------------------------

void BM_FusedYellowFinStep(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  yf::tuner::YellowFinOptions opts;
  opts.lr0 = 1e-8;
  yf::tuner::YellowFin opt(params, opts);
  for (auto _ : state) opt.step();
  set_items(state);
}
BENCHMARK(BM_FusedYellowFinStep)->Args({256, 64})->Args({1, 100000});

}  // namespace

BENCHMARK_MAIN();
