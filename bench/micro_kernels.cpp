// Microbenchmarks (google-benchmark): fused arena kernels vs the
// historical per-tensor hot paths they replaced, and the scalar vs SIMD
// kernel backends against each other.
//
// The "Old*" benchmarks replicate the seed implementations faithfully:
// per-parameter tensor walks (three in-place passes for momentum, an
// operator[] element loop for Adam) and the tuner's flatten-copy +
// square() temporary + two-sweep EWMA measurement. The "Fused*"
// benchmarks run the production path — one core::kernels sweep over the
// ParamArena — once per kernel backend (the /scalar and /simd capture
// suffix; simd runs skip on machines without AVX2). Args are
// {num_params, param_size}: many small parameters stress per-tensor
// dispatch overhead, one big parameter isolates the pure sweep cost.
// Results land in BENCH_micro_kernels.json via yfb::JsonReporter.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common.hpp"
#include "core/arena.hpp"
#include "core/kernels.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tuner/distance_to_opt.hpp"
#include "tuner/ewma.hpp"
#include "tuner/gradient_variance.hpp"
#include "tuner/yellowfin.hpp"

namespace {

namespace ag = yf::autograd;
namespace core = yf::core;
namespace t = yf::tensor;

/// Force `backend` for the duration of one benchmark run, restoring the
/// process default on destruction so the Old* baselines (whose tensor
/// ops dispatch through the same table) and filtered subsets always run
/// under the auto-detected backend regardless of registration order.
/// Converts to false (after flagging the run skipped) when the machine
/// cannot run the requested backend.
class BackendScope {
 public:
  BackendScope(benchmark::State& state, core::KernelBackend backend)
      : previous_(core::active_kernel_backend()) {
    if (backend == core::KernelBackend::kSimd && !core::simd_supported()) {
      state.SkipWithError("simd backend unsupported on this machine");
      ok_ = false;
      return;
    }
    core::set_kernel_backend(backend);
    state.SetLabel(core::kernel_backend_name(backend));
  }
  ~BackendScope() {
    if (ok_) core::set_kernel_backend(previous_);
  }
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;
  explicit operator bool() const { return ok_; }

 private:
  core::KernelBackend previous_;
  bool ok_ = true;
};

std::vector<ag::Variable> make_params(std::int64_t count, std::int64_t size) {
  t::Rng rng(1);
  std::vector<ag::Variable> params;
  params.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    params.emplace_back(rng.normal_tensor({size}), true);
    auto g = params.back().node()->ensure_grad().data();
    for (auto& x : g) x = rng.normal();
  }
  return params;
}

void set_items(benchmark::State& state) {
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(1));
}

// -- Momentum step: old three-pass per-tensor walk vs one fused sweep. -------

void BM_OldPerTensorMomentum(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  std::vector<t::Tensor> velocity;
  for (const auto& p : params) velocity.push_back(t::Tensor::zeros(p.value().shape()));
  const double lr = 1e-6, mu = 0.9;
  for (auto _ : state) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto& v = velocity[i];
      const auto& g = params[i].grad();
      v.mul_(mu);
      v.add_(g, -lr);
      params[i].value().add_(v);
    }
  }
  set_items(state);
}
BENCHMARK(BM_OldPerTensorMomentum)->Args({256, 64})->Args({1, 100000});

void BM_FusedArenaMomentum(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  auto params = make_params(state.range(0), state.range(1));
  yf::optim::MomentumSGD opt(params, 1e-6, 0.9);
  for (auto _ : state) opt.step();
  set_items(state);
}
BENCHMARK_CAPTURE(BM_FusedArenaMomentum, scalar, core::KernelBackend::kScalar)
    ->Args({256, 64})
    ->Args({1, 100000});
BENCHMARK_CAPTURE(BM_FusedArenaMomentum, simd, core::KernelBackend::kSimd)
    ->Args({256, 64})
    ->Args({1, 100000});

// -- Adam step: old operator[] element loop vs one fused sweep. --------------

void BM_OldPerTensorAdam(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  std::vector<t::Tensor> ms, vs;
  for (const auto& p : params) {
    ms.push_back(t::Tensor::zeros(p.value().shape()));
    vs.push_back(t::Tensor::zeros(p.value().shape()));
  }
  const double lr = 1e-6, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  std::int64_t iter = 0;
  for (auto _ : state) {
    const auto tstep = static_cast<double>(++iter);
    const double bc1 = 1.0 - std::pow(b1, tstep);
    const double bc2 = 1.0 - std::pow(b2, tstep);
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto& m = ms[i];
      auto& v = vs[i];
      const auto& g = params[i].grad();
      auto& x = params[i].value();
      for (std::int64_t j = 0; j < g.size(); ++j) {
        m[j] = b1 * m[j] + (1.0 - b1) * g[j];
        v[j] = b2 * v[j] + (1.0 - b2) * g[j] * g[j];
        x[j] -= lr * (m[j] / bc1) / (std::sqrt(v[j] / bc2) + eps);
      }
    }
  }
  set_items(state);
}
BENCHMARK(BM_OldPerTensorAdam)->Args({256, 64})->Args({1, 100000});

void BM_FusedArenaAdam(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  auto params = make_params(state.range(0), state.range(1));
  yf::optim::Adam opt(params, 1e-6);
  for (auto _ : state) opt.step();
  set_items(state);
}
BENCHMARK_CAPTURE(BM_FusedArenaAdam, scalar, core::KernelBackend::kScalar)
    ->Args({256, 64})
    ->Args({1, 100000});
BENCHMARK_CAPTURE(BM_FusedArenaAdam, simd, core::KernelBackend::kSimd)
    ->Args({256, 64})
    ->Args({1, 100000});

// -- Tuner measurement: old flatten + temporaries vs fused arena pass. -------

void BM_OldTunerMeasure(benchmark::State& state) {
  auto params = make_params(state.range(0), state.range(1));
  yf::tuner::TensorEwma g_avg(0.999), g2_avg(0.999);
  yf::tuner::DistanceToOpt distance(0.999);
  for (auto _ : state) {
    // Seed path: flatten-copy every gradient, then separate sweeps.
    std::int64_t total = 0;
    for (const auto& p : params) total += p.value().size();
    t::Tensor flat(t::Shape{total});
    std::int64_t off = 0;
    for (const auto& p : params) {
      const auto& g = p.grad();
      for (std::int64_t i = 0; i < g.size(); ++i) flat[off + i] = g[i];
      off += g.size();
    }
    double sq = 0.0;
    for (double g : flat.data()) sq += g * g;
    g_avg.update(flat);
    g2_avg.update(t::square(flat));  // square() temporary
    // Variance readout with debias clones, as the seed's value() did.
    const auto mean = g_avg.value();
    const auto mean_sq = g2_avg.value();
    double c = 0.0;
    auto m = mean.data();
    auto m2 = mean_sq.data();
    for (std::size_t i = 0; i < m.size(); ++i) c += m2[i] - m[i] * m[i];
    distance.update(std::sqrt(sq));
    benchmark::DoNotOptimize(c);
  }
  set_items(state);
}
BENCHMARK(BM_OldTunerMeasure)->Args({256, 64})->Args({1, 100000});

void BM_FusedTunerMeasure(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  auto params = make_params(state.range(0), state.range(1));
  yf::core::ParamArena arena(params);
  yf::tuner::GradientVariance variance(0.999);
  yf::tuner::DistanceToOpt distance(0.999);
  for (auto _ : state) {
    const auto grads = std::span<const double>(arena.grads());
    const double sq = yf::core::squared_norm(grads);
    variance.update(grads);  // one fused two-moment sweep, no copies
    const double c = variance.variance();
    distance.update(std::sqrt(sq));
    benchmark::DoNotOptimize(c);
  }
  set_items(state);
}
BENCHMARK_CAPTURE(BM_FusedTunerMeasure, scalar, core::KernelBackend::kScalar)
    ->Args({256, 64})
    ->Args({1, 100000});
BENCHMARK_CAPTURE(BM_FusedTunerMeasure, simd, core::KernelBackend::kSimd)
    ->Args({256, 64})
    ->Args({1, 100000});

// -- Full YellowFin step on the arena (compare against the seed numbers
//    recorded by micro_tuner_overhead). ---------------------------------------

void BM_FusedYellowFinStep(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  auto params = make_params(state.range(0), state.range(1));
  yf::tuner::YellowFinOptions opts;
  opts.lr0 = 1e-8;
  yf::tuner::YellowFin opt(params, opts);
  for (auto _ : state) opt.step();
  set_items(state);
}
BENCHMARK_CAPTURE(BM_FusedYellowFinStep, scalar, core::KernelBackend::kScalar)
    ->Args({256, 64})
    ->Args({1, 100000});
BENCHMARK_CAPTURE(BM_FusedYellowFinStep, simd, core::KernelBackend::kSimd)
    ->Args({256, 64})
    ->Args({1, 100000});

// -- Blocked matmul through the kernel backends. -----------------------------

void BM_Matmul(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  const auto m = state.range(0), k = state.range(1), n = state.range(2);
  t::Rng rng(9);
  const auto a = rng.normal_tensor({m, k});
  const auto b = rng.normal_tensor({k, n});
  for (auto _ : state) {
    auto c = t::matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK_CAPTURE(BM_Matmul, scalar, core::KernelBackend::kScalar)
    ->Args({64, 64, 64})
    ->Args({8, 512, 512});
BENCHMARK_CAPTURE(BM_Matmul, simd, core::KernelBackend::kSimd)
    ->Args({64, 64, 64})
    ->Args({8, 512, 512});

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_kernels");
}
