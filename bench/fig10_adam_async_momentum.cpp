// Figure 10: hand-tuning Adam's momentum (beta1) under asynchrony.
// 16 round-robin workers (staleness 15) on the word-LM task; the learning
// rate is fixed to the best synchronous value and beta1 sweeps
// {-0.2, 0.0, 0.3, 0.5, 0.7, 0.9}.
//
// Expected shape: the best asynchronous beta1 is well below the default
// 0.9 -- asynchrony-induced momentum substitutes for algorithmic momentum,
// so lower (even negative) beta1 gives measurably better training loss.
#include <cstdio>

#include "async/async_simulator.hpp"
#include "common.hpp"

namespace train = yf::train;

namespace {

std::vector<double> run_async_adam(double lr, double beta1, std::int64_t iterations) {
  auto task = yfb::make_word_lm_task(1);
  auto opt = std::make_shared<yf::optim::Adam>(task.params, lr, beta1);
  yf::async::AsyncTrainerOptions aopts;
  aopts.staleness = 15;
  yf::async::AsyncTrainer trainer(opt, task.grad_fn, aopts);
  std::vector<double> losses;
  for (std::int64_t it = 0; it < iterations; ++it) {
    const auto stats = trainer.step();
    losses.push_back(std::isfinite(stats.loss) ? std::min(stats.loss, 1e4) : 1e4);
  }
  return losses;
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(600, 30000);
  const std::int64_t window = yfb::iters(50, 1000);
  std::printf("Figure 10: Adam beta1 sweep under 16-worker asynchrony (PTB-sub)\n");

  // Best synchronous lr first (small grid).
  auto make = [](std::uint64_t s) { return yfb::make_word_lm_task(s); };
  const auto sync = yfb::tune(make, "adam", {0.001, 0.003, 0.01}, yfb::iters(300, 3000),
                              yfb::iters(25, 200));
  std::printf("  fixed lr from sync tuning: %g\n", sync.best_hyper);

  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  double best_final = 1e300, best_beta1 = 0.9;
  for (double beta1 : {-0.2, 0.0, 0.3, 0.5, 0.7, 0.9}) {
    const auto curve = train::smooth_uniform(run_async_adam(sync.best_hyper, beta1, iterations),
                                             window);
    train::print_series("async adam beta1=" + train::fmt(beta1, 2), curve, 10);
    names.push_back("beta1_" + train::fmt(beta1, 2));
    cols.push_back(curve);
    const double final = train::curve_min(curve);
    std::printf("  beta1 = %+.1f: best smoothed loss %.4f\n", beta1, final);
    if (final < best_final) {
      best_final = final;
      best_beta1 = beta1;
    }
  }
  train::write_csv("fig10_adam_async.csv", names, cols);
  std::printf("\n  best asynchronous beta1: %+.1f\n", best_beta1);
  std::printf("Shape check (paper): the best beta1 under asynchrony is < 0.9 -- prescribed\n"
              "momentum is sub-optimal when asynchrony adds its own momentum.\n");
  return 0;
}
