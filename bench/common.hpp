// Shared bench harness helpers: workload builders and optimizer factories.
//
// Every bench binary runs a "quick" protocol by default (single seed,
// reduced grids and iteration budgets, small models) so the whole bench
// directory executes in minutes; set YF_FULL=1 for the paper-protocol
// scale (3 seeds, full learning-rate grids, larger budgets).
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "async/param_server.hpp"
#include "core/env.hpp"
#include "core/kernels/backend.hpp"
#include "autograd/ops.hpp"
#include "data/bracket_lang.hpp"
#include "data/copy_translate.hpp"
#include "data/markov_text.hpp"
#include "data/synth_cifar.hpp"
#include "data/zipf_text.hpp"
#include "nn/language_model.hpp"
#include "nn/resnet.hpp"
#include "nn/seq2seq.hpp"
#include "optim/adagrad.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "optim/sgd.hpp"
#include "train/grid_search.hpp"
#include "train/metrics.hpp"
#include "train/reporting.hpp"
#include "train/trainer.hpp"
#include "tuner/yellowfin.hpp"

namespace yfb {

inline bool full_mode() {
  // Routed through core::env_str like every other knob (README operator
  // table): YF_FULL is a strict "1", anything else is quick mode.
  return yf::core::env_str("YF_FULL", "0") == "1";
}

inline std::string env_or(const char* name, const std::string& fallback) {
  return yf::core::env_str(name, fallback.c_str());
}

}  // namespace yfb

// ---------------------------------------------------------------------------
// Machine-readable bench output: JsonReporter mirrors the console output
// of the google-benchmark micro benches into BENCH_<name>.json (benchmark
// name, shape, ns/op, backend, git sha) so CI can archive the perf
// trajectory and gate regressions (bench/check_regression.py). Guarded on
// the header so the plain-main fig/table benches, which include this file
// but do not link google-benchmark, still build without it.
// ---------------------------------------------------------------------------
#if __has_include(<benchmark/benchmark.h>)
#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <iostream>

namespace yfb {

class JsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonReporter(std::string bench_name) : bench_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      // Runs skipped via SkipWithError (e.g. simd benches on a machine
      // without AVX2) report zero iterations; recording them would bake
      // ns_per_op=0 into the JSON and poison the regression baselines.
      if (run.iterations <= 0 || run.real_accumulated_time <= 0.0) continue;
      Entry entry;
      entry.name = run.benchmark_name();
      entry.shape = run.run_name.args;
      // Benches that flip kernel backends label each run; otherwise the
      // process-wide active backend applies.
      entry.backend =
          run.report_label.empty() ? yf::core::active_kernel_backend_name() : run.report_label;
      entry.iterations = run.iterations;
      entry.ns_per_op = run.iterations > 0
                            ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9
                            : 0.0;
      const auto items = run.counters.find("items_per_second");
      entry.items_per_second =
          items != run.counters.end() ? static_cast<double>(items->second) : 0.0;
      // Any other user counter (per-phase ns, thread counts, ...) is
      // carried into the JSON verbatim so downstream tooling can graph
      // phase breakdowns without reparsing console output.
      for (const auto& [name, counter] : run.counters) {
        if (name == "items_per_second") continue;
        entry.counters.emplace_back(name, static_cast<double>(counter));
      }
      entries_.push_back(std::move(entry));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const std::string dir = env_or("YF_BENCH_JSON_DIR", ".");
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "JsonReporter: cannot write " << path << "\n";
      return;
    }
    // Env pins win (CI exports the exact commit under test); otherwise
    // fall back to the sha CMake captured at configure time, and only
    // then to "unknown" (non-git checkout, or a non-CMake build).
#ifndef YF_CMAKE_GIT_SHA
#define YF_CMAKE_GIT_SHA "unknown"
#endif
    const std::string sha = env_or("YF_GIT_SHA", env_or("GITHUB_SHA", YF_CMAKE_GIT_SHA));
    out << "{\n";
    out << "  \"bench\": \"" << escape(bench_) << "\",\n";
    out << "  \"git_sha\": \"" << escape(sha) << "\",\n";
    out << "  \"default_backend\": \"" << yf::core::active_kernel_backend_name() << "\",\n";
    out << "  \"results\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"name\": \"" << escape(e.name) << "\", \"shape\": \"" << escape(e.shape)
          << "\", \"backend\": \"" << escape(e.backend) << "\", \"ns_per_op\": ";
      write_number(out, e.ns_per_op);
      out << ", \"items_per_second\": ";
      write_number(out, e.items_per_second);
      out << ", \"iterations\": " << e.iterations;
      if (!e.counters.empty()) {
        out << ", \"counters\": {";
        for (std::size_t c = 0; c < e.counters.size(); ++c) {
          out << (c == 0 ? "" : ", ") << "\"" << escape(e.counters[c].first) << "\": ";
          write_number(out, e.counters[c].second);
        }
        out << "}";
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "JSON written to " << path << "\n";
  }

 private:
  struct Entry {
    std::string name;
    std::string shape;
    std::string backend;
    std::int64_t iterations = 0;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
    std::vector<std::pair<std::string, double>> counters;  ///< user counters
  };

  /// JSON has no inf/nan literal: a non-finite counter streamed bare
  /// ("ns_per_op": inf) makes the whole file unparseable and used to take
  /// down the regression gate. Emit null instead; check_regression.py
  /// reports null-valued entries as invalid rather than crashing.
  static void write_number(std::ostream& out, double v) {
    if (std::isfinite(v)) {
      out << v;
    } else {
      out << "null";
    }
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars: drop
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<Entry> entries_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that also emits
/// BENCH_<bench_name>.json (to YF_BENCH_JSON_DIR, default cwd).
inline int benchmark_main_with_json(int argc, char** argv, const std::string& bench_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonReporter reporter(bench_name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace yfb
#endif  // __has_include(<benchmark/benchmark.h>)

namespace yfb {

// ---------------------------------------------------------------------------
// Engine selection: the same bench configs drive either the synchronous
// trainer ("sync", default) or the sharded parameter server ("server",
// real threads; YF_WORKERS worker replicas over YF_SHARDS shards). With
// one worker the server path reproduces the synchronous trajectory, so
// Table 2 numbers are directly comparable across engines.
// ---------------------------------------------------------------------------

inline std::string engine() { return yf::core::env_str("YF_ENGINE", "sync"); }

inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  // Checked parse (core/env.hpp): malformed values warn and fall back
  // instead of atoll-ing to 0 workers/shards.
  return yf::core::checked_env_int(name, fallback);
}

inline std::int64_t server_workers() { return std::max<std::int64_t>(1, env_int("YF_WORKERS", 1)); }
inline std::int64_t server_shards() { return std::max<std::int64_t>(1, env_int("YF_SHARDS", 4)); }

inline std::string engine_banner() {
  if (engine() != "server") return "engine: sync";
  return "engine: server (workers " + std::to_string(server_workers()) + ", shards " +
         std::to_string(server_shards()) + ")";
}

/// Iteration budget helper: quick vs full.
inline std::int64_t iters(std::int64_t quick, std::int64_t full) {
  return full_mode() ? full : quick;
}

inline std::vector<std::uint64_t> seeds() {
  return full_mode() ? std::vector<std::uint64_t>{1, 2, 3} : std::vector<std::uint64_t>{1};
}

/// A trainable task: loss/gradient closure over a model's parameters plus
/// an optional validation probe. The model is owned by the closures.
struct ModelTask {
  std::vector<yf::autograd::Variable> params;
  yf::train::GradFn grad_fn;
  std::function<double()> val_fn;  ///< optional (higher is better unless noted)
};

// ---------------------------------------------------------------------------
// Workload builders (DESIGN.md §2 substitutions). `seed` controls both the
// model init and the minibatch stream; the dataset "language"/prototypes
// use fixed seeds so all optimizers see the same task.
// ---------------------------------------------------------------------------

/// SynthCIFAR + MiniResNet ("CIFAR10/100 ResNet" substitute).
///
/// Config validated to reproduce the paper's CNN ordering in quick mode:
/// batch 32 keeps relative gradient variance at CIFAR-like levels (batch
/// sizes below ~8 make every method noise-bound and flip the ordering
/// toward Adam), noise 0.5 keeps the loss from saturating within the
/// horizon, and BN (inside MiniResNet) homogenizes per-layer gradient
/// scales as in the paper's ResNets.
inline ModelTask make_cifar_task(std::int64_t classes, std::uint64_t seed,
                                 std::int64_t batch = 32) {
  auto dataset = std::make_shared<yf::data::SynthCifar>([&] {
    yf::data::SynthCifarConfig cfg;
    cfg.classes = classes;
    cfg.height = 8;
    cfg.width = 8;
    cfg.noise = 0.5;
    cfg.jitter = 0.2;
    cfg.seed = 7;  // fixed task
    return cfg;
  }());
  yf::nn::MiniResNetConfig mc;
  mc.base_channels = 4;
  mc.blocks_per_stage = 1;
  mc.num_classes = classes;
  yf::tensor::Rng model_rng(seed);
  auto model = std::make_shared<yf::nn::MiniResNet>(mc, model_rng);
  auto rng = std::make_shared<yf::tensor::Rng>(seed + 1000);

  ModelTask task;
  task.params = model->parameters();
  task.grad_fn = [dataset, model, rng, batch] {
    const auto b = dataset->sample(batch, *rng);
    auto loss = yf::autograd::softmax_cross_entropy(
        model->forward(yf::autograd::Variable(b.images)), b.labels);
    loss.backward();
    return loss.value().item();
  };
  task.val_fn = [dataset, model] {
    const auto b = dataset->validation_batch(64);
    const auto logits = model->forward(yf::autograd::Variable(b.images));
    const auto& v = logits.value();
    std::int64_t correct = 0;
    const auto c = v.dim(1);
    for (std::int64_t i = 0; i < v.dim(0); ++i) {
      std::int64_t best = 0;
      for (std::int64_t j = 1; j < c; ++j)
        if (v[i * c + j] > v[i * c + best]) best = j;
      if (best == b.labels[static_cast<std::size_t>(i)]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(v.dim(0));
  };
  return task;
}

/// Generic LSTM-LM task over a token-batch sampler.
inline ModelTask make_lm_task(
    std::function<std::vector<std::int64_t>(std::int64_t, std::int64_t, yf::tensor::Rng&)>
        sample_batch,
    const yf::nn::LanguageModelConfig& cfg, std::uint64_t seed, std::int64_t batch = 6,
    std::int64_t seq_plus1 = 13, std::function<double(const ModelTask&)> /*unused*/ = {}) {
  yf::tensor::Rng model_rng(seed);
  auto model = std::make_shared<yf::nn::LSTMLanguageModel>(cfg, model_rng);
  auto rng = std::make_shared<yf::tensor::Rng>(seed + 2000);
  auto sampler = std::make_shared<decltype(sample_batch)>(std::move(sample_batch));

  ModelTask task;
  task.params = model->parameters();
  task.grad_fn = [model, rng, sampler, batch, seq_plus1] {
    const auto tokens = (*sampler)(batch, seq_plus1, *rng);
    auto loss = model->loss(tokens, batch, seq_plus1);
    loss.backward();
    return loss.value().item();
  };
  // Validation perplexity (lower is better): exp of held-out loss.
  auto val_rng = std::make_shared<yf::tensor::Rng>(31337);
  task.val_fn = [model, sampler, batch, seq_plus1, val_rng] {
    yf::tensor::Rng rng_copy = *val_rng;  // same held-out batch every call
    const auto tokens = (*sampler)(batch, seq_plus1, rng_copy);
    return std::exp(model->loss(tokens, batch, seq_plus1).value().item());
  };
  return task;
}

/// Char-level LM on MarkovText ("TinyShakespeare" substitute).
inline ModelTask make_char_lm_task(std::uint64_t seed) {
  auto dataset = std::make_shared<yf::data::MarkovText>([] {
    yf::data::MarkovTextConfig cfg;
    cfg.vocab = 33;
    cfg.branching = 3;
    cfg.seed = 13;
    return cfg;
  }());
  yf::nn::LanguageModelConfig lc;
  lc.vocab = 33;
  lc.embed_dim = 12;
  lc.hidden = 16;
  lc.layers = 2;
  return make_lm_task(
      [dataset](std::int64_t b, std::int64_t s, yf::tensor::Rng& rng) {
        return dataset->sample_batch(b, s, rng);
      },
      lc, seed);
}

/// Word-level LM on ZipfText ("PTB" substitute).
inline ModelTask make_word_lm_task(std::uint64_t seed, bool tied = false) {
  auto dataset = std::make_shared<yf::data::ZipfText>([] {
    yf::data::ZipfTextConfig cfg;
    cfg.vocab = 80;
    cfg.seed = 17;
    return cfg;
  }());
  yf::nn::LanguageModelConfig lc;
  lc.vocab = 80;
  lc.embed_dim = 16;
  lc.hidden = 16;
  lc.layers = 2;
  lc.tie_weights = tied;
  return make_lm_task(
      [dataset](std::int64_t b, std::int64_t s, yf::tensor::Rng& rng) {
        return dataset->sample_batch(b, s, rng);
      },
      lc, seed);
}

/// BracketLang parsing-as-LM ("WSJ constituency parsing" substitute);
/// val_fn returns bracket F1 (higher is better).
inline ModelTask make_parse_task(std::uint64_t seed) {
  auto dataset = std::make_shared<yf::data::BracketLang>([] {
    yf::data::BracketLangConfig cfg;
    cfg.labels = 6;
    cfg.terminals = 10;
    cfg.seed = 19;
    return cfg;
  }());
  yf::nn::LanguageModelConfig lc;
  lc.vocab = dataset->vocab();
  lc.embed_dim = 12;
  lc.hidden = 16;
  lc.layers = 2;
  yf::tensor::Rng model_rng(seed);
  auto model = std::make_shared<yf::nn::LSTMLanguageModel>(lc, model_rng);
  auto rng = std::make_shared<yf::tensor::Rng>(seed + 3000);

  const std::int64_t batch = 6, seq_plus1 = 17;
  ModelTask task;
  task.params = model->parameters();
  task.grad_fn = [model, dataset, rng, batch, seq_plus1] {
    const auto tokens = dataset->sample_batch(batch, seq_plus1, *rng);
    auto loss = model->loss(tokens, batch, seq_plus1);
    loss.backward();
    return loss.value().item();
  };
  task.val_fn = [model, dataset, batch, seq_plus1] {
    yf::tensor::Rng val_rng(424242);
    const auto tokens = dataset->sample_batch(batch, seq_plus1, val_rng);
    const auto seq = seq_plus1 - 1;
    std::vector<std::int64_t> inputs(static_cast<std::size_t>(batch * seq)),
        targets(static_cast<std::size_t>(batch * seq));
    for (std::int64_t b = 0; b < batch; ++b)
      for (std::int64_t t = 0; t < seq; ++t) {
        inputs[static_cast<std::size_t>(b * seq + t)] =
            tokens[static_cast<std::size_t>(b * seq_plus1 + t)];
        targets[static_cast<std::size_t>(b * seq + t)] =
            tokens[static_cast<std::size_t>(b * seq_plus1 + t + 1)];
      }
    const auto logits = model->logits(inputs, batch, seq);
    const auto& v = logits.value();
    std::vector<std::int64_t> preds(static_cast<std::size_t>(batch * seq));
    const auto c = v.dim(1);
    for (std::int64_t r = 0; r < batch * seq; ++r) {
      std::int64_t best = 0;
      for (std::int64_t j = 1; j < c; ++j)
        if (v[r * c + j] > v[r * c + best]) best = j;
      preds[static_cast<std::size_t>(r)] = best;
    }
    return yf::data::BracketLang::bracket_f1(preds, targets);
  };
  return task;
}

/// Seq2seq on CopyTranslate (Table 1 / Fig. 6 substitute for ConvS2S on
/// IWSLT'14). `init_scale` scales the recurrent init; `spike_prob` and
/// `spike_scale` inject occasional steep-slope batches -- the paper's own
/// characterization of RNN landscapes ("occasional but very steep slopes",
/// Sec. 3.3) -- which at this model scale do not arise spontaneously
/// (gates saturate; see DESIGN.md §2). A spiked batch multiplies the loss
/// (hence the gradient) by `spike_scale`, reproducing the gradient
/// explosion the clipping machinery must survive.
inline ModelTask make_seq2seq_task(std::uint64_t seed, double init_scale,
                                   double spike_prob = 0.0, double spike_scale = 1.0) {
  auto dataset = std::make_shared<yf::data::CopyTranslate>([] {
    yf::data::CopyTranslateConfig cfg;
    cfg.vocab = 12;
    cfg.src_len = 6;
    cfg.seed = 23;
    return cfg;
  }());
  yf::nn::Seq2SeqConfig sc;
  sc.src_vocab = dataset->src_vocab();
  sc.tgt_vocab = dataset->tgt_vocab();
  sc.embed_dim = 10;
  sc.hidden = 16;
  sc.layers = 1;
  sc.init_scale = init_scale;
  yf::tensor::Rng model_rng(seed);
  auto model = std::make_shared<yf::nn::Seq2Seq>(sc, model_rng);
  auto rng = std::make_shared<yf::tensor::Rng>(seed + 4000);

  ModelTask task;
  task.params = model->parameters();
  task.grad_fn = [model, dataset, rng, spike_prob, spike_scale] {
    const auto b = dataset->sample(6, *rng);
    auto loss = model->loss(b.src, b.src_len, b.tgt, b.tgt_len_plus1, b.batch);
    if (spike_prob > 0.0 && rng->bernoulli(spike_prob)) {
      loss = yf::autograd::mul_scalar(loss, spike_scale);
    }
    loss.backward();
    return loss.value().item();
  };
  task.val_fn = [model, dataset] {
    yf::tensor::Rng val_rng(515151);
    const auto b = dataset->sample(16, val_rng);
    return model->token_accuracy(b.src, b.src_len, b.tgt, b.tgt_len_plus1, b.batch);
  };
  return task;
}

// ---------------------------------------------------------------------------
// Optimizer factory and run helpers.
// ---------------------------------------------------------------------------

inline std::shared_ptr<yf::optim::Optimizer> make_optimizer(
    const std::string& name, std::vector<yf::autograd::Variable> params, double lr,
    double momentum = 0.9) {
  if (name == "sgd") return std::make_shared<yf::optim::SGD>(std::move(params), lr);
  if (name == "momentum_sgd") {
    return std::make_shared<yf::optim::MomentumSGD>(std::move(params), lr, momentum);
  }
  if (name == "adam") return std::make_shared<yf::optim::Adam>(std::move(params), lr);
  if (name == "adagrad") return std::make_shared<yf::optim::AdaGrad>(std::move(params), lr);
  if (name == "yellowfin") {
    yf::tuner::YellowFinOptions opts;
    opts.lr_factor = lr;  // lr parameter doubles as the Fig. 11 factor
    if (!full_mode()) {
      // Scale the measurement timescale with the shortened horizon: the
      // paper pairs beta = 0.999 (EWMA timescale 1000) with 20k-120k
      // iteration runs (<= 5% of horizon). Quick-mode runs are ~1e3
      // iterations, so beta = 0.97 / 50-step warm-up keeps the same ratio.
      opts.beta = 0.995;
      opts.slow_start_iters = 50;
    }
    return std::make_shared<yf::tuner::YellowFin>(std::move(params), opts);
  }
  throw std::invalid_argument("make_optimizer: unknown optimizer " + name);
}

/// Train through the sharded parameter server: the master optimizer owns
/// one task's parameters; each worker gets its own replica task (same
/// fixed dataset, per-worker minibatch stream) and pushes gradients. The
/// loss curve is in server apply order, padded to `iterations` entries.
inline std::vector<double> run_one_server(
    const std::function<ModelTask(std::uint64_t)>& make_task, const std::string& opt_name,
    double lr, std::int64_t iterations, std::uint64_t seed) {
  auto master = make_task(seed);
  auto opt = make_optimizer(opt_name, master.params, lr);
  yf::async::ParamServerOptions sopts;
  sopts.shards = server_shards();
  sopts.measure = false;  // loss-curve runs don't pay for measurement
  yf::async::ShardedParamServer server(opt, sopts);

  const std::int64_t workers = server_workers();
  std::vector<yf::async::ServerWorker> worker_tasks;
  worker_tasks.reserve(static_cast<std::size_t>(workers));
  for (std::int64_t w = 0; w < workers; ++w) {
    auto task = make_task(seed + 100000 * static_cast<std::uint64_t>(w + 1));
    worker_tasks.push_back({std::move(task.params), std::move(task.grad_fn)});
  }
  yf::async::ServerRunOptions ropts;
  ropts.steps_per_worker = std::max<std::int64_t>(1, iterations / workers);
  const auto result = yf::train::train_server(server, worker_tasks, ropts, 1e4);
  auto losses = result.losses;
  while (static_cast<std::int64_t>(losses.size()) < iterations) {
    losses.push_back(losses.empty() ? 1e4 : losses.back());
  }
  losses.resize(static_cast<std::size_t>(iterations));
  return losses;
}

/// Train a freshly-built task with a named optimizer; returns the raw loss
/// curve (padded with divergence_bound if the run diverges). Dispatches on
/// YF_ENGINE: "sync" (default) or "server" (sharded parameter server).
inline std::vector<double> run_one(const std::function<ModelTask(std::uint64_t)>& make_task,
                                   const std::string& opt_name, double lr,
                                   std::int64_t iterations, std::uint64_t seed) {
  if (engine() == "server") return run_one_server(make_task, opt_name, lr, iterations, seed);
  auto task = make_task(seed);
  auto opt = make_optimizer(opt_name, task.params, lr);
  yf::train::TrainOptions topts;
  topts.iterations = iterations;
  topts.divergence_bound = 1e4;
  return yf::train::train(*opt, task.grad_fn, topts).losses;
}

/// Grid-search an optimizer per the Section 5.1 protocol and return the
/// best seed-averaged smoothed curve.
inline yf::train::GridSearchResult tune(const std::function<ModelTask(std::uint64_t)>& make_task,
                                        const std::string& opt_name,
                                        const std::vector<double>& grid,
                                        std::int64_t iterations,
                                        std::int64_t smooth_window = 50) {
  yf::train::GridSearchOptions gopts;
  gopts.grid = grid;
  gopts.seeds = seeds();
  gopts.smooth_window = smooth_window;
  return yf::train::grid_search(
      [&](double lr, std::uint64_t seed) {
        return run_one(make_task, opt_name, lr, iterations, seed);
      },
      gopts);
}

}  // namespace yfb
