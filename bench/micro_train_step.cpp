// Full training-step microbenchmarks: forward + backward + optimizer
// apply for the LSTM language model and an autograd quadratic
// (least-squares) model, on the two graph engines:
//
//   BM_*_Heap  -- the historical per-step shared_ptr graph: every op
//                 allocates a fresh node, value and grad tensor;
//   BM_*_Tape  -- the GraphTape path: after a one-step warm-up the graph
//                 replays out of the tape's workspace with zero heap
//                 allocations (tests/alloc_count_test.cpp proves the
//                 zero; this bench measures what it buys in wall time).
//
// Both engines produce bit-identical trajectories (tests/tape_test.cpp),
// so the delta is pure memory-management overhead. The Tape variants take
// a trailing `threads` arg (1/2/4) driving the parallel backward engine
// (DESIGN.md §10) -- trajectories stay bit-identical across thread
// counts, so the per-thread delta is pure scheduling. Every train-step
// bench also reports per-phase wall time (forward_ns / backward_ns /
// apply_ns averaged per step) as counters, which JsonReporter carries
// into BENCH_micro_train_step.json next to ns/op. The _TapeOverlap
// variant fuses the apply into backward via completion hooks
// (optim::OverlappedApply), so its backward_ns absorbs most of apply_ns.
//
// The Tape variants additionally take a trailing `fused` arg (0/1)
// flipping the tape's elementwise-chain fusion pass (DESIGN.md §13) via
// set_tape_fusion, and report the tape's fusion counters (fused_nodes /
// fusion_chains / eliminated_intermediate_bytes) plus the workspace
// high-water mark (workspace_peak_bytes) so the JSON shows both the
// time and the memory the fused sweeps buy.
//
// Args: the LM runs {batch, seq_len_plus1[, threads, fused]}, the
// quadratic runs {rows, dim[, threads, fused]}.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <type_traits>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"
#include "common.hpp"
#include "core/parallel.hpp"
#include "data/markov_text.hpp"
#include "nn/language_model.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace {

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

/// Accumulated per-phase wall time; reported as mean ns/step counters so
/// the JSON carries the forward/backward/apply split alongside ns/op.
struct PhaseClock {
  double forward_ns = 0.0, backward_ns = 0.0, apply_ns = 0.0;

  template <typename F>
  double timed(double PhaseClock::* phase, F&& f) {
    const auto t0 = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      this->*phase += std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      return 0.0;
    } else {
      const double out = f();
      this->*phase += std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      return out;
    }
  }

  void report(benchmark::State& state) const {
    const double n = static_cast<double>(state.iterations() > 0 ? state.iterations() : 1);
    state.counters["forward_ns"] = benchmark::Counter(forward_ns / n);
    state.counters["backward_ns"] = benchmark::Counter(backward_ns / n);
    state.counters["apply_ns"] = benchmark::Counter(apply_ns / n);
  }
};

/// Tape benches take a trailing threads arg; spin up the pool helpers
/// outside the timed region and point the tape's backward engine at them.
void use_backward_threads(ag::GraphTape& tape, std::int64_t threads) {
  if (threads > 1) {
    yf::core::ThreadPool::instance().ensure_workers(static_cast<std::size_t>(threads - 1));
  }
  tape.set_backward_threads(static_cast<int>(threads));
}

/// The fusion toggle is a process-wide setting: force it per bench run
/// and restore afterwards so later benches see the environment default.
struct FusionToggle {
  bool prev;
  explicit FusionToggle(bool on) : prev(ag::tape_fusion_enabled()) { ag::set_tape_fusion(on); }
  ~FusionToggle() { ag::set_tape_fusion(prev); }
};

/// Fusion + workspace counters for the tape benches: what the fused
/// sweeps eliminated, and the peak workspace footprint of the run.
void report_tape_counters(benchmark::State& state, const ag::GraphTape& tape) {
  state.counters["fused_nodes"] = benchmark::Counter(static_cast<double>(tape.fused_nodes()));
  state.counters["fusion_chains"] =
      benchmark::Counter(static_cast<double>(tape.fusion_chains()));
  state.counters["eliminated_intermediate_bytes"] =
      benchmark::Counter(static_cast<double>(tape.eliminated_intermediate_bytes()));
  state.counters["workspace_peak_bytes"] =
      benchmark::Counter(static_cast<double>(tape.workspace().high_water_bytes()));
}

struct LmTask {
  std::vector<std::vector<std::int64_t>> batches;
  std::unique_ptr<nn::LSTMLanguageModel> model;
  std::unique_ptr<yf::tuner::YellowFin> opt;
  std::int64_t batch, seq_plus1;

  LmTask(std::int64_t batch_size, std::int64_t seq_len_plus1)
      : batch(batch_size), seq_plus1(seq_len_plus1) {
    yf::data::MarkovTextConfig dcfg;
    dcfg.vocab = 32;
    dcfg.branching = 3;
    yf::data::MarkovText dataset(dcfg);
    t::Rng data_rng(17);
    for (int i = 0; i < 8; ++i) {
      batches.push_back(dataset.sample_batch(batch, seq_plus1, data_rng));
    }
    nn::LanguageModelConfig cfg;
    cfg.vocab = 32;
    cfg.embed_dim = 16;
    cfg.hidden = 24;
    cfg.layers = 2;
    t::Rng model_rng(1);
    model = std::make_unique<nn::LSTMLanguageModel>(cfg, model_rng);
    opt = std::make_unique<yf::tuner::YellowFin>(model->parameters());
  }

  double step(std::size_t i, PhaseClock& clock) {
    opt->zero_grad();
    ag::Variable loss;
    const double out = clock.timed(&PhaseClock::forward_ns, [&] {
      loss = model->loss(batches[i % batches.size()], batch, seq_plus1);
      return loss.value().item();
    });
    clock.timed(&PhaseClock::backward_ns, [&] { loss.backward(); });
    clock.timed(&PhaseClock::apply_ns, [&] { opt->step(); });
    return out;
  }
};

void BM_LmTrainStep_Heap(benchmark::State& state) {
  LmTask task(state.range(0), state.range(1));
  PhaseClock clock;
  std::size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) sink += task.step(i++, clock);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  clock.report(state);
}

void BM_LmTrainStep_Tape(benchmark::State& state) {
  FusionToggle fusion(state.range(3) != 0);
  LmTask task(state.range(0), state.range(1));
  ag::GraphTape tape;
  use_backward_threads(tape, state.range(2));
  ag::TapeScope scope(&tape);
  PhaseClock warmup_clock, clock;
  std::size_t i = 0;
  double sink = 0.0;
  // Warm-up outside the timed loop: record the graph, size the workspace,
  // build the backward engine's dependency plan, and (fused runs) let the
  // fusion pass stabilize, rebuild, and land its first fused replay.
  for (int w = 0; w < 4; ++w) {
    tape.begin_step();
    sink += task.step(i++, warmup_clock);
  }
  for (auto _ : state) {
    tape.begin_step();
    sink += task.step(i++, clock);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  clock.report(state);
  report_tape_counters(state, tape);
}

BENCHMARK(BM_LmTrainStep_Heap)->Args({4, 9})->Args({8, 17});
BENCHMARK(BM_LmTrainStep_Tape)
    ->Args({4, 9, 1, 0})
    ->Args({4, 9, 1, 1})
    ->Args({8, 17, 1, 0})
    ->Args({8, 17, 1, 1})
    ->Args({8, 17, 2, 1})
    ->Args({8, 17, 4, 1});

struct QuadraticTask {
  ag::Variable w, x, y;
  std::unique_ptr<yf::optim::MomentumSGD> opt;

  QuadraticTask(std::int64_t rows, std::int64_t dim) {
    t::Rng rng(23);
    w = ag::Variable(rng.normal_tensor({dim, dim}, 0.0, 0.1), /*requires_grad=*/true);
    x = ag::Variable(rng.normal_tensor({rows, dim}));
    y = ag::Variable(rng.normal_tensor({rows, dim}));
    opt = std::make_unique<yf::optim::MomentumSGD>(std::vector<ag::Variable>{w}, 1e-3, 0.9);
  }

  double step(PhaseClock& clock) {
    opt->zero_grad();
    ag::Variable loss;
    const double out = clock.timed(&PhaseClock::forward_ns, [&] {
      loss = ag::mean(ag::square(ag::sub(ag::matmul(x, w), y)));
      return loss.value().item();
    });
    clock.timed(&PhaseClock::backward_ns, [&] { loss.backward(); });
    clock.timed(&PhaseClock::apply_ns, [&] { opt->step(); });
    return out;
  }
};

void BM_QuadraticTrainStep_Heap(benchmark::State& state) {
  QuadraticTask task(state.range(0), state.range(1));
  PhaseClock clock;
  double sink = 0.0;
  for (auto _ : state) sink += task.step(clock);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  clock.report(state);
}

void BM_QuadraticTrainStep_Tape(benchmark::State& state) {
  FusionToggle fusion(state.range(3) != 0);
  QuadraticTask task(state.range(0), state.range(1));
  ag::GraphTape tape;
  use_backward_threads(tape, state.range(2));
  ag::TapeScope scope(&tape);
  PhaseClock warmup_clock, clock;
  double sink = 0.0;
  for (int w = 0; w < 4; ++w) {
    tape.begin_step();
    sink += task.step(warmup_clock);
  }
  for (auto _ : state) {
    tape.begin_step();
    sink += task.step(clock);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  clock.report(state);
  report_tape_counters(state, tape);
}

/// Backward/apply overlap: MomentumSGD shard updates fire from the tape's
/// completion hooks while backward drains (optim::OverlappedApply), so
/// the apply phase collapses into backward_ns.
void BM_QuadraticTrainStep_TapeOverlap(benchmark::State& state) {
  QuadraticTask task(state.range(0), state.range(1));
  ag::GraphTape tape;
  use_backward_threads(tape, state.range(2));
  ag::TapeScope scope(&tape);
  yf::optim::OverlappedApply overlap(*task.opt, tape, /*max_shards=*/4);
  PhaseClock clock;
  auto step = [&](PhaseClock& c) {
    tape.begin_step();
    task.opt->zero_grad();
    overlap.begin_step();
    ag::Variable loss;
    const double out = c.timed(&PhaseClock::forward_ns, [&] {
      loss = ag::mean(ag::square(ag::sub(ag::matmul(task.x, task.w), task.y)));
      return loss.value().item();
    });
    c.timed(&PhaseClock::backward_ns, [&] { loss.backward(); });
    c.timed(&PhaseClock::apply_ns, [&] { overlap.finish(); });
    return out;
  };
  PhaseClock warmup_clock;
  double sink = step(warmup_clock);
  for (auto _ : state) sink += step(clock);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  clock.report(state);
}

BENCHMARK(BM_QuadraticTrainStep_Heap)->Args({16, 16})->Args({32, 64});
BENCHMARK(BM_QuadraticTrainStep_Tape)
    ->Args({16, 16, 1, 0})
    ->Args({16, 16, 1, 1})
    ->Args({32, 64, 1, 0})
    ->Args({32, 64, 1, 1})
    ->Args({32, 64, 2, 1})
    ->Args({32, 64, 4, 1});
BENCHMARK(BM_QuadraticTrainStep_TapeOverlap)
    ->Args({32, 64, 1})
    ->Args({32, 64, 4});

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_train_step");
}
