// Full training-step microbenchmarks: forward + backward + optimizer
// apply for the LSTM language model and an autograd quadratic
// (least-squares) model, on the two graph engines:
//
//   BM_*_Heap  -- the historical per-step shared_ptr graph: every op
//                 allocates a fresh node, value and grad tensor;
//   BM_*_Tape  -- the GraphTape path: after a one-step warm-up the graph
//                 replays out of the tape's workspace with zero heap
//                 allocations (tests/alloc_count_test.cpp proves the
//                 zero; this bench measures what it buys in wall time).
//
// Both engines produce bit-identical trajectories (tests/tape_test.cpp),
// so the delta is pure memory-management overhead. Args: the LM runs
// {batch, seq_len_plus1}, the quadratic runs {rows, dim}. Results land
// in BENCH_micro_train_step.json via yfb::JsonReporter.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"
#include "common.hpp"
#include "data/markov_text.hpp"
#include "nn/language_model.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace {

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

struct LmTask {
  std::vector<std::vector<std::int64_t>> batches;
  std::unique_ptr<nn::LSTMLanguageModel> model;
  std::unique_ptr<yf::tuner::YellowFin> opt;
  std::int64_t batch, seq_plus1;

  LmTask(std::int64_t batch_size, std::int64_t seq_len_plus1)
      : batch(batch_size), seq_plus1(seq_len_plus1) {
    yf::data::MarkovTextConfig dcfg;
    dcfg.vocab = 32;
    dcfg.branching = 3;
    yf::data::MarkovText dataset(dcfg);
    t::Rng data_rng(17);
    for (int i = 0; i < 8; ++i) {
      batches.push_back(dataset.sample_batch(batch, seq_plus1, data_rng));
    }
    nn::LanguageModelConfig cfg;
    cfg.vocab = 32;
    cfg.embed_dim = 16;
    cfg.hidden = 24;
    cfg.layers = 2;
    t::Rng model_rng(1);
    model = std::make_unique<nn::LSTMLanguageModel>(cfg, model_rng);
    opt = std::make_unique<yf::tuner::YellowFin>(model->parameters());
  }

  double step(std::size_t i) {
    opt->zero_grad();
    auto loss = model->loss(batches[i % batches.size()], batch, seq_plus1);
    loss.backward();
    opt->step();
    return loss.value().item();
  }
};

void BM_LmTrainStep_Heap(benchmark::State& state) {
  LmTask task(state.range(0), state.range(1));
  std::size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) sink += task.step(i++);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_LmTrainStep_Tape(benchmark::State& state) {
  LmTask task(state.range(0), state.range(1));
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  std::size_t i = 0;
  double sink = 0.0;
  // Warm-up outside the timed loop: record the graph, size the workspace.
  tape.begin_step();
  sink += task.step(i++);
  for (auto _ : state) {
    tape.begin_step();
    sink += task.step(i++);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_LmTrainStep_Heap)->Args({4, 9})->Args({8, 17});
BENCHMARK(BM_LmTrainStep_Tape)->Args({4, 9})->Args({8, 17});

struct QuadraticTask {
  ag::Variable w, x, y;
  std::unique_ptr<yf::optim::MomentumSGD> opt;

  QuadraticTask(std::int64_t rows, std::int64_t dim) {
    t::Rng rng(23);
    w = ag::Variable(rng.normal_tensor({dim, dim}, 0.0, 0.1), /*requires_grad=*/true);
    x = ag::Variable(rng.normal_tensor({rows, dim}));
    y = ag::Variable(rng.normal_tensor({rows, dim}));
    opt = std::make_unique<yf::optim::MomentumSGD>(std::vector<ag::Variable>{w}, 1e-3, 0.9);
  }

  double step() {
    opt->zero_grad();
    auto loss = ag::mean(ag::square(ag::sub(ag::matmul(x, w), y)));
    loss.backward();
    opt->step();
    return loss.value().item();
  }
};

void BM_QuadraticTrainStep_Heap(benchmark::State& state) {
  QuadraticTask task(state.range(0), state.range(1));
  double sink = 0.0;
  for (auto _ : state) sink += task.step();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_QuadraticTrainStep_Tape(benchmark::State& state) {
  QuadraticTask task(state.range(0), state.range(1));
  ag::GraphTape tape;
  ag::TapeScope scope(&tape);
  tape.begin_step();
  double sink = task.step();
  for (auto _ : state) {
    tape.begin_step();
    sink += task.step();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_QuadraticTrainStep_Heap)->Args({16, 16})->Args({32, 64});
BENCHMARK(BM_QuadraticTrainStep_Tape)->Args({16, 16})->Args({32, 64});

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_train_step");
}
