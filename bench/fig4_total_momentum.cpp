// Figure 4: total-momentum measurement under YellowFin.
//   left    synchronous: measured total momentum == algorithmic momentum
//   middle  N async workers: measured total momentum > target (asynchrony
//           adds momentum)
//   right   closed-loop YellowFin lowers algorithmic momentum (possibly
//           below zero) until total momentum matches the target.
//
// One worker-count config drives BOTH asynchrony engines: the
// deterministic round-robin simulator (staleness = workers - 1, scripted)
// and the sharded parameter server (real threads over YF_SHARDS shards,
// emergent staleness). The server panes use the same CNN task with one
// model replica per worker.
#include <algorithm>
#include <cstdio>

#include "async/async_simulator.hpp"
#include "async/param_server.hpp"
#include "common.hpp"

namespace train = yf::train;

namespace {

struct Config {
  std::int64_t workers;     ///< round-robin slots (sim) / real threads (server)
  bool closed_loop;
  std::int64_t iterations;  ///< total gradient applications
};

struct Series {
  std::vector<double> target, total, algorithmic;

  void append(double tgt, std::optional<double> mu_hat, double applied, double& smoothed,
              bool& init) {
    if (!mu_hat) return;
    smoothed = init ? 0.95 * smoothed + 0.05 * (*mu_hat) : *mu_hat;
    init = true;
    target.push_back(tgt);
    total.push_back(smoothed);
    algorithmic.push_back(applied);
  }
};

yf::tuner::YellowFinOptions tuner_options() {
  return {};  // paper defaults; quick-mode horizon handled by iteration count
}

Series run_sim(const Config& cfg) {
  auto task = yfb::make_cifar_task(3, 1);
  auto opt = std::make_shared<yf::tuner::YellowFin>(task.params, tuner_options());
  yf::async::AsyncTrainerOptions aopts;
  aopts.staleness = cfg.workers - 1;
  aopts.closed_loop = cfg.closed_loop;
  yf::async::AsyncTrainer trainer(opt, task.grad_fn, aopts);

  Series s;
  double smoothed = 0.0;
  bool init = false;
  for (std::int64_t it = 0; it < cfg.iterations; ++it) {
    const auto stats = trainer.step();
    s.append(stats.target_momentum, stats.mu_hat_total, stats.applied_momentum, smoothed, init);
  }
  return s;
}

Series run_server(const Config& cfg) {
  auto master = yfb::make_cifar_task(3, 1);
  auto opt = std::make_shared<yf::tuner::YellowFin>(master.params, tuner_options());
  yf::async::ParamServerOptions sopts;
  sopts.shards = yfb::server_shards();
  sopts.closed_loop = cfg.closed_loop;
  yf::async::ShardedParamServer server(opt, sopts);

  std::vector<yf::async::ServerWorker> workers;
  workers.reserve(static_cast<std::size_t>(cfg.workers));
  for (std::int64_t w = 0; w < cfg.workers; ++w) {
    auto task = yfb::make_cifar_task(3, 1 + 100000 * static_cast<std::uint64_t>(w + 1));
    workers.push_back({std::move(task.params), std::move(task.grad_fn)});
  }
  yf::async::ServerRunOptions ropts;
  ropts.steps_per_worker = std::max<std::int64_t>(1, cfg.iterations / cfg.workers);
  ropts.compute_delay_us = 200;  // keep pulls and pushes overlapping
  const auto run = yf::async::run_workers(server, workers, ropts);

  Series s;
  double smoothed = 0.0;
  bool init = false;
  for (const auto& stats : run.stats) {  // already sorted by apply order
    s.append(stats.target_momentum, stats.mu_hat_total, stats.applied_momentum, smoothed, init);
  }
  return s;
}

double tail_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  const std::size_t start = v.size() / 2;
  for (std::size_t i = start; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(v.size() - start);
}

void report(const char* engine, const Series& sync, const Series& open, const Series& closed) {
  train::print_series(std::string(engine) + " sync: measured total mu", sync.total, 8);
  train::print_series(std::string(engine) + " async: target mu", open.target, 8);
  train::print_series(std::string(engine) + " async: measured total mu", open.total, 8);
  train::print_series(std::string(engine) + " closed-loop: measured total mu", closed.total, 8);
  train::print_series(std::string(engine) + " closed-loop: algorithmic mu", closed.algorithmic,
                      8);
  const double sync_gap = tail_mean(sync.total) - tail_mean(sync.target);
  const double open_gap = tail_mean(open.total) - tail_mean(open.target);
  const double closed_gap = tail_mean(closed.total) - tail_mean(closed.target);
  std::printf("\n  [%s] steady-state (total - target): sync %+0.3f | async %+0.3f | "
              "closed %+0.3f\n",
              engine, sync_gap, open_gap, closed_gap);
  std::printf("  [%s] closed-loop algorithmic momentum (tail mean): %+0.3f\n\n", engine,
              tail_mean(closed.algorithmic));
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(700, 40000);
  const std::int64_t workers = yfb::env_int("YF_WORKERS", 16);
  std::printf("Figure 4: total momentum dynamics (CNN task, %lld applications, %lld workers)\n",
              static_cast<long long>(iterations), static_cast<long long>(workers));

  const Config sync_cfg{1, false, iterations};
  const Config open_cfg{workers, false, iterations};
  const Config closed_cfg{workers, true, iterations};

  // Pane set 1: deterministic round-robin simulator (scripted staleness).
  const auto sim_sync = run_sim(sync_cfg);
  const auto sim_open = run_sim(open_cfg);
  const auto sim_closed = run_sim(closed_cfg);
  report("sim", sim_sync, sim_open, sim_closed);

  // Pane set 2: sharded parameter server (emergent staleness, real threads).
  const auto srv_sync = run_server(sync_cfg);
  const auto srv_open = run_server(open_cfg);
  const auto srv_closed = run_server(closed_cfg);
  report("server", srv_sync, srv_open, srv_closed);

  train::write_csv("fig4_total_momentum.csv",
                   {"sim_sync_total", "sim_async_target", "sim_async_total",
                    "sim_closed_total", "sim_closed_algorithmic", "srv_sync_total",
                    "srv_async_target", "srv_async_total", "srv_closed_total",
                    "srv_closed_algorithmic"},
                   {sim_sync.total, sim_open.target, sim_open.total, sim_closed.total,
                    sim_closed.algorithmic, srv_sync.total, srv_open.target, srv_open.total,
                    srv_closed.total, srv_closed.algorithmic});
  std::printf("Wrote fig4_total_momentum.csv\n");
  std::printf("\nShape check (paper): sync gap ~ 0; async gap >> 0; closed-loop gap ~ 0 with\n"
              "algorithmic momentum pushed below the target -- on both engines.\n");
  return 0;
}
