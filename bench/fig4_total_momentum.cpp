// Figure 4: total-momentum measurement under YellowFin.
//   left    synchronous: measured total momentum == algorithmic momentum
//   middle  16 async workers: measured total momentum > target (asynchrony
//           adds momentum)
//   right   closed-loop YellowFin lowers algorithmic momentum (possibly
//           below zero) until total momentum matches the target.
#include <cstdio>

#include "async/async_simulator.hpp"
#include "common.hpp"

namespace train = yf::train;

namespace {

struct Series {
  std::vector<double> target, total, algorithmic;
};

Series run(std::int64_t staleness, bool closed_loop, std::int64_t iterations) {
  auto task = yfb::make_cifar_task(3, 1);
  yf::tuner::YellowFinOptions yopts;
  auto opt = std::make_shared<yf::tuner::YellowFin>(task.params, yopts);
  yf::async::AsyncTrainerOptions aopts;
  aopts.staleness = staleness;
  aopts.closed_loop = closed_loop;
  yf::async::AsyncTrainer trainer(opt, task.grad_fn, aopts);

  Series s;
  double smoothed_total = 0.0;
  bool init = false;
  for (std::int64_t it = 0; it < iterations; ++it) {
    const auto stats = trainer.step();
    if (!stats.mu_hat_total) continue;
    if (!init) {
      smoothed_total = *stats.mu_hat_total;
      init = true;
    } else {
      smoothed_total = 0.95 * smoothed_total + 0.05 * (*stats.mu_hat_total);
    }
    s.target.push_back(stats.target_momentum);
    s.total.push_back(smoothed_total);
    s.algorithmic.push_back(stats.applied_momentum);
  }
  return s;
}

double tail_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  const std::size_t start = v.size() / 2;
  for (std::size_t i = start; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(v.size() - start);
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(700, 40000);
  std::printf("Figure 4: total momentum dynamics (CNN task, %lld iterations)\n",
              static_cast<long long>(iterations));

  const auto sync = run(0, false, iterations);
  const auto async16 = run(15, false, iterations);
  const auto closed = run(15, true, iterations);

  train::print_series("sync: target mu", sync.target, 8);
  train::print_series("sync: measured total mu", sync.total, 8);
  train::print_series("async16: target mu", async16.target, 8);
  train::print_series("async16: measured total mu", async16.total, 8);
  train::print_series("closed-loop: target mu", closed.target, 8);
  train::print_series("closed-loop: measured total mu", closed.total, 8);
  train::print_series("closed-loop: algorithmic mu", closed.algorithmic, 8);
  train::write_csv("fig4_total_momentum.csv",
                   {"sync_target", "sync_total", "async_target", "async_total",
                    "closed_target", "closed_total", "closed_algorithmic"},
                   {sync.target, sync.total, async16.target, async16.total, closed.target,
                    closed.total, closed.algorithmic});

  const double sync_gap = tail_mean(sync.total) - tail_mean(sync.target);
  const double async_gap = tail_mean(async16.total) - tail_mean(async16.target);
  const double closed_gap = tail_mean(closed.total) - tail_mean(closed.target);
  std::printf("\n  steady-state (total - target): sync %+0.3f | async %+0.3f | closed %+0.3f\n",
              sync_gap, async_gap, closed_gap);
  std::printf("  closed-loop algorithmic momentum (tail mean): %+0.3f\n",
              tail_mean(closed.algorithmic));
  std::printf("\nShape check (paper): sync gap ~ 0; async gap >> 0; closed-loop gap ~ 0 with\n"
              "algorithmic momentum pushed below the target.\n");
  return 0;
}
