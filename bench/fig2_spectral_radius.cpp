// Figure 2: spectral radius of the momentum operator on a scalar quadratic
// (h = 1) as a function of the learning rate, for mu in {0, 0.1, 0.3, 0.5}.
//
// Expected shape: each curve has a flat plateau at sqrt(mu) over the robust
// region [(1-sqrt(mu))^2, (1+sqrt(mu))^2], and the plateau widens with mu.
#include <cstdio>
#include <vector>

#include "sim/momentum_operator.hpp"
#include "sim/robust_region.hpp"
#include "train/reporting.hpp"

int main() {
  namespace sim = yf::sim;
  namespace train = yf::train;
  const double h = 1.0;
  const std::vector<double> mus = {0.0, 0.1, 0.3, 0.5};

  std::printf("Figure 2: spectral radius of the momentum operator (h = 1)\n");
  std::vector<std::string> names = {"alpha"};
  std::vector<std::vector<double>> cols(1);
  for (double a = 0.0; a <= 3.0 + 1e-9; a += 0.05) cols[0].push_back(a);

  for (double mu : mus) {
    std::vector<double> radii;
    for (double a : cols[0]) radii.push_back(sim::momentum_spectral_radius(a, mu, h));
    names.push_back("rho_mu=" + train::fmt(mu, 2));
    cols.push_back(radii);
    train::print_series("rho(A) for mu=" + train::fmt(mu, 2), radii);

    const auto [lo, hi] = sim::robust_lr_interval(mu, h);
    std::printf("  robust region for mu=%.1f: alpha in [%.4f, %.4f] (width %.4f),"
                " plateau value sqrt(mu)=%.4f\n",
                mu, lo, hi, hi - lo, std::sqrt(mu));
  }
  train::write_csv("fig2_spectral_radius.csv", names, cols);
  std::printf("\nShape check (paper): plateau at sqrt(mu), widening with momentum -- "
              "widths above must be increasing.\n");
  std::printf("Wrote fig2_spectral_radius.csv\n");
  return 0;
}
