// Figure 3: robustness of the momentum operator.
//  (a,b) The non-convex double well with curvatures {1, 1000} (GCN 1000):
//        tuning by Eq. 9 gives empirical linear convergence at rate
//        sqrt(mu*) ~ 0.9387, robust to the starting well and to the
//        learning rate within the robust region.
//  (c,d) Char-LSTM analogue of the per-variable convergence envelopes: as
//        the prescribed momentum rises from 0.9 to 0.99, the fraction of
//        model variables whose empirical convergence follows the sqrt(mu)
//        envelope increases.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "sim/robust_region.hpp"
#include "sim/toy_objectives.hpp"

namespace sim = yf::sim;
namespace train = yf::train;

namespace {

void part_ab() {
  std::printf("Figure 3(a,b): double well, curvatures {1, 1000}, GCN = 1000\n");
  const auto obj = sim::double_well_objective(1.0, 1000.0, 1.0);
  const auto tuning = sim::tune_noiseless(1.0, 1000.0);
  std::printf("  Eq. 9 tuning: mu* = %.4f, alpha = %.6f, predicted rate sqrt(mu) = %.4f\n",
              tuning.mu, tuning.alpha, std::sqrt(tuning.mu));

  std::vector<std::string> names;
  std::vector<std::vector<double>> cols;
  for (double x0 : {-15.0, 15.0, 1.05}) {
    const auto dist = sim::run_momentum_gd(obj, x0, tuning.alpha, tuning.mu, 500);
    std::printf("  x0 = %6.2f: final distance %.3e, empirical rate %.4f\n", x0, dist.back(),
                sim::empirical_rate(dist));
    names.push_back("dist_x0=" + train::fmt(x0, 3));
    cols.push_back(dist);
  }

  std::printf("  lr-misspecification sweep at mu = 0.95 (inside robust region):\n");
  const double mu = 0.95;
  const double lo = std::pow(1.0 - std::sqrt(mu), 2) / 1.0;
  const double hi = std::pow(1.0 + std::sqrt(mu), 2) / 1000.0;
  for (double f : {0.05, 0.5, 0.95}) {
    const double alpha = lo + f * (hi - lo);
    const auto dist = sim::run_momentum_gd(obj, -15.0, alpha, mu, 700);
    std::printf("    alpha = %.6f (%.0f%% of region): rate %.4f (sqrt(mu) = %.4f)\n", alpha,
                f * 100, sim::empirical_rate(dist), std::sqrt(mu));
  }
  train::write_csv("fig3ab_convergence.csv", names, cols);
}

void part_cd() {
  std::printf("\nFigure 3(c,d): char-LSTM per-variable convergence envelopes\n");
  // Train the char LM with prescribed momentum 0.9 vs 0.99 and measure, for
  // each parameter tensor, whether its distance-to-final-value decays no
  // slower than the sqrt(mu)^t envelope (checked at half horizon).
  for (double mu : {0.9, 0.99}) {
    auto task = yfb::make_char_lm_task(1);
    // Snapshot trajectory of parameter values.
    const std::int64_t total = yfb::iters(400, 3000);
    yf::optim::MomentumSGD opt(task.params, 0.05, mu);
    std::vector<yf::tensor::Tensor> snaps;
    for (std::int64_t it = 0; it < total; ++it) {
      opt.zero_grad();
      task.grad_fn();
      opt.step();
      if (it % 10 == 0) snaps.push_back(yf::nn::flatten_values(task.params));
    }
    const auto& final_x = snaps.back();
    // Per-variable: distance from final value at 1/4 vs 3/4 horizon.
    const std::size_t q1 = snaps.size() / 4, q3 = 3 * snaps.size() / 4;
    std::int64_t follow = 0, active = 0;
    const double steps_between = static_cast<double>((q3 - q1) * 10);
    const double envelope = std::pow(std::sqrt(mu), steps_between);
    for (std::int64_t j = 0; j < final_x.size(); ++j) {
      const double d1 = std::abs(snaps[q1][j] - final_x[j]);
      const double d3 = std::abs(snaps[q3][j] - final_x[j]);
      if (d1 < 1e-9) continue;
      ++active;
      if (d3 / d1 <= std::max(envelope, 1e-12) * 50.0) ++follow;  // 50x slack on the envelope
    }
    std::printf("  mu = %.2f: %lld / %lld variables (%.1f%%) within the sqrt(mu)^t envelope\n",
                mu, static_cast<long long>(follow), static_cast<long long>(active),
                100.0 * static_cast<double>(follow) / static_cast<double>(active));
  }
  std::printf("Shape check (paper): the fraction should increase with momentum.\n");
}

}  // namespace

int main() {
  part_ab();
  part_cd();
  return 0;
}
