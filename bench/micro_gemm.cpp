// GEMM microbenchmarks (google-benchmark): the packed register-tiled
// subsystem (core/gemm.hpp) on LM-shaped products -- tied-embedding
// decode (NT), LSTM 4-gate pre-activations (NN), conv im2col forward
// (NT) and its dW pullback (TN) -- plus square compute-bound shapes,
// each across the scalar and AVX2 kernel backends. Args are {m, n, k}
// with C = m x n.
//
// BM_GemmPackedForced / BM_GemmSmallForced run the *forced* packed and
// small engines on cubes around the dispatch thresholds; their output
// pins core::detail::kGemmSmallWork / kGemmSmallRows (gemm.hpp).
// Results land in BENCH_micro_gemm.json via yfb::JsonReporter.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hpp"
#include "core/gemm.hpp"
#include "core/kernels/backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

namespace core = yf::core;
namespace t = yf::tensor;

/// Force `backend` for one benchmark run (skips simd on machines
/// without AVX2), restoring the process default on destruction.
class BackendScope {
 public:
  BackendScope(benchmark::State& state, core::KernelBackend backend)
      : previous_(core::active_kernel_backend()) {
    if (backend == core::KernelBackend::kSimd && !core::simd_supported()) {
      state.SkipWithError("simd backend unsupported on this machine");
      ok_ = false;
      return;
    }
    core::set_kernel_backend(backend);
    state.SetLabel(core::kernel_backend_name(backend));
  }
  ~BackendScope() {
    if (ok_) core::set_kernel_backend(previous_);
  }
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;
  explicit operator bool() const { return ok_; }

 private:
  core::KernelBackend previous_;
  bool ok_ = true;
};

struct Operands {
  t::Tensor a, b, c;
};

Operands make_operands(core::GemmVariant v, std::int64_t m, std::int64_t n, std::int64_t k) {
  t::Rng rng(29);
  Operands ops;
  ops.a = v == core::GemmVariant::kTN ? rng.normal_tensor({k, m}) : rng.normal_tensor({m, k});
  ops.b = v == core::GemmVariant::kNT ? rng.normal_tensor({n, k}) : rng.normal_tensor({k, n});
  ops.c = t::Tensor(t::Shape{m, n});
  return ops;
}

void run_gemm(benchmark::State& state, core::GemmVariant v, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  const auto m = state.range(0), n = state.range(1), k = state.range(2);
  auto ops = make_operands(v, m, n, k);
  for (auto _ : state) {
    core::gemm(v, ops.c.data().data(), ops.a.data().data(), ops.b.data().data(), m, n, k);
    benchmark::DoNotOptimize(ops.c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}

void BM_GemmNn(benchmark::State& state, core::KernelBackend backend) {
  run_gemm(state, core::GemmVariant::kNN, backend);
}
void BM_GemmNt(benchmark::State& state, core::KernelBackend backend) {
  run_gemm(state, core::GemmVariant::kNT, backend);
}
void BM_GemmTn(benchmark::State& state, core::KernelBackend backend) {
  run_gemm(state, core::GemmVariant::kTN, backend);
}

// LM shapes (micro_train_step's 8x17 config): LSTM 4-gate pre-activation
// x[B,E] @ Wx[E,4H], BPTT-batched logits decode [B*T,H] @ E[V,H]^T, and
// the matmul pullback's TN product; conv shapes from a MiniResNet-ish
// im2col ([N*OH*OW, C*KH*KW] @ W[F,CKK]^T forward, TN for dW); square
// shapes for headline packed throughput.
#define YF_GEMM_BENCH(fn)                                                         \
  BENCHMARK_CAPTURE(fn, scalar, core::KernelBackend::kScalar)->Apply(fn##_args);  \
  BENCHMARK_CAPTURE(fn, simd, core::KernelBackend::kSimd)->Apply(fn##_args)

void BM_GemmNn_args(benchmark::internal::Benchmark* b) {
  b->Args({8, 96, 24})      // LSTM 4-gate: x[8,24] @ Wx[24,96]
      ->Args({136, 96, 24})  // BPTT-batched gates (B*T rows)
      ->Args({8, 512, 512})  // skinny headline shape (matmul baseline)
      ->Args({256, 256, 256});
}
void BM_GemmNt_args(benchmark::internal::Benchmark* b) {
  b->Args({136, 32, 24})    // tied decode [B*T,H] @ E[V,H]^T
      ->Args({512, 8, 36})   // conv im2col forward: col @ W^T
      ->Args({256, 256, 256});
}
void BM_GemmTn_args(benchmark::internal::Benchmark* b) {
  b->Args({24, 96, 136})    // dWx = x^T @ dGates
      ->Args({8, 36, 512})   // conv dW = dOut^T @ col
      ->Args({256, 256, 256});
}

YF_GEMM_BENCH(BM_GemmNn);
YF_GEMM_BENCH(BM_GemmNt);
YF_GEMM_BENCH(BM_GemmTn);

// -- Small-path crossover: forced engines on n^3 cubes. ----------------------
// The dispatch thresholds in core/gemm.hpp are pinned from this table:
// below the crossover the unpacked small path must win, above it the
// packed hierarchy must win, on both backends.

void BM_GemmPackedForced(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  const auto n = state.range(0);
  auto ops = make_operands(core::GemmVariant::kNN, n, n, n);
  for (auto _ : state) {
    core::detail::gemm_packed(core::GemmVariant::kNN, ops.c.data().data(), ops.a.data().data(),
                              ops.b.data().data(), n, n, n);
    benchmark::DoNotOptimize(ops.c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void BM_GemmSmallForced(benchmark::State& state, core::KernelBackend backend) {
  BackendScope scope(state, backend);
  if (!scope) return;
  const auto n = state.range(0);
  auto ops = make_operands(core::GemmVariant::kNN, n, n, n);
  for (auto _ : state) {
    core::detail::gemm_small(core::GemmVariant::kNN, ops.c.data().data(), ops.a.data().data(),
                             ops.b.data().data(), n, n, n);
    benchmark::DoNotOptimize(ops.c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void BM_GemmCrossover_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : {8, 16, 24, 32, 48, 64}) b->Args({n});
}
BENCHMARK_CAPTURE(BM_GemmPackedForced, scalar, core::KernelBackend::kScalar)
    ->Apply(BM_GemmCrossover_args);
BENCHMARK_CAPTURE(BM_GemmPackedForced, simd, core::KernelBackend::kSimd)
    ->Apply(BM_GemmCrossover_args);
BENCHMARK_CAPTURE(BM_GemmSmallForced, scalar, core::KernelBackend::kScalar)
    ->Apply(BM_GemmCrossover_args);
BENCHMARK_CAPTURE(BM_GemmSmallForced, simd, core::KernelBackend::kSimd)
    ->Apply(BM_GemmCrossover_args);

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_gemm");
}
