// Figure 1: YellowFin vs Adam on the CIFAR100-sub CNN, synchronous (left)
// and with 16 asynchronous workers (right); asynchronous also runs
// closed-loop YellowFin.
//
// Expected shape: sync -- YF at least matches Adam; async -- closed-loop
// YF converges in fewer iterations than both open-loop YF and Adam
// (paper: 20.1x over open-loop YF, 2.69x over Adam).
#include <cstdio>

#include "async/async_simulator.hpp"
#include "common.hpp"

namespace train = yf::train;

namespace {

std::vector<double> run_async(const std::string& opt_name, bool closed_loop,
                              std::int64_t iterations, double lr) {
  auto task = yfb::make_cifar_task(10, 1);
  std::shared_ptr<yf::optim::Optimizer> opt = yfb::make_optimizer(opt_name, task.params, lr);
  yf::async::AsyncTrainerOptions aopts;
  aopts.staleness = 15;
  aopts.closed_loop = closed_loop;
  yf::async::AsyncTrainer trainer(opt, task.grad_fn, aopts);
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(iterations));
  for (std::int64_t it = 0; it < iterations; ++it) {
    const auto stats = trainer.step();
    losses.push_back(std::isfinite(stats.loss) ? std::min(stats.loss, 1e4) : 1e4);
  }
  return losses;
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(500, 10000);
  const std::int64_t window = yfb::iters(40, 500);
  std::printf("Figure 1: CIFAR100-sub CNN, sync and async (%lld iterations)\n",
              static_cast<long long>(iterations));

  // Synchronous panel: tuned Adam vs YellowFin.
  auto make = [](std::uint64_t s) { return yfb::make_cifar_task(10, s); };
  const auto adam_sync = yfb::tune(make, "adam", {0.0003, 0.001, 0.003}, iterations, window);
  const auto yf_sync_raw = yfb::run_one(make, "yellowfin", 1.0, iterations, 1);
  const auto yf_sync = train::smooth_uniform(yf_sync_raw, window);
  const auto sync_speedup = train::speedup_over(adam_sync.best_curve, yf_sync);
  train::print_series("sync adam loss", adam_sync.best_curve, 10);
  train::print_series("sync yellowfin loss", yf_sync, 10);
  std::printf("  sync: YF speedup over tuned Adam: %s\n",
              train::fmt_speedup(sync_speedup.ratio).c_str());

  // Asynchronous panel: Adam (best sync lr), YF, closed-loop YF.
  const auto adam_async =
      train::smooth_uniform(run_async("adam", false, iterations, adam_sync.best_hyper), window);
  const auto yf_async =
      train::smooth_uniform(run_async("yellowfin", false, iterations, 1.0), window);
  const auto yf_closed =
      train::smooth_uniform(run_async("yellowfin", true, iterations, 1.0), window);
  train::print_series("async adam loss", adam_async, 10);
  train::print_series("async yellowfin loss", yf_async, 10);
  train::print_series("async closed-loop yellowfin loss", yf_closed, 10);

  const auto cl_vs_adam = train::speedup_over(adam_async, yf_closed);
  const auto cl_vs_yf = train::speedup_over(yf_async, yf_closed);
  std::printf("\n  async: closed-loop YF speedup over Adam: %s (paper: 2.69x)\n",
              train::fmt_speedup(cl_vs_adam.ratio).c_str());
  std::printf("  async: closed-loop YF speedup over open-loop YF: %s (paper: 20.1x)\n",
              train::fmt_speedup(cl_vs_yf.ratio).c_str());
  train::write_csv("fig1_curves.csv",
                   {"sync_adam", "sync_yf", "async_adam", "async_yf", "async_closed_yf"},
                   {adam_sync.best_curve, yf_sync, adam_async, yf_async, yf_closed});
  std::printf("Wrote fig1_curves.csv\n");
  return 0;
}
