// Serving-engine microbenchmarks (DESIGN.md §11): request latency and
// throughput of the forward-only LMServer.
//
//   BM_ServeSingleClient   -- one client, max_wait 0: pure request
//                             latency through enqueue -> batched forward
//                             -> scatter, no coalescing in play.
//   BM_ServeLoaded         -- N background clients keep the queue busy
//                             while the measured thread records its own
//                             request latencies; items/s counts *all*
//                             served requests (engine stats), so the
//                             coalescing win shows up as throughput.
//   BM_ServeWithPublisher  -- single client with a trainer-like thread
//                             publishing new parameter versions as fast
//                             as it can: measures snapshot-pin overhead
//                             under publish pressure.
//
// Every variant reports p50_ns / p99_ns request-latency counters, which
// JsonReporter carries into BENCH_micro_serving.json next to ns/op for
// the regression gate. Args: {seq_len}, plus {background_clients} for
// the loaded variant.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common.hpp"
#include "nn/language_model.hpp"
#include "serve/engine.hpp"
#include "tensor/random.hpp"

namespace {

namespace nn = yf::nn;
namespace t = yf::tensor;
namespace serve = yf::serve;

nn::LanguageModelConfig bench_lm_config() {
  nn::LanguageModelConfig cfg;
  cfg.vocab = 16;
  cfg.embed_dim = 8;
  cfg.hidden = 16;
  cfg.layers = 1;
  return cfg;
}

std::vector<std::int64_t> bench_tokens(std::int64_t n, std::int64_t vocab, std::uint64_t seed) {
  t::Rng rng(seed);
  std::vector<std::int64_t> toks(static_cast<std::size_t>(n));
  for (auto& tok : toks) tok = rng.index(vocab);
  return toks;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

void report_latency(benchmark::State& state, const std::vector<double>& lat_ns) {
  state.counters["p50_ns"] = benchmark::Counter(percentile(lat_ns, 0.50));
  state.counters["p99_ns"] = benchmark::Counter(percentile(lat_ns, 0.99));
}

void BM_ServeSingleClient(benchmark::State& state) {
  const std::int64_t seq_len = state.range(0);
  const auto cfg = bench_lm_config();
  t::Rng rng(1);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = seq_len;
  opts.max_batch = 4;
  opts.max_wait_us = 0;  // lone client: coalescing wait would be pure latency
  serve::LMServer server(model, opts);

  const auto tokens = bench_tokens(seq_len, cfg.vocab, 2);
  std::vector<double> logits(static_cast<std::size_t>(seq_len * cfg.vocab), 0.0);
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 16);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.infer(tokens, logits));
    lat_ns.push_back(
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count());
  }
  report_latency(state, lat_ns);
  state.SetItemsProcessed(state.iterations());
}

void BM_ServeLoaded(benchmark::State& state) {
  const std::int64_t seq_len = state.range(0);
  const int background = static_cast<int>(state.range(1));
  const auto cfg = bench_lm_config();
  t::Rng rng(1);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = seq_len;
  opts.max_batch = static_cast<std::int64_t>(background) + 1;
  opts.max_wait_us = 100;
  serve::LMServer server(model, opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < background; ++c) {
    clients.emplace_back([&, c] {
      const auto toks = bench_tokens(seq_len, cfg.vocab, 10 + static_cast<std::uint64_t>(c));
      std::vector<double> out(static_cast<std::size_t>(seq_len * cfg.vocab), 0.0);
      while (!stop.load()) (void)server.infer(toks, out);
    });
  }

  const auto tokens = bench_tokens(seq_len, cfg.vocab, 2);
  std::vector<double> logits(static_cast<std::size_t>(seq_len * cfg.vocab), 0.0);
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 16);
  const auto before = server.stats();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.infer(tokens, logits));
    lat_ns.push_back(
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count());
  }
  const auto after = server.stats();
  stop.store(true);
  for (auto& th : clients) th.join();

  report_latency(state, lat_ns);
  const auto served = after.requests - before.requests;
  const auto batches = after.batches - before.batches;
  state.counters["coalesce"] =
      benchmark::Counter(batches > 0 ? static_cast<double>(served) / static_cast<double>(batches)
                                     : 0.0);
  // Throughput counts every request served while the measured thread ran,
  // background clients included -- that is what micro-batching buys.
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}

void BM_ServeWithPublisher(benchmark::State& state) {
  const std::int64_t seq_len = state.range(0);
  const auto cfg = bench_lm_config();
  t::Rng rng(1);
  nn::LSTMLanguageModel model(cfg, rng);
  serve::ServeOptions opts;
  opts.seq_len = seq_len;
  opts.max_batch = 4;
  opts.max_wait_us = 0;
  serve::LMServer server(model, opts);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) (void)server.publish();
  });

  const auto tokens = bench_tokens(seq_len, cfg.vocab, 2);
  std::vector<double> logits(static_cast<std::size_t>(seq_len * cfg.vocab), 0.0);
  std::vector<double> lat_ns;
  lat_ns.reserve(1 << 16);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.infer(tokens, logits));
    lat_ns.push_back(
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count());
  }
  stop.store(true);
  publisher.join();
  report_latency(state, lat_ns);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ServeSingleClient)->Args({8})->Args({16});
BENCHMARK(BM_ServeLoaded)->Args({8, 3});
BENCHMARK(BM_ServeWithPublisher)->Args({8});

}  // namespace

int main(int argc, char** argv) {
  return yfb::benchmark_main_with_json(argc, argv, "micro_serving");
}
