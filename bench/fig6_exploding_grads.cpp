// Figure 6: an LSTM variant that exhibits exploding gradients. Training
// with YellowFin, adaptive clipping (threshold sqrt(h_max)) keeps the
// gradient norm bounded and the loss free of catastrophic spikes; without
// clipping, gradient-norm spikes of many orders of magnitude appear.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "nn/module.hpp"

namespace train = yf::train;

namespace {

struct Curves {
  std::vector<double> grad_norm;
  std::vector<double> loss;
  std::vector<double> clip_threshold;
};

Curves run(bool adaptive_clipping, std::int64_t iterations) {
  // Exploding-gradient LSTM (substitute for the Zhu et al. [41] variant of
  // the paper's Fig. 6). At our scale the LSTM's gates saturate before the
  // recurrent Jacobian can blow up, so the landscape's "occasional but very
  // steep slopes" (Sec. 3.3) are injected as rare steep-region batches
  // whose loss -- and hence gradient -- is scaled by 300x.
  auto dataset = std::make_shared<yf::data::MarkovText>([] {
    yf::data::MarkovTextConfig cfg;
    cfg.vocab = 20;
    cfg.seed = 3;
    return cfg;
  }());
  yf::nn::LanguageModelConfig lc;
  lc.vocab = 20;
  lc.embed_dim = 10;
  lc.hidden = 12;
  lc.layers = 1;
  lc.init_scale = 4.0;
  yf::tensor::Rng model_rng(5);
  auto model = std::make_shared<yf::nn::LSTMLanguageModel>(lc, model_rng);
  auto rng = std::make_shared<yf::tensor::Rng>(77);

  yf::tuner::YellowFinOptions opts;
  opts.adaptive_clipping = adaptive_clipping;
  yf::tuner::YellowFin opt(model->parameters(), opts);

  Curves c;
  for (std::int64_t it = 0; it < iterations; ++it) {
    opt.zero_grad();
    const auto tokens = dataset->sample_batch(5, 25, *rng);
    auto loss = model->loss(tokens, 5, 25);
    if (rng->bernoulli(0.03)) loss = yf::autograd::mul_scalar(loss, 300.0);
    loss.backward();
    const double pre_norm = std::sqrt(yf::nn::grad_sq_norm(opt.params()));
    opt.step();
    c.grad_norm.push_back(pre_norm);
    c.loss.push_back(std::min(loss.value().item(), 1e6));
    c.clip_threshold.push_back(adaptive_clipping ? opt.last_clip_threshold() : 0.0);
    if (!std::isfinite(c.loss.back())) break;
  }
  return c;
}

double max_of(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  return m;
}

}  // namespace

int main() {
  const std::int64_t iterations = yfb::iters(400, 3000);
  std::printf("Figure 6: exploding-gradient LSTM, YellowFin with/without adaptive clipping\n");

  const auto with = run(true, iterations);
  const auto without = run(false, iterations);

  train::print_series("grad norm WITH adaptive clip", with.grad_norm, 10);
  train::print_series("clip threshold sqrt(h_max)", with.clip_threshold, 10);
  train::print_series("grad norm WITHOUT clip", without.grad_norm, 10);
  train::print_series("loss WITH clip", with.loss, 10);
  train::print_series("loss WITHOUT clip", without.loss, 10);
  train::write_csv("fig6_exploding.csv",
                   {"grad_with", "thresh_with", "grad_without", "loss_with", "loss_without"},
                   {with.grad_norm, with.clip_threshold, without.grad_norm, with.loss,
                    without.loss});

  std::printf("\n  peak gradient norm: with clip %.3e | without clip %.3e\n",
              max_of(with.grad_norm), max_of(without.grad_norm));
  std::printf("  peak loss:          with clip %.3e | without clip %.3e\n", max_of(with.loss),
              max_of(without.loss));
  std::printf("\nShape check (paper): without clipping the gradient norm spikes orders of\n"
              "magnitude higher and the loss shows catastrophic spikes; with adaptive\n"
              "clipping both stay bounded.\n");
  return 0;
}
