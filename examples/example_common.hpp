// Shared example knob: YF_EXAMPLE_ITERS overrides each example's main
// iteration budget so CI can smoke-run every example in seconds (the
// CMake-registered example_*_smoke tests set it to a small value).
#pragma once

#include <cstdlib>

namespace yfx {

inline int example_iters(int default_iters) {
  const char* env = std::getenv("YF_EXAMPLE_ITERS");
  if (env == nullptr) return default_iters;
  const int v = std::atoi(env);
  return v > 0 ? v : default_iters;
}

}  // namespace yfx
