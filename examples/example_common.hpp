// Shared example knob: YF_EXAMPLE_ITERS overrides each example's main
// iteration budget so CI can smoke-run every example in seconds (the
// CMake-registered example_*_smoke tests set it to a small value).
#pragma once

#include "core/env.hpp"

namespace yfx {

inline int example_iters(int default_iters) {
  // Checked parse (core/env.hpp): a malformed value warns and keeps the
  // example's own budget instead of atoi-ing to 0.
  const auto v = yf::core::checked_env_int("YF_EXAMPLE_ITERS", default_iters);
  return v > 0 ? static_cast<int>(v) : default_iters;
}

}  // namespace yfx
