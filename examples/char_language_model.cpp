// Character-level language modeling example: a 2-layer LSTM on MarkovText
// (the TinyShakespeare substitute) trained with YellowFin, printing the
// tuner's trajectory (lr and momentum over time) -- the signature plot of
// the paper's RNN experiments.
#include <cmath>
#include <cstdio>
#include <memory>

#include "data/markov_text.hpp"
#include "example_common.hpp"
#include "nn/language_model.hpp"
#include "tuner/yellowfin.hpp"

namespace t = yf::tensor;

int main() {
  std::printf("Char-level LSTM LM on MarkovText with YellowFin\n\n");

  yf::data::MarkovTextConfig dcfg;
  dcfg.vocab = 40;
  dcfg.branching = 4;
  dcfg.seed = 5;
  yf::data::MarkovText dataset(dcfg);

  yf::nn::LanguageModelConfig mcfg;
  mcfg.vocab = 40;
  mcfg.embed_dim = 16;
  mcfg.hidden = 24;
  mcfg.layers = 2;
  t::Rng model_rng(1);
  yf::nn::LSTMLanguageModel model(mcfg, model_rng);
  std::printf("model parameters: %lld\n\n", static_cast<long long>(model.parameter_count()));

  yf::tuner::YellowFin optimizer(model.parameters());
  t::Rng rng(2);

  const std::int64_t batch = 8, seq_plus1 = 21;
  double smoothed_loss = 0.0;
  const int iters = yfx::example_iters(800);
  for (int it = 0; it < iters; ++it) {
    optimizer.zero_grad();
    const auto tokens = dataset.sample_batch(batch, seq_plus1, rng);
    auto loss = model.loss(tokens, batch, seq_plus1);
    loss.backward();
    optimizer.step();
    smoothed_loss = it == 0 ? loss.value().item()
                            : 0.98 * smoothed_loss + 0.02 * loss.value().item();
    if (it % 100 == 0 || it == iters - 1) {
      std::printf("iter %4d  loss %.4f (ppl %6.2f) | tuned lr %.5f momentum %.3f  "
                  "grad var %.3e  dist-to-opt %.3e\n",
                  it, smoothed_loss, std::exp(smoothed_loss), optimizer.lr(),
                  optimizer.momentum(), optimizer.grad_variance(),
                  optimizer.distance_to_opt());
    }
  }

  // Entropy floor of the synthetic language, for context.
  double entropy = 0.0;
  for (std::int64_t s = 0; s < dcfg.vocab; ++s) {
    const auto& row = dataset.transition_row(s);
    double h = 0.0;
    for (double p : row) {
      if (p > 0) h -= p * std::log(p);
    }
    entropy += h / static_cast<double>(dcfg.vocab);
  }
  std::printf("\n(approximate per-token entropy floor of the language: %.3f nats, ppl %.2f)\n",
              entropy, std::exp(entropy));
  return 0;
}
