// Asynchronous training example: closed-loop YellowFin (Algorithm 5) on a
// simulated 16-worker parameter server, showing the negative feedback loop
// driving measured total momentum to the tuner's target while open-loop
// YellowFin overshoots.
#include <cstdio>
#include <memory>

#include "async/async_simulator.hpp"
#include "autograd/ops.hpp"
#include "example_common.hpp"
#include "data/synth_cifar.hpp"
#include "nn/resnet.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace t = yf::tensor;

namespace {

void run(bool closed_loop, int iters) {
  yf::data::SynthCifarConfig dcfg;
  dcfg.classes = 4;
  dcfg.height = 8;
  dcfg.width = 8;
  dcfg.seed = 21;
  auto dataset = std::make_shared<yf::data::SynthCifar>(dcfg);

  yf::nn::MiniResNetConfig mcfg;
  mcfg.base_channels = 4;
  mcfg.blocks_per_stage = 1;
  mcfg.num_classes = 4;
  t::Rng model_rng(1);
  auto model = std::make_shared<yf::nn::MiniResNet>(mcfg, model_rng);
  auto rng = std::make_shared<t::Rng>(2);

  auto opt = std::make_shared<yf::tuner::YellowFin>(model->parameters());
  yf::async::AsyncTrainerOptions aopts;
  aopts.staleness = 15;  // 16 round-robin workers
  aopts.closed_loop = closed_loop;
  yf::async::AsyncTrainer trainer(
      opt,
      [dataset, model, rng] {
        const auto b = dataset->sample(8, *rng);
        auto loss = ag::softmax_cross_entropy(model->forward(ag::Variable(b.images)), b.labels);
        loss.backward();
        return loss.value().item();
      },
      aopts);

  std::printf("%s YellowFin, 16 async workers (staleness 15):\n",
              closed_loop ? "Closed-loop" : "Open-loop");
  double smoothed_total = 0.0, smoothed_loss = 0.0;
  bool init = false;
  for (int it = 0; it < iters; ++it) {
    const auto stats = trainer.step();
    if (!init) {
      smoothed_loss = stats.loss;
      init = true;
    }
    smoothed_loss = 0.98 * smoothed_loss + 0.02 * stats.loss;
    if (stats.mu_hat_total) {
      smoothed_total = 0.95 * smoothed_total + 0.05 * (*stats.mu_hat_total);
    }
    if (it % 100 == 0 || it == iters - 1) {
      std::printf("  iter %4d loss %.4f | target mu %.3f measured total mu %.3f "
                  "algorithmic mu %+.3f\n",
                  it, smoothed_loss, stats.target_momentum, smoothed_total,
                  stats.applied_momentum);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Asynchrony begets momentum -- and closed-loop YellowFin compensates.\n\n");
  const int iters = yfx::example_iters(600);
  run(/*closed_loop=*/false, iters);
  run(/*closed_loop=*/true, iters);
  std::printf("Expected: open loop shows measured total momentum above the target;\n"
              "closed loop pushes algorithmic momentum down (even negative) until the\n"
              "measured total momentum tracks the target.\n");
  return 0;
}
