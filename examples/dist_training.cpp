// Distributed training example: a real multi-process parameter server on
// localhost (DESIGN.md §12).
//
// With no arguments it orchestrates the whole topology itself: fork a
// master process (ShardedParamServer + MasterServer on an ephemeral
// port), read the port over a pipe, fork two worker processes that each
// connect a RemoteParamClient and train a noisy quadratic bowl -- plus a
// third "victim" worker the parent SIGKILLs mid-run (the crash smoke,
// DESIGN.md §14). The run must shrug the crash off: the master reaps the
// dead connection via deadline/EOF instead of hanging, the survivors
// complete their clean shutdowns, the loss still collapses, and the
// master's stats must show the victim's disconnect. The CI dist smoke
// job runs exactly this (it is also the example_dist_training_smoke
// ctest).
//
// The same binary is the operator's entry point for running the roles by
// hand across terminals or hosts:
//
//   example_dist_training --role master --port 7070
//   example_dist_training --role worker --host 127.0.0.1 --port 7070
//
// Forking happens at the very top of main, before any YF call can spawn
// a thread -- fork() and threads do not mix, and the compute pool is
// created lazily on first use, so each child builds its own.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "async/param_server.hpp"
#include "dist/channel.hpp"
#include "dist/client.hpp"
#include "dist/master.hpp"
#include "example_common.hpp"
#include "optim/momentum_sgd.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace ag = yf::autograd;
namespace async = yf::async;
namespace dist = yf::dist;
namespace t = yf::tensor;

namespace {

constexpr std::int64_t kDim = 64;
constexpr double kMuTarget = 0.5;
constexpr int kWorkers = 2;

/// Master role: serve the bowl parameters until `workers` clients have
/// departed cleanly, then report. `port_pipe_fd` >= 0 (auto mode) means
/// "bind ephemeral and send the port up the pipe". `expect_crashes` > 0
/// is the crash-smoke contract: that many workers will die without the
/// shutdown handshake, so protocol errors/disconnects from them are
/// tolerated -- but at least that many must actually show up in stats,
/// proving the master reaped the carcasses instead of hanging.
int run_master(std::uint16_t port, int workers, int port_pipe_fd, int expect_crashes) {
  ag::Variable x(t::Tensor::full({kDim}, 1.5), true);
  auto opt = std::make_shared<yf::optim::MomentumSGD>(std::vector<ag::Variable>{x}, 0.05,
                                                      kMuTarget);
  async::ParamServerOptions sopts;
  sopts.shards = 4;
  sopts.closed_loop = true;  // Algorithm 5 under real network staleness
  sopts.mu_target = kMuTarget;
  async::ShardedParamServer server(opt, sopts);

  dist::MasterOptions mopts;
  mopts.port = port;
  dist::MasterServer net(server, mopts);
  std::printf("[master %d] serving %lld params, %lld shards on port %u\n",
              static_cast<int>(getpid()), static_cast<long long>(server.size()),
              static_cast<long long>(server.shard_count()),
              static_cast<unsigned>(net.port()));
  if (port_pipe_fd >= 0) {
    char buf[16];
    const int n = std::snprintf(buf, sizeof(buf), "%u\n", static_cast<unsigned>(net.port()));
    if (write(port_pipe_fd, buf, static_cast<std::size_t>(n)) != n) {
      std::perror("master: write port pipe");
      return 1;
    }
    ::close(port_pipe_fd);
  }

  if (!net.wait_for_clients(workers, std::chrono::seconds(120))) {
    std::fprintf(stderr, "[master] timed out waiting for %d clean worker shutdowns\n", workers);
    return 1;
  }
  net.shutdown();

  double loss = 0.0;
  for (const double v : x.value().data()) loss += 0.5 * v * v;
  const auto stats = net.stats();
  std::printf("[master] done: %lld updates, %lld pulls, %lld pushes, %lld clean shutdowns, "
              "%lld disconnects, %lld errors, final loss %.6f\n",
              static_cast<long long>(server.updates()), static_cast<long long>(stats.pulls),
              static_cast<long long>(stats.pushes),
              static_cast<long long>(stats.clean_shutdowns),
              static_cast<long long>(stats.disconnects), static_cast<long long>(stats.errors),
              loss);
  // From 0.5 * 64 * 1.5^2 = 72: even the smoke budget must collapse this.
  if (loss >= 1.0) {
    std::fprintf(stderr, "[master] FAIL: loss %.6f did not converge below 1.0\n", loss);
    return 1;
  }
  if (stats.clean_shutdowns < workers) {
    std::fprintf(stderr, "[master] FAIL: clean shutdowns %lld < %d\n",
                 static_cast<long long>(stats.clean_shutdowns), workers);
    return 1;
  }
  if (expect_crashes > 0) {
    // A SIGKILLed worker surfaces as an EOF (disconnect) or a torn frame
    // (error) depending on where the kill lands; either proves the reap.
    if (stats.disconnects + stats.errors < expect_crashes) {
      std::fprintf(stderr,
                   "[master] FAIL: expected %d crashed workers, saw %lld disconnects + %lld "
                   "errors\n",
                   expect_crashes, static_cast<long long>(stats.disconnects),
                   static_cast<long long>(stats.errors));
      return 1;
    }
  } else if (stats.errors != 0) {
    std::fprintf(stderr, "[master] FAIL: %lld protocol errors\n",
                 static_cast<long long>(stats.errors));
    return 1;
  }
  return 0;
}

/// Worker role: one RemoteParamClient training the bowl for `steps`
/// pull/compute/push rounds, then the clean-departure handshake.
/// `compute_delay_us` pads each step (the crash-smoke victim uses it to
/// stay mid-run until the parent's SIGKILL lands).
int run_worker(const std::string& host, std::uint16_t port, int steps, std::uint64_t seed,
               std::int64_t compute_delay_us = 0) {
  dist::RemoteParamClient client(host, port, std::chrono::seconds(10));
  std::printf("[worker %d] connected: %lld params, %lld shards\n", static_cast<int>(getpid()),
              static_cast<long long>(client.size()), static_cast<long long>(client.shard_count()));

  ag::Variable x(t::Tensor::full({kDim}, 1.5), true);
  auto rng = std::make_shared<t::Rng>(seed);
  dist::ChannelWorker worker;
  worker.channel = &client;
  worker.params = {x};
  worker.grad_fn = [x, rng] {
    auto g = x.node()->ensure_grad().data();
    const auto v = x.value().data();
    double loss = 0.0;
    for (std::size_t j = 0; j < g.size(); ++j) {
      loss += 0.5 * v[j] * v[j];
      g[j] = v[j] + 0.05 * rng->normal();
    }
    return loss;
  };
  dist::ChannelRunOptions ropts;
  ropts.steps_per_worker = steps;
  ropts.compute_delay_us = compute_delay_us;
  const auto run = dist::run_channel_workers({worker}, ropts);
  client.shutdown();
  std::printf("[worker %d] %zu steps, first loss %.4f, last loss %.4f\n",
              static_cast<int>(getpid()), run.losses.size(),
              run.losses.empty() ? 0.0 : run.losses.front(),
              run.losses.empty() ? 0.0 : run.losses.back());
  return 0;
}

/// Child epilogue: _exit skips stdio flush, and the children's stdout is
/// a fully-buffered pipe under ctest -- flush or lose the report.
[[noreturn]] void child_exit(int code) {
  std::fflush(nullptr);
  _exit(code);
}

/// Auto mode: master + kWorkers workers as child processes, plus one
/// victim worker the parent SIGKILLs mid-run; ephemeral port handed to
/// the parent over a pipe.
int run_auto(int steps) {
  int port_pipe[2];
  if (pipe(port_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  const pid_t master_pid = fork();
  if (master_pid < 0) {
    std::perror("fork master");
    return 1;
  }
  if (master_pid == 0) {
    ::close(port_pipe[0]);
    child_exit(run_master(/*port=*/0, kWorkers, port_pipe[1], /*expect_crashes=*/1));
  }
  ::close(port_pipe[1]);

  // Read the ephemeral port the master bound ("<port>\n").
  char buf[16] = {};
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = read(port_pipe[0], buf + got, sizeof(buf) - 1 - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
    if (std::strchr(buf, '\n') != nullptr) break;
  }
  ::close(port_pipe[0]);
  const long port_long = std::strtol(buf, nullptr, 10);
  if (port_long <= 0 || port_long > 65535) {
    std::fprintf(stderr, "parent: master did not report a port (got \"%s\")\n", buf);
    kill(master_pid, SIGKILL);
    waitpid(master_pid, nullptr, 0);
    return 1;
  }
  const auto port = static_cast<std::uint16_t>(port_long);
  std::printf("[parent] master pid %d on port %u; forking %d workers\n",
              static_cast<int>(master_pid), static_cast<unsigned>(port), kWorkers);
  std::fflush(nullptr);  // children inherit the stdio buffers: don't double-print

  std::vector<pid_t> pids = {master_pid};
  for (int w = 0; w < kWorkers; ++w) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork worker");
      return 1;
    }
    if (pid == 0) {
      child_exit(run_worker("127.0.0.1", port, steps, 40 + static_cast<std::uint64_t>(w)));
    }
    pids.push_back(pid);
  }

  // The crash smoke: one extra worker with an effectively endless step
  // budget and padded compute, guaranteed to still be mid-run when we
  // SIGKILL it below. The master must reap the dead connection (the
  // deadline/EOF path), the survivors must still shut down cleanly, and
  // the loss must still collapse.
  const pid_t victim_pid = fork();
  if (victim_pid < 0) {
    std::perror("fork victim");
    return 1;
  }
  if (victim_pid == 0) {
    child_exit(run_worker("127.0.0.1", port, steps * 1000,
                          40 + static_cast<std::uint64_t>(kWorkers),
                          /*compute_delay_us=*/2000));
  }
  pids.push_back(victim_pid);

  // Let the victim connect and push a few rounds before the hit.
  usleep(500 * 1000);
  std::printf("[parent] SIGKILLing victim worker pid %d mid-run\n",
              static_cast<int>(victim_pid));
  std::fflush(nullptr);
  kill(victim_pid, SIGKILL);

  int failures = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) != pid) {
      std::fprintf(stderr, "[parent] waitpid(%d) failed\n", static_cast<int>(pid));
      ++failures;
      continue;
    }
    if (pid == victim_pid) {
      if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        std::fprintf(stderr, "[parent] victim %d was not killed as planned (status %d)\n",
                     static_cast<int>(pid), status);
        ++failures;
      }
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "[parent] child %d failed (status %d)\n", static_cast<int>(pid),
                   status);
      ++failures;
    }
  }
  std::printf("[parent] %s\n", failures == 0
                                   ? "distributed run converged, survived the worker crash"
                                   : "FAILED");
  return failures == 0 ? 0 : 1;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: example_dist_training                       # self-contained local run\n"
               "       example_dist_training --role master [--port P] [--workers N]\n"
               "       example_dist_training --role worker [--host H] [--port P] [--seed S]\n"
               "steps per worker come from YF_EXAMPLE_ITERS (default 60)\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string role;
  std::string host = "127.0.0.1";
  long port = 0;
  int workers = kWorkers;
  std::uint64_t seed = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--role") {
      role = next();
    } else if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::strtol(next(), nullptr, 10);
    } else if (arg == "--workers") {
      workers = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoll(next(), nullptr, 10));
    } else {
      usage();
    }
  }
  if (port < 0 || port > 65535) usage();
  const int steps = yfx::example_iters(60);

  if (role.empty()) return run_auto(steps);
  if (role == "master") {
    return run_master(static_cast<std::uint16_t>(port), workers, -1, /*expect_crashes=*/0);
  }
  if (role == "worker") {
    if (port == 0) usage();
    return run_worker(host, static_cast<std::uint16_t>(port), steps, seed);
  }
  usage();
}
