// Image classification example: a residual CNN on SynthCIFAR, comparing
// YellowFin against hand-tuned momentum SGD and Adam on the same task --
// the paper's headline synchronous comparison, at example scale.
#include <cstdio>
#include <memory>

#include "autograd/ops.hpp"
#include "data/synth_cifar.hpp"
#include "example_common.hpp"
#include "nn/resnet.hpp"
#include "optim/adam.hpp"
#include "optim/momentum_sgd.hpp"
#include "train/metrics.hpp"
#include "train/trainer.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace t = yf::tensor;
namespace train = yf::train;

namespace {

struct Run {
  std::vector<double> losses;
  double val_acc;
};

Run train_with(const std::string& which, int iterations) {
  yf::data::SynthCifarConfig dcfg;
  dcfg.classes = 5;
  dcfg.height = 8;
  dcfg.width = 8;
  dcfg.seed = 11;
  auto dataset = std::make_shared<yf::data::SynthCifar>(dcfg);

  yf::nn::MiniResNetConfig mcfg;
  mcfg.base_channels = 4;
  mcfg.blocks_per_stage = 1;
  mcfg.num_classes = 5;
  t::Rng model_rng(1);
  auto model = std::make_shared<yf::nn::MiniResNet>(mcfg, model_rng);
  auto rng = std::make_shared<t::Rng>(2);

  std::shared_ptr<yf::optim::Optimizer> opt;
  if (which == "yellowfin") {
    opt = std::make_shared<yf::tuner::YellowFin>(model->parameters());
  } else if (which == "momentum_sgd") {
    opt = std::make_shared<yf::optim::MomentumSGD>(model->parameters(), 0.03, 0.9);
  } else {
    opt = std::make_shared<yf::optim::Adam>(model->parameters(), 0.003);
  }

  train::TrainOptions topts;
  topts.iterations = iterations;
  auto result = train::train(
      *opt,
      [dataset, model, rng] {
        const auto b = dataset->sample(8, *rng);
        auto loss = ag::softmax_cross_entropy(model->forward(ag::Variable(b.images)), b.labels);
        loss.backward();
        return loss.value().item();
      },
      topts);

  const auto vb = dataset->validation_batch(100);
  const auto logits = model->forward(ag::Variable(vb.images));
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < 100; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < 5; ++j)
      if (logits.value()[i * 5 + j] > logits.value()[i * 5 + best]) best = j;
    if (best == vb.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return {std::move(result.losses), correct / 100.0};
}

}  // namespace

int main() {
  const int iterations = yfx::example_iters(400);
  std::printf("Residual CNN on SynthCIFAR (5 classes), %d iterations per optimizer\n\n",
              iterations);
  for (const char* which : {"adam", "momentum_sgd", "yellowfin"}) {
    const auto run = train_with(which, iterations);
    const auto smoothed = train::smooth_uniform(run.losses, 30);
    std::printf("%-14s final smoothed loss %.4f | val accuracy %.1f%%\n", which,
                smoothed.back(), 100.0 * run.val_acc);
  }
  std::printf("\nNote: momentum SGD and Adam use hand-picked learning rates;"
              " YellowFin needed none.\n");
  return 0;
}
