// Quickstart: drop YellowFin in where you would use any other optimizer.
//
// Builds a tiny MLP on a synthetic two-moons-style classification problem,
// trains it with YellowFin (zero hyperparameters), and prints the loss and
// the tuner's internal state as it adapts.
#include <cmath>
#include <cstdio>
#include <memory>

#include "autograd/ops.hpp"
#include "example_common.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "tensor/random.hpp"
#include "tuner/yellowfin.hpp"

namespace ag = yf::autograd;
namespace nn = yf::nn;
namespace t = yf::tensor;

namespace {

/// Two interleaved half-circles ("two moons").
void sample_moons(std::int64_t n, t::Rng& rng, t::Tensor& x, std::vector<std::int64_t>& y) {
  x = t::Tensor({n, 2});
  y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const bool upper = rng.bernoulli(0.5);
    const double theta = rng.uniform(0.0, 3.14159265);
    const double noise = 0.1;
    if (upper) {
      x[i * 2] = std::cos(theta) + noise * rng.normal();
      x[i * 2 + 1] = std::sin(theta) + noise * rng.normal();
    } else {
      x[i * 2] = 1.0 - std::cos(theta) + noise * rng.normal();
      x[i * 2 + 1] = 0.5 - std::sin(theta) + noise * rng.normal();
    }
    y[static_cast<std::size_t>(i)] = upper ? 1 : 0;
  }
}

class Mlp : public nn::Module {
 public:
  explicit Mlp(t::Rng& rng) {
    l1_ = std::make_shared<nn::Linear>(2, 16, rng);
    l2_ = std::make_shared<nn::Linear>(16, 2, rng);
    register_module("l1", l1_);
    register_module("l2", l2_);
  }
  ag::Variable forward(const ag::Variable& x) const {
    return l2_->forward(ag::tanh(l1_->forward(x)));
  }

 private:
  std::shared_ptr<nn::Linear> l1_, l2_;
};

}  // namespace

int main() {
  std::printf("yellowfin-cpp quickstart: two-moons MLP, zero hand-tuned hyperparameters\n\n");
  t::Rng rng(0);
  Mlp model(rng);

  // The only construction step: hand YellowFin your parameters.
  yf::tuner::YellowFin optimizer(model.parameters());

  t::Rng data_rng(1);
  const int iters = yfx::example_iters(600);
  for (int it = 0; it < iters; ++it) {
    t::Tensor x;
    std::vector<std::int64_t> y;
    sample_moons(32, data_rng, x, y);

    optimizer.zero_grad();
    auto loss = ag::softmax_cross_entropy(model.forward(ag::Variable(x)), y);
    loss.backward();
    optimizer.step();

    if (it % 100 == 0 || it == iters - 1) {
      std::printf("iter %4d  loss %.4f  | tuned lr %.5f  momentum %.3f  "
                  "(h_min %.2e, h_max %.2e)\n",
                  it, loss.value().item(), optimizer.lr(), optimizer.momentum(),
                  optimizer.h_min(), optimizer.h_max());
    }
  }

  // Held-out accuracy.
  t::Tensor x;
  std::vector<std::int64_t> y;
  t::Rng val_rng(99);
  sample_moons(512, val_rng, x, y);
  const auto logits = model.forward(ag::Variable(x));
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < 512; ++i) {
    const std::int64_t pred = logits.value()[i * 2 + 1] > logits.value()[i * 2] ? 1 : 0;
    if (pred == y[static_cast<std::size_t>(i)]) ++correct;
  }
  std::printf("\nheld-out accuracy: %.1f%% (untuned!)\n", 100.0 * correct / 512.0);
  return 0;
}
