#!/usr/bin/env python3
"""Markdown link checker for the repo docs (CI `docs` job + `md_link_check` ctest).

Checks every inline link in the given markdown files:

  * local file links (`[x](DESIGN.md)`, `[x](bench/baselines.json)`) must
    point at an existing file, resolved relative to the containing file;
  * anchor links (`[x](#quickstart)`, `[x](DESIGN.md#5-asynchrony)`) must
    match a heading in the target file under GitHub's slugification
    (lowercase; spaces -> hyphens; everything but ASCII alphanumerics,
    hyphens and underscores dropped; duplicate slugs suffixed -1, -2, ...);
  * external links (http/https/mailto) are NOT fetched -- this gate is
    about repo-internal rot, and CI must not flake on the network.

Links inside fenced code blocks and inline code spans are ignored.
Exits non-zero listing every broken link, so doc rot fails the build.
"""

import argparse
import pathlib
import re
import sys

FENCE_RE = re.compile(r"^\s*(?:```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(?P<text>.*?)\s*#*\s*$")
# [text](target) with an optional "title"; target itself has no spaces.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?(?P<target>[^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def github_slug(heading, taken):
    """GitHub anchor for a heading, disambiguated against `taken` (a dict
    slug -> count, mutated). Backticks and emphasis markers contribute
    their inner text; punctuation (., :, /, section signs, dashes other
    than ASCII '-') is dropped entirely, and each space becomes a hyphen."""
    text = heading.replace("`", "").replace("*", "")
    out = []
    for ch in text.strip().lower():
        if (ch.isascii() and ch.isalnum()) or ch in "-_":
            out.append(ch)
        elif ch == " ":
            out.append("-")
        # anything else (punctuation, unicode dashes, section signs) drops
    slug = "".join(out)
    n = taken.get(slug, 0)
    taken[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def collect_anchors(path, cache):
    """All valid GitHub heading anchors in a markdown file."""
    if path in cache:
        return cache[path]
    anchors = set()
    taken = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group("text"), taken))
    cache[path] = anchors
    return anchors


def check_file(md_path, root, anchor_cache):
    errors = []
    in_fence = False
    for lineno, line in enumerate(md_path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
            target = m.group("target")
            if target.startswith(SKIP_SCHEMES):
                continue

            def broken(why):
                errors.append(f"{md_path.relative_to(root)}:{lineno}: ({target}) {why}")

            if target.startswith("#"):
                if target[1:] not in collect_anchors(md_path, anchor_cache):
                    broken("no such anchor in this file")
                continue
            path_part, _, anchor = target.partition("#")
            dest = (md_path.parent / path_part).resolve()
            if not dest.exists():
                broken("file does not exist")
                continue
            if root not in dest.parents and dest != root:
                broken("points outside the repository")
                continue
            if anchor:
                if dest.suffix.lower() not in (".md", ".markdown"):
                    broken("anchor on a non-markdown file")
                elif anchor not in collect_anchors(dest, anchor_cache):
                    broken(f"no such anchor in {dest.name}")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root (default: cwd)")
    parser.add_argument(
        "files",
        nargs="*",
        default=["README.md", "DESIGN.md", "CHANGES.md"],
        help="markdown files to check, relative to --root",
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    anchor_cache = {}
    errors = []
    checked = 0
    for name in args.files:
        md_path = (root / name).resolve()
        if not md_path.is_file():
            errors.append(f"{name}: listed for checking but does not exist")
            continue
        checked += 1
        errors.extend(check_file(md_path, root, anchor_cache))

    if errors:
        print(f"check_md_links: {len(errors)} broken link(s):", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"check_md_links: OK ({checked} file(s), no broken local links)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
