// GEMM driver: size dispatch, panel hierarchy, packing, and row-block
// parallelism (DESIGN.md §9). The arithmetic lives behind the kernel
// dispatch table (gemm_micro / gemm_small_* in kernel_table.hpp); this
// file never multiplies two matrix elements itself, so the canonical
// accumulation order has exactly one definition per backend.
#include "core/gemm.hpp"

#include <algorithm>
#include <span>

#include "core/kernels.hpp"
#include "core/kernels/kernel_table.hpp"
#include "core/parallel.hpp"
#include "core/workspace.hpp"

namespace yf::core {

namespace {

using detail::kGemmKC;
using detail::kGemmMC;
using detail::kGemmMR;
using detail::kGemmNC;
using detail::kGemmNR;

/// Mul-add pairs a parallel chunk should carry before pool dispatch
/// amortizes (~0.1 ms of microkernel work). Cache blocking, not results:
/// partitioning row blocks never changes any element's accumulation.
constexpr std::int64_t kGemmGrainWork = 1 << 18;

/// Per-thread packing arena. Thread-local rather than per-call: the
/// calling thread packs B slabs, each pool worker packs its own A
/// blocks, and high-water-mark reuse makes every steady-state call
/// allocation-free. mark()/rollback() brackets keep the footprint at
/// the per-call peak instead of accumulating.
Workspace& pack_workspace() {
  static thread_local Workspace ws;
  return ws;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Pack op(B)[pc:pc+kc, jc:jc+nc] into NR-column tiles: tile jt holds
/// kc groups of NR consecutive columns (stride kc*NR per tile), columns
/// beyond n zero-padded so the microkernel never reads garbage.
///
/// Loop nests follow the *source* stride: the NN/TN layout streams one
/// B row per kk (scattering 64-byte groups into the tiles), the NT
/// layout streams one B row per destination column. Packing is pure
/// copies, so the nest order is a bandwidth choice, never a results one.
void pack_b_slab(GemmVariant v, double* bp, const double* b, std::int64_t n, std::int64_t k,
                 std::int64_t jc, std::int64_t nc, std::int64_t pc, std::int64_t kc) {
  const std::int64_t tiles = ceil_div(nc, kGemmNR);
  if (v == GemmVariant::kNT) {
    // op(B)[kk][j] = B[j][kk]: source row j covers destination column j.
    const std::int64_t tile_grain = std::max<std::int64_t>(1, kDefaultGrain / (kc * kGemmNR));
    parallel_for(tiles, tile_grain, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t jt = lo; jt < hi; ++jt) {
        double* dst = bp + jt * kc * kGemmNR;
        const std::int64_t j0 = jc + jt * kGemmNR;
        const std::int64_t cols = std::min<std::int64_t>(kGemmNR, jc + nc - j0);
        for (std::int64_t jj = 0; jj < cols; ++jj) {
          const double* src = b + (j0 + jj) * k + pc;
          for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * kGemmNR + jj] = src[kk];
        }
        for (std::int64_t jj = cols; jj < kGemmNR; ++jj) {
          for (std::int64_t kk = 0; kk < kc; ++kk) dst[kk * kGemmNR + jj] = 0.0;
        }
      }
    });
    return;
  }
  // NN/TN: B stored k x n; stream whole rows (kk outer), scatter into
  // the per-tile groups. Parallel over kk ranges: chunks write disjoint
  // kk groups of every tile.
  const std::int64_t kk_grain =
      std::max<std::int64_t>(1, kDefaultGrain / std::max<std::int64_t>(1, nc));
  parallel_for(kc, kk_grain, [&](std::int64_t klo, std::int64_t khi) {
    for (std::int64_t kk = klo; kk < khi; ++kk) {
      const double* src = b + (pc + kk) * n + jc;
      double* dstk = bp + kk * kGemmNR;
      const std::int64_t full = nc / kGemmNR;
      for (std::int64_t jt = 0; jt < full; ++jt) {
        double* grp = dstk + jt * kc * kGemmNR;
        const double* s = src + jt * kGemmNR;
        for (std::int64_t jj = 0; jj < kGemmNR; ++jj) grp[jj] = s[jj];
      }
      if (full < tiles) {
        double* grp = dstk + full * kc * kGemmNR;
        const std::int64_t cols = nc - full * kGemmNR;
        const double* s = src + full * kGemmNR;
        for (std::int64_t jj = 0; jj < cols; ++jj) grp[jj] = s[jj];
        for (std::int64_t jj = cols; jj < kGemmNR; ++jj) grp[jj] = 0.0;
      }
    }
  });
}

/// Pack op(A)[ic:ic+mc, pc:pc+kc] into MR-row tiles: tile it holds kc
/// groups of MR consecutive rows (stride kc*MR per tile), rows beyond m
/// zero-padded. Runs inside the row-block parallel region, so it is
/// plain sequential copies into the worker's own buffer.
void pack_a_block(GemmVariant v, double* ap, const double* a, std::int64_t m, std::int64_t k,
                  std::int64_t ic, std::int64_t mc, std::int64_t pc, std::int64_t kc) {
  const std::int64_t tiles = ceil_div(mc, kGemmMR);
  for (std::int64_t it = 0; it < tiles; ++it) {
    double* dst = ap + it * kc * kGemmMR;
    const std::int64_t i0 = ic + it * kGemmMR;
    const std::int64_t rows = std::min<std::int64_t>(kGemmMR, ic + mc - i0);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      double* grp = dst + kk * kGemmMR;
      if (v == GemmVariant::kTN) {
        // op(A)[i][kk] = A[kk][i], A stored k x m.
        const double* src = a + (pc + kk) * m + i0;
        for (std::int64_t rr = 0; rr < rows; ++rr) grp[rr] = src[rr];
      } else {
        for (std::int64_t rr = 0; rr < rows; ++rr) grp[rr] = a[(i0 + rr) * k + pc + kk];
      }
      for (std::int64_t rr = rows; rr < kGemmMR; ++rr) grp[rr] = 0.0;
    }
  }
}

bool degenerate(double* c, std::int64_t m, std::int64_t n, std::int64_t k) {
  if (m <= 0 || n <= 0) return true;
  if (k <= 0) {
    fill(std::span<double>(c, static_cast<std::size_t>(m * n)), 0.0);
    return true;
  }
  return false;
}

}  // namespace

namespace detail {

void gemm_small(GemmVariant variant, double* c, const double* a, const double* b, std::int64_t m,
                std::int64_t n, std::int64_t k) {
  if (degenerate(c, m, n, k)) return;
  const KernelTable& table = active_table();
  switch (variant) {
    case GemmVariant::kNN:
      table.gemm_small_nn(c, a, b, m, n, k);
      break;
    case GemmVariant::kNT:
      table.gemm_small_nt(c, a, b, m, n, k);
      break;
    case GemmVariant::kTN:
      table.gemm_small_tn(c, a, b, m, n, k);
      break;
  }
}

void gemm_packed(GemmVariant variant, double* c, const double* a, const double* b, std::int64_t m,
                 std::int64_t n, std::int64_t k) {
  if (degenerate(c, m, n, k)) return;
  const KernelTable& table = active_table();

  Workspace& ws = pack_workspace();
  const Workspace::Marker outer = ws.mark();
  // One B slab (reused across k-panels) sized for the widest slab.
  const std::int64_t nc_max = std::min(n, kGemmNC);
  const std::int64_t bp_cols = ceil_div(nc_max, kGemmNR) * kGemmNR;
  double* bp = ws.acquire_span(kGemmKC * bp_cols).data();

  const std::int64_t row_blocks = ceil_div(m, kGemmMC);
  for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t col_tiles = ceil_div(nc, kGemmNR);
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      const bool beta0 = pc == 0;
      pack_b_slab(variant, bp, b, n, k, jc, nc, pc, kc);
      // Row blocks are independent: each carries its own packed A block
      // (worker-local workspace) and writes a disjoint C row range, so
      // the partition cannot affect any element's accumulation order.
      const std::int64_t block_grain =
          std::max<std::int64_t>(1, kGemmGrainWork / std::max<std::int64_t>(1, kGemmMC * kc * nc));
      parallel_for(row_blocks, block_grain, [&](std::int64_t blo, std::int64_t bhi) {
        Workspace& wws = pack_workspace();
        const Workspace::Marker mark = wws.mark();
        double* ap = wws.acquire_span(kGemmMC * kGemmKC).data();
        for (std::int64_t blk = blo; blk < bhi; ++blk) {
          const std::int64_t ic = blk * kGemmMC;
          const std::int64_t mc = std::min(kGemmMC, m - ic);
          pack_a_block(variant, ap, a, m, k, ic, mc, pc, kc);
          const std::int64_t row_tiles = ceil_div(mc, kGemmMR);
          for (std::int64_t jt = 0; jt < col_tiles; ++jt) {
            const double* bpt = bp + jt * kc * kGemmNR;
            const std::int64_t j0 = jc + jt * kGemmNR;
            const std::int64_t cols = std::min<std::int64_t>(kGemmNR, jc + nc - j0);
            for (std::int64_t it = 0; it < row_tiles; ++it) {
              const std::int64_t i0 = ic + it * kGemmMR;
              const std::int64_t rows = std::min<std::int64_t>(kGemmMR, ic + mc - i0);
              table.gemm_micro(c + i0 * n + j0, n, ap + it * kc * kGemmMR, bpt, kc, rows, cols,
                               beta0);
            }
          }
        }
        wws.rollback(mark);
      });
    }
  }
  ws.rollback(outer);
}

}  // namespace detail

void gemm(GemmVariant variant, double* c, const double* a, const double* b, std::int64_t m,
          std::int64_t n, std::int64_t k) {
  const bool small = m * n * k <= detail::kGemmSmallWork ||
                     (variant != GemmVariant::kNT && m <= detail::kGemmSmallRows);
  if (small) {
    detail::gemm_small(variant, c, a, b, m, n, k);
  } else {
    detail::gemm_packed(variant, c, a, b, m, n, k);
  }
}

}  // namespace yf::core
