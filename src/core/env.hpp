// Checked environment-variable parsing.
//
// std::strtol / std::atoi silently map a typo'd value ("fast", "4x") to 0,
// and 0 is a *meaningful* setting for several knobs (YF_BACKWARD_THREADS=0
// means "match the pool fan-out"). Every env-int consumer routes through
// these helpers so a malformed value falls back to the documented default
// with a one-line warning instead of silently flipping semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace yf::core {

/// Strict base-10 parse of env var `name`: the whole value (modulo
/// surrounding whitespace) must be an integer. Returns nullopt when the
/// variable is unset, and nullopt *plus a one-line stderr warning* when it
/// is set but malformed — so "0" parses to 0 while "zero" warns and falls
/// back, keeping the two cases distinguishable at every call site.
std::optional<std::int64_t> env_int_value(const char* name);

/// env_int_value with an inline default: unset or malformed -> `fallback`
/// (malformed still warns).
std::int64_t checked_env_int(const char* name, std::int64_t fallback);

/// String env var with an inline default: unset or empty -> `fallback`.
/// The string knobs (YF_ENGINE, YF_KERNEL_BACKEND, ...) validate their own
/// vocabulary at the call site; this helper only centralizes the getenv
/// plumbing so every knob is greppable through core::env_*.
std::string env_str(const char* name, const char* fallback);

}  // namespace yf::core
