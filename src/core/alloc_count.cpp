#include "core/alloc_count.hpp"

#include <atomic>

namespace yf::core {

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
}  // namespace

std::uint64_t heap_alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t heap_free_count() { return g_frees.load(std::memory_order_relaxed); }

namespace detail {
void note_alloc() { g_allocs.fetch_add(1, std::memory_order_relaxed); }
void note_free() { g_frees.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

}  // namespace yf::core
