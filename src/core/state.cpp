#include "core/state.hpp"

#include <bit>
#include <string>

namespace yf::core {

namespace {

void put_le(std::vector<std::byte>& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_le(std::span<const std::byte> in, std::size_t offset, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= std::to_integer<std::uint64_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

void StateWriter::u8(std::uint8_t v) { put_le(*out_, v, 1); }
void StateWriter::u32(std::uint32_t v) { put_le(*out_, v, 4); }
void StateWriter::u64(std::uint64_t v) { put_le(*out_, v, 8); }
void StateWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void StateWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::f64_span(std::span<const double> v) {
  out_->reserve(out_->size() + v.size() * 8);
  for (const double d : v) f64(d);
}

void StateWriter::i64_span(std::span<const std::int64_t> v) {
  out_->reserve(out_->size() + v.size() * 8);
  for (const std::int64_t x : v) i64(x);
}

std::span<const std::byte> StateReader::take(std::size_t n, const char* what) {
  if (n > data_.size() - pos_) {
    throw StateError(std::string("state underrun reading ") + what);
  }
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t StateReader::u8() { return static_cast<std::uint8_t>(get_le(take(1, "u8"), 0, 1)); }
std::uint32_t StateReader::u32() {
  return static_cast<std::uint32_t>(get_le(take(4, "u32"), 0, 4));
}
std::uint64_t StateReader::u64() { return get_le(take(8, "u64"), 0, 8); }
std::int64_t StateReader::i64() { return static_cast<std::int64_t>(u64()); }
double StateReader::f64() { return std::bit_cast<double>(u64()); }

void StateReader::f64_span(std::span<double> dst) {
  const auto bytes = take(dst.size() * 8, "f64 span");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = std::bit_cast<double>(get_le(bytes, i * 8, 8));
  }
}

void StateReader::i64_span(std::span<std::int64_t> dst) {
  const auto bytes = take(dst.size() * 8, "i64 span");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::int64_t>(get_le(bytes, i * 8, 8));
  }
}

void StateReader::expect_end() const {
  if (pos_ != data_.size()) {
    throw StateError("trailing bytes after state (layout drift between writer and reader?)");
  }
}

}  // namespace yf::core
