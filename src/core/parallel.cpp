#include "core/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/env.hpp"

namespace yf::core {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

struct ThreadPool::Impl {
  /// Raw-task slot ring capacity. Sized far above any real demand: the
  /// backward engine submits at most (participants - 1) helper tasks per
  /// pass, and passes from distinct threads are rare (worker replicas run
  /// their engines inline). A full ring just means fewer helpers.
  static constexpr std::size_t kRawRing = 256;

  std::mutex mu;
  std::condition_variable work_ready;
  std::deque<std::packaged_task<void()>> queue;
  /// Preallocated ring of allocation-free tasks (try_submit_batch);
  /// drained ahead of `queue` -- raw tasks are the per-step hot path.
  RawTask raw_ring[kRawRing];
  std::size_t raw_head = 0;
  std::size_t raw_count = 0;
  std::vector<std::thread> workers;
  std::size_t fanout = 1;
  bool stopping = false;

  void worker_loop() {
    t_on_worker = true;
    for (;;) {
      RawTask raw;
      std::packaged_task<void()> task;
      {
        std::unique_lock lock(mu);
        work_ready.wait(lock, [&] { return stopping || raw_count > 0 || !queue.empty(); });
        if (stopping && raw_count == 0 && queue.empty()) return;
        if (raw_count > 0) {
          raw = raw_ring[raw_head];
          raw_head = (raw_head + 1) % kRawRing;
          --raw_count;
        } else {
          task = std::move(queue.front());
          queue.pop_front();
        }
      }
      if (raw.fn != nullptr) {
        raw.fn(raw.ctx);
      } else {
        task();
      }
    }
  }

  void spawn_locked(std::size_t n) {
    while (workers.size() < n) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }
};

ThreadPool::ThreadPool() : impl_(std::make_unique<Impl>()) {
  std::size_t n = std::max(1u, std::thread::hardware_concurrency());
  // Checked parse (core/env.hpp): a malformed YF_THREADS warns and keeps
  // the hardware default instead of silently strtol-ing to 0.
  if (const auto v = env_int_value("YF_THREADS"); v.has_value() && *v > 0) {
    n = static_cast<std::size_t>(*v);
  }
  std::scoped_lock lock(impl_->mu);
  impl_->fanout = n;
  impl_->spawn_locked(n);
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& w : impl_->workers) w.join();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

std::size_t ThreadPool::size() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->workers.size();
}

void ThreadPool::ensure_workers(std::size_t n) {
  std::scoped_lock lock(impl_->mu);
  impl_->spawn_locked(n);
}

std::size_t ThreadPool::fanout() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->fanout;
}

void ThreadPool::set_fanout(std::size_t n) {
  std::scoped_lock lock(impl_->mu);
  impl_->fanout = n;
  impl_->spawn_locked(n);
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::scoped_lock lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_ready.notify_one();
  return fut;
}

std::size_t ThreadPool::try_submit_batch(std::span<const RawTask> tasks) {
  std::size_t accepted = 0;
  {
    std::scoped_lock lock(impl_->mu);
    for (const RawTask& task : tasks) {
      if (impl_->raw_count == Impl::kRawRing) break;
      impl_->raw_ring[(impl_->raw_head + impl_->raw_count) % Impl::kRawRing] = task;
      ++impl_->raw_count;
      ++accepted;
    }
  }
  if (accepted == 1) {
    impl_->work_ready.notify_one();
  } else if (accepted > 1) {
    impl_->work_ready.notify_all();
  }
  return accepted;
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

namespace detail {

ScopedWorkerMark::ScopedWorkerMark() : prev_(t_on_worker) { t_on_worker = true; }

ScopedWorkerMark::~ScopedWorkerMark() { t_on_worker = prev_; }

void parallel_for_dispatch(std::int64_t n, std::int64_t grain, const BodyRef& body) {
  auto& pool = ThreadPool::instance();
  const auto fanout = pool.fanout();
  if (fanout < 2) {  // a single chunk cannot beat running inline
    body(0, n);
    return;
  }
  // Cap the chunk count at the fan-out limit (plus the calling thread):
  // finer chunking buys nothing and costs queue traffic.
  const auto max_chunks = static_cast<std::int64_t>(fanout) + 1;
  const std::int64_t chunks = std::min((n + grain - 1) / grain, max_chunks);
  const std::int64_t step = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(chunks - 1));
  for (std::int64_t c = 1; c < chunks; ++c) {
    const std::int64_t lo = c * step;
    const std::int64_t hi = std::min(n, lo + step);
    if (lo >= hi) break;
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  // Every chunk must finish before this frame unwinds (they reference
  // `body`), so collect the first error and rethrow only after the join.
  std::exception_ptr first_error;
  try {
    body(0, std::min(n, step));  // first chunk on the calling thread
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace yf::core
