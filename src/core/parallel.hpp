// Shared thread pool and grain-size-aware parallel_for (DESIGN.md §4).
//
// One process-wide pool serves every layer that wants concurrency: the
// span kernels (core/kernels.hpp) partition large elementwise sweeps over
// it, tensor::matmul parallelises over output rows, and the hogwild
// trainer (async/threaded_trainer) runs its workers on it instead of
// spawning fresh OS threads per call.
//
// Determinism contract: parallel_for only ever partitions *independent*
// index ranges; callers that need a deterministic reduction order keep the
// reduction sequential (see kernels.hpp). Nested calls from inside a pool
// worker run inline, so the pool never deadlocks on itself.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <future>
#include <span>

namespace yf::core {

/// Default elementwise grain: below this many scalars a sweep is not worth
/// dispatching to the pool.
inline constexpr std::int64_t kDefaultGrain = 1 << 14;

/// Grain for SIMD-backed elementwise sweeps: a vector loop retires ~4
/// doubles per cycle, so a chunk must be about 4x larger than the scalar
/// grain before pool dispatch amortizes. Partitioning never changes
/// elementwise results, so the two grains may differ freely.
inline constexpr std::int64_t kSimdGrain = 1 << 16;

/// Allocation-free task: a plain function pointer plus context. Raw tasks
/// land in a preallocated slot ring inside the pool, so enqueueing one
/// touches no heap -- the submission path of the parallel backward engine
/// (autograd/tape.hpp), whose steady state must not allocate. The context
/// must outlive the task's execution; there is no completion handle --
/// callers track completion themselves (the engine counts executed nodes
/// and active helpers).
struct RawTask {
  void (*fn)(void*) = nullptr;
  void* ctx = nullptr;
};

class ThreadPool {
 public:
  /// Process-wide pool. Initial worker count is YF_THREADS when set, else
  /// hardware_concurrency. With fewer than two workers, parallel_for runs
  /// inline (a lone worker cannot beat the calling thread).
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;

  /// Grow the pool to at least `n` workers (never shrinks; idle workers
  /// block on a condition variable). Callers that submit
  /// mutually-blocking task sets (e.g. hogwild workers that rendezvous on
  /// a lock) must ensure one worker per task first. Growing the pool this
  /// way does NOT raise the elementwise fan-out cap -- blocking task sets
  /// need threads, not data-parallel chunks, and fanning 64 hogwild
  /// threads' worth of chunks onto 4 cores would oversubscribe them.
  void ensure_workers(std::size_t n);

  /// Number of chunks parallel_for may dispatch (excluding the calling
  /// thread). Defaults to the initial worker count (YF_THREADS or
  /// hardware_concurrency) and is unaffected by ensure_workers.
  std::size_t fanout() const;

  /// Raise the fan-out cap (grows the pool to match). For tests and
  /// experiments that want data-parallel chunking beyond the detected
  /// core count.
  void set_fanout(std::size_t n);

  /// Enqueue a task; the future rethrows any exception it raised.
  ///
  /// COLD PATH: constructing the std::function and the promise/future
  /// pair heap-allocates per task. The remaining callers are per-run
  /// setup costs (parallel_for's chunk dispatch, run_workers' one task
  /// per worker per run) -- anything invoked per training step must go
  /// through try_submit_batch instead.
  std::future<void> submit(std::function<void()> fn);

  /// Enqueue raw tasks into the preallocated slot ring: no std::function,
  /// no future, no heap traffic. Returns the number actually enqueued
  /// (0..tasks.size()); when the ring is full the remainder is simply not
  /// submitted -- callers for whom helpers are an optimization (the
  /// backward engine) proceed with fewer. Tasks may start running before
  /// this returns.
  std::size_t try_submit_batch(std::span<const RawTask> tasks);

  /// True when called from inside a pool worker (used to run nested
  /// parallel constructs inline).
  static bool on_worker_thread();

 private:
  ThreadPool();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

namespace detail {

/// Non-owning, non-allocating reference to a parallel body. The inline
/// fast path of parallel_for must not construct a std::function -- a
/// capturing lambda routinely exceeds the small-buffer size and would
/// heap-allocate on every elementwise kernel call, breaking the tape's
/// zero-allocation contract (DESIGN.md §8).
struct BodyRef {
  void* ctx;
  void (*invoke)(void*, std::int64_t, std::int64_t);
  void operator()(std::int64_t lo, std::int64_t hi) const { invoke(ctx, lo, hi); }
};

/// Pool-dispatching slow path; `body` must stay alive for the call.
void parallel_for_dispatch(std::int64_t n, std::int64_t grain, const BodyRef& body);

/// RAII: mark the calling thread as a pool worker for the scope. The
/// backward engine installs this on the thread that drives a parallel
/// pass, so kernels invoked from inside node pullbacks run inline instead
/// of fanning out onto a pool whose workers are already busy draining the
/// engine's ready queue (that fan-out could otherwise deadlock: the
/// chunks would sit behind engine helpers that only finish once the
/// caller makes progress).
class ScopedWorkerMark {
 public:
  ScopedWorkerMark();
  ~ScopedWorkerMark();
  ScopedWorkerMark(const ScopedWorkerMark&) = delete;
  ScopedWorkerMark& operator=(const ScopedWorkerMark&) = delete;

 private:
  bool prev_;
};

}  // namespace detail

/// Run `body(lo, hi)` over a partition of [0, n). Ranges are disjoint,
/// cover [0, n) exactly, and are at least `grain` long (except possibly
/// the last), so per-element work is identical to a sequential sweep.
/// Runs inline when n <= grain, the pool is unavailable, or the caller is
/// itself a pool worker. The inline path performs no heap allocation.
template <typename Body>
void parallel_for(std::int64_t n, std::int64_t grain, const Body& body) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  if (n <= grain || ThreadPool::on_worker_thread()) {
    body(0, n);
    return;
  }
  const detail::BodyRef ref{
      const_cast<void*>(static_cast<const void*>(&body)),
      [](void* ctx, std::int64_t lo, std::int64_t hi) {
        (*static_cast<const Body*>(ctx))(lo, hi);
      }};
  detail::parallel_for_dispatch(n, grain, ref);
}

}  // namespace yf::core
