#include "core/workspace.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::core {

namespace {

/// Smallest block worth allocating; tiny first blocks would just add
/// block-hops on the warm-up path.
constexpr std::int64_t kMinBlock = 1024;

/// Keep consecutive acquisitions 64-byte aligned relative to block start.
constexpr std::int64_t kAlign = 8;

std::int64_t aligned(std::int64_t n) { return (n + kAlign - 1) / kAlign * kAlign; }

}  // namespace

Workspace::Workspace(std::int64_t initial_capacity) {
  if (initial_capacity > 0) {
    const std::int64_t size = std::max(kMinBlock, aligned(initial_capacity));
    blocks_.emplace_back(tensor::Shape{size});
    capacity_ += size;
  }
}

std::int64_t Workspace::reserve(std::int64_t n) {
  const std::int64_t need = aligned(std::max<std::int64_t>(n, 1));

  // Advance past exhausted blocks; allocate a fresh one (geometric in the
  // total capacity) only when none of the remaining blocks fits.
  while (cur_ < blocks_.size() && off_ + need > blocks_[cur_].size()) {
    ++cur_;
    off_ = 0;
  }
  if (cur_ == blocks_.size()) {
    const std::int64_t size = std::max({kMinBlock, need, capacity_});
    blocks_.emplace_back(tensor::Shape{size});
    capacity_ += size;
  }

  const std::int64_t start = off_;
  off_ += need;
  held_ += need;
  high_ = std::max(high_, held_);
  return start;
}

std::span<double> Workspace::acquire_span(std::int64_t n) {
  const std::int64_t start = reserve(n);
  return blocks_[cur_].data().subspan(static_cast<std::size_t>(start),
                                      static_cast<std::size_t>(std::max<std::int64_t>(n, 0)));
}

tensor::Tensor Workspace::acquire(std::span<const std::int64_t> dims) {
  tensor::Shape shape(dims.begin(), dims.end());
  const std::int64_t n = tensor::numel(shape);
  const std::int64_t start = reserve(n);
  tensor::Tensor t = tensor::Tensor::view_of(blocks_[cur_], start, std::move(shape));
  core::fill(t.data(), 0.0);
  return t;
}

void Workspace::rollback(const Marker& m) {
  const bool in_range =
      m.block < blocks_.size() ? m.offset <= blocks_[m.block].size() : m.block == blocks_.size();
  if (!in_range) {
    throw std::invalid_argument("Workspace::rollback: marker outside workspace");
  }
  if (m.held > held_) {
    throw std::invalid_argument("Workspace::rollback: marker is ahead of the bump pointer");
  }
  cur_ = m.block;
  off_ = m.offset;
  held_ = m.held;
}

}  // namespace yf::core
