// Bit-exact state serialization for checkpoint/restore (DESIGN.md §14).
//
// StateWriter/StateReader are the checkpoint twins of the wire payload
// codec (dist/wire.hpp): explicit little-endian primitives written byte
// by byte, doubles as their IEEE-754 bit pattern through uint64, and
// bounds-checked reads that throw StateError instead of running off the
// end of a torn file. They live in core -- not dist -- because the
// optimizer, tuner, and parameter-server layers serialize themselves and
// must not depend on the transport. Checksums, headers, and atomic file
// placement are the caller's job (dist/checkpoint.hpp); this layer is
// only the byte encoding, so a state round-trip is EXACTLY the identity
// on every field -- the restored-trajectory bit-identity pin rests on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace yf::core {

/// Malformed or truncated state bytes. Checkpoint-fatal: the caller
/// discards the candidate file and falls back to an older one.
class StateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StateWriter {
 public:
  /// Appends to `out`; the caller clears/reuses the buffer between
  /// snapshots (the steady-state checkpoint path is allocation-bounded).
  explicit StateWriter(std::vector<std::byte>& out) : out_(&out) {}

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);  ///< two's-complement through u64
  void f64(double v);        ///< exact: IEEE-754 bit pattern
  void f64_span(std::span<const double> v);
  void i64_span(std::span<const std::int64_t> v);

 private:
  std::vector<std::byte>* out_;
};

class StateReader {
 public:
  explicit StateReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  void f64_span(std::span<double> dst);
  void i64_span(std::span<std::int64_t> dst);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws StateError if bytes remain -- a snapshot must be consumed
  /// completely so layout drift is caught at load, not as silent skew.
  void expect_end() const;

 private:
  std::span<const std::byte> take(std::size_t n, const char* what);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace yf::core
