#include "core/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace yf::core {

std::optional<std::int64_t> env_int_value(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return std::nullopt;
  const char* p = env;
  while (std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(p, &end, 10);
  bool ok = end != p && errno != ERANGE;
  if (ok) {
    while (std::isspace(static_cast<unsigned char>(*end)) != 0) ++end;
    ok = *end == '\0';
  }
  if (!ok) {
    std::fprintf(stderr, "yf: ignoring %s=\"%s\": not an integer, using the default\n", name, env);
    return std::nullopt;
  }
  return static_cast<std::int64_t>(v);
}

std::int64_t checked_env_int(const char* name, std::int64_t fallback) {
  const auto v = env_int_value(name);
  return v.has_value() ? *v : fallback;
}

std::string env_str(const char* name, const char* fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

}  // namespace yf::core
