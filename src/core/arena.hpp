// ParamArena: flat parameter/gradient storage for a model (DESIGN.md §4).
//
// Flattens a parameter list into two contiguous buffers -- one for values,
// one for gradients -- and repoints every parameter's autograd node at an
// O(1)-reshape view into them. After construction:
//
//  * `p.value()` and `p.grad()` alias the arena buffers
//    (shares_storage_with the arena tensors holds for every parameter);
//  * per-parameter shapes are preserved exactly -- each view keeps the
//    shape the parameter was registered with;
//  * optimizers and the tuner sweep `values()` / `grads()` in one fused
//    pass instead of walking the parameter list tensor by tensor;
//  * the buffers outlive the arena (shared storage), so parameters stay
//    valid if the arena/optimizer is destroyed;
//  * a new arena over parameters that are already flat, contiguous and in
//    slot order *adopts* the existing buffers instead of reallocating, so
//    several optimizers over the same model all stay aliased (drop-in
//    replacement semantics). Only a different parameter order or
//    non-arena storage triggers a fresh flatten, which migrates values
//    and gradients into new buffers.
//
// Duplicate Variable handles (same autograd node appearing twice in the
// list) flatten into a single slot, so an update touches each distinct
// parameter exactly once.
#pragma once

#include <span>
#include <vector>

#include "autograd/variable.hpp"
#include "tensor/tensor.hpp"

namespace yf::core {

class ParamArena {
 public:
  /// Flatten `params` (leaf Variables) and repoint them into the arena.
  explicit ParamArena(const std::vector<autograd::Variable>& params);

  /// Total number of scalars across all unique parameters.
  std::int64_t size() const { return total_; }

  /// Number of unique parameters (duplicates deduplicated).
  std::size_t count() const { return slots_.size(); }

  std::span<double> values() { return values_.data(); }
  std::span<double> grads() { return grads_.data(); }
  std::span<const double> values() const { return values_.data(); }
  std::span<const double> grads() const { return grads_.data(); }

  /// The rank-1 arena buffers themselves (parameter tensors are views
  /// into these; useful for aliasing checks and whole-model tensor math).
  const tensor::Tensor& values_tensor() const { return values_; }
  const tensor::Tensor& grads_tensor() const { return grads_; }

  std::int64_t offset(std::size_t i) const { return slots_[i].offset; }
  const tensor::Shape& shape(std::size_t i) const { return slots_[i].shape; }
  /// Scalar count of slot `i` (shard/slot overlap math in the overlap
  /// drivers; slot i spans [offset(i), offset(i) + slot_size(i))).
  std::size_t slot_size(std::size_t i) const {
    return static_cast<std::size_t>(tensor::numel(slots_[i].shape));
  }

  /// Slot index of a flattened parameter; throws if `p` is not in this
  /// arena. With tied weights, duplicates map to the same slot.
  std::size_t slot_index(const autograd::Variable& p) const;

  std::span<double> param_values(std::size_t i) {
    return values().subspan(static_cast<std::size_t>(slots_[i].offset), slot_size(i));
  }
  std::span<double> param_grads(std::size_t i) {
    return grads().subspan(static_cast<std::size_t>(slots_[i].offset), slot_size(i));
  }

  /// Contiguous shard windows over the flat buffers: a rank-1 `view_of`
  /// tensor aliasing [offset, offset + len) of the value / gradient
  /// buffer. Windows may span parameter boundaries — the parameter server
  /// partitions the arena by scalar count, not by slot
  /// (async/param_server, DESIGN.md §5).
  tensor::Tensor values_window(std::int64_t offset, std::int64_t len) const;
  tensor::Tensor grads_window(std::int64_t offset, std::int64_t len) const;

  /// Zero the whole gradient buffer in one pass.
  void zero_grads();

  /// A zero-filled rank-1 buffer aligned with the arena layout, for
  /// optimizer state (velocity, moments, ...).
  tensor::Tensor make_buffer() const;

  /// Shaped view of slot `i` within an aligned buffer (e.g. the velocity
  /// of parameter i).
  tensor::Tensor view(const tensor::Tensor& buffer, std::size_t i) const;

 private:
  /// Adopt existing arena-shaped storage instead of re-flattening, so a
  /// second arena over the same parameters shares buffers with the first
  /// (two optimizers on one model both stay live). Returns false when the
  /// parameters are not already flat/contiguous/in-order.
  bool try_adopt();

  struct Slot {
    autograd::NodePtr node;
    std::int64_t offset;
    tensor::Shape shape;
  };

  std::vector<Slot> slots_;
  std::int64_t total_ = 0;
  tensor::Tensor values_;
  tensor::Tensor grads_;
};

}  // namespace yf::core
