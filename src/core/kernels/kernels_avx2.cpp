// AVX2 kernel backend. This translation unit is the only one compiled
// with -mavx2 -mfma (CMakeLists.txt adds the flags when the compiler
// accepts them and defines YF_KERNELS_AVX2 for the target); callers
// reach it exclusively through the dispatch table after the runtime
// cpuid guard in backend.cpp, so no AVX2 instruction executes on a
// machine that lacks the feature.
//
// Bit-identity rules (kernel_table.hpp):
//  * elementwise kernels vectorize across elements but keep each
//    element's mul/add/sub/div/sqrt sequence exactly as the scalar
//    backend evaluates it -- all of these are IEEE correctly-rounded,
//    so 4 lanes round like 4 scalars. _mm256_fmadd_pd is deliberately
//    never used: an FMA rounds once where the scalar path rounds twice.
//  * reductions run two 4-wide accumulators (8 lanes) over full blocks,
//    spill to a lane array, fold the tail into lanes 0..tail-1, and
//    finish with the shared combine_lanes order -- operation-for-
//    operation what kernels_scalar.cpp does.
#ifdef YF_KERNELS_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "core/kernels/kernel_table.hpp"

namespace yf::core::detail {

namespace {

constexpr std::int64_t kVec = 4;  // doubles per 256-bit vector

// -- Elementwise chunk kernels. ----------------------------------------------

void fill_avx2(double* x, std::int64_t n, double v) {
  const __m256d vv = _mm256_set1_pd(v);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) _mm256_storeu_pd(x + i, vv);
  for (; i < n; ++i) x[i] = v;
}

void copy_avx2(double* dst, const double* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

void scale_avx2(double* x, std::int64_t n, double a) {
  const __m256d av = _mm256_set1_pd(a);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), av));
  }
  for (; i < n; ++i) x[i] = x[i] * a;
}

void axpy_avx2(double* y, const double* x, std::int64_t n, double a) {
  const __m256d av = _mm256_set1_pd(a);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256d yi = _mm256_loadu_pd(y + i);
    const __m256d xi = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(yi, _mm256_mul_pd(av, xi)));
  }
  for (; i < n; ++i) y[i] = y[i] + a * x[i];
}

void ewma_avx2(double* avg, const double* x, std::int64_t n, double beta) {
  const double om = 1.0 - beta;
  const __m256d bv = _mm256_set1_pd(beta);
  const __m256d ov = _mm256_set1_pd(om);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256d a = _mm256_mul_pd(_mm256_loadu_pd(avg + i), bv);
    const __m256d contrib = _mm256_mul_pd(ov, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(avg + i, _mm256_add_pd(a, contrib));
  }
  for (; i < n; ++i) {
    double a = avg[i] * beta;
    a += om * x[i];
    avg[i] = a;
  }
}

void ewma_moments_avx2(double* m1, double* m2, const double* x, std::int64_t n, double beta) {
  const double om = 1.0 - beta;
  const __m256d bv = _mm256_set1_pd(beta);
  const __m256d ov = _mm256_set1_pd(om);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256d g = _mm256_loadu_pd(x + i);
    const __m256d a = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(m1 + i), bv),
                                    _mm256_mul_pd(ov, g));
    _mm256_storeu_pd(m1 + i, a);
    const __m256d g2 = _mm256_mul_pd(g, g);
    const __m256d b = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(m2 + i), bv),
                                    _mm256_mul_pd(ov, g2));
    _mm256_storeu_pd(m2 + i, b);
  }
  for (; i < n; ++i) {
    const double g = x[i];
    double a = m1[i] * beta;
    a += om * g;
    m1[i] = a;
    double b = m2[i] * beta;
    b += om * (g * g);
    m2[i] = b;
  }
}

// -- Fused optimizer sweeps. -------------------------------------------------

void momentum_avx2(double* x, double* v, const double* g, std::int64_t n, double lr, double mu,
                   bool nesterov) {
  const __m256d muv = _mm256_set1_pd(mu);
  const __m256d nlr = _mm256_set1_pd(-lr);
  std::int64_t i = 0;
  if (nesterov) {
    for (; i + kVec <= n; i += kVec) {
      const __m256d gi = _mm256_loadu_pd(g + i);
      const __m256d step = _mm256_mul_pd(nlr, gi);
      const __m256d vi = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(v + i), muv), step);
      _mm256_storeu_pd(v + i, vi);
      __m256d xi = _mm256_loadu_pd(x + i);
      xi = _mm256_add_pd(xi, _mm256_mul_pd(muv, vi));
      xi = _mm256_add_pd(xi, step);
      _mm256_storeu_pd(x + i, xi);
    }
    for (; i < n; ++i) {
      double vi = v[i] * mu;
      vi += -lr * g[i];
      v[i] = vi;
      x[i] += mu * vi;
      x[i] += -lr * g[i];
    }
  } else {
    for (; i + kVec <= n; i += kVec) {
      const __m256d gi = _mm256_loadu_pd(g + i);
      const __m256d vi = _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(v + i), muv),
                                       _mm256_mul_pd(nlr, gi));
      _mm256_storeu_pd(v + i, vi);
      _mm256_storeu_pd(x + i, _mm256_add_pd(_mm256_loadu_pd(x + i), vi));
    }
    for (; i < n; ++i) {
      double vi = v[i] * mu;
      vi += -lr * g[i];
      v[i] = vi;
      x[i] += vi;
    }
  }
}

void adam_avx2(double* x, double* m, double* v, const double* g, std::int64_t n, double lr,
               double beta1, double beta2, double bc1, double bc2, double eps) {
  const __m256d b1 = _mm256_set1_pd(beta1);
  const __m256d ob1 = _mm256_set1_pd(1.0 - beta1);
  const __m256d b2 = _mm256_set1_pd(beta2);
  const __m256d ob2 = _mm256_set1_pd(1.0 - beta2);
  const __m256d bc1v = _mm256_set1_pd(bc1);
  const __m256d bc2v = _mm256_set1_pd(bc2);
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256d epsv = _mm256_set1_pd(eps);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256d gi = _mm256_loadu_pd(g + i);
    const __m256d mi = _mm256_add_pd(_mm256_mul_pd(b1, _mm256_loadu_pd(m + i)),
                                     _mm256_mul_pd(ob1, gi));
    _mm256_storeu_pd(m + i, mi);
    // (1-b2)*gi*gi associates left-to-right, exactly like the scalar path.
    const __m256d vi = _mm256_add_pd(_mm256_mul_pd(b2, _mm256_loadu_pd(v + i)),
                                     _mm256_mul_pd(_mm256_mul_pd(ob2, gi), gi));
    _mm256_storeu_pd(v + i, vi);
    const __m256d mhat = _mm256_div_pd(mi, bc1v);
    const __m256d vhat = _mm256_div_pd(vi, bc2v);
    const __m256d den = _mm256_add_pd(_mm256_sqrt_pd(vhat), epsv);
    const __m256d upd = _mm256_div_pd(_mm256_mul_pd(lrv, mhat), den);
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), upd));
  }
  for (; i < n; ++i) {
    const double gi = g[i];
    m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    x[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void adagrad_avx2(double* x, double* accum, const double* g, std::int64_t n, double lr,
                  double eps) {
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256d epsv = _mm256_set1_pd(eps);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256d gi = _mm256_loadu_pd(g + i);
    const __m256d ai = _mm256_add_pd(_mm256_loadu_pd(accum + i), _mm256_mul_pd(gi, gi));
    _mm256_storeu_pd(accum + i, ai);
    const __m256d den = _mm256_add_pd(_mm256_sqrt_pd(ai), epsv);
    const __m256d upd = _mm256_div_pd(_mm256_mul_pd(lrv, gi), den);
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), upd));
  }
  for (; i < n; ++i) {
    const double gi = g[i];
    accum[i] += gi * gi;
    x[i] -= lr * gi / (std::sqrt(accum[i]) + eps);
  }
}

void rmsprop_avx2(double* x, double* sq, const double* g, std::int64_t n, double lr, double decay,
                  double eps) {
  const __m256d dv = _mm256_set1_pd(decay);
  const __m256d odv = _mm256_set1_pd(1.0 - decay);
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256d epsv = _mm256_set1_pd(eps);
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    const __m256d gi = _mm256_loadu_pd(g + i);
    // (1-decay)*gi*gi associates left-to-right, like the scalar path.
    const __m256d si = _mm256_add_pd(_mm256_mul_pd(dv, _mm256_loadu_pd(sq + i)),
                                     _mm256_mul_pd(_mm256_mul_pd(odv, gi), gi));
    _mm256_storeu_pd(sq + i, si);
    const __m256d den = _mm256_add_pd(_mm256_sqrt_pd(si), epsv);
    const __m256d upd = _mm256_div_pd(_mm256_mul_pd(lrv, gi), den);
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), upd));
  }
  for (; i < n; ++i) {
    const double gi = g[i];
    sq[i] = decay * sq[i] + (1.0 - decay) * gi * gi;
    x[i] -= lr * gi / (std::sqrt(sq[i]) + eps);
  }
}

// -- Fused elementwise sweeps. ------------------------------------------------
// The shared blocked interpreter (kernel_table.hpp) defines the
// per-element arithmetic; this TU compiles it under -mavx2 (with
// -ffp-contract=off), so the per-op map loops auto-vectorize while every
// lane rounds exactly like the scalar reference.

void fused_forward_avx2(double* out, const double* const* inputs, const FusedStep* steps,
                        std::int32_t nsteps, std::int64_t n) {
  fused_forward_blocked(out, inputs, steps, nsteps, n);
}

void fused_backward_avx2(const double* out, const double* out_grad, const double* const* inputs,
                         double* const* grads, const FusedStep* steps, std::int32_t nsteps,
                         std::int64_t n) {
  fused_backward_blocked(out, out_grad, inputs, grads, steps, nsteps, n);
}

// -- Packed GEMM microkernel + small-matrix fast paths. ----------------------

/// 4x8 register tile over packed panels: 8 ymm accumulators (4 rows x
/// two 4-wide column vectors), one broadcast per row per kk. Each lane
/// is one C element's accumulator, so the mul+add (never FMA) sequence
/// per element is exactly gemm_micro_ref's. Edge tiles (rows < MR or
/// cols < NR) run the shared reference directly -- same order, scalar
/// stores that stay inside the valid corner.
void gemm_micro_avx2(double* c, std::int64_t ldc, const double* ap, const double* bp,
                     std::int64_t kc, std::int64_t rows, std::int64_t cols, bool beta0) {
  if (rows < kGemmMR || cols < kGemmNR) {
    gemm_micro_ref(c, ldc, ap, bp, kc, rows, cols, beta0);
    return;
  }
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const double* a = ap + kk * kGemmMR;
    const double* b = bp + kk * kGemmNR;
    const __m256d b0 = _mm256_loadu_pd(b);
    const __m256d b1 = _mm256_loadu_pd(b + kVec);
    __m256d ar = _mm256_broadcast_sd(a + 0);
    acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(ar, b0));
    acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(ar, b1));
    ar = _mm256_broadcast_sd(a + 1);
    acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(ar, b0));
    acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(ar, b1));
    ar = _mm256_broadcast_sd(a + 2);
    acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(ar, b0));
    acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(ar, b1));
    ar = _mm256_broadcast_sd(a + 3);
    acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(ar, b0));
    acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(ar, b1));
  }
  double* c0 = c;
  double* c1 = c + ldc;
  double* c2 = c + 2 * ldc;
  double* c3 = c + 3 * ldc;
  if (beta0) {
    _mm256_storeu_pd(c0, acc00);
    _mm256_storeu_pd(c0 + kVec, acc01);
    _mm256_storeu_pd(c1, acc10);
    _mm256_storeu_pd(c1 + kVec, acc11);
    _mm256_storeu_pd(c2, acc20);
    _mm256_storeu_pd(c2 + kVec, acc21);
    _mm256_storeu_pd(c3, acc30);
    _mm256_storeu_pd(c3 + kVec, acc31);
  } else {
    _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), acc00));
    _mm256_storeu_pd(c0 + kVec, _mm256_add_pd(_mm256_loadu_pd(c0 + kVec), acc01));
    _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), acc10));
    _mm256_storeu_pd(c1 + kVec, _mm256_add_pd(_mm256_loadu_pd(c1 + kVec), acc11));
    _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), acc20));
    _mm256_storeu_pd(c2 + kVec, _mm256_add_pd(_mm256_loadu_pd(c2 + kVec), acc21));
    _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), acc30));
    _mm256_storeu_pd(c3 + kVec, _mm256_add_pd(_mm256_loadu_pd(c3 + kVec), acc31));
  }
}

/// Small NN/TN paths: op(B) rows are contiguous, so the j loop
/// vectorizes with one accumulator lane per column -- per element, the
/// canonical panel order; only the A addressing differs between NN and
/// TN. Rows are processed in MR-groups reading B *in place* (each
/// kk-group of NR columns is contiguous in memory), i.e. the packed
/// microkernel without the packing: B is streamed ceil(m/MR) times
/// instead of being written and re-read through a packed copy, which is
/// what makes this path the right one for skinny-m products (LM decode,
/// the m <= 16 training matmuls). The NT small path has column-strided
/// op(B) reads (a gather per kk), so it runs the shared scalar
/// reference on both backends.
template <typename LoadARow>
void gemm_small_rowmajor_b_avx2(double* c, const double* b, std::int64_t m, std::int64_t n,
                                std::int64_t k, LoadARow la) {
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t ke = std::min(k, pc + kGemmKC);
    const bool beta0 = pc == 0;
    std::int64_t j = 0;
    // Column strip outermost, row groups inner: every group after the
    // first re-reads the same kc x NR strip of B while it is still
    // L1-resident, so B is streamed from cold storage once per panel
    // regardless of m.
    for (; j + kGemmNR <= n; j += kGemmNR) {
      std::int64_t i = 0;
      for (; i + kGemmMR <= m; i += kGemmMR) {
        __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
        __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
        __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
        __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
        for (std::int64_t kk = pc; kk < ke; ++kk) {
          const double* brow = b + kk * n + j;
          // The column-strip walk advances one page per kk when n is
          // ~512+, which the L2 streamer (page-bounded) cannot follow;
          // prefetching a few rows ahead hides that latency (both cache
          // lines: an unaligned 64-byte strip straddles two). Prefetch
          // never changes results.
          _mm_prefetch(reinterpret_cast<const char*>(brow + 16 * n), _MM_HINT_T0);
          _mm_prefetch(reinterpret_cast<const char*>(brow + 16 * n + kGemmNR - 1), _MM_HINT_T0);
          const __m256d b0 = _mm256_loadu_pd(brow);
          const __m256d b1 = _mm256_loadu_pd(brow + kVec);
          __m256d ar = _mm256_set1_pd(la(i, kk));
          acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(ar, b0));
          acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(ar, b1));
          ar = _mm256_set1_pd(la(i + 1, kk));
          acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(ar, b0));
          acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(ar, b1));
          ar = _mm256_set1_pd(la(i + 2, kk));
          acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(ar, b0));
          acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(ar, b1));
          ar = _mm256_set1_pd(la(i + 3, kk));
          acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(ar, b0));
          acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(ar, b1));
        }
        double* c0 = c + i * n + j;
        double* c1 = c0 + n;
        double* c2 = c0 + 2 * n;
        double* c3 = c0 + 3 * n;
        if (beta0) {
          _mm256_storeu_pd(c0, acc00);
          _mm256_storeu_pd(c0 + kVec, acc01);
          _mm256_storeu_pd(c1, acc10);
          _mm256_storeu_pd(c1 + kVec, acc11);
          _mm256_storeu_pd(c2, acc20);
          _mm256_storeu_pd(c2 + kVec, acc21);
          _mm256_storeu_pd(c3, acc30);
          _mm256_storeu_pd(c3 + kVec, acc31);
        } else {
          _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), acc00));
          _mm256_storeu_pd(c0 + kVec, _mm256_add_pd(_mm256_loadu_pd(c0 + kVec), acc01));
          _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), acc10));
          _mm256_storeu_pd(c1 + kVec, _mm256_add_pd(_mm256_loadu_pd(c1 + kVec), acc11));
          _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), acc20));
          _mm256_storeu_pd(c2 + kVec, _mm256_add_pd(_mm256_loadu_pd(c2 + kVec), acc21));
          _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), acc30));
          _mm256_storeu_pd(c3 + kVec, _mm256_add_pd(_mm256_loadu_pd(c3 + kVec), acc31));
        }
      }
      // Row remainder on the (now hot) strip: one row, two 4-wide vecs.
      for (; i < m; ++i) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (std::int64_t kk = pc; kk < ke; ++kk) {
          const double* brow = b + kk * n + j;
          const __m256d av = _mm256_set1_pd(la(i, kk));
          acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av, _mm256_loadu_pd(brow)));
          acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(av, _mm256_loadu_pd(brow + kVec)));
        }
        double* crow = c + i * n + j;
        if (beta0) {
          _mm256_storeu_pd(crow, acc0);
          _mm256_storeu_pd(crow + kVec, acc1);
        } else {
          _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc0));
          _mm256_storeu_pd(crow + kVec, _mm256_add_pd(_mm256_loadu_pd(crow + kVec), acc1));
        }
      }
    }
    // Column tail (< NR): scalar per element, same per-element order.
    for (; j < n; ++j) {
      for (std::int64_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (std::int64_t kk = pc; kk < ke; ++kk) acc += la(i, kk) * b[kk * n + j];
        double& cij = c[i * n + j];
        cij = beta0 ? acc : cij + acc;
      }
    }
  }
}

void gemm_small_nn_avx2(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k) {
  gemm_small_rowmajor_b_avx2(
      c, b, m, n, k, [a, k](std::int64_t i, std::int64_t kk) { return a[i * k + kk]; });
}

void gemm_small_nt_avx2(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k) {
  gemm_small_ref(
      c, m, n, k, [a, k](std::int64_t i, std::int64_t kk) { return a[i * k + kk]; },
      [b, k](std::int64_t kk, std::int64_t j) { return b[j * k + kk]; });
}

void gemm_small_tn_avx2(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k) {
  gemm_small_rowmajor_b_avx2(
      c, b, m, n, k, [a, m](std::int64_t i, std::int64_t kk) { return a[kk * m + i]; });
}

// -- Lane-blocked reductions. ------------------------------------------------
// Two 4-wide accumulators cover the 8 contract lanes: acc0 holds lanes
// 0-3, acc1 lanes 4-7. After the blocked loop both spill to a lane
// array; the tail and final combine run the shared scalar code, so the
// result is operation-for-operation identical to kernels_scalar.cpp.

template <typename TermV, typename TermS>
double lane_reduce_avx2(std::int64_t n, TermV term_v, TermS term_s) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::int64_t nb = n - n % kReduceLanes;
  for (std::int64_t i = 0; i < nb; i += kReduceLanes) {
    acc0 = _mm256_add_pd(acc0, term_v(i));
    acc1 = _mm256_add_pd(acc1, term_v(i + kVec));
  }
  alignas(32) double acc[kReduceLanes];
  _mm256_store_pd(acc, acc0);
  _mm256_store_pd(acc + kVec, acc1);
  for (std::int64_t l = 0; l + nb < n; ++l) acc[l] += term_s(nb + l);
  return combine_lanes(acc);
}

double sum_avx2(const double* x, std::int64_t n) {
  return lane_reduce_avx2(
      n, [x](std::int64_t i) { return _mm256_loadu_pd(x + i); },
      [x](std::int64_t i) { return x[i]; });
}

double squared_norm_avx2(const double* x, std::int64_t n) {
  return lane_reduce_avx2(
      n,
      [x](std::int64_t i) {
        const __m256d v = _mm256_loadu_pd(x + i);
        return _mm256_mul_pd(v, v);
      },
      [x](std::int64_t i) { return x[i] * x[i]; });
}

double dot_avx2(const double* a, const double* b, std::int64_t n) {
  return lane_reduce_avx2(
      n,
      [a, b](std::int64_t i) {
        return _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      },
      [a, b](std::int64_t i) { return a[i] * b[i]; });
}

double max_abs_avx2(const double* x, std::int64_t n) {
  // max is order-independent, so this needs no lane contract: strip the
  // sign bit and fold 4-wide maxima into one scalar maximum. Operand
  // order matters for NaN parity: maxpd forwards the *second* operand
  // when either is NaN, and std::max(m, term) keeps m when term is NaN,
  // so the running maximum must be the second operand to drop NaN terms
  // exactly like the scalar backend.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d mv = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + kVec <= n; i += kVec) {
    mv = _mm256_max_pd(_mm256_andnot_pd(sign_mask, _mm256_loadu_pd(x + i)), mv);
  }
  alignas(32) double lanes[kVec];
  _mm256_store_pd(lanes, mv);
  double m = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

double debiased_variance_sum_avx2(const double* m1, const double* m2, std::int64_t n, double inv1,
                                  double inv2) {
  const __m256d i1 = _mm256_set1_pd(inv1);
  const __m256d i2 = _mm256_set1_pd(inv2);
  return lane_reduce_avx2(
      n,
      [m1, m2, i1, i2](std::int64_t i) {
        const __m256d m = _mm256_mul_pd(_mm256_loadu_pd(m1 + i), i1);
        return _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(m2 + i), i2), _mm256_mul_pd(m, m));
      },
      [m1, m2, inv1, inv2](std::int64_t i) {
        const double m = m1[i] * inv1;
        return m2[i] * inv2 - m * m;
      });
}

}  // namespace

const KernelTable kAvx2Kernels = {
    .fill = fill_avx2,
    .copy = copy_avx2,
    .scale = scale_avx2,
    .axpy = axpy_avx2,
    .ewma = ewma_avx2,
    .ewma_moments = ewma_moments_avx2,
    .momentum = momentum_avx2,
    .adam = adam_avx2,
    .adagrad = adagrad_avx2,
    .rmsprop = rmsprop_avx2,
    .fused_forward = fused_forward_avx2,
    .fused_backward = fused_backward_avx2,
    .gemm_micro = gemm_micro_avx2,
    .gemm_small_nn = gemm_small_nn_avx2,
    .gemm_small_nt = gemm_small_nt_avx2,
    .gemm_small_tn = gemm_small_tn_avx2,
    .sum = sum_avx2,
    .squared_norm = squared_norm_avx2,
    .dot = dot_avx2,
    .max_abs = max_abs_avx2,
    .debiased_variance_sum = debiased_variance_sum_avx2,
};

}  // namespace yf::core::detail

#endif  // YF_KERNELS_AVX2
