// Scalar kernel backend: the portable reference implementation of the
// dispatch table (kernel_table.hpp). Elementwise entries are the exact
// per-element operation sequences documented in core/kernels.hpp;
// reductions emulate the 8-lane blocked accumulation order so their
// results match the AVX2 backend bit-for-bit. CMakeLists.txt compiles
// this TU with auto-vectorization disabled: the scalar backend is the
// genuinely-scalar reference the SIMD backend is compared against
// (results are identical either way; only codegen differs).
#include <algorithm>
#include <cmath>

#include "core/kernels/kernel_table.hpp"

namespace yf::core::detail {

namespace {

// -- Elementwise chunk kernels. ----------------------------------------------

void fill_scalar(double* x, std::int64_t n, double v) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = v;
}

void copy_scalar(double* dst, const double* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
}

void scale_scalar(double* x, std::int64_t n, double a) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = x[i] * a;
}

void axpy_scalar(double* y, const double* x, std::int64_t n, double a) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = y[i] + a * x[i];
}

void ewma_scalar(double* avg, const double* x, std::int64_t n, double beta) {
  const double om = 1.0 - beta;
  for (std::int64_t i = 0; i < n; ++i) {
    double a = avg[i] * beta;
    a += om * x[i];
    avg[i] = a;
  }
}

void ewma_moments_scalar(double* m1, double* m2, const double* x, std::int64_t n, double beta) {
  const double om = 1.0 - beta;
  for (std::int64_t i = 0; i < n; ++i) {
    const double g = x[i];
    double a = m1[i] * beta;
    a += om * g;
    m1[i] = a;
    double b = m2[i] * beta;
    b += om * (g * g);
    m2[i] = b;
  }
}

// -- Fused optimizer sweeps. -------------------------------------------------

void momentum_scalar(double* x, double* v, const double* g, std::int64_t n, double lr, double mu,
                     bool nesterov) {
  if (nesterov) {
    for (std::int64_t i = 0; i < n; ++i) {
      double vi = v[i] * mu;
      vi += -lr * g[i];
      v[i] = vi;
      x[i] += mu * vi;
      x[i] += -lr * g[i];
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      double vi = v[i] * mu;
      vi += -lr * g[i];
      v[i] = vi;
      x[i] += vi;
    }
  }
}

void adam_scalar(double* x, double* m, double* v, const double* g, std::int64_t n, double lr,
                 double beta1, double beta2, double bc1, double bc2, double eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    x[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void adagrad_scalar(double* x, double* accum, const double* g, std::int64_t n, double lr,
                    double eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    accum[i] += gi * gi;
    x[i] -= lr * gi / (std::sqrt(accum[i]) + eps);
  }
}

void rmsprop_scalar(double* x, double* sq, const double* g, std::int64_t n, double lr,
                    double decay, double eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    sq[i] = decay * sq[i] + (1.0 - decay) * gi * gi;
    x[i] -= lr * gi / (std::sqrt(sq[i]) + eps);
  }
}

// -- Fused elementwise sweeps. ------------------------------------------------
// One pass over the operands per chain: the shared blocked interpreter
// (kernel_table.hpp) defines the per-element arithmetic; this TU
// compiles it without -mavx2, making it the scalar reference.

void fused_forward_scalar(double* out, const double* const* inputs, const FusedStep* steps,
                          std::int32_t nsteps, std::int64_t n) {
  fused_forward_blocked(out, inputs, steps, nsteps, n);
}

void fused_backward_scalar(const double* out, const double* out_grad,
                           const double* const* inputs, double* const* grads,
                           const FusedStep* steps, std::int32_t nsteps, std::int64_t n) {
  fused_backward_blocked(out, out_grad, inputs, grads, steps, nsteps, n);
}

// -- Packed GEMM microkernel + small-matrix fast paths. ----------------------
// The scalar backend runs the shared reference implementations from
// kernel_table.hpp directly: they ARE the canonical accumulation order
// the AVX2 twins reproduce operation-for-operation.

void gemm_micro_scalar(double* c, std::int64_t ldc, const double* ap, const double* bp,
                       std::int64_t kc, std::int64_t rows, std::int64_t cols, bool beta0) {
  gemm_micro_ref(c, ldc, ap, bp, kc, rows, cols, beta0);
}

/// Blocked small path for row-major op(B) (NN/TN): MR-row groups with an
/// MR x NR accumulator block, mirroring the AVX2 small kernel's loop
/// nest so B is streamed ceil(m/MR) times instead of once per row. Per
/// element this is still gemm_small_ref's canonical order -- one
/// accumulator per element, kk ascending within each KC panel. The
/// prefetch matches the AVX2 twin: the column-strip walk advances one
/// page per kk, which the hardware streamer cannot follow.
template <typename LoadA>
void gemm_small_rowmajor_b_scalar(double* c, const double* b, std::int64_t m, std::int64_t n,
                                  std::int64_t k, LoadA la) {
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t ke = std::min(k, pc + kGemmKC);
    const bool beta0 = pc == 0;
    std::int64_t j = 0;
    // Column strip outermost, row groups inner (like the AVX2 twin):
    // every group after the first re-reads an L1-resident strip of B.
    for (; j + kGemmNR <= n; j += kGemmNR) {
      std::int64_t i = 0;
      for (; i + kGemmMR <= m; i += kGemmMR) {
        double acc[kGemmMR][kGemmNR] = {};
        for (std::int64_t kk = pc; kk < ke; ++kk) {
          const double* brow = b + kk * n + j;
          __builtin_prefetch(brow + 16 * n);
          for (std::int64_t r = 0; r < kGemmMR; ++r) {
            const double ar = la(i + r, kk);
            for (std::int64_t jj = 0; jj < kGemmNR; ++jj) acc[r][jj] += ar * brow[jj];
          }
        }
        for (std::int64_t r = 0; r < kGemmMR; ++r) {
          double* crow = c + (i + r) * n + j;
          if (beta0) {
            for (std::int64_t jj = 0; jj < kGemmNR; ++jj) crow[jj] = acc[r][jj];
          } else {
            for (std::int64_t jj = 0; jj < kGemmNR; ++jj) crow[jj] += acc[r][jj];
          }
        }
      }
      for (; i < m; ++i) {
        double acc[kGemmNR] = {};
        for (std::int64_t kk = pc; kk < ke; ++kk) {
          const double* brow = b + kk * n + j;
          const double ar = la(i, kk);
          for (std::int64_t jj = 0; jj < kGemmNR; ++jj) acc[jj] += ar * brow[jj];
        }
        double* crow = c + i * n + j;
        if (beta0) {
          for (std::int64_t jj = 0; jj < kGemmNR; ++jj) crow[jj] = acc[jj];
        } else {
          for (std::int64_t jj = 0; jj < kGemmNR; ++jj) crow[jj] += acc[jj];
        }
      }
    }
    for (; j < n; ++j) {
      for (std::int64_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (std::int64_t kk = pc; kk < ke; ++kk) acc += la(i, kk) * b[kk * n + j];
        double& cij = c[i * n + j];
        cij = beta0 ? acc : cij + acc;
      }
    }
  }
}

void gemm_small_nn_scalar(double* c, const double* a, const double* b, std::int64_t m,
                          std::int64_t n, std::int64_t k) {
  gemm_small_rowmajor_b_scalar(
      c, b, m, n, k, [a, k](std::int64_t i, std::int64_t kk) { return a[i * k + kk]; });
}

void gemm_small_nt_scalar(double* c, const double* a, const double* b, std::int64_t m,
                          std::int64_t n, std::int64_t k) {
  gemm_small_ref(
      c, m, n, k, [a, k](std::int64_t i, std::int64_t kk) { return a[i * k + kk]; },
      [b, k](std::int64_t kk, std::int64_t j) { return b[j * k + kk]; });
}

void gemm_small_tn_scalar(double* c, const double* a, const double* b, std::int64_t m,
                          std::int64_t n, std::int64_t k) {
  gemm_small_rowmajor_b_scalar(
      c, b, m, n, k, [a, m](std::int64_t i, std::int64_t kk) { return a[kk * m + i]; });
}

// -- Lane-blocked reductions. ------------------------------------------------
// One skeleton defines the canonical order for every reduction: full
// blocks feed lane l with elements i*kReduceLanes + l, tail elements
// land in lanes 0..tail-1, combine_lanes finishes. The AVX2 backend
// (lane_reduce_avx2) performs the identical operations with two 4-wide
// accumulators; only the per-element term varies between reductions.

template <typename Term>
double lane_reduce(std::int64_t n, Term term) {
  double acc[kReduceLanes] = {};
  const std::int64_t nb = n - n % kReduceLanes;
  for (std::int64_t i = 0; i < nb; i += kReduceLanes) {
    for (std::int64_t l = 0; l < kReduceLanes; ++l) acc[l] += term(i + l);
  }
  for (std::int64_t l = 0; l + nb < n; ++l) acc[l] += term(nb + l);
  return combine_lanes(acc);
}

double sum_scalar(const double* x, std::int64_t n) {
  return lane_reduce(n, [x](std::int64_t i) { return x[i]; });
}

double squared_norm_scalar(const double* x, std::int64_t n) {
  return lane_reduce(n, [x](std::int64_t i) { return x[i] * x[i]; });
}

double dot_scalar(const double* a, const double* b, std::int64_t n) {
  return lane_reduce(n, [a, b](std::int64_t i) { return a[i] * b[i]; });
}

double max_abs_scalar(const double* x, std::int64_t n) {
  double m = 0.0;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

double debiased_variance_sum_scalar(const double* m1, const double* m2, std::int64_t n,
                                    double inv1, double inv2) {
  return lane_reduce(n, [m1, m2, inv1, inv2](std::int64_t i) {
    const double m = m1[i] * inv1;
    return m2[i] * inv2 - m * m;
  });
}

}  // namespace

const KernelTable kScalarKernels = {
    .fill = fill_scalar,
    .copy = copy_scalar,
    .scale = scale_scalar,
    .axpy = axpy_scalar,
    .ewma = ewma_scalar,
    .ewma_moments = ewma_moments_scalar,
    .momentum = momentum_scalar,
    .adam = adam_scalar,
    .adagrad = adagrad_scalar,
    .rmsprop = rmsprop_scalar,
    .fused_forward = fused_forward_scalar,
    .fused_backward = fused_backward_scalar,
    .gemm_micro = gemm_micro_scalar,
    .gemm_small_nn = gemm_small_nn_scalar,
    .gemm_small_nt = gemm_small_nt_scalar,
    .gemm_small_tn = gemm_small_tn_scalar,
    .sum = sum_scalar,
    .squared_norm = squared_norm_scalar,
    .dot = dot_scalar,
    .max_abs = max_abs_scalar,
    .debiased_variance_sum = debiased_variance_sum_scalar,
};

}  // namespace yf::core::detail
