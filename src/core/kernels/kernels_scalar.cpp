// Scalar kernel backend: the portable reference implementation of the
// dispatch table (kernel_table.hpp). Elementwise entries are the exact
// per-element operation sequences documented in core/kernels.hpp;
// reductions emulate the 8-lane blocked accumulation order so their
// results match the AVX2 backend bit-for-bit. CMakeLists.txt compiles
// this TU with auto-vectorization disabled: the scalar backend is the
// genuinely-scalar reference the SIMD backend is compared against
// (results are identical either way; only codegen differs).
#include <algorithm>
#include <cmath>

#include "core/kernels/kernel_table.hpp"

namespace yf::core::detail {

namespace {

// -- Elementwise chunk kernels. ----------------------------------------------

void fill_scalar(double* x, std::int64_t n, double v) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = v;
}

void copy_scalar(double* dst, const double* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
}

void scale_scalar(double* x, std::int64_t n, double a) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = x[i] * a;
}

void axpy_scalar(double* y, const double* x, std::int64_t n, double a) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = y[i] + a * x[i];
}

void ewma_scalar(double* avg, const double* x, std::int64_t n, double beta) {
  const double om = 1.0 - beta;
  for (std::int64_t i = 0; i < n; ++i) {
    double a = avg[i] * beta;
    a += om * x[i];
    avg[i] = a;
  }
}

void ewma_moments_scalar(double* m1, double* m2, const double* x, std::int64_t n, double beta) {
  const double om = 1.0 - beta;
  for (std::int64_t i = 0; i < n; ++i) {
    const double g = x[i];
    double a = m1[i] * beta;
    a += om * g;
    m1[i] = a;
    double b = m2[i] * beta;
    b += om * (g * g);
    m2[i] = b;
  }
}

// -- Fused optimizer sweeps. -------------------------------------------------

void momentum_scalar(double* x, double* v, const double* g, std::int64_t n, double lr, double mu,
                     bool nesterov) {
  if (nesterov) {
    for (std::int64_t i = 0; i < n; ++i) {
      double vi = v[i] * mu;
      vi += -lr * g[i];
      v[i] = vi;
      x[i] += mu * vi;
      x[i] += -lr * g[i];
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      double vi = v[i] * mu;
      vi += -lr * g[i];
      v[i] = vi;
      x[i] += vi;
    }
  }
}

void adam_scalar(double* x, double* m, double* v, const double* g, std::int64_t n, double lr,
                 double beta1, double beta2, double bc1, double bc2, double eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    x[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void adagrad_scalar(double* x, double* accum, const double* g, std::int64_t n, double lr,
                    double eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    accum[i] += gi * gi;
    x[i] -= lr * gi / (std::sqrt(accum[i]) + eps);
  }
}

void rmsprop_scalar(double* x, double* sq, const double* g, std::int64_t n, double lr,
                    double decay, double eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double gi = g[i];
    sq[i] = decay * sq[i] + (1.0 - decay) * gi * gi;
    x[i] -= lr * gi / (std::sqrt(sq[i]) + eps);
  }
}

// -- Blocked matmul inner loop. ----------------------------------------------

void matmul_row_scalar(double* crow, const double* arow, const double* b, std::int64_t k,
                       std::int64_t n) {
  for (std::int64_t jb = 0; jb < n; jb += kMatmulColBlock) {
    const std::int64_t je = std::min(n, jb + kMatmulColBlock);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      if (aik == 0.0) continue;
      const double* brow = b + kk * n;
      for (std::int64_t j = jb; j < je; ++j) crow[j] += aik * brow[j];
    }
  }
}

// -- Lane-blocked reductions. ------------------------------------------------
// One skeleton defines the canonical order for every reduction: full
// blocks feed lane l with elements i*kReduceLanes + l, tail elements
// land in lanes 0..tail-1, combine_lanes finishes. The AVX2 backend
// (lane_reduce_avx2) performs the identical operations with two 4-wide
// accumulators; only the per-element term varies between reductions.

template <typename Term>
double lane_reduce(std::int64_t n, Term term) {
  double acc[kReduceLanes] = {};
  const std::int64_t nb = n - n % kReduceLanes;
  for (std::int64_t i = 0; i < nb; i += kReduceLanes) {
    for (std::int64_t l = 0; l < kReduceLanes; ++l) acc[l] += term(i + l);
  }
  for (std::int64_t l = 0; l + nb < n; ++l) acc[l] += term(nb + l);
  return combine_lanes(acc);
}

double sum_scalar(const double* x, std::int64_t n) {
  return lane_reduce(n, [x](std::int64_t i) { return x[i]; });
}

double squared_norm_scalar(const double* x, std::int64_t n) {
  return lane_reduce(n, [x](std::int64_t i) { return x[i] * x[i]; });
}

double dot_scalar(const double* a, const double* b, std::int64_t n) {
  return lane_reduce(n, [a, b](std::int64_t i) { return a[i] * b[i]; });
}

double max_abs_scalar(const double* x, std::int64_t n) {
  double m = 0.0;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

double debiased_variance_sum_scalar(const double* m1, const double* m2, std::int64_t n,
                                    double inv1, double inv2) {
  return lane_reduce(n, [m1, m2, inv1, inv2](std::int64_t i) {
    const double m = m1[i] * inv1;
    return m2[i] * inv2 - m * m;
  });
}

}  // namespace

const KernelTable kScalarKernels = {
    .fill = fill_scalar,
    .copy = copy_scalar,
    .scale = scale_scalar,
    .axpy = axpy_scalar,
    .ewma = ewma_scalar,
    .ewma_moments = ewma_moments_scalar,
    .momentum = momentum_scalar,
    .adam = adam_scalar,
    .adagrad = adagrad_scalar,
    .rmsprop = rmsprop_scalar,
    .matmul_row = matmul_row_scalar,
    .sum = sum_scalar,
    .squared_norm = squared_norm_scalar,
    .dot = dot_scalar,
    .max_abs = max_abs_scalar,
    .debiased_variance_sum = debiased_variance_sum_scalar,
};

}  // namespace yf::core::detail
