// Runtime kernel-backend selection (DESIGN.md §4).
//
// The span kernels in core/kernels.hpp dispatch through a per-backend
// function table: a portable scalar implementation that every build
// carries, and an AVX2/FMA implementation compiled into its own
// translation unit with -mavx2 -mfma and selected only when cpuid
// reports both features. Selection happens once, at first use, from
// the YF_KERNEL_BACKEND environment variable ("scalar" or "simd");
// without the override the best supported backend wins. Tests and
// benches flip backends in-process with set_kernel_backend.
//
// Switching backends never changes results: elementwise kernels use
// identical per-element arithmetic in every backend (the AVX2 variants
// deliberately avoid fused-multiply-add so each mul/add/div/sqrt rounds
// exactly like its scalar twin), and reductions follow the fixed
// lane-blocked accumulation order defined in kernel_table.hpp on every
// backend. tests/core_kernels_test.cpp pins both properties bitwise.
#pragma once

#include <string_view>

namespace yf::core {

enum class KernelBackend {
  kScalar,  ///< portable reference path, no ISA requirements
  kSimd,    ///< AVX2-vectorized path (x86-64 with AVX2+FMA only)
};

/// True when this build carries the AVX2 kernel translation unit and the
/// running CPU reports both AVX2 and FMA.
bool simd_supported();

/// Backend the span kernels currently dispatch to. Resolved once from
/// YF_KERNEL_BACKEND when set (an unsupported "simd" request or an
/// unknown value falls back to auto-detection with a stderr note), else
/// from cpuid.
KernelBackend active_kernel_backend();

/// Test/bench hook: force a backend for the current process. Throws
/// std::invalid_argument when asked for kSimd on a machine without AVX2
/// support. Thread-safe; kernels already in flight finish on the table
/// they started with.
void set_kernel_backend(KernelBackend backend);

/// Parse "scalar"/"simd" (the YF_KERNEL_BACKEND values). Returns false
/// on anything else, leaving `out` untouched.
bool kernel_backend_from_string(std::string_view name, KernelBackend& out);

const char* kernel_backend_name(KernelBackend backend);
const char* active_kernel_backend_name();

}  // namespace yf::core
