// Internal kernel dispatch table shared by the scalar and AVX2 backends
// (DESIGN.md §4). Not installed with the public headers: only
// core/kernels.cpp (the span front-end) and the backend translation
// units include this.
//
// Every entry operates on raw contiguous ranges *below* the
// parallel_for partitioning layer: the front-end validates spans, picks
// the grain, and hands each chunk to the active table. Two contracts
// make backends interchangeable bit-for-bit:
//
//  * Elementwise entries perform the exact per-element operation
//    sequence documented in core/kernels.hpp. Vector variants may
//    reorder *across* elements but never change the arithmetic of one
//    element, and they must not use fused-multiply-add (an FMA rounds
//    once where mul+add rounds twice, which would fork the trajectory).
//  * Reductions accumulate in the fixed lane-blocked order below --
//    kReduceLanes independent accumulators filled round-robin in index
//    order, combined by combine_lanes. The order is a property of the
//    *contract*, not of the ISA: the scalar backend emulates the same
//    lanes, so results are identical across backends, machines, and
//    (because reductions stay on one thread) worker counts.
#pragma once

#include <cstdint>

namespace yf::core::detail {

/// Reduction lane width. Fixed at 8 doubles (two 256-bit AVX2 vectors)
/// on every backend; changing it is a results-affecting contract change
/// that requires re-pinning the reduction tests and bench baselines.
inline constexpr std::int64_t kReduceLanes = 8;

/// Canonical lane combine: pairwise over the 8 lane accumulators.
/// acc[l] holds the sum of elements with index ≡ l (mod kReduceLanes).
inline double combine_lanes(const double* acc) {
  const double l0 = acc[0] + acc[4];
  const double l1 = acc[1] + acc[5];
  const double l2 = acc[2] + acc[6];
  const double l3 = acc[3] + acc[7];
  return (l0 + l2) + (l1 + l3);
}

struct KernelTable {
  // -- Elementwise chunk kernels. -------------------------------------------
  void (*fill)(double* x, std::int64_t n, double v);
  void (*copy)(double* dst, const double* src, std::int64_t n);
  void (*scale)(double* x, std::int64_t n, double a);
  void (*axpy)(double* y, const double* x, std::int64_t n, double a);
  void (*ewma)(double* avg, const double* x, std::int64_t n, double beta);
  void (*ewma_moments)(double* m1, double* m2, const double* x, std::int64_t n, double beta);

  // -- Fused optimizer sweeps (chunk-level). --------------------------------
  void (*momentum)(double* x, double* v, const double* g, std::int64_t n, double lr, double mu,
                   bool nesterov);
  void (*adam)(double* x, double* m, double* v, const double* g, std::int64_t n, double lr,
               double beta1, double beta2, double bc1, double bc2, double eps);
  void (*adagrad)(double* x, double* accum, const double* g, std::int64_t n, double lr,
                  double eps);
  void (*rmsprop)(double* x, double* sq, const double* g, std::int64_t n, double lr, double decay,
                  double eps);

  // -- Packed GEMM microkernel + small-matrix fast paths (gemm.cpp). --------
  void (*gemm_micro)(double* c, std::int64_t ldc, const double* ap, const double* bp,
                     std::int64_t kc, std::int64_t rows, std::int64_t cols, bool beta0);
  void (*gemm_small_nn)(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k);
  void (*gemm_small_nt)(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k);
  void (*gemm_small_tn)(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k);

  // -- Lane-blocked deterministic reductions. -------------------------------
  double (*sum)(const double* x, std::int64_t n);
  double (*squared_norm)(const double* x, std::int64_t n);
  double (*dot)(const double* a, const double* b, std::int64_t n);
  double (*max_abs)(const double* x, std::int64_t n);
  double (*debiased_variance_sum)(const double* m1, const double* m2, std::int64_t n, double inv1,
                                  double inv2);
};

extern const KernelTable kScalarKernels;
#ifdef YF_KERNELS_AVX2
extern const KernelTable kAvx2Kernels;
#endif

/// Table for the currently active backend (one relaxed atomic load).
const KernelTable& active_table();

// -- GEMM tiling constants (core/gemm.cpp panel hierarchy). ------------------
// The register tile is MR x NR = 4 x 8 (one broadcast lane times two
// 256-bit vectors); KC is the k-panel depth. All three are part of the
// canonical accumulation order below and therefore results-affecting:
// changing any of them requires re-pinning the GEMM tests and baselines.
inline constexpr std::int64_t kGemmMR = 4;
inline constexpr std::int64_t kGemmNR = 8;
inline constexpr std::int64_t kGemmKC = 256;

// Cache blocking only (never results-affecting): rows per packed A block
// (multiple of MR; MC x KC doubles ~ 192 KB, comfortably L2-resident) and
// columns per packed B slab (multiple of NR; KC x NC doubles ~ 2 MB).
inline constexpr std::int64_t kGemmMC = 96;
inline constexpr std::int64_t kGemmNC = 1024;

// Canonical GEMM accumulation order -- the determinism contract every
// path (packed scalar, packed AVX2, both small fast paths) reproduces
// exactly, making results invariant to backend, matrix size bucket,
// thread count and partition:
//
//   C[i][j] = (((s_0) + s_1) + s_2) + ...          one s per KC panel
//   s_p     = sum over kk in [p*KC, min(k,(p+1)*KC)), ascending, of
//             op(A)[i][kk] * op(B)[kk][j], accumulated left-to-right
//             in one accumulator starting at 0.0
//
// The first panel *overwrites* C (beta = 0), later panels accumulate.
// No FMA anywhere: each mul and each add rounds separately, so 4-wide
// vector lanes round exactly like 4 scalars.

/// Reference MR x NR microkernel over packed panels: ap holds kc
/// MR-groups (A tile column-major within the tile), bp holds kc
/// NR-groups (B tile row-major within the tile). Writes the rows x cols
/// valid corner of the tile into c (leading dimension ldc). The AVX2
/// backend uses this exact function for edge tiles and an operation-
/// for-operation vector twin for full tiles.
inline void gemm_micro_ref(double* c, std::int64_t ldc, const double* ap, const double* bp,
                           std::int64_t kc, std::int64_t rows, std::int64_t cols, bool beta0) {
  double acc[kGemmMR][kGemmNR] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const double* a = ap + kk * kGemmMR;
    const double* b = bp + kk * kGemmNR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const double ar = a[r];
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += ar * b[j];
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    double* crow = c + r * ldc;
    if (beta0) {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] = acc[r][j];
    } else {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] += acc[r][j];
    }
  }
}

/// Reference small-matrix path: unpacked operands, no pool, same
/// canonical per-element order as the packed path (KC panel partial
/// sums, kk ascending). `la(i, kk)` / `lb(kk, j)` read op(A) / op(B).
template <typename LoadA, typename LoadB>
inline void gemm_small_ref(double* c, std::int64_t m, std::int64_t n, std::int64_t k, LoadA la,
                           LoadB lb) {
  for (std::int64_t i = 0; i < m; ++i) {
    double* crow = c + i * n;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t ke = pc + kGemmKC < k ? pc + kGemmKC : k;
      for (std::int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::int64_t kk = pc; kk < ke; ++kk) acc += la(i, kk) * lb(kk, j);
        crow[j] = pc == 0 ? acc : crow[j] + acc;
      }
    }
  }
}

}  // namespace yf::core::detail
