// Internal kernel dispatch table shared by the scalar and AVX2 backends
// (DESIGN.md §4). Not installed with the public headers: only
// core/kernels.cpp (the span front-end) and the backend translation
// units include this.
//
// Every entry operates on raw contiguous ranges *below* the
// parallel_for partitioning layer: the front-end validates spans, picks
// the grain, and hands each chunk to the active table. Two contracts
// make backends interchangeable bit-for-bit:
//
//  * Elementwise entries perform the exact per-element operation
//    sequence documented in core/kernels.hpp. Vector variants may
//    reorder *across* elements but never change the arithmetic of one
//    element, and they must not use fused-multiply-add (an FMA rounds
//    once where mul+add rounds twice, which would fork the trajectory).
//  * Reductions accumulate in the fixed lane-blocked order below --
//    kReduceLanes independent accumulators filled round-robin in index
//    order, combined by combine_lanes. The order is a property of the
//    *contract*, not of the ISA: the scalar backend emulates the same
//    lanes, so results are identical across backends, machines, and
//    (because reductions stay on one thread) worker counts.
#pragma once

#include <cstdint>

namespace yf::core::detail {

/// Reduction lane width. Fixed at 8 doubles (two 256-bit AVX2 vectors)
/// on every backend; changing it is a results-affecting contract change
/// that requires re-pinning the reduction tests and bench baselines.
inline constexpr std::int64_t kReduceLanes = 8;

/// Canonical lane combine: pairwise over the 8 lane accumulators.
/// acc[l] holds the sum of elements with index ≡ l (mod kReduceLanes).
inline double combine_lanes(const double* acc) {
  const double l0 = acc[0] + acc[4];
  const double l1 = acc[1] + acc[5];
  const double l2 = acc[2] + acc[6];
  const double l3 = acc[3] + acc[7];
  return (l0 + l2) + (l1 + l3);
}

struct KernelTable {
  // -- Elementwise chunk kernels. -------------------------------------------
  void (*fill)(double* x, std::int64_t n, double v);
  void (*copy)(double* dst, const double* src, std::int64_t n);
  void (*scale)(double* x, std::int64_t n, double a);
  void (*axpy)(double* y, const double* x, std::int64_t n, double a);
  void (*ewma)(double* avg, const double* x, std::int64_t n, double beta);
  void (*ewma_moments)(double* m1, double* m2, const double* x, std::int64_t n, double beta);

  // -- Fused optimizer sweeps (chunk-level). --------------------------------
  void (*momentum)(double* x, double* v, const double* g, std::int64_t n, double lr, double mu,
                   bool nesterov);
  void (*adam)(double* x, double* m, double* v, const double* g, std::int64_t n, double lr,
               double beta1, double beta2, double bc1, double bc2, double eps);
  void (*adagrad)(double* x, double* accum, const double* g, std::int64_t n, double lr,
                  double eps);
  void (*rmsprop)(double* x, double* sq, const double* g, std::int64_t n, double lr, double decay,
                  double eps);

  // -- Blocked matmul inner loop: one output row. ---------------------------
  void (*matmul_row)(double* crow, const double* arow, const double* b, std::int64_t k,
                     std::int64_t n);

  // -- Lane-blocked deterministic reductions. -------------------------------
  double (*sum)(const double* x, std::int64_t n);
  double (*squared_norm)(const double* x, std::int64_t n);
  double (*dot)(const double* a, const double* b, std::int64_t n);
  double (*max_abs)(const double* x, std::int64_t n);
  double (*debiased_variance_sum)(const double* m1, const double* m2, std::int64_t n, double inv1,
                                  double inv2);
};

extern const KernelTable kScalarKernels;
#ifdef YF_KERNELS_AVX2
extern const KernelTable kAvx2Kernels;
#endif

/// Table for the currently active backend (one relaxed atomic load).
const KernelTable& active_table();

/// Column-block width of the matmul inner loop; part of the canonical
/// accumulation order (kk ascends within a block), shared by backends.
inline constexpr std::int64_t kMatmulColBlock = 256;

}  // namespace yf::core::detail
