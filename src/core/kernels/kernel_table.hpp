// Internal kernel dispatch table shared by the scalar and AVX2 backends
// (DESIGN.md §4). Not installed with the public headers: only
// core/kernels.cpp (the span front-end), the backend translation units,
// and the tape-fusion layer (autograd/tape.cpp builds FusedStep programs,
// autograd/ops.cpp tags fusible nodes; DESIGN.md §13) include this.
//
// Every entry operates on raw contiguous ranges *below* the
// parallel_for partitioning layer: the front-end validates spans, picks
// the grain, and hands each chunk to the active table. Two contracts
// make backends interchangeable bit-for-bit:
//
//  * Elementwise entries perform the exact per-element operation
//    sequence documented in core/kernels.hpp. Vector variants may
//    reorder *across* elements but never change the arithmetic of one
//    element, and they must not use fused-multiply-add (an FMA rounds
//    once where mul+add rounds twice, which would fork the trajectory).
//  * Reductions accumulate in the fixed lane-blocked order below --
//    kReduceLanes independent accumulators filled round-robin in index
//    order, combined by combine_lanes. The order is a property of the
//    *contract*, not of the ISA: the scalar backend emulates the same
//    lanes, so results are identical across backends, machines, and
//    (because reductions stay on one thread) worker counts.
#pragma once

#include <cmath>
#include <cstdint>

namespace yf::core::detail {

/// Reduction lane width. Fixed at 8 doubles (two 256-bit AVX2 vectors)
/// on every backend; changing it is a results-affecting contract change
/// that requires re-pinning the reduction tests and bench baselines.
inline constexpr std::int64_t kReduceLanes = 8;

/// Canonical lane combine: pairwise over the 8 lane accumulators.
/// acc[l] holds the sum of elements with index ≡ l (mod kReduceLanes).
inline double combine_lanes(const double* acc) {
  const double l0 = acc[0] + acc[4];
  const double l1 = acc[1] + acc[5];
  const double l2 = acc[2] + acc[6];
  const double l3 = acc[3] + acc[7];
  return (l0 + l2) + (l1 + l3);
}

// -- Fused elementwise sweeps (autograd tape fusion, DESIGN.md §13). ---------
//
// A fused chain is a straight-line program of pointwise steps compiled by
// the tape's fusion pass from a producer→consumer run of elementwise
// autograd nodes. Each step reads one or two operands -- an external
// chain input or the result of an earlier step -- and writes one virtual
// register. The sweep kernels interpret the program once per element
// (scalar backend) or once per 4-element vector (AVX2 backend), so a
// whole chain costs a single pass over memory with no intermediate
// tensors.
//
// Determinism contract, same as every elementwise entry above: each
// element's arithmetic is the exact operation sequence of the unfused
// ops (tensor/ops.cpp forward lambdas, autograd/ops.cpp pullbacks) --
// same association order, no FMA, transcendentals through the same libm
// calls -- so fused and unfused trajectories are bit-identical, and the
// AVX2 sweep rounds each element exactly like the scalar sweep.

/// Pointwise step opcodes. Binary ops read operands a and b; scalar and
/// unary ops read a (and the immediate s for the *_scalar forms).
enum class FusedOpKind : std::uint8_t {
  kAdd,        // a + b
  kSub,        // a - b
  kMul,        // a * b
  kAddScalar,  // a + s
  kMulScalar,  // a * s
  kRelu,       // a > 0 ? a : 0
  kTanh,       // std::tanh(a)
  kSigmoid,    // 1 / (1 + std::exp(-a))
  kExp,        // std::exp(a)
  kLog,        // std::log(a)
  kSquare,     // a * a
};

/// Operand encoding: >= 0 names the register written by that step index;
/// < 0 names external input ~idx (i.e. -1 -> input 0, -2 -> input 1...).
struct FusedStep {
  FusedOpKind op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  double s = 0.0;
};

/// Longest chain a single sweep executes (sizes the per-element register
/// file in both backends). The pass splits longer runs.
inline constexpr std::int32_t kMaxFusedSteps = 16;

struct KernelTable {
  // -- Elementwise chunk kernels. -------------------------------------------
  void (*fill)(double* x, std::int64_t n, double v);
  void (*copy)(double* dst, const double* src, std::int64_t n);
  void (*scale)(double* x, std::int64_t n, double a);
  void (*axpy)(double* y, const double* x, std::int64_t n, double a);
  void (*ewma)(double* avg, const double* x, std::int64_t n, double beta);
  void (*ewma_moments)(double* m1, double* m2, const double* x, std::int64_t n, double beta);

  // -- Fused optimizer sweeps (chunk-level). --------------------------------
  void (*momentum)(double* x, double* v, const double* g, std::int64_t n, double lr, double mu,
                   bool nesterov);
  void (*adam)(double* x, double* m, double* v, const double* g, std::int64_t n, double lr,
               double beta1, double beta2, double bc1, double bc2, double eps);
  void (*adagrad)(double* x, double* accum, const double* g, std::int64_t n, double lr,
                  double eps);
  void (*rmsprop)(double* x, double* sq, const double* g, std::int64_t n, double lr, double decay,
                  double eps);

  // -- Fused elementwise sweeps (tape fusion; see FusedStep above). ---------
  //
  // fused_forward writes the chain tail's value: out[i] = program(inputs
  // at i), with every intermediate kept in registers.
  //
  // fused_backward runs the chain rule tail-to-head per element. Only the
  // leading fused_recompute_limit() forward steps are replayed to rebuild
  // the register values the walk actually reads; the tail's own value
  // (needed by output-expressed derivatives like tanh') comes from `out`,
  // the buffer the forward sweep of this step already filled -- so the
  // common affine-into-transcendental chain replays nothing. grads[k]
  // (nullptr when input k takes no gradient) receives exactly the
  // accumulations the unfused pullbacks would make, in the same order:
  // steps in reverse, operand a before operand b within a step.
  void (*fused_forward)(double* out, const double* const* inputs, const FusedStep* steps,
                        std::int32_t nsteps, std::int64_t n);
  void (*fused_backward)(const double* out, const double* out_grad, const double* const* inputs,
                         double* const* grads, const FusedStep* steps, std::int32_t nsteps,
                         std::int64_t n);

  // -- Packed GEMM microkernel + small-matrix fast paths (gemm.cpp). --------
  void (*gemm_micro)(double* c, std::int64_t ldc, const double* ap, const double* bp,
                     std::int64_t kc, std::int64_t rows, std::int64_t cols, bool beta0);
  void (*gemm_small_nn)(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k);
  void (*gemm_small_nt)(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k);
  void (*gemm_small_tn)(double* c, const double* a, const double* b, std::int64_t m,
                        std::int64_t n, std::int64_t k);

  // -- Lane-blocked deterministic reductions. -------------------------------
  double (*sum)(const double* x, std::int64_t n);
  double (*squared_norm)(const double* x, std::int64_t n);
  double (*dot)(const double* a, const double* b, std::int64_t n);
  double (*max_abs)(const double* x, std::int64_t n);
  double (*debiased_variance_sum)(const double* m1, const double* m2, std::int64_t n, double inv1,
                                  double inv2);
};

extern const KernelTable kScalarKernels;
#ifdef YF_KERNELS_AVX2
extern const KernelTable kAvx2Kernels;
#endif

/// Table for the currently active backend (one relaxed atomic load).
const KernelTable& active_table();

// -- GEMM tiling constants (core/gemm.cpp panel hierarchy). ------------------
// The register tile is MR x NR = 4 x 8 (one broadcast lane times two
// 256-bit vectors); KC is the k-panel depth. All three are part of the
// canonical accumulation order below and therefore results-affecting:
// changing any of them requires re-pinning the GEMM tests and baselines.
inline constexpr std::int64_t kGemmMR = 4;
inline constexpr std::int64_t kGemmNR = 8;
inline constexpr std::int64_t kGemmKC = 256;

// Cache blocking only (never results-affecting): rows per packed A block
// (multiple of MR; MC x KC doubles ~ 192 KB, comfortably L2-resident) and
// columns per packed B slab (multiple of NR; KC x NC doubles ~ 2 MB).
inline constexpr std::int64_t kGemmMC = 96;
inline constexpr std::int64_t kGemmNC = 1024;

// Canonical GEMM accumulation order -- the determinism contract every
// path (packed scalar, packed AVX2, both small fast paths) reproduces
// exactly, making results invariant to backend, matrix size bucket,
// thread count and partition:
//
//   C[i][j] = (((s_0) + s_1) + s_2) + ...          one s per KC panel
//   s_p     = sum over kk in [p*KC, min(k,(p+1)*KC)), ascending, of
//             op(A)[i][kk] * op(B)[kk][j], accumulated left-to-right
//             in one accumulator starting at 0.0
//
// The first panel *overwrites* C (beta = 0), later panels accumulate.
// No FMA anywhere: each mul and each add rounds separately, so 4-wide
// vector lanes round exactly like 4 scalars.

/// Reference MR x NR microkernel over packed panels: ap holds kc
/// MR-groups (A tile column-major within the tile), bp holds kc
/// NR-groups (B tile row-major within the tile). Writes the rows x cols
/// valid corner of the tile into c (leading dimension ldc). The AVX2
/// backend uses this exact function for edge tiles and an operation-
/// for-operation vector twin for full tiles.
inline void gemm_micro_ref(double* c, std::int64_t ldc, const double* ap, const double* bp,
                           std::int64_t kc, std::int64_t rows, std::int64_t cols, bool beta0) {
  double acc[kGemmMR][kGemmNR] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const double* a = ap + kk * kGemmMR;
    const double* b = bp + kk * kGemmNR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const double ar = a[r];
      for (std::int64_t j = 0; j < kGemmNR; ++j) acc[r][j] += ar * b[j];
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    double* crow = c + r * ldc;
    if (beta0) {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] = acc[r][j];
    } else {
      for (std::int64_t j = 0; j < cols; ++j) crow[j] += acc[r][j];
    }
  }
}

// -- Fused-sweep blocked reference interpreter (both backends). --------------
// The chain program runs block-by-block: one op dispatch per step per
// kFusedBlock-element block, with tight per-op map loops over the block.
// Both backend TUs compile this exact code -- the scalar TU as written,
// the AVX2 TU auto-vectorized under -mavx2 -- and with -ffp-contract=off
// every lane rounds exactly like the scalar walk, so the per-element
// arithmetic is defined in exactly one place and the backends stay
// bit-identical. Blocking is a dispatch-cost choice, never a results
// one: each element's value and gradient see the same operation sequence
// a per-element interpreter would produce.

/// Elements per dispatch block. Chain scratch is kMaxFusedSteps rows of
/// this many doubles (16 KB), L1-resident alongside the operand slices.
inline constexpr std::int64_t kFusedBlock = 128;

/// One forward step over one block: reads operands from earlier scratch
/// rows or external input slices, writes `r` (the caller picks the
/// step's scratch row, or the output buffer for the chain tail).
inline void fused_step_block(const FusedStep& st, const double* const* inputs,
                             const double (*scratch)[kFusedBlock], std::int64_t base,
                             std::int64_t len, double* r) {
  const double* a = st.a >= 0 ? scratch[st.a] : inputs[~st.a] + base;
  switch (st.op) {
    case FusedOpKind::kAdd: {
      const double* b = st.b >= 0 ? scratch[st.b] : inputs[~st.b] + base;
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] + b[i];
      break;
    }
    case FusedOpKind::kSub: {
      const double* b = st.b >= 0 ? scratch[st.b] : inputs[~st.b] + base;
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] - b[i];
      break;
    }
    case FusedOpKind::kMul: {
      const double* b = st.b >= 0 ? scratch[st.b] : inputs[~st.b] + base;
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] * b[i];
      break;
    }
    case FusedOpKind::kAddScalar:
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] + st.s;
      break;
    case FusedOpKind::kMulScalar:
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] * st.s;
      break;
    case FusedOpKind::kRelu:
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] > 0.0 ? a[i] : 0.0;
      break;
    case FusedOpKind::kTanh:
      for (std::int64_t i = 0; i < len; ++i) r[i] = std::tanh(a[i]);
      break;
    case FusedOpKind::kSigmoid:
      for (std::int64_t i = 0; i < len; ++i) r[i] = 1.0 / (1.0 + std::exp(-a[i]));
      break;
    case FusedOpKind::kExp:
      for (std::int64_t i = 0; i < len; ++i) r[i] = std::exp(a[i]);
      break;
    case FusedOpKind::kLog:
      for (std::int64_t i = 0; i < len; ++i) r[i] = std::log(a[i]);
      break;
    case FusedOpKind::kSquare:
      for (std::int64_t i = 0; i < len; ++i) r[i] = a[i] * a[i];
      break;
  }
}

/// Forward sweep: every intermediate stays in block scratch; the tail
/// step writes straight into `out`.
inline void fused_forward_blocked(double* out, const double* const* inputs,
                                  const FusedStep* steps, std::int32_t nsteps, std::int64_t n) {
  double scratch[kMaxFusedSteps][kFusedBlock];
  for (std::int64_t base = 0; base < n; base += kFusedBlock) {
    const std::int64_t len = std::min<std::int64_t>(kFusedBlock, n - base);
    for (std::int32_t t = 0; t < nsteps; ++t) {
      fused_step_block(steps[t], inputs, scratch, base, len,
                       t == nsteps - 1 ? out + base : scratch[t]);
    }
  }
}

/// Registers the backward walk reads: the count of leading forward steps
/// whose outputs must be live in scratch before the backward walk runs.
/// Value-free derivatives (add, sub, scalar affine) read nothing; mul /
/// relu / log / square read operand values; tanh / sigmoid / exp read
/// their own output -- which for the tail step is the stored `out`
/// buffer, not a register, so a chain ending in a transcendental with a
/// value-free body needs no forward replay at all.
inline std::int32_t fused_recompute_limit(const FusedStep* steps, std::int32_t nsteps) {
  std::int32_t need = 0;
  for (std::int32_t t = 0; t < nsteps; ++t) {
    const FusedStep& st = steps[t];
    switch (st.op) {
      case FusedOpKind::kMul:
        if (st.a >= 0 && st.a + 1 > need) need = st.a + 1;
        if (st.b >= 0 && st.b + 1 > need) need = st.b + 1;
        break;
      case FusedOpKind::kRelu:
      case FusedOpKind::kLog:
      case FusedOpKind::kSquare:
        if (st.a >= 0 && st.a + 1 > need) need = st.a + 1;
        break;
      case FusedOpKind::kTanh:
      case FusedOpKind::kSigmoid:
      case FusedOpKind::kExp:
        if (t < nsteps - 1 && t + 1 > need) need = t + 1;
        break;
      default:
        break;  // kAdd/kSub/kAddScalar/kMulScalar: value-free pullbacks
    }
  }
  return need;
}

/// Backward sweep. Replays only the leading fused_recompute_limit()
/// forward steps into block scratch (the limit never includes the tail,
/// whose value comes from `out` -- bit-identical to a full replay by
/// determinism of the forward sweep that produced it), then walks steps
/// tail-to-head. Per element the accumulation sequence is exactly the
/// unfused pullbacks': steps in reverse, operand a before operand b
/// within a step -- blocking reorders accumulations only across distinct
/// elements, never within one gradient slot. grads[k] is nullptr when
/// input k takes no gradient.
inline void fused_backward_blocked(const double* out, const double* out_grad,
                                   const double* const* inputs, double* const* grads,
                                   const FusedStep* steps, std::int32_t nsteps, std::int64_t n) {
  double scratch[kMaxFusedSteps][kFusedBlock];
  double gscr[kMaxFusedSteps][kFusedBlock];
  const std::int32_t lim = fused_recompute_limit(steps, nsteps);
  for (std::int64_t base = 0; base < n; base += kFusedBlock) {
    const std::int64_t len = std::min<std::int64_t>(kFusedBlock, n - base);
    for (std::int32_t t = 0; t < lim; ++t) {
      fused_step_block(steps[t], inputs, scratch, base, len, scratch[t]);
    }
    for (std::int32_t t = 0; t + 1 < nsteps; ++t) {
      for (std::int64_t i = 0; i < len; ++i) gscr[t][i] = 0.0;
    }
    for (std::int32_t t = nsteps - 1; t >= 0; --t) {
      const FusedStep& st = steps[t];
      const double* g = t == nsteps - 1 ? out_grad + base : gscr[t];
      // Own-output reads (tanh'/sigmoid'/exp'): the tail's value lives
      // in the stored output buffer, interior values in the replayed
      // prefix.
      const double* own = t == nsteps - 1 ? out + base : scratch[t];
      const auto val = [&](std::int32_t o) {
        return o >= 0 ? static_cast<const double*>(scratch[o]) : inputs[~o] + base;
      };
      const auto acc = [&](std::int32_t o, auto expr) {
        if (o >= 0) {
          double* dst = gscr[o];
          for (std::int64_t i = 0; i < len; ++i) dst[i] += expr(i);
        } else if (double* gp = grads[~o]) {
          gp += base;
          for (std::int64_t i = 0; i < len; ++i) gp[i] += expr(i);
        }
      };
      switch (st.op) {
        case FusedOpKind::kAdd:
          acc(st.a, [&](std::int64_t i) { return g[i]; });
          acc(st.b, [&](std::int64_t i) { return g[i]; });
          break;
        case FusedOpKind::kSub:
          // The unfused pullback subtracts via add_(grad, -1.0), i.e. an
          // explicit multiply by -1.0 per element.
          acc(st.a, [&](std::int64_t i) { return g[i]; });
          acc(st.b, [&](std::int64_t i) { return -1.0 * g[i]; });
          break;
        case FusedOpKind::kMul: {
          const double* vb = val(st.b);
          acc(st.a, [&](std::int64_t i) { return g[i] * vb[i]; });
          const double* va = val(st.a);
          acc(st.b, [&](std::int64_t i) { return g[i] * va[i]; });
          break;
        }
        case FusedOpKind::kAddScalar:
          acc(st.a, [&](std::int64_t i) { return g[i]; });
          break;
        case FusedOpKind::kMulScalar:
          acc(st.a, [&](std::int64_t i) { return st.s * g[i]; });
          break;
        case FusedOpKind::kRelu: {
          const double* va = val(st.a);
          acc(st.a, [&](std::int64_t i) { return g[i] * (va[i] > 0.0 ? 1.0 : 0.0); });
          break;
        }
        case FusedOpKind::kTanh:
          acc(st.a, [&](std::int64_t i) { return g[i] * (1.0 - own[i] * own[i]); });
          break;
        case FusedOpKind::kSigmoid:
          acc(st.a, [&](std::int64_t i) { return g[i] * (own[i] * (1.0 - own[i])); });
          break;
        case FusedOpKind::kExp:
          acc(st.a, [&](std::int64_t i) { return g[i] * own[i]; });
          break;
        case FusedOpKind::kLog: {
          const double* va = val(st.a);
          acc(st.a, [&](std::int64_t i) { return g[i] * (1.0 / va[i]); });
          break;
        }
        case FusedOpKind::kSquare: {
          const double* va = val(st.a);
          acc(st.a, [&](std::int64_t i) { return g[i] * (2.0 * va[i]); });
          break;
        }
      }
    }
  }
}

/// Reference small-matrix path: unpacked operands, no pool, same
/// canonical per-element order as the packed path (KC panel partial
/// sums, kk ascending). `la(i, kk)` / `lb(kk, j)` read op(A) / op(B).
template <typename LoadA, typename LoadB>
inline void gemm_small_ref(double* c, std::int64_t m, std::int64_t n, std::int64_t k, LoadA la,
                           LoadB lb) {
  for (std::int64_t i = 0; i < m; ++i) {
    double* crow = c + i * n;
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t ke = pc + kGemmKC < k ? pc + kGemmKC : k;
      for (std::int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::int64_t kk = pc; kk < ke; ++kk) acc += la(i, kk) * lb(kk, j);
        crow[j] = pc == 0 ? acc : crow[j] + acc;
      }
    }
  }
}

}  // namespace yf::core::detail
