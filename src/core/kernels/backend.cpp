#include "core/kernels/backend.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/env.hpp"
#include "core/kernels/kernel_table.hpp"

namespace yf::core {

namespace {

bool cpu_has_avx2_fma() {
#if defined(YF_KERNELS_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelBackend resolve_initial_backend() {
  const KernelBackend best = simd_supported() ? KernelBackend::kSimd : KernelBackend::kScalar;
  const std::string env = env_str("YF_KERNEL_BACKEND", "");
  if (env.empty()) return best;
  KernelBackend requested;
  if (!kernel_backend_from_string(env.c_str(), requested)) {
    std::fprintf(stderr, "yf: unknown YF_KERNEL_BACKEND \"%s\" (want scalar|simd), using %s\n",
                 env.c_str(), kernel_backend_name(best));
    return best;
  }
  if (requested == KernelBackend::kSimd && !simd_supported()) {
    std::fprintf(stderr, "yf: YF_KERNEL_BACKEND=simd but AVX2+FMA unavailable, using scalar\n");
    return KernelBackend::kScalar;
  }
  return requested;
}

std::atomic<KernelBackend>& backend_state() {
  static std::atomic<KernelBackend> state{resolve_initial_backend()};
  return state;
}

}  // namespace

bool simd_supported() {
  static const bool supported = cpu_has_avx2_fma();
  return supported;
}

KernelBackend active_kernel_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_kernel_backend(KernelBackend backend) {
  if (backend == KernelBackend::kSimd && !simd_supported()) {
    throw std::invalid_argument("set_kernel_backend: simd backend unavailable on this machine");
  }
  backend_state().store(backend, std::memory_order_relaxed);
}

bool kernel_backend_from_string(std::string_view name, KernelBackend& out) {
  if (name == "scalar") {
    out = KernelBackend::kScalar;
    return true;
  }
  if (name == "simd") {
    out = KernelBackend::kSimd;
    return true;
  }
  return false;
}

const char* kernel_backend_name(KernelBackend backend) {
  return backend == KernelBackend::kSimd ? "simd" : "scalar";
}

const char* active_kernel_backend_name() {
  return kernel_backend_name(active_kernel_backend());
}

namespace detail {

const KernelTable& active_table() {
#ifdef YF_KERNELS_AVX2
  if (active_kernel_backend() == KernelBackend::kSimd) return kAvx2Kernels;
#endif
  return kScalarKernels;
}

}  // namespace detail

}  // namespace yf::core
