// Shared conv/BN/pool forward math (NCHW, im2col-based).
//
// Single home for the value-path loops of conv2d / batch_norm2d /
// global_avg_pool: the autograd ops (autograd/ops.cpp) and the tape-free
// serving engine (src/serve/) both call these, so served activations are
// bit-identical to the training forward by construction — there is no
// second implementation to drift.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace yf::core {

struct Conv2dDims {
  std::int64_t n, c, h, w;  // input
  std::int64_t f, kh, kw;   // filters
  std::int64_t oh, ow;      // output spatial
  std::int64_t stride, pad;
};

/// Fill the derived fields (oh/ow) of a ConvDims from input/filter/stride.
Conv2dDims conv2d_dims(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                       std::int64_t f, std::int64_t kh, std::int64_t kw, std::int64_t stride,
                       std::int64_t pad);

/// im2col: input [N,C,H,W] -> col [N*OH*OW, C*KH*KW].
void im2col_into(tensor::Tensor& col, const tensor::Tensor& input, const Conv2dDims& d);

/// col2im: scatter-add of col gradient back to input layout.
void col2im_add(const tensor::Tensor& dcol, const Conv2dDims& d, tensor::Tensor& dinput);

/// outmat [N*OH*OW, F] (= col @ Wᵀ) + bias [F] -> out [N,F,OH,OW].
void conv2d_bias_nchw_into(tensor::Tensor& out, const tensor::Tensor& outmat,
                           const tensor::Tensor& bias, const Conv2dDims& d);

/// Training-mode BN statistics: per-channel mean and 1/std over [N,C,H,W].
void batchnorm2d_stats_into(tensor::Tensor& mean, tensor::Tensor& inv_std,
                            const tensor::Tensor& x, std::int64_t n, std::int64_t c,
                            std::int64_t h, std::int64_t w, double eps);

/// xhat = (x - mean)/std (cached for backward), out = gamma*xhat + beta.
void batchnorm2d_normalize_into(tensor::Tensor& out, tensor::Tensor& xhat,
                                const tensor::Tensor& x, const tensor::Tensor& gamma,
                                const tensor::Tensor& beta, const tensor::Tensor& mean,
                                const tensor::Tensor& inv_std, std::int64_t n, std::int64_t c,
                                std::int64_t h, std::int64_t w);

/// [N,C,H,W] -> [N,C] spatial mean.
void global_avg_pool_into(tensor::Tensor& out, const tensor::Tensor& x, std::int64_t n,
                          std::int64_t c, std::int64_t h, std::int64_t w);

}  // namespace yf::core
