// Span front-end over the backend dispatch table (DESIGN.md §4): this
// file validates arguments, picks the parallel grain, and partitions
// elementwise sweeps over the pool; the per-chunk arithmetic lives in
// src/core/kernels/kernels_{scalar,avx2}.cpp behind kernel_table.hpp.
// Reductions stay on the calling thread: their lane-blocked order is
// the determinism contract, and one core streams memory fast enough
// that fanning them out would only buy nondeterminism.
#include "core/kernels.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/kernels/kernel_table.hpp"

namespace yf::core {

namespace {

void check_same_size(std::span<const double> a, std::span<const double> b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(op) + ": span size mismatch " +
                                std::to_string(a.size()) + " vs " + std::to_string(b.size()));
  }
}

/// Elementwise grain for the active backend: a SIMD sweep retires ~4
/// elements per cycle, so a chunk must be larger before pool dispatch
/// amortizes (see kSimdGrain in core/parallel.hpp).
std::int64_t elementwise_grain() {
  return active_kernel_backend() == KernelBackend::kSimd ? kSimdGrain : kDefaultGrain;
}

}  // namespace

void fill(std::span<double> x, double v) {
  const auto& table = detail::active_table();
  double* p = x.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) { table.fill(p + lo, hi - lo, v); });
}

void copy(std::span<double> dst, std::span<const double> src) {
  check_same_size(dst, src, "copy");
  const auto& table = detail::active_table();
  double* d = dst.data();
  const double* s = src.data();
  parallel_for(static_cast<std::int64_t>(dst.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) { table.copy(d + lo, s + lo, hi - lo); });
}

void scale(std::span<double> x, double a) {
  const auto& table = detail::active_table();
  double* p = x.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) { table.scale(p + lo, hi - lo, a); });
}

void axpy(std::span<double> y, std::span<const double> x, double a) {
  check_same_size(y, x, "axpy");
  const auto& table = detail::active_table();
  double* py = y.data();
  const double* px = x.data();
  parallel_for(static_cast<std::int64_t>(y.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) { table.axpy(py + lo, px + lo, hi - lo, a); });
}

double sum(std::span<const double> x) {
  return detail::active_table().sum(x.data(), static_cast<std::int64_t>(x.size()));
}

double squared_norm(std::span<const double> x) {
  return detail::active_table().squared_norm(x.data(), static_cast<std::int64_t>(x.size()));
}

double dot(std::span<const double> a, std::span<const double> b) {
  check_same_size(a, b, "dot");
  return detail::active_table().dot(a.data(), b.data(), static_cast<std::int64_t>(a.size()));
}

double max_abs(std::span<const double> x) {
  return detail::active_table().max_abs(x.data(), static_cast<std::int64_t>(x.size()));
}

void ewma_update(std::span<double> avg, std::span<const double> x, double beta) {
  check_same_size(avg, x, "ewma_update");
  const auto& table = detail::active_table();
  double* pa = avg.data();
  const double* px = x.data();
  parallel_for(static_cast<std::int64_t>(avg.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) {
                 table.ewma(pa + lo, px + lo, hi - lo, beta);
               });
}

void ewma_update_moments(std::span<double> m1, std::span<double> m2, std::span<const double> x,
                         double beta) {
  check_same_size(m1, x, "ewma_update_moments");
  check_same_size(m2, x, "ewma_update_moments");
  const auto& table = detail::active_table();
  double* p1 = m1.data();
  double* p2 = m2.data();
  const double* px = x.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) {
                 table.ewma_moments(p1 + lo, p2 + lo, px + lo, hi - lo, beta);
               });
}

double debiased_variance_sum(std::span<const double> m1_raw, std::span<const double> m2_raw,
                             double inv1, double inv2) {
  check_same_size(m1_raw, m2_raw, "debiased_variance_sum");
  return detail::active_table().debiased_variance_sum(
      m1_raw.data(), m2_raw.data(), static_cast<std::int64_t>(m1_raw.size()), inv1, inv2);
}

double clip_scale(std::span<double> x, double max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("clip_scale: max_norm must be positive");
  const double norm = std::sqrt(squared_norm(x));
  if (norm > max_norm) scale(x, max_norm / norm);
  return norm;
}

void sgd_step(std::span<double> x, std::span<const double> g, double lr) {
  axpy(x, g, -lr);
}

void momentum_step(std::span<double> x, std::span<double> v, std::span<const double> g, double lr,
                   double mu, bool nesterov) {
  check_same_size(x, g, "momentum_step");
  check_same_size(x, v, "momentum_step");
  const auto& table = detail::active_table();
  double* px = x.data();
  double* pv = v.data();
  const double* pg = g.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) {
                 table.momentum(px + lo, pv + lo, pg + lo, hi - lo, lr, mu, nesterov);
               });
}

void adam_step(std::span<double> x, std::span<double> m, std::span<double> v,
               std::span<const double> g, double lr, double beta1, double beta2, double bc1,
               double bc2, double eps) {
  check_same_size(x, g, "adam_step");
  check_same_size(x, m, "adam_step");
  check_same_size(x, v, "adam_step");
  const auto& table = detail::active_table();
  double* px = x.data();
  double* pm = m.data();
  double* pv = v.data();
  const double* pg = g.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) {
                 table.adam(px + lo, pm + lo, pv + lo, pg + lo, hi - lo, lr, beta1, beta2, bc1,
                            bc2, eps);
               });
}

void adagrad_step(std::span<double> x, std::span<double> accum, std::span<const double> g,
                  double lr, double eps) {
  check_same_size(x, g, "adagrad_step");
  check_same_size(x, accum, "adagrad_step");
  const auto& table = detail::active_table();
  double* px = x.data();
  double* pa = accum.data();
  const double* pg = g.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) {
                 table.adagrad(px + lo, pa + lo, pg + lo, hi - lo, lr, eps);
               });
}

void rmsprop_step(std::span<double> x, std::span<double> sq, std::span<const double> g, double lr,
                  double decay, double eps) {
  check_same_size(x, g, "rmsprop_step");
  check_same_size(x, sq, "rmsprop_step");
  const auto& table = detail::active_table();
  double* px = x.data();
  double* ps = sq.data();
  const double* pg = g.data();
  parallel_for(static_cast<std::int64_t>(x.size()), elementwise_grain(),
               [&](std::int64_t lo, std::int64_t hi) {
                 table.rmsprop(px + lo, ps + lo, pg + lo, hi - lo, lr, decay, eps);
               });
}

}  // namespace yf::core
