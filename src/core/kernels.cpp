#include "core/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace yf::core {

namespace {

void check_same_size(std::span<const double> a, std::span<const double> b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(op) + ": span size mismatch " +
                                std::to_string(a.size()) + " vs " + std::to_string(b.size()));
  }
}

}  // namespace

void fill(std::span<double> x, double v) {
  map(x, x, [v](double) { return v; });
}

void copy(std::span<double> dst, std::span<const double> src) {
  check_same_size(dst, src, "copy");
  map(dst, src, [](double s) { return s; });
}

void scale(std::span<double> x, double a) {
  map(x, x, [a](double v) { return v * a; });
}

void axpy(std::span<double> y, std::span<const double> x, double a) {
  check_same_size(y, x, "axpy");
  binary(y, y, x, [a](double yi, double xi) { return yi + a * xi; });
}

double sum(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s;
}

double squared_norm(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  check_same_size(a, b, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double max_abs(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

void ewma_update(std::span<double> avg, std::span<const double> x, double beta) {
  check_same_size(avg, x, "ewma_update");
  const double om = 1.0 - beta;
  binary(avg, avg, x, [beta, om](double a, double v) {
    a = a * beta;
    a += om * v;
    return a;
  });
}

void ewma_update_moments(std::span<double> m1, std::span<double> m2, std::span<const double> x,
                         double beta) {
  check_same_size(m1, x, "ewma_update_moments");
  check_same_size(m2, x, "ewma_update_moments");
  const double om = 1.0 - beta;
  const auto n = static_cast<std::int64_t>(x.size());
  double* p1 = m1.data();
  double* p2 = m2.data();
  const double* px = x.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double g = px[i];
      double a = p1[i] * beta;
      a += om * g;
      p1[i] = a;
      double b = p2[i] * beta;
      b += om * (g * g);
      p2[i] = b;
    }
  });
}

double debiased_variance_sum(std::span<const double> m1_raw, std::span<const double> m2_raw,
                             double inv1, double inv2) {
  check_same_size(m1_raw, m2_raw, "debiased_variance_sum");
  double c = 0.0;
  for (std::size_t i = 0; i < m1_raw.size(); ++i) {
    const double m = m1_raw[i] * inv1;
    const double m2 = m2_raw[i] * inv2;
    c += m2 - m * m;
  }
  return c;
}

double clip_scale(std::span<double> x, double max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("clip_scale: max_norm must be positive");
  const double norm = std::sqrt(squared_norm(x));
  if (norm > max_norm) scale(x, max_norm / norm);
  return norm;
}

void sgd_step(std::span<double> x, std::span<const double> g, double lr) {
  axpy(x, g, -lr);
}

void momentum_step(std::span<double> x, std::span<double> v, std::span<const double> g,
                   double lr, double mu, bool nesterov) {
  check_same_size(x, g, "momentum_step");
  check_same_size(x, v, "momentum_step");
  const auto n = static_cast<std::int64_t>(x.size());
  double* px = x.data();
  double* pv = v.data();
  const double* pg = g.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    if (nesterov) {
      for (std::int64_t i = lo; i < hi; ++i) {
        double vi = pv[i] * mu;
        vi += -lr * pg[i];
        pv[i] = vi;
        px[i] += mu * vi;
        px[i] += -lr * pg[i];
      }
    } else {
      for (std::int64_t i = lo; i < hi; ++i) {
        double vi = pv[i] * mu;
        vi += -lr * pg[i];
        pv[i] = vi;
        px[i] += vi;
      }
    }
  });
}

void adam_step(std::span<double> x, std::span<double> m, std::span<double> v,
               std::span<const double> g, double lr, double beta1, double beta2, double bc1,
               double bc2, double eps) {
  check_same_size(x, g, "adam_step");
  check_same_size(x, m, "adam_step");
  check_same_size(x, v, "adam_step");
  const auto n = static_cast<std::int64_t>(x.size());
  double* px = x.data();
  double* pm = m.data();
  double* pv = v.data();
  const double* pg = g.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double gi = pg[i];
      pm[i] = beta1 * pm[i] + (1.0 - beta1) * gi;
      pv[i] = beta2 * pv[i] + (1.0 - beta2) * gi * gi;
      const double mhat = pm[i] / bc1;
      const double vhat = pv[i] / bc2;
      px[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  });
}

void adagrad_step(std::span<double> x, std::span<double> accum, std::span<const double> g,
                  double lr, double eps) {
  check_same_size(x, g, "adagrad_step");
  check_same_size(x, accum, "adagrad_step");
  const auto n = static_cast<std::int64_t>(x.size());
  double* px = x.data();
  double* pa = accum.data();
  const double* pg = g.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double gi = pg[i];
      pa[i] += gi * gi;
      px[i] -= lr * gi / (std::sqrt(pa[i]) + eps);
    }
  });
}

void rmsprop_step(std::span<double> x, std::span<double> sq, std::span<const double> g,
                  double lr, double decay, double eps) {
  check_same_size(x, g, "rmsprop_step");
  check_same_size(x, sq, "rmsprop_step");
  const auto n = static_cast<std::int64_t>(x.size());
  double* px = x.data();
  double* ps = sq.data();
  const double* pg = g.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double gi = pg[i];
      ps[i] = decay * ps[i] + (1.0 - decay) * gi * gi;
      px[i] -= lr * gi / (std::sqrt(ps[i]) + eps);
    }
  });
}

}  // namespace yf::core
