// Packed, cache-blocked, register-tiled double GEMM (DESIGN.md §9).
//
// One driver serves three layouts -- the packing step absorbs the
// transpose, so no caller ever materializes a transposed operand:
//
//   kNN:  C[m,n] = A[m,k]  · B[k,n]
//   kNT:  C[m,n] = A[m,k]  · B[n,k]ᵀ   (autograd dA, tied-embedding decode)
//   kTN:  C[m,n] = A[k,m]ᵀ · B[k,n]    (autograd dB, conv dW)
//
// C is always *overwritten* (beta = 0 on the first k-panel), so a dirty
// reused output tensor needs no separate zeroing pass. Above a flops
// threshold the driver runs the BLIS-style panel hierarchy -- NC column
// slabs of packed B, KC k-panels, MC row blocks of packed A, an MR x NR
// register-tiled microkernel -- parallelized over row blocks on the
// process pool with a flops-aware grain. Below the threshold it runs an
// unpacked single-thread fast path. Both paths, on both kernel
// backends, accumulate every element in the canonical KC-panel order
// defined in core/kernels/kernel_table.hpp, so results are bit-identical
// scalar-vs-simd and invariant to size bucket, thread count, and
// partition. Packing buffers come from a per-thread core::Workspace
// (high-water-mark reuse): after a warm-up call of each peak shape, a
// steady-state GEMM performs zero heap allocations.
#pragma once

#include <cstdint>

namespace yf::core {

enum class GemmVariant {
  kNN,  ///< C = A · B        A is m x k, B is k x n
  kNT,  ///< C = A · Bᵀ       A is m x k, B is n x k
  kTN,  ///< C = Aᵀ · B       A is k x m, B is k x n
};

/// C (m x n, row-major, fully overwritten) = op(A) · op(B). Aliasing
/// between c and a/b is not allowed. k == 0 zeroes C.
void gemm(GemmVariant variant, double* c, const double* a, const double* b, std::int64_t m,
          std::int64_t n, std::int64_t k);

namespace detail {

/// m*n*k (in multiply-add pairs) at or below which gemm() takes the
/// unpacked, pool-free fast path. Pinned with bench/micro_gemm.cpp
/// (BM_Gemm{Packed,Small}Forced cubes, 1-core CI-class Icelake): the
/// small path wins through 48^3 (simd 8.5us vs 9.3us; scalar 32us vs
/// 34us) and the packed hierarchy ties it at 64^3 (21.6us vs 21.3us
/// simd) before pulling ahead asymptotically (13.4 vs ~8 G items/s at
/// 256^3), so the crossover sits between 48^3 and 64^3. Below it,
/// packing plus grain bookkeeping is pure overhead for shapes like the
/// simulator's eigen_small products and 1-row LM decode matmuls.
inline constexpr std::int64_t kGemmSmallWork = 48 * 48 * 48;

/// Row count at or below which the NN/TN layouts take the small path
/// regardless of total flops. A packed B slab is written and re-read
/// once per call but amortizes over ceil(m/MR) microkernel passes; for
/// skinny products (the 8-row LM training matmuls, 1-row decode) the
/// direct path -- the same MR x NR register tile reading B in place --
/// streams B fewer times than packing costs. Pinned with
/// bench/micro_gemm.cpp (BM_Gemm{Packed,Small}Forced). NT is excluded:
/// its small path is scalar (column-strided op(B)), so only the flops
/// threshold applies.
inline constexpr std::int64_t kGemmSmallRows = 16;

/// Test/bench hooks: force one path regardless of size. Both produce
/// bit-identical results by the canonical-order contract; gemm() is
/// dispatch plus these.
void gemm_packed(GemmVariant variant, double* c, const double* a, const double* b, std::int64_t m,
                 std::int64_t n, std::int64_t k);
void gemm_small(GemmVariant variant, double* c, const double* a, const double* b, std::int64_t m,
                std::int64_t n, std::int64_t k);

}  // namespace detail

}  // namespace yf::core
