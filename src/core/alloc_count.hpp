// Allocation-counting hooks (DESIGN.md §8).
//
// The library itself never replaces the global allocator; it only exposes
// process-wide counters that a *test-only* `operator new`/`operator
// delete` replacement increments (tests/alloc_count_test.cpp defines the
// replacement inside its own binary). Production binaries link this TU
// too, but with nothing calling note_alloc() the counters stay at zero
// and cost two unused atomics.
//
// This is how the zero-allocation contract of the autograd tape is
// *proved* rather than asserted: warm a training step up, snapshot
// heap_alloc_count(), run steady-state steps, and require the counter
// not to move (see the allocation-regression suite).
#pragma once

#include <cstdint>

namespace yf::core {

/// Number of heap allocations observed since process start (0 unless a
/// counting allocator TU is linked in and installed).
std::uint64_t heap_alloc_count();

/// Number of heap deallocations observed.
std::uint64_t heap_free_count();

namespace detail {
/// Called by a replaced operator new / operator delete. Safe from any
/// thread; relaxed ordering (counts, not synchronization).
void note_alloc();
void note_free();
}  // namespace detail

}  // namespace yf::core
