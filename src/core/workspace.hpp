// Workspace: arena-style scratch storage for the model hot path
// (DESIGN.md §8).
//
// A Workspace hands out tensors that are `Tensor::view_of` windows into a
// small set of large backing blocks, mirroring how core::ParamArena backs
// every parameter with a window of one flat buffer. Acquisition is a bump
// pointer; nothing is freed individually. Two properties make it the
// memory substrate of the autograd tape (autograd/tape.hpp):
//
//  * high-water-mark reuse: blocks are only ever *added* (geometric
//    growth) and never released, so once a workload's peak demand has
//    been observed -- the tape's one-step warm-up -- every later
//    acquisition is served from existing storage with zero heap traffic;
//  * marker rollback: `mark()` captures the bump position and
//    `rollback()` returns to it, releasing every acquisition made in
//    between at once. The tape uses this to discard the tail of a
//    recording when the graph structure changes mid-stream.
//
// Acquired regions are zero-filled (like a freshly constructed Tensor),
// and rounded up to 8 doubles so consecutive tensors stay cache-line
// aligned relative to the block start. Handles share ownership of their
// block's storage, so tensors outlive the Workspace itself; rollback only
// recycles the *window*, which is why callers must not touch a tensor
// acquired after a marker once that marker has been rolled back.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace yf::core {

class Workspace {
 public:
  /// Position of the bump pointer; see mark()/rollback().
  struct Marker {
    std::size_t block = 0;
    std::int64_t offset = 0;
    std::int64_t held = 0;
  };

  /// `initial_capacity` doubles are pre-allocated into the first block
  /// (0 defers all allocation to the first acquire).
  explicit Workspace(std::int64_t initial_capacity = 0);

  /// Zero-filled tensor of the given shape, backed by workspace storage.
  /// Allocates a new block only when every existing block is exhausted.
  tensor::Tensor acquire(std::span<const std::int64_t> dims);
  tensor::Tensor acquire(std::initializer_list<std::int64_t> dims) {
    return acquire(std::span<const std::int64_t>(dims.begin(), dims.size()));
  }

  /// Raw uninitialized storage of `n` doubles: no zero fill, no Tensor
  /// (a Tensor's Shape vector is itself a heap allocation). This is the
  /// per-call hot-path form -- the GEMM packing panels acquire through
  /// it on every matmul, overwrite every element (padding included), and
  /// roll back before returning, so steady-state calls touch neither
  /// the allocator nor memset. The span dies with the next rollback
  /// across its acquisition, like any other workspace window.
  std::span<double> acquire_span(std::int64_t n);

  Marker mark() const { return {cur_, off_, held_}; }

  /// Return the bump pointer to `m`. Every tensor acquired after the
  /// marker must be dead (or at least never touched again) -- its window
  /// will be handed out to later acquisitions.
  void rollback(const Marker& m);

  /// Rollback to empty.
  void reset() { rollback(Marker{}); }

  /// Total doubles across all blocks (monotone non-decreasing).
  std::int64_t capacity() const { return capacity_; }
  /// Largest number of doubles ever held simultaneously.
  std::int64_t high_water() const { return high_; }
  /// high_water() in bytes -- the unit perf baselines and bench counters
  /// report, so callers don't each re-derive sizeof(double) scaling.
  std::int64_t high_water_bytes() const {
    return high_ * static_cast<std::int64_t>(sizeof(double));
  }
  /// Restart peak tracking from the *current* held count. The tape's
  /// fusion rebuild resets the mark after rolling the arena back so the
  /// re-recorded (fused) graph's peak is measured on its own, not hidden
  /// under the warm-up graph's larger footprint. Capacity is unaffected.
  void reset_high_water() { high_ = held_; }
  /// Doubles currently held (between the base and the bump pointer).
  std::int64_t held() const { return held_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  /// Bump-allocate `n` doubles; returns the start offset within
  /// `blocks_[cur_]` (the block the reservation landed in). The single
  /// owner of the rounding/advance arithmetic for both acquire forms.
  std::int64_t reserve(std::int64_t n);

  std::vector<tensor::Tensor> blocks_;  ///< rank-1 backing buffers
  std::size_t cur_ = 0;                 ///< block the bump pointer is in
  std::int64_t off_ = 0;                ///< next free double within it
  std::int64_t held_ = 0;
  std::int64_t high_ = 0;
  std::int64_t capacity_ = 0;
};

}  // namespace yf::core
