#include "core/arena.hpp"

#include <stdexcept>
#include <unordered_set>

#include "core/kernels.hpp"

namespace yf::core {

ParamArena::ParamArena(const std::vector<autograd::Variable>& params) {
  slots_.reserve(params.size());
  std::unordered_set<autograd::Node*> seen;
  for (const auto& p : params) {
    if (!p.defined()) throw std::invalid_argument("ParamArena: undefined variable");
    auto node = p.node();
    if (!seen.insert(node.get()).second) continue;  // tied weights: one slot
    slots_.push_back({std::move(node), total_, p.value().shape()});
    total_ += p.value().size();
  }
  if (slots_.empty()) throw std::invalid_argument("ParamArena: empty parameter list");

  if (try_adopt()) return;

  values_ = tensor::Tensor(tensor::Shape{total_});
  grads_ = tensor::Tensor(tensor::Shape{total_});
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    auto& slot = slots_[i];
    core::copy(param_values(i), slot.node->value.data());
    if (slot.node->grad_allocated) core::copy(param_grads(i), slot.node->grad.data());
    slot.node->value = tensor::Tensor::view_of(values_, slot.offset, slot.shape);
    slot.node->grad = tensor::Tensor::view_of(grads_, slot.offset, slot.shape);
    slot.node->grad_allocated = true;
  }
}

bool ParamArena::try_adopt() {
  // The parameters may already live in arena-shaped storage: contiguous
  // from offset 0, in slot order, values in one shared buffer and grads
  // in another (a previous arena over the same list, or a single flat
  // parameter). Adopting those buffers instead of reallocating keeps
  // every earlier arena over the same parameters aliased -- two
  // optimizers on one model both keep working, as they did before the
  // arena existed.
  const auto& first = *slots_.front().node;
  if (!first.grad_allocated) return false;
  for (const auto& slot : slots_) {
    const auto& node = *slot.node;
    if (!node.grad_allocated) return false;
    if (!node.value.shares_storage_with(first.value) ||
        !node.grad.shares_storage_with(first.grad)) {
      return false;
    }
    if (node.value.shares_storage_with(first.grad)) return false;  // one buffer for both
    if (node.value.storage_offset() != slot.offset || node.grad.storage_offset() != slot.offset) {
      return false;
    }
  }
  // Rebuild whole-buffer handles from the first slot's views. view_of
  // bounds-checks against the storage, so undersized storage rejects.
  try {
    values_ = tensor::Tensor::view_of(first.value, 0, tensor::Shape{total_});
    grads_ = tensor::Tensor::view_of(first.grad, 0, tensor::Shape{total_});
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

std::size_t ParamArena::slot_index(const autograd::Variable& p) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].node == p.node()) return i;
  }
  throw std::invalid_argument("ParamArena::slot_index: variable not in this arena");
}

namespace {

tensor::Tensor window_into(const tensor::Tensor& buffer, std::int64_t offset, std::int64_t len,
                           std::int64_t total) {
  if (offset < 0 || len < 0 || offset + len > total) {
    throw std::out_of_range("ParamArena: window [" + std::to_string(offset) + ", " +
                            std::to_string(offset + len) + ") outside arena of size " +
                            std::to_string(total));
  }
  return tensor::Tensor::view_of(buffer, offset, tensor::Shape{len});
}

}  // namespace

tensor::Tensor ParamArena::values_window(std::int64_t offset, std::int64_t len) const {
  return window_into(values_, offset, len, total_);
}

tensor::Tensor ParamArena::grads_window(std::int64_t offset, std::int64_t len) const {
  return window_into(grads_, offset, len, total_);
}

void ParamArena::zero_grads() { core::fill(grads(), 0.0); }

tensor::Tensor ParamArena::make_buffer() const { return tensor::Tensor(tensor::Shape{total_}); }

tensor::Tensor ParamArena::view(const tensor::Tensor& buffer, std::size_t i) const {
  return tensor::Tensor::view_of(buffer, slots_[i].offset, slots_[i].shape);
}

}  // namespace yf::core
