#include "core/conv_math.hpp"

#include <cmath>

namespace yf::core {

namespace t = yf::tensor;

Conv2dDims conv2d_dims(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                       std::int64_t f, std::int64_t kh, std::int64_t kw, std::int64_t stride,
                       std::int64_t pad) {
  Conv2dDims d;
  d.n = n;
  d.c = c;
  d.h = h;
  d.w = w;
  d.f = f;
  d.kh = kh;
  d.kw = kw;
  d.stride = stride;
  d.pad = pad;
  d.oh = (h + 2 * pad - kh) / stride + 1;
  d.ow = (w + 2 * pad - kw) / stride + 1;
  return d;
}

void im2col_into(t::Tensor& col, const t::Tensor& input, const Conv2dDims& d) {
  const auto* in = input.data().data();
  auto* pc = col.data().data();
  const auto row_len = d.c * d.kh * d.kw;
  for (std::int64_t n = 0; n < d.n; ++n) {
    for (std::int64_t oy = 0; oy < d.oh; ++oy) {
      for (std::int64_t ox = 0; ox < d.ow; ++ox) {
        const auto row = (n * d.oh + oy) * d.ow + ox;
        double* dst = pc + row * row_len;
        for (std::int64_t c = 0; c < d.c; ++c) {
          for (std::int64_t ky = 0; ky < d.kh; ++ky) {
            const auto iy = oy * d.stride + ky - d.pad;
            for (std::int64_t kx = 0; kx < d.kw; ++kx) {
              const auto ix = ox * d.stride + kx - d.pad;
              const auto dst_i = (c * d.kh + ky) * d.kw + kx;
              if (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w) {
                dst[dst_i] = in[((n * d.c + c) * d.h + iy) * d.w + ix];
              } else {
                dst[dst_i] = 0.0;
              }
            }
          }
        }
      }
    }
  }
}

void col2im_add(const t::Tensor& dcol, const Conv2dDims& d, t::Tensor& dinput) {
  const auto* pc = dcol.data().data();
  auto* din = dinput.data().data();
  const auto row_len = d.c * d.kh * d.kw;
  for (std::int64_t n = 0; n < d.n; ++n) {
    for (std::int64_t oy = 0; oy < d.oh; ++oy) {
      for (std::int64_t ox = 0; ox < d.ow; ++ox) {
        const auto row = (n * d.oh + oy) * d.ow + ox;
        const double* src = pc + row * row_len;
        for (std::int64_t c = 0; c < d.c; ++c) {
          for (std::int64_t ky = 0; ky < d.kh; ++ky) {
            const auto iy = oy * d.stride + ky - d.pad;
            if (iy < 0 || iy >= d.h) continue;
            for (std::int64_t kx = 0; kx < d.kw; ++kx) {
              const auto ix = ox * d.stride + kx - d.pad;
              if (ix < 0 || ix >= d.w) continue;
              din[((n * d.c + c) * d.h + iy) * d.w + ix] += src[(c * d.kh + ky) * d.kw + kx];
            }
          }
        }
      }
    }
  }
}

void conv2d_bias_nchw_into(t::Tensor& out, const t::Tensor& outmat, const t::Tensor& bias,
                           const Conv2dDims& d) {
  for (std::int64_t n = 0; n < d.n; ++n)
    for (std::int64_t oy = 0; oy < d.oh; ++oy)
      for (std::int64_t ox = 0; ox < d.ow; ++ox) {
        const auto row = (n * d.oh + oy) * d.ow + ox;
        for (std::int64_t fi = 0; fi < d.f; ++fi)
          out[((n * d.f + fi) * d.oh + oy) * d.ow + ox] = outmat[row * d.f + fi] + bias[fi];
      }
}

void batchnorm2d_stats_into(t::Tensor& mean, t::Tensor& inv_std, const t::Tensor& x,
                            std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                            double eps) {
  const auto m = n * h * w;  // elements per channel
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t k = 0; k < h * w; ++k) s += x[(i * c + ch) * h * w + k];
    const double mu = s * inv_m;
    double var = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t k = 0; k < h * w; ++k) {
        const double dd = x[(i * c + ch) * h * w + k] - mu;
        var += dd * dd;
      }
    var *= inv_m;
    mean[ch] = mu;
    inv_std[ch] = 1.0 / std::sqrt(var + eps);
  }
}

void batchnorm2d_normalize_into(t::Tensor& out, t::Tensor& xhat, const t::Tensor& x,
                                const t::Tensor& gamma, const t::Tensor& beta,
                                const t::Tensor& mean, const t::Tensor& inv_std, std::int64_t n,
                                std::int64_t c, std::int64_t h, std::int64_t w) {
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const double g = gamma[ch], b = beta[ch];
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t k = 0; k < h * w; ++k) {
        const auto idx = (i * c + ch) * h * w + k;
        xhat[idx] = (x[idx] - mean[ch]) * inv_std[ch];
        out[idx] = g * xhat[idx] + b;
      }
  }
}

void global_avg_pool_into(t::Tensor& out, const t::Tensor& x, std::int64_t n, std::int64_t c,
                          std::int64_t h, std::int64_t w) {
  const double inv = 1.0 / static_cast<double>(h * w);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) {
      double s = 0.0;
      for (std::int64_t k = 0; k < h * w; ++k) s += x[(i * c + j) * h * w + k];
      out[i * c + j] = s * inv;
    }
}

}  // namespace yf::core
