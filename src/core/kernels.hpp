// Fused span-based primitives shared by the tensor, optimizer, tuner and
// async hot paths (DESIGN.md §4).
//
// Everything operates on raw `std::span<double>` so the same kernel serves
// a Tensor, a ParamArena buffer, or a plain vector without copies. Each
// call dispatches to the active kernel backend (core/kernels/backend.hpp):
// a portable scalar path or an AVX2 path selected at runtime via cpuid and
// overridable with YF_KERNEL_BACKEND=scalar|simd. Three rules keep results
// independent of backend, machine, and worker count:
//
//  * elementwise kernels may be partitioned over the thread pool and
//    vectorized across elements -- each element's arithmetic sequence is
//    fixed (and FMA-free), so neither partitioning nor lane width can
//    change rounding;
//  * reductions (sum, dot, squared_norm, ...) run on one thread in a
//    fixed 8-lane blocked accumulation order (kernel_table.hpp) that
//    every backend reproduces exactly;
//  * matrix products live in core/gemm.hpp and accumulate each output
//    element in the canonical KC-panel order (kernel_table.hpp).
//
// The fused optimizer sweeps below replicate the exact operation sequence
// of the historical per-tensor implementations (e.g. momentum_step is
// `v *= mu; v += -lr*g; x += v` per element), compiled with
// -ffp-contract=off so statement fusion cannot re-round.
#pragma once

#include <cstdint>
#include <span>

#include "core/kernels/backend.hpp"
#include "core/parallel.hpp"

namespace yf::core {

// -- Elementwise building blocks. -------------------------------------------
void fill(std::span<double> x, double v);
void copy(std::span<double> dst, std::span<const double> src);
void scale(std::span<double> x, double a);                          ///< x *= a
void axpy(std::span<double> y, std::span<const double> x, double a);  ///< y += a*x

// -- Reductions (sequential, lane-blocked, deterministic). ------------------
double sum(std::span<const double> x);
double squared_norm(std::span<const double> x);
double dot(std::span<const double> a, std::span<const double> b);
double max_abs(std::span<const double> x);

// -- EWMA kernels (tuner measurement hot path). -----------------------------
/// avg = beta*avg + (1-beta)*x, elementwise.
void ewma_update(std::span<double> avg, std::span<const double> x, double beta);

/// One fused pass updating the first and second gradient moments:
///   m1 = beta*m1 + (1-beta)*x;  m2 = beta*m2 + (1-beta)*x^2.
/// Replaces a square() temporary plus two separate EWMA sweeps.
void ewma_update_moments(std::span<double> m1, std::span<double> m2,
                         std::span<const double> x, double beta);

/// sum_i max-free debiased variance contribution:
///   sum_i (m2_raw[i]*inv2 - (m1_raw[i]*inv1)^2)
/// where inv = 1/(1 - beta^t) is the zero-debias reciprocal.
double debiased_variance_sum(std::span<const double> m1_raw, std::span<const double> m2_raw,
                             double inv1, double inv2);

// -- Clipping. ---------------------------------------------------------------
/// Scale x so its L2 norm is at most max_norm; returns the pre-clip norm.
double clip_scale(std::span<double> x, double max_norm);

// -- Fused optimizer sweeps (one pass over the arena each). ------------------
void sgd_step(std::span<double> x, std::span<const double> g, double lr);

/// Polyak (nesterov=false): v = mu*v - lr*g; x += v.
/// Nesterov: same velocity update, then x += mu*v - lr*g.
void momentum_step(std::span<double> x, std::span<double> v, std::span<const double> g,
                   double lr, double mu, bool nesterov);

/// bc1/bc2 are the bias-correction denominators 1 - beta^t.
void adam_step(std::span<double> x, std::span<double> m, std::span<double> v,
               std::span<const double> g, double lr, double beta1, double beta2, double bc1,
               double bc2, double eps);

void adagrad_step(std::span<double> x, std::span<double> accum, std::span<const double> g,
                  double lr, double eps);

void rmsprop_step(std::span<double> x, std::span<double> sq, std::span<const double> g,
                  double lr, double decay, double eps);

// -- Generic elementwise map/binary (parallel above the grain). --------------
template <typename F>
void map(std::span<double> dst, std::span<const double> src, F&& f) {
  const auto n = static_cast<std::int64_t>(dst.size());
  double* o = dst.data();
  const double* a = src.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) o[i] = f(a[i]);
  });
}

template <typename F>
void binary(std::span<double> dst, std::span<const double> a, std::span<const double> b, F&& f) {
  const auto n = static_cast<std::int64_t>(dst.size());
  double* o = dst.data();
  const double* pa = a.data();
  const double* pb = b.data();
  parallel_for(n, kDefaultGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) o[i] = f(pa[i], pb[i]);
  });
}

}  // namespace yf::core
