// Multidimensional generalization of Lemma 5 (Appendix B): on a diagonal
// quadratic, the momentum-SGD MSE dynamics decompose along the Hessian's
// eigenvectors; the total E||x_t - x*||^2 is the sum of the per-direction
// scalar recurrences, with per-direction gradient variance.
//
// This is exactly the model behind YellowFin's multidimensional surrogate
// (Sec. 3.1): "the expectation of squared distance to x* decomposes into
// independent scalar components along the eigenvectors of the Hessian; we
// define gradient variance C as the sum along these eigenvectors".
#pragma once

#include <cstdint>
#include <vector>

#include "sim/quadratic_mse.hpp"

namespace yf::sim {

struct MultidimMseParams {
  double alpha = 0.0;
  double mu = 0.0;
  std::vector<double> h;   ///< per-direction curvatures (Hessian eigenvalues)
  std::vector<double> c;   ///< per-direction gradient variances
  std::vector<double> x0;  ///< per-direction initial distance to optimum
};

/// Exact E||x_{t+1} - x*||^2 for t = 0..steps-1: sum of Eq. 11 over
/// eigen-directions.
std::vector<double> multidim_exact_mse_curve(const MultidimMseParams& p, std::int64_t steps);

/// Multidimensional robust-region surrogate (Sec. 3.1):
///   mu^t ||x0||^2 + (1 - mu^t) alpha^2 C_total / (1 - mu),
/// valid when every direction is inside the robust region.
std::vector<double> multidim_surrogate_mse_curve(const MultidimMseParams& p,
                                                 std::int64_t steps);

/// True iff (alpha, mu) lies in the robust region for every curvature.
bool all_directions_robust(const MultidimMseParams& p);

}  // namespace yf::sim
