#include "sim/quadratic_mse.hpp"

#include <cmath>

#include "sim/momentum_operator.hpp"
#include "sim/noisy_quadratic.hpp"

namespace yf::sim {

std::vector<double> exact_mse_curve(const MseParams& p, std::int64_t steps) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(steps));
  const SmallMatrix a = momentum_operator(p.alpha, p.mu, p.h);
  const SmallMatrix b = variance_operator(p.alpha, p.mu, p.h);

  // Bias: [xbar_{t+1}, xbar_t] = A [xbar_t, xbar_{t-1}], xbar_1 = xbar_0 = x0.
  std::vector<double> bias_state = {p.x0, p.x0};
  // Variance recurrence (Appendix B, Eq. 27):
  //   [U_{t+1}, U_t, V_{t+1}]^T = B [U_t, U_{t-1}, V_t]^T + [alpha^2 C, 0, 0]^T,
  // starting from U_1 = U_0 = V_1 = 0.
  std::vector<double> var_state = {0.0, 0.0, 0.0};
  const double inj = p.alpha * p.alpha * p.c;

  for (std::int64_t t = 0; t < steps; ++t) {
    // State currently holds (xbar_{t+1}, xbar_t) and (U_{t+1}, U_t, V_{t+1}).
    bias_state = matvec(a, bias_state);
    var_state = matvec(b, var_state);
    var_state[0] += inj;
    out.push_back(bias_state[0] * bias_state[0] + var_state[0]);
  }
  return out;
}

std::vector<double> surrogate_mse_curve(const MseParams& p, std::int64_t steps) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(steps));
  const double rho_a = momentum_spectral_radius(p.alpha, p.mu, p.h);
  const double rho_b = variance_spectral_radius(p.alpha, p.mu, p.h);
  const double denom = 1.0 - rho_b;
  for (std::int64_t t = 1; t <= steps; ++t) {
    const double bias = std::pow(rho_a, 2.0 * static_cast<double>(t)) * p.x0 * p.x0;
    const double var = denom > 1e-12
                           ? (1.0 - std::pow(rho_b, static_cast<double>(t))) *
                                 p.alpha * p.alpha * p.c / denom
                           : p.alpha * p.alpha * p.c * static_cast<double>(t);
    out.push_back(bias + var);
  }
  return out;
}

std::vector<double> robust_surrogate_mse_curve(const MseParams& p, std::int64_t steps) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(steps));
  const double denom = 1.0 - p.mu;
  for (std::int64_t t = 1; t <= steps; ++t) {
    const double mut = std::pow(p.mu, static_cast<double>(t));
    const double var = denom > 1e-12 ? (1.0 - mut) * p.alpha * p.alpha * p.c / denom
                                     : p.alpha * p.alpha * p.c * static_cast<double>(t);
    out.push_back(mut * p.x0 * p.x0 + var);
  }
  return out;
}

std::vector<double> monte_carlo_mse_curve(const MseParams& p, std::int64_t steps,
                                          std::int64_t trials, std::uint64_t seed) {
  // Two-component quadratic with matching gradient variance: h^2 c_off^2 = C.
  const double c_off = std::sqrt(p.c) / p.h;
  const NoisyQuadratic q = NoisyQuadratic::symmetric(p.h, c_off);
  std::vector<double> acc(static_cast<std::size_t>(steps), 0.0);
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    tensor::Rng rng(seed + static_cast<std::uint64_t>(trial));
    double x_prev = p.x0;
    double x = p.x0;  // x1 = x0, matching Lemma 5's initialization
    for (std::int64_t t = 0; t < steps; ++t) {
      const double g = q.stochastic_gradient(x, rng);
      const double x_next = x - p.alpha * g + p.mu * (x - x_prev);
      x_prev = x;
      x = x_next;
      acc[static_cast<std::size_t>(t)] += x * x;
    }
  }
  for (double& v : acc) v /= static_cast<double>(trials);
  return acc;
}

double single_step_objective(double mu, double alpha, double d, double c) {
  return mu * d * d + alpha * alpha * c;
}

}  // namespace yf::sim
