#include "sim/eigen_small.hpp"

#include <cmath>
#include <stdexcept>

#include "core/gemm.hpp"

namespace yf::sim {

SmallMatrix SmallMatrix::zero(std::size_t n) {
  SmallMatrix m;
  m.n = n;
  m.a.assign(n * n, 0.0);
  return m;
}

SmallMatrix SmallMatrix::identity(std::size_t n) {
  SmallMatrix m = zero(n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

SmallMatrix matmul(const SmallMatrix& x, const SmallMatrix& y) {
  if (x.n != y.n) throw std::invalid_argument("SmallMatrix matmul: size mismatch");
  SmallMatrix out = SmallMatrix::zero(x.n);
  // Route through the GEMM small-matrix fast path: the simulator's
  // momentum-operator matrices sit far below the packed threshold, so
  // this is the unpacked, pool-free kernel (no parallel_for or grain
  // bookkeeping per matpow squaring).
  const auto n = static_cast<std::int64_t>(x.n);
  core::gemm(core::GemmVariant::kNN, out.a.data(), x.a.data(), y.a.data(), n, n, n);
  return out;
}

SmallMatrix matpow(const SmallMatrix& x, std::int64_t k) {
  if (k < 0) throw std::invalid_argument("matpow: negative exponent");
  SmallMatrix result = SmallMatrix::identity(x.n);
  SmallMatrix base = x;
  while (k > 0) {
    if (k & 1) result = matmul(result, base);
    base = matmul(base, base);
    k >>= 1;
  }
  return result;
}

std::vector<double> matvec(const SmallMatrix& x, const std::vector<double>& v) {
  if (v.size() != x.n) throw std::invalid_argument("matvec: size mismatch");
  std::vector<double> out(x.n, 0.0);
  for (std::size_t i = 0; i < x.n; ++i)
    for (std::size_t j = 0; j < x.n; ++j) out[i] += x(i, j) * v[j];
  return out;
}

SmallMatrix sub(const SmallMatrix& x, const SmallMatrix& y) {
  if (x.n != y.n) throw std::invalid_argument("SmallMatrix sub: size mismatch");
  SmallMatrix out = x;
  for (std::size_t i = 0; i < x.a.size(); ++i) out.a[i] -= y.a[i];
  return out;
}

std::vector<double> solve(const SmallMatrix& a_in, const std::vector<double>& b_in) {
  const std::size_t n = a_in.n;
  if (b_in.size() != n) throw std::invalid_argument("solve: size mismatch");
  SmallMatrix a = a_in;
  std::vector<double> b = b_in;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(piv, col))) piv = r;
    if (std::abs(a(piv, col)) < 1e-14) throw std::runtime_error("solve: singular matrix");
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(piv, j), a(col, j));
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= f * a(col, j);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> z(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * z[j];
    z[i] = s / a(i, i);
  }
  return z;
}

std::array<std::complex<double>, 2> quadratic_roots(double b, double c) {
  const std::complex<double> disc = std::sqrt(std::complex<double>(b * b - 4.0 * c, 0.0));
  return {(-b + disc) / 2.0, (-b - disc) / 2.0};
}

std::array<std::complex<double>, 3> cubic_roots(double a2, double a1, double a0) {
  // Depress: x = y - a2/3 -> y^3 + p y + q = 0.
  const double p = a1 - a2 * a2 / 3.0;
  const double q = 2.0 * a2 * a2 * a2 / 27.0 - a2 * a1 / 3.0 + a0;
  const std::complex<double> shift(-a2 / 3.0, 0.0);
  // Cardano with complex arithmetic covers all sign cases uniformly.
  const std::complex<double> inner =
      std::sqrt(std::complex<double>(q * q / 4.0 + p * p * p / 27.0, 0.0));
  std::complex<double> u = std::pow(-q / 2.0 + inner, 1.0 / 3.0);
  if (std::abs(u) < 1e-300) u = std::pow(-q / 2.0 - inner, 1.0 / 3.0);
  std::array<std::complex<double>, 3> roots;
  const std::complex<double> omega(-0.5, std::sqrt(3.0) / 2.0);
  std::complex<double> uk = u;
  for (int k = 0; k < 3; ++k) {
    const std::complex<double> y =
        std::abs(uk) < 1e-300 ? std::complex<double>(0.0, 0.0) : uk - p / (3.0 * uk);
    roots[static_cast<std::size_t>(k)] = y + shift;
    uk *= omega;
  }
  return roots;
}

double spectral_radius(const SmallMatrix& m) {
  if (m.n == 1) return std::abs(m(0, 0));
  if (m.n == 2) {
    const double tr = m(0, 0) + m(1, 1);
    const double det = m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0);
    const auto roots = quadratic_roots(-tr, det);
    return std::max(std::abs(roots[0]), std::abs(roots[1]));
  }
  if (m.n == 3) {
    // det(xI - M) = x^3 - tr x^2 + c1 x - det.
    const double tr = m(0, 0) + m(1, 1) + m(2, 2);
    const double c1 = m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0) + m(0, 0) * m(2, 2) -
                      m(0, 2) * m(2, 0) + m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1);
    const double det = m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
                       m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
                       m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
    const auto roots = cubic_roots(-tr, c1, -det);
    double r = 0.0;
    for (const auto& z : roots) r = std::max(r, std::abs(z));
    return r;
  }
  throw std::invalid_argument("spectral_radius: closed form only for n <= 3");
}

double spectral_radius_power_iteration(const SmallMatrix& m, std::int64_t iters) {
  // rho(M) = lim ||M^k v||^{1/k}. Normalize periodically to avoid overflow.
  std::vector<double> v(m.n, 0.0);
  for (std::size_t i = 0; i < m.n; ++i) v[i] = 1.0 / std::sqrt(static_cast<double>(m.n) + i);
  double log_scale = 0.0;
  for (std::int64_t k = 0; k < iters; ++k) {
    v = matvec(m, v);
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;
    for (double& x : v) x /= norm;
    log_scale += std::log(norm);
  }
  return std::exp(log_scale / static_cast<double>(iters));
}

}  // namespace yf::sim
