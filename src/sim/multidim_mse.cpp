#include "sim/multidim_mse.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/robust_region.hpp"

namespace yf::sim {

namespace {

void check(const MultidimMseParams& p) {
  if (p.h.empty() || p.h.size() != p.c.size() || p.h.size() != p.x0.size()) {
    throw std::invalid_argument("MultidimMseParams: h, c, x0 must be equal non-zero length");
  }
}

}  // namespace

std::vector<double> multidim_exact_mse_curve(const MultidimMseParams& p, std::int64_t steps) {
  check(p);
  std::vector<double> total(static_cast<std::size_t>(steps), 0.0);
  for (std::size_t d = 0; d < p.h.size(); ++d) {
    MseParams scalar{p.alpha, p.mu, p.h[d], p.c[d], p.x0[d]};
    const auto curve = exact_mse_curve(scalar, steps);
    for (std::size_t t = 0; t < curve.size(); ++t) total[t] += curve[t];
  }
  return total;
}

std::vector<double> multidim_surrogate_mse_curve(const MultidimMseParams& p,
                                                 std::int64_t steps) {
  check(p);
  double dist_sq = 0.0, c_total = 0.0;
  for (std::size_t d = 0; d < p.h.size(); ++d) {
    dist_sq += p.x0[d] * p.x0[d];
    c_total += p.c[d];
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(steps));
  const double denom = 1.0 - p.mu;
  for (std::int64_t t = 1; t <= steps; ++t) {
    const double mut = std::pow(p.mu, static_cast<double>(t));
    const double var = denom > 1e-12 ? (1.0 - mut) * p.alpha * p.alpha * c_total / denom
                                     : p.alpha * p.alpha * c_total * static_cast<double>(t);
    out.push_back(mut * dist_sq + var);
  }
  return out;
}

bool all_directions_robust(const MultidimMseParams& p) {
  check(p);
  for (double h : p.h) {
    if (!in_robust_region(p.alpha, p.mu, h)) return false;
  }
  return true;
}

}  // namespace yf::sim
