// The noisy quadratic model of Section 3 (Eq. 10):
//
//   f(x) = (h/2) x^2 + C = (1/n) sum_i (h/2n') (x - c_i)^2-style components;
//
// we realize it with n symmetric offsets c_i (sum c_i = 0), so a minibatch
// gradient is grad f_i(x) = h (x - c_i) -- an unbiased gradient of the
// quadratic (h/2) x^2 with variance h^2 * mean(c_i^2).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"

namespace yf::sim {

class NoisyQuadratic {
 public:
  /// `offsets` are the component centers c_i; their mean is subtracted so
  /// the full-batch optimum is exactly 0.
  NoisyQuadratic(double h, std::vector<double> offsets);

  /// Symmetric two-component instance with gradient stddev h*c.
  static NoisyQuadratic symmetric(double h, double c);

  double curvature() const { return h_; }
  /// Exact per-step gradient variance E[(grad_i - grad)^2] = h^2 mean(c^2).
  double gradient_variance() const;

  /// Full-batch gradient at x.
  double gradient(double x) const { return h_ * x; }
  /// Stochastic gradient: component chosen uniformly at random.
  double stochastic_gradient(double x, tensor::Rng& rng) const;
  /// Full-batch loss (optimum value 0).
  double loss(double x) const { return 0.5 * h_ * x * x; }

 private:
  double h_;
  std::vector<double> offsets_;
};

}  // namespace yf::sim
