#include "sim/toy_objectives.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yf::sim {

ScalarObjective two_curvature_objective(double h_flat, double h_steep, double knee) {
  if (h_flat <= 0.0 || h_steep <= 0.0 || knee <= 0.0) {
    throw std::invalid_argument("two_curvature_objective: parameters must be positive");
  }
  ScalarObjective obj;
  obj.x_star = 0.0;
  // Exact piecewise generalized curvature (Definition 2): f'(x) = h(x) x
  // with h(x) in {h_steep, h_flat}. The objective integrates continuously;
  // the gradient jumps at |x| = knee (allowed -- Definition 2 constrains
  // only the ratio f'(x)/(x - x*)).
  obj.grad = [=](double x) { return (std::abs(x) < knee ? h_steep : h_flat) * x; };
  obj.f = [=](double x) {
    const double ax = std::abs(x);
    if (ax < knee) return 0.5 * h_steep * x * x;
    return 0.5 * h_flat * x * x + 0.5 * (h_steep - h_flat) * knee * knee;
  };
  obj.gcurv = [=](double x) { return std::abs(x) < knee ? h_steep : h_flat; };
  obj.distance = [](double x) { return std::abs(x); };
  return obj;
}

ScalarObjective double_well_objective(double h1, double h2, double c) {
  if (h1 <= 0.0 || h2 <= 0.0 || c <= 0.0) {
    throw std::invalid_argument("double_well_objective: parameters must be positive");
  }
  ScalarObjective obj;
  obj.x_star = c;  // reference minimum: the (h2) right well
  auto left = [=](double x) { return 0.5 * h1 * (x + c) * (x + c); };
  auto right = [=](double x) { return 0.5 * h2 * (x - c) * (x - c); };
  obj.f = [=](double x) { return std::min(left(x), right(x)); };
  obj.grad = [=](double x) { return left(x) < right(x) ? h1 * (x + c) : h2 * (x - c); };
  obj.gcurv = [=, g = obj.grad](double x) {
    const double d = x - c;
    if (std::abs(d) < 1e-12) return h2;
    return g(x) / d;
  };
  obj.distance = [=](double x) { return std::min(std::abs(x - c), std::abs(x + c)); };
  return obj;
}

double generalized_condition_number(const ScalarObjective& obj, double lo, double hi,
                                    int samples) {
  if (samples < 2 || hi <= lo) throw std::invalid_argument("GCN: bad grid");
  double hmin = 1e300, hmax = -1e300;
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(samples - 1);
    if (std::abs(x - obj.x_star) < 1e-9) continue;
    const double h = obj.gcurv(x);
    hmin = std::min(hmin, h);
    hmax = std::max(hmax, h);
  }
  if (hmin <= 0.0) throw std::runtime_error("GCN: non-positive generalized curvature on grid");
  return hmax / hmin;
}

std::vector<double> run_momentum_gd(const ScalarObjective& obj, double x0, double alpha,
                                    double mu, int steps) {
  std::vector<double> dist;
  dist.reserve(static_cast<std::size_t>(steps));
  double x_prev = x0, x = x0;
  for (int t = 0; t < steps; ++t) {
    const double x_next = x - alpha * obj.grad(x) + mu * (x - x_prev);
    x_prev = x;
    x = x_next;
    dist.push_back(obj.distance ? obj.distance(x) : std::abs(x - obj.x_star));
  }
  return dist;
}

double empirical_rate(const std::vector<double>& distances) {
  if (distances.size() < 8) throw std::invalid_argument("empirical_rate: curve too short");
  const std::size_t a = distances.size() / 2;
  // Walk back from the end to the last strictly positive value (underflow guard).
  std::size_t b = distances.size() - 1;
  while (b > a && distances[b] <= 1e-300) --b;
  if (b <= a || distances[a] <= 1e-300) return 0.0;
  return std::pow(distances[b] / distances[a], 1.0 / static_cast<double>(b - a));
}

}  // namespace yf::sim
