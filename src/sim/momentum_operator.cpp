#include "sim/momentum_operator.hpp"

#include <cmath>

namespace yf::sim {

SmallMatrix momentum_operator(double alpha, double mu, double h) {
  SmallMatrix a = SmallMatrix::zero(2);
  a(0, 0) = 1.0 - alpha * h + mu;
  a(0, 1) = -mu;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  return a;
}

SmallMatrix variance_operator(double alpha, double mu, double h) {
  const double m = 1.0 - alpha * h + mu;
  SmallMatrix b = SmallMatrix::zero(3);
  b(0, 0) = m * m;
  b(0, 1) = mu * mu;
  b(0, 2) = -2.0 * mu * m;
  b(1, 0) = 1.0;
  b(2, 0) = m;
  b(2, 2) = -mu;
  return b;
}

double momentum_spectral_radius(double alpha, double mu, double h) {
  // lambda = (m +- sqrt(m^2 - 4 mu)) / 2 with m = 1 - alpha h + mu.
  const double m = 1.0 - alpha * h + mu;
  const double disc = m * m - 4.0 * mu;
  if (disc <= 0.0) {
    // Complex pair: |lambda|^2 = det = mu.
    return std::sqrt(std::max(mu, 0.0));
  }
  const double s = std::sqrt(disc);
  return std::max(std::abs((m + s) / 2.0), std::abs((m - s) / 2.0));
}

double variance_spectral_radius(double alpha, double mu, double h) {
  return spectral_radius(variance_operator(alpha, mu, h));
}

}  // namespace yf::sim
