// One-dimensional objectives used by the Section 2 analysis experiments.
//
// Two realizations of the paper's "two quadratics with curvatures 1 and
// 1000" (Fig. 3a):
//  * `two_curvature_objective`: nested regions with piecewise-constant
//    generalized curvature w.r.t. a single minimum at 0 (exact GCN =
//    h_steep / h_flat per Definitions 2 and 4). Used for GCN math.
//  * `double_well_objective`: the paper's non-convex W shape -- two
//    side-by-side quadratic wells with different curvatures. A momentum-GD
//    trajectory settles into one well (locally constant curvature), which
//    is where the empirical sqrt(mu) rate of Fig. 3(b) comes from.
#pragma once

#include <functional>
#include <vector>

namespace yf::sim {

/// A scalar objective with known minima and generalized curvature.
struct ScalarObjective {
  std::function<double(double)> f;      ///< objective value
  std::function<double(double)> grad;   ///< (sub)derivative
  std::function<double(double)> gcurv;  ///< generalized curvature h(x) w.r.t. x_star
  double x_star = 0.0;                  ///< reference minimum for Definition 2
  /// Distance to the nearest minimum (equals |x - x_star| when there is
  /// only one); convergence curves are measured with this.
  std::function<double(double)> distance;
};

/// Piecewise-curvature objective: generalized curvature is exactly h_steep
/// for |x| < knee and h_flat otherwise (gradient jumps at the knee; the
/// objective itself is continuous). Single minimum at 0.
ScalarObjective two_curvature_objective(double h_flat, double h_steep, double knee);

/// Non-convex double well: f(x) = min((h1/2)(x + c)^2, (h2/2)(x - c)^2),
/// minima at -c (curvature h1) and +c (curvature h2). Matches Fig. 3(a).
ScalarObjective double_well_objective(double h1, double h2, double c);

/// Generalized condition number of `obj` estimated on a grid over
/// [lo, hi] (Def. 4): sup h / inf h.
double generalized_condition_number(const ScalarObjective& obj, double lo, double hi,
                                    int samples = 10001);

/// Run Polyak momentum GD from x0 and return obj.distance(x_t) per step.
std::vector<double> run_momentum_gd(const ScalarObjective& obj, double x0, double alpha,
                                    double mu, int steps);

/// Asymptotic linear rate of a convergence curve: geometric-mean per-step
/// factor between the midpoint and the end of the curve (envelope fit,
/// robust to the oscillations of under-damped momentum).
double empirical_rate(const std::vector<double>& distances);

}  // namespace yf::sim
