// The momentum operator A_t (Eq. 5) and variance operator B (Eq. 12).
#pragma once

#include "sim/eigen_small.hpp"

namespace yf::sim {

/// 2x2 bias operator  A = [[1 - alpha h + mu, -mu], [1, 0]]  (Eq. 5/12).
SmallMatrix momentum_operator(double alpha, double mu, double h);

/// 3x3 variance operator B (Eq. 12).
SmallMatrix variance_operator(double alpha, double mu, double h);

/// rho(A): closed form from the quadratic lambda^2 - (1 - alpha h + mu)
/// lambda + mu = 0 (Appendix A).
double momentum_spectral_radius(double alpha, double mu, double h);

/// rho(B) (Lemma 6 / Appendix C).
double variance_spectral_radius(double alpha, double mu, double h);

}  // namespace yf::sim
