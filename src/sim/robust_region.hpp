// The robust region (Lemma 3) and the noiseless tuning rule (Eqs. 2, 7, 9).
#pragma once

namespace yf::sim {

/// Lemma 3 condition: (1 - sqrt(mu))^2 <= alpha * h <= (1 + sqrt(mu))^2.
/// `rel_tol` loosens both boundaries relatively, so points that land on a
/// boundary by construction (e.g. Eq. 9 / Eq. 15 at the extremal
/// curvatures) are classified as inside despite rounding.
bool in_robust_region(double alpha, double mu, double h, double rel_tol = 1e-9);

/// Learning-rate interval [lo, hi] that keeps curvature h in the robust
/// region at momentum mu (Eq. 7).
struct LrInterval {
  double lo;
  double hi;
};
LrInterval robust_lr_interval(double mu, double h);

/// Optimal momentum for condition number (or GCN) kappa (Eqs. 2, 9):
/// mu* = ((sqrt(kappa) - 1) / (sqrt(kappa) + 1))^2.
double optimal_momentum(double kappa);

/// The noiseless tuning rule (Eq. 9) for a curvature range [h_min, h_max]:
/// mu = mu*(h_max/h_min), alpha = (1 - sqrt(mu))^2 / h_min, which places
/// every curvature in [h_min, h_max] inside the robust region.
struct NoiselessTuning {
  double mu;
  double alpha;
};
NoiselessTuning tune_noiseless(double h_min, double h_max);

}  // namespace yf::sim
