#include "sim/robust_region.hpp"

#include <cmath>
#include <stdexcept>

namespace yf::sim {

bool in_robust_region(double alpha, double mu, double h, double rel_tol) {
  if (mu < 0.0) return false;
  const double s = std::sqrt(mu);
  const double ah = alpha * h;
  const double lo = (1.0 - s) * (1.0 - s);
  const double hi = (1.0 + s) * (1.0 + s);
  return lo * (1.0 - rel_tol) <= ah && ah <= hi * (1.0 + rel_tol);
}

LrInterval robust_lr_interval(double mu, double h) {
  if (h <= 0.0) throw std::invalid_argument("robust_lr_interval: h must be > 0");
  const double s = std::sqrt(mu);
  return {(1.0 - s) * (1.0 - s) / h, (1.0 + s) * (1.0 + s) / h};
}

double optimal_momentum(double kappa) {
  if (kappa < 1.0) throw std::invalid_argument("optimal_momentum: kappa must be >= 1");
  const double r = (std::sqrt(kappa) - 1.0) / (std::sqrt(kappa) + 1.0);
  return r * r;
}

NoiselessTuning tune_noiseless(double h_min, double h_max) {
  if (!(h_min > 0.0) || h_max < h_min) {
    throw std::invalid_argument("tune_noiseless: need h_max >= h_min > 0");
  }
  NoiselessTuning t;
  t.mu = optimal_momentum(h_max / h_min);
  const double s = 1.0 - std::sqrt(t.mu);
  t.alpha = s * s / h_min;
  return t;
}

}  // namespace yf::sim
