// Lemma 5: exact mean-squared-error dynamics of momentum SGD on the noisy
// scalar quadratic, and the asymptotic surrogates of Eqs. 13/14.
#pragma once

#include <cstdint>
#include <vector>

namespace yf::sim {

struct MseParams {
  double alpha;  ///< learning rate
  double mu;     ///< momentum
  double h;      ///< curvature
  double c;      ///< gradient variance C
  double x0;     ///< starting point (x1 = x0), optimum at 0
};

/// Exact E(x_{t+1} - x*)^2 for t = 0..steps-1 via Eq. 11:
///   bias_t  = (e1^T A^t [x1, x0]^T)^2
///   var_t   = alpha^2 C e1^T (I - B^t)(I - B)^{-1} e1
/// computed with the recurrences of Appendix B (no matrix inversion in the
/// loop; the variance recurrence is [U_{t+1}, U_t, V_{t+1}]^T update).
std::vector<double> exact_mse_curve(const MseParams& p, std::int64_t steps);

/// Surrogate of Eq. 13: rho(A)^{2t} x0^2 + (1 - rho(B)^t) alpha^2 C / (1 - rho(B)).
std::vector<double> surrogate_mse_curve(const MseParams& p, std::int64_t steps);

/// Robust-region surrogate of Eq. 14: mu^t x0^2 + (1 - mu^t) alpha^2 C/(1 - mu).
std::vector<double> robust_surrogate_mse_curve(const MseParams& p, std::int64_t steps);

/// Monte-Carlo estimate of the same curve by running momentum SGD on a
/// symmetric two-component NoisyQuadratic; used to validate Lemma 5.
std::vector<double> monte_carlo_mse_curve(const MseParams& p, std::int64_t steps,
                                          std::int64_t trials, std::uint64_t seed);

/// The one-step SingleStep objective value mu D^2 + alpha^2 C (Eq. 15),
/// exposed for ablation benches comparing tuned vs. grid hyperparameters.
double single_step_objective(double mu, double alpha, double d, double c);

}  // namespace yf::sim
