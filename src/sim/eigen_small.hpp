// Closed-form eigen machinery for the paper's 2x2 / 3x3 operators, plus a
// power-iteration cross-check used by the tests.
#pragma once

#include <array>
#include <complex>
#include <vector>

namespace yf::sim {

/// Dense row-major square matrix small enough to manipulate directly.
struct SmallMatrix {
  std::size_t n = 0;
  std::vector<double> a;  ///< n*n row-major

  static SmallMatrix zero(std::size_t n);
  static SmallMatrix identity(std::size_t n);
  double& operator()(std::size_t i, std::size_t j) { return a[i * n + j]; }
  double operator()(std::size_t i, std::size_t j) const { return a[i * n + j]; }
};

SmallMatrix matmul(const SmallMatrix& x, const SmallMatrix& y);
SmallMatrix matpow(const SmallMatrix& x, std::int64_t k);
std::vector<double> matvec(const SmallMatrix& x, const std::vector<double>& v);
SmallMatrix sub(const SmallMatrix& x, const SmallMatrix& y);

/// Solve (n x n) linear system A z = b by Gaussian elimination with
/// partial pivoting. Throws on (numerically) singular A.
std::vector<double> solve(const SmallMatrix& a, const std::vector<double>& b);

/// Roots of x^2 + bx + c (monic), possibly complex.
std::array<std::complex<double>, 2> quadratic_roots(double b, double c);

/// Roots of x^3 + a2 x^2 + a1 x + a0 (monic), possibly complex.
std::array<std::complex<double>, 3> cubic_roots(double a2, double a1, double a0);

/// Spectral radius via characteristic polynomial (exact for n <= 3).
double spectral_radius(const SmallMatrix& m);

/// Spectral radius estimate via power iteration on m (gram trick handles
/// complex eigenvalues by iterating m^2 pairs); test cross-check only.
double spectral_radius_power_iteration(const SmallMatrix& m, std::int64_t iters = 20000);

}  // namespace yf::sim
