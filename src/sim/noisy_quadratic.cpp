#include "sim/noisy_quadratic.hpp"

#include <stdexcept>

namespace yf::sim {

NoisyQuadratic::NoisyQuadratic(double h, std::vector<double> offsets)
    : h_(h), offsets_(std::move(offsets)) {
  if (h <= 0.0) throw std::invalid_argument("NoisyQuadratic: curvature must be > 0");
  if (offsets_.empty()) throw std::invalid_argument("NoisyQuadratic: need >= 1 component");
  double mean = 0.0;
  for (double c : offsets_) mean += c;
  mean /= static_cast<double>(offsets_.size());
  for (double& c : offsets_) c -= mean;  // enforce sum c_i = 0
}

NoisyQuadratic NoisyQuadratic::symmetric(double h, double c) {
  return NoisyQuadratic(h, {c, -c});
}

double NoisyQuadratic::gradient_variance() const {
  double s = 0.0;
  for (double c : offsets_) s += c * c;
  s /= static_cast<double>(offsets_.size());
  return h_ * h_ * s;
}

double NoisyQuadratic::stochastic_gradient(double x, tensor::Rng& rng) const {
  const auto i = rng.index(static_cast<std::int64_t>(offsets_.size()));
  return h_ * (x - offsets_[static_cast<std::size_t>(i)]);
}

}  // namespace yf::sim
