#include "optim/momentum_sgd.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

MomentumSGD::MomentumSGD(std::vector<autograd::Variable> params, double lr, double momentum,
                         bool nesterov)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), nesterov_(nesterov) {
  velocity_ = arena_.make_buffer();
  // One view per parameter-list entry, so velocity(i) indexes like the
  // historical per-entry buffers; tied duplicates share a slot's view.
  velocity_views_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_views_.push_back(arena_.view(velocity_, arena_.slot_index(p)));
  }
}

optim::ApplyPlan MomentumSGD::begin_apply(std::span<double> /*grad*/) {
  return {iteration_, lr_, momentum_};
}

void MomentumSGD::step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::momentum_step(arena_.values().subspan(a, n), velocity_.data().subspan(a, n),
                      arena_.grads().subspan(a, n), plan.lr, plan.mu, nesterov_);
}

void MomentumSGD::save_state(core::StateWriter& w) const {
  Optimizer::save_state(w);
  w.f64(lr_);
  w.f64(momentum_);
  w.f64_span(velocity_.data());
}

void MomentumSGD::load_state(core::StateReader& r) {
  Optimizer::load_state(r);
  lr_ = r.f64();
  momentum_ = r.f64();
  r.f64_span(velocity_.data());
}

}  // namespace yf::optim
