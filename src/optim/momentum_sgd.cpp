#include "optim/momentum_sgd.hpp"

namespace yf::optim {

MomentumSGD::MomentumSGD(std::vector<autograd::Variable> params, double lr, double momentum,
                         bool nesterov)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), nesterov_(nesterov) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.push_back(tensor::Tensor::zeros(p.value().shape()));
}

void MomentumSGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& v = velocity_[i];
    const auto& g = params_[i].grad();
    v.mul_(momentum_);
    v.add_(g, -lr_);
    if (nesterov_) {
      // Nesterov look-ahead: x += mu*v - lr*g (v already holds the new velocity).
      params_[i].value().add_(v, momentum_);
      params_[i].value().add_(g, -lr_);
    } else {
      params_[i].value().add_(v);
    }
  }
  ++iteration_;
}

}  // namespace yf::optim
