#include "optim/momentum_sgd.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

MomentumSGD::MomentumSGD(std::vector<autograd::Variable> params, double lr, double momentum,
                         bool nesterov)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum), nesterov_(nesterov) {
  velocity_ = arena_.make_buffer();
  // One view per parameter-list entry, so velocity(i) indexes like the
  // historical per-entry buffers; tied duplicates share a slot's view.
  velocity_views_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_views_.push_back(arena_.view(velocity_, arena_.slot_index(p)));
  }
}

void MomentumSGD::step() {
  core::momentum_step(arena_.values(), velocity_.data(), arena_.grads(), lr_, momentum_,
                      nesterov_);
  ++iteration_;
}

}  // namespace yf::optim
