// AdaGrad (Duchi et al., 2011); WSJ baseline in Fig. 5.
#pragma once

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace yf::optim {

class AdaGrad : public Optimizer {
 public:
  AdaGrad(std::vector<autograd::Variable> params, double lr, double eps = 1e-10);

  void step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) override;
  std::string name() const override { return "adagrad"; }
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

  /// lr and the accumulator buffer.
  void save_state(core::StateWriter& w) const override;
  void load_state(core::StateReader& r) override;

 private:
  double lr_, eps_;
  tensor::Tensor accum_;  ///< flat accumulator aligned with the arena
};

}  // namespace yf::optim
