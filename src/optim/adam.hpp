// Adam (Kingma & Ba, 2014): the primary hand-tuned baseline of the paper.
//
// beta1 is deliberately allowed in (-1, 1): Fig. 10 sweeps Adam's momentum
// beta1 over {-0.2, 0.0, 0.3, 0.5, 0.7, 0.9} under asynchrony.
#pragma once

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace yf::optim {

class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  void step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) override;
  std::string name() const override { return "adam"; }
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

  double beta1() const { return beta1_; }
  void set_beta1(double b1) { beta1_ = b1; }

  /// lr, beta1 (both externally driven) and the moment buffers.
  void save_state(core::StateWriter& w) const override;
  void load_state(core::StateReader& r) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  tensor::Tensor m_, v_;  ///< flat moment buffers aligned with the arena
};

}  // namespace yf::optim
