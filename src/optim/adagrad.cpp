#include "optim/adagrad.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

AdaGrad::AdaGrad(std::vector<autograd::Variable> params, double lr, double eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  accum_ = arena_.make_buffer();
}

void AdaGrad::step() {
  core::adagrad_step(arena_.values(), accum_.data(), arena_.grads(), lr_, eps_);
  ++iteration_;
}

}  // namespace yf::optim
