#include "optim/adagrad.hpp"

#include <cmath>

namespace yf::optim {

AdaGrad::AdaGrad(std::vector<autograd::Variable> params, double lr, double eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  accum_.reserve(params_.size());
  for (const auto& p : params_) accum_.push_back(tensor::Tensor::zeros(p.value().shape()));
}

void AdaGrad::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& a = accum_[i];
    const auto& g = params_[i].grad();
    auto& x = params_[i].value();
    for (std::int64_t j = 0; j < g.size(); ++j) {
      a[j] += g[j] * g[j];
      x[j] -= lr_ * g[j] / (std::sqrt(a[j]) + eps_);
    }
  }
  ++iteration_;
}

}  // namespace yf::optim
