#include "optim/adagrad.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

AdaGrad::AdaGrad(std::vector<autograd::Variable> params, double lr, double eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  accum_ = arena_.make_buffer();
}

void AdaGrad::step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::adagrad_step(arena_.values().subspan(a, n), accum_.data().subspan(a, n),
                     arena_.grads().subspan(a, n), plan.lr, eps_);
}

}  // namespace yf::optim
