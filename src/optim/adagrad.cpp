#include "optim/adagrad.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

AdaGrad::AdaGrad(std::vector<autograd::Variable> params, double lr, double eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  accum_ = arena_.make_buffer();
}

void AdaGrad::step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::adagrad_step(arena_.values().subspan(a, n), accum_.data().subspan(a, n),
                     arena_.grads().subspan(a, n), plan.lr, eps_);
}

void AdaGrad::save_state(core::StateWriter& w) const {
  Optimizer::save_state(w);
  w.f64(lr_);
  w.f64_span(accum_.data());
}

void AdaGrad::load_state(core::StateReader& r) {
  Optimizer::load_state(r);
  lr_ = r.f64();
  r.f64_span(accum_.data());
}

}  // namespace yf::optim
