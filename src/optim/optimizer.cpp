#include "optim/optimizer.hpp"

#include <stdexcept>

namespace yf::optim {

namespace {

const std::vector<autograd::Variable>& validated(const std::vector<autograd::Variable>& params) {
  if (params.empty()) throw std::invalid_argument("Optimizer: empty parameter list");
  for (const auto& p : params) {
    if (!p.requires_grad()) {
      throw std::invalid_argument("Optimizer: parameter does not require grad");
    }
  }
  return params;
}

}  // namespace

Optimizer::Optimizer(std::vector<autograd::Variable> params)
    : params_(std::move(params)), arena_(validated(params_)) {}

void Optimizer::zero_grad() { arena_.zero_grads(); }

}  // namespace yf::optim
