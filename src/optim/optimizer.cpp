#include "optim/optimizer.hpp"

#include <stdexcept>

namespace yf::optim {

namespace {

const std::vector<autograd::Variable>& validated(const std::vector<autograd::Variable>& params) {
  if (params.empty()) throw std::invalid_argument("Optimizer: empty parameter list");
  for (const auto& p : params) {
    if (!p.requires_grad()) {
      throw std::invalid_argument("Optimizer: parameter does not require grad");
    }
  }
  return params;
}

}  // namespace

Optimizer::Optimizer(std::vector<autograd::Variable> params)
    : params_(std::move(params)), arena_(validated(params_)) {}

void Optimizer::step() {
  const ApplyPlan plan = begin_apply(arena_.grads());
  step_span(plan, 0, arena_.size());
  end_apply(plan);
}

ApplyPlan Optimizer::begin_apply(std::span<double> /*grad*/) { return {iteration_, lr(), 0.0}; }

void Optimizer::end_apply(const ApplyPlan& /*plan*/) { ++iteration_; }

void Optimizer::zero_grad() { arena_.zero_grads(); }

}  // namespace yf::optim
