#include "optim/optimizer.hpp"

#include <stdexcept>

namespace yf::optim {

Optimizer::Optimizer(std::vector<autograd::Variable> params) : params_(std::move(params)) {
  if (params_.empty()) throw std::invalid_argument("Optimizer: empty parameter list");
  for (const auto& p : params_) {
    if (!p.requires_grad()) {
      throw std::invalid_argument("Optimizer: parameter does not require grad");
    }
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

}  // namespace yf::optim
