#include "optim/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace yf::optim {

namespace {

const std::vector<autograd::Variable>& validated(const std::vector<autograd::Variable>& params) {
  if (params.empty()) throw std::invalid_argument("Optimizer: empty parameter list");
  for (const auto& p : params) {
    if (!p.requires_grad()) {
      throw std::invalid_argument("Optimizer: parameter does not require grad");
    }
  }
  return params;
}

}  // namespace

Optimizer::Optimizer(std::vector<autograd::Variable> params)
    : params_(std::move(params)), arena_(validated(params_)) {}

void Optimizer::step() {
  const ApplyPlan plan = begin_apply(arena_.grads());
  step_span(plan, 0, arena_.size());
  end_apply(plan);
}

ApplyPlan Optimizer::begin_apply(std::span<double> /*grad*/) { return {iteration_, lr(), 0.0}; }

void Optimizer::end_apply(const ApplyPlan& /*plan*/) { ++iteration_; }

void Optimizer::zero_grad() { arena_.zero_grads(); }

void Optimizer::save_state(core::StateWriter& w) const { w.i64(iteration_); }

void Optimizer::load_state(core::StateReader& r) {
  iteration_ = r.i64();
  if (iteration_ < 0) throw core::StateError("Optimizer: negative iteration counter");
}

OverlappedApply::OverlappedApply(Optimizer& opt, autograd::GraphTape& tape,
                                 std::size_t max_shards)
    : opt_(opt), tape_(tape) {
  if (!opt.grad_free_begin()) {
    throw std::invalid_argument(
        "OverlappedApply: optimizer's begin_apply reads the full gradient "
        "(grad_free_begin() is false); use the sequential step() instead");
  }
  if (max_shards == 0) throw std::invalid_argument("OverlappedApply: max_shards == 0");

  // Contiguous parameter-aligned shards of roughly equal scalar count.
  const core::ParamArena& arena = opt.arena();
  const auto want = static_cast<std::int64_t>(max_shards);
  const std::int64_t target = (arena.size() + want - 1) / want;
  std::vector<std::size_t> slot_shard(arena.count(), 0);
  Shard cur{0, 0};
  for (std::size_t i = 0; i < arena.count(); ++i) {
    slot_shard[i] = shards_.size();
    cur.hi = arena.offset(i) + static_cast<std::int64_t>(arena.slot_size(i));
    if (cur.hi - cur.lo >= target && i + 1 < arena.count()) {
      shards_.push_back(cur);
      cur.lo = cur.hi;
    }
  }
  shards_.push_back(cur);

  std::vector<autograd::GraphTape::LeafGroup> leaves;
  leaves.reserve(opt.params().size());
  for (const autograd::Variable& p : opt.params()) {
    leaves.push_back({p.node().get(), slot_shard[arena.slot_index(p)]});
  }
  tape.set_backward_hooks(this, leaves, shards_.size());
  applied_.assign(shards_.size(), 0);
}

OverlappedApply::~OverlappedApply() { tape_.set_backward_hooks(nullptr, {}, 0); }

void OverlappedApply::begin_step() {
  plan_ = opt_.begin_apply(opt_.arena().grads());
  std::fill(applied_.begin(), applied_.end(), static_cast<unsigned char>(0));
  armed_ = true;
}

void OverlappedApply::on_group_complete(std::size_t group) {
  // Fires on an engine thread while backward is still draining. Distinct
  // groups touch distinct applied_ bytes and disjoint arena spans; the
  // caller's join on backward orders everything before finish().
  if (!armed_ || group >= shards_.size()) return;
  const Shard s = shards_[group];
  opt_.step_span(plan_, s.lo, s.hi);
  applied_[group] = 1;
}

void OverlappedApply::finish() {
  if (!armed_) return;
  for (std::size_t g = 0; g < shards_.size(); ++g) {
    if (applied_[g] != 0) {
      ++overlapped_;  // counted here: callbacks race, finish is serial
      continue;
    }
    opt_.step_span(plan_, shards_[g].lo, shards_[g].hi);
  }
  opt_.end_apply(plan_);
  armed_ = false;
}

}  // namespace yf::optim
