// Polyak momentum SGD (Eq. 1 of the paper) and its Nesterov variant.
//
//   v_{t+1} = mu * v_t - lr * g_t
//   x_{t+1} = x_t + v_{t+1}            (equivalently Eq. 1 for constant lr)
//
// Exposes set_momentum() so that (a) YellowFin can drive it, and (b) the
// closed-loop controller can lower algorithmic momentum under asynchrony.
#pragma once

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace yf::optim {

class MomentumSGD : public Optimizer {
 public:
  MomentumSGD(std::vector<autograd::Variable> params, double lr, double momentum,
              bool nesterov = false);

  ApplyPlan begin_apply(std::span<double> grad) override;
  void step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) override;
  std::string name() const override { return nesterov_ ? "nesterov_sgd" : "momentum_sgd"; }
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

  double momentum() const { return momentum_; }
  void set_momentum(double mu) { momentum_ = mu; }

  /// lr, momentum (both externally driven) and the velocity buffer.
  void save_state(core::StateWriter& w) const override;
  void load_state(core::StateReader& r) override;

  /// Velocity view for parameter slot i (tests & async introspection);
  /// aliases the flat velocity buffer, shaped like the parameter.
  const tensor::Tensor& velocity(std::size_t i) const { return velocity_views_[i]; }

 private:
  double lr_;
  double momentum_;
  bool nesterov_;
  tensor::Tensor velocity_;  ///< flat, aligned with the arena layout
  std::vector<tensor::Tensor> velocity_views_;
};

}  // namespace yf::optim
