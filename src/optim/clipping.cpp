#include "optim/clipping.hpp"

#include <cmath>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::optim {

double global_grad_norm(const std::vector<autograd::Variable>& params) {
  // Per-tensor lane-blocked squared norms (deterministic on every kernel
  // backend, DESIGN.md §4) accumulated in parameter order, so the global
  // norm is as reproducible as the per-span reductions it sums.
  double sq = 0.0;
  for (const auto& p : params) sq += core::squared_norm(p.grad().data());
  return std::sqrt(sq);
}

double clip_grad_norm(std::vector<autograd::Variable>& params, double max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("clip_grad_norm: max_norm must be positive");
  const double norm = global_grad_norm(params);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (auto& p : params) {
      // grad() is const-ref; mutate via node to keep the public API const-safe.
      core::scale(p.node()->ensure_grad().data(), scale);
    }
  }
  return norm;
}

}  // namespace yf::optim
