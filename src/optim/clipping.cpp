#include "optim/clipping.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::optim {

double global_grad_norm(const std::vector<autograd::Variable>& params) {
  // Per-tensor lane-blocked squared norms (deterministic on every kernel
  // backend, DESIGN.md §4) accumulated in parameter order, so the global
  // norm is as reproducible as the per-span reductions it sums.
  double sq = 0.0;
  for (const auto& p : params) sq += core::squared_norm(p.grad().data());
  return std::sqrt(sq);
}

namespace {

/// Overflow-safe global norm: max-abs scaling keeps the squared sum
/// representable when gradient magnitudes are ~1e160+ (their squares
/// overflow and global_grad_norm returns inf even though every element is
/// finite). Returns a non-finite value iff some element is inf/nan.
double rescaled_global_norm(const std::vector<autograd::Variable>& params) {
  double maxabs = 0.0;
  for (const auto& p : params) {
    for (const double g : p.grad().data()) {
      if (!std::isfinite(g)) return g - g;  // inf - inf and nan - nan are both nan
      maxabs = std::max(maxabs, std::abs(g));
    }
  }
  if (maxabs == 0.0) return 0.0;
  const double inv = 1.0 / maxabs;
  double sq = 0.0;
  for (const auto& p : params) {
    for (const double g : p.grad().data()) {
      const double s = g * inv;
      sq += s * s;
    }
  }
  return maxabs * std::sqrt(sq);
}

void zero_grads(std::vector<autograd::Variable>& params) {
  for (auto& p : params) {
    auto d = p.node()->ensure_grad().data();
    std::fill(d.begin(), d.end(), 0.0);
  }
}

}  // namespace

double clip_grad_norm(std::vector<autograd::Variable>& params, double max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("clip_grad_norm: max_norm must be positive");
  const double norm = global_grad_norm(params);
  if (std::isfinite(norm)) {
    if (norm > max_norm) {
      const double scale = max_norm / norm;
      for (auto& p : params) {
        // grad() is const-ref; mutate via node to keep the public API const-safe.
        core::scale(p.node()->ensure_grad().data(), scale);
      }
    }
    return norm;
  }
  // Non-finite norm. The naive path would misbehave either way: an inf
  // norm gives scale = max_norm/inf = 0 and silently zeroes every
  // gradient, while a NaN norm fails `norm > max_norm` and passes NaNs
  // through unclipped into the optimizer state. Deterministic recovery:
  //  * inf from squared-sum overflow over *finite* elements -> clip to
  //    max_norm using a max-abs-rescaled norm (the clip the caller asked
  //    for, just computed without overflow);
  //  * any inf/nan element -> the gradient is garbage; skip-and-report
  //    (zero all gradients so the step is a no-op) and return the
  //    non-finite norm so callers can count skipped steps.
  if (!std::isnan(norm)) {
    const double safe = rescaled_global_norm(params);
    if (std::isfinite(safe) && safe > 0.0) {
      const double scale = max_norm / safe;
      for (auto& p : params) core::scale(p.node()->ensure_grad().data(), scale);
      std::fprintf(stderr,
                   "yf: clip_grad_norm: squared-norm overflow (norm %.3e); clipped to %.3e\n",
                   safe, max_norm);
      return safe;
    }
  }
  zero_grads(params);
  std::fprintf(stderr, "yf: clip_grad_norm: non-finite gradient norm (%f); step skipped\n", norm);
  return norm;
}

}  // namespace yf::optim
