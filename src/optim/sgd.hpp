// Vanilla SGD: x <- x - lr * g. Baseline in the WSJ experiment (Fig. 5).
#pragma once

#include "optim/optimizer.hpp"

namespace yf::optim {

class SGD : public Optimizer {
 public:
  SGD(std::vector<autograd::Variable> params, double lr);

  void step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) override;
  std::string name() const override { return "sgd"; }
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

  /// lr only; SGD has no slot buffers.
  void save_state(core::StateWriter& w) const override;
  void load_state(core::StateReader& r) override;

 private:
  double lr_;
};

}  // namespace yf::optim
