#include "optim/lr_schedule.hpp"

#include <cmath>

namespace yf::optim {

double ExponentialDecaySchedule::factor(std::int64_t epoch) const {
  const auto n = epoch > start_epoch_ ? epoch - start_epoch_ : 0;
  return std::pow(decay_, static_cast<double>(n));
}

}  // namespace yf::optim
