// Gradient norm clipping (Pascanu et al., 2013), the manually-tuned
// baseline that adaptive clipping (Appendix F) replaces.
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace yf::optim {

/// Global L2 norm over all parameter gradients.
double global_grad_norm(const std::vector<autograd::Variable>& params);

/// Scale all gradients so the global norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(std::vector<autograd::Variable>& params, double max_norm);

}  // namespace yf::optim
