// Gradient norm clipping (Pascanu et al., 2013), the manually-tuned
// baseline that adaptive clipping (Appendix F) replaces.
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace yf::optim {

/// Global L2 norm over all parameter gradients.
double global_grad_norm(const std::vector<autograd::Variable>& params);

/// Scale all gradients so the global norm is at most `max_norm`.
/// Returns the pre-clip norm.
///
/// Non-finite norms recover deterministically instead of poisoning the
/// step: an inf norm caused purely by squared-sum overflow (all elements
/// finite) is re-measured with max-abs rescaling and clipped to
/// `max_norm` (returns the rescaled pre-clip norm); any inf/nan gradient
/// *element* zeroes every gradient (skip-and-report, the step becomes a
/// no-op) and returns the non-finite norm so callers can count skips.
/// Both paths emit a one-line stderr warning.
double clip_grad_norm(std::vector<autograd::Variable>& params, double max_norm);

}  // namespace yf::optim
