#include "optim/rmsprop.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

RMSProp::RMSProp(std::vector<autograd::Variable> params, double lr, double decay, double eps)
    : Optimizer(std::move(params)), lr_(lr), decay_(decay), eps_(eps) {
  sq_ = arena_.make_buffer();
}

void RMSProp::step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::rmsprop_step(arena_.values().subspan(a, n), sq_.data().subspan(a, n),
                     arena_.grads().subspan(a, n), plan.lr, decay_, eps_);
}

void RMSProp::save_state(core::StateWriter& w) const {
  Optimizer::save_state(w);
  w.f64(lr_);
  w.f64_span(sq_.data());
}

void RMSProp::load_state(core::StateReader& r) {
  Optimizer::load_state(r);
  lr_ = r.f64();
  r.f64_span(sq_.data());
}

}  // namespace yf::optim
