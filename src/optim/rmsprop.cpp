#include "optim/rmsprop.hpp"

#include <cmath>

namespace yf::optim {

RMSProp::RMSProp(std::vector<autograd::Variable> params, double lr, double decay, double eps)
    : Optimizer(std::move(params)), lr_(lr), decay_(decay), eps_(eps) {
  sq_.reserve(params_.size());
  for (const auto& p : params_) sq_.push_back(tensor::Tensor::zeros(p.value().shape()));
}

void RMSProp::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& s = sq_[i];
    const auto& g = params_[i].grad();
    auto& x = params_[i].value();
    for (std::int64_t j = 0; j < g.size(); ++j) {
      s[j] = decay_ * s[j] + (1.0 - decay_) * g[j] * g[j];
      x[j] -= lr_ * g[j] / (std::sqrt(s[j]) + eps_);
    }
  }
  ++iteration_;
}

}  // namespace yf::optim
