#include "optim/rmsprop.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

RMSProp::RMSProp(std::vector<autograd::Variable> params, double lr, double decay, double eps)
    : Optimizer(std::move(params)), lr_(lr), decay_(decay), eps_(eps) {
  sq_ = arena_.make_buffer();
}

void RMSProp::step() {
  core::rmsprop_step(arena_.values(), sq_.data(), arena_.grads(), lr_, decay_, eps_);
  ++iteration_;
}

}  // namespace yf::optim
