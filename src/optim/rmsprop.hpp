// RMSProp (Tieleman & Hinton, 2012).
#pragma once

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace yf::optim {

class RMSProp : public Optimizer {
 public:
  RMSProp(std::vector<autograd::Variable> params, double lr, double decay = 0.99,
          double eps = 1e-8);

  void step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) override;
  std::string name() const override { return "rmsprop"; }
  double lr() const override { return lr_; }
  void set_lr(double lr) override { lr_ = lr; }

  /// lr and the second-moment buffer.
  void save_state(core::StateWriter& w) const override;
  void load_state(core::StateReader& r) override;

 private:
  double lr_, decay_, eps_;
  tensor::Tensor sq_;  ///< flat second-moment buffer aligned with the arena
};

}  // namespace yf::optim
