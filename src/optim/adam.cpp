#include "optim/adam.hpp"

#include <cmath>
#include <stdexcept>

#include "core/kernels.hpp"

namespace yf::optim {

Adam::Adam(std::vector<autograd::Variable> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (beta1 <= -1.0 || beta1 >= 1.0) throw std::invalid_argument("Adam: beta1 must be in (-1,1)");
  if (beta2 <= 0.0 || beta2 >= 1.0) throw std::invalid_argument("Adam: beta2 must be in (0,1)");
  m_ = arena_.make_buffer();
  v_ = arena_.make_buffer();
}

void Adam::step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  const auto t = static_cast<double>(plan.t + 1);
  const double bc1 = 1.0 - std::pow(beta1_, t);
  const double bc2 = 1.0 - std::pow(beta2_, t);
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::adam_step(arena_.values().subspan(a, n), m_.data().subspan(a, n),
                  v_.data().subspan(a, n), arena_.grads().subspan(a, n), plan.lr, beta1_,
                  beta2_, bc1, bc2, eps_);
}

void Adam::save_state(core::StateWriter& w) const {
  Optimizer::save_state(w);
  w.f64(lr_);
  w.f64(beta1_);
  w.f64_span(m_.data());
  w.f64_span(v_.data());
}

void Adam::load_state(core::StateReader& r) {
  Optimizer::load_state(r);
  lr_ = r.f64();
  beta1_ = r.f64();
  r.f64_span(m_.data());
  r.f64_span(v_.data());
}

}  // namespace yf::optim
