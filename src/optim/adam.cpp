#include "optim/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace yf::optim {

Adam::Adam(std::vector<autograd::Variable> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (beta1 <= -1.0 || beta1 >= 1.0) throw std::invalid_argument("Adam: beta1 must be in (-1,1)");
  if (beta2 <= 0.0 || beta2 >= 1.0) throw std::invalid_argument("Adam: beta2 must be in (0,1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(tensor::Tensor::zeros(p.value().shape()));
    v_.push_back(tensor::Tensor::zeros(p.value().shape()));
  }
}

void Adam::step() {
  const auto t = static_cast<double>(iteration_ + 1);
  const double bc1 = 1.0 - std::pow(beta1_, t);
  const double bc2 = 1.0 - std::pow(beta2_, t);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& m = m_[i];
    auto& v = v_[i];
    const auto& g = params_[i].grad();
    auto& x = params_[i].value();
    for (std::int64_t j = 0; j < g.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      x[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  ++iteration_;
}

}  // namespace yf::optim
