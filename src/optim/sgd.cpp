#include "optim/sgd.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

SGD::SGD(std::vector<autograd::Variable> params, double lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void SGD::step() {
  core::sgd_step(arena_.values(), arena_.grads(), lr_);
  ++iteration_;
}

}  // namespace yf::optim
