#include "optim/sgd.hpp"

namespace yf::optim {

SGD::SGD(std::vector<autograd::Variable> params, double lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void SGD::step() {
  for (auto& p : params_) p.value().add_(p.grad(), -lr_);
  ++iteration_;
}

}  // namespace yf::optim
