#include "optim/sgd.hpp"

#include "core/kernels.hpp"

namespace yf::optim {

SGD::SGD(std::vector<autograd::Variable> params, double lr)
    : Optimizer(std::move(params)), lr_(lr) {}

void SGD::step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) {
  const auto a = static_cast<std::size_t>(lo), n = static_cast<std::size_t>(hi - lo);
  core::sgd_step(arena_.values().subspan(a, n), arena_.grads().subspan(a, n), plan.lr);
}

void SGD::save_state(core::StateWriter& w) const {
  Optimizer::save_state(w);
  w.f64(lr_);
}

void SGD::load_state(core::StateReader& r) {
  Optimizer::load_state(r);
  lr_ = r.f64();
}

}  // namespace yf::optim
