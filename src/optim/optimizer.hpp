// Optimizer base class: consumes parameter gradients, updates values.
//
// All optimizers in this library (including YellowFin) share this
// interface, so experiment harnesses can swap them freely -- the "drop-in
// replacement" property the paper's released implementations advertise.
#pragma once

#include <string>
#include <vector>

#include "autograd/variable.hpp"

namespace yf::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update using the gradients currently stored on the params.
  virtual void step() = 0;

  /// Human-readable optimizer name for reports ("adam", "yellowfin", ...).
  virtual std::string name() const = 0;

  /// Current base learning rate (schedules and Fig. 11 factors hook here).
  virtual double lr() const = 0;
  virtual void set_lr(double lr) = 0;

  /// Zero all parameter gradients.
  void zero_grad();

  const std::vector<autograd::Variable>& params() const { return params_; }

  /// Number of step() calls so far.
  std::int64_t iteration() const { return iteration_; }

 protected:
  std::vector<autograd::Variable> params_;
  std::int64_t iteration_ = 0;
};

}  // namespace yf::optim
