// Optimizer base class: consumes parameter gradients, updates values.
//
// All optimizers in this library (including YellowFin) share this
// interface, so experiment harnesses can swap them freely -- the "drop-in
// replacement" property the paper's released implementations advertise.
//
// Construction flattens the parameters into a core::ParamArena
// (DESIGN.md §4): every concrete step() is a single fused sweep over the
// contiguous value/gradient buffers instead of a per-parameter tensor
// walk, and zero_grad() is one pass over the gradient buffer. Parameter
// handles remain valid -- they become views into the arena.
//
// Several optimizers may be constructed over the *same parameter list*:
// later arenas adopt the first one's buffers, so all stay live. But
// constructing an optimizer over a reordered or partial subset of
// already-flattened parameters migrates them into new buffers and
// detaches any earlier optimizer still holding the old arena -- destroy
// the old optimizer first in that case.
//
// Sharded application protocol (async/param_server, DESIGN.md §5): one
// gradient application decomposes into
//
//   plan = begin_apply(grad)        global stage: measurement / tuning on
//                                   the full gradient (YellowFin clips and
//                                   tunes here); captures everything the
//                                   span sweeps need into an ApplyPlan
//   step_span(plan, lo, hi)         fused update sweep over arena span
//                                   [lo, hi); safe to run concurrently for
//                                   DISJOINT spans of the same plan or of
//                                   different plans -- all mutable per-span
//                                   state (values, velocity, moments) is
//                                   indexed by the span
//   end_apply(plan)                 global stage: advance the iteration
//
// step() is exactly begin_apply(arena grads) + step_span over the whole
// arena + end_apply, so a sharded application with one worker reproduces
// the synchronous trajectory bit for bit (tests/param_server_test.cpp).
// begin_apply/end_apply must be externally serialized (the parameter
// server runs them under its global stage lock); hyperparameter setters
// (set_lr, set_momentum, ...) count as global-stage calls too.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "autograd/tape.hpp"
#include "autograd/variable.hpp"
#include "core/arena.hpp"
#include "core/state.hpp"

namespace yf::optim {

/// Everything a span sweep needs from the global stage, captured by value
/// so concurrent sweeps never read mutating optimizer state.
struct ApplyPlan {
  std::int64_t t = 0;  ///< iteration index the update math uses (0-based)
  double lr = 0.0;     ///< effective learning rate of this application
  double mu = 0.0;     ///< effective momentum (momentum-family optimizers)
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update using the gradients currently stored on the params:
  /// begin_apply + one whole-arena step_span + end_apply.
  void step();

  /// Global stage of one gradient application. `grad` is the flattened
  /// gradient about to be applied (the arena gradient buffer in the
  /// synchronous path, a worker's own buffer at the parameter server) and
  /// may be modified in place (YellowFin's adaptive clipping).
  virtual ApplyPlan begin_apply(std::span<double> grad);

  /// Fused update sweep over arena span [lo, hi) using the captured plan.
  /// The gradient for the span must already be in the arena buffer.
  virtual void step_span(const ApplyPlan& plan, std::int64_t lo, std::int64_t hi) = 0;

  /// Closing global stage; advances the iteration counter.
  virtual void end_apply(const ApplyPlan& plan);

  /// True when begin_apply() never reads the gradient, so the global
  /// stage may run BEFORE the gradient is complete and span sweeps may
  /// start as soon as their shard's gradient window is final -- the
  /// backward/apply overlap path (DESIGN.md §10). YellowFin measures and
  /// clips the full gradient in begin_apply and returns false; overlap
  /// consumers must fall back to the sequential protocol there. Any
  /// subclass whose begin_apply touches `grad` must override this.
  virtual bool grad_free_begin() const { return true; }

  /// Human-readable optimizer name for reports ("adam", "yellowfin", ...).
  virtual std::string name() const = 0;

  /// Current base learning rate (schedules and Fig. 11 factors hook here).
  virtual double lr() const = 0;
  virtual void set_lr(double lr) = 0;

  /// Zero all parameter gradients.
  void zero_grad();

  const std::vector<autograd::Variable>& params() const { return params_; }

  /// Flat parameter/gradient storage backing this optimizer. The mutable
  /// overload serves engines that stage gradients into the arena
  /// themselves (async/param_server copies each worker gradient in shard
  /// by shard before the span sweeps).
  const core::ParamArena& arena() const { return arena_; }
  core::ParamArena& arena() { return arena_; }

  /// Number of step() calls so far.
  std::int64_t iteration() const { return iteration_; }

  /// Serialize/restore the optimizer's mutable state bit-exactly: the
  /// iteration counter, externally driven hyperparameters (set_lr /
  /// set_momentum / set_beta1 targets), and slot buffers (velocity,
  /// moments). Parameter VALUES live in the arena and are serialized by
  /// the arena's owner (dist/checkpoint, DESIGN.md §14). Configuration
  /// (betas, eps, nesterov, options structs) is NOT part of the snapshot:
  /// the restore target must be constructed identically, and loads fail
  /// with core::StateError on layout mismatch rather than drifting.
  virtual void save_state(core::StateWriter& w) const;
  virtual void load_state(core::StateReader& r);

 protected:
  std::vector<autograd::Variable> params_;
  core::ParamArena arena_;
  std::int64_t iteration_ = 0;
};

/// Backward/optimizer overlap driver for the synchronous path
/// (DESIGN.md §10): partitions the optimizer's arena into contiguous
/// parameter-aligned shards, registers each shard's leaves as a tape
/// completion group, and runs that shard's fused step_span *inside*
/// backward the moment its gradients are final -- a parameter's value is
/// only read by its consumers' pullbacks, so once they have all executed
/// the in-place update races with nothing.
///
/// Usage per step, replacing optimizer.step():
///
///   overlap.begin_step();     // capture the plan (grad-free global stage)
///   loss.backward();          // engine fires step_span per finished shard
///   overlap.finish();         // sweep unfired shards + end_apply
///
/// The trajectory is bit-identical to optimizer.step(): step_span over
/// disjoint spans of one plan is span-partition-invariant, and the plan
/// itself never depends on the gradient (grad_free_begin is required --
/// the constructor throws for YellowFin-style optimizers).
class OverlappedApply final : public autograd::GraphTape::BackwardHooks {
 public:
  /// Registers hooks on `tape` (cleared again by the destructor). At
  /// most `max_shards` shards of roughly equal scalar count, never
  /// splitting a parameter.
  OverlappedApply(Optimizer& opt, autograd::GraphTape& tape, std::size_t max_shards = 8);
  ~OverlappedApply() override;
  OverlappedApply(const OverlappedApply&) = delete;
  OverlappedApply& operator=(const OverlappedApply&) = delete;

  /// Grad-free global stage; arm the hooks for the coming backward.
  void begin_step();

  /// Engine callback: shard `group`'s gradients are final -- apply it.
  void on_group_complete(std::size_t group) override;

  /// Apply every shard the engine did not complete (leaves absent from
  /// the traversal, or backward run without the engine), then end_apply.
  void finish();

  std::size_t shard_count() const { return shards_.size(); }
  /// Cumulative shards applied inside backward (overlap actually won).
  std::int64_t overlapped() const { return overlapped_; }

 private:
  struct Shard {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
  };

  Optimizer& opt_;
  autograd::GraphTape& tape_;
  std::vector<Shard> shards_;
  ApplyPlan plan_{};
  std::vector<unsigned char> applied_;  ///< per shard, this pass
  bool armed_ = false;
  std::int64_t overlapped_ = 0;
};

}  // namespace yf::optim
