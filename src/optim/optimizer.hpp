// Optimizer base class: consumes parameter gradients, updates values.
//
// All optimizers in this library (including YellowFin) share this
// interface, so experiment harnesses can swap them freely -- the "drop-in
// replacement" property the paper's released implementations advertise.
//
// Construction flattens the parameters into a core::ParamArena
// (DESIGN.md §4): every concrete step() is a single fused sweep over the
// contiguous value/gradient buffers instead of a per-parameter tensor
// walk, and zero_grad() is one pass over the gradient buffer. Parameter
// handles remain valid -- they become views into the arena.
//
// Several optimizers may be constructed over the *same parameter list*:
// later arenas adopt the first one's buffers, so all stay live. But
// constructing an optimizer over a reordered or partial subset of
// already-flattened parameters migrates them into new buffers and
// detaches any earlier optimizer still holding the old arena -- destroy
// the old optimizer first in that case.
#pragma once

#include <string>
#include <vector>

#include "autograd/variable.hpp"
#include "core/arena.hpp"

namespace yf::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update using the gradients currently stored on the params.
  virtual void step() = 0;

  /// Human-readable optimizer name for reports ("adam", "yellowfin", ...).
  virtual std::string name() const = 0;

  /// Current base learning rate (schedules and Fig. 11 factors hook here).
  virtual double lr() const = 0;
  virtual void set_lr(double lr) = 0;

  /// Zero all parameter gradients.
  void zero_grad();

  const std::vector<autograd::Variable>& params() const { return params_; }

  /// Flat parameter/gradient storage backing this optimizer.
  const core::ParamArena& arena() const { return arena_; }

  /// Number of step() calls so far.
  std::int64_t iteration() const { return iteration_; }

 protected:
  std::vector<autograd::Variable> params_;
  core::ParamArena arena_;
  std::int64_t iteration_ = 0;
};

}  // namespace yf::optim
