// Epoch-indexed learning-rate schedules used by the paper's protocols:
// TS decays by 0.97 every epoch; WSJ decays by 0.9 per epoch after epoch 14
// (Appendix I). Schedules return a multiplicative factor on the base lr.
#pragma once

#include <cstdint>
#include <memory>

namespace yf::optim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Multiplicative factor applied to the base learning rate at `epoch`.
  virtual double factor(std::int64_t epoch) const = 0;
};

/// factor == 1 forever.
class ConstantSchedule : public LrSchedule {
 public:
  double factor(std::int64_t) const override { return 1.0; }
};

/// factor = decay^max(0, epoch - start_epoch).
class ExponentialDecaySchedule : public LrSchedule {
 public:
  ExponentialDecaySchedule(double decay, std::int64_t start_epoch = 0)
      : decay_(decay), start_epoch_(start_epoch) {}
  double factor(std::int64_t epoch) const override;

 private:
  double decay_;
  std::int64_t start_epoch_;
};

}  // namespace yf::optim
