// Tape-free MiniResNet forward for serving (DESIGN.md §11).
//
// Mirrors MiniResNet::forward() kernel-for-kernel over weights read from a
// pinned SnapshotStore slot: conv/BN/pool value loops come from
// core/conv_math.hpp -- the same functions the autograd ops call -- and
// the GEMMs are the same `_into` variants, so served logits are
// bit-identical to the training forward on identical inputs.
//
// Batch statistics make BN output depend on batch composition, so the
// batch size (and image geometry) is fixed at construction; serving a
// BN ResNet coalesces only full fixed-size batches. All buffers come from
// an owned Workspace; after warm() a forward allocates nothing. One
// instance is driven by one thread at a time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arena.hpp"
#include "core/conv_math.hpp"
#include "core/workspace.hpp"
#include "nn/resnet.hpp"
#include "serve/snapshot.hpp"

namespace yf::serve {

class ResNetForward {
 public:
  /// `arena` must be the flat arena the model's parameters live in;
  /// `store` must outlive this object. `batch`/`height`/`width` fix the
  /// served input geometry (BN uses batch statistics).
  ResNetForward(const nn::MiniResNet& model, const core::ParamArena& arena,
                const SnapshotStore& store, std::int64_t batch, std::int64_t height,
                std::int64_t width);

  /// images [batch, C, H, W] -> logits [batch, num_classes], weights from
  /// snapshot slot `slot`. The returned tensor is owned by this object and
  /// valid until the next forward().
  const tensor::Tensor& forward(const tensor::Tensor& images, int slot);

  /// Run one forward on zero images (weights from `slot`) so later
  /// forwards allocate nothing. Call from the serving thread.
  void warm(int slot);

  std::int64_t batch() const { return batch_; }
  std::int64_t num_classes() const { return num_classes_; }

 private:
  /// One convolution: fixed dims + per-slot weight/bias views + scratch.
  struct ConvStep {
    core::Conv2dDims d;
    std::vector<tensor::Tensor> wmat;  ///< per slot, [F, C*KH*KW]
    std::vector<tensor::Tensor> bias;  ///< per slot, [F]
    tensor::Tensor col, outmat, out;
  };
  /// One training-mode batch norm over the conv output geometry.
  struct BnStep {
    std::int64_t n, c, h, w;
    double eps;
    std::vector<tensor::Tensor> gamma, beta;  ///< per slot, [C]
    tensor::Tensor mean, inv_std, xhat, out;
  };
  struct BlockStep {
    ConvStep conv1, conv2;
    std::unique_ptr<ConvStep> proj;
    std::unique_ptr<BnStep> bn1, bn2;
    double residual_scale;
    tensor::Tensor relu1, scaled, sum, out;
  };

  ConvStep make_conv(const nn::Conv2d& conv, const core::ParamArena& arena, std::int64_t n,
                     std::int64_t c, std::int64_t h, std::int64_t w);
  BnStep make_bn(const nn::BatchNorm2d& bn, const core::ParamArena& arena,
                 const core::Conv2dDims& d);
  const tensor::Tensor& run_conv(ConvStep& s, const tensor::Tensor& x, int slot);
  const tensor::Tensor& run_bn(BnStep& s, const tensor::Tensor& x, int slot);

  std::int64_t batch_, in_channels_, height_, width_, num_classes_;
  const SnapshotStore* store_;
  core::Workspace ws_;
  ConvStep stem_;
  std::unique_ptr<BnStep> stem_bn_;
  tensor::Tensor stem_relu_;
  std::vector<BlockStep> blocks_;
  tensor::Tensor pooled_, head_mm_, logits_;
  std::vector<tensor::Tensor> head_w_, head_b_;  ///< per slot
};

}  // namespace yf::serve
