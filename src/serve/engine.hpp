// Forward-only serving engine with dynamic micro-batching (DESIGN.md §11).
//
// LMServer glues the serving pieces together:
//
//  * a SnapshotStore of versioned parameter copies; the trainer thread
//    calls publish() at step boundaries (one memcpy out of the arena,
//    never blocked by inference) while inference pins the latest version;
//  * a bounded micro-batching queue: infer() enqueues a stack-allocated
//    request and blocks until served; workers coalesce up to `max_batch`
//    concurrent requests, waiting at most `max_wait_us` for stragglers,
//    and run ONE batched forward (the PR 5 packed GEMM path) per batch;
//  * a pool of ServeWorker threads, each owning a private LMForward whose
//    plans are warmed at thread start, so steady-state serving performs
//    zero heap allocations (pinned by tests/alloc_count_test.cpp).
//
// Shutdown follows the repo-wide drain-on-shutdown idiom (DESIGN.md §12,
// shared with dist::MasterServer): shutdown() closes intake first (new
// infer()/publish() calls are refused), drains -- requests enqueued
// before shutdown are served, not dropped -- joins the workers, and only
// then flips stopped(). Entry points called after shutdown() throw
// std::logic_error instead of racing a dying object.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "nn/language_model.hpp"
#include "serve/snapshot.hpp"

namespace yf::serve {

struct ServeOptions {
  std::int64_t seq_len = 16;
  std::int64_t max_batch = 8;      ///< coalesce at most this many requests
  std::int64_t max_wait_us = 200;  ///< straggler budget once a batch has begun forming
  int workers = 1;
  int snapshot_slots = 4;
  std::int64_t queue_capacity = 64;  ///< enqueue backpressure bound
};

struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;  ///< forwards run; < requests when coalescing works
};

class LMServer {
 public:
  /// Flattens the model's parameters into an owned ParamArena (adopting
  /// existing flat storage if the trainer already arena-backed them, so
  /// trainer updates stay visible to publish()), publishes version 1, and
  /// starts the worker pool. `model` must outlive the server.
  explicit LMServer(const nn::LSTMLanguageModel& model, ServeOptions opts = {});
  ~LMServer();

  LMServer(const LMServer&) = delete;
  LMServer& operator=(const LMServer&) = delete;

  /// Snapshot the current arena values as a new version (trainer-side;
  /// wait-free, never blocks on inference). Returns the new version.
  /// Throws std::logic_error once the server has been shut down -- a
  /// publish racing teardown used to silently write into a store whose
  /// readers were going away; now it is a loud contract violation.
  std::uint64_t publish() {
    if (stopped_.load(std::memory_order_acquire)) {
      throw std::logic_error("LMServer::publish after shutdown");
    }
    return store_.publish(arena_.values());
  }

  /// Drain-on-shutdown (idiom above): refuse new work, serve what is
  /// queued, join the workers, flip stopped(). Idempotent; also run by
  /// the destructor.
  void shutdown();
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Serve one request of exactly seq_len tokens: blocks until a worker
  /// has run it (possibly coalesced with concurrent requests) and filled
  /// `logits_out` with seq_len * vocab doubles (row t = logits after
  /// token t). Returns the parameter version served. Thread-safe.
  std::uint64_t infer(std::span<const std::int64_t> tokens, std::span<double> logits_out);

  ServeStats stats() const;

  const ServeOptions& options() const { return opts_; }
  std::int64_t vocab() const { return vocab_; }
  const SnapshotStore& store() const { return store_; }
  core::ParamArena& arena() { return arena_; }

 private:
  struct Request {
    std::span<const std::int64_t> tokens;
    std::span<double> out;
    std::uint64_t version = 0;
    bool done = false;
  };

  void worker_loop();

  const nn::LSTMLanguageModel* model_;
  ServeOptions opts_;
  std::int64_t vocab_;
  core::ParamArena arena_;
  SnapshotStore store_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< workers: work available / batch filled
  std::condition_variable done_cv_;   ///< clients: request served
  std::condition_variable space_cv_;  ///< clients: queue has room
  std::vector<Request*> ring_;        ///< fixed-capacity FIFO of waiting requests
  std::int64_t head_ = 0;
  std::int64_t count_ = 0;
  bool stopping_ = false;            ///< intake closed; workers drain and exit
  std::atomic<bool> stopped_{false};  ///< drained and joined (publish guard)
  ServeStats stats_;

  std::vector<std::thread> threads_;
};

}  // namespace yf::serve
