// Tape-free LSTM-LM forward for serving (DESIGN.md §11).
//
// Mirrors LSTMLanguageModel::logits() kernel-for-kernel -- same `_into`
// tensor calls, same loop bodies as the autograd ops' value paths -- over
// weights read from a pinned SnapshotStore slot instead of the live
// arena. Because both paths execute the identical kernel sequence on
// identical inputs, served logits are bit-identical to the training
// tape's forward for the same snapshot (pinned by EXPECT_EQ in
// tests/serve_test.cpp).
//
// All buffers live in per-batch-size Plans acquired from an owned
// Workspace; after warm_all() a forward performs zero heap allocations.
// One LMForward instance is driven by one thread at a time (each
// ServeWorker owns its own).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/arena.hpp"
#include "core/workspace.hpp"
#include "nn/language_model.hpp"
#include "serve/snapshot.hpp"

namespace yf::serve {

class LMForward {
 public:
  /// `arena` must be the flat arena the model's parameters live in (it
  /// maps each weight to its offset in the snapshot buffers). `store`
  /// must outlive this object.
  LMForward(const nn::LSTMLanguageModel& model, const core::ParamArena& arena,
            const SnapshotStore& store, std::int64_t seq_len, std::int64_t max_batch);
  ~LMForward();  // out-of-line: Plan is incomplete here

  /// Batched forward over `batch` requests of `seq_len` tokens each
  /// (tokens row-major [batch, seq_len]), reading weights from snapshot
  /// slot `slot`. Returns logits [batch*seq_len, V] with row = b*T + t;
  /// the tensor is owned by the plan and valid until the next forward of
  /// the same batch size.
  const tensor::Tensor& forward(std::span<const std::int64_t> tokens, std::int64_t batch,
                                int slot);

  /// Build every batch-size plan and run each once (weights from `slot`),
  /// so later forwards -- including the GEMM packing workspace of the
  /// calling thread -- allocate nothing. Call from the serving thread.
  void warm_all(int slot);

  std::int64_t seq_len() const { return seq_len_; }
  std::int64_t max_batch() const { return max_batch_; }
  std::int64_t vocab() const { return vocab_; }

 private:
  struct LayerWeights {
    tensor::Tensor w_x;  ///< [input, 4H]
    tensor::Tensor w_h;  ///< [H, 4H]
    tensor::Tensor b;    ///< [4H]
  };
  struct SlotWeights {
    tensor::Tensor embed;  ///< [V, E]
    std::vector<LayerWeights> layers;
    tensor::Tensor w_out;  ///< [H, V]; empty when tied
    tensor::Tensor b_out;  ///< [V]; empty when tied
  };
  struct Plan;

  Plan& plan(std::int64_t batch);

  std::int64_t seq_len_, max_batch_;
  std::int64_t vocab_, embed_dim_, hidden_, layers_;
  bool tied_;
  const SnapshotStore* store_;
  std::vector<SlotWeights> slots_;  ///< per snapshot slot
  core::Workspace ws_;
  std::vector<std::unique_ptr<Plan>> plans_;  ///< indexed by batch - 1
};

}  // namespace yf::serve
