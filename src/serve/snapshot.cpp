#include "serve/snapshot.hpp"

#include <cstring>
#include <stdexcept>
#include <thread>

namespace yf::serve {

SnapshotStore::SnapshotStore(std::int64_t size, int slots) : size_(size), slot_count_(slots) {
  if (size < 1) throw std::invalid_argument("SnapshotStore: size must be positive");
  if (slots < 3) {
    // 2 slots deadlock-prone by design: with `latest` pinned by a slow
    // reader the single remaining slot is the one being published over,
    // and a second publish has nowhere to go.
    throw std::invalid_argument("SnapshotStore: need at least 3 slots");
  }
  slots_ = std::make_unique<Slot[]>(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    slots_[static_cast<std::size_t>(s)].buf = tensor::Tensor({size});
  }
}

std::uint64_t SnapshotStore::publish(std::span<const double> values) {
  if (static_cast<std::int64_t>(values.size()) != size_) {
    throw std::invalid_argument("SnapshotStore::publish: size mismatch");
  }
  for (;;) {
    const int cur = latest_.load();
    for (int s = 0; s < slot_count_; ++s) {
      if (s == cur) continue;
      Slot& slot = slots_[static_cast<std::size_t>(s)];
      // Claim first, then check pins: a reader that pinned before seeing
      // our claim is counted here; one that pins after will observe
      // writing == true and retry (see acquire()).
      if (slot.writing.exchange(true)) continue;  // another publisher owns it
      if (slot.pins.load() != 0) {
        slot.writing.store(false);  // a reader is draining this slot; skip it
        continue;
      }
      const std::uint64_t version = version_counter_.fetch_add(1) + 1;
      std::memcpy(slot.buf.data().data(), values.data(),
                  static_cast<std::size_t>(size_) * sizeof(double));
      slot.version.store(version);
      slot.writing.store(false);
      latest_.store(s);
      return version;
    }
    // Every non-latest slot pinned or mid-publish: transient (readers pin
    // for one batched forward), so yield rather than grow.
    std::this_thread::yield();
  }
}

SnapshotStore::Pin SnapshotStore::acquire() const {
  for (;;) {
    const int i = latest_.load();
    if (i < 0) return Pin{};  // nothing published yet
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    slot.pins.fetch_add(1);
    if (!slot.writing.load()) {
      // Either our pin landed before a publisher's claim (it will see
      // pins >= 1 and back off) or the slot's copy is complete; in both
      // cases the buffer is frozen while we hold the pin.
      return Pin{this, i, slot.version.load()};
    }
    slot.pins.fetch_sub(1);
    std::this_thread::yield();
  }
}

std::uint64_t SnapshotStore::latest_version() const {
  const int i = latest_.load();
  if (i < 0) return 0;
  return slots_[static_cast<std::size_t>(i)].version.load();
}

SnapshotStore::Pin& SnapshotStore::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    release();
    store_ = other.store_;
    slot_ = other.slot_;
    version_ = other.version_;
    other.store_ = nullptr;
    other.slot_ = -1;
    other.version_ = 0;
  }
  return *this;
}

std::span<const double> SnapshotStore::Pin::values() const {
  if (store_ == nullptr) return {};
  return store_->slot_buffer(slot_).data();
}

void SnapshotStore::Pin::release() {
  if (store_ != nullptr) {
    store_->slots_[static_cast<std::size_t>(slot_)].pins.fetch_sub(1);
    store_ = nullptr;
    slot_ = -1;
    version_ = 0;
  }
}

}  // namespace yf::serve
