#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "serve/lm_forward.hpp"

namespace yf::serve {

LMServer::LMServer(const nn::LSTMLanguageModel& model, ServeOptions opts)
    : model_(&model),
      opts_(opts),
      vocab_(model.config().vocab),
      arena_(model.parameters()),
      store_(arena_.size(), opts.snapshot_slots) {
  if (opts_.seq_len < 1) throw std::invalid_argument("LMServer: seq_len must be positive");
  if (opts_.max_batch < 1) throw std::invalid_argument("LMServer: max_batch must be positive");
  if (opts_.workers < 1) throw std::invalid_argument("LMServer: need at least one worker");
  if (opts_.queue_capacity < opts_.max_batch) {
    throw std::invalid_argument("LMServer: queue_capacity must cover one batch");
  }
  ring_.resize(static_cast<std::size_t>(opts_.queue_capacity), nullptr);
  store_.publish(arena_.values());
  threads_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

LMServer::~LMServer() { shutdown(); }

void LMServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;  // idempotent; the first caller drains and joins
    // 1. Close intake: infer() calls from here on are refused.
    stopping_ = true;
  }
  // 2. Drain: workers keep serving until the ring is empty (worker_loop
  //    exits only on `stopping_ && count_ == 0`), then join them.
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& th : threads_) th.join();
  // 3. Only now is the object quiescent; publish() starts refusing.
  stopped_.store(true, std::memory_order_release);
}

std::uint64_t LMServer::infer(std::span<const std::int64_t> tokens, std::span<double> logits_out) {
  if (stopped_.load(std::memory_order_acquire)) {
    throw std::logic_error("LMServer::infer after shutdown");
  }
  if (static_cast<std::int64_t>(tokens.size()) != opts_.seq_len) {
    throw std::invalid_argument("LMServer::infer: expected exactly seq_len tokens");
  }
  if (static_cast<std::int64_t>(logits_out.size()) != opts_.seq_len * vocab_) {
    throw std::invalid_argument("LMServer::infer: logits buffer must hold seq_len * vocab");
  }
  // Validate before enqueueing so a bad request cannot poison a coalesced
  // batch after a worker has already picked it up.
  for (const auto tok : tokens) {
    if (tok < 0 || tok >= vocab_) throw std::out_of_range("LMServer::infer: token out of range");
  }
  Request req;
  req.tokens = tokens;
  req.out = logits_out;
  {
    std::unique_lock<std::mutex> lk(mu_);
    space_cv_.wait(lk, [this] { return stopping_ || count_ < opts_.queue_capacity; });
    if (stopping_) throw std::runtime_error("LMServer::infer: server is shutting down");
    ring_[static_cast<std::size_t>((head_ + count_) % opts_.queue_capacity)] = &req;
    ++count_;
    // notify_all, not _one: a worker parked on the straggler wait must not
    // swallow the only wakeup another idle worker needs.
    queue_cv_.notify_all();
    done_cv_.wait(lk, [&req] { return req.done; });
  }
  return req.version;
}

ServeStats LMServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void LMServer::worker_loop() {
  // Each worker owns its forward plans (and its thread-local GEMM packing
  // workspace); warming here moves every allocation out of steady state.
  LMForward fwd(*model_, arena_, store_, opts_.seq_len, opts_.max_batch);
  {
    const auto pin = store_.acquire();
    fwd.warm_all(pin.slot());
  }
  const std::int64_t T = opts_.seq_len;
  const std::int64_t V = vocab_;
  std::vector<Request*> batch(static_cast<std::size_t>(opts_.max_batch), nullptr);
  std::vector<std::int64_t> tokens(static_cast<std::size_t>(opts_.max_batch * T), 0);

  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    queue_cv_.wait(lk, [this] { return stopping_ || count_ > 0; });
    if (count_ == 0) return;  // stopping and drained
    if (opts_.max_wait_us > 0 && count_ < opts_.max_batch) {
      // Straggler budget: hold the batch open briefly so concurrent
      // clients coalesce into one forward instead of max_batch of them.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::microseconds(opts_.max_wait_us);
      queue_cv_.wait_until(lk, deadline,
                           [this] { return stopping_ || count_ >= opts_.max_batch; });
    }
    const std::int64_t b = std::min(count_, opts_.max_batch);
    if (b == 0) continue;  // another worker drained the queue while we coalesced
    for (std::int64_t i = 0; i < b; ++i) {
      batch[static_cast<std::size_t>(i)] = ring_[static_cast<std::size_t>(head_)];
      head_ = (head_ + 1) % opts_.queue_capacity;
    }
    count_ -= b;
    space_cv_.notify_all();
    lk.unlock();

    for (std::int64_t i = 0; i < b; ++i) {
      const auto& src = batch[static_cast<std::size_t>(i)]->tokens;
      std::memcpy(tokens.data() + i * T, src.data(),
                  static_cast<std::size_t>(T) * sizeof(std::int64_t));
    }
    std::uint64_t version = 0;
    {
      auto pin = store_.acquire();
      version = pin.version();
      const auto& logits =
          fwd.forward(std::span<const std::int64_t>(tokens.data(),
                                                    static_cast<std::size_t>(b * T)),
                      b, pin.slot());
      // Request i owns rows [i*T, (i+1)*T) of the batched logits -- one
      // contiguous copy per request.
      for (std::int64_t i = 0; i < b; ++i) {
        std::memcpy(batch[static_cast<std::size_t>(i)]->out.data(),
                    logits.data().data() + i * T * V,
                    static_cast<std::size_t>(T * V) * sizeof(double));
      }
    }

    lk.lock();
    for (std::int64_t i = 0; i < b; ++i) {
      batch[static_cast<std::size_t>(i)]->version = version;
      batch[static_cast<std::size_t>(i)]->done = true;
    }
    stats_.requests += static_cast<std::uint64_t>(b);
    stats_.batches += 1;
    done_cv_.notify_all();
  }
}

}  // namespace yf::serve
