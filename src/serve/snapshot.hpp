// Versioned parameter snapshots for the serving engine (DESIGN.md §11).
//
// The trainer owns the live ParamArena and mutates it in place every
// step; inference must read a *consistent* parameter version without ever
// blocking the trainer (and without the trainer blocking inference). A
// SnapshotStore holds N flat copies of the arena value buffer ("slots")
// behind a pin/publish protocol:
//
//  * publish() (trainer thread, at a step boundary): claim a non-latest
//    slot whose pin count is zero, memcpy the arena values into it, stamp
//    a monotonically increasing version, and flip the `latest` index.
//    A pinned slot is skipped, never waited on -- with >= 3 slots there
//    is always a free one (latest + the draining previous latest + one
//    spare), so publish is wait-free in steady state.
//  * acquire() (serving threads): read `latest`, increment that slot's
//    pin count, then re-check the slot's `writing` flag. Under the
//    seq_cst total order this either (a) ordered the pin before the
//    writer's claim -- in which case the writer sees pins >= 1 and backs
//    off the slot -- or (b) observed writing == false *after* the copy
//    completed, so the slot is stable for the lifetime of the Pin.
//    No locks, no allocation, no blocking on the trainer.
//
// All protocol atomics use seq_cst: publishes happen at most once per
// training step and pins twice per served batch, so the fence cost is
// noise, and the invariant argument above stays simple enough to prove.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "tensor/tensor.hpp"

namespace yf::serve {

class SnapshotStore {
 public:
  /// `size` doubles per snapshot, `slots` >= 3 resident versions.
  explicit SnapshotStore(std::int64_t size, int slots = 4);

  /// RAII read pin on one published snapshot version. Movable, not
  /// copyable; an empty pin (default-constructed or acquired before the
  /// first publish) has version() == 0 and no data.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    bool valid() const { return store_ != nullptr; }
    std::uint64_t version() const { return version_; }
    int slot() const { return slot_; }
    std::span<const double> values() const;
    void release();

   private:
    friend class SnapshotStore;
    Pin(const SnapshotStore* store, int slot, std::uint64_t version)
        : store_(store), slot_(slot), version_(version) {}

    const SnapshotStore* store_ = nullptr;
    int slot_ = -1;
    std::uint64_t version_ = 0;
  };

  /// Copy `values` into a free slot and make it the latest snapshot.
  /// Returns the published version (1, 2, ...). Trainer-side; safe to
  /// call concurrently with any number of acquire()s. Allocation-free.
  std::uint64_t publish(std::span<const double> values);

  /// Pin the latest published snapshot (empty Pin before first publish).
  /// Never blocks on the trainer; lock- and allocation-free.
  Pin acquire() const;

  std::uint64_t latest_version() const;
  bool has_snapshot() const { return latest_version() > 0; }

  std::int64_t size() const { return size_; }
  int slot_count() const { return slot_count_; }

  /// Backing buffer of slot `s` (rank-1, `size()` doubles). The serving
  /// engine builds per-slot weight views into these once at startup; the
  /// views are only *read* while a Pin holds the slot.
  const tensor::Tensor& slot_buffer(int s) const { return slots_[static_cast<std::size_t>(s)].buf; }

 private:
  struct Slot {
    tensor::Tensor buf;
    std::atomic<std::uint64_t> version{0};
    mutable std::atomic<std::int32_t> pins{0};
    std::atomic<bool> writing{false};
  };

  std::int64_t size_;
  int slot_count_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<int> latest_{-1};
  std::atomic<std::uint64_t> version_counter_{0};
};

}  // namespace yf::serve
