#include "serve/lm_forward.hpp"

#include <array>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace yf::serve {

namespace t = yf::tensor;

namespace {

/// Shaped per-slot view of one arena parameter inside a snapshot buffer.
t::Tensor snapshot_view(const SnapshotStore& store, int slot, const core::ParamArena& arena,
                        std::size_t param_slot, t::Shape shape) {
  return t::Tensor::view_of(store.slot_buffer(slot), arena.offset(param_slot), std::move(shape));
}

}  // namespace

/// Per-batch-size buffer set. Persistent state (h/c) ping-pongs across
/// steps; everything else is single-step scratch reused for every (t, l).
struct LMForward::Plan {
  std::int64_t batch = 0;
  t::Tensor emb;                            ///< [b, E] current step embedding
  t::Tensor zx, zh, z, zb;                  ///< [b, 4H] gate projections
  std::array<t::Tensor, 4> slice;           ///< [b, H] gate pre-activations (i|f|g|o)
  std::array<t::Tensor, 4> act;             ///< [b, H] gate activations
  t::Tensor fc, ig, tc;                     ///< [b, H] cell-update scratch
  std::vector<std::array<t::Tensor, 2>> h;  ///< [L][2] ping-pong hidden state
  std::vector<std::array<t::Tensor, 2>> c;  ///< [L][2] ping-pong cell state
  t::Tensor zero_state;                     ///< [b, H] all-zero initial h/c
  t::Tensor sl, slb;                        ///< [b, V] step logits (slb: +bias)
  t::Tensor logits;                         ///< [b*T, V]
};

LMForward::LMForward(const nn::LSTMLanguageModel& model, const core::ParamArena& arena,
                     const SnapshotStore& store, std::int64_t seq_len, std::int64_t max_batch)
    : seq_len_(seq_len), max_batch_(max_batch), store_(&store) {
  if (seq_len < 1) throw std::invalid_argument("LMForward: seq_len must be positive");
  if (max_batch < 1) throw std::invalid_argument("LMForward: max_batch must be positive");
  const auto& cfg = model.config();
  vocab_ = cfg.vocab;
  embed_dim_ = cfg.embed_dim;
  hidden_ = cfg.hidden;
  layers_ = cfg.layers;
  tied_ = cfg.tie_weights;
  if (store.size() != arena.size()) {
    throw std::invalid_argument("LMForward: snapshot store does not match the arena");
  }

  // Map each weight Variable to its arena slot once, then build shaped
  // views into every snapshot buffer. Views alias the slot storage, so a
  // forward against slot s reads exactly the version pinned there.
  const auto embed_slot = arena.slot_index(model.embed().weight);
  slots_.reserve(static_cast<std::size_t>(store.slot_count()));
  for (int s = 0; s < store.slot_count(); ++s) {
    SlotWeights w;
    w.embed = snapshot_view(store, s, arena, embed_slot, {vocab_, embed_dim_});
    w.layers.reserve(static_cast<std::size_t>(layers_));
    for (std::int64_t l = 0; l < layers_; ++l) {
      const auto& cell = model.lstm().cell(l);
      const std::int64_t in = cell.input_size();
      LayerWeights lw;
      lw.w_x = snapshot_view(store, s, arena, arena.slot_index(cell.w_x), {in, 4 * hidden_});
      lw.w_h = snapshot_view(store, s, arena, arena.slot_index(cell.w_h), {hidden_, 4 * hidden_});
      lw.b = snapshot_view(store, s, arena, arena.slot_index(cell.b), {4 * hidden_});
      w.layers.push_back(std::move(lw));
    }
    if (const auto* out = model.out_layer()) {
      w.w_out = snapshot_view(store, s, arena, arena.slot_index(out->weight), {hidden_, vocab_});
      w.b_out = snapshot_view(store, s, arena, arena.slot_index(out->bias), {vocab_});
    }
    slots_.push_back(std::move(w));
  }
  plans_.resize(static_cast<std::size_t>(max_batch_));
}

LMForward::~LMForward() = default;

LMForward::Plan& LMForward::plan(std::int64_t batch) {
  auto& slot = plans_[static_cast<std::size_t>(batch - 1)];
  if (slot) return *slot;
  auto p = std::make_unique<Plan>();
  p->batch = batch;
  const auto b = batch;
  p->emb = ws_.acquire({b, embed_dim_});
  p->zx = ws_.acquire({b, 4 * hidden_});
  p->zh = ws_.acquire({b, 4 * hidden_});
  p->z = ws_.acquire({b, 4 * hidden_});
  p->zb = ws_.acquire({b, 4 * hidden_});
  for (auto& s : p->slice) s = ws_.acquire({b, hidden_});
  for (auto& a : p->act) a = ws_.acquire({b, hidden_});
  p->fc = ws_.acquire({b, hidden_});
  p->ig = ws_.acquire({b, hidden_});
  p->tc = ws_.acquire({b, hidden_});
  p->h.resize(static_cast<std::size_t>(layers_));
  p->c.resize(static_cast<std::size_t>(layers_));
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (int k = 0; k < 2; ++k) {
      p->h[static_cast<std::size_t>(l)][k] = ws_.acquire({b, hidden_});
      p->c[static_cast<std::size_t>(l)][k] = ws_.acquire({b, hidden_});
    }
  }
  p->zero_state = ws_.acquire({b, hidden_});  // acquired zero-filled, never written
  p->sl = ws_.acquire({b, vocab_});
  if (!tied_) p->slb = ws_.acquire({b, vocab_});
  p->logits = ws_.acquire({b * seq_len_, vocab_});
  slot = std::move(p);
  return *slot;
}

const t::Tensor& LMForward::forward(std::span<const std::int64_t> tokens, std::int64_t batch,
                                    int slot) {
  if (batch < 1 || batch > max_batch_) throw std::invalid_argument("LMForward: bad batch size");
  if (static_cast<std::int64_t>(tokens.size()) != batch * seq_len_) {
    throw std::invalid_argument("LMForward: token count mismatch");
  }
  for (const auto tok : tokens) {
    if (tok < 0 || tok >= vocab_) throw std::out_of_range("LMForward: token out of range");
  }
  Plan& p = plan(batch);
  const SlotWeights& W = slots_[static_cast<std::size_t>(slot)];
  const auto H = hidden_, E = embed_dim_, V = vocab_, T = seq_len_;
  const auto& embed = W.embed;

  for (std::int64_t tstep = 0; tstep < T; ++tstep) {
    // Embedding gather of token column t (same loop as autograd::embedding).
    for (std::int64_t bi = 0; bi < batch; ++bi) {
      const auto idx = tokens[static_cast<std::size_t>(bi * T + tstep)];
      for (std::int64_t j = 0; j < E; ++j) p.emb[bi * E + j] = embed[idx * E + j];
    }
    const t::Tensor* x = &p.emb;
    for (std::int64_t l = 0; l < layers_; ++l) {
      const auto lu = static_cast<std::size_t>(l);
      const LayerWeights& lw = W.layers[lu];
      const t::Tensor& h_prev = tstep == 0 ? p.zero_state : p.h[lu][(tstep - 1) & 1];
      const t::Tensor& c_prev = tstep == 0 ? p.zero_state : p.c[lu][(tstep - 1) & 1];
      t::Tensor& h_next = p.h[lu][tstep & 1];
      t::Tensor& c_next = p.c[lu][tstep & 1];
      // z = x @ w_x + h_prev @ w_h + b  (LSTMCell::forward kernel order).
      t::matmul_into(p.zx, *x, lw.w_x);
      t::matmul_into(p.zh, h_prev, lw.w_h);
      t::add_into(p.z, p.zx, p.zh);
      t::add_row_broadcast_into(p.zb, p.z, lw.b);
      // Gate slices (autograd::slice_cols loop) and activations, i|f|g|o.
      for (int g = 0; g < 4; ++g) {
        auto& sl = p.slice[static_cast<std::size_t>(g)];
        for (std::int64_t i = 0; i < batch; ++i)
          for (std::int64_t j = 0; j < H; ++j) sl[i * H + j] = p.zb[i * 4 * H + g * H + j];
      }
      t::sigmoid_into(p.act[0], p.slice[0]);  // i
      t::sigmoid_into(p.act[1], p.slice[1]);  // f
      t::tanh_into(p.act[2], p.slice[2]);     // g
      t::sigmoid_into(p.act[3], p.slice[3]);  // o
      // c = f*c_prev + i*g;  h = o * tanh(c).
      t::mul_into(p.fc, p.act[1], c_prev);
      t::mul_into(p.ig, p.act[0], p.act[2]);
      t::add_into(c_next, p.fc, p.ig);
      t::tanh_into(p.tc, c_next);
      t::mul_into(h_next, p.act[3], p.tc);
      x = &h_next;
    }
    // Output projection of the top-layer h, then scatter into the final
    // [b*T, V] layout (row = b*T + t), matching concat_cols + reshape.
    const t::Tensor* step_logits;
    if (tied_) {
      t::matmul_nt_into(p.sl, *x, embed);
      step_logits = &p.sl;
    } else {
      t::matmul_into(p.sl, *x, W.w_out);
      t::add_row_broadcast_into(p.slb, p.sl, W.b_out);
      step_logits = &p.slb;
    }
    for (std::int64_t bi = 0; bi < batch; ++bi) {
      const std::int64_t row = bi * T + tstep;
      for (std::int64_t j = 0; j < V; ++j) p.logits[row * V + j] = (*step_logits)[bi * V + j];
    }
  }
  return p.logits;
}

void LMForward::warm_all(int slot) {
  std::vector<std::int64_t> zeros(static_cast<std::size_t>(max_batch_ * seq_len_), 0);
  for (std::int64_t b = 1; b <= max_batch_; ++b) {
    forward(std::span<const std::int64_t>(zeros.data(), static_cast<std::size_t>(b * seq_len_)),
            b, slot);
  }
}

}  // namespace yf::serve
