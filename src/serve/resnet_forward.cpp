#include "serve/resnet_forward.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace yf::serve {

namespace t = yf::tensor;

namespace {

std::vector<t::Tensor> slot_views(const SnapshotStore& store, const core::ParamArena& arena,
                                  const autograd::Variable& param, t::Shape shape) {
  const auto slot = arena.slot_index(param);
  std::vector<t::Tensor> views;
  views.reserve(static_cast<std::size_t>(store.slot_count()));
  for (int s = 0; s < store.slot_count(); ++s) {
    views.push_back(t::Tensor::view_of(store.slot_buffer(s), arena.offset(slot), shape));
  }
  return views;
}

}  // namespace

ResNetForward::ResNetForward(const nn::MiniResNet& model, const core::ParamArena& arena,
                             const SnapshotStore& store, std::int64_t batch, std::int64_t height,
                             std::int64_t width)
    : batch_(batch),
      in_channels_(model.stem().weight.value().dim(1)),
      height_(height),
      width_(width),
      num_classes_(model.head().out_features()),
      store_(&store) {
  if (batch < 1) throw std::invalid_argument("ResNetForward: batch must be positive");
  if (height < 1 || width < 1) throw std::invalid_argument("ResNetForward: bad image geometry");
  if (store.size() != arena.size()) {
    throw std::invalid_argument("ResNetForward: snapshot store does not match the arena");
  }

  stem_ = make_conv(model.stem(), arena, batch_, in_channels_, height_, width_);
  if (const auto* bn = model.stem_bn()) {
    stem_bn_ = std::make_unique<BnStep>(make_bn(*bn, arena, stem_.d));
  }
  stem_relu_ = ws_.acquire({batch_, stem_.d.f, stem_.d.oh, stem_.d.ow});

  std::int64_t c = stem_.d.f, h = stem_.d.oh, w = stem_.d.ow;
  blocks_.reserve(model.blocks().size());
  for (const auto& block : model.blocks()) {
    BlockStep bs;
    bs.residual_scale = block->residual_scale();
    bs.conv1 = make_conv(block->conv1(), arena, batch_, c, h, w);
    const core::Conv2dDims& d1 = bs.conv1.d;
    bs.relu1 = ws_.acquire({batch_, d1.f, d1.oh, d1.ow});
    bs.conv2 = make_conv(block->conv2(), arena, batch_, d1.f, d1.oh, d1.ow);
    const core::Conv2dDims& d2 = bs.conv2.d;
    if (const auto* bn = block->bn1()) bs.bn1 = std::make_unique<BnStep>(make_bn(*bn, arena, d1));
    if (const auto* bn = block->bn2()) bs.bn2 = std::make_unique<BnStep>(make_bn(*bn, arena, d2));
    if (const auto* proj = block->proj()) {
      bs.proj = std::make_unique<ConvStep>(make_conv(*proj, arena, batch_, c, h, w));
    }
    if (!bs.bn1) bs.scaled = ws_.acquire({batch_, d2.f, d2.oh, d2.ow});
    bs.sum = ws_.acquire({batch_, d2.f, d2.oh, d2.ow});
    bs.out = ws_.acquire({batch_, d2.f, d2.oh, d2.ow});
    c = d2.f;
    h = d2.oh;
    w = d2.ow;
    blocks_.push_back(std::move(bs));
  }

  pooled_ = ws_.acquire({batch_, c});
  head_mm_ = ws_.acquire({batch_, num_classes_});
  logits_ = ws_.acquire({batch_, num_classes_});
  head_w_ = slot_views(store, arena, model.head().weight, {c, num_classes_});
  head_b_ = slot_views(store, arena, model.head().bias, {num_classes_});
}

ResNetForward::ConvStep ResNetForward::make_conv(const nn::Conv2d& conv,
                                                 const core::ParamArena& arena, std::int64_t n,
                                                 std::int64_t c, std::int64_t h, std::int64_t w) {
  const auto& wt = conv.weight.value();
  ConvStep s;
  s.d = core::conv2d_dims(n, c, h, w, wt.dim(0), wt.dim(2), wt.dim(3), conv.stride(), conv.pad());
  const std::int64_t ckk = s.d.c * s.d.kh * s.d.kw;
  const std::int64_t rows = s.d.n * s.d.oh * s.d.ow;
  s.wmat = slot_views(*store_, arena, conv.weight, {s.d.f, ckk});
  s.bias = slot_views(*store_, arena, conv.bias, {s.d.f});
  s.col = ws_.acquire({rows, ckk});
  s.outmat = ws_.acquire({rows, s.d.f});
  s.out = ws_.acquire({s.d.n, s.d.f, s.d.oh, s.d.ow});
  return s;
}

ResNetForward::BnStep ResNetForward::make_bn(const nn::BatchNorm2d& bn,
                                             const core::ParamArena& arena,
                                             const core::Conv2dDims& d) {
  BnStep s;
  s.n = d.n;
  s.c = d.f;
  s.h = d.oh;
  s.w = d.ow;
  s.eps = bn.eps();
  s.gamma = slot_views(*store_, arena, bn.gamma, {s.c});
  s.beta = slot_views(*store_, arena, bn.beta, {s.c});
  s.mean = ws_.acquire({s.c});
  s.inv_std = ws_.acquire({s.c});
  s.xhat = ws_.acquire({s.n, s.c, s.h, s.w});
  s.out = ws_.acquire({s.n, s.c, s.h, s.w});
  return s;
}

const t::Tensor& ResNetForward::run_conv(ConvStep& s, const t::Tensor& x, int slot) {
  core::im2col_into(s.col, x, s.d);
  t::matmul_nt_into(s.outmat, s.col, s.wmat[static_cast<std::size_t>(slot)]);
  core::conv2d_bias_nchw_into(s.out, s.outmat, s.bias[static_cast<std::size_t>(slot)], s.d);
  return s.out;
}

const t::Tensor& ResNetForward::run_bn(BnStep& s, const t::Tensor& x, int slot) {
  core::batchnorm2d_stats_into(s.mean, s.inv_std, x, s.n, s.c, s.h, s.w, s.eps);
  core::batchnorm2d_normalize_into(s.out, s.xhat, x, s.gamma[static_cast<std::size_t>(slot)],
                                   s.beta[static_cast<std::size_t>(slot)], s.mean, s.inv_std, s.n,
                                   s.c, s.h, s.w);
  return s.out;
}

const t::Tensor& ResNetForward::forward(const t::Tensor& images, int slot) {
  if (images.ndim() != 4 || images.dim(0) != batch_ || images.dim(1) != in_channels_ ||
      images.dim(2) != height_ || images.dim(3) != width_) {
    throw std::invalid_argument("ResNetForward: image shape mismatch");
  }
  // Stem: conv -> (BN) -> relu, exactly MiniResNet::forward.
  const t::Tensor* x = &run_conv(stem_, images, slot);
  if (stem_bn_) x = &run_bn(*stem_bn_, *x, slot);
  t::relu_into(stem_relu_, *x);
  x = &stem_relu_;

  // Residual blocks, mirroring ResidualBlock::forward.
  for (auto& bs : blocks_) {
    const t::Tensor* branch = &run_conv(bs.conv1, *x, slot);
    if (bs.bn1) branch = &run_bn(*bs.bn1, *branch, slot);
    t::relu_into(bs.relu1, *branch);
    branch = &run_conv(bs.conv2, bs.relu1, slot);
    if (bs.bn2) branch = &run_bn(*bs.bn2, *branch, slot);
    if (!bs.bn1) {
      t::mul_scalar_into(bs.scaled, *branch, bs.residual_scale);
      branch = &bs.scaled;
    }
    const t::Tensor* skip = bs.proj ? &run_conv(*bs.proj, *x, slot) : x;
    t::add_into(bs.sum, *skip, *branch);
    t::relu_into(bs.out, bs.sum);
    x = &bs.out;
  }

  // Head: global average pool -> linear.
  core::global_avg_pool_into(pooled_, *x, x->dim(0), x->dim(1), x->dim(2), x->dim(3));
  t::matmul_into(head_mm_, pooled_, head_w_[static_cast<std::size_t>(slot)]);
  t::add_row_broadcast_into(logits_, head_mm_, head_b_[static_cast<std::size_t>(slot)]);
  return logits_;
}

void ResNetForward::warm(int slot) {
  t::Tensor zeros({batch_, in_channels_, height_, width_});
  forward(zeros, slot);
}

}  // namespace yf::serve
