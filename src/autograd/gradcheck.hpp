// Finite-difference gradient checking, used throughout the test suite to
// validate every differentiable op and every nn layer.
#pragma once

#include <functional>
#include <vector>

#include "autograd/variable.hpp"

namespace yf::autograd {

struct GradcheckResult {
  bool ok = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  ///< first failing coordinate, for diagnostics
};

/// Check d(fn(inputs))/d(inputs) against central finite differences.
///
/// `fn` must build a fresh graph from the given leaf variables and return a
/// scalar output. Each input is perturbed coordinate-wise with step `eps`.
GradcheckResult gradcheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double eps = 1e-5, double atol = 1e-6, double rtol = 1e-4);

}  // namespace yf::autograd
