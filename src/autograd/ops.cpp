#include "autograd/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "autograd/tape.hpp"
#include "core/conv_math.hpp"
#include "core/kernels.hpp"
#include "core/kernels/kernel_table.hpp"
#include "tensor/ops.hpp"

// Every op here follows the same shape (DESIGN.md §8):
//
//   1. validate inputs and compute the output dimensions;
//   2. obtain a Frame via make_frame(): on an active GraphTape this
//      match-or-creates the cached node at the cursor (zero allocation on
//      a match), otherwise it builds a fresh heap node;
//   3. compute the value *into* the frame's output tensor through the
//      `_into` tensor kernels -- never into a fresh temporary;
//   4. when the frame is fresh (first recording / heap path), allocate
//      any backward scratch via make_scratch() and install the pullback
//      closure. Closures are built once per node and reused on replay.
//
// Numerical contract: each pullback performs the exact per-element
// operation sequence of the historical implementation (same multiply/add
// order, same kernel calls), so gradients are bit-identical between the
// tape path and the per-step heap path.

namespace yf::autograd {

namespace t = yf::tensor;

namespace {

std::span<const std::int64_t> dims_of(const t::Tensor& x) {
  return {x.shape().data(), x.shape().size()};
}

/// Mark a fresh node as fusible (DESIGN.md §13): a single-output pointwise
/// op with no cross-element reads, eligible for the tape's fused-sweep
/// pass. The tag is the step opcode the chain compiler emits for it.
void tag_fusible(GraphTape::Frame& f, core::detail::FusedOpKind kind) {
  if (f.fresh) f.node->fuse_kind = static_cast<std::uint8_t>(kind) + 1;
}

/// Output dims of a variable that may be a bufferless fused-chain
/// interior (its dropped value's shape lives in Node::fuse_dims). The
/// fusible ops use this for validation and frame dims so consuming a
/// chain predecessor never dereferences -- or materializes -- its value.
std::span<const std::int64_t> dims_of_var(const Variable& v) {
  const Node* n = v.node().get();
  if (n->fuse_skip) return {n->fuse_dims.data(), n->fuse_dims.size()};
  return dims_of(n->value);
}

/// Shape equality over dims spans; the fuse-aware twin of
/// tensor::check_same_shape.
void check_same_dims(std::span<const std::int64_t> a, std::span<const std::int64_t> b,
                     const char* what) {
  if (a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin())) return;
  throw std::invalid_argument(std::string(what) + ": shape mismatch");
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  check_same_dims(dims_of_var(a), dims_of_var(b), "autograd::add");
  auto an = a.node();
  auto bn = b.node();
  const NodePtr parents[] = {an, bn};
  auto f = make_frame("add", parents, dims_of_var(a));
  tag_fusible(f, core::detail::FusedOpKind::kAdd);
  if (!f.skip_compute) t::add_into(f.node->value, a.value(), b.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, bn](Node& n) {
      an->accumulate_grad(n.grad);
      bn->accumulate_grad(n.grad);
    };
  }
  return Variable(std::move(f.handle));
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_dims(dims_of_var(a), dims_of_var(b), "autograd::sub");
  auto an = a.node();
  auto bn = b.node();
  const NodePtr parents[] = {an, bn};
  auto f = make_frame("sub", parents, dims_of_var(a));
  tag_fusible(f, core::detail::FusedOpKind::kSub);
  if (!f.skip_compute) t::sub_into(f.node->value, a.value(), b.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, bn](Node& n) {
      an->accumulate_grad(n.grad);
      if (bn->requires_grad) bn->ensure_grad().add_(n.grad, -1.0);
    };
  }
  return Variable(std::move(f.handle));
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_dims(dims_of_var(a), dims_of_var(b), "autograd::mul");
  auto an = a.node();
  auto bn = b.node();
  const NodePtr parents[] = {an, bn};
  auto f = make_frame("mul", parents, dims_of_var(a));
  tag_fusible(f, core::detail::FusedOpKind::kMul);
  if (!f.skip_compute) t::mul_into(f.node->value, a.value(), b.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, bn](Node& n) {
      const auto og = n.grad.data();
      if (an->requires_grad) {
        auto g = an->ensure_grad().data();
        const auto bv = bn->value.data();
        for (std::size_t i = 0; i < g.size(); ++i) g[i] += og[i] * bv[i];
      }
      if (bn->requires_grad) {
        auto g = bn->ensure_grad().data();
        const auto av = an->value.data();
        for (std::size_t i = 0; i < g.size(); ++i) g[i] += og[i] * av[i];
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.0); }

Variable add_scalar(const Variable& a, double s) {
  auto an = a.node();
  const NodePtr parents[] = {an};
  const double attrs[] = {s};
  auto f = make_frame("add_scalar", parents, dims_of_var(a), attrs);
  tag_fusible(f, core::detail::FusedOpKind::kAddScalar);
  if (!f.skip_compute) t::add_scalar_into(f.node->value, a.value(), s);
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an](Node& n) { an->accumulate_grad(n.grad); };
  }
  return Variable(std::move(f.handle));
}

Variable mul_scalar(const Variable& a, double s) {
  auto an = a.node();
  const NodePtr parents[] = {an};
  const double attrs[] = {s};
  auto f = make_frame("mul_scalar", parents, dims_of_var(a), attrs);
  tag_fusible(f, core::detail::FusedOpKind::kMulScalar);
  if (!f.skip_compute) t::mul_scalar_into(f.node->value, a.value(), s);
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, s](Node& n) {
      if (an->requires_grad) an->ensure_grad().add_(n.grad, s);
    };
  }
  return Variable(std::move(f.handle));
}

namespace {

/// Helper for unary elementwise ops whose local derivative is a function of
/// the *output* value (tanh, sigmoid, exp) or the *input* value.
template <typename DFn>
Variable unary_op(const Variable& a, const char* sig,
                  void (*compute_into)(t::Tensor&, const t::Tensor&), DFn dfn,
                  core::detail::FusedOpKind kind) {
  auto an = a.node();
  const NodePtr parents[] = {an};
  auto f = make_frame(sig, parents, dims_of_var(a));
  tag_fusible(f, kind);
  if (!f.skip_compute) compute_into(f.node->value, a.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, dfn](Node& n) {
      if (!an->requires_grad) return;
      auto& g = an->ensure_grad();
      auto gd = g.data();
      auto og = n.grad.data();
      auto ov = n.value.data();
      auto iv = an->value.data();
      for (std::size_t i = 0; i < gd.size(); ++i) gd[i] += og[i] * dfn(iv[i], ov[i]);
    };
  }
  return Variable(std::move(f.handle));
}

}  // namespace

Variable relu(const Variable& a) {
  return unary_op(
      a, "relu", t::relu_into, [](double x, double) { return x > 0.0 ? 1.0 : 0.0; },
      core::detail::FusedOpKind::kRelu);
}

Variable tanh(const Variable& a) {
  return unary_op(
      a, "tanh", t::tanh_into, [](double, double y) { return 1.0 - y * y; },
      core::detail::FusedOpKind::kTanh);
}

Variable sigmoid(const Variable& a) {
  return unary_op(
      a, "sigmoid", t::sigmoid_into, [](double, double y) { return y * (1.0 - y); },
      core::detail::FusedOpKind::kSigmoid);
}

Variable exp(const Variable& a) {
  return unary_op(
      a, "exp", t::exp_into, [](double, double y) { return y; },
      core::detail::FusedOpKind::kExp);
}

Variable log(const Variable& a) {
  return unary_op(
      a, "log", t::log_into, [](double x, double) { return 1.0 / x; },
      core::detail::FusedOpKind::kLog);
}

Variable square(const Variable& a) {
  return unary_op(
      a, "square", t::square_into, [](double x, double) { return 2.0 * x; },
      core::detail::FusedOpKind::kSquare);
}

Variable sum(const Variable& a) {
  auto an = a.node();
  const NodePtr parents[] = {an};
  const std::int64_t one[] = {1};
  auto f = make_frame("sum", parents, one);
  f.node->value[0] = t::sum(a.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an](Node& n) {
      if (!an->requires_grad) return;
      auto g = an->ensure_grad().data();
      const double s = n.grad[0];
      for (std::size_t i = 0; i < g.size(); ++i) g[i] += s;
    };
  }
  return Variable(std::move(f.handle));
}

Variable mean(const Variable& a) {
  // Validate before recording: a throw after make_frame would leave a
  // half-built node on the tape for later steps to replay.
  if (a.value().size() == 0) throw std::invalid_argument("mean: empty tensor");
  auto an = a.node();
  const double inv = 1.0 / static_cast<double>(a.value().size());
  const NodePtr parents[] = {an};
  const std::int64_t one[] = {1};
  auto f = make_frame("mean", parents, one);
  f.node->value[0] = t::mean(a.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, inv](Node& n) {
      if (!an->requires_grad) return;
      auto g = an->ensure_grad().data();
      const double s = n.grad[0] * inv;
      for (std::size_t i = 0; i < g.size(); ++i) g[i] += s;
    };
  }
  return Variable(std::move(f.handle));
}

Variable reshape(const Variable& a, std::span<const std::int64_t> dims) {
  std::int64_t total = 1;
  for (auto d : dims) total *= d;
  if (total != a.value().size()) {
    throw std::invalid_argument("autograd::reshape: cannot reshape " +
                                t::to_string(a.value().shape()) + " to the requested dims");
  }
  auto an = a.node();
  const NodePtr parents[] = {an};
  auto f = make_frame("reshape", parents, dims);
  // A copy, not a view: the node's value must not alias the parent's
  // storage. The pullback just flows the (flat) grad back.
  t::copy_into(f.node->value, a.value());
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an](Node& n) {
      if (an->requires_grad) core::axpy(an->ensure_grad().data(), n.grad.data(), 1.0);
    };
  }
  return Variable(std::move(f.handle));
}

Variable reshape(const Variable& a, std::initializer_list<std::int64_t> dims) {
  return reshape(a, std::span<const std::int64_t>(dims.begin(), dims.size()));
}

Variable reshape(const Variable& a, t::Shape new_shape) {
  return reshape(a, std::span<const std::int64_t>(new_shape.data(), new_shape.size()));
}

Variable zeros(std::span<const std::int64_t> dims) {
  auto f = make_frame("zeros", {}, dims);
  // Freshly acquired buffers are zero-filled; nothing ever writes a
  // constant node's value, so a replayed node is still all zeros.
  return Variable(std::move(f.handle));
}

Variable zeros(std::initializer_list<std::int64_t> dims) {
  return zeros(std::span<const std::int64_t>(dims.begin(), dims.size()));
}

Variable slice_cols(const Variable& a, std::int64_t col_begin, std::int64_t col_end) {
  const auto& v = a.value();
  if (v.ndim() != 2) throw std::invalid_argument("slice_cols: expected 2-D input");
  const auto m = v.dim(0), ncols = v.dim(1);
  if (col_begin < 0 || col_end > ncols || col_begin >= col_end) {
    throw std::invalid_argument("slice_cols: bad range [" + std::to_string(col_begin) + ", " +
                                std::to_string(col_end) + ") for " + t::to_string(v.shape()));
  }
  const auto w = col_end - col_begin;
  auto an = a.node();
  const NodePtr parents[] = {an};
  const std::int64_t dims[] = {m, w};
  const double attrs[] = {static_cast<double>(col_begin), static_cast<double>(col_end)};
  auto f = make_frame("slice_cols", parents, dims, attrs);
  auto& out = f.node->value;
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < w; ++j) out[i * w + j] = v[i * ncols + col_begin + j];
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, col_begin, w, ncols, m](Node& n) {
      if (!an->requires_grad) return;
      auto& g = an->ensure_grad();
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < w; ++j) g[i * ncols + col_begin + j] += n.grad[i * w + j];
    };
  }
  return Variable(std::move(f.handle));
}

Variable concat_cols(const std::vector<Variable>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: no inputs");
  const auto m = parts[0].value().dim(0);
  std::int64_t total = 0;
  for (const auto& p : parts) {
    if (p.value().ndim() != 2 || p.value().dim(0) != m) {
      throw std::invalid_argument("concat_cols: inputs must be 2-D with equal row counts");
    }
    total += p.value().dim(1);
  }
  // Reused per-thread parent scratch: concat is called every step with a
  // seq-length worth of parts, and a fresh vector each call would be a
  // steady-state allocation. Cleared before return so no handles linger.
  static thread_local std::vector<NodePtr> parent_scratch;
  parent_scratch.clear();
  for (const auto& p : parts) parent_scratch.push_back(p.node());

  const std::int64_t dims[] = {m, total};
  auto f = make_frame("concat_cols", parent_scratch, dims);
  auto& out = f.node->value;
  std::int64_t off = 0;
  for (const auto& p : parts) {
    const auto w = p.value().dim(1);
    const auto& pv = p.value();
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < w; ++j) out[i * total + off + j] = pv[i * w + j];
    off += w;
  }
  if (f.fresh && f.node->requires_grad) {
    std::vector<NodePtr> parents = parent_scratch;
    std::vector<std::int64_t> widths;
    widths.reserve(parts.size());
    for (const auto& p : parts) widths.push_back(p.value().dim(1));
    f.node->backward_fn = [parents, widths, m, total](Node& n) {
      std::int64_t off2 = 0;
      for (std::size_t k = 0; k < parents.size(); ++k) {
        const auto w = widths[k];
        if (parents[k]->requires_grad) {
          auto& g = parents[k]->ensure_grad();
          for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < w; ++j) g[i * w + j] += n.grad[i * total + off2 + j];
        }
        off2 += w;
      }
    };
  }
  parent_scratch.clear();
  return Variable(std::move(f.handle));
}

Variable matmul(const Variable& a, const Variable& b) {
  const auto& av = a.value();
  const auto& bv = b.value();
  if (av.ndim() != 2 || bv.ndim() != 2) {
    throw std::invalid_argument("matmul: expected 2-D tensors, got " + t::to_string(av.shape()) +
                                " and " + t::to_string(bv.shape()));
  }
  if (av.dim(1) != bv.dim(0)) {
    throw std::invalid_argument("matmul: inner dimension mismatch " + t::to_string(av.shape()) +
                                " vs " + t::to_string(bv.shape()));
  }
  const auto m = av.dim(0), k = av.dim(1), n = bv.dim(1);
  auto an = a.node();
  auto bn = b.node();
  const NodePtr parents[] = {an, bn};
  const std::int64_t dims[] = {m, n};
  auto f = make_frame("matmul", parents, dims);
  t::matmul_into(f.node->value, av, bv);
  if (f.fresh && f.node->requires_grad) {
    // dA = dC @ Bᵀ via the NT variant, dB = Aᵀ @ dC via TN: the packing
    // step absorbs the transpose, so the only scratch left is the
    // product buffer each gradient accumulates from.
    t::Tensor dA, dB;
    if (an->requires_grad) dA = make_scratch({m, k});
    if (bn->requires_grad) dB = make_scratch({k, n});
    f.node->backward_fn = [an, bn, dA, dB](Node& nn) mutable {
      if (an->requires_grad) {
        t::matmul_nt_into(dA, nn.grad, bn->value);
        an->ensure_grad().add_(dA);
      }
      if (bn->requires_grad) {
        t::matmul_tn_into(dB, an->value, nn.grad);
        bn->ensure_grad().add_(dB);
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable matmul_nt(const Variable& a, const Variable& b) {
  const auto& av = a.value();
  const auto& bv = b.value();
  if (av.ndim() != 2 || bv.ndim() != 2) {
    throw std::invalid_argument("matmul_nt: expected 2-D tensors, got " +
                                t::to_string(av.shape()) + " and " + t::to_string(bv.shape()));
  }
  if (av.dim(1) != bv.dim(1)) {
    throw std::invalid_argument("matmul_nt: inner dimension mismatch " +
                                t::to_string(av.shape()) + " vs " + t::to_string(bv.shape()));
  }
  const auto m = av.dim(0), k = av.dim(1), n = bv.dim(0);
  auto an = a.node();
  auto bn = b.node();
  const NodePtr parents[] = {an, bn};
  const std::int64_t dims[] = {m, n};
  auto f = make_frame("matmul_nt", parents, dims);
  t::matmul_nt_into(f.node->value, av, bv);
  if (f.fresh && f.node->requires_grad) {
    // C = A Bᵀ: dA = dC @ B (plain NN), dB = dCᵀ @ A (TN).
    t::Tensor dA, dB;
    if (an->requires_grad) dA = make_scratch({m, k});
    if (bn->requires_grad) dB = make_scratch({n, k});
    f.node->backward_fn = [an, bn, dA, dB](Node& nn) mutable {
      if (an->requires_grad) {
        t::matmul_into(dA, nn.grad, bn->value);
        an->ensure_grad().add_(dA);
      }
      if (bn->requires_grad) {
        t::matmul_tn_into(dB, nn.grad, an->value);
        bn->ensure_grad().add_(dB);
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable transpose(const Variable& a) {
  const auto& v = a.value();
  if (v.ndim() != 2) {
    throw std::invalid_argument("transpose: expected 2-D tensor, got " + t::to_string(v.shape()));
  }
  const auto m = v.dim(0), n = v.dim(1);
  auto an = a.node();
  const NodePtr parents[] = {an};
  const std::int64_t dims[] = {n, m};
  auto f = make_frame("transpose", parents, dims);
  t::transpose_into(f.node->value, v);
  if (f.fresh && f.node->requires_grad) {
    t::Tensor gT = make_scratch({m, n});
    f.node->backward_fn = [an, gT](Node& nn) mutable {
      if (!an->requires_grad) return;
      t::transpose_into(gT, nn.grad);
      an->ensure_grad().add_(gT);
    };
  }
  return Variable(std::move(f.handle));
}

Variable add_row_broadcast(const Variable& a, const Variable& bias) {
  const auto& av = a.value();
  auto an = a.node();
  auto bn = bias.node();
  const NodePtr parents[] = {an, bn};
  auto f = make_frame("add_row_broadcast", parents, dims_of(av));
  t::add_row_broadcast_into(f.node->value, av, bias.value());
  if (f.fresh && f.node->requires_grad) {
    t::Tensor colsum;
    if (bn->requires_grad) colsum = make_scratch({av.dim(1)});
    f.node->backward_fn = [an, bn, colsum](Node& n) mutable {
      an->accumulate_grad(n.grad);
      if (bn->requires_grad) {
        t::sum_rows_into(colsum, n.grad);
        bn->ensure_grad().add_(colsum);
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable softmax(const Variable& logits) {
  const auto& v = logits.value();
  if (v.ndim() != 2) throw std::invalid_argument("softmax: expected 2-D logits");
  const auto m = v.dim(0), c = v.dim(1);
  auto an = logits.node();
  const NodePtr parents[] = {an};
  auto f = make_frame("softmax", parents, dims_of(v));
  auto& probs = f.node->value;
  for (std::int64_t i = 0; i < m; ++i) {
    double mx = -1e300;
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, v[i * c + j]);
    double z = 0.0;
    for (std::int64_t j = 0; j < c; ++j) z += std::exp(v[i * c + j] - mx);
    for (std::int64_t j = 0; j < c; ++j) probs[i * c + j] = std::exp(v[i * c + j] - mx) / z;
  }
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [an, m, c](Node& n) {
      if (!an->requires_grad) return;
      // dL/dx_j = p_j * (g_j - sum_k g_k p_k) per row.
      auto& g = an->ensure_grad();
      for (std::int64_t i = 0; i < m; ++i) {
        double dotgp = 0.0;
        for (std::int64_t k = 0; k < c; ++k) dotgp += n.grad[i * c + k] * n.value[i * c + k];
        for (std::int64_t j = 0; j < c; ++j)
          g[i * c + j] += n.value[i * c + j] * (n.grad[i * c + j] - dotgp);
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable softmax_cross_entropy(const Variable& logits, const std::vector<std::int64_t>& labels) {
  const auto& v = logits.value();
  if (v.ndim() != 2) throw std::invalid_argument("softmax_cross_entropy: expected 2-D logits");
  const auto m = v.dim(0), c = v.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != m) {
    throw std::invalid_argument("softmax_cross_entropy: batch " + std::to_string(m) + " vs " +
                                std::to_string(labels.size()) + " labels");
  }
  // Validate before recording: a throw after make_frame would leave a
  // half-built (closure-less) node on the tape for later steps to replay.
  for (const auto y : labels) {
    if (y < 0 || y >= c) throw std::out_of_range("softmax_cross_entropy: label out of range");
  }
  auto an = logits.node();
  const NodePtr parents[] = {an};
  const std::int64_t one[] = {1};
  auto f = make_frame("softmax_cross_entropy", parents, one);
  if (f.fresh) f.node->scratch.push_back(make_scratch({m, c}));  // cached probabilities
  // Labels change every step: refresh the node's integer payload on both
  // fresh recording and replay.
  f.node->ints.assign(labels.begin(), labels.end());

  // Forward: mean_i [ logsumexp(x_i) - x_i[y_i] ]. Cache probabilities for
  // the pullback: d/dx = (softmax(x) - onehot(y)) / m.
  t::Tensor& probs = f.node->scratch[0];
  double loss = 0.0;
  for (std::int64_t i = 0; i < m; ++i) {
    const auto y = labels[static_cast<std::size_t>(i)];
    double mx = -1e300;
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, v[i * c + j]);
    double z = 0.0;
    for (std::int64_t j = 0; j < c; ++j) z += std::exp(v[i * c + j] - mx);
    const double logz = std::log(z) + mx;
    loss += logz - v[i * c + y];
    for (std::int64_t j = 0; j < c; ++j) probs[i * c + j] = std::exp(v[i * c + j] - logz);
  }
  loss /= static_cast<double>(m);
  f.node->value[0] = loss;
  if (f.fresh && f.node->requires_grad) {
    t::Tensor probs_ref = probs;  // shares storage with the node scratch
    f.node->backward_fn = [an, probs_ref, m, c](Node& n) {
      if (!an->requires_grad) return;
      auto& g = an->ensure_grad();
      const double scale = n.grad[0] / static_cast<double>(m);
      for (std::int64_t i = 0; i < m; ++i) {
        const auto y = n.ints[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < c; ++j) {
          g[i * c + j] += scale * (probs_ref[i * c + j] - (j == y ? 1.0 : 0.0));
        }
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable embedding(const Variable& weight, const std::vector<std::int64_t>& indices) {
  const auto& w = weight.value();
  if (w.ndim() != 2) throw std::invalid_argument("embedding: weight must be 2-D [V, E]");
  const auto vsize = w.dim(0), e = w.dim(1);
  const auto b = static_cast<std::int64_t>(indices.size());
  // Validate before recording: a throw after make_frame would leave a
  // half-built (closure-less) node on the tape for later steps to replay.
  for (const auto idx : indices) {
    if (idx < 0 || idx >= vsize) throw std::out_of_range("embedding: index out of range");
  }
  auto wn = weight.node();
  const NodePtr parents[] = {wn};
  const std::int64_t dims[] = {b, e};
  auto f = make_frame("embedding", parents, dims);
  f.node->ints.assign(indices.begin(), indices.end());
  auto& out = f.node->value;
  for (std::int64_t i = 0; i < b; ++i) {
    const auto idx = indices[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < e; ++j) out[i * e + j] = w[idx * e + j];
  }
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [wn, e](Node& n) {
      if (!wn->requires_grad) return;
      auto& g = wn->ensure_grad();
      const auto nb = static_cast<std::int64_t>(n.ints.size());
      for (std::int64_t i = 0; i < nb; ++i) {
        const auto idx = n.ints[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < e; ++j) g[idx * e + j] += n.grad[i * e + j];
      }
    };
  }
  return Variable(std::move(f.handle));
}

// Conv value-path math (ConvDims/im2col/col2im/bias-transpose) lives in
// core/conv_math.hpp, shared verbatim with the tape-free serving engine
// so served activations are bit-identical to this forward.
using core::Conv2dDims;
using core::col2im_add;
using core::im2col_into;

Variable conv2d(const Variable& input, const Variable& weight, const Variable& bias,
                std::int64_t stride, std::int64_t pad) {
  const auto& x = input.value();
  const auto& w = weight.value();
  const auto& b = bias.value();
  if (x.ndim() != 4 || w.ndim() != 4 || b.ndim() != 1) {
    throw std::invalid_argument("conv2d: expected input [N,C,H,W], weight [F,C,KH,KW], bias [F]");
  }
  if (stride < 1) throw std::invalid_argument("conv2d: stride must be >= 1");
  const Conv2dDims d = core::conv2d_dims(x.dim(0), x.dim(1), x.dim(2), x.dim(3), w.dim(0),
                                         w.dim(2), w.dim(3), stride, pad);
  if (w.dim(1) != d.c) throw std::invalid_argument("conv2d: channel mismatch");
  if (b.dim(0) != d.f) throw std::invalid_argument("conv2d: bias size mismatch");
  if (d.oh < 1 || d.ow < 1) throw std::invalid_argument("conv2d: kernel larger than padded input");

  auto xn = input.node();
  auto wn = weight.node();
  auto bn = bias.node();
  const NodePtr parents[] = {xn, wn, bn};
  const std::int64_t dims[] = {d.n, d.f, d.oh, d.ow};
  const double attrs[] = {static_cast<double>(stride), static_cast<double>(pad)};
  auto f = make_frame("conv2d", parents, dims, attrs);
  const std::int64_t rows = d.n * d.oh * d.ow;
  const std::int64_t ckk = d.c * d.kh * d.kw;
  if (f.fresh) {
    f.node->scratch.push_back(make_scratch({rows, ckk}));      // [0] im2col matrix
    f.node->scratch.push_back(wn->value.reshape({d.f, ckk}));  // [1] weight view [F, CKK]
    f.node->scratch.push_back(make_scratch({rows, d.f}));      // [2] forward product col @ Wᵀ
  }
  // The weight view aliases the parameter's storage; if the parameter was
  // migrated (e.g. a new ParamArena flattened it), re-point the view.
  if (!f.node->scratch[1].shares_storage_with(wn->value)) {
    f.node->scratch[1] = wn->value.reshape({d.f, ckk});
  }
  t::Tensor& col = f.node->scratch[0];
  const t::Tensor& wmat = f.node->scratch[1];

  im2col_into(col, x, d);
  t::Tensor& outmat = f.node->scratch[2];
  // col @ Wᵀ through the NT variant: the packing step absorbs the
  // transpose that used to be materialized into a [CKK, F] scratch.
  t::matmul_nt_into(outmat, col, wmat);
  // Add bias and transpose to NCHW.
  core::conv2d_bias_nchw_into(f.node->value, outmat, b, d);

  if (f.fresh && f.node->requires_grad) {
    t::Tensor doutmat = make_scratch({rows, d.f});
    t::Tensor bias_sum, dw, dcol;
    if (bn->requires_grad) bias_sum = make_scratch({d.f});
    if (wn->requires_grad) dw = make_scratch({d.f, ckk});
    if (xn->requires_grad) dcol = make_scratch({rows, ckk});
    t::Tensor col_ref = col;  // shares storage with scratch[0]
    f.node->backward_fn = [xn, wn, bn, d, col_ref, doutmat, bias_sum, dw,
                           dcol](Node& n) mutable {
      // Reassemble dOut into matrix form [N*OH*OW, F].
      for (std::int64_t nn = 0; nn < d.n; ++nn)
        for (std::int64_t oy = 0; oy < d.oh; ++oy)
          for (std::int64_t ox = 0; ox < d.ow; ++ox) {
            const auto row = (nn * d.oh + oy) * d.ow + ox;
            for (std::int64_t fi = 0; fi < d.f; ++fi)
              doutmat[row * d.f + fi] = n.grad[((nn * d.f + fi) * d.oh + oy) * d.ow + ox];
          }
      if (bn->requires_grad) {
        t::sum_rows_into(bias_sum, doutmat);
        bn->ensure_grad().add_(bias_sum);
      }
      if (wn->requires_grad) {
        t::matmul_tn_into(dw, doutmat, col_ref);  // dOutᵀ @ col = [F, CKK]
        core::axpy(wn->ensure_grad().data(), dw.data(), 1.0);
      }
      if (xn->requires_grad) {
        // n.scratch[1] is the weight view, refreshed by the forward pass.
        t::matmul_into(dcol, doutmat, n.scratch[1]);  // [N*OH*OW, CKK]
        col2im_add(dcol, d, xn->ensure_grad());
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable batch_norm2d(const Variable& input, const Variable& gamma, const Variable& beta,
                      double eps) {
  const auto& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("batch_norm2d: expected [N,C,H,W]");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (gamma.value().ndim() != 1 || gamma.value().dim(0) != c || beta.value().ndim() != 1 ||
      beta.value().dim(0) != c) {
    throw std::invalid_argument("batch_norm2d: gamma/beta must be rank-1 of size C");
  }
  const auto m = n * h * w;  // elements per channel
  const double inv_m = 1.0 / static_cast<double>(m);

  auto xn = input.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  const NodePtr parents[] = {xn, gn, bn};
  const double attrs[] = {eps};
  auto f = make_frame("batch_norm2d", parents, dims_of(x), attrs);
  if (f.fresh) {
    f.node->scratch.push_back(make_scratch({c}));           // [0] per-channel mean
    f.node->scratch.push_back(make_scratch({c}));           // [1] per-channel 1/std
    f.node->scratch.push_back(make_scratch(dims_of(x)));    // [2] normalized activations
  }
  t::Tensor& mean = f.node->scratch[0];
  t::Tensor& inv_std = f.node->scratch[1];
  t::Tensor& xhat = f.node->scratch[2];

  // Channel statistics and normalized activations (cached for backward);
  // shared with the serving engine via core/conv_math.
  core::batchnorm2d_stats_into(mean, inv_std, x, n, c, h, w, eps);
  core::batchnorm2d_normalize_into(f.node->value, xhat, x, gamma.value(), beta.value(), mean,
                                   inv_std, n, c, h, w);

  if (f.fresh && f.node->requires_grad) {
    t::Tensor xhat_ref = xhat;
    t::Tensor inv_std_ref = inv_std;
    f.node->backward_fn = [xn, gn, bn, xhat_ref, inv_std_ref, n, c, h, w, inv_m](Node& node) {
      // Standard BN backward; per channel:
      //   dgamma = sum dy*xhat,  dbeta = sum dy,
      //   dx = gamma*inv_std/m * (m*dy - dbeta - xhat*dgamma).
      for (std::int64_t ch = 0; ch < c; ++ch) {
        double dgamma = 0.0, dbeta = 0.0;
        for (std::int64_t i = 0; i < n; ++i)
          for (std::int64_t k = 0; k < h * w; ++k) {
            const auto idx = (i * c + ch) * h * w + k;
            dgamma += node.grad[idx] * xhat_ref[idx];
            dbeta += node.grad[idx];
          }
        if (gn->requires_grad) gn->ensure_grad()[ch] += dgamma;
        if (bn->requires_grad) bn->ensure_grad()[ch] += dbeta;
        if (xn->requires_grad) {
          auto& gx = xn->ensure_grad();
          const double scale = gn->value[ch] * inv_std_ref[ch] * inv_m;
          const double mtotal = 1.0 / inv_m;
          for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t k = 0; k < h * w; ++k) {
              const auto idx = (i * c + ch) * h * w + k;
              gx[idx] += scale * (mtotal * node.grad[idx] - dbeta - xhat_ref[idx] * dgamma);
            }
        }
      }
    };
  }
  return Variable(std::move(f.handle));
}

Variable global_avg_pool(const Variable& input) {
  const auto& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("global_avg_pool: expected [N,C,H,W]");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const double inv = 1.0 / static_cast<double>(h * w);
  auto xn = input.node();
  const NodePtr parents[] = {xn};
  const std::int64_t dims[] = {n, c};
  auto f = make_frame("global_avg_pool", parents, dims);
  core::global_avg_pool_into(f.node->value, x, n, c, h, w);
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [xn, n, c, h, w, inv](Node& nn) {
      if (!xn->requires_grad) return;
      auto& g = xn->ensure_grad();
      for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < c; ++j) {
          const double gv = nn.grad[i * c + j] * inv;
          for (std::int64_t k = 0; k < h * w; ++k) g[(i * c + j) * h * w + k] += gv;
        }
    };
  }
  return Variable(std::move(f.handle));
}

Variable avg_pool2x2(const Variable& input) {
  const auto& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("avg_pool2x2: expected [N,C,H,W]");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % 2 != 0 || w % 2 != 0) throw std::invalid_argument("avg_pool2x2: H and W must be even");
  const auto oh = h / 2, ow = w / 2;
  auto xn = input.node();
  const NodePtr parents[] = {xn};
  const std::int64_t dims[] = {n, c, oh, ow};
  auto f = make_frame("avg_pool2x2", parents, dims);
  auto& out = f.node->value;
  for (std::int64_t i = 0; i < n * c; ++i)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double s = 0.0;
        for (std::int64_t dy = 0; dy < 2; ++dy)
          for (std::int64_t dx = 0; dx < 2; ++dx)
            s += x[(i * h + 2 * oy + dy) * w + 2 * ox + dx];
        out[(i * oh + oy) * ow + ox] = s * 0.25;
      }
  if (f.fresh && f.node->requires_grad) {
    f.node->backward_fn = [xn, n, c, h, w, oh, ow](Node& nn) {
      if (!xn->requires_grad) return;
      auto& g = xn->ensure_grad();
      for (std::int64_t i = 0; i < n * c; ++i)
        for (std::int64_t oy = 0; oy < oh; ++oy)
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const double gv = nn.grad[(i * oh + oy) * ow + ox] * 0.25;
            for (std::int64_t dy = 0; dy < 2; ++dy)
              for (std::int64_t dx = 0; dx < 2; ++dx)
                g[(i * h + 2 * oy + dy) * w + 2 * ox + dx] += gv;
          }
    };
  }
  return Variable(std::move(f.handle));
}

}  // namespace yf::autograd
