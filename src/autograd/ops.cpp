#include "autograd/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace yf::autograd {

namespace t = yf::tensor;

Variable add(const Variable& a, const Variable& b) {
  t::check_same_shape(a.value(), b.value(), "autograd::add");
  auto an = a.node();
  auto bn = b.node();
  return make_op(
      t::add(a.value(), b.value()), {an, bn},
      [an, bn](Node& n) {
        an->accumulate_grad(n.grad);
        bn->accumulate_grad(n.grad);
      },
      "add");
}

Variable sub(const Variable& a, const Variable& b) {
  t::check_same_shape(a.value(), b.value(), "autograd::sub");
  auto an = a.node();
  auto bn = b.node();
  return make_op(
      t::sub(a.value(), b.value()), {an, bn},
      [an, bn](Node& n) {
        an->accumulate_grad(n.grad);
        if (bn->requires_grad) bn->ensure_grad().add_(n.grad, -1.0);
      },
      "sub");
}

Variable mul(const Variable& a, const Variable& b) {
  t::check_same_shape(a.value(), b.value(), "autograd::mul");
  auto an = a.node();
  auto bn = b.node();
  return make_op(
      t::mul(a.value(), b.value()), {an, bn},
      [an, bn](Node& n) {
        if (an->requires_grad) an->ensure_grad().add_(t::mul(n.grad, bn->value));
        if (bn->requires_grad) bn->ensure_grad().add_(t::mul(n.grad, an->value));
      },
      "mul");
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.0); }

Variable add_scalar(const Variable& a, double s) {
  auto an = a.node();
  return make_op(
      t::add_scalar(a.value(), s), {an},
      [an](Node& n) { an->accumulate_grad(n.grad); }, "add_scalar");
}

Variable mul_scalar(const Variable& a, double s) {
  auto an = a.node();
  return make_op(
      t::mul_scalar(a.value(), s), {an},
      [an, s](Node& n) {
        if (an->requires_grad) an->ensure_grad().add_(n.grad, s);
      },
      "mul_scalar");
}

namespace {

/// Helper for unary elementwise ops whose local derivative is a function of
/// the *output* value (tanh, sigmoid, exp) or the *input* value.
template <typename DFn>
Variable unary_op(const Variable& a, t::Tensor value, DFn&& dfn, const char* name) {
  auto an = a.node();
  auto out_value = value;  // captured copy shares storage with node value
  return make_op(
      std::move(value), {an},
      [an, dfn](Node& n) {
        if (!an->requires_grad) return;
        auto& g = an->ensure_grad();
        auto gd = g.data();
        auto og = n.grad.data();
        auto ov = n.value.data();
        auto iv = an->value.data();
        for (std::size_t i = 0; i < gd.size(); ++i) gd[i] += og[i] * dfn(iv[i], ov[i]);
      },
      name);
}

}  // namespace

Variable relu(const Variable& a) {
  return unary_op(
      a, t::relu(a.value()), [](double x, double) { return x > 0.0 ? 1.0 : 0.0; }, "relu");
}

Variable tanh(const Variable& a) {
  return unary_op(
      a, t::tanh(a.value()), [](double, double y) { return 1.0 - y * y; }, "tanh");
}

Variable sigmoid(const Variable& a) {
  return unary_op(
      a, t::sigmoid(a.value()), [](double, double y) { return y * (1.0 - y); }, "sigmoid");
}

Variable exp(const Variable& a) {
  return unary_op(
      a, t::exp(a.value()), [](double, double y) { return y; }, "exp");
}

Variable log(const Variable& a) {
  return unary_op(
      a, t::log(a.value()), [](double x, double) { return 1.0 / x; }, "log");
}

Variable square(const Variable& a) {
  return unary_op(
      a, t::square(a.value()), [](double x, double) { return 2.0 * x; }, "square");
}

Variable sum(const Variable& a) {
  auto an = a.node();
  return make_op(
      t::Tensor::scalar(t::sum(a.value())), {an},
      [an](Node& n) {
        if (!an->requires_grad) return;
        an->ensure_grad().add_(t::Tensor::full(an->value.shape(), n.grad[0]));
      },
      "sum");
}

Variable mean(const Variable& a) {
  auto an = a.node();
  const double inv = 1.0 / static_cast<double>(a.value().size());
  return make_op(
      t::Tensor::scalar(t::mean(a.value())), {an},
      [an, inv](Node& n) {
        if (!an->requires_grad) return;
        an->ensure_grad().add_(t::Tensor::full(an->value.shape(), n.grad[0] * inv));
      },
      "mean");
}

Variable reshape(const Variable& a, t::Shape new_shape) {
  auto an = a.node();
  // clone() so the node's value does not alias the parent's storage; the
  // pullback just reshapes the incoming grad back.
  return make_op(
      a.value().clone().reshape(std::move(new_shape)), {an},
      [an](Node& n) {
        if (an->requires_grad) an->ensure_grad().add_(n.grad.reshape(an->value.shape()));
      },
      "reshape");
}

Variable slice_cols(const Variable& a, std::int64_t col_begin, std::int64_t col_end) {
  const auto& v = a.value();
  if (v.ndim() != 2) throw std::invalid_argument("slice_cols: expected 2-D input");
  const auto m = v.dim(0), ncols = v.dim(1);
  if (col_begin < 0 || col_end > ncols || col_begin >= col_end) {
    throw std::invalid_argument("slice_cols: bad range [" + std::to_string(col_begin) + ", " +
                                std::to_string(col_end) + ") for " + t::to_string(v.shape()));
  }
  const auto w = col_end - col_begin;
  t::Tensor out(t::Shape{m, w});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < w; ++j) out[i * w + j] = v[i * ncols + col_begin + j];
  auto an = a.node();
  return make_op(
      std::move(out), {an},
      [an, col_begin, w, ncols, m](Node& n) {
        if (!an->requires_grad) return;
        auto& g = an->ensure_grad();
        for (std::int64_t i = 0; i < m; ++i)
          for (std::int64_t j = 0; j < w; ++j)
            g[i * ncols + col_begin + j] += n.grad[i * w + j];
      },
      "slice_cols");
}

Variable concat_cols(const std::vector<Variable>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: no inputs");
  const auto m = parts[0].value().dim(0);
  std::int64_t total = 0;
  for (const auto& p : parts) {
    if (p.value().ndim() != 2 || p.value().dim(0) != m) {
      throw std::invalid_argument("concat_cols: inputs must be 2-D with equal row counts");
    }
    total += p.value().dim(1);
  }
  t::Tensor out(t::Shape{m, total});
  std::int64_t off = 0;
  for (const auto& p : parts) {
    const auto w = p.value().dim(1);
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < w; ++j) out[i * total + off + j] = p.value()[i * w + j];
    off += w;
  }
  std::vector<NodePtr> parents;
  std::vector<std::int64_t> widths;
  for (const auto& p : parts) {
    parents.push_back(p.node());
    widths.push_back(p.value().dim(1));
  }
  return make_op(
      std::move(out), parents,
      [parents, widths, m, total](Node& n) {
        std::int64_t off = 0;
        for (std::size_t k = 0; k < parents.size(); ++k) {
          const auto w = widths[k];
          if (parents[k]->requires_grad) {
            auto& g = parents[k]->ensure_grad();
            for (std::int64_t i = 0; i < m; ++i)
              for (std::int64_t j = 0; j < w; ++j) g[i * w + j] += n.grad[i * total + off + j];
          }
          off += w;
        }
      },
      "concat_cols");
}

Variable matmul(const Variable& a, const Variable& b) {
  auto an = a.node();
  auto bn = b.node();
  return make_op(
      t::matmul(a.value(), b.value()), {an, bn},
      [an, bn](Node& n) {
        // dA = dC @ B^T ; dB = A^T @ dC
        if (an->requires_grad)
          an->ensure_grad().add_(t::matmul(n.grad, t::transpose(bn->value)));
        if (bn->requires_grad)
          bn->ensure_grad().add_(t::matmul(t::transpose(an->value), n.grad));
      },
      "matmul");
}

Variable transpose(const Variable& a) {
  auto an = a.node();
  return make_op(
      t::transpose(a.value()), {an},
      [an](Node& n) {
        if (an->requires_grad) an->ensure_grad().add_(t::transpose(n.grad));
      },
      "transpose");
}

Variable add_row_broadcast(const Variable& a, const Variable& bias) {
  auto an = a.node();
  auto bn = bias.node();
  return make_op(
      t::add_row_broadcast(a.value(), bias.value()), {an, bn},
      [an, bn](Node& n) {
        an->accumulate_grad(n.grad);
        if (bn->requires_grad) bn->ensure_grad().add_(t::sum_rows(n.grad));
      },
      "add_row_broadcast");
}

Variable softmax(const Variable& logits) {
  const auto& v = logits.value();
  if (v.ndim() != 2) throw std::invalid_argument("softmax: expected 2-D logits");
  const auto m = v.dim(0), c = v.dim(1);
  t::Tensor probs(v.shape());
  for (std::int64_t i = 0; i < m; ++i) {
    double mx = -1e300;
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, v[i * c + j]);
    double z = 0.0;
    for (std::int64_t j = 0; j < c; ++j) z += std::exp(v[i * c + j] - mx);
    for (std::int64_t j = 0; j < c; ++j) probs[i * c + j] = std::exp(v[i * c + j] - mx) / z;
  }
  auto an = logits.node();
  return make_op(
      std::move(probs), {an},
      [an, m, c](Node& n) {
        if (!an->requires_grad) return;
        // dL/dx_j = p_j * (g_j - sum_k g_k p_k) per row.
        auto& g = an->ensure_grad();
        for (std::int64_t i = 0; i < m; ++i) {
          double dotgp = 0.0;
          for (std::int64_t k = 0; k < c; ++k) dotgp += n.grad[i * c + k] * n.value[i * c + k];
          for (std::int64_t j = 0; j < c; ++j)
            g[i * c + j] += n.value[i * c + j] * (n.grad[i * c + j] - dotgp);
        }
      },
      "softmax");
}

Variable softmax_cross_entropy(const Variable& logits, const std::vector<std::int64_t>& labels) {
  const auto& v = logits.value();
  if (v.ndim() != 2) throw std::invalid_argument("softmax_cross_entropy: expected 2-D logits");
  const auto m = v.dim(0), c = v.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != m) {
    throw std::invalid_argument("softmax_cross_entropy: batch " + std::to_string(m) + " vs " +
                                std::to_string(labels.size()) + " labels");
  }
  // Forward: mean_i [ logsumexp(x_i) - x_i[y_i] ]. Cache probabilities for
  // the pullback: d/dx = (softmax(x) - onehot(y)) / m.
  t::Tensor probs(v.shape());
  double loss = 0.0;
  for (std::int64_t i = 0; i < m; ++i) {
    const auto y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) throw std::out_of_range("softmax_cross_entropy: label out of range");
    double mx = -1e300;
    for (std::int64_t j = 0; j < c; ++j) mx = std::max(mx, v[i * c + j]);
    double z = 0.0;
    for (std::int64_t j = 0; j < c; ++j) z += std::exp(v[i * c + j] - mx);
    const double logz = std::log(z) + mx;
    loss += logz - v[i * c + y];
    for (std::int64_t j = 0; j < c; ++j) probs[i * c + j] = std::exp(v[i * c + j] - logz);
  }
  loss /= static_cast<double>(m);
  auto an = logits.node();
  auto labels_copy = labels;
  return make_op(
      t::Tensor::scalar(loss), {an},
      [an, probs, labels_copy, m, c](Node& n) {
        if (!an->requires_grad) return;
        auto& g = an->ensure_grad();
        const double scale = n.grad[0] / static_cast<double>(m);
        for (std::int64_t i = 0; i < m; ++i) {
          const auto y = labels_copy[static_cast<std::size_t>(i)];
          for (std::int64_t j = 0; j < c; ++j) {
            g[i * c + j] += scale * (probs[i * c + j] - (j == y ? 1.0 : 0.0));
          }
        }
      },
      "softmax_cross_entropy");
}

Variable embedding(const Variable& weight, const std::vector<std::int64_t>& indices) {
  const auto& w = weight.value();
  if (w.ndim() != 2) throw std::invalid_argument("embedding: weight must be 2-D [V, E]");
  const auto vsize = w.dim(0), e = w.dim(1);
  const auto b = static_cast<std::int64_t>(indices.size());
  t::Tensor out(t::Shape{b, e});
  for (std::int64_t i = 0; i < b; ++i) {
    const auto idx = indices[static_cast<std::size_t>(i)];
    if (idx < 0 || idx >= vsize) throw std::out_of_range("embedding: index out of range");
    for (std::int64_t j = 0; j < e; ++j) out[i * e + j] = w[idx * e + j];
  }
  auto wn = weight.node();
  auto idx_copy = indices;
  return make_op(
      std::move(out), {wn},
      [wn, idx_copy, e](Node& n) {
        if (!wn->requires_grad) return;
        auto& g = wn->ensure_grad();
        const auto b = static_cast<std::int64_t>(idx_copy.size());
        for (std::int64_t i = 0; i < b; ++i) {
          const auto idx = idx_copy[static_cast<std::size_t>(i)];
          for (std::int64_t j = 0; j < e; ++j) g[idx * e + j] += n.grad[i * e + j];
        }
      },
      "embedding");
}

namespace {

struct ConvDims {
  std::int64_t n, c, h, w;       // input
  std::int64_t f, kh, kw;        // filters
  std::int64_t oh, ow;           // output spatial
  std::int64_t stride, pad;
};

/// im2col: input [N,C,H,W] -> col [N*OH*OW, C*KH*KW].
t::Tensor im2col(const t::Tensor& input, const ConvDims& d) {
  t::Tensor col(t::Shape{d.n * d.oh * d.ow, d.c * d.kh * d.kw});
  const auto* in = input.data().data();
  auto* pc = col.data().data();
  const auto row_len = d.c * d.kh * d.kw;
  for (std::int64_t n = 0; n < d.n; ++n) {
    for (std::int64_t oy = 0; oy < d.oh; ++oy) {
      for (std::int64_t ox = 0; ox < d.ow; ++ox) {
        const auto row = (n * d.oh + oy) * d.ow + ox;
        double* dst = pc + row * row_len;
        for (std::int64_t c = 0; c < d.c; ++c) {
          for (std::int64_t ky = 0; ky < d.kh; ++ky) {
            const auto iy = oy * d.stride + ky - d.pad;
            for (std::int64_t kx = 0; kx < d.kw; ++kx) {
              const auto ix = ox * d.stride + kx - d.pad;
              const auto dst_i = (c * d.kh + ky) * d.kw + kx;
              if (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w) {
                dst[dst_i] = in[((n * d.c + c) * d.h + iy) * d.w + ix];
              } else {
                dst[dst_i] = 0.0;
              }
            }
          }
        }
      }
    }
  }
  return col;
}

/// col2im: scatter-add of col gradient back to input layout.
void col2im_add(const t::Tensor& dcol, const ConvDims& d, t::Tensor& dinput) {
  const auto* pc = dcol.data().data();
  auto* din = dinput.data().data();
  const auto row_len = d.c * d.kh * d.kw;
  for (std::int64_t n = 0; n < d.n; ++n) {
    for (std::int64_t oy = 0; oy < d.oh; ++oy) {
      for (std::int64_t ox = 0; ox < d.ow; ++ox) {
        const auto row = (n * d.oh + oy) * d.ow + ox;
        const double* src = pc + row * row_len;
        for (std::int64_t c = 0; c < d.c; ++c) {
          for (std::int64_t ky = 0; ky < d.kh; ++ky) {
            const auto iy = oy * d.stride + ky - d.pad;
            if (iy < 0 || iy >= d.h) continue;
            for (std::int64_t kx = 0; kx < d.kw; ++kx) {
              const auto ix = ox * d.stride + kx - d.pad;
              if (ix < 0 || ix >= d.w) continue;
              din[((n * d.c + c) * d.h + iy) * d.w + ix] += src[(c * d.kh + ky) * d.kw + kx];
            }
          }
        }
      }
    }
  }
}

}  // namespace

Variable conv2d(const Variable& input, const Variable& weight, const Variable& bias,
                std::int64_t stride, std::int64_t pad) {
  const auto& x = input.value();
  const auto& w = weight.value();
  const auto& b = bias.value();
  if (x.ndim() != 4 || w.ndim() != 4 || b.ndim() != 1) {
    throw std::invalid_argument("conv2d: expected input [N,C,H,W], weight [F,C,KH,KW], bias [F]");
  }
  ConvDims d;
  d.n = x.dim(0);
  d.c = x.dim(1);
  d.h = x.dim(2);
  d.w = x.dim(3);
  d.f = w.dim(0);
  d.kh = w.dim(2);
  d.kw = w.dim(3);
  d.stride = stride;
  d.pad = pad;
  if (w.dim(1) != d.c) throw std::invalid_argument("conv2d: channel mismatch");
  if (b.dim(0) != d.f) throw std::invalid_argument("conv2d: bias size mismatch");
  if (stride < 1) throw std::invalid_argument("conv2d: stride must be >= 1");
  d.oh = (d.h + 2 * pad - d.kh) / stride + 1;
  d.ow = (d.w + 2 * pad - d.kw) / stride + 1;
  if (d.oh < 1 || d.ow < 1) throw std::invalid_argument("conv2d: kernel larger than padded input");

  t::Tensor col = im2col(x, d);                                     // [N*OH*OW, CKK]
  t::Tensor wmat = w.clone().reshape({d.f, d.c * d.kh * d.kw});     // [F, CKK]
  t::Tensor outmat = t::matmul(col, t::transpose(wmat));            // [N*OH*OW, F]
  // Add bias and transpose to NCHW.
  t::Tensor out(t::Shape{d.n, d.f, d.oh, d.ow});
  for (std::int64_t n = 0; n < d.n; ++n)
    for (std::int64_t oy = 0; oy < d.oh; ++oy)
      for (std::int64_t ox = 0; ox < d.ow; ++ox) {
        const auto row = (n * d.oh + oy) * d.ow + ox;
        for (std::int64_t f = 0; f < d.f; ++f)
          out[((n * d.f + f) * d.oh + oy) * d.ow + ox] = outmat[row * d.f + f] + b[f];
      }

  auto xn = input.node();
  auto wn = weight.node();
  auto bn = bias.node();
  return make_op(
      std::move(out), {xn, wn, bn},
      [xn, wn, bn, d, col](Node& n) {
        // Reassemble dOut into matrix form [N*OH*OW, F].
        t::Tensor doutmat(t::Shape{d.n * d.oh * d.ow, d.f});
        for (std::int64_t nn = 0; nn < d.n; ++nn)
          for (std::int64_t oy = 0; oy < d.oh; ++oy)
            for (std::int64_t ox = 0; ox < d.ow; ++ox) {
              const auto row = (nn * d.oh + oy) * d.ow + ox;
              for (std::int64_t f = 0; f < d.f; ++f)
                doutmat[row * d.f + f] = n.grad[((nn * d.f + f) * d.oh + oy) * d.ow + ox];
            }
        if (bn->requires_grad) bn->ensure_grad().add_(t::sum_rows(doutmat));
        if (wn->requires_grad) {
          t::Tensor dw = t::matmul(t::transpose(doutmat), col);  // [F, CKK]
          wn->ensure_grad().add_(dw.reshape(wn->value.shape()));
        }
        if (xn->requires_grad) {
          t::Tensor wmat = wn->value.clone().reshape({d.f, d.c * d.kh * d.kw});
          t::Tensor dcol = t::matmul(doutmat, wmat);  // [N*OH*OW, CKK]
          col2im_add(dcol, d, xn->ensure_grad());
        }
      },
      "conv2d");
}

Variable batch_norm2d(const Variable& input, const Variable& gamma, const Variable& beta,
                      double eps) {
  const auto& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("batch_norm2d: expected [N,C,H,W]");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (gamma.value().ndim() != 1 || gamma.value().dim(0) != c || beta.value().ndim() != 1 ||
      beta.value().dim(0) != c) {
    throw std::invalid_argument("batch_norm2d: gamma/beta must be rank-1 of size C");
  }
  const auto m = n * h * w;  // elements per channel
  const double inv_m = 1.0 / static_cast<double>(m);

  // Channel statistics and normalized activations (cached for backward).
  t::Tensor mean(t::Shape{c}), inv_std(t::Shape{c});
  t::Tensor xhat(x.shape());
  for (std::int64_t ch = 0; ch < c; ++ch) {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t k = 0; k < h * w; ++k) s += x[(i * c + ch) * h * w + k];
    const double mu = s * inv_m;
    double var = 0.0;
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t k = 0; k < h * w; ++k) {
        const double d = x[(i * c + ch) * h * w + k] - mu;
        var += d * d;
      }
    var *= inv_m;
    mean[ch] = mu;
    inv_std[ch] = 1.0 / std::sqrt(var + eps);
  }
  t::Tensor out(x.shape());
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const double g = gamma.value()[ch], b = beta.value()[ch];
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t k = 0; k < h * w; ++k) {
        const auto idx = (i * c + ch) * h * w + k;
        xhat[idx] = (x[idx] - mean[ch]) * inv_std[ch];
        out[idx] = g * xhat[idx] + b;
      }
  }

  auto xn = input.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return make_op(
      std::move(out), {xn, gn, bn},
      [xn, gn, bn, xhat, inv_std, n, c, h, w, inv_m](Node& node) {
        // Standard BN backward; per channel:
        //   dgamma = sum dy*xhat,  dbeta = sum dy,
        //   dx = gamma*inv_std/m * (m*dy - dbeta - xhat*dgamma).
        for (std::int64_t ch = 0; ch < c; ++ch) {
          double dgamma = 0.0, dbeta = 0.0;
          for (std::int64_t i = 0; i < n; ++i)
            for (std::int64_t k = 0; k < h * w; ++k) {
              const auto idx = (i * c + ch) * h * w + k;
              dgamma += node.grad[idx] * xhat[idx];
              dbeta += node.grad[idx];
            }
          if (gn->requires_grad) gn->ensure_grad()[ch] += dgamma;
          if (bn->requires_grad) bn->ensure_grad()[ch] += dbeta;
          if (xn->requires_grad) {
            auto& gx = xn->ensure_grad();
            const double scale = gn->value[ch] * inv_std[ch] * inv_m;
            const double mtotal = 1.0 / inv_m;
            for (std::int64_t i = 0; i < n; ++i)
              for (std::int64_t k = 0; k < h * w; ++k) {
                const auto idx = (i * c + ch) * h * w + k;
                gx[idx] += scale * (mtotal * node.grad[idx] - dbeta - xhat[idx] * dgamma);
              }
          }
        }
      },
      "batch_norm2d");
}

Variable global_avg_pool(const Variable& input) {
  const auto& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("global_avg_pool: expected [N,C,H,W]");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const double inv = 1.0 / static_cast<double>(h * w);
  t::Tensor out(t::Shape{n, c});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) {
      double s = 0.0;
      for (std::int64_t k = 0; k < h * w; ++k) s += x[(i * c + j) * h * w + k];
      out[i * c + j] = s * inv;
    }
  auto xn = input.node();
  return make_op(
      std::move(out), {xn},
      [xn, n, c, h, w, inv](Node& nn) {
        if (!xn->requires_grad) return;
        auto& g = xn->ensure_grad();
        for (std::int64_t i = 0; i < n; ++i)
          for (std::int64_t j = 0; j < c; ++j) {
            const double gv = nn.grad[i * c + j] * inv;
            for (std::int64_t k = 0; k < h * w; ++k) g[(i * c + j) * h * w + k] += gv;
          }
      },
      "global_avg_pool");
}

Variable avg_pool2x2(const Variable& input) {
  const auto& x = input.value();
  if (x.ndim() != 4) throw std::invalid_argument("avg_pool2x2: expected [N,C,H,W]");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % 2 != 0 || w % 2 != 0) throw std::invalid_argument("avg_pool2x2: H and W must be even");
  const auto oh = h / 2, ow = w / 2;
  t::Tensor out(t::Shape{n, c, oh, ow});
  for (std::int64_t i = 0; i < n * c; ++i)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double s = 0.0;
        for (std::int64_t dy = 0; dy < 2; ++dy)
          for (std::int64_t dx = 0; dx < 2; ++dx)
            s += x[(i * h + 2 * oy + dy) * w + 2 * ox + dx];
        out[(i * oh + oy) * ow + ox] = s * 0.25;
      }
  auto xn = input.node();
  return make_op(
      std::move(out), {xn},
      [xn, n, c, h, w, oh, ow](Node& nn) {
        if (!xn->requires_grad) return;
        auto& g = xn->ensure_grad();
        for (std::int64_t i = 0; i < n * c; ++i)
          for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const double gv = nn.grad[(i * oh + oy) * ow + ox] * 0.25;
              for (std::int64_t dy = 0; dy < 2; ++dy)
                for (std::int64_t dx = 0; dx < 2; ++dx)
                  g[(i * h + 2 * oy + dy) * w + 2 * ox + dx] += gv;
            }
      },
      "avg_pool2x2");
}

}  // namespace yf::autograd
