#include "autograd/tape.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/env.hpp"
#include "core/parallel.hpp"

namespace yf::autograd {

namespace {

thread_local GraphTape* t_active_tape = nullptr;

/// Process-wide DFS stamp source: unique epochs even when several tapes
/// traverse graphs that share leaf nodes.
std::atomic<std::uint64_t> g_visit_epoch{0};

/// Hard cap on backward participants; also sizes the stack-allocated
/// helper-task batch in run_engine.
constexpr int kMaxBackwardThreads = 64;

/// Process default participant count: YF_BACKWARD_THREADS when set
/// (0 = match the pool fan-out), else 1 (serial). The checked parse keeps
/// a typo'd value ("four") from strtol-ing to 0 and silently flipping
/// serial backward into match-the-pool mode.
int default_backward_threads() {
  static const int v = [] {
    if (const auto env = core::env_int_value("YF_BACKWARD_THREADS")) {
      const auto n = *env;
      if (n >= 0) return static_cast<int>(std::min<std::int64_t>(n, kMaxBackwardThreads));
    }
    return 1;
  }();
  return v;
}

NodePtr alias_handle(Node* n) {
  // Non-owning aliasing handle: no control block, no refcount traffic.
  return NodePtr(NodePtr{}, n);
}

}  // namespace

GraphTape::GraphTape(std::int64_t workspace_reserve) : ws_(workspace_reserve) {}

GraphTape::~GraphTape() {
  // Helper tasks carry a raw pointer to this tape; every one submitted
  // must have started (and found the pass done) or finished before the
  // state it touches goes away. Queued helpers run as soon as a pool
  // worker frees up, so this only blocks while the pool is saturated.
  {
    std::unique_lock lock(engine_mu_);
    engine_cv_.wait(lock, [&] { return submitted_helpers_ == 0 && active_helpers_ == 0; });
  }
  if (t_active_tape == this) t_active_tape = nullptr;
}

int GraphTape::backward_threads() const {
  int t = backward_threads_ >= 0 ? backward_threads_ : default_backward_threads();
  if (t == 0) t = static_cast<int>(core::ThreadPool::instance().fanout());
  return std::clamp(t, 1, kMaxBackwardThreads);
}

void GraphTape::begin_step() {
  cursor_ = 0;
  ++steps_;
}

bool GraphTape::matches(const Node& n, const char* sig, std::span<const NodePtr> parents,
                        std::span<const std::int64_t> dims, std::span<const double> attrs,
                        bool requires_grad) const {
  if (n.op_name != sig && std::strcmp(n.op_name, sig) != 0) return false;
  if (n.requires_grad != requires_grad) return false;
  if (n.parents.size() != parents.size()) return false;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (n.parents[i].get() != parents[i].get()) return false;
  }
  const auto& shape = n.value.shape();
  if (shape.size() != dims.size()) return false;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (shape[i] != dims[i]) return false;
  }
  if (n.attrs.size() != attrs.size()) return false;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (n.attrs[i] != attrs[i]) return false;
  }
  return true;
}

GraphTape::Frame GraphTape::record(const char* sig, std::span<const NodePtr> parents,
                                   std::span<const std::int64_t> dims,
                                   std::span<const double> attrs) {
  bool requires_grad = false;
  for (const auto& p : parents) {
    if (!p) throw std::invalid_argument("GraphTape::record: null parent");
    requires_grad = requires_grad || p->requires_grad;
  }

  if (cursor_ < nodes_.size()) {
    Node& n = nodes_[cursor_];
    if (matches(n, sig, parents, dims, attrs, requires_grad)) {
      ++cursor_;
      ++replayed_;
      return {&n, alias_handle(&n), false};
    }
    // Structure changed mid-stream: drop the stale tail (and its
    // workspace windows) and re-record from here.
    ws_.rollback(n.ws_mark);
    nodes_.resize(cursor_);
    ++structure_epoch_;
    order_valid_ = false;
  }

  const core::Workspace::Marker mark = ws_.mark();
  Node& n = nodes_.emplace_back();
  n.op_name = sig;
  n.tape = this;
  n.tape_index = static_cast<std::int64_t>(cursor_);
  n.ws_mark = mark;
  n.requires_grad = requires_grad;
  n.parents.assign(parents.begin(), parents.end());
  n.attrs.assign(attrs.begin(), attrs.end());
  n.value = ws_.acquire(dims);
  if (requires_grad) {
    // Materialize the gradient now so backward closures can be built
    // once, at record time, against stable buffers.
    n.grad = ws_.acquire(dims);
    n.grad_allocated = true;
  }
  ++cursor_;
  ++fresh_;
  ++structure_epoch_;
  order_valid_ = false;
  return {&n, alias_handle(&n), true};
}

void GraphTape::build_order(Node* out) {
  const std::uint64_t epoch = g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  order_.clear();
  dfs_stack_.clear();
  // Identical traversal to the heap path's topo_sort (variable.cpp):
  // iterative post-order DFS, parents expanded in list order, visited
  // tracked via epoch stamps instead of a hash set.
  if (out->requires_grad) {
    dfs_stack_.push_back({out, 0});
    out->visit_epoch = epoch;
  }
  while (!dfs_stack_.empty()) {
    DfsFrame& f = dfs_stack_.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && p->visit_epoch != epoch) {
        p->visit_epoch = epoch;
        dfs_stack_.push_back({p, 0});
      }
    } else {
      order_.push_back(f.node);
      dfs_stack_.pop_back();
    }
  }
  order_out_ = out;
  order_epoch_ = structure_epoch_;
  order_visit_epoch_ = epoch;
  order_valid_ = true;
  build_plan();
}

void GraphTape::build_plan() {
  const auto n = static_cast<std::int32_t>(order_.size());
  for (std::int32_t i = 0; i < n; ++i) order_[i]->order_index = i;

  // Distinct requires-grad parents per node (CSR). Duplicate edges --
  // mul(x, x) -- are folded: the pullback runs once and accumulates both
  // contributions, so one gate per distinct parent is exact.
  par_off_.clear();
  par_idx_.clear();
  par_off_.reserve(static_cast<std::size_t>(n) + 1);
  par_off_.push_back(0);
  for (std::int32_t i = 0; i < n; ++i) {
    const Node* nd = order_[i];
    const auto edge_begin = static_cast<std::size_t>(par_off_.back());
    for (const NodePtr& p : nd->parents) {
      const Node* pn = p.get();
      // A parent outside this traversal receives no gradient: no gate.
      if (!pn->requires_grad || pn->visit_epoch != order_visit_epoch_) continue;
      const std::int32_t pi = pn->order_index;
      bool dup = false;
      for (std::size_t e = edge_begin; e < par_idx_.size(); ++e) {
        if (par_idx_[e] == pi) {
          dup = true;
          break;
        }
      }
      if (!dup) par_idx_.push_back(pi);
    }
    par_off_.push_back(static_cast<std::int32_t>(par_idx_.size()));
  }

  // Consumer CSR, consumers listed in execution order (descending order
  // index -- execution walks order_ back-to-front).
  const std::size_t edges = par_idx_.size();
  cons_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t e = 0; e < edges; ++e) {
    ++cons_off_[static_cast<std::size_t>(par_idx_[e]) + 1];
  }
  for (std::int32_t i = 0; i < n; ++i) cons_off_[i + 1] += cons_off_[i];
  cons_fill_.assign(cons_off_.begin(), cons_off_.end() - 1);
  cons_idx_.resize(edges);
  for (std::int32_t i = n - 1; i >= 0; --i) {
    for (std::int32_t e = par_off_[i]; e < par_off_[i + 1]; ++e) {
      cons_idx_[static_cast<std::size_t>(cons_fill_[par_idx_[e]]++)] = i;
    }
  }

  // init_pending_[i] = consumer count (gradient completeness) plus one
  // sequence gate per parent edge where i is not that parent's first
  // consumer in execution order. next_consumer_[e] names the node whose
  // gate edge e opens. The serial order satisfies every gate, so the
  // engine cannot deadlock; every accumulation happens in serial order,
  // so trajectories are bit-identical at any thread count.
  next_consumer_.assign(edges, -1);
  init_pending_.assign(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    init_pending_[i] = cons_off_[i + 1] - cons_off_[i];
  }
  for (std::int32_t p = 0; p < n; ++p) {
    for (std::int32_t s = cons_off_[p]; s < cons_off_[p + 1]; ++s) {
      const std::int32_t c = cons_idx_[s];
      std::int32_t e = par_off_[c];
      while (par_idx_[e] != p) ++e;
      if (s + 1 < cons_off_[p + 1]) next_consumer_[e] = cons_idx_[s + 1];
      if (s > cons_off_[p]) ++init_pending_[c];
    }
  }

  pending_.resize(static_cast<std::size_t>(n));
  ready_.resize(std::max<std::size_t>(1, static_cast<std::size_t>(n)));
  ++plan_builds_;
}

void GraphTape::set_backward_hooks(BackwardHooks* hooks, std::span<const LeafGroup> leaves,
                                   std::size_t group_count) {
  for (Node* nd : hook_nodes_) nd->hook_group = -1;
  hook_nodes_.clear();
  hooks_ = hooks;
  hook_group_count_ = hooks != nullptr ? group_count : 0;
  if (hooks != nullptr) {
    hook_nodes_.reserve(leaves.size());
    for (const LeafGroup& lg : leaves) {
      if (lg.node == nullptr || lg.group >= group_count) {
        throw std::invalid_argument("GraphTape::set_backward_hooks: bad leaf group");
      }
      if (lg.node->hook_group >= 0) continue;  // tied parameters: one gate
      lg.node->hook_group = static_cast<std::int32_t>(lg.group);
      hook_nodes_.push_back(lg.node);
    }
  }
  ++hooks_epoch_;
}

void GraphTape::ensure_group_counts() {
  if (hooks_ == nullptr) return;
  if (group_hooks_epoch_ == hooks_epoch_ && group_plan_builds_ == plan_builds_) return;
  group_init_.assign(hook_group_count_, 0);
  group_remaining_.assign(hook_group_count_, 0);
  for (const Node* nd : hook_nodes_) {
    // Leaves absent from the current traversal never execute and never
    // fire; their groups stay at their init count and the caller's
    // post-backward sweep covers them.
    if (nd->visit_epoch != order_visit_epoch_) continue;
    ++group_init_[static_cast<std::size_t>(nd->hook_group)];
  }
  group_hooks_epoch_ = hooks_epoch_;
  group_plan_builds_ = plan_builds_;
}

void GraphTape::backward_from(Node* out, const tensor::Tensor& seed) {
  if (out == nullptr || out->tape != this) {
    throw std::logic_error("GraphTape::backward_from: node does not belong to this tape");
  }
  if (!out->requires_grad) return;
  if (!(order_valid_ && order_out_ == out && order_epoch_ == structure_epoch_)) {
    build_order(out);
  }
  // From inside a pool worker (param-server replicas) the engine runs
  // with zero helpers: its peers are draining their own passes.
  int threads = backward_threads();
  if (core::ThreadPool::on_worker_thread()) threads = 1;
  if (threads > 1 || hooks_ != nullptr) {
    run_engine(out, seed, threads);
    return;
  }
  // Same pass as the heap path: materialize, zero the non-leaf per-pass
  // buffers, seed, then run pullbacks children-before-parents.
  for (Node* n : order_) n->ensure_grad();
  for (Node* n : order_) {
    if (!n->parents.empty()) n->grad.zero_();
  }
  out->ensure_grad().add_(seed);
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

void GraphTape::run_engine(Node* out, const tensor::Tensor& seed, int threads) {
  ensure_group_counts();
  // Prologue identical to the serial path.
  for (Node* n : order_) n->ensure_grad();
  for (Node* n : order_) {
    if (!n->parents.empty()) n->grad.zero_();
  }
  out->ensure_grad().add_(seed);

  const auto n = static_cast<std::int32_t>(order_.size());
  std::copy(init_pending_.begin(), init_pending_.end(), pending_.begin());
  std::copy(group_init_.begin(), group_init_.end(), group_remaining_.begin());
  executed_.store(0, std::memory_order_relaxed);
  engine_failed_.store(false, std::memory_order_relaxed);
  engine_error_ = nullptr;
  engine_total_ = n;
  {
    std::scoped_lock lock(engine_mu_);
    engine_done_ = false;
    ready_head_ = 0;
    ready_count_ = 0;
    // Seed the ring in execution order; normally only the output node
    // starts with no open gates.
    for (std::int32_t i = n - 1; i >= 0; --i) {
      if (init_pending_[i] == 0) ready_[ready_count_++] = i;
    }
  }

  int helpers = std::min({threads - 1, kMaxBackwardThreads - 1, n - 1});
  if (helpers > 0) {
    auto& pool = core::ThreadPool::instance();
    pool.ensure_workers(static_cast<std::size_t>(helpers));
    std::array<core::RawTask, kMaxBackwardThreads> tasks;
    for (int h = 0; h < helpers; ++h) {
      tasks[static_cast<std::size_t>(h)] = {&GraphTape::helper_entry, this};
    }
    {
      std::scoped_lock lock(engine_mu_);
      submitted_helpers_ += helpers;
    }
    const std::size_t accepted = pool.try_submit_batch(
        std::span<const core::RawTask>(tasks.data(), static_cast<std::size_t>(helpers)));
    if (accepted < static_cast<std::size_t>(helpers)) {
      // Ring full: proceed with fewer helpers.
      std::scoped_lock lock(engine_mu_);
      submitted_helpers_ -= helpers - static_cast<int>(accepted);
    }
  }

  {
    // Mark the driving thread as a worker so kernels inside pullbacks run
    // inline instead of fanning chunks onto a pool that is busy draining
    // this very pass (parallelism now comes from the graph, not the
    // elementwise sweeps).
    core::detail::ScopedWorkerMark mark;
    engine_worker();
  }

  std::unique_lock lock(engine_mu_);
  engine_cv_.wait(lock, [&] { return engine_done_ && active_helpers_ == 0; });
  if (engine_error_) {
    const std::exception_ptr err = engine_error_;
    engine_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void GraphTape::engine_worker() {
  for (;;) {
    std::int32_t index;
    {
      std::unique_lock lock(engine_mu_);
      engine_cv_.wait(lock, [&] { return engine_done_ || ready_count_ > 0; });
      if (ready_count_ == 0) return;  // pass complete
      index = ready_[ready_head_];
      ready_head_ = (ready_head_ + 1) % ready_.size();
      --ready_count_;
    }
    execute_node(index);
  }
}

void GraphTape::execute_node(std::int32_t index) {
  Node* node = order_[static_cast<std::size_t>(index)];
  if (node->backward_fn && !engine_failed_.load(std::memory_order_relaxed)) {
    try {
      node->backward_fn(*node);
    } catch (...) {
      engine_failed_.store(true, std::memory_order_relaxed);
      std::scoped_lock lock(engine_mu_);
      if (!engine_error_) engine_error_ = std::current_exception();
    }
  }
  if (hooks_ != nullptr && node->hook_group >= 0 &&
      static_cast<std::size_t>(node->hook_group) < hook_group_count_) {
    std::atomic_ref<std::int32_t> remaining(
        group_remaining_[static_cast<std::size_t>(node->hook_group)]);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        !engine_failed_.load(std::memory_order_relaxed)) {
      try {
        hooks_->on_group_complete(static_cast<std::size_t>(node->hook_group));
      } catch (...) {
        engine_failed_.store(true, std::memory_order_relaxed);
        std::scoped_lock lock(engine_mu_);
        if (!engine_error_) engine_error_ = std::current_exception();
      }
    }
  }
  for (std::int32_t e = par_off_[index]; e < par_off_[index + 1]; ++e) {
    // Open the next sibling's sequence gate, then retire this node's
    // consumer slot on the parent. The acq_rel chains through these
    // counters order every accumulation into a shared parent exactly as
    // the serial replay would.
    if (next_consumer_[e] >= 0) decrement_pending(next_consumer_[e]);
    decrement_pending(par_idx_[e]);
  }
  if (executed_.fetch_add(1, std::memory_order_acq_rel) + 1 == engine_total_) {
    {
      std::scoped_lock lock(engine_mu_);
      engine_done_ = true;
    }
    engine_cv_.notify_all();
  }
}

void GraphTape::decrement_pending(std::int32_t index) {
  std::atomic_ref<std::int32_t> pending(pending_[static_cast<std::size_t>(index)]);
  if (pending.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  {
    std::scoped_lock lock(engine_mu_);
    ready_[(ready_head_ + ready_count_) % ready_.size()] = index;
    ++ready_count_;
  }
  engine_cv_.notify_one();
}

void GraphTape::helper_entry(void* ctx) {
  auto* tape = static_cast<GraphTape*>(ctx);
  {
    std::scoped_lock lock(tape->engine_mu_);
    --tape->submitted_helpers_;
    if (tape->engine_done_) {
      // Stale task: the pass it was submitted for already finished.
      tape->engine_cv_.notify_all();  // the destructor may be waiting
      return;
    }
    ++tape->active_helpers_;
  }
  tape->engine_worker();
  {
    std::scoped_lock lock(tape->engine_mu_);
    --tape->active_helpers_;
    // Notify while still holding the lock: the destructor's wait cannot
    // return (and destroy the condition variable) until we release it,
    // so the broadcast never touches a dead cv.
    tape->engine_cv_.notify_all();
  }
}

GraphTape* active_tape() { return t_active_tape; }

TapeScope::TapeScope(GraphTape* tape) {
  if (tape == nullptr) return;
  prev_ = t_active_tape;
  t_active_tape = tape;
  installed_ = true;
}

TapeScope::~TapeScope() {
  if (installed_) t_active_tape = prev_;
}

GraphTape::Frame make_frame(const char* sig, std::span<const NodePtr> parents,
                            std::span<const std::int64_t> dims, std::span<const double> attrs) {
  if (GraphTape* tape = active_tape()) {
    return tape->record(sig, parents, dims, attrs);
  }
  GraphTape::Frame frame;
  auto node = std::make_shared<Node>();
  node->op_name = sig;
  node->value = tensor::Tensor(tensor::Shape(dims.begin(), dims.end()));
  bool requires_grad = false;
  for (const auto& p : parents) {
    if (!p) throw std::invalid_argument("make_frame: null parent");
    requires_grad = requires_grad || p->requires_grad;
  }
  node->requires_grad = requires_grad;
  if (requires_grad) {
    // The heap path keeps the historical economy: parents and the
    // backward closure are only retained when gradients can flow.
    node->parents.assign(parents.begin(), parents.end());
  }
  frame.node = node.get();
  frame.handle = std::move(node);
  frame.fresh = true;
  return frame;
}

tensor::Tensor make_scratch(std::span<const std::int64_t> dims) {
  if (GraphTape* tape = active_tape()) return tape->scratch(dims);
  return tensor::Tensor(tensor::Shape(dims.begin(), dims.end()));
}

tensor::Tensor make_scratch(std::initializer_list<std::int64_t> dims) {
  return make_scratch(std::span<const std::int64_t>(dims.begin(), dims.size()));
}

}  // namespace yf::autograd
