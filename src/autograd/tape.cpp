#include "autograd/tape.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/env.hpp"
#include "core/kernels/kernel_table.hpp"
#include "core/parallel.hpp"
#include "tensor/ops.hpp"

namespace yf::autograd {

namespace t = yf::tensor;

/// A fused elementwise chain (DESIGN.md §13): a producer->consumer run of
/// pointwise nodes compiled into one straight-line program executed by the
/// kernel table's fused sweeps. Interior members carry no value/grad
/// buffers; the tail owns the program and the (stable, pre-sized) operand
/// pointer scratch so steady-state sweeps allocate nothing.
struct FusedChain {
  std::vector<Node*> members;  ///< step order, head..tail
  std::vector<Node*> inputs;   ///< external operands, DFS encounter order
  std::vector<core::detail::FusedStep> steps;
  std::vector<const double*> in_vals;  ///< per-sweep input value pointers
  std::vector<double*> in_grads;       ///< per-sweep grad pointers (null: no grad)
  Node* tail = nullptr;
  std::int64_t elems = 0;
  std::int64_t eliminated = 0;  ///< interior value+grad doubles dropped
  bool complete = false;        ///< tail recorded, program built
};

namespace {

/// Effective backward parents: a fused tail stands in for its whole chain,
/// so traversal and the engine plan expand it through the chain's external
/// inputs (the merged parent set) instead of its literal parents (which
/// include bufferless interiors).
std::size_t eff_parent_count(const Node* n) {
  return n->fused != nullptr ? n->fused->inputs.size() : n->parents.size();
}

Node* eff_parent(const Node* n, std::size_t i) {
  return n->fused != nullptr ? n->fused->inputs[i] : n->parents[i].get();
}

/// Process-wide fusion switch: -1 = unresolved (consult YF_TAPE_FUSION on
/// first use), else 0/1. set_tape_fusion overrides the environment.
std::atomic<int> g_tape_fusion{-1};

int resolve_tape_fusion_env() {
  const std::string v = core::env_str("YF_TAPE_FUSION", "on");
  return (v == "off" || v == "0" || v == "false") ? 0 : 1;
}

thread_local GraphTape* t_active_tape = nullptr;

/// Process-wide DFS stamp source: unique epochs even when several tapes
/// traverse graphs that share leaf nodes.
std::atomic<std::uint64_t> g_visit_epoch{0};

/// Hard cap on backward participants; also sizes the stack-allocated
/// helper-task batch in run_engine.
constexpr int kMaxBackwardThreads = 64;

/// Process default participant count: YF_BACKWARD_THREADS when set
/// (0 = match the pool fan-out), else 1 (serial). The checked parse keeps
/// a typo'd value ("four") from strtol-ing to 0 and silently flipping
/// serial backward into match-the-pool mode.
int default_backward_threads() {
  static const int v = [] {
    if (const auto env = core::env_int_value("YF_BACKWARD_THREADS")) {
      const auto n = *env;
      if (n >= 0) return static_cast<int>(std::min<std::int64_t>(n, kMaxBackwardThreads));
    }
    return 1;
  }();
  return v;
}

NodePtr alias_handle(Node* n) {
  // Non-owning aliasing handle: no control block, no refcount traffic.
  return NodePtr(NodePtr{}, n);
}

}  // namespace

void set_tape_fusion(bool on) { g_tape_fusion.store(on ? 1 : 0, std::memory_order_relaxed); }

bool tape_fusion_enabled() {
  const int v = g_tape_fusion.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  static const int env = resolve_tape_fusion_env();
  return env != 0;
}

GraphTape::GraphTape(std::int64_t workspace_reserve) : ws_(workspace_reserve) {}

GraphTape::~GraphTape() {
  // Helper tasks carry a raw pointer to this tape; every one submitted
  // must have started (and found the pass done) or finished before the
  // state it touches goes away. Queued helpers run as soon as a pool
  // worker frees up, so this only blocks while the pool is saturated.
  {
    std::unique_lock lock(engine_mu_);
    engine_cv_.wait(lock, [&] { return submitted_helpers_ == 0 && active_helpers_ == 0; });
  }
  if (t_active_tape == this) t_active_tape = nullptr;
}

int GraphTape::backward_threads() const {
  int t = backward_threads_ >= 0 ? backward_threads_ : default_backward_threads();
  if (t == 0) t = static_cast<int>(core::ThreadPool::instance().fanout());
  return std::clamp(t, 1, kMaxBackwardThreads);
}

void GraphTape::begin_step() {
  // A fused rebuild step just finished re-recording: settle its chains
  // (complete ones go live; half-built ones get their buffers back).
  if (plan_active_) finalize_fusion_plan();
  if (tape_fusion_enabled()) {
    maybe_fuse();
  } else if (!chains_.empty()) {
    unfuse_all();
  }
  cursor_ = 0;
  ++steps_;
  step_start_fresh_ = fresh_;
}

bool GraphTape::matches(const Node& n, const char* sig, std::span<const NodePtr> parents,
                        std::span<const std::int64_t> dims, std::span<const double> attrs,
                        bool requires_grad) const {
  if (n.op_name != sig && std::strcmp(n.op_name, sig) != 0) return false;
  if (n.requires_grad != requires_grad) return false;
  if (n.parents.size() != parents.size()) return false;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (n.parents[i].get() != parents[i].get()) return false;
  }
  if (n.fuse_skip) {
    // Bufferless chain interior: the dropped value's shape lives in
    // fuse_dims.
    if (n.fuse_dims.size() != dims.size()) return false;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (n.fuse_dims[i] != dims[i]) return false;
    }
  } else {
    const auto& shape = n.value.shape();
    if (shape.size() != dims.size()) return false;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (shape[i] != dims[i]) return false;
    }
  }
  if (n.attrs.size() != attrs.size()) return false;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (n.attrs[i] != attrs[i]) return false;
  }
  return true;
}

GraphTape::Frame GraphTape::record(const char* sig, std::span<const NodePtr> parents,
                                   std::span<const std::int64_t> dims,
                                   std::span<const double> attrs) {
  bool requires_grad = false;
  for (const auto& p : parents) {
    if (!p) throw std::invalid_argument("GraphTape::record: null parent");
    requires_grad = requires_grad || p->requires_grad;
  }

  if (cursor_ < nodes_.size()) {
    Node& n = nodes_[cursor_];
    if (matches(n, sig, parents, dims, attrs, requires_grad)) {
      ++cursor_;
      ++replayed_;
      Frame f{&n, alias_handle(&n), false};
      if (n.fuse_skip) {
        // Chain interior: the tail's sweep materializes this value in a
        // register only.
        f.skip_compute = true;
      } else if (n.fused != nullptr) {
        // Chain tail: every input was replayed earlier this step (parents
        // precede consumers in recording order), so run the sweep now.
        run_fused_forward(n);
        f.skip_compute = true;
      }
      return f;
    }
    // Structure changed mid-stream: drop the stale tail (and its
    // workspace windows) and re-record from here. Fused chains crossing
    // the cut get their surviving members' buffers back first.
    ws_.rollback(n.ws_mark);
    truncate_fusion(cursor_);
    nodes_.resize(cursor_);
    ++structure_epoch_;
    order_valid_ = false;
  }

  // Fusion-plan lookup: while a rebuild step is re-recording, the plan
  // names each index's role in a chain. Any deviation from the planned
  // structure abandons the remainder of the plan (half-built chains are
  // repaired in place; already-completed ones stay fused).
  std::int8_t role = 0;
  const FusePlanEntry* pe = nullptr;
  if (plan_active_ && cursor_ < fuse_plan_.size() && fuse_plan_[cursor_].role != 0) {
    pe = &fuse_plan_[cursor_];
    std::int64_t elems = 1;
    for (const std::int64_t d : dims) elems *= d;
    const std::size_t arity =
        static_cast<core::detail::FusedOpKind>(pe->kind - 1) <= core::detail::FusedOpKind::kMul
            ? 2u
            : 1u;
    const std::size_t chain_len =
        chains_[static_cast<std::size_t>(pe->chain)]
            ? chains_[static_cast<std::size_t>(pe->chain)]->members.size()
            : 0u;
    const bool chain_open = pe->step == 0
                                ? chains_[static_cast<std::size_t>(pe->chain)] == nullptr
                                : chain_len == static_cast<std::size_t>(pe->step) &&
                                      !chains_[static_cast<std::size_t>(pe->chain)]->complete;
    const bool ok = (pe->sig == sig || std::strcmp(pe->sig, sig) == 0) && pe->elems == elems &&
                    requires_grad && parents.size() == arity && chain_open;
    if (ok) {
      role = pe->role;
    } else {
      abandon_fusion_plan();
      pe = nullptr;
    }
  }

  // A new consumer of a bufferless interior that is not its planned chain
  // successor needs a value the sweep never materializes: unfuse.
  for (const auto& p : parents) {
    Node* pn = p.get();
    if (pn->tape != this || !pn->fuse_skip) continue;
    if (role != 0 && pe->chain == pn->fuse_chain) continue;
    const auto c = static_cast<std::size_t>(pn->fuse_chain);
    if (c < chains_.size() && chains_[c] && chains_[c]->complete) {
      unfuse_chain(pn->fuse_chain);
    } else if (plan_active_) {
      abandon_fusion_plan();
      role = 0;
      pe = nullptr;
    }
  }

  const core::Workspace::Marker mark = ws_.mark();
  Node& n = nodes_.emplace_back();
  n.op_name = sig;
  n.tape = this;
  n.tape_index = static_cast<std::int64_t>(cursor_);
  n.ws_mark = mark;
  n.requires_grad = requires_grad;
  n.parents.assign(parents.begin(), parents.end());
  n.attrs.assign(attrs.begin(), attrs.end());
  if (role != 0) {
    n.fuse_kind = pe->kind;
    n.fuse_chain = pe->chain;
    n.fuse_step = pe->step;
    auto& slot = chains_[static_cast<std::size_t>(pe->chain)];
    if (!slot) slot = std::make_unique<FusedChain>();
    slot->members.push_back(&n);
  }
  if (role == 1) {
    // Interior: no buffers at all -- this is the workspace saving. The
    // shape survives in fuse_dims for replay matching.
    n.fuse_skip = true;
    n.fuse_dims.assign(dims.begin(), dims.end());
  } else {
    n.value = ws_.acquire(dims);
    if (requires_grad) {
      // Materialize the gradient now so backward closures can be built
      // once, at record time, against stable buffers.
      n.grad = ws_.acquire(dims);
      n.grad_allocated = true;
    }
  }
  if (role == 2) complete_chain(n);
  ++cursor_;
  ++fresh_;
  ++structure_epoch_;
  order_valid_ = false;
  Frame f{&n, alias_handle(&n), true};
  if (role == 1) {
    f.skip_compute = true;
  } else if (role == 2) {
    run_fused_forward(n);
    f.skip_compute = true;
  }
  return f;
}

void GraphTape::build_order(Node* out) {
  const std::uint64_t epoch = g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  order_.clear();
  dfs_stack_.clear();
  // Identical traversal to the heap path's topo_sort (variable.cpp):
  // iterative post-order DFS, parents expanded in list order, visited
  // tracked via epoch stamps instead of a hash set. Fused tails expand
  // through their chain's external inputs (collected in the order the
  // unfused DFS would first meet them -- see complete_chain), so the
  // traversal of everything *outside* a chain is unchanged and chain
  // interiors never enter the order.
  if (out->requires_grad) {
    dfs_stack_.push_back({out, 0});
    out->visit_epoch = epoch;
  }
  while (!dfs_stack_.empty()) {
    DfsFrame& f = dfs_stack_.back();
    if (f.next_parent < eff_parent_count(f.node)) {
      Node* p = eff_parent(f.node, f.next_parent++);
      if (p->requires_grad && p->visit_epoch != epoch) {
        p->visit_epoch = epoch;
        dfs_stack_.push_back({p, 0});
      }
    } else {
      order_.push_back(f.node);
      dfs_stack_.pop_back();
    }
  }
  order_out_ = out;
  order_epoch_ = structure_epoch_;
  order_visit_epoch_ = epoch;
  order_valid_ = true;
  build_plan();
}

void GraphTape::build_plan() {
  const auto n = static_cast<std::int32_t>(order_.size());
  for (std::int32_t i = 0; i < n; ++i) order_[i]->order_index = i;

  // Distinct requires-grad parents per node (CSR). Duplicate edges --
  // mul(x, x) -- are folded: the pullback runs once and accumulates both
  // contributions, so one gate per distinct parent is exact.
  par_off_.clear();
  par_idx_.clear();
  par_off_.reserve(static_cast<std::size_t>(n) + 1);
  par_off_.push_back(0);
  for (std::int32_t i = 0; i < n; ++i) {
    const Node* nd = order_[i];
    const auto edge_begin = static_cast<std::size_t>(par_off_.back());
    const std::size_t pc = eff_parent_count(nd);
    for (std::size_t pk = 0; pk < pc; ++pk) {
      const Node* pn = eff_parent(nd, pk);
      // A parent outside this traversal receives no gradient: no gate.
      if (!pn->requires_grad || pn->visit_epoch != order_visit_epoch_) continue;
      const std::int32_t pi = pn->order_index;
      bool dup = false;
      for (std::size_t e = edge_begin; e < par_idx_.size(); ++e) {
        if (par_idx_[e] == pi) {
          dup = true;
          break;
        }
      }
      if (!dup) par_idx_.push_back(pi);
    }
    par_off_.push_back(static_cast<std::int32_t>(par_idx_.size()));
  }

  // Consumer CSR, consumers listed in execution order (descending order
  // index -- execution walks order_ back-to-front).
  const std::size_t edges = par_idx_.size();
  cons_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t e = 0; e < edges; ++e) {
    ++cons_off_[static_cast<std::size_t>(par_idx_[e]) + 1];
  }
  for (std::int32_t i = 0; i < n; ++i) cons_off_[i + 1] += cons_off_[i];
  cons_fill_.assign(cons_off_.begin(), cons_off_.end() - 1);
  cons_idx_.resize(edges);
  for (std::int32_t i = n - 1; i >= 0; --i) {
    for (std::int32_t e = par_off_[i]; e < par_off_[i + 1]; ++e) {
      cons_idx_[static_cast<std::size_t>(cons_fill_[par_idx_[e]]++)] = i;
    }
  }

  // init_pending_[i] = consumer count (gradient completeness) plus one
  // sequence gate per parent edge where i is not that parent's first
  // consumer in execution order. next_consumer_[e] names the node whose
  // gate edge e opens. The serial order satisfies every gate, so the
  // engine cannot deadlock; every accumulation happens in serial order,
  // so trajectories are bit-identical at any thread count.
  next_consumer_.assign(edges, -1);
  init_pending_.assign(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    init_pending_[i] = cons_off_[i + 1] - cons_off_[i];
  }
  for (std::int32_t p = 0; p < n; ++p) {
    for (std::int32_t s = cons_off_[p]; s < cons_off_[p + 1]; ++s) {
      const std::int32_t c = cons_idx_[s];
      std::int32_t e = par_off_[c];
      while (par_idx_[e] != p) ++e;
      if (s + 1 < cons_off_[p + 1]) next_consumer_[e] = cons_idx_[s + 1];
      if (s > cons_off_[p]) ++init_pending_[c];
    }
  }

  pending_.resize(static_cast<std::size_t>(n));
  ready_.resize(std::max<std::size_t>(1, static_cast<std::size_t>(n)));
  ++plan_builds_;
}

// -- Tape fusion (DESIGN.md §13). ---------------------------------------------

void GraphTape::maybe_fuse() {
  // Fire only on a *stable* recording: the previous step fully replayed
  // (no truncation, no fresh nodes, cursor at the end) and backward
  // cached a traversal for it. One scan per structure epoch.
  if (steps_ == 0 || nodes_.empty()) return;
  if (cursor_ != nodes_.size()) return;
  if (fresh_ != step_start_fresh_) return;
  if (!order_valid_ || order_epoch_ != structure_epoch_) return;
  if (fusion_checked_epoch_ == structure_epoch_) return;
  fusion_checked_epoch_ = structure_epoch_;

  // Consumer-edge census over the whole recording. An interior must have
  // exactly one consumer *edge* (mul(x, x) counts twice), and it must be
  // the next node of the run.
  const std::size_t nn = nodes_.size();
  fuse_edges_.assign(nn, 0);
  fuse_single_.assign(nn, nullptr);
  for (Node& c : nodes_) {
    for (const NodePtr& p : c.parents) {
      Node* pn = p.get();
      if (pn->tape != this) continue;
      const auto idx = static_cast<std::size_t>(pn->tape_index);
      ++fuse_edges_[idx];
      fuse_single_[idx] = &c;
    }
  }

  const auto elems_of = [](const Node* nd) {
    return static_cast<std::int64_t>(nd->value.data().size());
  };
  const auto eligible = [this](Node* nd) {
    return nd->tape == this && nd->fuse_kind != 0 && !nd->fuse_skip && nd->fused == nullptr &&
           nd->fuse_chain < 0 && nd->requires_grad;
  };
  // Ops whose backward would re-run libm if their (bufferless) output sat
  // in a chain interior: tanh/sigmoid/exp read their own output, log's
  // consumer may read it. As chain *tails* they cost nothing -- backward
  // reads the stored output -- so runs may end on one but never continue
  // past it. Arithmetic interiors (add/mul/scalar/relu/square) replay at
  // ~a cycle per element and stay fusible.
  const auto costly_recompute = [](const Node* nd) {
    switch (static_cast<core::detail::FusedOpKind>(nd->fuse_kind - 1)) {
      case core::detail::FusedOpKind::kTanh:
      case core::detail::FusedOpKind::kSigmoid:
      case core::detail::FusedOpKind::kExp:
      case core::detail::FusedOpKind::kLog:
        return true;
      default:
        return false;
    }
  };

  // Greedy maximal runs over *consecutive* cached-order entries. Order
  // contiguity is what makes the fused backward bit-identical: in the
  // serial replay nothing executes between the chain's pullbacks, so
  // collapsing them into one sweep preserves every accumulation order.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end) in order_
  const std::size_t on = order_.size();
  for (std::size_t i = 0; i < on;) {
    if (!eligible(order_[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < on && (j + 1 - i) < static_cast<std::size_t>(core::detail::kMaxFusedSteps)) {
      Node* cur = order_[j];
      Node* nxt = order_[j + 1];
      if (!eligible(nxt)) break;
      if (cur == order_out_) break;  // the backward root keeps its buffers
      if (costly_recompute(cur)) break;  // transcendental tails only
      const auto ci = static_cast<std::size_t>(cur->tape_index);
      if (fuse_edges_[ci] != 1 || fuse_single_[ci] != nxt) break;
      if (elems_of(nxt) != elems_of(cur)) break;
      ++j;
    }
    if (j > i) runs.emplace_back(i, j + 1);
    i = j + 1;
  }
  if (runs.empty()) return;

  // Plan: per recording index, the node's role in the fused re-recording.
  // Chains that already exist are re-derived under fresh ids (the rebuild
  // below drops every node, so they must be re-established the same way
  // new runs are).
  fuse_plan_.assign(nn, FusePlanEntry{});
  std::int32_t nchains = 0;
  for (const auto& up : chains_) {
    if (!up || !up->complete) continue;
    const std::int32_t id = nchains++;
    for (std::size_t s = 0; s < up->members.size(); ++s) {
      Node* m = up->members[s];
      FusePlanEntry& e = fuse_plan_[static_cast<std::size_t>(m->tape_index)];
      e.sig = m->op_name;
      e.elems = up->elems;
      e.kind = m->fuse_kind;
      e.role = s + 1 == up->members.size() ? 2 : 1;
      e.chain = id;
      e.step = static_cast<std::int32_t>(s);
    }
  }
  for (const auto& [rb, re] : runs) {
    const std::int32_t id = nchains++;
    for (std::size_t s = 0; s + rb < re; ++s) {
      Node* m = order_[rb + s];
      FusePlanEntry& e = fuse_plan_[static_cast<std::size_t>(m->tape_index)];
      e.sig = m->op_name;
      e.elems = elems_of(m);
      e.kind = m->fuse_kind;
      e.role = rb + s + 1 == re ? 2 : 1;
      e.chain = id;
      e.step = static_cast<std::int32_t>(s);
    }
  }

  // Rebuild: drop every node and let the next step re-record under the
  // plan. Rolling the workspace all the way back is what actually
  // reclaims the interiors' storage -- the re-recorded graph acquires
  // value/grad windows for non-interior nodes only, and the fresh
  // high-water mark measures the fused footprint on its own.
  if (!hook_nodes_.empty()) {
    std::size_t w = 0;
    for (Node* nd : hook_nodes_) {
      if (nd->tape != this) hook_nodes_[w++] = nd;
    }
    if (w != hook_nodes_.size()) {
      hook_nodes_.resize(w);
      ++hooks_epoch_;
    }
  }
  nodes_.clear();
  chains_.clear();
  chains_.resize(static_cast<std::size_t>(nchains));
  fused_nodes_ = 0;
  fusion_chains_ = 0;
  eliminated_bytes_ = 0;
  cursor_ = 0;
  ws_.reset();
  ws_.reset_high_water();
  ++structure_epoch_;
  order_valid_ = false;
  plan_active_ = true;
  ++fusion_rebuilds_;
}

void GraphTape::complete_chain(Node& tail) {
  FusedChain& ch = *chains_[static_cast<std::size_t>(tail.fuse_chain)];
  ch.tail = &tail;
  ch.elems = static_cast<std::int64_t>(tail.value.data().size());

  // External inputs, collected by a member-first walk that mirrors how
  // the backward DFS expands parents: tail's parents in list order, with
  // same-chain parents recursing before the walk moves on. build_order
  // expands the tail through this list, so the fused traversal meets
  // every external subtree in exactly the order the unfused one did --
  // anything else would reorder accumulations elsewhere in the graph and
  // fork the trajectory.
  ch.inputs.clear();
  const auto is_member = [&](const Node* p) {
    return p->tape == this && p->fuse_chain == tail.fuse_chain;
  };
  const auto collect = [&](const auto& self, const Node* m) -> void {
    for (const NodePtr& pp : m->parents) {
      Node* pn = pp.get();
      if (is_member(pn)) {
        self(self, pn);
      } else if (std::find(ch.inputs.begin(), ch.inputs.end(), pn) == ch.inputs.end()) {
        ch.inputs.push_back(pn);
      }
    }
  };
  collect(collect, &tail);

  // Straight-line program, one step per member in chain order.
  ch.steps.clear();
  for (std::size_t s = 0; s < ch.members.size(); ++s) {
    const Node* m = ch.members[s];
    core::detail::FusedStep st;
    st.op = static_cast<core::detail::FusedOpKind>(m->fuse_kind - 1);
    const auto operand = [&](const Node* p) -> std::int32_t {
      if (is_member(p)) return p->fuse_step;
      const auto it = std::find(ch.inputs.begin(), ch.inputs.end(), p);
      return ~static_cast<std::int32_t>(it - ch.inputs.begin());
    };
    st.a = operand(m->parents[0].get());
    if (m->parents.size() > 1) st.b = operand(m->parents[1].get());
    if (st.op == core::detail::FusedOpKind::kAddScalar ||
        st.op == core::detail::FusedOpKind::kMulScalar) {
      st.s = m->attrs[0];
    }
    ch.steps.push_back(st);
  }

  ch.in_vals.resize(ch.inputs.size());
  ch.in_grads.resize(ch.inputs.size());
  // Interiors dropped a value and a grad window each (interiors always
  // require grad -- that's how they got into the traversal).
  ch.eliminated = static_cast<std::int64_t>(ch.members.size() - 1) * 2 * ch.elems;
  ch.complete = true;
  tail.fused = &ch;
  fused_nodes_ += static_cast<std::int64_t>(ch.members.size());
  fusion_chains_ += 1;
  eliminated_bytes_ += ch.eliminated * static_cast<std::int64_t>(sizeof(double));
}

void GraphTape::run_fused_forward(Node& tail) {
  FusedChain& ch = *tail.fused;
  // Operand pointers re-resolve per sweep: parameters may live in an
  // arena that was repointed between steps.
  for (std::size_t k = 0; k < ch.inputs.size(); ++k) {
    ch.in_vals[k] = ch.inputs[k]->value.data().data();
  }
  core::detail::active_table().fused_forward(tail.value.data().data(), ch.in_vals.data(),
                                             ch.steps.data(),
                                             static_cast<std::int32_t>(ch.steps.size()), ch.elems);
}

void GraphTape::run_fused_backward(Node& tail) {
  FusedChain& ch = *tail.fused;
  for (std::size_t k = 0; k < ch.inputs.size(); ++k) {
    Node* in = ch.inputs[k];
    ch.in_vals[k] = in->value.data().data();
    ch.in_grads[k] = in->requires_grad ? in->ensure_grad().data().data() : nullptr;
  }
  core::detail::active_table().fused_backward(tail.value.data().data(), tail.grad.data().data(),
                                              ch.in_vals.data(), ch.in_grads.data(),
                                              ch.steps.data(),
                                              static_cast<std::int32_t>(ch.steps.size()), ch.elems);
}

void GraphTape::finalize_fusion_plan() {
  plan_active_ = false;
  fuse_plan_.clear();
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    if (chains_[c] && !chains_[c]->complete) unfuse_chain(static_cast<std::int32_t>(c));
  }
}

void GraphTape::abandon_fusion_plan() { finalize_fusion_plan(); }

void GraphTape::unfuse_chain(std::int32_t chain) {
  if (chain < 0 || static_cast<std::size_t>(chain) >= chains_.size()) return;
  if (!chains_[static_cast<std::size_t>(chain)]) return;
  FusedChain& ch = *chains_[static_cast<std::size_t>(chain)];
  if (ch.complete) {
    fused_nodes_ -= static_cast<std::int64_t>(ch.members.size());
    fusion_chains_ -= 1;
    eliminated_bytes_ -= ch.eliminated * static_cast<std::int64_t>(sizeof(double));
  }
  // Head-to-tail so a member's same-chain parent is repaired (has a
  // value) before the member recomputes from it.
  for (Node* m : ch.members) {
    if (m->fuse_skip) repair_node(*m);
    m->fuse_skip = false;
    m->fuse_chain = -1;
    m->fuse_step = -1;
    m->fuse_dims.clear();
    m->fused = nullptr;
  }
  chains_[static_cast<std::size_t>(chain)].reset();
  order_valid_ = false;
}

void GraphTape::repair_node(Node& n) {
  // Buffers come back as *heap* tensors, not workspace windows: a window
  // acquired now would sit above later nodes' markers and be recycled by
  // the next rollback that crosses them (window lifetime is tied to
  // recording position -- the arena invariant).
  const tensor::Shape shape(n.fuse_dims.begin(), n.fuse_dims.end());
  n.value = tensor::Tensor(shape);
  if (n.requires_grad && !n.grad_allocated) {
    n.grad = tensor::Tensor(shape);
    n.grad_allocated = true;
  }
  // Recompute this step's value exactly as the unfused op would have.
  const Node* a = n.parents[0].get();
  const Node* b = n.parents.size() > 1 ? n.parents[1].get() : nullptr;
  using K = core::detail::FusedOpKind;
  switch (static_cast<K>(n.fuse_kind - 1)) {
    case K::kAdd:
      t::add_into(n.value, a->value, b->value);
      break;
    case K::kSub:
      t::sub_into(n.value, a->value, b->value);
      break;
    case K::kMul:
      t::mul_into(n.value, a->value, b->value);
      break;
    case K::kAddScalar:
      t::add_scalar_into(n.value, a->value, n.attrs[0]);
      break;
    case K::kMulScalar:
      t::mul_scalar_into(n.value, a->value, n.attrs[0]);
      break;
    case K::kRelu:
      t::relu_into(n.value, a->value);
      break;
    case K::kTanh:
      t::tanh_into(n.value, a->value);
      break;
    case K::kSigmoid:
      t::sigmoid_into(n.value, a->value);
      break;
    case K::kExp:
      t::exp_into(n.value, a->value);
      break;
    case K::kLog:
      t::log_into(n.value, a->value);
      break;
    case K::kSquare:
      t::square_into(n.value, a->value);
      break;
  }
}

void GraphTape::truncate_fusion(std::size_t cut) {
  // Mid-rebuild structure change: the plan indexes a recording that is
  // about to diverge. Drop it (repairing half-built chains) before the
  // nodes above the cut go away.
  if (plan_active_) abandon_fusion_plan();
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    if (!chains_[c]) continue;
    FusedChain& ch = *chains_[c];
    bool crosses = false;
    for (const Node* m : ch.members) {
      if (static_cast<std::size_t>(m->tape_index) >= cut) {
        crosses = true;
        break;
      }
    }
    if (!crosses) continue;
    // Members below the cut survive as ordinary nodes (their flags die
    // with the chain); members above die with the truncation itself.
    if (ch.complete) {
      fused_nodes_ -= static_cast<std::int64_t>(ch.members.size());
      fusion_chains_ -= 1;
      eliminated_bytes_ -= ch.eliminated * static_cast<std::int64_t>(sizeof(double));
    }
    for (Node* m : ch.members) {
      if (static_cast<std::size_t>(m->tape_index) >= cut) continue;
      if (m->fuse_skip) repair_node(*m);
      m->fuse_skip = false;
      m->fuse_chain = -1;
      m->fuse_step = -1;
      m->fuse_dims.clear();
      m->fused = nullptr;
    }
    chains_[c].reset();
  }
}

void GraphTape::materialize_interior(Node* n) {
  if (n == nullptr || !n->fuse_skip) return;
  unfuse_chain(n->fuse_chain);
  // During a rebuild the rest of this chain's plan entries now point at a
  // dead slot; the next planned member will notice and abandon. Nothing
  // to do here.
}

void GraphTape::unfuse_all() {
  if (plan_active_) abandon_fusion_plan();
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    unfuse_chain(static_cast<std::int32_t>(c));
  }
  chains_.clear();
  // Allow the pass to re-fire on this same structure if fusion is turned
  // back on.
  fusion_checked_epoch_ = ~std::uint64_t{0};
}

void GraphTape::set_backward_hooks(BackwardHooks* hooks, std::span<const LeafGroup> leaves,
                                   std::size_t group_count) {
  for (Node* nd : hook_nodes_) nd->hook_group = -1;
  hook_nodes_.clear();
  hooks_ = hooks;
  hook_group_count_ = hooks != nullptr ? group_count : 0;
  if (hooks != nullptr) {
    hook_nodes_.reserve(leaves.size());
    for (const LeafGroup& lg : leaves) {
      if (lg.node == nullptr || lg.group >= group_count) {
        throw std::invalid_argument("GraphTape::set_backward_hooks: bad leaf group");
      }
      if (lg.node->hook_group >= 0) continue;  // tied parameters: one gate
      lg.node->hook_group = static_cast<std::int32_t>(lg.group);
      hook_nodes_.push_back(lg.node);
    }
  }
  ++hooks_epoch_;
}

void GraphTape::ensure_group_counts() {
  if (hooks_ == nullptr) return;
  if (group_hooks_epoch_ == hooks_epoch_ && group_plan_builds_ == plan_builds_) return;
  group_init_.assign(hook_group_count_, 0);
  group_remaining_.assign(hook_group_count_, 0);
  for (const Node* nd : hook_nodes_) {
    // Leaves absent from the current traversal never execute and never
    // fire; their groups stay at their init count and the caller's
    // post-backward sweep covers them.
    if (nd->visit_epoch != order_visit_epoch_) continue;
    ++group_init_[static_cast<std::size_t>(nd->hook_group)];
  }
  group_hooks_epoch_ = hooks_epoch_;
  group_plan_builds_ = plan_builds_;
}

void GraphTape::backward_from(Node* out, const tensor::Tensor& seed) {
  if (out == nullptr || out->tape != this) {
    throw std::logic_error("GraphTape::backward_from: node does not belong to this tape");
  }
  if (out->fuse_skip) {
    // Interior values (and grads) only ever exist in sweep registers;
    // there is nothing to seed. See DESIGN.md §13 on handle visibility.
    throw std::logic_error("GraphTape::backward_from: node is a fused-chain interior");
  }
  if (!out->requires_grad) return;
  if (!(order_valid_ && order_out_ == out && order_epoch_ == structure_epoch_)) {
    build_order(out);
  }
  // From inside a pool worker (param-server replicas) the engine runs
  // with zero helpers: its peers are draining their own passes.
  int threads = backward_threads();
  if (core::ThreadPool::on_worker_thread()) threads = 1;
  if (threads > 1 || hooks_ != nullptr) {
    run_engine(out, seed, threads);
    return;
  }
  // Same pass as the heap path: materialize, zero the non-leaf per-pass
  // buffers, seed, then run pullbacks children-before-parents.
  for (Node* n : order_) n->ensure_grad();
  for (Node* n : order_) {
    if (!n->parents.empty()) n->grad.zero_();
  }
  out->ensure_grad().add_(seed);
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    Node* n = *it;
    if (n->fused != nullptr) {
      run_fused_backward(*n);
    } else if (n->backward_fn) {
      n->backward_fn(*n);
    }
  }
}

void GraphTape::run_engine(Node* out, const tensor::Tensor& seed, int threads) {
  ensure_group_counts();
  // Prologue identical to the serial path.
  for (Node* n : order_) n->ensure_grad();
  for (Node* n : order_) {
    if (!n->parents.empty()) n->grad.zero_();
  }
  out->ensure_grad().add_(seed);

  const auto n = static_cast<std::int32_t>(order_.size());
  std::copy(init_pending_.begin(), init_pending_.end(), pending_.begin());
  std::copy(group_init_.begin(), group_init_.end(), group_remaining_.begin());
  executed_.store(0, std::memory_order_relaxed);
  engine_failed_.store(false, std::memory_order_relaxed);
  engine_error_ = nullptr;
  engine_total_ = n;
  {
    std::scoped_lock lock(engine_mu_);
    engine_done_ = false;
    ready_head_ = 0;
    ready_count_ = 0;
    // Seed the ring in execution order; normally only the output node
    // starts with no open gates.
    for (std::int32_t i = n - 1; i >= 0; --i) {
      if (init_pending_[i] == 0) ready_[ready_count_++] = i;
    }
  }

  int helpers = std::min({threads - 1, kMaxBackwardThreads - 1, n - 1});
  if (helpers > 0) {
    auto& pool = core::ThreadPool::instance();
    pool.ensure_workers(static_cast<std::size_t>(helpers));
    std::array<core::RawTask, kMaxBackwardThreads> tasks;
    for (int h = 0; h < helpers; ++h) {
      tasks[static_cast<std::size_t>(h)] = {&GraphTape::helper_entry, this};
    }
    {
      std::scoped_lock lock(engine_mu_);
      submitted_helpers_ += helpers;
    }
    const std::size_t accepted = pool.try_submit_batch(
        std::span<const core::RawTask>(tasks.data(), static_cast<std::size_t>(helpers)));
    if (accepted < static_cast<std::size_t>(helpers)) {
      // Ring full: proceed with fewer helpers.
      std::scoped_lock lock(engine_mu_);
      submitted_helpers_ -= helpers - static_cast<int>(accepted);
    }
  }

  {
    // Mark the driving thread as a worker so kernels inside pullbacks run
    // inline instead of fanning chunks onto a pool that is busy draining
    // this very pass (parallelism now comes from the graph, not the
    // elementwise sweeps).
    core::detail::ScopedWorkerMark mark;
    engine_worker();
  }

  std::unique_lock lock(engine_mu_);
  engine_cv_.wait(lock, [&] { return engine_done_ && active_helpers_ == 0; });
  if (engine_error_) {
    const std::exception_ptr err = engine_error_;
    engine_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void GraphTape::engine_worker() {
  for (;;) {
    std::int32_t index;
    {
      std::unique_lock lock(engine_mu_);
      engine_cv_.wait(lock, [&] { return engine_done_ || ready_count_ > 0; });
      if (ready_count_ == 0) return;  // pass complete
      index = ready_[ready_head_];
      ready_head_ = (ready_head_ + 1) % ready_.size();
      --ready_count_;
    }
    execute_node(index);
  }
}

void GraphTape::execute_node(std::int32_t index) {
  Node* node = order_[static_cast<std::size_t>(index)];
  if ((node->fused != nullptr || node->backward_fn) &&
      !engine_failed_.load(std::memory_order_relaxed)) {
    try {
      if (node->fused != nullptr) {
        run_fused_backward(*node);
      } else {
        node->backward_fn(*node);
      }
    } catch (...) {
      engine_failed_.store(true, std::memory_order_relaxed);
      std::scoped_lock lock(engine_mu_);
      if (!engine_error_) engine_error_ = std::current_exception();
    }
  }
  if (hooks_ != nullptr && node->hook_group >= 0 &&
      static_cast<std::size_t>(node->hook_group) < hook_group_count_) {
    std::atomic_ref<std::int32_t> remaining(
        group_remaining_[static_cast<std::size_t>(node->hook_group)]);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        !engine_failed_.load(std::memory_order_relaxed)) {
      try {
        hooks_->on_group_complete(static_cast<std::size_t>(node->hook_group));
      } catch (...) {
        engine_failed_.store(true, std::memory_order_relaxed);
        std::scoped_lock lock(engine_mu_);
        if (!engine_error_) engine_error_ = std::current_exception();
      }
    }
  }
  for (std::int32_t e = par_off_[index]; e < par_off_[index + 1]; ++e) {
    // Open the next sibling's sequence gate, then retire this node's
    // consumer slot on the parent. The acq_rel chains through these
    // counters order every accumulation into a shared parent exactly as
    // the serial replay would.
    if (next_consumer_[e] >= 0) decrement_pending(next_consumer_[e]);
    decrement_pending(par_idx_[e]);
  }
  if (executed_.fetch_add(1, std::memory_order_acq_rel) + 1 == engine_total_) {
    {
      std::scoped_lock lock(engine_mu_);
      engine_done_ = true;
    }
    engine_cv_.notify_all();
  }
}

void GraphTape::decrement_pending(std::int32_t index) {
  std::atomic_ref<std::int32_t> pending(pending_[static_cast<std::size_t>(index)]);
  if (pending.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  {
    std::scoped_lock lock(engine_mu_);
    ready_[(ready_head_ + ready_count_) % ready_.size()] = index;
    ++ready_count_;
  }
  engine_cv_.notify_one();
}

void GraphTape::helper_entry(void* ctx) {
  auto* tape = static_cast<GraphTape*>(ctx);
  {
    std::scoped_lock lock(tape->engine_mu_);
    --tape->submitted_helpers_;
    if (tape->engine_done_) {
      // Stale task: the pass it was submitted for already finished.
      tape->engine_cv_.notify_all();  // the destructor may be waiting
      return;
    }
    ++tape->active_helpers_;
  }
  tape->engine_worker();
  {
    std::scoped_lock lock(tape->engine_mu_);
    --tape->active_helpers_;
    // Notify while still holding the lock: the destructor's wait cannot
    // return (and destroy the condition variable) until we release it,
    // so the broadcast never touches a dead cv.
    tape->engine_cv_.notify_all();
  }
}

GraphTape* active_tape() { return t_active_tape; }

TapeScope::TapeScope(GraphTape* tape) {
  if (tape == nullptr) return;
  prev_ = t_active_tape;
  t_active_tape = tape;
  installed_ = true;
}

TapeScope::~TapeScope() {
  if (installed_) t_active_tape = prev_;
}

GraphTape::Frame make_frame(const char* sig, std::span<const NodePtr> parents,
                            std::span<const std::int64_t> dims, std::span<const double> attrs) {
  if (GraphTape* tape = active_tape()) {
    return tape->record(sig, parents, dims, attrs);
  }
  GraphTape::Frame frame;
  auto node = std::make_shared<Node>();
  node->op_name = sig;
  node->value = tensor::Tensor(tensor::Shape(dims.begin(), dims.end()));
  bool requires_grad = false;
  for (const auto& p : parents) {
    if (!p) throw std::invalid_argument("make_frame: null parent");
    requires_grad = requires_grad || p->requires_grad;
  }
  node->requires_grad = requires_grad;
  if (requires_grad) {
    // The heap path keeps the historical economy: parents and the
    // backward closure are only retained when gradients can flow.
    node->parents.assign(parents.begin(), parents.end());
  }
  frame.node = node.get();
  frame.handle = std::move(node);
  frame.fresh = true;
  return frame;
}

tensor::Tensor make_scratch(std::span<const std::int64_t> dims) {
  if (GraphTape* tape = active_tape()) return tape->scratch(dims);
  return tensor::Tensor(tensor::Shape(dims.begin(), dims.end()));
}

tensor::Tensor make_scratch(std::initializer_list<std::int64_t> dims) {
  return make_scratch(std::span<const std::int64_t>(dims.begin(), dims.size()));
}

}  // namespace yf::autograd
