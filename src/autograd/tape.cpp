#include "autograd/tape.hpp"

#include <cstring>
#include <stdexcept>

namespace yf::autograd {

namespace {

thread_local GraphTape* t_active_tape = nullptr;

/// Process-wide DFS stamp source: unique epochs even when several tapes
/// traverse graphs that share leaf nodes.
std::atomic<std::uint64_t> g_visit_epoch{0};

NodePtr alias_handle(Node* n) {
  // Non-owning aliasing handle: no control block, no refcount traffic.
  return NodePtr(NodePtr{}, n);
}

}  // namespace

GraphTape::GraphTape(std::int64_t workspace_reserve) : ws_(workspace_reserve) {}

GraphTape::~GraphTape() {
  if (t_active_tape == this) t_active_tape = nullptr;
}

void GraphTape::begin_step() {
  cursor_ = 0;
  ++steps_;
}

bool GraphTape::matches(const Node& n, const char* sig, std::span<const NodePtr> parents,
                        std::span<const std::int64_t> dims, std::span<const double> attrs,
                        bool requires_grad) const {
  if (n.op_name != sig && std::strcmp(n.op_name, sig) != 0) return false;
  if (n.requires_grad != requires_grad) return false;
  if (n.parents.size() != parents.size()) return false;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (n.parents[i].get() != parents[i].get()) return false;
  }
  const auto& shape = n.value.shape();
  if (shape.size() != dims.size()) return false;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (shape[i] != dims[i]) return false;
  }
  if (n.attrs.size() != attrs.size()) return false;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (n.attrs[i] != attrs[i]) return false;
  }
  return true;
}

GraphTape::Frame GraphTape::record(const char* sig, std::span<const NodePtr> parents,
                                   std::span<const std::int64_t> dims,
                                   std::span<const double> attrs) {
  bool requires_grad = false;
  for (const auto& p : parents) {
    if (!p) throw std::invalid_argument("GraphTape::record: null parent");
    requires_grad = requires_grad || p->requires_grad;
  }

  if (cursor_ < nodes_.size()) {
    Node& n = nodes_[cursor_];
    if (matches(n, sig, parents, dims, attrs, requires_grad)) {
      ++cursor_;
      ++replayed_;
      return {&n, alias_handle(&n), false};
    }
    // Structure changed mid-stream: drop the stale tail (and its
    // workspace windows) and re-record from here.
    ws_.rollback(n.ws_mark);
    nodes_.resize(cursor_);
    ++structure_epoch_;
    order_valid_ = false;
  }

  const core::Workspace::Marker mark = ws_.mark();
  Node& n = nodes_.emplace_back();
  n.op_name = sig;
  n.tape = this;
  n.tape_index = static_cast<std::int64_t>(cursor_);
  n.ws_mark = mark;
  n.requires_grad = requires_grad;
  n.parents.assign(parents.begin(), parents.end());
  n.attrs.assign(attrs.begin(), attrs.end());
  n.value = ws_.acquire(dims);
  if (requires_grad) {
    // Materialize the gradient now so backward closures can be built
    // once, at record time, against stable buffers.
    n.grad = ws_.acquire(dims);
    n.grad_allocated = true;
  }
  ++cursor_;
  ++fresh_;
  ++structure_epoch_;
  order_valid_ = false;
  return {&n, alias_handle(&n), true};
}

void GraphTape::build_order(Node* out) {
  const std::uint64_t epoch = g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  order_.clear();
  dfs_stack_.clear();
  // Identical traversal to the heap path's topo_sort (variable.cpp):
  // iterative post-order DFS, parents expanded in list order, visited
  // tracked via epoch stamps instead of a hash set.
  if (out->requires_grad) {
    dfs_stack_.push_back({out, 0});
    out->visit_epoch = epoch;
  }
  while (!dfs_stack_.empty()) {
    DfsFrame& f = dfs_stack_.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && p->visit_epoch != epoch) {
        p->visit_epoch = epoch;
        dfs_stack_.push_back({p, 0});
      }
    } else {
      order_.push_back(f.node);
      dfs_stack_.pop_back();
    }
  }
  order_out_ = out;
  order_epoch_ = structure_epoch_;
  order_valid_ = true;
}

void GraphTape::backward_from(Node* out, const tensor::Tensor& seed) {
  if (out == nullptr || out->tape != this) {
    throw std::logic_error("GraphTape::backward_from: node does not belong to this tape");
  }
  if (!out->requires_grad) return;
  if (!(order_valid_ && order_out_ == out && order_epoch_ == structure_epoch_)) {
    build_order(out);
  }
  // Same pass as the heap path: materialize, zero the non-leaf per-pass
  // buffers, seed, then run pullbacks children-before-parents.
  for (Node* n : order_) n->ensure_grad();
  for (Node* n : order_) {
    if (!n->parents.empty()) n->grad.zero_();
  }
  out->ensure_grad().add_(seed);
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

GraphTape* active_tape() { return t_active_tape; }

TapeScope::TapeScope(GraphTape* tape) {
  if (tape == nullptr) return;
  prev_ = t_active_tape;
  t_active_tape = tape;
  installed_ = true;
}

TapeScope::~TapeScope() {
  if (installed_) t_active_tape = prev_;
}

GraphTape::Frame make_frame(const char* sig, std::span<const NodePtr> parents,
                            std::span<const std::int64_t> dims, std::span<const double> attrs) {
  if (GraphTape* tape = active_tape()) {
    return tape->record(sig, parents, dims, attrs);
  }
  GraphTape::Frame frame;
  auto node = std::make_shared<Node>();
  node->op_name = sig;
  node->value = tensor::Tensor(tensor::Shape(dims.begin(), dims.end()));
  bool requires_grad = false;
  for (const auto& p : parents) {
    if (!p) throw std::invalid_argument("make_frame: null parent");
    requires_grad = requires_grad || p->requires_grad;
  }
  node->requires_grad = requires_grad;
  if (requires_grad) {
    // The heap path keeps the historical economy: parents and the
    // backward closure are only retained when gradients can flow.
    node->parents.assign(parents.begin(), parents.end());
  }
  frame.node = node.get();
  frame.handle = std::move(node);
  frame.fresh = true;
  return frame;
}

tensor::Tensor make_scratch(std::span<const std::int64_t> dims) {
  if (GraphTape* tape = active_tape()) return tape->scratch(dims);
  return tensor::Tensor(tensor::Shape(dims.begin(), dims.end()));
}

tensor::Tensor make_scratch(std::initializer_list<std::int64_t> dims) {
  return make_scratch(std::span<const std::int64_t>(dims.begin(), dims.size()));
}

}  // namespace yf::autograd
