// Differentiable operations over yf::autograd::Variable.
//
// Each op computes its value eagerly with yf::tensor and records a pullback
// closure that scatters the output gradient into the parents. Ops taking
// integer index arguments (embedding, cross-entropy labels) treat those as
// non-differentiable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "autograd/variable.hpp"

namespace yf::autograd {

// Every op records onto the thread's active GraphTape when one is
// installed (autograd/tape.hpp) -- reusing the cached node, output buffer
// and backward closure of the previous step when the structure matches --
// and falls back to a fresh heap node otherwise. Gradients are
// bit-identical between the two paths.

// -- Elementwise / scalar ops. -----------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);  ///< elementwise
Variable neg(const Variable& a);
Variable add_scalar(const Variable& a, double s);
Variable mul_scalar(const Variable& a, double s);
Variable relu(const Variable& a);
Variable tanh(const Variable& a);
Variable sigmoid(const Variable& a);
Variable exp(const Variable& a);
Variable log(const Variable& a);   ///< natural log; caller guarantees positivity
Variable square(const Variable& a);

// -- Reductions. ----------------------------------------------------------------
Variable sum(const Variable& a);   ///< scalar (1-element) output
Variable mean(const Variable& a);  ///< scalar output

// -- Constants. ---------------------------------------------------------------
/// All-zeros constant (requires_grad == false). Under a tape the zero
/// buffer is cached across steps, so per-step zero states are free.
Variable zeros(std::span<const std::int64_t> dims);
Variable zeros(std::initializer_list<std::int64_t> dims);

// -- Shape ops. --------------------------------------------------------------
Variable reshape(const Variable& a, std::span<const std::int64_t> dims);
Variable reshape(const Variable& a, std::initializer_list<std::int64_t> dims);
Variable reshape(const Variable& a, tensor::Shape new_shape);
/// Columns [col_begin, col_end) of a 2-D tensor.
Variable slice_cols(const Variable& a, std::int64_t col_begin, std::int64_t col_end);
/// Concatenate 2-D tensors along columns (all with equal row counts).
Variable concat_cols(const std::vector<Variable>& parts);
/// Stack rank-1 tensors (or 2-D [1,n] rows) into a 2-D tensor -- not needed;
/// use concat_cols/reshape instead.

// -- Linear algebra. -----------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);
/// C = A @ Bᵀ without materializing the transpose (A [m,k], B [n,k]):
/// the GEMM NT variant absorbs it in the packing step. Used for the
/// tied-embedding decode; the matmul/conv pullbacks use the tensor-level
/// NT/TN kernels directly.
Variable matmul_nt(const Variable& a, const Variable& b);
/// Transpose of a 2-D variable.
Variable transpose(const Variable& a);
/// y[m,n] = a[m,n] + bias[n].
Variable add_row_broadcast(const Variable& a, const Variable& bias);

// -- Neural-net specific. ------------------------------------------------------
/// Mean cross-entropy of logits [B, C] against integer labels (size B).
/// Numerically stable log-sum-exp formulation.
Variable softmax_cross_entropy(const Variable& logits, const std::vector<std::int64_t>& labels);

/// Row-wise softmax probabilities (forward only helper; differentiable).
Variable softmax(const Variable& logits);

/// Embedding lookup: weight [V, E], indices (size B) -> output [B, E].
Variable embedding(const Variable& weight, const std::vector<std::int64_t>& indices);

/// 2-D convolution, NCHW. input [N, C, H, W], weight [F, C, KH, KW],
/// bias [F]. Zero padding `pad` on all sides, square stride.
Variable conv2d(const Variable& input, const Variable& weight, const Variable& bias,
                std::int64_t stride, std::int64_t pad);

/// Batch normalization over NCHW input using *batch* statistics (training
/// mode): per channel c, y = gamma[c] * (x - mean_c)/sqrt(var_c + eps) +
/// beta[c], where mean/var pool over N, H, W.
Variable batch_norm2d(const Variable& input, const Variable& gamma, const Variable& beta,
                      double eps = 1e-5);

/// Global average pooling: [N, C, H, W] -> [N, C].
Variable global_avg_pool(const Variable& input);

/// 2x2 average pooling with stride 2 (H, W must be even): [N,C,H,W] -> [N,C,H/2,W/2].
Variable avg_pool2x2(const Variable& input);

}  // namespace yf::autograd
