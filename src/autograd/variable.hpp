// Tape-based reverse-mode automatic differentiation.
//
// A `Variable` is a cheap handle onto a graph `Node`. Each forward op
// produces a node whose `backward_fn` scatters the node's gradient into
// its parents. Calling `Variable::backward()` on a scalar output runs the
// graph in reverse topological order.
//
// Nodes come from one of two owners:
//
//  * the historical heap path: every op makes a fresh
//    `shared_ptr<Node>`, freed when the last Variable handle drops --
//    per-step memory is bounded by a single forward pass;
//  * an active `GraphTape` (autograd/tape.hpp): nodes live in the tape's
//    pool and are *reused* across steps when the recorded op structure
//    matches, with values/grads backed by a core::Workspace. After a
//    one-step warm-up a training step performs no heap allocation in
//    forward or backward. Tape handles are non-owning: they stay valid
//    until the tape truncates that node (structure change) or dies.
//
// Parameters are *leaf* variables (`requires_grad == true`, no parents);
// their `.grad()` accumulates across backward calls until `zero_grad()`.
// A gradient buffer is materialized only when something actually flows
// into it: `has_grad()` tells the two states apart, and `grad()` on a
// gradient-free variable returns a shared immutable empty tensor rather
// than silently allocating (see DESIGN.md §8).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/workspace.hpp"
#include "tensor/tensor.hpp"

namespace yf::autograd {

struct Node;
using NodePtr = std::shared_ptr<Node>;
class GraphTape;
struct FusedChain;  // compiled fused-sweep program (autograd/tape.cpp)

/// A node in the dynamically-built computation graph.
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;      ///< same shape as `value`; allocated lazily
  bool requires_grad = false;
  bool grad_allocated = false;
  std::vector<NodePtr> parents;
  /// Propagates `this->grad` into `parents` (invoked once, in topo order).
  std::function<void(Node&)> backward_fn;
  const char* op_name = "leaf";  ///< static string; doubles as the tape signature

  // -- Tape bookkeeping (null/empty on heap nodes). -------------------------
  GraphTape* tape = nullptr;        ///< owning tape, if pool-allocated
  std::int64_t tape_index = -1;     ///< recording position within the tape
  core::Workspace::Marker ws_mark;  ///< workspace position before this node
  std::vector<double> attrs;        ///< immutable op attributes, replay-matched
  std::vector<std::int64_t> ints;   ///< per-step integer payload (labels, indices)
  std::vector<tensor::Tensor> scratch;  ///< op scratch reused across steps
  std::uint64_t visit_epoch = 0;    ///< DFS stamp for the cached backward order

  // -- Parallel backward engine bookkeeping (autograd/tape.hpp). Written
  // -- by the tape that traverses this node; graphs must not share nodes
  // -- across concurrently-running backward passes (one tape per thread).
  std::int32_t order_index = -1;  ///< position in the owning tape's cached order
  std::int32_t hook_group = -1;   ///< leaf-completion group (backward/apply overlap)

  // -- Tape fusion bookkeeping (DESIGN.md §13). Interior nodes of a fused
  // -- chain carry no value/grad buffers at all: `fuse_skip` marks them,
  // -- `fuse_dims` preserves the output shape for replay matching, and the
  // -- chain tail owns the compiled sweep via `fused`.
  std::uint8_t fuse_kind = 0;    ///< 1 + core::detail::FusedOpKind, or 0 (not fusible)
  bool fuse_skip = false;        ///< bufferless chain interior; replay skips compute
  std::int32_t fuse_chain = -1;  ///< chain slot within the owning tape
  std::int32_t fuse_step = -1;   ///< step index within the chain program
  FusedChain* fused = nullptr;   ///< set on the chain *tail* only (tape-owned)
  std::vector<std::int64_t> fuse_dims;  ///< output dims while the value buffer is dropped

  /// Ensure `grad` is allocated (zero-filled) and return it.
  tensor::Tensor& ensure_grad();
  /// Accumulate `g` into this node's gradient if it requires one.
  void accumulate_grad(const tensor::Tensor& g);
};

/// Handle onto a graph node. Copying a Variable copies the handle, not the
/// data.
class Variable {
 public:
  /// Uninitialized (null) variable; most APIs reject it.
  Variable() = default;

  /// Leaf variable wrapping `value`.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  /// Internal: wrap an existing node (used by ops).
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const tensor::Tensor& value() const;
  tensor::Tensor& value();

  /// True when a gradient buffer has been materialized (by a backward
  /// pass, ensure_grad, or arena adoption). A freshly created leaf has no
  /// gradient yet -- semantically zero, but unallocated.
  bool has_grad() const;

  /// Gradient of the last backward pass. When `has_grad()` is false this
  /// returns a shared immutable *empty* tensor (size 0) instead of
  /// materializing per-variable zeros; callers that need a dense zero
  /// gradient should branch on has_grad().
  const tensor::Tensor& grad() const;

  bool requires_grad() const;

  /// Reset accumulated gradient to zero (leaf parameters between steps).
  /// A variable without a materialized gradient is left as-is -- absent
  /// already means zero.
  void zero_grad();

  /// Run reverse-mode AD from this (scalar) variable: seeds d(out)/d(out)=1.
  void backward();

  /// Run reverse-mode AD seeding with an explicit output gradient.
  void backward(const tensor::Tensor& seed);

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

}  // namespace yf::autograd
