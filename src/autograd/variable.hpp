// Tape-based reverse-mode automatic differentiation.
//
// A `Variable` is a cheap handle onto a shared graph `Node`. Each forward
// op allocates a fresh node whose `backward_fn` scatters the node's
// gradient into its parents. Calling `Variable::backward()` on a scalar
// output runs the tape in reverse topological order.
//
// Parameters are *leaf* variables (`requires_grad == true`, no parents);
// their `.grad()` accumulates across backward calls until `zero_grad()`.
// Intermediate nodes are freed automatically once the last Variable handle
// referencing the forward graph goes out of scope, so per-step memory is
// bounded by a single forward pass.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace yf::autograd {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// A node in the dynamically-built computation graph.
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;      ///< same shape as `value`; allocated lazily
  bool requires_grad = false;
  bool grad_allocated = false;
  std::vector<NodePtr> parents;
  /// Propagates `this->grad` into `parents` (invoked once, in topo order).
  std::function<void(Node&)> backward_fn;
  std::string op_name = "leaf";

  /// Ensure `grad` is allocated (zero-filled) and return it.
  tensor::Tensor& ensure_grad();
  /// Accumulate `g` into this node's gradient if it requires one.
  void accumulate_grad(const tensor::Tensor& g);
};

/// Handle onto a graph node. Copying a Variable copies the handle, not the
/// data.
class Variable {
 public:
  /// Uninitialized (null) variable; most APIs reject it.
  Variable() = default;

  /// Leaf variable wrapping `value`.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  /// Internal: wrap an existing node (used by ops).
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const tensor::Tensor& value() const;
  tensor::Tensor& value();

  /// Gradient of the last backward pass; zero tensor if none reached it.
  const tensor::Tensor& grad() const;

  bool requires_grad() const;

  /// Reset accumulated gradient to zero (leaf parameters between steps).
  void zero_grad();

  /// Run reverse-mode AD from this (scalar) variable: seeds d(out)/d(out)=1.
  void backward();

  /// Run reverse-mode AD seeding with an explicit output gradient.
  void backward(const tensor::Tensor& seed);

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

/// Build a non-leaf variable from a computed value, parents, and pullback.
/// The node requires grad iff any parent does.
Variable make_op(tensor::Tensor value, std::vector<NodePtr> parents,
                 std::function<void(Node&)> backward_fn, std::string op_name);

}  // namespace yf::autograd
