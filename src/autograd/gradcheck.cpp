#include "autograd/gradcheck.hpp"

#include <cmath>
#include <sstream>

namespace yf::autograd {

GradcheckResult gradcheck(const std::function<Variable(const std::vector<Variable>&)>& fn,
                          std::vector<Variable> inputs, double eps, double atol, double rtol) {
  GradcheckResult result;

  // Analytic gradients.
  for (auto& in : inputs) in.zero_grad();
  Variable out = fn(inputs);
  out.backward();
  std::vector<tensor::Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const auto& in : inputs) {
    // An input the output does not depend on never materializes a
    // gradient; its analytic gradient is a dense zero.
    analytic.push_back(in.has_grad() ? in.grad().clone()
                                     : tensor::Tensor::zeros(in.value().shape()));
  }

  // Numeric gradients, coordinate by coordinate.
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    auto& data = inputs[k].value();
    for (std::int64_t i = 0; i < data.size(); ++i) {
      const double orig = data[i];
      data[i] = orig + eps;
      const double fp = fn(inputs).value().item();
      data[i] = orig - eps;
      const double fm = fn(inputs).value().item();
      data[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double a = analytic[k][i];
      const double abs_err = std::abs(a - numeric);
      const double rel_err = abs_err / std::max(1e-12, std::max(std::abs(a), std::abs(numeric)));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > atol && rel_err > rtol && result.ok) {
        result.ok = false;
        std::ostringstream os;
        os << "input " << k << " flat index " << i << ": analytic " << a << " vs numeric "
           << numeric << " (abs " << abs_err << ", rel " << rel_err << ")";
        result.detail = os.str();
      }
    }
  }
  return result;
}

}  // namespace yf::autograd
