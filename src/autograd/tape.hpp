// GraphTape: a reusable, pool-allocated autograd graph (DESIGN.md §8).
//
// The historical graph builder makes a fresh `shared_ptr<Node>` plus
// fresh value/grad tensors for every op of every step, so model training
// runs malloc-bound. A GraphTape exploits that a training loop replays
// the *same* op structure each step:
//
//  * nodes live in a pool owned by the tape (stable addresses, handed to
//    Variables as non-owning aliases);
//  * node values, gradients and per-op scratch are windows of the tape's
//    core::Workspace (bump arena with high-water-mark reuse);
//  * recording is *match-at-cursor*: `begin_step()` rewinds a cursor, and
//    each op compares (signature, parents, output dims, attributes)
//    against the node already recorded at the cursor. On a match the
//    existing node -- buffers, parent links, backward closure -- is
//    reused and only its value is recomputed. On a mismatch the stale
//    tail is truncated (workspace rolled back) and recording continues
//    fresh from there.
//
// After a one-step warm-up, a fixed-shape training step touches the heap
// zero times across forward, backward and optimizer apply (proved by the
// allocation-regression suite against core/alloc_count.hpp).
//
// backward() on a tape node replays the exact traversal the heap path
// would use -- an iterative post-order DFS -- but caches the resulting
// order across steps (invalidated by any structure change), so gradients
// are bit-identical to the per-step shared_ptr graph.
//
// Contracts:
//  * one tape per thread of graph construction; a tape is not
//    thread-safe (each worker replica owns its own tape);
//  * Variables handed out during a step stay valid until the node they
//    reference is truncated or the tape dies; across `begin_step()` a
//    stale handle observes the *new* step's value (same buffer);
//  * per-step varying data (labels, indices) lives in `Node::ints` and
//    is refreshed on every replay; anything identity-relevant must be in
//    the signature, dims or attrs;
//  * repoint parameters (core::ParamArena construction) *before* the
//    warm-up step -- record-time caches may hold views of parent
//    storage, and ops revalidate them per step only against storage
//    identity.
//
// Parallel backward (DESIGN.md §10): when more than one backward thread
// is configured (set_backward_threads / YF_BACKWARD_THREADS) or
// completion hooks are installed, backward_from runs a dependency-
// counting ready-queue engine over the cached order instead of the
// serial loop. Per-node sequence gates force every gradient accumulation
// into a shared parent to happen in the canonical (serial) order, so the
// resulting trajectory is bit-identical for every thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "autograd/variable.hpp"
#include "core/workspace.hpp"
#include "tensor/tensor.hpp"

namespace yf::autograd {

class GraphTape {
 public:
  /// `workspace_reserve` doubles are pre-allocated into the workspace.
  explicit GraphTape(std::int64_t workspace_reserve = 0);
  ~GraphTape();
  GraphTape(const GraphTape&) = delete;
  GraphTape& operator=(const GraphTape&) = delete;

  /// Rewind the cursor: the next recorded op matches against the first
  /// cached node. Cached nodes, buffers and closures are retained.
  void begin_step();

  // -- Introspection / stats. -----------------------------------------------
  std::int64_t steps() const { return steps_; }
  std::size_t recorded_nodes() const { return nodes_.size(); }
  std::size_t cursor() const { return cursor_; }
  std::int64_t replayed_nodes() const { return replayed_; }
  std::int64_t fresh_nodes() const { return fresh_; }
  core::Workspace& workspace() { return ws_; }
  const core::Workspace& workspace() const { return ws_; }

  // -- Fusion stats (DESIGN.md §13). ----------------------------------------
  /// Nodes currently folded into fused sweeps (chain members, tails
  /// included).
  std::int64_t fused_nodes() const { return fused_nodes_; }
  /// Fused chains currently active.
  std::int64_t fusion_chains() const { return fusion_chains_; }
  /// Bytes of intermediate value+grad storage eliminated by dropping
  /// chain-interior buffers from the workspace.
  std::int64_t eliminated_intermediate_bytes() const { return eliminated_bytes_; }
  /// Times the fusion pass rebuilt the tape (fires at warm-up and again
  /// after any truncation, once the structure re-stabilizes).
  std::int64_t fusion_rebuilds() const { return fusion_rebuilds_; }

  // -- Op-author interface (autograd/ops.cpp). ------------------------------
  struct Frame {
    Node* node = nullptr;
    NodePtr handle;     ///< owning (heap) or non-owning alias (tape)
    bool fresh = true;  ///< install backward_fn / scratch when true
    /// The value is produced by a fused sweep (or not at all, for a
    /// bufferless chain interior) -- the op must skip its elementwise
    /// compute call. Closures are still installed when `fresh`.
    bool skip_compute = false;
  };

  /// Match-or-create the node at the cursor. `attrs` are immutable op
  /// attributes that participate in replay identity (scalars, strides).
  Frame record(const char* sig, std::span<const NodePtr> parents,
               std::span<const std::int64_t> dims, std::span<const double> attrs);

  /// Workspace scratch for the node being recorded; rolled back together
  /// with the node on truncation.
  tensor::Tensor scratch(std::span<const std::int64_t> dims) { return ws_.acquire(dims); }

  /// Run a backward pass from `out` (a node of this tape) seeded with
  /// `seed`, using the cached traversal order when the structure is
  /// unchanged. Invoked via Variable::backward().
  void backward_from(Node* out, const tensor::Tensor& seed);

  /// An external reader (Variable::value/grad on a stale handle) wants to
  /// observe a bufferless fused-chain interior: unfuse the owning chain,
  /// restoring heap buffers with this step's values. No-op for ordinary
  /// nodes. Fused ops themselves never call this -- they read shapes via
  /// fuse_dims -- so a chain is only ever dissolved by genuinely foreign
  /// observation or structure change (DESIGN.md §13).
  void materialize_interior(Node* n);

  // -- Parallel engine configuration. ---------------------------------------

  /// Backward participant count for this tape. 1 = serial replay (the
  /// default), n > 1 = the calling thread plus up to n-1 pool helpers
  /// drain the ready queue together, 0 = match the pool fan-out. A
  /// negative value reverts to the process default (YF_BACKWARD_THREADS
  /// when set, else 1). Backward invoked from inside a pool worker (the
  /// param-server replicas) always runs with zero helpers.
  void set_backward_threads(int n) { backward_threads_ = n; }
  int backward_threads() const;

  /// Observer for backward/optimizer overlap: fires while backward is
  /// still draining, on whichever engine thread completed the group.
  /// Callbacks must only touch state whose gradient contributions are
  /// complete (the group's leaves) and must not record ops or re-enter
  /// the tape.
  class BackwardHooks {
   public:
    virtual ~BackwardHooks() = default;
    /// All registered leaves of `group` have final gradients for this
    /// pass, and nothing later in backward reads their values.
    virtual void on_group_complete(std::size_t group) = 0;
  };

  /// A leaf node assigned to a completion group (groups index [0,
  /// group_count) passed to set_backward_hooks).
  struct LeafGroup {
    Node* node = nullptr;
    std::size_t group = 0;
  };

  /// Install (or clear, with nullptr) completion hooks. `leaves` assigns
  /// graph leaves -- typically arena parameters -- to groups; a group
  /// fires once per backward pass when its last in-order leaf completes.
  /// Leaves absent from the traversal of the current output never fire;
  /// callers sweep unfired groups after backward returns. Installing
  /// hooks forces the engine path even at one thread (zero helpers).
  void set_backward_hooks(BackwardHooks* hooks, std::span<const LeafGroup> leaves,
                          std::size_t group_count);
  BackwardHooks* backward_hooks() const { return hooks_; }

 private:
  bool matches(const Node& n, const char* sig, std::span<const NodePtr> parents,
               std::span<const std::int64_t> dims, std::span<const double> attrs,
               bool requires_grad) const;
  void build_order(Node* out);
  void build_plan();
  // -- Fusion pass (tape.cpp; DESIGN.md §13). -------------------------------
  void maybe_fuse();
  void finalize_fusion_plan();
  void abandon_fusion_plan();
  void complete_chain(Node& tail);
  void run_fused_forward(Node& tail);
  void run_fused_backward(Node& tail);
  void unfuse_chain(std::int32_t chain);
  void repair_node(Node& n);
  void truncate_fusion(std::size_t cut);
  void unfuse_all();
  void ensure_group_counts();
  void run_engine(Node* out, const tensor::Tensor& seed, int threads);
  void engine_worker();
  void execute_node(std::int32_t index);
  void decrement_pending(std::int32_t index);
  static void helper_entry(void* ctx);

  std::deque<Node> nodes_;  ///< deque: stable addresses under growth
  std::size_t cursor_ = 0;
  core::Workspace ws_;
  std::uint64_t structure_epoch_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t replayed_ = 0;
  std::int64_t fresh_ = 0;

  // Cached backward traversal (valid while the structure is unchanged).
  std::vector<Node*> order_;
  Node* order_out_ = nullptr;
  std::uint64_t order_epoch_ = 0;
  bool order_valid_ = false;
  struct DfsFrame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<DfsFrame> dfs_stack_;
  std::uint64_t order_visit_epoch_ = 0;  ///< DFS stamp of the cached order

  // -- Fusion state (DESIGN.md §13). ------------------------------------------
  //
  // Chains live behind unique_ptr so Node::fused stays stable while the
  // vector grows; a slot is reset to null when its chain is unfused. The
  // plan is keyed by recording index and only consulted while the fused
  // rebuild step is re-recording the graph (plan_active_).
  struct FusePlanEntry {
    const char* sig = nullptr;
    std::int64_t elems = 0;
    std::uint8_t kind = 0;   ///< 1 + FusedOpKind, matching Node::fuse_kind
    std::int8_t role = 0;    ///< 0 none, 1 interior, 2 tail
    std::int32_t chain = -1;
    std::int32_t step = -1;
  };
  std::vector<std::unique_ptr<FusedChain>> chains_;
  std::vector<FusePlanEntry> fuse_plan_;
  bool plan_active_ = false;
  std::uint64_t fusion_checked_epoch_ = ~std::uint64_t{0};  ///< last structure scanned
  std::int64_t step_start_fresh_ = 0;  ///< fresh_ at begin_step (stability check)
  std::int64_t fused_nodes_ = 0;
  std::int64_t fusion_chains_ = 0;
  std::int64_t eliminated_bytes_ = 0;
  std::int64_t fusion_rebuilds_ = 0;
  // Fusion-scan scratch (consumer edge counts), reused across scans.
  std::vector<std::int32_t> fuse_edges_;
  std::vector<Node*> fuse_single_;

  // -- Parallel engine plan (rebuilt together with order_). -------------------
  //
  // order_ is post-order (parents before children); execution walks it
  // back-to-front, so in *execution order* higher indices run first and
  // "the next consumer of P after C" is P's consumer with the largest
  // order index strictly below C's. The plan stores, per node i:
  //
  //  * its distinct requires-grad parents (CSR: par_off_/par_idx_),
  //    deduplicated so mul(x, x) counts x once;
  //  * per parent edge, the order index of the *next* consumer of that
  //    parent in execution order, or -1 for the last one
  //    (next_consumer_, parallel to par_idx_);
  //  * init_pending_[i] = (#consumers of i) + (#parent edges where i is
  //    not that parent's first consumer in execution order). The first
  //    term gates on the node's gradient being complete; the second is
  //    the sequence gate that serializes sibling accumulations into a
  //    shared parent in canonical order. Executing a node decrements its
  //    next sibling's gate and each parent's consumer count; a count
  //    reaching zero pushes that node onto the ready ring. The serial
  //    order satisfies every gate, so the engine cannot deadlock, and
  //    every accumulation happens in the serial order, so results are
  //    bit-identical at any thread count.
  std::vector<std::int32_t> par_off_;
  std::vector<std::int32_t> par_idx_;
  std::vector<std::int32_t> next_consumer_;
  std::vector<std::int32_t> init_pending_;
  std::uint64_t plan_builds_ = 0;
  // Plan-build scratch (capacity reused across rebuilds).
  std::vector<std::int32_t> cons_off_;
  std::vector<std::int32_t> cons_idx_;
  std::vector<std::int32_t> cons_fill_;

  // -- Engine runtime state (preallocated by build_plan). ---------------------
  std::vector<std::int32_t> pending_;  ///< accessed via std::atomic_ref
  std::vector<std::int32_t> ready_;    ///< ring, capacity order_.size()
  std::size_t ready_head_ = 0;
  std::size_t ready_count_ = 0;
  std::mutex engine_mu_;
  std::condition_variable engine_cv_;
  std::atomic<std::int64_t> executed_{0};
  std::int64_t engine_total_ = 0;
  std::atomic<bool> engine_failed_{false};
  std::exception_ptr engine_error_;
  bool engine_done_ = true;  ///< true between passes: stale helpers exit
  int active_helpers_ = 0;
  int submitted_helpers_ = 0;  ///< enqueued on the pool, not yet started

  // -- Completion hooks (backward/apply overlap). -----------------------------
  BackwardHooks* hooks_ = nullptr;
  std::vector<Node*> hook_nodes_;
  std::size_t hook_group_count_ = 0;
  std::uint64_t hooks_epoch_ = 0;         ///< bumped by set_backward_hooks
  std::uint64_t group_hooks_epoch_ = 0;   ///< hooks_epoch_ the counts match
  std::uint64_t group_plan_builds_ = 0;   ///< plan_builds_ the counts match
  std::vector<std::int32_t> group_init_;
  std::vector<std::int32_t> group_remaining_;  ///< via std::atomic_ref

  int backward_threads_ = -1;  ///< negative: process default
};

/// Tape currently installed on this thread (nullptr: heap graph building).
GraphTape* active_tape();

/// Process-wide switch for the tape fusion pass (DESIGN.md §13). Defaults
/// to the YF_TAPE_FUSION environment variable ("on"/"off"/"1"/"0"), or on
/// when unset. Turning fusion off takes effect at each tape's next
/// begin_step(), which unfuses any active chains in place; trajectories
/// are bit-identical either way -- this is a memory/throughput knob.
void set_tape_fusion(bool on);
bool tape_fusion_enabled();

/// RAII installation of a tape as the thread's active tape. A null tape
/// is a no-op (whatever was active stays active), so call sites can
/// thread an optional tape through unconditionally.
class TapeScope {
 public:
  explicit TapeScope(GraphTape* tape);
  ~TapeScope();
  TapeScope(const TapeScope&) = delete;
  TapeScope& operator=(const TapeScope&) = delete;

 private:
  GraphTape* prev_ = nullptr;
  bool installed_ = false;
};

// -- Frame helpers shared by every op (autograd/ops.cpp). --------------------

/// Build the output frame for an op: on the active tape when one is
/// installed, otherwise a fresh heap node (the historical path). The
/// frame's value tensor is shaped `dims`; a `requires_grad` node also has
/// its gradient buffer materialized up-front on the tape path.
GraphTape::Frame make_frame(const char* sig, std::span<const NodePtr> parents,
                            std::span<const std::int64_t> dims,
                            std::span<const double> attrs = {});

/// Scratch tensor for the op being built: workspace-backed under a tape,
/// a fresh tensor otherwise. Only call while `frame.fresh` handling.
tensor::Tensor make_scratch(std::span<const std::int64_t> dims);
tensor::Tensor make_scratch(std::initializer_list<std::int64_t> dims);

}  // namespace yf::autograd
