// GraphTape: a reusable, pool-allocated autograd graph (DESIGN.md §8).
//
// The historical graph builder makes a fresh `shared_ptr<Node>` plus
// fresh value/grad tensors for every op of every step, so model training
// runs malloc-bound. A GraphTape exploits that a training loop replays
// the *same* op structure each step:
//
//  * nodes live in a pool owned by the tape (stable addresses, handed to
//    Variables as non-owning aliases);
//  * node values, gradients and per-op scratch are windows of the tape's
//    core::Workspace (bump arena with high-water-mark reuse);
//  * recording is *match-at-cursor*: `begin_step()` rewinds a cursor, and
//    each op compares (signature, parents, output dims, attributes)
//    against the node already recorded at the cursor. On a match the
//    existing node -- buffers, parent links, backward closure -- is
//    reused and only its value is recomputed. On a mismatch the stale
//    tail is truncated (workspace rolled back) and recording continues
//    fresh from there.
//
// After a one-step warm-up, a fixed-shape training step touches the heap
// zero times across forward, backward and optimizer apply (proved by the
// allocation-regression suite against core/alloc_count.hpp).
//
// backward() on a tape node replays the exact traversal the heap path
// would use -- an iterative post-order DFS -- but caches the resulting
// order across steps (invalidated by any structure change), so gradients
// are bit-identical to the per-step shared_ptr graph.
//
// Contracts:
//  * one tape per thread of graph construction; a tape is not
//    thread-safe (each worker replica owns its own tape);
//  * Variables handed out during a step stay valid until the node they
//    reference is truncated or the tape dies; across `begin_step()` a
//    stale handle observes the *new* step's value (same buffer);
//  * per-step varying data (labels, indices) lives in `Node::ints` and
//    is refreshed on every replay; anything identity-relevant must be in
//    the signature, dims or attrs;
//  * repoint parameters (core::ParamArena construction) *before* the
//    warm-up step -- record-time caches may hold views of parent
//    storage, and ops revalidate them per step only against storage
//    identity.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "autograd/variable.hpp"
#include "core/workspace.hpp"
#include "tensor/tensor.hpp"

namespace yf::autograd {

class GraphTape {
 public:
  /// `workspace_reserve` doubles are pre-allocated into the workspace.
  explicit GraphTape(std::int64_t workspace_reserve = 0);
  ~GraphTape();
  GraphTape(const GraphTape&) = delete;
  GraphTape& operator=(const GraphTape&) = delete;

  /// Rewind the cursor: the next recorded op matches against the first
  /// cached node. Cached nodes, buffers and closures are retained.
  void begin_step();

  // -- Introspection / stats. -----------------------------------------------
  std::int64_t steps() const { return steps_; }
  std::size_t recorded_nodes() const { return nodes_.size(); }
  std::size_t cursor() const { return cursor_; }
  std::int64_t replayed_nodes() const { return replayed_; }
  std::int64_t fresh_nodes() const { return fresh_; }
  core::Workspace& workspace() { return ws_; }
  const core::Workspace& workspace() const { return ws_; }

  // -- Op-author interface (autograd/ops.cpp). ------------------------------
  struct Frame {
    Node* node = nullptr;
    NodePtr handle;     ///< owning (heap) or non-owning alias (tape)
    bool fresh = true;  ///< install backward_fn / scratch when true
  };

  /// Match-or-create the node at the cursor. `attrs` are immutable op
  /// attributes that participate in replay identity (scalars, strides).
  Frame record(const char* sig, std::span<const NodePtr> parents,
               std::span<const std::int64_t> dims, std::span<const double> attrs);

  /// Workspace scratch for the node being recorded; rolled back together
  /// with the node on truncation.
  tensor::Tensor scratch(std::span<const std::int64_t> dims) { return ws_.acquire(dims); }

  /// Run a backward pass from `out` (a node of this tape) seeded with
  /// `seed`, using the cached traversal order when the structure is
  /// unchanged. Invoked via Variable::backward().
  void backward_from(Node* out, const tensor::Tensor& seed);

 private:
  bool matches(const Node& n, const char* sig, std::span<const NodePtr> parents,
               std::span<const std::int64_t> dims, std::span<const double> attrs,
               bool requires_grad) const;
  void build_order(Node* out);

  std::deque<Node> nodes_;  ///< deque: stable addresses under growth
  std::size_t cursor_ = 0;
  core::Workspace ws_;
  std::uint64_t structure_epoch_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t replayed_ = 0;
  std::int64_t fresh_ = 0;

  // Cached backward traversal (valid while the structure is unchanged).
  std::vector<Node*> order_;
  Node* order_out_ = nullptr;
  std::uint64_t order_epoch_ = 0;
  bool order_valid_ = false;
  struct DfsFrame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<DfsFrame> dfs_stack_;
};

/// Tape currently installed on this thread (nullptr: heap graph building).
GraphTape* active_tape();

/// RAII installation of a tape as the thread's active tape. A null tape
/// is a no-op (whatever was active stays active), so call sites can
/// thread an optional tape through unconditionally.
class TapeScope {
 public:
  explicit TapeScope(GraphTape* tape);
  ~TapeScope();
  TapeScope(const TapeScope&) = delete;
  TapeScope& operator=(const TapeScope&) = delete;

 private:
  GraphTape* prev_ = nullptr;
  bool installed_ = false;
};

// -- Frame helpers shared by every op (autograd/ops.cpp). --------------------

/// Build the output frame for an op: on the active tape when one is
/// installed, otherwise a fresh heap node (the historical path). The
/// frame's value tensor is shaped `dims`; a `requires_grad` node also has
/// its gradient buffer materialized up-front on the tape path.
GraphTape::Frame make_frame(const char* sig, std::span<const NodePtr> parents,
                            std::span<const std::int64_t> dims,
                            std::span<const double> attrs = {});

/// Scratch tensor for the op being built: workspace-backed under a tape,
/// a fresh tensor otherwise. Only call while `frame.fresh` handling.
tensor::Tensor make_scratch(std::span<const std::int64_t> dims);
tensor::Tensor make_scratch(std::initializer_list<std::int64_t> dims);

}  // namespace yf::autograd
