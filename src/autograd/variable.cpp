#include "autograd/variable.hpp"

#include <stdexcept>
#include <unordered_set>

#include "autograd/tape.hpp"

namespace yf::autograd {

tensor::Tensor& Node::ensure_grad() {
  if (!grad_allocated) {
    grad = tensor::Tensor::zeros(value.shape());
    grad_allocated = true;
  }
  return grad;
}

void Node::accumulate_grad(const tensor::Tensor& g) {
  if (!requires_grad) return;
  ensure_grad().add_(g);
}

Variable::Variable(tensor::Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const tensor::Tensor& Variable::value() const {
  if (!node_) throw std::logic_error("Variable::value: undefined variable");
  // A bufferless fused-chain interior only exists in sweep registers;
  // observing it dissolves the chain (DESIGN.md §13).
  if (node_->fuse_skip && node_->tape != nullptr) node_->tape->materialize_interior(node_.get());
  return node_->value;
}

tensor::Tensor& Variable::value() {
  if (!node_) throw std::logic_error("Variable::value: undefined variable");
  if (node_->fuse_skip && node_->tape != nullptr) node_->tape->materialize_interior(node_.get());
  return node_->value;
}

bool Variable::has_grad() const { return node_ != nullptr && node_->grad_allocated; }

const tensor::Tensor& Variable::grad() const {
  if (!node_) throw std::logic_error("Variable::grad: undefined variable");
  if (node_->grad_allocated) return node_->grad;
  // Shared immutable "no gradient yet" sentinel: absent means zero, and
  // reading it must neither allocate nor mutate the node (the historical
  // behavior lazily materialized dense zeros from a const accessor).
  static const tensor::Tensor kEmptyGrad{tensor::Shape{0}};
  return kEmptyGrad;
}

bool Variable::requires_grad() const { return node_ && node_->requires_grad; }

void Variable::zero_grad() {
  if (!node_ || !node_->grad_allocated) return;
  node_->grad.zero_();
}

namespace {

/// Post-order DFS producing nodes in topological order (parents before
/// children in the returned vector's *reverse*). Iterative to avoid stack
/// overflow on long LSTM unrolls.
void topo_sort(const NodePtr& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root && root->requires_grad) {
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::backward() {
  if (!node_) throw std::logic_error("Variable::backward: undefined variable");
  if (node_->value.size() != 1) {
    throw std::invalid_argument(
        "Variable::backward: implicit seed requires a scalar output; shape is " +
        tensor::to_string(node_->value.shape()));
  }
  if (node_->value.ndim() == 1) {
    // The common scalar-loss shape: seed with a shared constant instead of
    // allocating fresh ones every step (the tape's zero-alloc contract).
    static const tensor::Tensor kOne = tensor::Tensor::ones(tensor::Shape{1});
    backward(kOne);
    return;
  }
  backward(tensor::Tensor::ones(node_->value.shape()));
}

void Variable::backward(const tensor::Tensor& seed) {
  if (!node_) throw std::logic_error("Variable::backward: undefined variable");
  tensor::check_same_shape(seed, node_->value, "backward seed");
  if (!node_->requires_grad) return;  // nothing to do: graph is constant

  if (node_->tape != nullptr) {
    // Pool-allocated node: the owning tape runs the pass with its cached
    // traversal order (identical sequence to the heap path below).
    node_->tape->backward_from(node_.get(), seed);
    return;
  }

  std::vector<Node*> order;
  topo_sort(node_, order);
  // Fresh gradient buffers for this pass on non-leaf nodes; leaves
  // accumulate across passes by design (see header).
  for (Node* n : order) n->ensure_grad();
  for (Node* n : order) {
    if (!n->parents.empty()) n->grad.zero_();  // non-leaf: per-pass buffer
  }
  node_->ensure_grad().add_(seed);
  // order is post-order (parents first); iterate in reverse so each node's
  // grad is complete before its backward_fn runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

}  // namespace yf::autograd
